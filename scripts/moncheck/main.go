// Command moncheck is the monitoring-stack smoke gate (`make
// mon-smoke`): it builds merakid, spawns a 2-shard cluster on a fast
// observability cadence (-series-every 100ms, -health-for 2), harvests
// a clean agent fleet, then degrades shard 1 with faultnet-corrupted
// chaos agents and checks the full alert lifecycle from the operator's
// seats:
//
//   - shard 1's harvest-degradation rule must fire while the chaos
//     fleet runs (visible in "alerts", "status", and "watch"),
//   - it must resolve after the chaos stops, with the transition
//     counted in health.fired / health.resolved,
//   - and shard 0's /debug/federate must serve one merged exposition
//     carrying samples from both shards, shard-labeled.
//
// Any missed transition or missing shard fails the build. The
// degradation source is client-side corruption (telemetry.Agent.Dial
// wrapped by faultnet), so the daemons under test are stock binaries.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/faultnet"
	"wlanscale/internal/telemetry"
)

const defaultKey = 0x42 // matches merakid's default -key (64 hex '42's)

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startShard(bin, listen, query, debug string, shard, shards int, peers string) (*exec.Cmd, error) {
	args := []string{
		"-listen", listen, "-query", query,
		"-poll", "20ms", "-batch", "8", "-timeout", "500ms",
		"-trace-sample", "0",
		"-series-every", "100ms", "-series-cap", "256",
		"-health-for", "2", "-health-for-ok", "2",
		"-shard", strconv.Itoa(shard), "-shards", strconv.Itoa(shards),
		"-peers", peers,
	}
	if debug != "" {
		args = append(args, "-debug", debug)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", query, 200*time.Millisecond); err == nil {
			conn.Close()
			return cmd, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("shard %d did not open query port %s", shard, query)
}

func queryLines(addr, command string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		return nil, err
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	var lines []string
	for _, ln := range strings.Split(b.String(), "\n") {
		if ln == "" {
			break
		}
		lines = append(lines, ln)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty reply to %q", command)
	}
	return lines, nil
}

// alertState returns one rule's reported state on a shard ("ok",
// "pending", "firing").
func alertState(query, rule string) (string, error) {
	lines, err := queryLines(query, "alerts")
	if err != nil {
		return "", err
	}
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) >= 3 && fields[0] == rule {
			return fields[2], nil
		}
	}
	return "", fmt.Errorf("rule %q missing from alerts reply %q", rule, lines)
}

// waitForState polls one rule until it reaches want or the deadline
// passes.
func waitForState(query, rule, want string, deadline time.Duration) error {
	var last string
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		st, err := alertState(query, rule)
		if err != nil {
			return err
		}
		if st == want {
			return nil
		}
		last = st
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("rule %q never reached %q (last state %q)", rule, want, last)
}

// metricValue reads one scalar from a shard's "metrics" reply.
func metricValue(query, name string) (int64, error) {
	lines, err := queryLines(query, "metrics")
	if err != nil {
		return 0, err
	}
	for _, ln := range lines {
		n, rest, ok := strings.Cut(ln, " ")
		if ok && n == name {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			return v, err
		}
	}
	return 0, fmt.Errorf("metric %q missing", name)
}

// report builds one minimal well-formed harvest report.
func report(serial string, i int) *telemetry.Report {
	return &telemetry.Report{
		Serial:    serial,
		Timestamp: uint64(1700000000 + i),
		SeqNo:     uint64(i + 1),
		Clients: []telemetry.ClientRecord{{
			MAC:  dot11.MAC{0x02, 0xc6, 0x09, 0x00, 0x00, byte(i)},
			Band: dot11.Band5,
		}},
	}
}

// startAgents launches n agents against one shard's device listener.
// With corrupt set, each agent's connections pass through a faultnet
// wrapper that corrupts every I/O op — the daemon sees a stream of MAC
// failures, never a valid session.
func startAgents(listen string, n int, serialPrefix string, corrupt bool, stop chan struct{}) []*telemetry.Agent {
	key := make([]byte, 32)
	for i := range key {
		key[i] = defaultKey
	}
	agents := make([]*telemetry.Agent, n)
	for i := 0; i < n; i++ {
		a := telemetry.NewAgent(fmt.Sprintf("%s-%02d", serialPrefix, i), key)
		a.Timeout = 500 * time.Millisecond
		a.BackoffBase = 10 * time.Millisecond
		a.BackoffMax = 50 * time.Millisecond
		if corrupt {
			plan := faultnet.Plan{
				Seed:        uint64(1000 + i),
				Corrupt:     []faultnet.Window{{From: 0, To: 1 << 30}},
				CorruptProb: 1.0,
			}
			idx := i
			a.Dial = func(addr string) (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				return faultnet.WrapConn(c, plan, idx), nil
			}
		}
		for r := 0; r < 20; r++ {
			a.Enqueue(report(fmt.Sprintf("%s-%02d", serialPrefix, i), r))
		}
		agents[i] = a
		go a.RunWithReconnect(listen, stop)
	}
	return agents
}

func run() error {
	tmp, err := os.MkdirTemp("", "moncheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "merakid")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/merakid").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	const shards = 2
	ports, err := freePorts(2*shards + 1)
	if err != nil {
		return err
	}
	listens := []string{ports[0], ports[2]}
	queries := []string{ports[1], ports[3]}
	debugAddr := ports[4]
	peers := strings.Join(queries, ",")

	daemons := make([]*exec.Cmd, shards)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.Process.Kill()
				d.Wait()
			}
		}
	}()
	for i := 0; i < shards; i++ {
		dbg := ""
		if i == 0 {
			dbg = debugAddr
		}
		if daemons[i], err = startShard(bin, listens[i], queries[i], dbg, i, shards, peers); err != nil {
			return err
		}
	}

	// Phase 1 — healthy baseline: clean agents on both shards, rules ok.
	stop := make(chan struct{})
	defer close(stop)
	var clean []*telemetry.Agent
	for i := 0; i < shards; i++ {
		clean = append(clean, startAgents(listens[i], 2, fmt.Sprintf("Q2MN-S%d", i), false, stop)...)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		left := 0
		for _, a := range clean {
			left += a.QueueLen()
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("clean fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < shards; i++ {
		if st, err := alertState(queries[i], "harvest-degradation"); err != nil || st != "ok" {
			return fmt.Errorf("shard %d harvest-degradation after clean harvest = %q (%v), want ok", i, st, err)
		}
	}

	// Phase 2 — degrade shard 1: chaos agents whose every frame is
	// corrupt. The harvest-degradation rule (error delta over 3 ticks)
	// must fire on shard 1 and stay ok on shard 0.
	chaosStop := make(chan struct{})
	startAgents(listens[1], 4, "Q2MN-CHAOS", true, chaosStop)
	if err := waitForState(queries[1], "harvest-degradation", "firing", 30*time.Second); err != nil {
		close(chaosStop)
		return fmt.Errorf("degraded shard: %v", err)
	}
	// The firing alert surfaces on every operator view of shard 1.
	status, err := queryLines(queries[1], "status")
	if err != nil {
		return err
	}
	if !strings.Contains(strings.Join(status, "\n"), "harvest-degradation") {
		return fmt.Errorf("status does not surface the firing alert: %q", status)
	}
	watch, err := queryLines(queries[1], "watch")
	if err != nil {
		return err
	}
	if len(watch) != 1 || !strings.Contains(watch[0], "firing=harvest-degradation") {
		return fmt.Errorf("watch line does not surface the firing alert: %q", watch)
	}
	if st, err := alertState(queries[0], "harvest-degradation"); err != nil || st != "ok" {
		return fmt.Errorf("healthy shard 0 harvest-degradation = %q (%v), want ok", st, err)
	}

	// Phase 3 — recovery: stop the chaos, the alert must resolve and the
	// transition must be counted.
	close(chaosStop)
	if err := waitForState(queries[1], "harvest-degradation", "ok", 30*time.Second); err != nil {
		return fmt.Errorf("recovery: %v", err)
	}
	fired, err := metricValue(queries[1], "health.fired")
	if err != nil {
		return err
	}
	resolved, err := metricValue(queries[1], "health.resolved")
	if err != nil {
		return err
	}
	if fired < 1 || resolved < 1 {
		return fmt.Errorf("transition counters fired=%d resolved=%d, want both >= 1", fired, resolved)
	}

	// Phase 4 — federation: shard 0's /debug/federate carries both
	// shards' samples in one exposition.
	resp, err := http.Get("http://" + debugAddr + "/debug/federate")
	if err != nil {
		return fmt.Errorf("federate scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("federate status %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	for _, want := range []string{
		`store_ingests{shard="0"}`,
		`store_ingests{shard="1"}`,
		`health_fired{shard="1"}`,
		"# federation shards=2 up=2",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("federated exposition missing %q:\n%s", want, text)
		}
	}

	// Phase 5 — the operator dashboard: one merakireport -watch refresh
	// renders a line per shard from the same fleet.
	rep := filepath.Join(tmp, "merakireport")
	if out, err := exec.Command("go", "build", "-o", rep, "./cmd/merakireport").CombinedOutput(); err != nil {
		return fmt.Errorf("go build merakireport: %v\n%s", err, out)
	}
	out, err := exec.Command(rep, "-cluster", peers, "-watch", "-watch-count", "1", "-watch-every", "100ms").CombinedOutput()
	if err != nil {
		return fmt.Errorf("merakireport -watch: %v\n%s", err, out)
	}
	for _, want := range []string{"fleet watch", "shard=0/2", "shard=1/2", "up=2"} {
		if !strings.Contains(string(out), want) {
			return fmt.Errorf("watch dashboard missing %q:\n%s", want, out)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "moncheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("moncheck: PASS: alert fired and resolved under induced degradation; federation carried both shards")
}
