// Command rebalancecheck is the live-migration smoke gate (`make
// rebalance-smoke`): it builds merakid and merakireport, harvests a
// first wave of reports into a 2-shard WAL-backed cluster, starts an
// empty third shard, and grows the cluster with the real operator
// flow — `merakireport -cluster OLD -rebalance NEW` — then flips the
// agents to the new topology for a second wave. The gate fails unless:
//
//   - the rebalance driver exits zero and a re-run reports nothing
//     left to move (the runbook's convergence check),
//   - every moved network is listed by the new shard and absent from
//     its old home, and
//   - the 3-shard merged digest equals a single in-process control
//     store fed both waves — migration plus re-homed ingestion
//     changed nothing about what the cluster holds.
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/cluster"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

const (
	nNetworks  = 6
	apsPerNet  = 2
	nReports   = 60 // per AP, split into two waves around the rebalance
	waveSplit  = 30
	defaultKey = 0x42 // matches merakid's default -key (64 hex '42's)
)

func reports(netID uint64, ap int) []*telemetry.Report {
	serial := fmt.Sprintf("Q2CL-%03d-%d", netID, ap)
	out := make([]*telemetry.Report, 0, nReports)
	for i := 0; i < nReports; i++ {
		out = append(out, &telemetry.Report{
			Serial:    serial,
			Timestamp: uint64(1700000000 + i),
			Clients: []telemetry.ClientRecord{{
				MAC:  dot11.MAC{0x02, 0xc8, byte(netID), byte(ap), byte(i >> 8), byte(i)},
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{
					App: "HTTP", UpBytes: uint64(i), DownBytes: uint64(i) * 17, Flows: 1,
				}},
			}},
		})
	}
	return out
}

func controlDigest() string {
	s := backend.NewStore()
	for n := 0; n < nNetworks; n++ {
		for ap := 0; ap < apsPerNet; ap++ {
			for i, r := range reports(uint64(100+n), ap) {
				r.SeqNo = uint64(i + 1)
				s.Ingest(r)
			}
		}
	}
	return s.Digest()
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startShard(bin, listen, query, walDir string, shard, shards, epoch int, peers string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-listen", listen, "-query", query,
		"-poll", "20ms", "-batch", "8", "-timeout", "2s",
		"-wal-dir", walDir, "-wal-fsync", "off",
		"-checkpoint", "75ms", "-trace-sample", "0",
		"-shard", strconv.Itoa(shard), "-shards", strconv.Itoa(shards),
		"-map-epoch", strconv.Itoa(epoch), "-peers", peers,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", query, 200*time.Millisecond); err == nil {
			conn.Close()
			return cmd, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("shard %d did not open query port %s", shard, query)
}

func queryLines(addr, command string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		return nil, err
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	var lines []string
	for _, ln := range strings.Split(b.String(), "\n") {
		if ln == "" {
			break
		}
		lines = append(lines, ln)
	}
	return lines, nil
}

func drain(agents []*telemetry.Agent) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func run() error {
	tmp, err := os.MkdirTemp("", "rebalancecheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	merakid := filepath.Join(tmp, "merakid")
	if out, err := exec.Command("go", "build", "-o", merakid, "./cmd/merakid").CombinedOutput(); err != nil {
		return fmt.Errorf("go build merakid: %v\n%s", err, out)
	}
	merakireport := filepath.Join(tmp, "merakireport")
	if out, err := exec.Command("go", "build", "-o", merakireport, "./cmd/merakireport").CombinedOutput(); err != nil {
		return fmt.Errorf("go build merakireport: %v\n%s", err, out)
	}

	ports, err := freePorts(6)
	if err != nil {
		return err
	}
	listens := []string{ports[0], ports[2], ports[4]}
	queries := []string{ports[1], ports[3], ports[5]}
	oldPeers := strings.Join(queries[:2], ",")
	newPeers := strings.Join(queries, ",")

	daemons := make([]*exec.Cmd, 3)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.Process.Kill()
				d.Wait()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		walDir := filepath.Join(tmp, fmt.Sprintf("wal-%d", i))
		if daemons[i], err = startShard(merakid, listens[i], queries[i], walDir, i, 2, 1, oldPeers); err != nil {
			return err
		}
	}

	// Wave one: harvest the first half of every AP's stream into the
	// 2-shard cluster, routed by the old map.
	oldMap, newMap := cluster.NewMap(2), cluster.NewMap(3)
	key := make([]byte, 32)
	for i := range key {
		key[i] = defaultKey
	}
	stopOld := make(chan struct{})
	var agents []*telemetry.Agent
	var streams [][]*telemetry.Report
	ai := 0
	for n := 0; n < nNetworks; n++ {
		netID := uint64(100 + n)
		for ap := 0; ap < apsPerNet; ap++ {
			a := telemetry.NewAgent(fmt.Sprintf("Q2CL-%03d-%d", netID, ap), key)
			if ai%2 == 0 {
				a.Wire = telemetry.WireV2
			}
			a.Timeout = 2 * time.Second
			a.BackoffBase = 20 * time.Millisecond
			a.BackoffMax = 200 * time.Millisecond
			rs := reports(netID, ap)
			for _, r := range rs[:waveSplit] {
				a.Enqueue(r)
			}
			agents = append(agents, a)
			streams = append(streams, rs)
			go a.RunWithReconnect(listens[oldMap.Shard(netID)], stopOld)
			ai++
		}
	}
	if err := drain(agents); err != nil {
		return err
	}
	close(stopOld) // wave one delivered; agents re-home for wave two

	// The new shard joins empty, then the operator command grows the
	// cluster: part, extract, absorb, digest-verify, cut over.
	if daemons[2], err = startShard(merakid, listens[2], queries[2], filepath.Join(tmp, "wal-2"), 2, 3, 2, newPeers); err != nil {
		return err
	}
	out, err := exec.Command(merakireport, "-cluster", oldPeers, "-rebalance", newPeers).CombinedOutput()
	if err != nil {
		return fmt.Errorf("merakireport -rebalance: %v\n%s", err, out)
	}
	fmt.Fprintf(os.Stderr, "%s", out)
	if !strings.Contains(string(out), "moved networks=") || strings.Contains(string(out), "moved networks=0") {
		return fmt.Errorf("rebalance moved nothing:\n%s", out)
	}

	// Convergence check from the runbook: a second run finds every
	// network already home.
	out, err = exec.Command(merakireport, "-cluster", oldPeers, "-rebalance", newPeers).CombinedOutput()
	if err != nil {
		return fmt.Errorf("merakireport -rebalance re-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "moved networks=0") {
		return fmt.Errorf("re-run still moving networks:\n%s", out)
	}

	// Moved networks must have left their sources and arrived whole on
	// the new shard.
	onShard := func(q string) (map[uint64]bool, error) {
		lines, err := queryLines(q, "networks")
		if err != nil {
			return nil, err
		}
		ids := make(map[uint64]bool)
		for _, ln := range lines {
			id, err := strconv.ParseUint(ln, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("networks line %q from %s", ln, q)
			}
			ids[id] = true
		}
		return ids, nil
	}
	newIDs, err := onShard(queries[2])
	if err != nil {
		return err
	}
	for n := 0; n < nNetworks; n++ {
		id := uint64(100 + n)
		if oldMap.Shard(id) == newMap.Shard(id) {
			continue
		}
		src, err := onShard(queries[oldMap.Shard(id)])
		if err != nil {
			return err
		}
		if src[id] {
			return fmt.Errorf("moved network %d still on old shard %d", id, oldMap.Shard(id))
		}
		if !newIDs[id] {
			return fmt.Errorf("moved network %d missing from new shard", id)
		}
	}

	// Wave two: the flipped fleet delivers the rest of its streams to
	// the new topology — moved networks now land on the new shard.
	stopNew := make(chan struct{})
	defer close(stopNew)
	for i, a := range agents {
		for _, r := range streams[i][waveSplit:] {
			a.Enqueue(r)
		}
		netID := uint64(100 + i/apsPerNet)
		go a.RunWithReconnect(listens[newMap.Shard(netID)], stopNew)
	}
	if err := drain(agents); err != nil {
		return err
	}

	want := controlDigest()
	r := &cluster.Router{Shards: queries, Timeout: 5 * time.Second}
	dig, err := r.MergedDigest()
	if err != nil {
		return fmt.Errorf("router merge: %v", err)
	}
	if dig.Degraded || len(dig.Down) != 0 {
		return fmt.Errorf("healthy cluster reported degraded: %+v", dig)
	}
	if dig.Digest != want {
		return fmt.Errorf("post-rebalance digest mismatch\n got %s\nwant %s", dig.Digest, want)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rebalancecheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rebalancecheck: PASS: 2->3 live rebalance kept the merged digest identical to the control")
}
