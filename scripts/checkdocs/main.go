// Command checkdocs enforces the repo's documentation floor: every Go
// package in the module — internal, cmd, scripts, examples, and the
// root alike — must carry a package comment, and must carry it exactly
// once (two files both holding doc comments get silently concatenated
// by go doc, which always reads as an accident). By convention the
// comment lives in doc.go for multi-file library packages and atop
// main.go for commands. `make docs` runs it; CI fails if it prints
// anything.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// skipDirs are directories the walk never descends into: VCS metadata,
// test fixtures, and trees that hold no module code.
var skipDirs = map[string]bool{
	".git":     true,
	".github":  true,
	"testdata": true,
	"docs":     true,
}

func main() {
	var problems []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		if skipDirs[d.Name()] {
			return filepath.SkipDir
		}
		problems = append(problems, checkDir(path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir inspects the non-test package in one directory (directories
// without Go files parse to zero packages and pass vacuously) and
// reports a missing or duplicated package comment.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		var documented []string
		for file, f := range pkg.Files {
			if f.Doc != nil {
				documented = append(documented, filepath.Base(file))
			}
		}
		switch {
		case len(documented) == 0:
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		case len(documented) > 1:
			sort.Strings(documented)
			problems = append(problems, fmt.Sprintf("%s: package %s has package comments in %d files (%s)",
				dir, name, len(documented), strings.Join(documented, ", ")))
		}
	}
	return problems
}
