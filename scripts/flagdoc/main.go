// Command flagdoc generates the CLI flag reference (docs/FLAGS.md) by
// statically parsing the flag.String/Int/Duration/... registrations in
// every command under cmd/. It deliberately does NOT run the binaries
// and scrape -help: defaults like runtime.GOMAXPROCS(0) would then
// embed the build machine's core count and the reference would churn
// between hosts. Instead each default is rendered as its source
// expression, which is stable everywhere.
//
// Modes: -out writes the file (what `make docs-gen` runs after a flag
// change); -check re-renders and diffs against the file on disk,
// exiting non-zero on drift (what `make docs` and CI run). With
// neither, the markdown goes to stdout.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// flagFuncs maps the flag-package constructors flagdoc understands to
// the type name the reference prints. *Var forms are not used in this
// repo; the parser flags any it cannot follow rather than dropping
// them silently.
var flagFuncs = map[string]string{
	"Bool":     "bool",
	"Duration": "duration",
	"Float64":  "float",
	"Int":      "int",
	"Int64":    "int",
	"Uint":     "uint",
	"Uint64":   "uint",
	"String":   "string",
}

type flagDef struct {
	Name    string
	Type    string
	Default string
	Usage   string
	pos     token.Pos
}

type command struct {
	Name    string // "merakid"
	Summary string // first sentence of the package comment
	Flags   []flagDef
}

func main() {
	out := flag.String("out", "", "write the rendered reference to this path")
	check := flag.String("check", "", "compare the rendered reference against this path; exit 1 on drift")
	flag.Parse()

	cmds, err := scanCommands("cmd")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flagdoc: %v\n", err)
		os.Exit(2)
	}
	doc := render(cmds)

	switch {
	case *check != "":
		want, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flagdoc: %v (run `make docs-gen` to create it)\n", err)
			os.Exit(1)
		}
		if !bytes.Equal(want, doc) {
			fmt.Fprintf(os.Stderr, "flagdoc: %s is stale — flags changed without regenerating; run `make docs-gen`\n", *check)
			os.Exit(1)
		}
		fmt.Printf("flagdoc: %s is up to date\n", *check)
	case *out != "":
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "flagdoc: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flagdoc: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("flagdoc: wrote %s (%d commands)\n", *out, len(cmds))
	default:
		os.Stdout.Write(doc)
	}
}

// scanCommands parses every directory under root as one command.
func scanCommands(root string) ([]command, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var cmds []command
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := scanCommand(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, c)
	}
	sort.Slice(cmds, func(i, j int) bool { return cmds[i].Name < cmds[j].Name })
	return cmds, nil
}

func scanCommand(dir string) (command, error) {
	c := command{Name: filepath.Base(dir)}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return c, err
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		// Filenames in deterministic order so positions sort stably.
		var files []string
		for file := range pkg.Files {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			f := pkg.Files[file]
			if f.Doc != nil && c.Summary == "" {
				c.Summary = firstSentence(f.Doc.Text())
			}
			var inspectErr error
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				def, ok, err := parseFlagCall(fset, call)
				if err != nil && inspectErr == nil {
					inspectErr = fmt.Errorf("%s: %v", fset.Position(call.Pos()), err)
				}
				if ok {
					c.Flags = append(c.Flags, def)
				}
				return true
			})
			if inspectErr != nil {
				return c, inspectErr
			}
		}
	}
	// Declaration order within a file, files in name order.
	sort.SliceStable(c.Flags, func(i, j int) bool { return c.Flags[i].pos < c.Flags[j].pos })
	return c, nil
}

// parseFlagCall recognizes flag.<Ctor>(name, default, usage). The
// second return is false for any other call; an error means the call
// is a flag registration flagdoc cannot render faithfully.
func parseFlagCall(fset *token.FileSet, call *ast.CallExpr) (flagDef, bool, error) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return flagDef{}, false, nil
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "flag" {
		return flagDef{}, false, nil
	}
	typ, ok := flagFuncs[sel.Sel.Name]
	if !ok {
		if strings.HasSuffix(sel.Sel.Name, "Var") {
			return flagDef{}, false, fmt.Errorf("flag.%s is not supported by flagdoc", sel.Sel.Name)
		}
		return flagDef{}, false, nil
	}
	if len(call.Args) != 3 {
		return flagDef{}, false, fmt.Errorf("flag.%s with %d args", sel.Sel.Name, len(call.Args))
	}
	name, err := stringLit(call.Args[0])
	if err != nil {
		return flagDef{}, false, fmt.Errorf("flag name: %w", err)
	}
	usage, err := stringLit(call.Args[2])
	if err != nil {
		return flagDef{}, false, fmt.Errorf("flag -%s usage: %w", name, err)
	}
	return flagDef{
		Name:    name,
		Type:    typ,
		Default: exprText(fset, call.Args[1]),
		Usage:   usage,
		pos:     call.Pos(),
	}, true, nil
}

// stringLit unquotes a string literal argument.
func stringLit(e ast.Expr) (string, error) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", fmt.Errorf("not a string literal")
	}
	return strconv.Unquote(lit.Value)
}

// exprText renders an expression as the source text the reference
// shows for its default value.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, e)
	return b.String()
}

func firstSentence(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if i := strings.Index(s, ". "); i >= 0 {
		return s[:i+1]
	}
	return s
}

// render produces the markdown reference.
func render(cmds []command) []byte {
	var b bytes.Buffer
	b.WriteString("# CLI flag reference\n\n")
	b.WriteString("<!-- Generated by scripts/flagdoc. Do not edit: run `make docs-gen` after changing a flag. -->\n\n")
	b.WriteString("Defaults are shown as their source expressions, so values like\n")
	b.WriteString("`runtime.GOMAXPROCS(0)` stay symbolic instead of baking in one\n")
	b.WriteString("machine's core count. Flags appear in declaration order.\n")
	for _, c := range cmds {
		fmt.Fprintf(&b, "\n## %s\n\n", c.Name)
		if c.Summary != "" {
			fmt.Fprintf(&b, "%s\n\n", c.Summary)
		}
		if len(c.Flags) == 0 {
			b.WriteString("(no flags)\n")
			continue
		}
		b.WriteString("| Flag | Type | Default | Description |\n")
		b.WriteString("|------|------|---------|-------------|\n")
		for _, f := range c.Flags {
			fmt.Fprintf(&b, "| `-%s` | %s | `%s` | %s |\n",
				f.Name, f.Type, escapeCell(f.Default), escapeCell(f.Usage))
		}
	}
	return b.Bytes()
}

// escapeCell keeps table cells intact: pipes would split the column
// and newlines would end the row.
func escapeCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
