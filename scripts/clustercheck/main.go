// Command clustercheck is the sharded-deployment smoke gate (`make
// cluster-smoke`): it builds merakid, spawns a 4-shard cluster (each
// shard with its own WAL dir and -shard/-shards/-peers wiring),
// harvests a mixed-wire agent fleet routed by the shard map, waits for
// the fleet to drain, and then checks the cluster from both ends:
//
//   - the router's scatter-gather merge (the merakireport -cluster
//     path) must produce a digest identical to a single in-process
//     control store fed the same reports, and
//   - shard 0's own "fanout digest" query — the daemon-side
//     coordinator — must agree, undegraded.
//
// Any divergence means sharding changed what the cluster holds, and
// the build fails. -shards overrides the cluster width.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/cluster"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

const (
	nNetworks  = 6
	apsPerNet  = 2
	nReports   = 60
	defaultKey = 0x42 // matches merakid's default -key (64 hex '42's)
)

func reports(netID uint64, ap int) []*telemetry.Report {
	serial := fmt.Sprintf("Q2CL-%03d-%d", netID, ap)
	out := make([]*telemetry.Report, 0, nReports)
	for i := 0; i < nReports; i++ {
		out = append(out, &telemetry.Report{
			Serial:    serial,
			Timestamp: uint64(1700000000 + i),
			Clients: []telemetry.ClientRecord{{
				MAC:  dot11.MAC{0x02, 0xc6, byte(netID), byte(ap), byte(i >> 8), byte(i)},
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{
					App: "HTTP", UpBytes: uint64(i), DownBytes: uint64(i) * 13, Flows: 1,
				}},
			}},
		})
	}
	return out
}

func controlDigest() string {
	s := backend.NewStore()
	for n := 0; n < nNetworks; n++ {
		for ap := 0; ap < apsPerNet; ap++ {
			for i, r := range reports(uint64(100+n), ap) {
				r.SeqNo = uint64(i + 1)
				s.Ingest(r)
			}
		}
	}
	return s.Digest()
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startShard(bin, listen, query, walDir string, shard, shards int, peers string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-listen", listen, "-query", query,
		"-poll", "20ms", "-batch", "8", "-timeout", "2s",
		"-wal-dir", walDir, "-wal-fsync", "off",
		"-checkpoint", "75ms", "-trace-sample", "0",
		"-shard", strconv.Itoa(shard), "-shards", strconv.Itoa(shards),
		"-peers", peers,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", query, 200*time.Millisecond); err == nil {
			conn.Close()
			return cmd, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("shard %d did not open query port %s", shard, query)
}

func queryLines(addr, command string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		return nil, err
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	var lines []string
	for _, ln := range strings.Split(b.String(), "\n") {
		if ln == "" {
			break
		}
		lines = append(lines, ln)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty reply to %q", command)
	}
	return lines, nil
}

func run(shards int) error {
	tmp, err := os.MkdirTemp("", "clustercheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "merakid")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/merakid").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	ports, err := freePorts(2 * shards)
	if err != nil {
		return err
	}
	listens := make([]string, shards)
	queries := make([]string, shards)
	for i := 0; i < shards; i++ {
		listens[i], queries[i] = ports[2*i], ports[2*i+1]
	}
	peers := strings.Join(queries, ",")

	daemons := make([]*exec.Cmd, shards)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.Process.Kill()
				d.Wait()
			}
		}
	}()
	for i := 0; i < shards; i++ {
		walDir := filepath.Join(tmp, fmt.Sprintf("wal-%d", i))
		if daemons[i], err = startShard(bin, listens[i], queries[i], walDir, i, shards, peers); err != nil {
			return err
		}
	}

	// The fleet: agents route to their network's shard via the same map
	// merakid and merakisim agree on, alternating wire versions so both
	// codecs cross every shard.
	stop := make(chan struct{})
	defer close(stop)
	key := make([]byte, 32)
	for i := range key {
		key[i] = defaultKey
	}
	m := cluster.NewMap(shards)
	var agents []*telemetry.Agent
	ai := 0
	for n := 0; n < nNetworks; n++ {
		netID := uint64(100 + n)
		for ap := 0; ap < apsPerNet; ap++ {
			a := telemetry.NewAgent(fmt.Sprintf("Q2CL-%03d-%d", netID, ap), key)
			if ai%2 == 0 {
				a.Wire = telemetry.WireV2
			}
			a.Timeout = 2 * time.Second
			a.BackoffBase = 20 * time.Millisecond
			a.BackoffMax = 200 * time.Millisecond
			for _, r := range reports(netID, ap) {
				a.Enqueue(r)
			}
			agents = append(agents, a)
			go a.RunWithReconnect(listens[m.Shard(netID)], stop)
			ai++
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}

	want := controlDigest()

	r := &cluster.Router{Shards: queries, Timeout: 5 * time.Second}
	dig, err := r.MergedDigest()
	if err != nil {
		return fmt.Errorf("router merge: %v", err)
	}
	if dig.Degraded || len(dig.Down) != 0 {
		return fmt.Errorf("healthy cluster reported degraded: %+v", dig)
	}
	if dig.Digest != want {
		return fmt.Errorf("router digest mismatch\n got %s\nwant %s", dig.Digest, want)
	}

	lines, err := queryLines(queries[0], "fanout digest")
	if err != nil {
		return err
	}
	if lines[0] != want {
		return fmt.Errorf("daemon-side fanout digest mismatch\n got %s\nwant %s", lines[0], want)
	}
	if len(lines) < 2 || !strings.Contains(lines[1], "degraded=false") {
		return fmt.Errorf("fanout summary = %q, want degraded=false", lines)
	}
	return nil
}

func main() {
	shards := flag.Int("shards", 4, "cluster width")
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "clustercheck: -shards must be >= 1")
		os.Exit(2)
	}
	if err := run(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "clustercheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("clustercheck: PASS (shards=%d): merged cluster digest matches the single-daemon control\n", *shards)
}
