// Command tracecheck validates a flight-recorder dump for the
// trace-smoke CI gate: the file must parse as one JSON dump object,
// and at least one trace in it must carry the complete five-stage span
// chain (agent.enqueue → tunnel.write → daemon.read → store.ingest →
// epoch.merge) with correct parent links. `make trace-smoke` runs a
// fully sampled merakisim harvest and feeds the dump through here; a
// broken trace pipeline fails the build instead of silently recording
// partial chains.
package main

import (
	"fmt"
	"os"

	"wlanscale/internal/obs/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck DUMP.json")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	dump, err := trace.LoadDump(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	if len(dump.Events) == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: dump holds no span events")
		os.Exit(1)
	}

	// Replay the dump into a recorder large enough to hold all of it,
	// then look for a trace with the full stage chain.
	rec := trace.NewRecorder(len(dump.Events))
	rec.Load(dump)
	wantStages := []trace.Stage{
		trace.StageAgentEnqueue, trace.StageTunnelWrite, trace.StageDaemonRead,
		trace.StageStoreIngest, trace.StageEpochMerge,
	}
	complete := 0
	for _, id := range rec.TraceIDs() {
		evs := rec.Trace(id)
		if len(evs) != len(wantStages) {
			continue
		}
		ok := true
		for i, ev := range evs {
			st := wantStages[i]
			if ev.Stage != st.String() || ev.Span != st.SpanID() || ev.Parent != st.Parent() {
				ok = false
				break
			}
		}
		if ok {
			complete++
		}
	}
	if complete == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: no complete %d-stage trace among %d traces\n",
			len(wantStages), len(rec.TraceIDs()))
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %d complete traces, %d span events (reason %q)\n",
		complete, len(dump.Events), dump.Reason)
}
