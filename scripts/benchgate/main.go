// Command benchgate turns `go test -bench` output into a pass/fail
// regression gate against a checked-in baseline.
//
// It reads benchmark output on stdin, parses every metric each
// benchmark reports (ns/op, B/op, allocs/op, and custom ReportMetric
// units like bytes/report), and compares them to BENCH_baseline.json.
// A metric that regressed past the tolerance fails the gate with a
// line naming the benchmark, the unit, and both values; improvements
// and unknown benchmarks are reported but never fail. Benchmarks
// present in the baseline but absent from the input fail too — a gate
// that silently stops measuring is worse than none.
//
// Usage:
//
//	go test ./internal/backend -run xxx -bench . -benchmem | \
//	    go run ./scripts/benchgate -baseline BENCH_baseline.json
//
// Regenerate the baseline after an intentional change with -update.
// Benchmark names are normalized by stripping the trailing
// -GOMAXPROCS suffix so the baseline is portable across core counts.
//
// The default tolerance is ±20%. Wall-clock metrics (ns/op) are noisy
// on shared runners, so they get their own wider -time-tolerance;
// size and allocation metrics are deterministic and are held to the
// tight bound.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in expectation file: per-benchmark,
// per-unit metric values recorded on the reference runner.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Benchmarks maps normalized benchmark name -> unit -> value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parseBench extracts (name, unit->value) from one benchmark output
// line, or ok=false for non-benchmark lines.
func parseBench(line string) (string, map[string]float64, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", nil, false
	}
	name := regexp.MustCompile(`-\d+$`).ReplaceAllString(m[1], "")
	fields := strings.Fields(m[3])
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to gate against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression for deterministic metrics (B/op, allocs/op, bytes/report)")
	timeTolerance := flag.Float64("time-tolerance", 0.60, "allowed fractional regression for wall-clock metrics (ns/op), which are noisy on shared runners")
	update := flag.Bool("update", false, "rewrite the baseline from stdin instead of gating")
	flag.Parse()

	got := make(map[string]map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		if name, metrics, ok := parseBench(line); ok {
			if got[name] == nil {
				got[name] = make(map[string]float64)
			}
			for u, v := range metrics {
				got[name][u] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if len(got) == 0 {
		fatal("no benchmark lines found on stdin")
	}

	if *update {
		b := Baseline{
			Note:       "regenerate with: make bench-baseline (runs the gate benches and rewrites this file)",
			Benchmarks: got,
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal("marshal baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal("write baseline: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s rewritten with %d benchmarks\n", *baselinePath, len(got))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline (generate with -update): %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline: %v", err)
	}

	var failures, notes []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		units := make([]string, 0, len(want))
		for u := range want {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			wantV := want[unit]
			haveV, ok := have[unit]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: baseline has %s but run did not report it", name, unit))
				continue
			}
			tol := *tolerance
			if unit == "ns/op" {
				tol = *timeTolerance
			}
			switch {
			case wantV == 0:
				if haveV != 0 {
					failures = append(failures, fmt.Sprintf("%s: %s regressed from 0 to %g", name, unit, haveV))
				}
			case haveV > wantV*(1+tol):
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.4g -> %.4g (+%.0f%%, tolerance %.0f%%)",
					name, unit, wantV, haveV, 100*(haveV/wantV-1), 100*tol))
			case haveV < wantV*(1-tol):
				notes = append(notes, fmt.Sprintf("%s: %s improved %.4g -> %.4g; consider refreshing the baseline",
					name, unit, wantV, haveV))
			}
		}
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (add with -update)", name))
		}
	}

	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "benchgate: note: %s\n", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: OK — %d benchmarks within tolerance\n", len(names))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
