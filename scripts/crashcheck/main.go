// Command crashcheck is the kill-and-recover smoke gate (`make
// crash-smoke`): it builds merakid, harvests a small agent fleet into
// a WAL-backed store, SIGKILLs the daemon mid-harvest, restarts it
// over the same -wal-dir, waits for the fleet to drain, and compares
// the daemon's "digest" query against a never-crashed in-process
// control store. A mismatch — an acked report lost to the crash, or
// one double-counted by replay — fails the build. The seed for the
// kill moment comes from -seed (default 1) so a failing run can be
// replayed exactly; -cycles kills more than once per run.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

const (
	nAgents    = 3
	nReports   = 120
	defaultKey = 0x42 // matches merakid's default -key (64 hex '42's)
)

func reports(ai int) []*telemetry.Report {
	serial := fmt.Sprintf("Q2XX-SMOKE-%d", ai)
	out := make([]*telemetry.Report, 0, nReports)
	for i := 0; i < nReports; i++ {
		out = append(out, &telemetry.Report{
			Serial:    serial,
			Timestamp: uint64(1700000000 + i),
			Clients: []telemetry.ClientRecord{{
				MAC:  dot11.MAC{0x02, 0xc5, byte(ai), 0x00, byte(i >> 8), byte(i)},
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{
					App: "Netflix", UpBytes: uint64(i), DownBytes: uint64(i) * 7, Flows: 1,
				}},
			}},
		})
	}
	return out
}

func controlDigest() string {
	s := backend.NewStore()
	for ai := 0; ai < nAgents; ai++ {
		for i, r := range reports(ai) {
			r.SeqNo = uint64(i + 1)
			s.Ingest(r)
		}
	}
	return s.Digest()
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startDaemon(bin, listen, query, walDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-listen", listen, "-query", query,
		"-poll", "20ms", "-batch", "8", "-timeout", "2s",
		"-wal-dir", walDir, "-wal-fsync", "off",
		"-checkpoint", "75ms", "-trace-sample", "0",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", query, 200*time.Millisecond); err == nil {
			conn.Close()
			return cmd, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("daemon did not open query port %s", query)
}

func queryLine(addr, command string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		return "", err
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	line, _, _ := strings.Cut(b.String(), "\n")
	if line == "" {
		return "", fmt.Errorf("empty reply to %q", command)
	}
	return line, nil
}

func run(seed uint64, cycles int) error {
	tmp, err := os.MkdirTemp("", "crashcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "merakid")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/merakid").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	walDir := filepath.Join(tmp, "wal")
	addrs, err := freePorts(2)
	if err != nil {
		return err
	}
	listen, query := addrs[0], addrs[1]

	stop := make(chan struct{})
	defer close(stop)
	key := make([]byte, 32)
	for i := range key {
		key[i] = defaultKey
	}
	agents := make([]*telemetry.Agent, nAgents)
	for ai := 0; ai < nAgents; ai++ {
		a := telemetry.NewAgent(fmt.Sprintf("Q2XX-SMOKE-%d", ai), key)
		a.Timeout = 2 * time.Second
		a.BackoffBase = 20 * time.Millisecond
		a.BackoffMax = 200 * time.Millisecond
		for _, r := range reports(ai) {
			a.Enqueue(r)
		}
		agents[ai] = a
	}

	d, err := startDaemon(bin, listen, query, walDir)
	if err != nil {
		return err
	}
	for _, a := range agents {
		go a.RunWithReconnect(listen, stop)
	}

	killRNG := rng.New(seed).Split("crashcheck-kill")
	for c := 0; c < cycles; c++ {
		delay := time.Duration(30+killRNG.IntN(370)) * time.Millisecond
		time.Sleep(delay)
		fmt.Fprintf(os.Stderr, "crashcheck: cycle %d: SIGKILL after %v\n", c+1, delay)
		d.Process.Signal(syscall.SIGKILL)
		d.Wait()
		if d, err = startDaemon(bin, listen, query, walDir); err != nil {
			return err
		}
	}
	defer func() {
		d.Process.Kill()
		d.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}

	got, err := queryLine(query, "digest")
	if err != nil {
		return err
	}
	if want := controlDigest(); got != want {
		status, _ := queryLine(query, "status")
		return fmt.Errorf("digest mismatch after crash recovery\n got %s\nwant %s\nstatus: %s", got, want, status)
	}
	return nil
}

func main() {
	seed := flag.Uint64("seed", 1, "kill-moment seed (replay a failure exactly)")
	cycles := flag.Int("cycles", 2, "kill/restart cycles per run")
	flag.Parse()
	if err := run(*seed, *cycles); err != nil {
		fmt.Fprintf(os.Stderr, "crashcheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crashcheck: PASS (seed=%d cycles=%d): post-crash digest matches the no-crash control\n", *seed, *cycles)
}
