// Command merakisim simulates a fleet. It has two modes:
//
// Offline (default): run the usage-week simulation in-process and write
// the backend store snapshot to -out, for later analysis.
//
//	merakisim -networks 200 -out dataset.gob
//
// Serve mode: simulate N access points as live telemetry agents that
// connect to a running merakid, queue their measurement reports, and
// answer polls — the full wire path of paper Section 2.
//
//	merakisim -serve 127.0.0.1:7771 -aps 20 -duration 30s
//
// -serve also takes a comma-separated shard list: each agent then
// routes to the merakid owning its network under the cluster shard
// map, and -serve2 names a same-shaped secondary cluster for
// multi-home failover:
//
//	merakisim -serve 127.0.0.1:7771,127.0.0.1:7781 -aps 20
//
// Either mode accepts -timings, which prints an end-of-run stage
// summary (and, offline, the epoch pipeline's metrics) to stderr.
//
// Both modes also accept -trace-sample FRACTION, which stamps that
// fraction of harvest reports with deterministic trace IDs and records
// their span chains in a flight recorder; the recorder is dumped as
// one JSON object at end of run, to -trace-out when set and stderr
// otherwise. Tracing is observe-only: the snapshot and stdout are
// bit-identical with it on or off. A dump can be replayed into a
// daemon with merakid -trace-load for interactive "trace <id>"
// queries.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"wlanscale/internal/cluster"
	"wlanscale/internal/core"
	"wlanscale/internal/epoch"
	"wlanscale/internal/faultnet"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/rng"
	"wlanscale/internal/synth"
	"wlanscale/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	networks := flag.Int("networks", 120, "simulated networks (offline mode)")
	clientCap := flag.Int("client-cap", 400, "max clients per network (0 = uncapped)")
	out := flag.String("out", "dataset.gob", "snapshot output path (offline mode)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel usage-epoch workers (offline mode); results are identical for any value")
	serve := flag.String("serve", "", "backend address(es): run live agents instead of offline simulation; a comma-separated list shards the fleet, each agent routing by its network's cluster-map hash")
	serve2 := flag.String("serve2", "", "secondary backend address(es) for multi-home failover, same shard count and ordering as -serve")
	aps := flag.Int("aps", 10, "number of live agents (serve mode)")
	duration := flag.Duration("duration", 30*time.Second, "how long live agents run")
	every := flag.Duration("every", 2*time.Second, "report period per live agent")
	wire := flag.String("wire", "v2", "max harvest wire version agents announce (serve mode) and the offline harvest round-trip uses: v1 or v2")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "serve mode: per-op probability of corrupting each agent's tunnel I/O via faultnet — a deterministic degradation source for exercising the merakid health rules and merakireport -watch (0 = off)")
	keyHex := flag.String("key", strings.Repeat("42", 32), "64-hex-char pre-shared tunnel key")
	timings := flag.Bool("timings", false, "print an end-of-run stage-timing summary to stderr")
	traceSample := flag.Float64("trace-sample", 0, "fraction of reports to trace end to end (0 = off)")
	traceOut := flag.String("trace-out", "", "flight-recorder dump path (default stderr when tracing)")
	flag.Parse()

	// A nil timer (and nil registry) is the no-op path: without
	// -timings the run is not instrumented at all. The same holds for
	// the tracer: without -trace-sample no report carries a trace ID
	// and no span is ever recorded.
	var timer *obs.Timer
	if *timings {
		timer = obs.NewTimer()
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.NewRecorder(1<<16), *seed, *traceSample)
	}
	wireVer, err := telemetry.ParseWire(*wire)
	if err != nil {
		log.Fatalf("merakisim: %v", err)
	}
	if *serve != "" {
		if err := runAgents(*serve, *serve2, *aps, *seed, *duration, *every, wireVer, *keyHex, *chaosCorrupt, timer, tracer); err != nil {
			log.Fatalf("merakisim: %v", err)
		}
	} else if err := runOffline(*seed, *networks, *clientCap, *workers, int(wireVer), *out, timer, tracer); err != nil {
		log.Fatalf("merakisim: %v", err)
	}
	if s := timer.Summary(); s != "" {
		fmt.Fprintf(os.Stderr, "\nstage timings:\n%s", s)
	}
	if tracer != nil {
		if err := writeTraceDump(tracer.Recorder(), *traceOut); err != nil {
			log.Fatalf("merakisim: %v", err)
		}
	}
}

// writeTraceDump writes the flight recorder as one JSON dump — to path
// when set, stderr otherwise — in the format merakid -trace-load
// replays.
func writeTraceDump(rec *trace.Recorder, path string) error {
	w := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.DumpJSON(w, "end-of-run"); err != nil {
		return err
	}
	if path != "" {
		log.Printf("merakisim: %d traced reports dumped to %s", len(rec.TraceIDs()), path)
	}
	return nil
}

func runOffline(seed uint64, networks, clientCap, workers, wireVersion int, out string, timer *obs.Timer, tracer *trace.Tracer) error {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.UsageNetworks = networks
	cfg.ClientCap = clientCap
	cfg.Workers = workers
	cfg.WireVersion = wireVersion
	cfg.Trace = tracer
	if timer != nil {
		cfg.Obs = obs.NewRegistry()
	}
	sp := timer.Start("build-fleets")
	study, err := core.NewStudy(cfg)
	sp.End()
	if err != nil {
		return err
	}
	log.Printf("merakisim: simulating %d networks (Jan 2015 week) on %d workers...", networks, workers)
	sp = timer.Start("usage-epoch")
	u, err := study.RunUsageEpoch(study.Fleet15)
	sp.End()
	if err != nil {
		return err
	}
	ing, _ := u.Store.Stats()
	log.Printf("merakisim: %d reports ingested, %d clients aggregated", ing, u.Store.NumClients())
	sp = timer.Start("snapshot")
	err = u.Store.SaveFile(out)
	sp.End()
	if err != nil {
		return err
	}
	log.Printf("merakisim: snapshot written to %s", out)
	if cfg.Obs != nil {
		fmt.Fprintln(os.Stderr, "\npipeline metrics:")
		cfg.Obs.WriteText(os.Stderr)
	}
	return nil
}

// splitAddrs parses a comma-separated shard address list.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// runAgents spins up live AP agents that measure their simulated
// environments and stream reports to merakid daemons over encrypted
// tunnels. With one backend address every agent connects there; with a
// comma-separated shard list each agent routes to the shard owning its
// network under the cluster map, so a merakid fleet splits the harvest
// deterministically with zero coordination. A -serve2 list of the same
// length gives each agent a secondary in a second cluster to fail over
// to (the paper's dual-DC deployment, shard-aligned).
func runAgents(addrList, addrList2 string, nAPs int, seed uint64, duration, every time.Duration, wire byte, keyHex string, chaosCorrupt float64, timer *obs.Timer, tracer *trace.Tracer) error {
	if len(keyHex) != 64 {
		return fmt.Errorf("key must be 64 hex chars")
	}
	key := make([]byte, 32)
	if _, err := fmt.Sscanf(keyHex, "%64x", &key); err != nil {
		return fmt.Errorf("bad key: %v", err)
	}
	addrs := splitAddrs(addrList)
	addrs2 := splitAddrs(addrList2)
	if len(addrs2) > 0 && len(addrs2) != len(addrs) {
		return fmt.Errorf("-serve2 lists %d addresses, -serve %d: shard counts must match", len(addrs2), len(addrs))
	}
	shardMap := cluster.NewMap(len(addrs))

	sp := timer.Start("build-fleet")
	fleet, err := synth.GenerateFleet(synth.Params{
		Seed: seed, NumNetworks: (nAPs + 2) / 3, Epoch: epoch.Jan2015, ClientCap: 50,
	})
	sp.End()
	if err != nil {
		return err
	}
	type liveAP struct {
		agent *telemetry.Agent
		netID int
		apIdx int
		// chain is the agent's failover chain: its network's shard
		// address, then the same shard in the secondary cluster.
		chain []string
	}
	var live []liveAP
	for _, n := range fleet.Networks {
		shard := shardMap.Shard(uint64(n.ID))
		chain := []string{addrs[shard]}
		if len(addrs2) > 0 {
			chain = append(chain, addrs2[shard])
		}
		for i := range n.APs {
			if len(live) == nAPs {
				break
			}
			ag := telemetry.NewAgent(n.APs[i].Serial, key)
			ag.Wire = wire
			if tracer != nil {
				ag.EnableTrace(tracer)
			}
			if chaosCorrupt > 0 {
				// Route this agent's sessions through a seeded faultnet
				// corruption wrapper: the daemon sees MAC failures and
				// counts them into harvest.errors, which is exactly what
				// the harvest-degradation health rule watches.
				plan := faultnet.Plan{
					Seed:        seed + uint64(len(live)),
					Corrupt:     []faultnet.Window{{From: 0, To: 1 << 30}},
					CorruptProb: chaosCorrupt,
				}
				idx := len(live)
				ag.Dial = func(addr string) (net.Conn, error) {
					c, err := net.Dial("tcp", addr)
					if err != nil {
						return nil, err
					}
					return faultnet.WrapConn(c, plan, idx), nil
				}
			}
			live = append(live, liveAP{
				agent: ag,
				netID: n.ID,
				apIdx: i,
				chain: chain,
			})
		}
	}
	log.Printf("merakisim: %d live agents connecting to %d shard(s) (%s) for %v",
		len(live), len(addrs), strings.Join(addrs, ","), duration)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for idx, la := range live {
		wg.Add(1)
		go func(idx int, la liveAP) {
			defer wg.Done()
			la.agent.RunAddrs(la.chain, stop)
		}(idx, la)

		// Separate producer: measure and enqueue reports periodically.
		wg.Add(1)
		go func(idx int, la liveAP) {
			defer wg.Done()
			n := fleet.Networks[la.netID]
			a := n.APs[la.apIdx]
			env, err := fleet.Environment(n, la.apIdx, epoch.Jan2015)
			if err != nil {
				log.Printf("agent %s: %v", a.Serial, err)
				return
			}
			src := rng.New(seed).SplitN("live", idx)
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			ts := uint64(0)
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					ts += uint64(every.Seconds())
					tod := 9 + src.Float64()*9 // business hours
					a.Radio24.Measure(env.Hood, tod, every, env.OwnDuty24)
					a.Radio5.Measure(env.Hood, tod, every, env.OwnDuty5)
					neighbors := a.ScanNeighbors(env.Neighbors24)
					neighbors = append(neighbors, a.ScanNeighbors(env.Neighbors5)...)
					rep := a.BuildReport(ts, neighbors, nil, nil)
					la.agent.Enqueue(rep)
				}
			}
		}(idx, la)
	}
	sp = timer.Start("live-agents")
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	sp.End()
	var queued, dropped int
	for _, la := range live {
		queued += la.agent.QueueLen()
		dropped += la.agent.Dropped()
	}
	log.Printf("merakisim: done; %d reports still queued, %d dropped", queued, dropped)
	return nil
}
