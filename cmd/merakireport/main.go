// Command merakireport regenerates every table and figure of the paper
// from a fresh simulation run. By default it runs at laptop scale;
// -scale full uses the paper's populations (20,667 networks, 10,000 APs
// per hardware study) and takes correspondingly longer.
//
// Usage:
//
//	merakireport [-seed N] [-scale small|medium|full] [-only exp1,exp2]
//
// Experiments: table1 table2 table3 table4 table5 table6 table7
// fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"wlanscale/internal/core"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.String("scale", "small", "simulation scale: small, medium, or full")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel usage-epoch workers; results are identical for any value")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	switch *scale {
	case "small":
	case "medium":
		cfg.UsageNetworks = 800
		cfg.ClientCap = 1500
		cfg.LinkNetworks = 800
		cfg.LinkWindows = 300
		cfg.UtilAPs = 2000
		cfg.ScanAPs = 1500
	case "full":
		cfg = cfg.Full()
		cfg.Seed = *seed
		cfg.Workers = *workers
		cfg.Sampling = meshprobe.BinomialApprox
	default:
		fmt.Fprintf(os.Stderr, "merakireport: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, e := range strings.Split(*only, ",") {
			if strings.TrimSpace(e) == name {
				return true
			}
		}
		return false
	}

	if err := run(cfg, want); err != nil {
		fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg core.Config, want func(string) bool) error {
	study, err := core.NewStudy(cfg)
	if err != nil {
		return err
	}
	section := func(s string) { fmt.Printf("\n%s\n%s\n", s, strings.Repeat("=", len(s))) }

	if want("table1") {
		section("Table 1")
		fmt.Print(core.Table1Hardware().Render())
	}
	if want("table2") {
		section("Table 2")
		fmt.Print(core.Table2Industries(study.Fleet15).Render())
	}

	needUsage := want("table3") || want("table4") || want("table5") || want("table6") || want("fig1")
	var now, before *core.UsageEpoch
	if needUsage {
		fmt.Fprintln(os.Stderr, "simulating usage weeks (two epochs)...")
		if now, err = study.RunUsageEpoch(study.Fleet15); err != nil {
			return err
		}
		if before, err = study.RunUsageEpoch(study.Fleet14); err != nil {
			return err
		}
	}
	if want("table3") {
		section("Table 3")
		fmt.Print(core.Table3UsageByOS(now, before).Render())
	}
	if want("table4") {
		section("Table 4")
		fmt.Print(core.Table4Capabilities(now, before).Render())
	}
	if want("table5") {
		section("Table 5")
		fmt.Print(core.Table5TopApps(now, before, 40).Render())
	}
	if want("table6") {
		section("Table 6")
		fmt.Print(core.Table6Categories(now, before).Render())
	}
	if want("fig1") {
		section("Figure 1")
		fmt.Print(core.Figure1RSSI(now).Render())
	}

	if want("table7") || want("fig2") {
		fmt.Fprintln(os.Stderr, "scanning AP environments (two epochs)...")
		scanNow, err := study.RunNeighborScan(epoch.Jan2015)
		if err != nil {
			return err
		}
		scanBefore, err := study.RunNeighborScan(epoch.Jul2014)
		if err != nil {
			return err
		}
		apScale := 10000.0 / float64(len(scanNow.PerAP))
		if want("table7") {
			section("Table 7")
			fmt.Print(core.Table7NearbyNetworks(scanNow, scanBefore, apScale).Render())
		}
		if want("fig2") {
			section("Figure 2")
			fmt.Print(core.Figure2NearbyByChannel(scanNow, apScale).Render())
		}
	}

	if want("fig3") {
		fmt.Fprintln(os.Stderr, "measuring link deliveries (two epochs)...")
		section("Figure 3")
		fmt.Print(study.RunFigure3().Render())
	}
	if want("fig4") {
		section("Figure 4")
		fmt.Print(study.RunLinkSeries(dot11.Band24).Render())
	}
	if want("fig5") {
		section("Figure 5")
		fmt.Print(study.RunLinkSeries(dot11.Band5).Render())
	}
	if want("fig6") {
		fmt.Fprintln(os.Stderr, "measuring MR16 utilization...")
		r, err := study.RunFigure6()
		if err != nil {
			return err
		}
		section("Figure 6")
		fmt.Print(r.Render())
	}
	if want("fig7") {
		r, err := study.RunScatter(dot11.Band24)
		if err != nil {
			return err
		}
		section("Figure 7")
		fmt.Print(r.Render())
	}
	if want("fig8") {
		r, err := study.RunScatter(dot11.Band5)
		if err != nil {
			return err
		}
		section("Figure 8")
		fmt.Print(r.Render())
	}
	if want("fig9") {
		r, err := study.RunFigure9()
		if err != nil {
			return err
		}
		section("Figure 9")
		fmt.Print(r.Render())
	}
	if want("fig10") {
		r, err := study.RunFigure10()
		if err != nil {
			return err
		}
		section("Figure 10")
		fmt.Print(r.Render())
	}
	if want("fig11") {
		r, err := study.RunFigure11(4)
		if err != nil {
			return err
		}
		section("Figure 11")
		fmt.Print(r.Render())
	}
	return nil
}
