// Command merakireport regenerates every table and figure of the paper
// from a fresh simulation run. By default it runs at laptop scale;
// -scale full uses the paper's populations (20,667 networks, 10,000 APs
// per hardware study) and takes correspondingly longer.
//
// Usage:
//
//	merakireport [-seed N] [-scale small|medium|full] [-only exp1,exp2] [-timings]
//	merakireport -cluster 127.0.0.1:7772,127.0.0.1:7782
//	merakireport -cluster 127.0.0.1:7772,127.0.0.1:7782 -watch
//	merakireport -cluster OLDADDRS -rebalance NEWADDRS [-rebalance-token T]
//
// The second form skips simulation and reports on a live sharded
// cluster instead: every shard's status plus the scatter-gathered
// merged digest, with down shards flagged rather than fatal.
//
// -rebalance live-migrates the cluster from the -cluster topology to
// the new one: every network whose jump-map home changes is parted on
// its source, streamed to its destination, digest-verified there, and
// only then dropped from the source — the OPERATIONS.md §4 runbook in
// one command. Exit status is nonzero if the verify gate rolled the
// migration back.
//
// -watch turns the cluster report into a periodically refreshing
// terminal dashboard: one line per shard (up/down, device pool, ingest
// totals and rate, WAL flush p99, degraded latch, firing alerts — the
// merakid "watch" query), refreshed every -watch-every. Down shards
// show as DOWN lines rather than killing the watch, so the dashboard
// rides through an outage. -watch-count bounds the refreshes (0 =
// until interrupted; a finite count also skips the screen-clear, which
// is what the monitoring smoke gate scrapes).
//
// Experiments: table1 table2 table3 table4 table5 table6 table7
// fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//
// -timings prints an end-of-run summary to stderr: wall-clock per
// simulation/render stage plus the epoch pipeline's metrics. Timing is
// observe-only, so the rendered tables are bit-identical with and
// without it. -trace-sample records the usage-epoch span chains of
// that fraction of reports into a flight recorder, dumped as JSON at
// exit (-trace-out or stderr); like timing it never changes output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"wlanscale/internal/cluster"
	"wlanscale/internal/core"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	clusterAddrs := flag.String("cluster", "", "comma-separated shard query addresses: report on a live sharded cluster (status + merged digest) instead of simulating")
	rebalance := flag.String("rebalance", "", "with -cluster: comma-separated query addresses of the NEW topology; live-migrate every network whose shard-map home changes from the -cluster topology, with a digest-verified cutover")
	rebalanceToken := flag.String("rebalance-token", "", "migration token for -rebalance (default derived from the shard counts); re-use a crashed run's token to resume it, pick a fresh one after a verify rollback")
	watch := flag.Bool("watch", false, "with -cluster: refreshing per-shard dashboard (up/degraded, ingest rates, WAL latency, firing alerts) instead of a one-shot report")
	watchEvery := flag.Duration("watch-every", 2*time.Second, "dashboard refresh cadence for -watch")
	watchCount := flag.Int("watch-count", 0, "number of -watch refreshes before exiting (0 = until interrupted)")
	scale := flag.String("scale", "small", "simulation scale: small, medium, or full")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel usage-epoch workers; results are identical for any value")
	wire := flag.String("wire", "v1", "harvest wire version the usage pipeline round-trips reports through: v1 or v2 (tables are identical)")
	timings := flag.Bool("timings", false, "print an end-of-run stage-timing summary to stderr")
	traceSample := flag.Float64("trace-sample", 0, "fraction of usage-epoch reports to trace end to end (0 = off)")
	traceOut := flag.String("trace-out", "", "flight-recorder dump path (default stderr when tracing)")
	flag.Parse()

	if *clusterAddrs != "" {
		var err error
		switch {
		case *rebalance != "":
			err = runRebalance(*clusterAddrs, *rebalance, *rebalanceToken)
		case *watch:
			err = runWatch(*clusterAddrs, *watchEvery, *watchCount)
		default:
			err = runCluster(*clusterAddrs)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *watch || *rebalance != "" {
		fmt.Fprintln(os.Stderr, "merakireport: -watch and -rebalance need -cluster addresses")
		os.Exit(2)
	}

	var timer *obs.Timer
	cfg := core.DefaultConfig()
	if *timings {
		timer = obs.NewTimer()
		cfg.Obs = obs.NewRegistry()
	}
	if *traceSample > 0 {
		cfg.Trace = trace.New(trace.NewRecorder(1<<16), *seed, *traceSample)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	wireVer, err := telemetry.ParseWire(*wire)
	if err != nil {
		fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
		os.Exit(2)
	}
	cfg.WireVersion = int(wireVer)
	switch *scale {
	case "small":
	case "medium":
		cfg.UsageNetworks = 800
		cfg.ClientCap = 1500
		cfg.LinkNetworks = 800
		cfg.LinkWindows = 300
		cfg.UtilAPs = 2000
		cfg.ScanAPs = 1500
	case "full":
		cfg = cfg.Full()
		cfg.Seed = *seed
		cfg.Workers = *workers
		cfg.Sampling = meshprobe.BinomialApprox
	default:
		fmt.Fprintf(os.Stderr, "merakireport: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, e := range strings.Split(*only, ",") {
			if strings.TrimSpace(e) == name {
				return true
			}
		}
		return false
	}

	if err := run(cfg, want, timer); err != nil {
		fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
		os.Exit(1)
	}
	if s := timer.Summary(); s != "" {
		fmt.Fprintf(os.Stderr, "\nstage timings:\n%s", s)
	}
	if cfg.Obs != nil {
		fmt.Fprintln(os.Stderr, "\npipeline metrics:")
		cfg.Obs.WriteText(os.Stderr)
	}
	if cfg.Trace != nil {
		w := os.Stderr
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := cfg.Trace.Recorder().DumpJSON(w, "end-of-run"); err != nil {
			fmt.Fprintf(os.Stderr, "merakireport: %v\n", err)
			os.Exit(1)
		}
	}
}

// runCluster is the -cluster mode: scatter-gather over a live sharded
// merakid fleet, printing each shard's status and the merged cluster
// digest. Down shards degrade the report rather than kill it — the
// surviving shards' status and a partial digest still print, with the
// casualties called out — and the exit status stays zero so a watch
// loop keeps reporting through an outage.
func runCluster(addrList string) error {
	addrs := strings.Split(addrList, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	r := &cluster.Router{Shards: addrs}
	fmt.Printf("cluster: %d shard(s)\n", len(addrs))
	for _, rep := range r.Fanout("status") {
		fmt.Printf("\n[shard %d %s]\n", rep.Shard, rep.Addr)
		if rep.Err != nil {
			fmt.Printf("DOWN: %v\n", rep.Err)
			continue
		}
		for _, ln := range rep.Lines {
			fmt.Println(ln)
		}
	}
	dig, err := r.MergedDigest()
	if err != nil {
		return fmt.Errorf("merged digest: %w", err)
	}
	fmt.Printf("\ncluster digest %s\n", dig.Digest)
	fmt.Printf("shards=%d up=%d down=%v degraded=%t\n",
		dig.Shards, dig.Shards-len(dig.Down), dig.Down, dig.Degraded)
	return nil
}

// runRebalance is the -rebalance driver: run the live-migration
// coordinator from the operator's machine, moving every network whose
// jump-map home differs between the -cluster (old) and -rebalance
// (new) topologies. Progress streams to stderr; the summary — token,
// moved count, per-pair transfers, slice digest, post-cutover merged
// digest — prints to stdout. A non-nil error (verify-gate rollback
// included) exits nonzero so scripts can gate on it.
func runRebalance(oldList, newList, token string) error {
	split := func(s string) []string {
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	oldAddrs, newAddrs := split(oldList), split(newList)
	if token == "" {
		token = fmt.Sprintf("rebalance-%dto%d", len(oldAddrs), len(newAddrs))
	}
	rep, err := cluster.Rebalance(oldAddrs, newAddrs, cluster.RebalanceOptions{
		Token: token,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("rebalance token=%s shards %d -> %d\n", rep.Token, rep.OldShards, rep.NewShards)
	fmt.Printf("moved networks=%d transfers=%d\n", rep.MovedNetworks, len(rep.Transfers))
	for _, tr := range rep.Transfers {
		fmt.Printf("  shard %d -> shard %d: %d network(s)\n", tr.Src, tr.Dst, len(tr.Networks))
	}
	if rep.MovedNetworks > 0 {
		fmt.Printf("slice digest %s (verified on destinations)\n", rep.SliceDigest)
	}
	fmt.Printf("cluster digest %s\n", rep.Full.Digest)
	fmt.Printf("shards=%d up=%d down=%v degraded=%t\n",
		rep.Full.Shards, rep.Full.Shards-len(rep.Full.Down), rep.Full.Down, rep.Full.Degraded)
	if rep.MovedNetworks > 0 {
		fmt.Println("next: re-run until moved=0, then flip agents to the new topology (see OPERATIONS.md)")
	}
	return nil
}

// runWatch is the -watch dashboard loop: every refresh it
// scatter-gathers the one-line "watch" summary from every shard and
// prints a fleet header plus one line per shard — up shards their
// summary (devices, ingest totals and rate, WAL flush p99, degraded
// latch, firing alerts), down shards a DOWN line. Interactive runs
// (count=0) clear the terminal between refreshes; finite counts print
// append-only so the output is scrapeable.
func runWatch(addrList string, every time.Duration, count int) error {
	addrs := strings.Split(addrList, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	// A dashboard wants freshness over persistence: one attempt per
	// shard per refresh, the next refresh is the retry.
	r := &cluster.Router{Shards: addrs, Timeout: 2 * time.Second, Retries: -1}
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(every)
		}
		if count == 0 {
			fmt.Print("\033[H\033[2J")
		}
		replies := r.Fanout("watch")
		down := cluster.DownShards(replies)
		fmt.Printf("fleet watch %s refresh=%s shards=%d up=%d down=%v\n",
			time.Now().UTC().Format(time.RFC3339), every, len(replies), len(replies)-len(down), down)
		for _, rep := range replies {
			if rep.Err != nil {
				fmt.Printf("shard=%d/%d DOWN: %v\n", rep.Shard, len(replies), rep.Err)
				continue
			}
			for _, ln := range rep.Lines {
				fmt.Println(ln)
			}
		}
	}
	return nil
}

func run(cfg core.Config, want func(string) bool, timer *obs.Timer) error {
	sp := timer.Start("build-fleets")
	study, err := core.NewStudy(cfg)
	sp.End()
	if err != nil {
		return err
	}
	section := func(s string) { fmt.Printf("\n%s\n%s\n", s, strings.Repeat("=", len(s))) }
	// timed runs one experiment's simulate+render under a timer stage.
	timed := func(stage string, f func() error) error {
		sp := timer.Start(stage)
		defer sp.End()
		return f()
	}

	if want("table1") {
		section("Table 1")
		fmt.Print(core.Table1Hardware().Render())
	}
	if want("table2") {
		section("Table 2")
		fmt.Print(core.Table2Industries(study.Fleet15).Render())
	}

	needUsage := want("table3") || want("table4") || want("table5") || want("table6") || want("fig1")
	var now, before *core.UsageEpoch
	if needUsage {
		fmt.Fprintln(os.Stderr, "simulating usage weeks (two epochs)...")
		err := timed("simulate-usage", func() error {
			if now, err = study.RunUsageEpoch(study.Fleet15); err != nil {
				return err
			}
			before, err = study.RunUsageEpoch(study.Fleet14)
			return err
		})
		if err != nil {
			return err
		}
	}
	if want("table3") {
		section("Table 3")
		fmt.Print(core.Table3UsageByOS(now, before).Render())
	}
	if want("table4") {
		section("Table 4")
		fmt.Print(core.Table4Capabilities(now, before).Render())
	}
	if want("table5") {
		section("Table 5")
		fmt.Print(core.Table5TopApps(now, before, 40).Render())
	}
	if want("table6") {
		section("Table 6")
		fmt.Print(core.Table6Categories(now, before).Render())
	}
	if want("fig1") {
		section("Figure 1")
		fmt.Print(core.Figure1RSSI(now).Render())
	}

	if want("table7") || want("fig2") {
		fmt.Fprintln(os.Stderr, "scanning AP environments (two epochs)...")
		var scanNow, scanBefore *core.NeighborScan
		err := timed("simulate-scans", func() error {
			var err error
			if scanNow, err = study.RunNeighborScan(epoch.Jan2015); err != nil {
				return err
			}
			scanBefore, err = study.RunNeighborScan(epoch.Jul2014)
			return err
		})
		if err != nil {
			return err
		}
		apScale := 10000.0 / float64(len(scanNow.PerAP))
		if want("table7") {
			section("Table 7")
			fmt.Print(core.Table7NearbyNetworks(scanNow, scanBefore, apScale).Render())
		}
		if want("fig2") {
			section("Figure 2")
			fmt.Print(core.Figure2NearbyByChannel(scanNow, apScale).Render())
		}
	}

	if want("fig3") {
		fmt.Fprintln(os.Stderr, "measuring link deliveries (two epochs)...")
		if err := timed("links-fig3", func() error {
			section("Figure 3")
			fmt.Print(study.RunFigure3().Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := timed("links-fig4", func() error {
			section("Figure 4")
			fmt.Print(study.RunLinkSeries(dot11.Band24).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig5") {
		if err := timed("links-fig5", func() error {
			section("Figure 5")
			fmt.Print(study.RunLinkSeries(dot11.Band5).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig6") {
		fmt.Fprintln(os.Stderr, "measuring MR16 utilization...")
		if err := timed("util-fig6", func() error {
			r, err := study.RunFigure6()
			if err != nil {
				return err
			}
			section("Figure 6")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := timed("util-fig7", func() error {
			r, err := study.RunScatter(dot11.Band24)
			if err != nil {
				return err
			}
			section("Figure 7")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig8") {
		if err := timed("util-fig8", func() error {
			r, err := study.RunScatter(dot11.Band5)
			if err != nil {
				return err
			}
			section("Figure 8")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig9") {
		if err := timed("util-fig9", func() error {
			r, err := study.RunFigure9()
			if err != nil {
				return err
			}
			section("Figure 9")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig10") {
		if err := timed("util-fig10", func() error {
			r, err := study.RunFigure10()
			if err != nil {
				return err
			}
			section("Figure 10")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig11") {
		if err := timed("spectrum-fig11", func() error {
			r, err := study.RunFigure11(4)
			if err != nil {
				return err
			}
			section("Figure 11")
			fmt.Print(r.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
