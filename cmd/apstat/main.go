// Command apstat queries a running merakid over its line-based query
// port and prints the response.
//
// Usage:
//
//	apstat [-addr 127.0.0.1:7772] status
//	apstat top-apps 20
//	apstat util
//	apstat save /tmp/snapshot.gob
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7772", "merakid query address")
	timeout := flag.Duration("timeout", 10*time.Second, "dial and I/O deadline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: apstat [-addr host:port] COMMAND [ARGS]")
		os.Exit(2)
	}
	if err := run(*addr, strings.Join(flag.Args(), " "), *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "apstat: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, command string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	// A stalled merakid should cost one deadline, not a hung CLI.
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			break
		}
		fmt.Println(line)
	}
	return sc.Err()
}
