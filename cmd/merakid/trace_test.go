package main

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry"
)

// seedTrace records a full five-stage span chain for id into the
// daemon's flight recorder, as a harvest would.
func seedTrace(d *daemon, id trace.ID, serial string) {
	stages := []trace.Stage{
		trace.StageAgentEnqueue, trace.StageTunnelWrite, trace.StageDaemonRead,
		trace.StageStoreIngest, trace.StageEpochMerge,
	}
	for i, st := range stages {
		ev := trace.Event{
			Trace: id, Span: st.SpanID(), Parent: st.Parent(), Stage: st.String(),
			Serial: serial, Seq: 7, StartUS: int64(1000 * i), DurUS: int64(10 + i),
		}
		if st == trace.StageTunnelWrite {
			ev.Retries = 2
			ev.Fault = "stall@3"
		}
		d.trec.Record(ev)
	}
}

// TestQueryTrace drives the "trace" query command end to end: "trace
// last" and "trace <id>" render the span chain in pipeline order with
// annotations, and the error paths all answer ERR lines.
func TestQueryTrace(t *testing.T) {
	d, addr := startQueryServer(t)

	// Empty recorder first: "trace last" must diagnose, not hang.
	if got := query(t, addr, "trace last"); len(got) != 1 || !strings.HasPrefix(got[0], "ERR") {
		t.Fatalf("trace last on empty recorder = %q, want one ERR line", got)
	}

	id := trace.ID(0xdeadbeef12345678)
	seedTrace(d, id, "Q2AA-TEST")

	for _, cmd := range []string{"trace " + id.String(), "trace last"} {
		lines := query(t, addr, cmd)
		if len(lines) != 6 {
			t.Fatalf("%q returned %d lines, want header + 5 spans: %q", cmd, len(lines), lines)
		}
		if want := "trace " + id.String() + " spans=5"; lines[0] != want {
			t.Fatalf("%q header = %q, want %q", cmd, lines[0], want)
		}
		wantStages := []string{"agent.enqueue", "tunnel.write", "daemon.read", "store.ingest", "epoch.merge"}
		for i, l := range lines[1:] {
			if !strings.Contains(l, wantStages[i]) {
				t.Fatalf("%q span line %d = %q, want stage %q", cmd, i, l, wantStages[i])
			}
			// Depth-indented: span i sits under i*2 leading spaces.
			if want := strings.Repeat("  ", i) + wantStages[i]; !strings.HasPrefix(l, want) {
				t.Fatalf("%q span line %d = %q, want indent prefix %q", cmd, i, l, want)
			}
		}
		if !strings.Contains(lines[2], "retries=2") || !strings.Contains(lines[2], `fault="stall@3"`) {
			t.Fatalf("tunnel.write line lost its annotations: %q", lines[2])
		}
	}

	cases := []struct{ cmd, wantPrefix string }{
		{"trace", "ERR trace needs"},
		{"trace zz", "ERR"},
		{"trace 0000000000000bad", "ERR no such trace"},
	}
	for _, c := range cases {
		got := query(t, addr, c.cmd)
		if len(got) != 1 || !strings.HasPrefix(got[0], c.wantPrefix) {
			t.Fatalf("%q = %q, want single line with prefix %q", c.cmd, got, c.wantPrefix)
		}
	}
}

// TestDebugServerShutdownWithStalledClient pins the debug listener's
// slow-loris defence: a client that connects and never completes a
// request is cut off by the read-header deadline, so Shutdown returns
// promptly instead of waiting on the stalled connection forever.
func TestDebugServerShutdownWithStalledClient(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	srv := newDebugServer(debugMux(d))
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 {
		t.Fatalf("debug server is missing I/O deadlines: header=%v read=%v write=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout)
	}
	srv.ReadHeaderTimeout = 200 * time.Millisecond
	srv.ReadTimeout = 200 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	// The stalled client: opens a connection, sends half a request
	// line, and goes silent.
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /debug/va"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not complete with a stalled client attached: %v", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("Shutdown took %v, want well under the context deadline", took)
	}
}

// TestDebugMetricsEndpoint checks the Prometheus text exposition on
// the -debug mux: sanitized names and histogram bucket series.
func TestDebugMetricsEndpoint(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	d.store.Ingest(&telemetry.Report{Serial: "Q2AA-TEST", SeqNo: 1})
	d.obs.Histogram("store.save_us", obs.DurationBuckets).Observe(75)
	srv := httptest.NewServer(debugMux(d))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/debug/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"store_ingests 1", "trace_capacity 1024",
		`store_save_us_bucket{le="100"} 1`, `store_save_us_bucket{le="+Inf"} 1`,
		"store_save_us_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/debug/metrics missing %q; body:\n%s", want, text)
		}
	}
}

// TestWatchHealthFiresDump checks the degradation trigger: a burst of
// harvest errors past the threshold dumps the flight recorder.
func TestWatchHealthFiresDump(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	d.dump = &trace.Trigger{Rec: d.trec, W: io.Discard, MinInterval: time.Millisecond,
		Fires: d.obs.Counter("trace.dumps")}
	stop := make(chan struct{})
	defer close(stop)
	go d.watchHealth(5*time.Millisecond, 3, stop)

	for i := 0; i < 5; i++ {
		d.health.Observe(telemetry.ErrBadMAC)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.obs.Counter("trace.dumps").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("degradation watcher never fired a dump")
		}
		time.Sleep(time.Millisecond)
	}
}
