package main

import (
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/cluster"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// The cluster kill harness: four real merakid shards, each with its own
// WAL dir, harvest a mixed-wire fleet routed by the shard map. One
// shard is SIGKILLed mid-harvest and restarted over its WAL. After the
// fleet drains, the router's merged digest — and the surviving shards'
// own "fanout digest" view — must equal a single in-process control
// store fed the same reports: sharding plus a crash changes nothing
// about what the cluster holds.

const (
	clusterShards     = 4
	clusterNetworks   = 6
	clusterAPsPerNet  = 2
	clusterReportsPer = 60
)

// clusterFleetReports builds one AP's deterministic stream. Serials and
// client MACs embed the network ID, so networks—and therefore
// shards—own disjoint serials and clients.
func clusterFleetReports(netID uint64, ap int) []*telemetry.Report {
	serial := fmt.Sprintf("Q2CL-%03d-%d", netID, ap)
	out := make([]*telemetry.Report, 0, clusterReportsPer)
	for i := 0; i < clusterReportsPer; i++ {
		out = append(out, &telemetry.Report{
			Serial:    serial,
			Timestamp: uint64(1700000000 + i),
			Clients: []telemetry.ClientRecord{{
				MAC:  dot11.MAC{0x02, 0xc7, byte(netID), byte(ap), byte(i >> 8), byte(i)},
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{
					App: "YouTube", UpBytes: uint64(i), DownBytes: uint64(i) * 11, Flows: 1,
				}},
			}},
		})
	}
	return out
}

// clusterControlDigest is the single-daemon ground truth: every AP's
// stream ingested into one store with the seqnos Enqueue would stamp.
func clusterControlDigest() string {
	s := backend.NewStore()
	for n := 0; n < clusterNetworks; n++ {
		for ap := 0; ap < clusterAPsPerNet; ap++ {
			for i, r := range clusterFleetReports(uint64(100+n), ap) {
				r.SeqNo = uint64(i + 1)
				s.Ingest(r)
			}
		}
	}
	return s.Digest()
}

func TestClusterKillRecoveryDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster harness; skipped in -short")
	}
	bin := buildMerakid(t)
	want := clusterControlDigest()

	ports := freePorts(t, 2*clusterShards)
	listens := make([]string, clusterShards)
	queries := make([]string, clusterShards)
	walDirs := make([]string, clusterShards)
	for i := 0; i < clusterShards; i++ {
		listens[i], queries[i] = ports[2*i], ports[2*i+1]
		walDirs[i] = t.TempDir()
	}
	peers := strings.Join(queries, ",")
	shardFlags := func(i int) []string {
		return []string{
			"-shard", strconv.Itoa(i),
			"-shards", strconv.Itoa(clusterShards),
			"-peers", peers,
		}
	}

	daemons := make([]*exec.Cmd, clusterShards)
	for i := 0; i < clusterShards; i++ {
		daemons[i] = startDaemon(t, bin, listens[i], queries[i], walDirs[i], shardFlags(i)...)
	}
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.Process.Kill()
				d.Wait()
			}
		}
	}()

	// The fleet, routed by the same map merakisim uses: each agent's
	// address chain is exactly its network's shard. Wire versions
	// alternate so both codecs cross every shard's WAL.
	stop := make(chan struct{})
	defer close(stop)
	key := make([]byte, 32)
	for i := range key {
		key[i] = 0x42
	}
	m := cluster.NewMap(clusterShards)
	var agents []*telemetry.Agent
	ai := 0
	for n := 0; n < clusterNetworks; n++ {
		netID := uint64(100 + n)
		for ap := 0; ap < clusterAPsPerNet; ap++ {
			a := telemetry.NewAgent(fmt.Sprintf("Q2CL-%03d-%d", netID, ap), key)
			if ai%2 == 0 {
				a.Wire = telemetry.WireV2
			}
			a.Timeout = 2 * time.Second
			a.BackoffBase = 20 * time.Millisecond
			a.BackoffMax = 200 * time.Millisecond
			for _, r := range clusterFleetReports(netID, ap) {
				a.Enqueue(r)
			}
			agents = append(agents, a)
			go a.RunWithReconnect(listens[m.Shard(netID)], stop)
			ai++
		}
	}

	// SIGKILL one shard mid-harvest and restart it over its WAL; its
	// agents retry through the outage while the other shards keep
	// harvesting undisturbed.
	const victim = 1
	time.Sleep(80 * time.Millisecond)
	if err := daemons[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[victim].Wait()
	daemons[victim] = startDaemon(t, bin, listens[victim], queries[victim], walDirs[victim], shardFlags(victim)...)

	deadline := drainDeadline(t)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Arm one: the test-side router merges all four shards.
	r := &cluster.Router{Shards: queries, Timeout: 5 * time.Second}
	dig, err := r.MergedDigest()
	if err != nil {
		t.Fatalf("merged digest: %v", err)
	}
	if dig.Degraded || len(dig.Down) != 0 {
		t.Fatalf("recovered cluster still degraded: %+v", dig)
	}
	if dig.Digest != want {
		t.Fatalf("cluster digest after kill+recovery\n got %s\nwant %s", dig.Digest, want)
	}

	// Arm two: the daemons' own scatter-gather — "fanout digest" asked
	// of the recovered victim itself must agree.
	lines := queryDaemon(t, queries[victim], "fanout digest")
	if len(lines) < 2 {
		t.Fatalf("fanout digest answered %q", lines)
	}
	if lines[0] != want {
		t.Fatalf("daemon-side fanout digest = %s, want %s (status %q)", lines[0], want, lines[1])
	}
	if !strings.Contains(lines[1], "degraded=false") {
		t.Fatalf("fanout summary = %q, want degraded=false", lines[1])
	}

	// Every shard self-identifies in status; together they cover 0..3.
	seen := make(map[string]bool)
	for i := range queries {
		for _, ln := range queryDaemon(t, queries[i], "status") {
			if strings.HasPrefix(ln, "shard ") {
				seen[ln] = true
			}
		}
	}
	for i := 0; i < clusterShards; i++ {
		if !seen[fmt.Sprintf("shard %d/%d", i, clusterShards)] {
			t.Fatalf("status lines %v missing shard %d", seen, i)
		}
	}
}
