package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

// The kill harness: a real merakid subprocess harvesting a small agent
// fleet is SIGKILLed at a seeded random moment and restarted over the
// same -wal-dir. Once the agents drain (every report acked), the
// daemon's "digest" query must equal a never-crashed control store fed
// the same reports — exactly-once across process death: no acked
// report lost, none double-counted.

const (
	crashAgents     = 3
	crashReportsPer = 120
)

var (
	merakidOnce sync.Once
	merakidBin  string
	merakidErr  error
)

// buildMerakid compiles the daemon once per test binary run.
func buildMerakid(t *testing.T) string {
	t.Helper()
	merakidOnce.Do(func() {
		dir, err := os.MkdirTemp("", "merakid-bin-*")
		if err != nil {
			merakidErr = err
			return
		}
		merakidBin = filepath.Join(dir, "merakid")
		cmd := exec.Command("go", "build", "-o", merakidBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			merakidErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if merakidErr != nil {
		t.Fatal(merakidErr)
	}
	return merakidBin
}

// crashReports builds agent ai's deterministic report stream. Client
// MACs embed the agent index so the fleets touch disjoint clients —
// the recovered aggregate is then independent of how the daemons
// interleaved polls across agents.
func crashReports(ai int) []*telemetry.Report {
	serial := fmt.Sprintf("Q2XX-CRASH-%d", ai)
	out := make([]*telemetry.Report, 0, crashReportsPer)
	for i := 0; i < crashReportsPer; i++ {
		out = append(out, &telemetry.Report{
			Serial:    serial,
			Timestamp: uint64(1700000000 + i),
			Clients: []telemetry.ClientRecord{{
				MAC:  dot11.MAC{0x02, 0xc4, byte(ai), 0x00, byte(i >> 8), byte(i)},
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{
					App: "Netflix", UpBytes: uint64(i), DownBytes: uint64(i) * 7, Flows: 1,
				}},
			}},
		})
	}
	return out
}

// controlDigest is the ground truth: the same fleet ingested into an
// in-process store with the seqnos Enqueue would stamp (1-based per
// agent).
func crashControlDigest() string {
	s := backend.NewStore()
	for ai := 0; ai < crashAgents; ai++ {
		for i, r := range crashReports(ai) {
			r.SeqNo = uint64(i + 1)
			s.Ingest(r)
		}
	}
	return s.Digest()
}

// freePorts reserves n distinct TCP ports and releases them just
// before returning; the tiny reuse race is absorbed by startDaemon's
// retry.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startDaemon launches merakid and waits for its query port to accept.
// extra appends additional flags (the cluster tests pass -shard/-shards
// and -peers through here).
func startDaemon(t *testing.T, bin, listen, query, walDir string, extra ...string) *exec.Cmd {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		args := []string{
			"-listen", listen, "-query", query,
			"-poll", "20ms", "-batch", "8", "-timeout", "2s",
			"-wal-dir", walDir, "-wal-fsync", "off",
			"-checkpoint", "75ms",
			"-trace-sample", "0",
		}
		args = append(args, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr // daemon logs go to the test log on -v
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if conn, err := net.DialTimeout("tcp", query, 200*time.Millisecond); err == nil {
				conn.Close()
				return cmd
			}
			if cmd.ProcessState != nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		cmd.Process.Kill()
		lastErr = fmt.Errorf("daemon did not open query port %s", query)
		cmd.Wait()
	}
	t.Fatalf("startDaemon: %v", lastErr)
	return nil
}

// drainDeadline derives the fleet-drain budget from the test binary's
// own -timeout instead of a hard-coded constant. A fixed 30 s guess
// flaked under -race on loaded runners — the race detector slows the
// harvest several-fold while the budget stayed fixed — whereas
// t.Deadline minus a teardown margin spends every second the run
// actually has. Without a deadline (-timeout 0) the old 30 s stands,
// and a floor keeps the loop from failing before its first poll when
// the remaining budget is nearly gone.
func drainDeadline(t *testing.T) time.Time {
	t.Helper()
	floor := time.Now().Add(5 * time.Second)
	if d, ok := t.Deadline(); ok {
		if d = d.Add(-10 * time.Second); d.After(floor) {
			return d
		}
		return floor
	}
	return time.Now().Add(30 * time.Second)
}

// queryDaemon sends one query command over TCP.
func queryDaemon(t *testing.T, addr, command string) []string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		t.Fatal(err)
	}
	raw, err := readAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, ln := range strings.Split(raw, "\n") {
		if ln == "" {
			break
		}
		lines = append(lines, ln)
	}
	return lines
}

func readAll(conn net.Conn) (string, error) {
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			if b.Len() > 0 {
				return b.String(), nil
			}
			return "", err
		}
	}
}

func TestCrashRecoveryDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill harness; skipped in -short")
	}
	bin := buildMerakid(t)
	want := crashControlDigest()

	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			walDir := t.TempDir()
			addrs := freePorts(t, 2)
			listen, query := addrs[0], addrs[1]

			// The fleet: enqueue everything up front, then let the
			// reconnect loop ship it through the crash.
			stop := make(chan struct{})
			defer close(stop)
			agents := make([]*telemetry.Agent, crashAgents)
			key := make([]byte, 32)
			for i := range key {
				key[i] = 0x42 // merakid's default -key
			}
			for ai := 0; ai < crashAgents; ai++ {
				a := telemetry.NewAgent(fmt.Sprintf("Q2XX-CRASH-%d", ai), key)
				// Alternate wire versions so every recovery replays a WAL
				// holding both record shapes: per-report v1 records and
				// whole-batch v2 frame records.
				if ai%2 == 0 {
					a.Wire = telemetry.WireV2
				}
				a.Timeout = 2 * time.Second
				a.BackoffBase = 20 * time.Millisecond
				a.BackoffMax = 200 * time.Millisecond
				for _, r := range crashReports(ai) {
					a.Enqueue(r)
				}
				agents[ai] = a
			}

			d1 := startDaemon(t, bin, listen, query, walDir)
			for _, a := range agents {
				go a.RunWithReconnect(listen, stop)
			}

			// SIGKILL at a seeded moment mid-harvest. With -poll 20ms and
			// 120 reports per agent in 8-report batches a full harvest
			// takes ~300ms; the 30–400ms window below lands kills
			// everywhere from "barely started" to "already drained".
			delay := 30 + time.Duration(rng.New(seed).Split("kill-delay").IntN(370))
			time.Sleep(delay * time.Millisecond)
			if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			d1.Wait()

			d2 := startDaemon(t, bin, listen, query, walDir)
			defer func() {
				d2.Process.Kill()
				d2.Wait()
			}()

			// Drained queues mean every report was acked — and merakid
			// only acks after the WAL append and in-memory ingest.
			deadline := drainDeadline(t)
			for {
				left := 0
				for _, a := range agents {
					left += a.QueueLen()
				}
				if left == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("fleet did not drain: %d reports still queued", left)
				}
				time.Sleep(20 * time.Millisecond)
			}

			lines := queryDaemon(t, query, "digest")
			if len(lines) != 1 {
				t.Fatalf("digest query answered %q", lines)
			}
			if lines[0] != want {
				status := queryDaemon(t, query, "status")
				t.Fatalf("post-recovery digest mismatch\n got %s\nwant %s\nstatus: %v",
					lines[0], want, status)
			}
		})
	}
}

// TestCrashRecoveryDoubleKill kills the daemon twice — once
// mid-harvest and once right after recovery — to prove replay is
// idempotent under repeated crashes, not just one.
func TestCrashRecoveryDoubleKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill harness; skipped in -short")
	}
	bin := buildMerakid(t)
	want := crashControlDigest()
	walDir := t.TempDir()
	addrs := freePorts(t, 2)
	listen, query := addrs[0], addrs[1]

	stop := make(chan struct{})
	defer close(stop)
	key := make([]byte, 32)
	for i := range key {
		key[i] = 0x42
	}
	agents := make([]*telemetry.Agent, crashAgents)
	for ai := 0; ai < crashAgents; ai++ {
		a := telemetry.NewAgent(fmt.Sprintf("Q2XX-CRASH-%d", ai), key)
		if ai%2 == 0 {
			a.Wire = telemetry.WireV2
		}
		a.Timeout = 2 * time.Second
		a.BackoffBase = 20 * time.Millisecond
		a.BackoffMax = 200 * time.Millisecond
		for _, r := range crashReports(ai) {
			a.Enqueue(r)
		}
		agents[ai] = a
	}

	d := startDaemon(t, bin, listen, query, walDir)
	for _, a := range agents {
		go a.RunWithReconnect(listen, stop)
	}
	for _, wait := range []time.Duration{120 * time.Millisecond, 40 * time.Millisecond} {
		time.Sleep(wait)
		d.Process.Signal(syscall.SIGKILL)
		d.Wait()
		d = startDaemon(t, bin, listen, query, walDir)
	}
	defer func() {
		d.Process.Kill()
		d.Wait()
	}()

	deadline := drainDeadline(t)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not drain after double kill: %d queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
	lines := queryDaemon(t, query, "digest")
	if len(lines) != 1 || lines[0] != want {
		t.Fatalf("digest after double kill = %q, want %s", lines, want)
	}
}
