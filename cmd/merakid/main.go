// Command merakid is the backend collector daemon: it accepts device
// tunnels on -listen, polls each connected device for queued reports on
// a fixed cadence, ingests them into the datastore, and answers
// line-based queries on -query (see cmd/apstat). The store can be
// snapshotted to disk with -snapshot on shutdown (SIGINT) or via the
// "save" query. Queries: status, clients, top-apps N, util, crashes,
// anomalies, metrics, prom, series [METRIC [N]], alerts, watch,
// digest, checkpoint, snapshot, fanout CMD, save PATH, networks,
// extract IDS, part IDS, unpart IDS, drop IDS, absorb TOKEN IDS,
// rebalance PEERS [TOKEN], quit; an
// unrecognized command gets an "ERR unknown command" line back (every
// error line starts with "ERR"). The status response includes the
// harvest health counters (reconnects, MAC failures, corrupt frames,
// timeouts, device queue drops, dedup hits), and "metrics" dumps the
// full observability registry — harvest, poll-pool, and store counters
// — in one round trip. With -debug ADDR the same registry is served as
// expvar-style JSON at /debug/vars and as Prometheus text at
// /debug/metrics, next to the net/http/pprof handlers (see the README
// operator guide); the debug server carries read/write timeouts so a
// stalled scraper cannot wedge shutdown. All tunnel I/O runs under the
// -timeout deadline so a stalled or silent peer can never pin a
// goroutine.
//
// Observability history and health (DESIGN.md §12): every
// -series-every the daemon samples its registry into fixed-capacity
// time-series rings — counters as per-second rates, gauges raw,
// histograms as per-tick count/sum/p50/p95/p99 — queryable with
// "series <metric> [n]" and served as JSON at /debug/series. On the
// same tick the default health rule set (harvest degradation, WAL
// degraded latch, dedup spikes, harvest silence; -health-for /
// -health-for-ok hysteresis) judges that history: firing alerts
// surface in "status" and "alerts", increment health.* metrics, and
// dump the flight recorder on first firing. On a coordinator (-peers),
// /debug/federate scatter-gathers every shard's Prometheus text and
// serves the merged fleet view with shard="N" labels, and the "watch"
// query answers the one-line per-shard summary merakireport -watch
// renders.
//
// A fleet of merakids can shard the network universe (DESIGN.md §11):
// -shard I -shards N places this daemon in an N-shard cluster where
// agents route each network to its shard by the deterministic cluster
// map, and -peers lists every shard's query address so the "fanout"
// query scatter-gathers across the cluster — "fanout status" returns
// every shard's status, "fanout digest" the merged cluster digest
// (identical to a single daemon's digest for the same reports), with
// graceful partial results when a shard is down. The "snapshot" query
// serves this daemon's store as base64 lines for the router to merge.
// The cluster grows live (DESIGN.md §13): the "rebalance" query (or
// merakireport -rebalance) migrates each moved network — part on the
// source so acks are refused and agents queue, extract, absorb on the
// destination under a dedup token (WAL-logged on durable shards),
// digest-verify, then cut over — and -map-epoch stamps the topology
// generation into status. Each shard keeps its own -wal-dir; see
// OPERATIONS.md for topologies and runbooks.
//
// With -wal-dir the daemon is crash-consistent (DESIGN.md §9): every
// harvested report's wire bytes reach a write-ahead log before the
// poller acks the device, checkpoints are written atomically every
// -checkpoint interval (and on shutdown and the "checkpoint" query),
// and boot recovers the latest valid checkpoint plus a WAL replay —
// falling back one checkpoint generation on corruption and truncating
// a torn WAL tail. SIGKILL at any instant loses no acked report and
// double-counts none; kill -9 it and watch (see the README
// walkthrough, and cmd/merakid's crash harness for the proof). If the
// WAL write path fails, the daemon degrades to read-only — polls stop
// acking so devices queue — and says so in status, /debug/vars, and
// the health counters, instead of crashing or silently acking into a
// black hole. The "digest" query returns a canonical SHA-256 of the
// full store state, which is how the crash harness compares a
// recovered daemon against a never-crashed control.
//
// Every ingested report's trace spans land in a bounded flight
// recorder (-trace-buf events, sampled at -trace-sample); "trace
// <id>" and "trace last" render a trace's span chain, and the recorder
// dumps itself as JSON to stderr on SIGQUIT, on crash-report ingestion,
// or when the harvest health degrades (rate-limited to one dump per 30
// seconds). -trace-load replays a dump written by an offline run
// (merakisim -trace-out) so its traces are queryable here.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"wlanscale/internal/anomaly"
	"wlanscale/internal/backend"
	"wlanscale/internal/cluster"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/health"
	"wlanscale/internal/obs/series"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7771", "device tunnel listen address")
	query := flag.String("query", "127.0.0.1:7772", "query listen address")
	keyHex := flag.String("key", strings.Repeat("42", 32), "64-hex-char pre-shared tunnel key")
	pollEvery := flag.Duration("poll", 2*time.Second, "poll cadence per device")
	batch := flag.Int("batch", 64, "max reports per poll")
	wire := flag.String("wire", "v2", "max harvest wire version to negotiate: v1 (per-report frames) or v2 (delta-coded batches)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-frame tunnel I/O deadline (handshake and polls)")
	snapshot := flag.String("snapshot", "", "snapshot file written on shutdown")
	walDir := flag.String("wal-dir", "", "durability directory for the write-ahead log and checkpoints (empty = volatile store)")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always, interval, or off")
	walFsyncEvery := flag.Duration("wal-fsync-interval", 100*time.Millisecond, "flush window for -wal-fsync interval")
	walSegment := flag.Int64("wal-segment", 4<<20, "WAL segment size in bytes before rotation")
	checkpointEvery := flag.Duration("checkpoint", time.Minute, "checkpoint cadence (0 = only on shutdown and the checkpoint query)")
	shard := flag.Int("shard", 0, "this daemon's shard index in a sharded cluster (0-based; see -shards)")
	shards := flag.Int("shards", 1, "total shard count of the cluster this daemon belongs to (1 = single-daemon)")
	mapEpoch := flag.Int("map-epoch", 0, "shard-map epoch this daemon belongs to; bump on every topology change so rebalance tokens and status lines identify which map a shard is serving")
	peers := flag.String("peers", "", "comma-separated query addresses of every shard, indexed by shard ID; enables the scatter-gather fanout query (empty = standalone)")
	debug := flag.String("debug", "", "debug HTTP listen address serving /debug/vars, /debug/metrics, /debug/series, /debug/federate and /debug/pprof (empty = off)")
	seriesEvery := flag.Duration("series-every", 15*time.Second, "time-series sampling cadence for the metrics history rings (0 = no history, which also disables health rules)")
	seriesCap := flag.Int("series-cap", series.DefaultCap, "ring capacity per metric of the time-series store, in ticks")
	healthOn := flag.Bool("health", true, "evaluate the default health rule set on every series tick (requires -series-every > 0)")
	healthFor := flag.Int("health-for", 3, "consecutive breaching ticks before a health rule fires")
	healthForOK := flag.Int("health-for-ok", 3, "consecutive clear ticks before a firing health rule resolves")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of trace IDs the flight recorder keeps (0 disables tracing)")
	traceBuf := flag.Int("trace-buf", 4096, "flight-recorder capacity in span events (rounded up to a power of two)")
	traceLoad := flag.String("trace-load", "", "flight-recorder dump (JSON) to preload, making offline traces queryable")
	flag.Parse()

	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatalf("merakid: %v", err)
	}
	wireVer, err := telemetry.ParseWire(*wire)
	if err != nil {
		log.Fatalf("merakid: %v", err)
	}
	d := newDaemon(key, *pollEvery, *batch, *timeout, *traceSample, *traceBuf)
	d.wire = wireVer
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		log.Fatalf("merakid: -shard %d out of range for -shards %d", *shard, *shards)
	}
	d.shardID, d.shards = *shard, *shards
	d.mapEpoch = *mapEpoch
	if *peers != "" {
		addrs := strings.Split(*peers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		if len(addrs) != *shards {
			log.Fatalf("merakid: -peers lists %d addresses, -shards says %d", len(addrs), *shards)
		}
		d.router = &cluster.Router{Shards: addrs}
		d.router.EnableObs(d.obs)
		log.Printf("merakid: shard %d/%d, fanout over %d peers", *shard, *shards, len(addrs))
	}

	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			log.Fatalf("merakid: %v", err)
		}
		stats, err := d.attachDurable(*walDir, backend.DurableOptions{
			WAL: wal.Options{SegmentBytes: *walSegment, Policy: policy, Interval: *walFsyncEvery},
		})
		if err != nil {
			log.Fatalf("merakid: durable store: %v", err)
		}
		log.Printf("merakid: durable store at %s recovered: %s", *walDir, stats)
		if *checkpointEvery > 0 {
			go d.checkpointLoop(*checkpointEvery, nil)
		}
	}

	if *seriesEvery > 0 {
		d.attachSeries(*seriesCap, *healthFor, *healthForOK, *healthOn)
		go d.seriesLoop(*seriesEvery, nil)
	}

	if *traceLoad != "" {
		f, err := os.Open(*traceLoad)
		if err != nil {
			log.Fatalf("merakid: %v", err)
		}
		dump, err := trace.LoadDump(f)
		f.Close()
		if err != nil {
			log.Fatalf("merakid: %v", err)
		}
		d.trec.Load(dump)
		log.Printf("merakid: loaded %d span events (%d traces) from %s",
			len(dump.Events), len(d.trec.TraceIDs()), *traceLoad)
	}

	var dbgSrv *http.Server
	if *debug != "" {
		dbgLn, err := net.Listen("tcp", *debug)
		if err != nil {
			log.Fatalf("merakid: debug listen: %v", err)
		}
		log.Printf("merakid: debug HTTP on http://%s/debug/vars (pprof at /debug/pprof/, Prometheus at /debug/metrics)", dbgLn.Addr())
		dbgSrv = newDebugServer(debugMux(d))
		go func() {
			if err := dbgSrv.Serve(dbgLn); err != nil && err != http.ErrServerClosed {
				log.Printf("merakid: debug server: %v", err)
			}
		}()
	}

	devLn, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("merakid: listen: %v", err)
	}
	qLn, err := net.Listen("tcp", *query)
	if err != nil {
		log.Fatalf("merakid: query listen: %v", err)
	}
	log.Printf("merakid: devices on %s, queries on %s", devLn.Addr(), qLn.Addr())

	go d.acceptDevices(devLn)
	go d.acceptQueries(qLn)
	go d.watchHealth(30*time.Second, 10, nil)

	// SIGQUIT dumps the flight recorder to stderr and keeps running —
	// the operator's "what just happened" button on a live daemon.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			d.dump.Fire("sigquit")
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	devLn.Close()
	qLn.Close()
	if dbgSrv != nil {
		dbgSrv.Close()
	}
	if *snapshot != "" {
		if err := d.store.SaveFile(*snapshot); err != nil {
			log.Printf("merakid: snapshot: %v", err)
		} else {
			log.Printf("merakid: snapshot written to %s", *snapshot)
		}
	}
	if d.durable != nil {
		if err := d.durable.Checkpoint(); err != nil {
			log.Printf("merakid: shutdown checkpoint: %v", err)
		}
		if err := d.durable.Close(); err != nil {
			log.Printf("merakid: wal close: %v", err)
		}
	}
}

func parseKey(h string) ([]byte, error) {
	if len(h) != 64 {
		return nil, fmt.Errorf("key must be 64 hex chars, got %d", len(h))
	}
	key, err := hex.DecodeString(h)
	if err != nil {
		return nil, fmt.Errorf("bad key: %v", err)
	}
	return key, nil
}

type daemon struct {
	store *backend.Store
	// durable, when -wal-dir is set, wraps store with the write-ahead
	// log and checkpointing; store aliases durable.Store so every query
	// path reads the same data either way.
	durable   *backend.DurableStore
	key       []byte
	pollEvery time.Duration
	batch     int
	// wire is the maximum harvest wire version the daemon negotiates
	// per device session (-wire); devices that only announce v1 clamp
	// the session to v1 regardless.
	wire    byte
	timeout time.Duration
	health  *telemetry.HarvestHealth

	// shardID/shards place this daemon in a sharded cluster (-shard,
	// -shards); router, when -peers configured the cluster's query
	// addresses, answers the scatter-gather "fanout" query. A
	// standalone daemon is shard 0 of 1 with a nil router. mapEpoch
	// (-map-epoch) names the topology generation, folded into default
	// rebalance tokens so two epochs' migrations never share one.
	shardID, shards int
	mapEpoch        int
	router          *cluster.Router

	// obs is the daemon's metrics registry: harvest.* (health counters
	// and poll-loop counts), pool.* (connected-device pool), trace.*
	// (flight recorder), and store.* (ingest totals, per-stripe routing,
	// snapshot timing).
	obs         *obs.Registry
	harvest     telemetry.HarvestMetrics
	disconnects *obs.Counter

	// trec buffers the last -trace-buf span events; tracer decides which
	// incoming trace IDs it records; dump writes the ring to stderr when
	// an anomaly trigger fires.
	trec   *trace.Recorder
	tracer *trace.Tracer
	dump   *trace.Trigger

	// series, when -series-every > 0, rings the registry's history;
	// alerts, when -health is also on, judges that history with the
	// default rule set (both answer queries and debug endpoints; both
	// are nil-safe no-ops when disabled).
	series *series.Recorder
	alerts *health.Engine

	mu       sync.Mutex
	devices  map[string]bool
	seenEver map[string]bool
}

// newDaemon wires a daemon and its observability registry together:
// the store's counters, the harvest health block, the poll-loop
// counters, the device-pool gauges, and the trace flight recorder all
// publish into one registry, which the "metrics" query and the -debug
// listener serve.
func newDaemon(key []byte, pollEvery time.Duration, batch int, timeout time.Duration, traceSample float64, traceBuf int) *daemon {
	d := &daemon{
		store:     backend.NewStore(),
		key:       key,
		pollEvery: pollEvery,
		batch:     batch,
		wire:      telemetry.WireV2,
		timeout:   timeout,
		health:    &telemetry.HarvestHealth{},
		obs:       obs.NewRegistry(),
		trec:      trace.NewRecorder(traceBuf),
	}
	// The daemon never mints trace IDs — they arrive stamped on reports
	// — so the tracer seed is immaterial; only the sampling threshold
	// matters here.
	d.tracer = trace.New(d.trec, 1, traceSample)
	d.trec.RegisterMetrics(d.obs)
	d.dump = &trace.Trigger{Rec: d.trec, W: os.Stderr, Fires: d.obs.Counter("trace.dumps")}
	d.store.EnableObs(d.obs)
	d.store.EnableTrace(d.tracer)
	telemetry.RegisterHealth(d.obs, d.health)
	d.harvest = telemetry.NewHarvestMetrics(d.obs)
	d.disconnects = d.obs.Counter("pool.disconnects")
	d.obs.RegisterFunc("pool.devices", func() int64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return int64(len(d.devices))
	})
	d.obs.RegisterFunc("pool.devices_ever", func() int64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return int64(len(d.seenEver))
	})
	// The standard process-level fleet signals: uptime, goroutines,
	// heap in use, GC pause p99.
	obs.RegisterProcessMetrics(d.obs, time.Now())
	return d
}

// attachSeries wires the time-series recorder onto the daemon's
// registry and, when healthOn, the default health rule set over it,
// with first-fire transitions triggering a flight-recorder dump. Must
// run before seriesLoop starts.
func (d *daemon) attachSeries(capacity, forTicks, forOK int, healthOn bool) {
	d.series = series.NewRecorder(d.obs, series.Options{Cap: capacity})
	if healthOn {
		d.alerts = health.NewEngine(d.series, health.DefaultRules(forTicks, forOK))
		d.alerts.EnableObs(d.obs)
		d.alerts.OnFire = func(a health.Alert) {
			d.dump.Fire("alert " + a.Rule.Name + " fired")
		}
	}
}

// seriesLoop samples the registry into the history rings and evaluates
// the health rules on a fixed cadence. stop is for tests; the daemon
// runs it for the life of the process.
func (d *daemon) seriesLoop(every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			d.series.Sample(now)
			d.alerts.Eval(now)
		}
	}
}

// attachDurable swaps the daemon's volatile store for a recovered
// durable one. Must run before the daemon starts serving: observability
// and tracing re-attach to the recovered store, and the harvest path
// switches to WAL-before-ack ingestion (serveDevice checks d.durable).
func (d *daemon) attachDurable(dir string, o backend.DurableOptions) (backend.RecoveryStats, error) {
	ds, stats, err := backend.OpenDurable(dir, o)
	if err != nil {
		return stats, err
	}
	d.durable = ds
	d.store = ds.Store
	ds.EnableDurableObs(d.obs)
	ds.Store.EnableTrace(d.tracer)
	return stats, nil
}

// checkpointLoop checkpoints on a fixed cadence. stop is for tests;
// the daemon runs it for the life of the process.
func (d *daemon) checkpointLoop(every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if err := d.durable.Checkpoint(); err != nil {
			log.Printf("merakid: checkpoint: %v", err)
		}
	}
}

// debugMux builds the -debug HTTP handler: the metrics registry as one
// expvar-style JSON object at /debug/vars and as Prometheus text at
// /debug/metrics, the time-series history as JSON at /debug/series
// (?metric=NAME&n=POINTS to narrow), the cluster-merged shard-labeled
// Prometheus view at /debug/federate (coordinator daemons only, i.e.
// -peers configured), and the standard pprof handlers at /debug/pprof/
// (profile, heap, goroutine, trace, ...) for profiling a busy harvest
// without restarting the daemon.
func debugMux(d *daemon) *http.ServeMux {
	reg := d.obs
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/series", func(w http.ResponseWriter, r *http.Request) {
		if d.series == nil {
			http.Error(w, "series recording disabled (-series-every 0)", http.StatusNotFound)
			return
		}
		n := 60
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := d.series.WriteJSON(w, r.URL.Query().Get("metric"), n); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
		}
	})
	mux.HandleFunc("/debug/federate", func(w http.ResponseWriter, r *http.Request) {
		if d.router == nil {
			http.Error(w, "no cluster peers configured (-peers)", http.StatusNotFound)
			return
		}
		text, replies := d.router.FanoutMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, text)
		// A trailing comment makes partial scrapes self-describing.
		fmt.Fprintf(w, "# federation shards=%d up=%d down=%v\n",
			len(replies), len(replies)-cluster.NumDown(replies), cluster.DownShards(replies))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newDebugServer wraps the debug handler in an http.Server with
// conservative I/O deadlines. The -debug listener is an operator
// surface, not a device surface, but the same slow-loris rule applies:
// a scraper that stalls mid-request must cost a timeout, not a pinned
// connection that keeps Shutdown waiting forever
// (TestDebugServerShutdownWithStalledClient pins this).
func newDebugServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// pprof profile captures default to 30 s of sampling, so the
		// write deadline must comfortably exceed that.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
}

// watchHealth fires a flight-recorder dump when the harvest path
// degrades: threshold or more new hard errors (MAC failures, corrupt
// frames, timeouts) observed within one interval. stop is for tests;
// the daemon runs it for the life of the process.
func (d *daemon) watchHealth(every time.Duration, threshold int, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastErrs int
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		s := d.health.Snapshot()
		errs := s.MACFailures + s.CorruptFrames + s.Timeouts
		if errs-lastErrs >= threshold {
			d.dump.Fire(fmt.Sprintf("harvest-degraded +%d errors in %v", errs-lastErrs, every))
		}
		lastErrs = errs
	}
}

func (d *daemon) acceptDevices(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go d.serveDevice(conn)
	}
}

func (d *daemon) serveDevice(conn net.Conn) {
	// The handshake deadline drops slow-loris clients — a connection
	// that sends nothing costs one timeout, not a pinned goroutine.
	p, err := telemetry.AcceptPollerWithTimeout(conn, d.key, d.timeout)
	if err != nil {
		d.health.Observe(err)
		log.Printf("merakid: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	defer p.Close()
	p.Health = d.health
	p.Metrics = d.harvest
	p.Trace = d.tracer
	p.NegotiateWire(d.wire)
	if d.durable != nil {
		// WAL-before-ack: the batch becomes durable and lands in the
		// store before the ack frame goes out. On a WAL failure the poll
		// errors without acking — the device keeps its queue — and the
		// daemon flags itself degraded rather than crashing.
		degrade := func(err error) error {
			d.health.AddWALFailure()
			d.health.SetDegraded(true)
			log.Printf("merakid: degraded (read-only): %v", err)
			return err
		}
		p.BeforeAck = func(reports []*telemetry.Report, raw [][]byte) error {
			// A parted network refuses before the WAL sees the batch:
			// migration backpressure, not a durability failure.
			if err := d.partCheck(reports); err != nil {
				return err
			}
			if err := d.durable.IngestBatch(reports, raw); err != nil {
				return degrade(err)
			}
			return nil
		}
		// v2 sessions log each whole batch frame as one WAL record.
		p.BeforeAckFrame = func(reports []*telemetry.Report, payload []byte) error {
			if err := d.partCheck(reports); err != nil {
				return err
			}
			if err := d.durable.IngestBatchFrame(reports, payload); err != nil {
				return degrade(err)
			}
			return nil
		}
	} else {
		// Volatile daemons gate acks on the same parted check, so a
		// mid-migration network's devices requeue in both modes.
		p.BeforeAck = func(reports []*telemetry.Report, raw [][]byte) error {
			return d.partCheck(reports)
		}
		p.BeforeAckFrame = func(reports []*telemetry.Report, payload []byte) error {
			return d.partCheck(reports)
		}
	}
	d.mu.Lock()
	if d.devices == nil {
		d.devices = make(map[string]bool)
		d.seenEver = make(map[string]bool)
	}
	if d.seenEver[p.Serial] {
		d.health.AddReconnect()
	}
	d.seenEver[p.Serial] = true
	d.devices[p.Serial] = true
	d.mu.Unlock()
	log.Printf("merakid: device %s connected", p.Serial)
	defer func() {
		d.mu.Lock()
		delete(d.devices, p.Serial)
		d.mu.Unlock()
		d.disconnects.Inc()
		log.Printf("merakid: device %s disconnected", p.Serial)
	}()
	ticker := time.NewTicker(d.pollEvery)
	defer ticker.Stop()
	for {
		reports, err := p.Poll(d.batch)
		if err != nil {
			return
		}
		for _, r := range reports {
			// Durable mode already ingested the batch in BeforeAck.
			if d.durable == nil {
				d.store.Ingest(r)
			}
			// A crash report is exactly the moment the recent span
			// history is worth keeping: dump the recorder before the
			// ring overwrites the lead-up.
			if len(r.Crashes) > 0 {
				d.dump.Fire("crash-report " + r.Serial)
			}
		}
		// Drain mode: a v2 batch carries the device's remaining queue
		// depth, and a backlogged device (reboot, long partition) is
		// polled again immediately instead of trickling out one batch
		// per tick — the backpressure leg of the adaptive batcher.
		if p.QueueDepth() > 0 {
			continue
		}
		<-ticker.C
	}
}

func (d *daemon) acceptQueries(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go d.serveQuery(conn)
	}
}

// serveQuery speaks a line protocol: one command per line, response
// terminated by a blank line. Commands: status, clients, top-apps N,
// util, crashes, anomalies, metrics, prom, series [METRIC [N]],
// alerts, watch, trace ID|last, save PATH, quit.
// Error responses are single lines prefixed "ERR"; in particular an
// unknown command answers "ERR unknown command" instead of closing
// silently, so a client typo gets a diagnosis rather than a dead
// socket.
func (d *daemon) serveQuery(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	// Migration commands carry long ID lists and absorb payload lines
	// wider than the 64 KiB scanner default.
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "status":
			ing, dup := d.store.Stats()
			d.mu.Lock()
			nDev := len(d.devices)
			d.mu.Unlock()
			if d.shards > 1 {
				fmt.Fprintf(w, "shard %d/%d\n", d.shardID, d.shards)
			}
			if d.shards > 1 || d.mapEpoch > 0 {
				fmt.Fprintf(w, "map_epoch=%d\n", d.mapEpoch)
			}
			if parted, absorbed := len(d.store.PartedIDs()), d.store.AbsorbedCount(); parted > 0 || absorbed > 0 {
				fmt.Fprintf(w, "rebalance parted=%d absorbed=%d\n", parted, absorbed)
			}
			fmt.Fprintf(w, "devices=%d ingested=%d duplicates=%d clients=%d\n",
				nDev, ing, dup, d.store.NumClients())
			fmt.Fprintf(w, "%s dedup_hits=%d\n", d.health.Snapshot(), dup)
			if d.durable != nil {
				fmt.Fprintf(w, "wal next_lsn=%d checkpoint_lsn=%d segments=%d degraded=%t\n",
					d.durable.WAL().NextLSN(), d.durable.CheckpointLSN(),
					d.durable.WAL().Segments(), d.durable.Degraded())
			}
			if d.alerts != nil {
				firing := d.alerts.Firing()
				names := make([]string, 0, len(firing))
				for _, a := range firing {
					names = append(names, a.Rule.Name)
				}
				fmt.Fprintf(w, "alerts firing=%d %s\n", len(firing), joinOrDash(names))
			}
		case "clients":
			fmt.Fprintf(w, "%d\n", d.store.NumClients())
		case "top-apps":
			n := 10
			if len(fields) > 1 {
				fmt.Sscanf(fields[1], "%d", &n)
			}
			for _, row := range topApps(d.store, n) {
				fmt.Fprintf(w, "%s\t%d bytes\t%d clients\n", row.name, row.bytes, row.clients)
			}
		case "util":
			for _, serial := range d.store.RadioSerials() {
				for _, s := range d.store.RadioSeries(serial) {
					fmt.Fprintf(w, "%s band=%s ch=%d busy=%.3f decodable=%.3f\n",
						serial, s.Band, s.Channel, s.Busy, s.Decodable)
				}
			}
		case "crashes":
			for _, serial := range d.store.CrashSerials() {
				for _, c := range d.store.Crashes(serial) {
					fmt.Fprintf(w, "%s t=%d kind=%d fw=%s pc=%#x neighbors=%d\n",
						serial, c.Timestamp, c.Kind, c.Firmware, c.PC, c.NeighborCount)
				}
			}
		case "anomalies":
			det := anomaly.NewDetector()
			det.FeedCrashes(d.store)
			det.FeedNeighborCounts(d.store)
			for _, serial := range det.RebootLoops(3) {
				fmt.Fprintf(w, "reboot-loop %s\n", serial)
			}
			for _, o := range det.NeighborOutliers(8) {
				fmt.Fprintf(w, "neighbor-outlier %s count=%d sigma=%.0f\n", o.Serial, o.Count, o.Sigma)
			}
		case "metrics":
			d.obs.WriteText(w)
		case "prom":
			// The Prometheus exposition over the query protocol — the
			// per-shard payload /debug/federate scatter-gathers.
			d.obs.WriteProm(w)
		case "series":
			d.querySeries(w, fields)
		case "alerts":
			if d.alerts == nil {
				fmt.Fprintln(w, "ERR health rules disabled (-health, -series-every)")
			} else {
				d.alerts.WriteText(w)
			}
		case "watch":
			d.queryWatch(w)
		case "digest":
			fmt.Fprintln(w, d.store.Digest())
		case "checkpoint":
			if d.durable == nil {
				fmt.Fprintln(w, "ERR not running durable (-wal-dir)")
			} else if err := d.durable.Checkpoint(); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			} else {
				fmt.Fprintf(w, "checkpointed lsn=%d\n", d.durable.CheckpointLSN())
			}
		case "snapshot":
			// The store's gob snapshot as base64 lines — what the
			// scatter-gather router merges cluster-wide views from.
			if err := cluster.WriteSnapshotLines(w, d.store); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			}
		case "fanout":
			d.queryFanout(w, fields)
		case "networks":
			d.queryNetworks(w)
		case "extract":
			d.queryExtract(w, fields)
		case "part", "unpart":
			d.queryPart(w, fields)
		case "drop":
			d.queryDrop(w, fields)
		case "absorb":
			d.queryAbsorb(w, sc, fields)
		case "rebalance":
			d.queryRebalance(w, fields)
		case "trace":
			d.queryTrace(w, fields)
		case "save":
			if len(fields) < 2 {
				fmt.Fprintln(w, "ERR save needs a path")
			} else if err := d.store.SaveFile(fields[1]); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			} else {
				fmt.Fprintln(w, "saved")
			}
		case "quit":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		fmt.Fprintln(w)
		w.Flush()
	}
}

// queryFanout answers "fanout <cmd>": scatter <cmd> across every
// configured shard (-peers) and gather the answers. "fanout digest" is
// special-cased to the merged cluster digest — first line the digest
// hex, second line the health summary — because digests cannot be
// concatenated, only merged. Any other command returns each shard's
// response under a "[shard N addr]" header; a dead shard contributes
// an ERR line instead of sinking the whole query, so operators get
// partial answers during an outage rather than none.
func (d *daemon) queryFanout(w io.Writer, fields []string) {
	if d.router == nil {
		fmt.Fprintln(w, "ERR no cluster peers configured (-peers)")
		return
	}
	if len(fields) < 2 {
		fmt.Fprintln(w, "ERR fanout needs a command, e.g. fanout status")
		return
	}
	cmd := strings.Join(fields[1:], " ")
	if fields[1] == "fanout" {
		fmt.Fprintln(w, "ERR fanout does not nest")
		return
	}
	if fields[1] == "digest" {
		dig, err := d.router.MergedDigest()
		if err != nil {
			fmt.Fprintf(w, "ERR %v (down: %v)\n", err, dig.Down)
			return
		}
		fmt.Fprintln(w, dig.Digest)
		fmt.Fprintf(w, "shards=%d up=%d down=%v degraded=%t\n",
			dig.Shards, dig.Shards-len(dig.Down), dig.Down, dig.Degraded)
		return
	}
	for _, rep := range d.router.Fanout(cmd) {
		fmt.Fprintf(w, "[shard %d %s]\n", rep.Shard, rep.Addr)
		if rep.Err != nil {
			fmt.Fprintf(w, "ERR shard down: %v\n", rep.Err)
			continue
		}
		for _, ln := range rep.Lines {
			fmt.Fprintln(w, ln)
		}
	}
}

// querySeries answers "series" (the recorded metric names, one per
// line) and "series <metric> [n]" (the metric's last n points, default
// 10, oldest first; counters render rates, histograms append
// count/sum/p50/p95/p99).
func (d *daemon) querySeries(w io.Writer, fields []string) {
	if d.series == nil {
		fmt.Fprintln(w, "ERR series recording disabled (-series-every 0)")
		return
	}
	if len(fields) < 2 {
		for _, n := range d.series.Names() {
			fmt.Fprintln(w, n)
		}
		return
	}
	n := 10
	if len(fields) > 2 {
		v, err := strconv.Atoi(fields[2])
		if err != nil || v <= 0 {
			fmt.Fprintf(w, "ERR bad point count %q\n", fields[2])
			return
		}
		n = v
	}
	if err := d.series.WriteText(w, fields[1], n); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
	}
}

// queryWatch answers "watch": one machine-readable key=value line of
// the per-shard dashboard signals merakireport -watch renders — device
// pool, ingest totals and rate, WAL flush latency, degraded latch, and
// the currently firing alerts.
func (d *daemon) queryWatch(w io.Writer) {
	ing, dup := d.store.Stats()
	d.mu.Lock()
	nDev := len(d.devices)
	d.mu.Unlock()
	rate := seriesRate(d.series, "store.ingests")
	var p99 int64
	if pts := d.series.Last("wal.fsync_us", 1); len(pts) > 0 {
		p99 = pts[0].P99
	}
	degraded := d.durable != nil && d.durable.Degraded()
	var names []string
	for _, a := range d.alerts.Firing() {
		names = append(names, a.Rule.Name+"["+a.Rule.Severity.String()+"]")
	}
	fmt.Fprintf(w, "shard=%d/%d devices=%d ingested=%d dupes=%d rate=%.1f wal_p99_us=%d degraded=%t firing=%s\n",
		d.shardID, d.shards, nDev, ing, dup, rate, p99, degraded, joinOrDash(names))
}

// seriesRate derives a per-second rate from the last two points of a
// cumulative metric's series. store.ingests is a func gauge over a
// cumulative total, so its points are raw readings, not pre-derived
// rates.
func seriesRate(rec *series.Recorder, name string) float64 {
	pts := rec.Last(name, 2)
	if len(pts) < 2 {
		return 0
	}
	dt := float64(pts[1].T-pts[0].T) / 1000
	if dt <= 0 {
		return 0
	}
	return (pts[1].V - pts[0].V) / dt
}

// joinOrDash renders a name list for key=value lines: comma-joined, or
// "-" when empty so the field never vanishes.
func joinOrDash(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ",")
}

// queryTrace answers "trace <id>" and "trace last": the span chain of
// one harvested report, one line per span in pipeline order, indented
// by depth so the parent links read as a tree. Durations and start
// offsets are microseconds; retries, fault-injection profile, and
// errors appear only when set.
func (d *daemon) queryTrace(w io.Writer, fields []string) {
	if len(fields) < 2 {
		fmt.Fprintln(w, `ERR trace needs an id or "last"`)
		return
	}
	var (
		id  trace.ID
		evs []trace.Event
	)
	if fields[1] == "last" {
		var ok bool
		id, evs, ok = d.trec.LastTrace()
		if !ok {
			fmt.Fprintln(w, "ERR flight recorder is empty")
			return
		}
	} else {
		v, err := trace.ParseID(fields[1])
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		id = v
		evs = d.trec.Trace(id)
		if len(evs) == 0 {
			fmt.Fprintf(w, "ERR no such trace %s\n", id)
			return
		}
	}
	fmt.Fprintf(w, "trace %s spans=%d\n", id, len(evs))
	for _, ev := range evs {
		depth := int(ev.Span) - 1
		if depth < 0 {
			depth = 0
		}
		fmt.Fprintf(w, "%s%s dur_us=%d start_us=%d", strings.Repeat("  ", depth), ev.Stage, ev.DurUS, ev.StartUS)
		if ev.Serial != "" {
			fmt.Fprintf(w, " serial=%s", ev.Serial)
		}
		if ev.Seq != 0 {
			fmt.Fprintf(w, " seq=%d", ev.Seq)
		}
		if ev.Retries > 0 {
			fmt.Fprintf(w, " retries=%d", ev.Retries)
		}
		if ev.Fault != "" {
			fmt.Fprintf(w, " fault=%q", ev.Fault)
		}
		if ev.Err != "" {
			fmt.Fprintf(w, " err=%q", ev.Err)
		}
		fmt.Fprintln(w)
	}
}

type appRow struct {
	name    string
	bytes   uint64
	clients int
}

func topApps(store *backend.Store, n int) []appRow {
	agg := make(map[string]*appRow)
	for _, c := range store.Clients() {
		for name, rec := range c.Apps {
			row, ok := agg[name]
			if !ok {
				row = &appRow{name: name}
				agg[name] = row
			}
			row.bytes += rec.UpBytes + rec.DownBytes
			row.clients++
		}
	}
	rows := make([]appRow, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].bytes > rows[j].bytes })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
