// Migration queries: the daemon side of live shard rebalancing
// (DESIGN.md §13). The cluster.Rebalance coordinator drives these —
// "networks" for discovery, "part"/"unpart" to freeze a moved slice,
// "extract" to export it, "absorb" to ingest it under a dedup token,
// "drop" to cut it over — and "rebalance" runs the whole coordinator
// from any shard that has -peers configured. On a durable daemon every
// state change here is WAL-logged before it applies, so a SIGKILL
// mid-migration recovers to exactly the acknowledged step.

package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"wlanscale/internal/backend"
	"wlanscale/internal/cluster"
	"wlanscale/internal/telemetry"
)

// queryNetworks answers "networks": the network IDs this shard holds,
// one decimal ID per line — the rebalance coordinator's discovery set.
func (d *daemon) queryNetworks(w io.Writer) {
	for _, id := range d.store.Networks(backend.NetworkOfSerial) {
		fmt.Fprintf(w, "%d\n", id)
	}
}

// queryExtract answers "extract IDS": a consistent deep-copied
// snapshot of just those networks, in the same base64-line encoding as
// "snapshot" (chunked, so an arbitrarily large slice never exceeds the
// line-protocol width).
func (d *daemon) queryExtract(w io.Writer, fields []string) {
	if len(fields) < 2 {
		fmt.Fprintln(w, "ERR extract needs a network ID list, e.g. extract 3,17")
		return
	}
	ids, err := cluster.ParseIDList(fields[1])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	slice := d.store.ExtractNetworks(backend.IDSet(ids), backend.NetworkOfSerial)
	if err := cluster.WriteSnapshotLines(w, slice); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
	}
}

// queryPart answers "part IDS" and "unpart IDS": mark (or clear) the
// networks as mid-migration, refusing ingestion so devices requeue.
func (d *daemon) queryPart(w io.Writer, fields []string) {
	if len(fields) < 2 {
		fmt.Fprintf(w, "ERR %s needs a network ID list\n", fields[0])
		return
	}
	ids, err := cluster.ParseIDList(fields[1])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	part := fields[0] == "part"
	if d.durable != nil {
		if part {
			err = d.durable.PartNetworks(ids)
		} else {
			err = d.durable.UnpartNetworks(ids)
		}
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
	} else if part {
		d.store.Part(ids)
	} else {
		d.store.Unpart(ids)
	}
	if part {
		fmt.Fprintf(w, "parted n=%d\n", len(ids))
	} else {
		fmt.Fprintf(w, "unparted n=%d\n", len(ids))
	}
}

// queryDrop answers "drop TOKEN IDS": delete the networks and forget
// TOKEN's absorb mark — the cutover on a source, the rollback on a
// destination.
func (d *daemon) queryDrop(w io.Writer, fields []string) {
	if len(fields) < 3 {
		fmt.Fprintln(w, "ERR drop needs a token and a network ID list")
		return
	}
	ids, err := cluster.ParseIDList(fields[2])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	var nets, entries int
	if d.durable != nil {
		nets, entries, err = d.durable.DropNetworks(fields[1], ids)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
	} else {
		nets, entries = d.store.Drop(fields[1], ids, backend.NetworkOfSerial)
	}
	fmt.Fprintf(w, "dropped networks=%d entries=%d\n", nets, entries)
}

// queryAbsorb answers "absorb TOKEN IDS" followed by the slice as
// base64 payload lines ended by a blank line (the coordinator's
// pushShard framing). Absorption is token-deduplicated — re-pushing
// TOKEN answers "already" without touching the store — which is what
// makes the coordinator's blind retries and crash re-runs safe.
func (d *daemon) queryAbsorb(w io.Writer, sc *bufio.Scanner, fields []string) {
	if len(fields) < 3 {
		fmt.Fprintln(w, "ERR absorb needs a token and a network ID list")
		return
	}
	token := fields[1]
	ids, err := cluster.ParseIDList(fields[2])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	// The payload rides the same scanner the command line came from.
	var payload []string
	for sc.Scan() {
		ln := sc.Text()
		if ln == "" {
			break
		}
		payload = append(payload, ln)
	}
	raw, err := cluster.DecodeSnapshotBytes(payload)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	var applied bool
	if d.durable != nil {
		applied, err = d.durable.AbsorbSnapshot(token, ids, raw)
	} else {
		applied, err = d.store.Absorb(token, ids, bytes.NewReader(raw), backend.NetworkOfSerial)
	}
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	if !applied {
		fmt.Fprintf(w, "already token=%s\n", token)
		return
	}
	fmt.Fprintf(w, "absorbed token=%s networks=%d\n", token, len(ids))
}

// queryRebalance answers "rebalance NEWADDRS [TOKEN]": run the full
// coordinator from this daemon, migrating from the -peers topology to
// the comma-separated NEWADDRS query addresses. Progress streams back
// as "# " lines; the final line is the machine-readable verdict
// ("rebalanced ..." or "ERR ..."). The default token is deterministic
// in the map epoch and the shard counts, so a crashed run re-run
// verbatim converges via absorb dedup instead of double-ingesting.
func (d *daemon) queryRebalance(w *bufio.Writer, fields []string) {
	if d.router == nil {
		fmt.Fprintln(w, "ERR no cluster peers configured (-peers)")
		return
	}
	if len(fields) < 2 {
		fmt.Fprintln(w, "ERR rebalance needs the new topology, e.g. rebalance host:7772,host:7782,host:7792")
		return
	}
	newAddrs := strings.Split(fields[1], ",")
	for i := range newAddrs {
		newAddrs[i] = strings.TrimSpace(newAddrs[i])
	}
	token := fmt.Sprintf("epoch%d-%dto%d", d.mapEpoch, len(d.router.Shards), len(newAddrs))
	if len(fields) > 2 {
		token = fields[2]
	}
	o := cluster.RebalanceOptions{
		Token:   token,
		Timeout: d.timeout,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, "# "+format+"\n", args...)
			w.Flush()
		},
	}
	rep, err := cluster.Rebalance(d.router.Shards, newAddrs, o)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "rebalanced token=%s moved=%d transfers=%d old=%d new=%d digest=%s degraded=%t\n",
		rep.Token, rep.MovedNetworks, len(rep.Transfers), rep.OldShards, rep.NewShards,
		rep.Full.Digest, rep.Full.Degraded)
}

// partCheck refuses a poll batch that touches a parted (mid-migration)
// network, before any ack: the poll errors, the device keeps its
// queue, and the report lands at the network's new home once the agent
// re-routes. Composed before the WAL ingest on durable daemons — a
// part refusal is backpressure, not a durability failure, so it must
// not degrade the daemon.
func (d *daemon) partCheck(reports []*telemetry.Report) error {
	for _, r := range reports {
		if id, ok := backend.NetworkOfSerial(r.Serial); ok && d.store.IsParted(id) {
			return fmt.Errorf("network %d is mid-migration (parted); requeue", id)
		}
	}
	return nil
}
