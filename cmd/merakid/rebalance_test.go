package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"wlanscale/internal/cluster"
	"wlanscale/internal/telemetry"
)

// The rebalance harness: real merakid subprocesses prove the live
// migration end to end — a 2-shard WAL-backed cluster grows to 3
// shards mid-harvest via the daemon's own "rebalance" query, devices
// of parted networks requeue instead of losing data, and after the
// agents flip to the new topology the merged digest equals the
// single-store control. The kill arm SIGKILLs the destination between
// absorb and cutover and proves the WAL replays the slice and its
// dedup token.

// rebalanceFleet starts 2 old shards (-shards 2, -map-epoch 1) plus
// one destination (-shard 2/3, -map-epoch 2), each with its own WAL
// dir, and returns the listen/query address lists.
func rebalanceFleet(t *testing.T, bin string) (listens, queries, walDirs []string, daemons []*exec.Cmd) {
	t.Helper()
	ports := freePorts(t, 6)
	listens = []string{ports[0], ports[2], ports[4]}
	queries = []string{ports[1], ports[3], ports[5]}
	walDirs = []string{t.TempDir(), t.TempDir(), t.TempDir()}
	oldPeers := strings.Join(queries[:2], ",")
	newPeers := strings.Join(queries, ",")
	daemons = make([]*exec.Cmd, 3)
	for i := 0; i < 2; i++ {
		daemons[i] = startDaemon(t, bin, listens[i], queries[i], walDirs[i],
			"-shard", strconv.Itoa(i), "-shards", "2", "-peers", oldPeers, "-map-epoch", "1")
	}
	daemons[2] = startDaemon(t, bin, listens[2], queries[2], walDirs[2],
		"-shard", "2", "-shards", "3", "-peers", newPeers, "-map-epoch", "2")
	t.Cleanup(func() {
		for _, d := range daemons {
			if d != nil && d.ProcessState == nil {
				d.Process.Kill()
				d.Wait()
			}
		}
	})
	return listens, queries, walDirs, daemons
}

// movedNetworks splits the test networks by whether the 2->3 jump-map
// growth rehomes them.
func movedNetworks() (moved, kept []uint64) {
	oldMap, newMap := cluster.NewMap(2), cluster.NewMap(3)
	for n := 0; n < clusterNetworks; n++ {
		id := uint64(100 + n)
		if oldMap.Shard(id) != newMap.Shard(id) {
			moved = append(moved, id)
		} else {
			kept = append(kept, id)
		}
	}
	return moved, kept
}

func newRebalanceAgents() []*telemetry.Agent {
	key := make([]byte, 32)
	for i := range key {
		key[i] = 0x42
	}
	var agents []*telemetry.Agent
	ai := 0
	for n := 0; n < clusterNetworks; n++ {
		netID := uint64(100 + n)
		for ap := 0; ap < clusterAPsPerNet; ap++ {
			a := telemetry.NewAgent(fmt.Sprintf("Q2CL-%03d-%d", netID, ap), key)
			if ai%2 == 0 {
				a.Wire = telemetry.WireV2
			}
			a.Timeout = 2 * time.Second
			a.BackoffBase = 20 * time.Millisecond
			a.BackoffMax = 200 * time.Millisecond
			for _, r := range clusterFleetReports(netID, ap) {
				a.Enqueue(r)
			}
			agents = append(agents, a)
			ai++
		}
	}
	return agents
}

func agentNet(a *telemetry.Agent) uint64 {
	id, _ := strconv.ParseUint(strings.Split(a.Serial, "-")[1], 10, 64)
	return id
}

func drainAgents(t *testing.T, agents []*telemetry.Agent) {
	t.Helper()
	deadline := drainDeadline(t)
	for {
		left := 0
		for _, a := range agents {
			left += a.QueueLen()
		}
		if left == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not drain: %d reports still queued", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func idCSV(ids []uint64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatUint(id, 10)
	}
	return strings.Join(parts, ",")
}

// pushDaemon sends a payload-carrying command (absorb): header line,
// payload lines, blank terminator, quit — and returns the response
// lines.
func pushDaemon(t *testing.T, addr, header string, payload []string) []string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	w := bufio.NewWriter(conn)
	fmt.Fprintln(w, header)
	for _, ln := range payload {
		fmt.Fprintln(w, ln)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "quit")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := readAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, ln := range strings.Split(raw, "\n") {
		if ln == "" {
			break
		}
		lines = append(lines, ln)
	}
	return lines
}

// TestRebalanceMidHarvestDigest grows a live 2-shard cluster to 3
// mid-harvest through the daemon's "rebalance" query, then flips the
// moved networks' agents to the new topology — the OPERATIONS.md
// runbook, mechanized. The merged digest over the new topology must
// equal the single-store control: nothing lost to the migration,
// nothing double-counted, the post-flip tail ingested at the new home.
func TestRebalanceMidHarvestDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess rebalance harness; skipped in -short")
	}
	bin := buildMerakid(t)
	want := clusterControlDigest()
	listens, queries, _, _ := rebalanceFleet(t, bin)
	moved, kept := movedNetworks()
	if len(moved) == 0 || len(kept) == 0 {
		t.Fatalf("test fleet must both move and keep networks (moved=%v kept=%v)", moved, kept)
	}
	movedSet := make(map[uint64]bool)
	for _, id := range moved {
		movedSet[id] = true
	}

	// Harvest starts against the old topology.
	oldMap, newMap := cluster.NewMap(2), cluster.NewMap(3)
	stopAll := make(chan struct{})
	stopOldHome := make(chan struct{})
	defer close(stopAll)
	agents := newRebalanceAgents()
	for _, a := range agents {
		stop := stopAll
		if movedSet[agentNet(a)] {
			stop = stopOldHome // these flip after the cutover
		}
		go a.RunWithReconnect(listens[oldMap.Shard(agentNet(a))], stop)
	}
	time.Sleep(80 * time.Millisecond) // mid-harvest

	// The one-command migration, run on shard 0. Its default token is
	// derived from -map-epoch and the shard counts.
	lines := queryDaemon(t, queries[0], "rebalance "+strings.Join(queries, ","))
	if len(lines) == 0 {
		t.Fatal("rebalance query answered nothing")
	}
	verdict := lines[len(lines)-1]
	if !strings.HasPrefix(verdict, "rebalanced token=epoch1-2to3 ") {
		t.Fatalf("rebalance verdict = %q (full: %q)", verdict, lines)
	}
	if strings.Contains(verdict, " moved=0 ") {
		t.Fatalf("mid-harvest rebalance moved nothing: %q", verdict)
	}

	// Flip: moved networks' agents re-home to the new topology and
	// deliver their requeued tails there.
	close(stopOldHome)
	for _, a := range agents {
		if movedSet[agentNet(a)] {
			go a.RunWithReconnect(listens[newMap.Shard(agentNet(a))], stopAll)
		}
	}
	drainAgents(t, agents)

	r := &cluster.Router{Shards: queries, Timeout: 5 * time.Second}
	dig, err := r.MergedDigest()
	if err != nil {
		t.Fatalf("merged digest: %v", err)
	}
	if dig.Degraded || dig.Digest != want {
		t.Fatalf("rebalanced cluster digest\n got %s (degraded=%v)\nwant %s", dig.Digest, dig.Degraded, want)
	}

	// Moved networks are gone from the old shards and parted there, so
	// a straggler agent on the old map cannot resurrect them.
	for i := 0; i < 2; i++ {
		for _, ln := range queryDaemon(t, queries[i], "networks") {
			id, err := strconv.ParseUint(ln, 10, 64)
			if err != nil {
				t.Fatalf("networks line %q", ln)
			}
			if movedSet[id] {
				t.Fatalf("moved network %d still listed on source shard %d", id, i)
			}
		}
	}
	status := strings.Join(queryDaemon(t, queries[0], "status"), "\n")
	if !strings.Contains(status, "rebalance parted=") {
		t.Fatalf("source status does not show parted networks:\n%s", status)
	}

	// The runbook's convergence check: a re-run finds nothing to move.
	lines = queryDaemon(t, queries[0], "rebalance "+strings.Join(queries, ","))
	verdict = lines[len(lines)-1]
	if !strings.Contains(verdict, " moved=0 ") {
		t.Fatalf("re-run verdict = %q, want moved=0", verdict)
	}
}

// TestRebalanceKillDuringMigration is the crash arm: a destination
// shard absorbs one source's slice, is SIGKILLed before the cutover,
// and recovers from its WAL with both the slice and the dedup token
// intact — re-pushing answers "already", and re-running the whole
// migration under the same token converges to the control digest.
func TestRebalanceKillDuringMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess rebalance harness; skipped in -short")
	}
	bin := buildMerakid(t)
	want := clusterControlDigest()
	listens, queries, walDirs, daemons := rebalanceFleet(t, bin)
	moved, _ := movedNetworks()

	// Drain the whole fleet into the old topology first: the kill is
	// aimed at the migration machinery, not the harvest.
	oldMap := cluster.NewMap(2)
	stop := make(chan struct{})
	agents := newRebalanceAgents()
	for _, a := range agents {
		go a.RunWithReconnect(listens[oldMap.Shard(agentNet(a))], stop)
	}
	drainAgents(t, agents)
	close(stop)

	// Act as a coordinator that dies between absorb and cutover: part
	// and extract shard 0's moved slice, absorb it into the
	// destination under the token the later full run will reuse.
	var src0 []uint64
	for _, id := range moved {
		if oldMap.Shard(id) == 0 {
			src0 = append(src0, id)
		}
	}
	if len(src0) == 0 {
		t.Fatalf("no moved networks on shard 0 (moved=%v)", moved)
	}
	const token = "killtest"
	if lines := queryDaemon(t, queries[0], "part "+idCSV(src0)); len(lines) != 1 || !strings.HasPrefix(lines[0], "parted") {
		t.Fatalf("part answered %q", lines)
	}
	slice := queryDaemon(t, queries[0], "extract "+idCSV(src0))
	if len(slice) == 0 || strings.HasPrefix(slice[0], "ERR") {
		t.Fatalf("extract answered %q", slice)
	}
	header := fmt.Sprintf("absorb %s.s0d2 %s", token, idCSV(src0))
	if lines := pushDaemon(t, queries[2], header, slice); len(lines) != 1 || !strings.HasPrefix(lines[0], "absorbed") {
		t.Fatalf("absorb answered %q", lines)
	}

	// SIGKILL the destination mid-migration and restart it over its
	// WAL. The absorbed slice was never checkpointed — recovery must
	// replay it, token and all.
	if err := daemons[2].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[2].Wait()
	daemons[2] = startDaemon(t, bin, listens[2], queries[2], walDirs[2],
		"-shard", "2", "-shards", "3", "-peers", strings.Join(queries, ","), "-map-epoch", "2")

	if lines := pushDaemon(t, queries[2], header, slice); len(lines) != 1 || !strings.HasPrefix(lines[0], "already") {
		t.Fatalf("post-recovery re-absorb answered %q, want already (WAL lost the token)", lines)
	}

	// The crashed coordinator's re-run, same token: pair s0d2 dedups,
	// pair s1d2 absorbs fresh, verify gates, sources cut over.
	lines := queryDaemon(t, queries[0], fmt.Sprintf("rebalance %s %s", strings.Join(queries, ","), token))
	verdict := lines[len(lines)-1]
	if !strings.HasPrefix(verdict, "rebalanced token="+token+" ") {
		t.Fatalf("rebalance verdict = %q (full: %q)", verdict, lines)
	}

	r := &cluster.Router{Shards: queries, Timeout: 5 * time.Second}
	dig, err := r.MergedDigest()
	if err != nil {
		t.Fatalf("merged digest: %v", err)
	}
	if dig.Degraded || dig.Digest != want {
		t.Fatalf("post-kill rebalance digest\n got %s (degraded=%v)\nwant %s", dig.Digest, dig.Degraded, want)
	}
	status := strings.Join(queryDaemon(t, queries[2], "status"), "\n")
	if !strings.Contains(status, "absorbed=2") {
		t.Fatalf("destination status after recovery:\n%s\nwant 2 absorb tokens", status)
	}
}
