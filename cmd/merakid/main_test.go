package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// startQueryServer runs a daemon's query listener on an ephemeral port
// and returns its address.
func startQueryServer(t *testing.T) (*daemon, string) {
	t.Helper()
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go d.acceptQueries(ln)
	return d, ln.Addr().String()
}

// query sends one command and returns the response lines up to the
// blank terminator.
func query(t *testing.T, addr, command string) []string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		if sc.Text() == "" {
			break
		}
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestQueryUnknownCommand pins the error contract: an unrecognized
// command must answer with an "ERR unknown command" line — not a
// silent close — and the connection must stay usable afterwards.
func TestQueryUnknownCommand(t *testing.T) {
	_, addr := startQueryServer(t)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "bogus-command\nclients\nquit\n"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("connection closed without a response: %v", sc.Err())
	}
	if got := sc.Text(); !strings.HasPrefix(got, `ERR unknown command "bogus-command"`) {
		t.Fatalf("unknown command answered %q, want ERR unknown command line", got)
	}
	if !sc.Scan() || sc.Text() != "" {
		t.Fatalf("missing blank terminator after ERR line")
	}
	// The session survives the error: the next command still answers.
	if !sc.Scan() {
		t.Fatalf("connection dead after ERR: %v", sc.Err())
	}
	if got := sc.Text(); got != "0" {
		t.Fatalf("clients after ERR = %q, want \"0\"", got)
	}
}

// TestQueryMetrics checks that one "metrics" round trip returns
// harvest, pool, and store counters together.
func TestQueryMetrics(t *testing.T) {
	d, addr := startQueryServer(t)
	// Give the store something to count.
	d.store.Ingest(&telemetry.Report{
		Serial: "Q2AA-TEST", SeqNo: 1,
		Clients: []telemetry.ClientRecord{{MAC: dot11.MAC{0xac, 1, 2, 3, 4, 5}, Band: dot11.Band5}},
	})
	lines := query(t, addr, "metrics")
	byName := make(map[string]string)
	for _, l := range lines {
		name, rest, ok := strings.Cut(l, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", l)
		}
		byName[name] = rest
	}
	for _, want := range []string{
		"harvest.polls", "harvest.reconnects", "harvest.timeouts",
		"pool.devices", "pool.disconnects",
		"store.ingests", "store.clients", "store.save_us",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metrics response missing %q", want)
		}
	}
	if byName["store.ingests"] != "1" {
		t.Errorf("store.ingests = %q, want 1", byName["store.ingests"])
	}
	if byName["store.clients"] != "1" {
		t.Errorf("store.clients = %q, want 1", byName["store.clients"])
	}
}

// TestDebugMux drives the -debug HTTP surface: /debug/vars must serve
// the registry as valid JSON and the pprof index must answer.
func TestDebugMux(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	srv := httptest.NewServer(debugMux(d.obs))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/vars content type %q", ct)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["store.ingests"]; !ok {
		t.Fatalf("/debug/vars missing store.ingests; keys: %d", len(vars))
	}

	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}
}
