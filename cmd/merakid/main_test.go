package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// startQueryServer runs a daemon's query listener on an ephemeral port
// and returns its address.
func startQueryServer(t *testing.T) (*daemon, string) {
	t.Helper()
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go d.acceptQueries(ln)
	return d, ln.Addr().String()
}

// query sends one command and returns the response lines up to the
// blank terminator.
func query(t *testing.T, addr, command string) []string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", command); err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		if sc.Text() == "" {
			break
		}
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestQueryUnknownCommand pins the error contract: an unrecognized
// command must answer with an "ERR unknown command" line — not a
// silent close — and the connection must stay usable afterwards.
func TestQueryUnknownCommand(t *testing.T) {
	_, addr := startQueryServer(t)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "bogus-command\nclients\nquit\n"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("connection closed without a response: %v", sc.Err())
	}
	if got := sc.Text(); !strings.HasPrefix(got, `ERR unknown command "bogus-command"`) {
		t.Fatalf("unknown command answered %q, want ERR unknown command line", got)
	}
	if !sc.Scan() || sc.Text() != "" {
		t.Fatalf("missing blank terminator after ERR line")
	}
	// The session survives the error: the next command still answers.
	if !sc.Scan() {
		t.Fatalf("connection dead after ERR: %v", sc.Err())
	}
	if got := sc.Text(); got != "0" {
		t.Fatalf("clients after ERR = %q, want \"0\"", got)
	}
}

// TestQueryMetrics checks that one "metrics" round trip returns
// harvest, pool, and store counters together.
func TestQueryMetrics(t *testing.T) {
	d, addr := startQueryServer(t)
	// Give the store something to count.
	d.store.Ingest(&telemetry.Report{
		Serial: "Q2AA-TEST", SeqNo: 1,
		Clients: []telemetry.ClientRecord{{MAC: dot11.MAC{0xac, 1, 2, 3, 4, 5}, Band: dot11.Band5}},
	})
	lines := query(t, addr, "metrics")
	byName := make(map[string]string)
	for _, l := range lines {
		name, rest, ok := strings.Cut(l, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", l)
		}
		byName[name] = rest
	}
	for _, want := range []string{
		"harvest.polls", "harvest.reconnects", "harvest.timeouts",
		"pool.devices", "pool.disconnects",
		"store.ingests", "store.clients", "store.save_us",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metrics response missing %q", want)
		}
	}
	if byName["store.ingests"] != "1" {
		t.Errorf("store.ingests = %q, want 1", byName["store.ingests"])
	}
	if byName["store.clients"] != "1" {
		t.Errorf("store.clients = %q, want 1", byName["store.clients"])
	}
}

// TestDebugMux drives the -debug HTTP surface: /debug/vars must serve
// the registry as valid JSON and the pprof index must answer.
func TestDebugMux(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	srv := httptest.NewServer(debugMux(d))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/vars content type %q", ct)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["store.ingests"]; !ok {
		t.Fatalf("/debug/vars missing store.ingests; keys: %d", len(vars))
	}

	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}

	// Without a series recorder or cluster peers, the observability
	// endpoints answer 404, not 500 or an empty 200.
	for _, path := range []string{"/debug/series", "/debug/federate"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s without feature status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDebugSeriesEndpoint drives /debug/series on a daemon with the
// recorder attached: full dump, a ?metric= narrow, and a 404 for an
// unknown metric.
func TestDebugSeriesEndpoint(t *testing.T) {
	d := newDaemon(nil, time.Second, 64, time.Second, 1.0, 1024)
	d.attachSeries(32, 2, 2, true)
	base := time.Unix(1000, 0)
	d.store.Ingest(&telemetry.Report{Serial: "Q2AA-SER", SeqNo: 1})
	d.series.Sample(base)
	d.series.Sample(base.Add(time.Second))

	srv := httptest.NewServer(debugMux(d))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/series?metric=store.ingests&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/series status %d", resp.StatusCode)
	}
	var body map[string]struct {
		Kind   string           `json:"kind"`
		Points []map[string]any `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("/debug/series is not JSON: %v", err)
	}
	got, ok := body["store.ingests"]
	if !ok {
		t.Fatalf("/debug/series?metric=store.ingests missing series; keys=%d", len(body))
	}
	if len(got.Points) != 2 {
		t.Fatalf("store.ingests points = %d, want 2", len(got.Points))
	}

	bad, err := srv.Client().Get(srv.URL + "/debug/series?metric=no.such.metric")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 404 {
		t.Fatalf("/debug/series unknown metric status %d, want 404", bad.StatusCode)
	}
}

// TestQuerySeries pins the "series" query protocol: the bare form lists
// recorded metric names, the metric form prints points oldest first,
// and bad arguments answer ERR lines.
func TestQuerySeries(t *testing.T) {
	d, addr := startQueryServer(t)
	d.attachSeries(32, 2, 2, true)
	d.store.Ingest(&telemetry.Report{Serial: "Q2AA-SER", SeqNo: 1})
	base := time.Unix(2000, 0)
	d.series.Sample(base)
	d.series.Sample(base.Add(time.Second))

	names := query(t, addr, "series")
	found := false
	for _, n := range names {
		if n == "store.ingests" {
			found = true
		}
	}
	if !found {
		t.Fatalf("series name list missing store.ingests: %v", names)
	}

	pts := query(t, addr, "series store.ingests 5")
	if len(pts) != 2 {
		t.Fatalf("series store.ingests returned %d lines, want 2: %v", len(pts), pts)
	}
	for _, p := range pts {
		if !strings.HasPrefix(p, "t=") || !strings.Contains(p, " v=") {
			t.Errorf("malformed point line %q", p)
		}
	}

	if got := query(t, addr, "series store.ingests zero"); len(got) != 1 || !strings.HasPrefix(got[0], "ERR bad point count") {
		t.Errorf("bad point count answered %v, want ERR line", got)
	}
	if got := query(t, addr, "series no.such.metric"); len(got) != 1 || !strings.HasPrefix(got[0], "ERR") {
		t.Errorf("unknown metric answered %v, want ERR line", got)
	}
}

// TestQuerySeriesDisabled: without a recorder the series query answers
// an ERR line pointing at the flag, not a panic or silence.
func TestQuerySeriesDisabled(t *testing.T) {
	_, addr := startQueryServer(t)
	got := query(t, addr, "series")
	if len(got) != 1 || !strings.HasPrefix(got[0], "ERR series recording disabled") {
		t.Fatalf("series without recorder answered %v, want ERR disabled line", got)
	}
}

// TestQueryAlertsAndStatus drives the health engine through the query
// surface: "alerts" lists every rule with its state, and "status" gains
// an "alerts firing=" line when the engine is attached.
func TestQueryAlertsAndStatus(t *testing.T) {
	d, addr := startQueryServer(t)
	d.attachSeries(32, 1, 1, true)
	base := time.Unix(3000, 0)
	d.series.Sample(base)
	d.alerts.Eval(base)

	lines := query(t, addr, "alerts")
	if len(lines) == 0 {
		t.Fatal("alerts answered no lines")
	}
	byRule := make(map[string]string)
	for _, l := range lines {
		name, _, _ := strings.Cut(l, " ")
		byRule[name] = l
	}
	for _, want := range []string{"harvest-degradation", "wal-degraded", "dedup-spike", "harvest-silence"} {
		l, ok := byRule[want]
		if !ok {
			t.Errorf("alerts missing default rule %q: %v", want, lines)
			continue
		}
		if !strings.Contains(l, " ok ") {
			t.Errorf("rule %q not ok on a healthy daemon: %q", want, l)
		}
	}

	status := query(t, addr, "status")
	var alertLine string
	for _, l := range status {
		if strings.HasPrefix(l, "alerts firing=") {
			alertLine = l
		}
	}
	if alertLine != "alerts firing=0 -" {
		t.Errorf("status alert line = %q, want \"alerts firing=0 -\"", alertLine)
	}
}

// TestQueryWatch pins the machine-readable watch line merakireport
// -watch fans out: one line, fixed key=value fields.
func TestQueryWatch(t *testing.T) {
	d, addr := startQueryServer(t)
	d.attachSeries(32, 1, 1, true)
	d.store.Ingest(&telemetry.Report{Serial: "Q2AA-W", SeqNo: 1})
	base := time.Unix(4000, 0)
	d.series.Sample(base)
	d.series.Sample(base.Add(2 * time.Second))
	d.alerts.Eval(base.Add(2 * time.Second))

	lines := query(t, addr, "watch")
	if len(lines) != 1 {
		t.Fatalf("watch answered %d lines, want 1: %v", len(lines), lines)
	}
	for _, key := range []string{"shard=", "devices=", "ingested=", "dupes=", "rate=", "wal_p99_us=", "degraded=", "firing="} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("watch line missing %q: %q", key, lines[0])
		}
	}
	if !strings.Contains(lines[0], "ingested=1") {
		t.Errorf("watch line ingested != 1: %q", lines[0])
	}
	if !strings.Contains(lines[0], "firing=-") {
		t.Errorf("watch line firing != -: %q", lines[0])
	}
}

// TestQueryProm: the "prom" query — federation's per-shard payload —
// must serve the Prometheus exposition with TYPE metadata.
func TestQueryProm(t *testing.T) {
	d, addr := startQueryServer(t)
	d.store.Ingest(&telemetry.Report{Serial: "Q2AA-P", SeqNo: 1})
	lines := query(t, addr, "prom")
	var typeLines, samples int
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			typeLines++
		} else if !strings.HasPrefix(l, "#") {
			samples++
		}
	}
	if typeLines == 0 || samples == 0 {
		t.Fatalf("prom answered %d TYPE lines and %d samples, want both > 0", typeLines, samples)
	}
}
