// Package wlanscale is a from-scratch reproduction of "Large-scale
// Measurements of Wireless Network Behavior" (Biswas et al., SIGCOMM
// 2015): a deterministic fleet simulator for the Meraki measurement
// system, the on-AP measurement pipeline (802.11 scanning, mesh link
// probes, radio utilization counters, Click-style flow classification),
// the protobuf-wire telemetry path, the backend aggregation store, and
// analyses that regenerate every table and figure in the paper.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-versus-measured results, and cmd/merakireport to run everything.
package wlanscale
