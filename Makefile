# Tier-1 verification and race-detector targets. The telemetry, backend
# and core packages are concurrency-heavy (harvest tunnels, chaos suite,
# lock-striped store, parallel usage-epoch pipeline), so `race` must
# stay green across the whole module, not just `test`. CI
# (.github/workflows/ci.yml) runs build + vet + test + race.

.PHONY: build test vet race bench docs trace-smoke crash-smoke verify

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go vet ./... && go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# docs fails if any package under internal/ or cmd/ is missing a
# package comment (or carries a duplicated one).
docs:
	go vet ./... && go run ./scripts/checkdocs

# trace-smoke runs a fully sampled offline harvest and validates the
# flight-recorder dump: it must parse as JSON and contain at least one
# complete five-stage trace (see scripts/tracecheck).
trace-smoke:
	go run ./cmd/merakisim -networks 4 -trace-sample 1.0 \
		-trace-out /tmp/trace-smoke.json -out /tmp/trace-smoke.gob
	go run ./scripts/tracecheck /tmp/trace-smoke.json

# crash-smoke is the kill-and-recover gate: harvest a live agent fleet
# into a WAL-backed merakid, SIGKILL it mid-harvest (twice), restart it
# over the same -wal-dir, and require the recovered store digest to
# match a never-crashed control (see scripts/crashcheck). The
# cmd/merakid crash tests run the same proof across 10 seeds in-tree.
crash-smoke:
	go run ./scripts/crashcheck -seed 1 -cycles 2

verify: build vet test race docs trace-smoke crash-smoke
