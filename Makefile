# Tier-1 verification and race-detector targets. The telemetry, backend
# and core packages are concurrency-heavy (harvest tunnels, chaos suite,
# lock-striped store, parallel usage-epoch pipeline), so `race` must
# stay green across the whole module, not just `test`. CI
# (.github/workflows/ci.yml) runs build + vet + test + race.

.PHONY: build test vet race bench bench-gate bench-baseline wire-compat docs docs-gen trace-smoke crash-smoke cluster-smoke mon-smoke rebalance-smoke verify

# GATE_BENCH is the benchmark set the regression gate measures: the
# wire codecs (bytes/report is the headline EXPERIMENTS.md number) and
# the in-memory harvest pipeline for both wire versions. Fixed -50x
# iteration counts keep the run fast and the allocation counts exact;
# WAL arms are excluded because fsync timing is the disk's, not ours.
GATE_BENCH = BenchmarkWireEncode|BenchmarkHarvestPipeline/wire-v./volatile

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go vet ./... && go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# bench-gate fails if any gated benchmark regressed past tolerance
# versus the checked-in BENCH_baseline.json (±20% for deterministic
# size/alloc metrics, wider for wall-clock; see scripts/benchgate).
bench-gate:
	go test ./internal/backend -run xxx -bench '$(GATE_BENCH)' \
		-benchmem -benchtime 50x | go run ./scripts/benchgate -baseline BENCH_baseline.json

# bench-baseline reruns the gated benchmarks and rewrites the baseline;
# use after an intentional perf or wire-format change.
bench-baseline:
	go test ./internal/backend -run xxx -bench '$(GATE_BENCH)' \
		-benchmem -benchtime 50x | go run ./scripts/benchgate -baseline BENCH_baseline.json -update

# wire-compat is the digest-equivalence gate: 10 seeds of v1, v2, and
# mixed-fallback harvests must agree byte-for-byte on the store digest,
# plus a fuzz pass over the batch decoder and the frame demultiplexer.
wire-compat:
	go test ./internal/backend -run 'TestWireDigestEquivalence' -count=1 -v
	go test ./internal/core -run 'TestUsageEpochWireEquivalence' -count=1
	go test ./internal/telemetry -run xxx -fuzz FuzzDecodeBatchFrame -fuzztime 30s
	go test ./internal/telemetry -run xxx -fuzz FuzzDecodeMessage -fuzztime 30s

# docs is the documentation gate: every package in the module must
# carry exactly one package comment (scripts/checkdocs), and the
# generated CLI flag reference docs/FLAGS.md must match the flag
# registrations in cmd/* (scripts/flagdoc -check) — change a flag
# without running `make docs-gen` and CI fails.
docs:
	go vet ./... && go run ./scripts/checkdocs
	go run ./scripts/flagdoc -check docs/FLAGS.md

# docs-gen regenerates docs/FLAGS.md after a flag change.
docs-gen:
	go run ./scripts/flagdoc -out docs/FLAGS.md

# trace-smoke runs a fully sampled offline harvest and validates the
# flight-recorder dump: it must parse as JSON and contain at least one
# complete five-stage trace (see scripts/tracecheck).
trace-smoke:
	go run ./cmd/merakisim -networks 4 -trace-sample 1.0 \
		-trace-out /tmp/trace-smoke.json -out /tmp/trace-smoke.gob
	go run ./scripts/tracecheck /tmp/trace-smoke.json

# crash-smoke is the kill-and-recover gate: harvest a live agent fleet
# into a WAL-backed merakid, SIGKILL it mid-harvest (twice), restart it
# over the same -wal-dir, and require the recovered store digest to
# match a never-crashed control (see scripts/crashcheck). The
# cmd/merakid crash tests run the same proof across 10 seeds in-tree.
crash-smoke:
	go run ./scripts/crashcheck -seed 1 -cycles 2

# cluster-smoke is the sharded-deployment gate: spawn a 4-shard merakid
# cluster (per-shard WAL dirs, -shard/-shards/-peers), harvest a
# mixed-wire fleet routed by the shard map, and require both the
# router's merged digest and shard 0's own "fanout digest" to match a
# single-daemon control (see scripts/clustercheck). The cmd/merakid and
# internal/cluster tests run the same proof in-tree, including a
# SIGKILLed-and-recovered shard.
cluster-smoke:
	go run ./scripts/clustercheck -shards 4

# mon-smoke is the observability gate: spawn a 2-shard cluster on a
# fast series/health cadence, degrade one shard with faultnet-corrupted
# chaos agents, and require the harvest-degradation alert to fire and
# resolve, the transitions to be counted in health.* metrics, shard 0's
# /debug/federate to carry both shards' samples, and one merakireport
# -watch refresh to render every shard (see scripts/moncheck).
mon-smoke:
	go run ./scripts/moncheck

# rebalance-smoke is the live-migration gate: harvest into a 2-shard
# WAL-backed cluster, grow it to 3 shards with the real operator flow
# (`merakireport -cluster OLD -rebalance NEW` — part, extract, absorb,
# digest-verify, cut over), flip the fleet, and require the 3-shard
# merged digest to match a single-store control with moved networks
# gone from their sources (see scripts/rebalancecheck). The
# cmd/merakid rebalance tests run the same proof in-tree, including a
# destination SIGKILLed mid-migration.
rebalance-smoke:
	go run ./scripts/rebalancecheck

verify: build vet test race docs trace-smoke crash-smoke cluster-smoke mon-smoke rebalance-smoke
