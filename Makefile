# Tier-1 verification and race-detector targets. The telemetry and
# backend packages are concurrency-heavy (harvest tunnels, chaos suite,
# shared store), so `race` must stay green, not just `test`.

.PHONY: build test vet race bench verify

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go vet ./... && go test -race ./internal/telemetry/... ./internal/backend/...

bench:
	go test -bench=. -benchmem ./...

verify: build vet test race
