# Tier-1 verification and race-detector targets. The telemetry, backend
# and core packages are concurrency-heavy (harvest tunnels, chaos suite,
# lock-striped store, parallel usage-epoch pipeline), so `race` must
# stay green across the whole module, not just `test`. CI
# (.github/workflows/ci.yml) runs build + vet + test + race.

.PHONY: build test vet race bench docs verify

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go vet ./... && go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# docs fails if any package under internal/ or cmd/ is missing a
# package comment (or carries a duplicated one).
docs:
	go vet ./... && go run ./scripts/checkdocs

verify: build vet test race docs
