// Benchmark harness: one benchmark per table and figure of the paper,
// each printing the rows/series it regenerates on its first run, plus
// the ablation benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package wlanscale_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wlanscale/internal/airtime"
	"wlanscale/internal/apps"
	"wlanscale/internal/backend"
	"wlanscale/internal/client"
	"wlanscale/internal/core"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/health"
	"wlanscale/internal/obs/series"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
	"wlanscale/internal/stats"
	"wlanscale/internal/telemetry"
)

// The bench fixture runs at a mid scale: large enough for stable
// distributions, small enough that the whole suite finishes in minutes.
var (
	benchOnce   sync.Once
	benchStudy  *core.Study
	benchNow    *core.UsageEpoch
	benchBefore *core.UsageEpoch
	benchErr    error
)

func benchFixture(b *testing.B) (*core.Study, *core.UsageEpoch, *core.UsageEpoch) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 2026
		benchStudy, benchErr = core.NewStudy(cfg)
		if benchErr != nil {
			return
		}
		benchNow, benchErr = benchStudy.RunUsageEpoch(benchStudy.Fleet15)
		if benchErr != nil {
			return
		}
		benchBefore, benchErr = benchStudy.RunUsageEpoch(benchStudy.Fleet14)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy, benchNow, benchBefore
}

// printOnce guards each experiment's row dump so -bench output contains
// one copy of every reproduced table/figure.
var printed sync.Map

func printOnce(key, out string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", out)
	}
}

func BenchmarkTable1_Hardware(b *testing.B) {
	var r *core.Table1Result
	for i := 0; i < b.N; i++ {
		r = core.Table1Hardware()
	}
	printOnce("table1", r.Render())
}

func BenchmarkTable2_Industries(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Table2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Table2Industries(s.Fleet15)
	}
	printOnce("table2", r.Render())
}

func BenchmarkTable3_UsageByOS(b *testing.B) {
	_, now, before := benchFixture(b)
	var r *core.Table3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Table3UsageByOS(now, before)
	}
	printOnce("table3", r.Render())
}

func BenchmarkTable4_Capabilities(b *testing.B) {
	_, now, before := benchFixture(b)
	var r *core.Table4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Table4Capabilities(now, before)
	}
	printOnce("table4", r.Render())
}

func BenchmarkTable5_TopApps(b *testing.B) {
	_, now, before := benchFixture(b)
	var r *core.Table5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Table5TopApps(now, before, 40)
	}
	printOnce("table5", r.Render())
}

func BenchmarkTable6_Categories(b *testing.B) {
	_, now, before := benchFixture(b)
	var r *core.Table6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Table6Categories(now, before)
	}
	printOnce("table6", r.Render())
}

func BenchmarkTable7_NearbyNetworks(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Table7Result
	for i := 0; i < b.N; i++ {
		scanNow, err := s.RunNeighborScan(epoch.Jan2015)
		if err != nil {
			b.Fatal(err)
		}
		scanBefore, err := s.RunNeighborScan(epoch.Jul2014)
		if err != nil {
			b.Fatal(err)
		}
		r = core.Table7NearbyNetworks(scanNow, scanBefore, 10000.0/float64(len(scanNow.PerAP)))
	}
	printOnce("table7", r.Render())
}

func BenchmarkFigure1_RSSI(b *testing.B) {
	_, now, _ := benchFixture(b)
	var r *core.Figure1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.Figure1RSSI(now)
	}
	printOnce("fig1", r.Render())
}

func BenchmarkFigure2_ChannelHistogram(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure2Result
	for i := 0; i < b.N; i++ {
		scan, err := s.RunNeighborScan(epoch.Jan2015)
		if err != nil {
			b.Fatal(err)
		}
		r = core.Figure2NearbyByChannel(scan, 10000.0/float64(len(scan.PerAP)))
	}
	printOnce("fig2", r.Render())
}

func BenchmarkFigure3_DeliveryCDF(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure3Result
	for i := 0; i < b.N; i++ {
		r = s.RunFigure3()
	}
	printOnce("fig3", r.Render())
}

func BenchmarkFigure4_Link24Series(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.FigureSeriesResult
	for i := 0; i < b.N; i++ {
		r = s.RunLinkSeries(dot11.Band24)
	}
	printOnce("fig4", r.Render())
}

func BenchmarkFigure5_Link5Series(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.FigureSeriesResult
	for i := 0; i < b.N; i++ {
		r = s.RunLinkSeries(dot11.Band5)
	}
	printOnce("fig5", r.Render())
}

func BenchmarkFigure6_UtilizationMR16(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunFigure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig6", r.Render())
}

func BenchmarkFigure7_Scatter24(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.ScatterResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunScatter(dot11.Band24)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig7", r.Render())
}

func BenchmarkFigure8_Scatter5(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.ScatterResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunScatter(dot11.Band5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig8", r.Render())
}

func BenchmarkFigure9_DayNight(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunFigure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig9", r.Render())
}

func BenchmarkFigure10_Decodable(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunFigure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig10", r.Render())
}

func BenchmarkFigure11_Spectrum(b *testing.B) {
	s, _, _ := benchFixture(b)
	var r *core.Figure11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.RunFigure11(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig11", r.Render())
}

// ---- Concurrency benches (DESIGN.md §7). ----

// BenchmarkRunUsageEpoch measures the parallel usage-epoch pipeline on
// the bench fixture (seed 2026, 120 networks). "workers=max" sizes the
// pool to GOMAXPROCS, so running with -cpu 1,4,8 produces the scaling
// curve; equivalence of outputs across worker counts is pinned by
// TestRunUsageEpochWorkerEquivalence. Each iteration needs a fresh
// study (AP pipelines accumulate state), so setup runs off the clock.
//
// The obs=off/obs=on pair is the observability overhead guard: off runs
// with the nil (no-op) registry, on with a live obs.Registry attached.
// EXPERIMENTS.md records the measured delta; the budget is <2%.
//
// The trace=off/1%/100% trio guards the tracing overhead the same way:
// off is the nil tracer, 1% the production sampling rate (budget <3%
// over off, per ISSUE 4), 100% the worst case merakid -trace-sample
// 1.0 can configure. Each traced iteration gets a fresh recorder so
// ring contents never carry across runs.
//
// The series=on arm adds the PR-9 stack on top of obs=on: a series
// recorder sampling the registry plus the default health rules
// evaluating, on a 100ms cadence concurrent with the run — an order of
// magnitude hotter than merakid's 15s default, so the measured delta
// over obs=on bounds production overhead from above (budget <3%, per
// ISSUE 9; EXPERIMENTS.md records the measurement).
func BenchmarkRunUsageEpoch(b *testing.B) {
	run := func(b *testing.B, workers int, reg *obs.Registry, sample float64, seriesOn bool) {
		cfg := core.DefaultConfig()
		cfg.Seed = 2026
		cfg.Obs = reg
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if sample > 0 {
				cfg.Trace = trace.New(trace.NewRecorder(1<<16), cfg.Seed, sample)
			}
			study, err := core.NewStudy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var stop chan struct{}
			var looped <-chan struct{}
			if seriesOn {
				rec := series.NewRecorder(reg, series.Options{Cap: 64, Every: 100 * time.Millisecond})
				eng := health.NewEngine(rec, health.DefaultRules(2, 2))
				stop = make(chan struct{})
				done := make(chan struct{})
				looped = done
				go func() {
					defer close(done)
					t := time.NewTicker(100 * time.Millisecond)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case now := <-t.C:
							rec.Sample(now)
							eng.Eval(now)
						}
					}
				}()
			}
			b.StartTimer()
			_, err = study.RunUsageEpochWorkers(study.Fleet15, workers)
			b.StopTimer()
			if seriesOn {
				close(stop)
				<-looped
			}
			b.StartTimer()
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	max := runtime.GOMAXPROCS(0)
	b.Run("workers=1", func(b *testing.B) { run(b, 1, nil, 0, false) })
	b.Run("workers=max", func(b *testing.B) { run(b, max, nil, 0, false) })
	b.Run("workers=max/obs=off", func(b *testing.B) { run(b, max, nil, 0, false) })
	b.Run("workers=max/obs=on", func(b *testing.B) { run(b, max, obs.NewRegistry(), 0, false) })
	b.Run("workers=max/series=on", func(b *testing.B) { run(b, max, obs.NewRegistry(), 0, true) })
	b.Run("workers=max/trace=off", func(b *testing.B) { run(b, max, nil, 0, false) })
	b.Run("workers=max/trace=1pct", func(b *testing.B) { run(b, max, nil, 0.01, false) })
	b.Run("workers=max/trace=100pct", func(b *testing.B) { run(b, max, nil, 1.0, false) })
}

// BenchmarkStoreIngest contrasts the lock-striped store with a
// single-mutex (one-stripe) store under parallel report ingestion —
// the contention the sharding removes from the harvest path. Reports
// are pre-built off the clock; -cpu 1,4,8 sweeps the ingester count.
func BenchmarkStoreIngest(b *testing.B) {
	const nDevices = 256
	reports := make([]*telemetry.Report, nDevices)
	root := rng.New(2026)
	for n := range reports {
		src := root.SplitN("ingest", n)
		clients := make([]telemetry.ClientRecord, 8)
		for c := range clients {
			clients[c] = telemetry.ClientRecord{
				MAC:    dot11.MAC{0xac, 0xbc, 0x32, byte(n), byte(c), 1},
				Band:   dot11.Band24,
				RSSIdB: int32(5 + src.IntN(40)),
				Apps: []telemetry.AppUsageRecord{
					{App: "Netflix", UpBytes: src.Uint64() % 1e6, DownBytes: src.Uint64() % 1e8, Flows: 3},
					{App: "YouTube", UpBytes: src.Uint64() % 1e6, DownBytes: src.Uint64() % 1e8, Flows: 2},
				},
			}
		}
		reports[n] = &telemetry.Report{
			Serial:  fmt.Sprintf("Q2XX-%04d", n),
			Clients: clients,
			Radios: []telemetry.RadioStats{
				{Band: dot11.Band24, Channel: 6, CycleUS: 1000, RxClearUS: 300, Rx11US: 120, TxUS: 40},
			},
		}
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single-mutex", 1},
		{"sharded-32", 32},
	} {
		b.Run(tc.name, func(b *testing.B) {
			store := backend.NewStoreShards(tc.shards)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)-1) % nDevices
					store.Ingest(reports[i])
				}
			})
		})
	}
}

// ---- Ablation benches (DESIGN.md §4). ----

// BenchmarkAblation_HardThreshold contrasts the soft SINR->PER delivery
// curve with a hard RSSI threshold. The hard threshold cannot produce
// the intermediate-delivery mass that dominates Figure 3.
func BenchmarkAblation_HardThreshold(b *testing.B) {
	measure := func(hard bool) (intermediate float64) {
		root := rng.New(99)
		cdf := &stats.CDF{}
		for i := 0; i < 400; i++ {
			d := 20 + root.SplitN("d", i).Float64()*120
			l := meshprobe.New(rf.EnvDrywallOffice, dot11.Band24, d, 26, 0.25, root.SplitN("l", i))
			if l.MedianSNRdB() < 3 {
				continue
			}
			if hard {
				// Hard threshold: the link delivers everything or
				// nothing based on its median SNR.
				if l.MedianSNRdB() >= l.Rate.MinSNRdB {
					cdf.Add(1)
				} else {
					cdf.Add(0)
				}
				continue
			}
			cdf.Add(l.MeanDelivery(20, meshprobe.BinomialApprox))
		}
		return core.IntermediateFraction(cdf, 0.05, 0.95)
	}
	var soft, hard float64
	for i := 0; i < b.N; i++ {
		soft = measure(false)
		hard = measure(true)
	}
	printOnce("abl-hard", fmt.Sprintf(
		"Ablation (delivery model): intermediate-link fraction %.0f%% with the SINR curve vs %.0f%% with a hard RSSI threshold",
		soft*100, hard*100))
}

// BenchmarkAblation_UniformDuty contrasts heavy-tailed per-neighbor
// duty cycles with uniform ones. Uniform duty restores the
// count-to-utilization proportionality that Figures 7/8 rule out.
func BenchmarkAblation_UniformDuty(b *testing.B) {
	measure := func(uniform bool) float64 {
		root := rng.New(5)
		sc := &stats.Scatter{}
		ch6, _ := dot11.ChannelByNumber(dot11.Band24, 6)
		for trial := 0; trial < 400; trial++ {
			tsrc := root.SplitN("t", trial)
			hood := airtime.NewNeighborhood()
			n := tsrc.Poisson(1 + tsrc.Exp(6))
			for i := 0; i < n; i++ {
				hood.Add(airtime.NewBeaconSource(ch6, -55, 2, 0.1))
				if uniform {
					hood.Add(airtime.NewClientTrafficSource(ch6, -55, 0.012, 0.5, tsrc.SplitN("u", i)))
				} else {
					hood.Add(airtime.NewDataSource(ch6, 20, -55, tsrc.SplitN("d", i)))
				}
			}
			obs := hood.ObserveED(ch6, 13)
			sc.Add(float64(n), obs.Busy)
		}
		return sc.Pearson()
	}
	var heavy, uniform float64
	for i := 0; i < b.N; i++ {
		heavy = measure(false)
		uniform = measure(true)
	}
	printOnce("abl-duty", fmt.Sprintf(
		"Ablation (duty model): utilization-vs-count Pearson r = %+.2f with heavy-tailed duty vs %+.2f with uniform duty",
		heavy, uniform))
}

// BenchmarkAblation_ProbeSampling quantifies the accuracy/cost trade of
// the binomial window approximation against per-probe sampling.
func BenchmarkAblation_ProbeSampling(b *testing.B) {
	root := rng.New(31)
	mk := func(i int) *meshprobe.Link {
		d := 20 + root.SplitN("d", i).Float64()*100
		return meshprobe.New(rf.EnvOpenOffice, dot11.Band24, d, 26, 0.25, root.SplitN("l", i))
	}
	var perProbe, binom float64
	b.Run("per-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perProbe += mk(i % 64).MeasureWindow(meshprobe.PerProbe).Ratio()
		}
	})
	b.Run("binomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			binom += mk(i % 64).MeasureWindow(meshprobe.BinomialApprox).Ratio()
		}
	})
}

// BenchmarkAblation_RuleOrder measures how inverting the classifier's
// rule order (ports before hostnames) misattributes flows.
func BenchmarkAblation_RuleOrder(b *testing.B) {
	root := rng.New(77)
	classifier := apps.NewClassifier()
	catalog := apps.Catalog()
	var flows []apps.FlowMeta
	var truth []string
	for i := 0; i < 200; i++ {
		dev := client.NewFromMix(epoch.Jan2015, uint64(i), root.SplitN("dev", i))
		for _, fs := range dev.WeeklyFlows(epoch.Jan2015, catalog, root.SplitN("u", i)) {
			flows = append(flows, client.BuildMeta(fs, apps.UserAgentFor(dev.OS)))
			truth = append(truth, fs.App.Name)
		}
	}
	misRate := func(portFirst bool) float64 {
		classifier.PortFirst = portFirst
		defer func() { classifier.PortFirst = false }()
		miss := 0
		for i, m := range flows {
			if got := classifier.Classify(m); got.App != truth[i] && !apps.IsMiscBucket(truth[i]) {
				miss++
			}
		}
		return float64(miss) / float64(len(flows))
	}
	// Also measure classification with hostname metadata stripped (a
	// network where DNS and SNI inspection are unavailable): how much
	// traffic falls out of the named applications into misc buckets.
	blindMiscRate := func() float64 {
		lost := 0
		named := 0
		for i, m := range flows {
			if apps.IsMiscBucket(truth[i]) {
				continue
			}
			named++
			blind := m
			blind.DNSQuery = nil
			blind.ClientHello = nil
			blind.HTTPHead = nil
			if got := classifier.Classify(blind); apps.IsMiscBucket(got.App) {
				lost++
			}
		}
		return float64(lost) / float64(named)
	}
	var hostFirst, portFirst, blind float64
	for i := 0; i < b.N; i++ {
		hostFirst = misRate(false)
		portFirst = misRate(true)
		blind = blindMiscRate()
	}
	printOnce("abl-rules", fmt.Sprintf(
		"Ablation (rule order): named-app misattribution %.2f%% hostname-first vs %.2f%% port-first over %d flows;\n"+
			"without DNS/SNI/HTTP metadata, %.0f%% of named-app traffic collapses into misc buckets",
		hostFirst*100, portFirst*100, len(flows), blind*100))
}
