module wlanscale

go 1.22
