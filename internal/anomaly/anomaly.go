package anomaly

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// CrashKind classifies a device crash.
type CrashKind uint8

const (
	// CrashOOM is an out-of-memory kill.
	CrashOOM CrashKind = iota
	// CrashPanic is a kernel or driver panic.
	CrashPanic
	// CrashWatchdog is a hardware watchdog reset.
	CrashWatchdog
)

// String names the crash kind.
func (k CrashKind) String() string {
	switch k {
	case CrashOOM:
		return "oom"
	case CrashPanic:
		return "panic"
	case CrashWatchdog:
		return "watchdog"
	default:
		return fmt.Sprintf("crash(%d)", uint8(k))
	}
}

// CrashReport is the post-mortem a device uploads after rebooting — the
// "crashes (firmware and program counter state)" of Section 6.1.
type CrashReport struct {
	Serial    string
	Timestamp uint64
	Kind      CrashKind
	// Firmware is the firmware revision string.
	Firmware string
	// PC is the program counter at the fault.
	PC uint64
	// FreeKB is the free memory at the fault.
	FreeKB int
	// NeighborCount is the neighbor-table size at the fault, the
	// signature of the skyscraper bug.
	NeighborCount int
}

// NeighborTable models the in-memory neighbor table whose unbounded
// growth rebooted Manhattan and bus-mounted APs (Section 6.1): each
// tracked BSS costs memory, and the device OOMs when the budget is
// exhausted.
type NeighborTable struct {
	// BytesPerEntry is the per-BSS bookkeeping cost.
	BytesPerEntry int
	// BudgetKB is the memory available for the table.
	BudgetKB int

	entries map[uint64]bool
}

// NewNeighborTable builds a table for a device with the given memory
// budget in KB (the MR16's table budget is a slice of its 64 MB).
func NewNeighborTable(budgetKB int) *NeighborTable {
	return &NeighborTable{
		BytesPerEntry: 512,
		BudgetKB:      budgetKB,
		entries:       make(map[uint64]bool),
	}
}

// Len returns the number of tracked BSSes.
func (t *NeighborTable) Len() int { return len(t.entries) }

// UsedKB returns the table's memory footprint.
func (t *NeighborTable) UsedKB() int { return len(t.entries) * t.BytesPerEntry / 1024 }

// ErrOOM is returned when inserting a neighbor exhausts the budget.
type ErrOOM struct {
	Entries int
	UsedKB  int
}

// Error implements error.
func (e *ErrOOM) Error() string {
	return fmt.Sprintf("anomaly: neighbor table OOM at %d entries (%d KB)", e.Entries, e.UsedKB)
}

// Observe inserts a BSSID (keyed by its packed form). When the budget
// is exceeded it returns *ErrOOM — the bug as shipped. Real fixes bound
// the table; see ObserveBounded.
func (t *NeighborTable) Observe(bssid uint64) error {
	t.entries[bssid] = true
	if t.UsedKB() > t.BudgetKB {
		return &ErrOOM{Entries: len(t.entries), UsedKB: t.UsedKB()}
	}
	return nil
}

// OOMCrash builds the post-mortem a device uploads after the neighbor
// table exhausts its memory budget — the crash record that rides the
// first report after the reboot. The free-memory figure is pinned at
// the exhausted budget's remainder (effectively zero headroom).
func (t *NeighborTable) OOMCrash(serial string, ts uint64, firmware string, pc uint64) CrashReport {
	free := t.BudgetKB - t.UsedKB()
	if free < 0 {
		free = 0
	}
	return CrashReport{
		Serial:        serial,
		Timestamp:     ts,
		Kind:          CrashOOM,
		Firmware:      firmware,
		PC:            pc,
		FreeKB:        free,
		NeighborCount: t.Len(),
	}
}

// ObserveBounded inserts with an entry cap (the post-incident fix):
// when full, new entries are dropped and the device survives.
func (t *NeighborTable) ObserveBounded(bssid uint64, maxEntries int) (dropped bool) {
	if len(t.entries) >= maxEntries {
		if !t.entries[bssid] {
			return true
		}
	}
	t.entries[bssid] = true
	return false
}

// Detector aggregates crash reports and per-device telemetry to surface
// fleet anomalies, as the backend's instrumentation does.
type Detector struct {
	mu sync.Mutex
	// crashes per (serial).
	crashes map[string][]CrashReport
	// neighborCounts is the latest neighbor count per device.
	neighborCounts map[string]int
}

// NewDetector creates an empty detector.
func NewDetector() *Detector {
	return &Detector{
		crashes:        make(map[string][]CrashReport),
		neighborCounts: make(map[string]int),
	}
}

// RecordCrash ingests a crash report.
func (d *Detector) RecordCrash(r CrashReport) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashes[r.Serial] = append(d.crashes[r.Serial], r)
}

// RecordNeighborCount ingests a device's current neighbor-table size.
func (d *Detector) RecordNeighborCount(serial string, count int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.neighborCounts[serial] = count
}

// RebootLoops returns serials that crashed at least minCrashes times —
// the "rebooting either minutes or hours after booting on a repeated
// basis" signature.
func (d *Detector) RebootLoops(minCrashes int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for serial, list := range d.crashes {
		if len(list) >= minCrashes {
			out = append(out, serial)
		}
	}
	sort.Strings(out)
	return out
}

// Outlier is one anomalous device.
type Outlier struct {
	Serial string
	// Count is the device's neighbor count.
	Count int
	// Sigma is how many robust standard deviations above the fleet
	// median the device sits.
	Sigma float64
}

// NeighborOutliers returns devices whose neighbor count sits more than
// k robust standard deviations above the fleet median — the analysis
// that found the skyscraper and bus APs. The spread estimate is the
// median absolute deviation (scaled), so the outliers themselves do not
// mask the threshold.
func (d *Detector) NeighborOutliers(k float64) []Outlier {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.neighborCounts) < 4 {
		return nil
	}
	counts := make([]float64, 0, len(d.neighborCounts))
	for _, c := range d.neighborCounts {
		counts = append(counts, float64(c))
	}
	med := median(counts)
	devs := make([]float64, len(counts))
	for i, c := range counts {
		devs[i] = math.Abs(c - med)
	}
	mad := median(devs) * 1.4826
	if mad < 1 {
		mad = 1
	}
	var out []Outlier
	for serial, c := range d.neighborCounts {
		sigma := (float64(c) - med) / mad
		if sigma > k {
			out = append(out, Outlier{Serial: serial, Count: c, Sigma: sigma})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sigma != out[j].Sigma {
			return out[i].Sigma > out[j].Sigma
		}
		return out[i].Serial < out[j].Serial
	})
	return out
}

// CrashesByFirmware tallies crashes per firmware revision, the first
// pivot a debugging engineer reaches for.
func (d *Detector) CrashesByFirmware() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int)
	for _, list := range d.crashes {
		for _, r := range list {
			out[r.Firmware]++
		}
	}
	return out
}

func median(v []float64) float64 {
	cp := make([]float64, len(v))
	copy(cp, v)
	sort.Float64s(cp)
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// SpikeDetector finds sudden fleet-wide surges in one application's
// usage — Section 6.2's OS-update downloads that "drive large downloads
// across large numbers of clients, sometimes causing sudden increases
// totaling tens or hundreds of gigabytes".
type SpikeDetector struct {
	// Window is the number of trailing samples forming the baseline.
	Window int
	// Factor is how many times the baseline mean a sample must exceed
	// to count as a spike.
	Factor float64

	history map[string][]float64
}

// NewSpikeDetector builds a detector with the given baseline window and
// spike factor.
func NewSpikeDetector(window int, factor float64) *SpikeDetector {
	if window < 1 {
		window = 1
	}
	if factor <= 1 {
		factor = 2
	}
	return &SpikeDetector{Window: window, Factor: factor, history: make(map[string][]float64)}
}

// Add ingests one interval's fleet-wide byte total for an application
// and reports whether it is a spike relative to the trailing baseline.
// The spike sample is not added to the baseline (a surge should not
// normalize itself).
func (s *SpikeDetector) Add(app string, bytes float64) bool {
	h := s.history[app]
	spike := false
	if len(h) >= s.Window {
		var sum float64
		for _, v := range h[len(h)-s.Window:] {
			sum += v
		}
		baseline := sum / float64(s.Window)
		if baseline > 0 && bytes > baseline*s.Factor {
			spike = true
		}
	}
	if !spike {
		h = append(h, bytes)
		if len(h) > s.Window*4 {
			h = h[len(h)-s.Window*4:]
		}
		s.history[app] = h
	}
	return spike
}
