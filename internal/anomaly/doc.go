// Package anomaly implements the operational-telemetry machinery of
// paper Section 6: crash reports carrying firmware and program-counter
// state (Section 6.1's out-of-memory reboots), a neighbor-table memory
// model that reproduces the skyscraper/bus failure mode, detection of
// those outliers in the backend, and the Section 6.2 usage-spike
// detector for fleet-wide software-update surges.
//
// The AP side is NeighborTable (bounded memory that fills — and
// eventually OOMs — as beacons from dense environments accumulate) and
// CrashReport, the record an AP uploads after a watchdog reboot. The
// backend side is Detector, which clusters crash reports by firmware
// and program counter to surface Outliers, and SpikeDetector, which
// flags fleet-wide upload surges against a trailing baseline.
package anomaly
