package anomaly

import "wlanscale/internal/telemetry"

// FromTelemetry converts a wire crash record into the detector's form.
func FromTelemetry(serial string, r telemetry.CrashRecord) CrashReport {
	return CrashReport{
		Serial:        serial,
		Timestamp:     r.Timestamp,
		Kind:          CrashKind(r.Kind),
		Firmware:      r.Firmware,
		PC:            r.PC,
		FreeKB:        int(r.FreeKB),
		NeighborCount: int(r.NeighborCount),
	}
}

// ToTelemetry converts a crash report into its wire form.
func (r CrashReport) ToTelemetry() telemetry.CrashRecord {
	return telemetry.CrashRecord{
		Timestamp:     r.Timestamp,
		Kind:          uint8(r.Kind),
		Firmware:      r.Firmware,
		PC:            r.PC,
		FreeKB:        uint32(r.FreeKB),
		NeighborCount: uint32(r.NeighborCount),
	}
}

// CrashSource is the slice of the backend store the detector reads —
// satisfied by *backend.Store.
type CrashSource interface {
	CrashSerials() []string
	Crashes(serial string) []telemetry.CrashRecord
}

// NeighborSource provides current neighbor-table sizes per device —
// satisfied by *backend.Store via a small adapter or directly when the
// store exposes neighbor tables.
type NeighborSource interface {
	NeighborSerials() []string
	NeighborCount(serial string) int
}

// FeedCrashes loads every stored crash report into the detector.
func (d *Detector) FeedCrashes(src CrashSource) {
	for _, serial := range src.CrashSerials() {
		for _, rec := range src.Crashes(serial) {
			d.RecordCrash(FromTelemetry(serial, rec))
		}
	}
}

// FeedNeighborCounts loads current neighbor counts into the detector.
func (d *Detector) FeedNeighborCounts(src NeighborSource) {
	for _, serial := range src.NeighborSerials() {
		d.RecordNeighborCount(serial, src.NeighborCount(serial))
	}
}
