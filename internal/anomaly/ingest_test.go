package anomaly

import (
	"testing"

	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

func TestCrashRoundTripThroughWireAndStore(t *testing.T) {
	// A crashing AP reports its post-mortems; the detector reads them
	// out of the backend store after they cross the wire format.
	store := backend.NewStore()
	crash := CrashReport{
		Serial:        "Q2XX-SKY",
		Timestamp:     4242,
		Kind:          CrashOOM,
		Firmware:      "r24.7",
		PC:            0x8040_1a2c,
		FreeKB:        112,
		NeighborCount: 3150,
	}
	for seq := uint64(1); seq <= 3; seq++ {
		rep := &telemetry.Report{
			Serial:  "Q2XX-SKY",
			SeqNo:   seq,
			Crashes: []telemetry.CrashRecord{crash.ToTelemetry()},
		}
		decoded, err := telemetry.UnmarshalReport(rep.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		store.Ingest(decoded)
	}
	if got := store.Crashes("Q2XX-SKY"); len(got) != 3 {
		t.Fatalf("stored crashes = %d", len(got))
	}
	if got := store.CrashSerials(); len(got) != 1 || got[0] != "Q2XX-SKY" {
		t.Fatalf("crash serials = %v", got)
	}

	d := NewDetector()
	d.FeedCrashes(store)
	loops := d.RebootLoops(3)
	if len(loops) != 1 || loops[0] != "Q2XX-SKY" {
		t.Errorf("reboot loops = %v", loops)
	}
	// The decoded crash preserves the post-mortem details.
	back := FromTelemetry("Q2XX-SKY", store.Crashes("Q2XX-SKY")[0])
	if back != crash {
		t.Errorf("round trip = %+v, want %+v", back, crash)
	}
}

func TestFeedNeighborCountsFromStore(t *testing.T) {
	store := backend.NewStore()
	mkNeighbors := func(serial string, n int, seq uint64) {
		var recs []telemetry.NeighborRecord
		for i := 0; i < n; i++ {
			recs = append(recs, telemetry.NeighborRecord{
				BSSID:   dot11.MACFromUint64([3]byte{1, 2, 3}, uint64(i)),
				Band:    dot11.Band24,
				Channel: 1,
			})
		}
		store.Ingest(&telemetry.Report{Serial: serial, SeqNo: seq, Neighbors: recs})
	}
	for i := 0; i < 20; i++ {
		mkNeighbors(serialN(i), 50, 1)
	}
	mkNeighbors("Q2XX-SKY", 3000, 1)

	d := NewDetector()
	d.FeedNeighborCounts(store)
	out := d.NeighborOutliers(8)
	if len(out) != 1 || out[0].Serial != "Q2XX-SKY" {
		t.Errorf("outliers = %+v", out)
	}
	if store.NeighborCount("Q2XX-SKY") != 3000 {
		t.Errorf("NeighborCount = %d", store.NeighborCount("Q2XX-SKY"))
	}
}

func TestCrashSurvivesSnapshot(t *testing.T) {
	store := backend.NewStore()
	store.Ingest(&telemetry.Report{
		Serial: "Q2XX-1", SeqNo: 1,
		Crashes: []telemetry.CrashRecord{{Kind: 0, Firmware: "r24", NeighborCount: 999}},
	})
	path := t.TempDir() + "/snap.gob"
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := backend.NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := restored.Crashes("Q2XX-1"); len(got) != 1 || got[0].NeighborCount != 999 {
		t.Errorf("restored crashes = %+v", got)
	}
}
