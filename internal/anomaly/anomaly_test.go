package anomaly

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"wlanscale/internal/rng"
)

func TestNeighborTableOOM(t *testing.T) {
	// A 256 KB budget at 512 B/entry holds 512 neighbors; the
	// skyscraper AP hears thousands.
	tab := NewNeighborTable(256)
	var oom *ErrOOM
	for i := uint64(0); i < 10000; i++ {
		if err := tab.Observe(i); err != nil {
			if !errors.As(err, &oom) {
				t.Fatalf("unexpected error type %T", err)
			}
			break
		}
	}
	if oom == nil {
		t.Fatal("table never OOMed")
	}
	if oom.Entries < 500 || oom.Entries > 520 {
		t.Errorf("OOM at %d entries, want ~512", oom.Entries)
	}
	if !strings.Contains(oom.Error(), "OOM") {
		t.Errorf("error text: %v", oom)
	}
}

func TestNeighborTableDuplicatesFree(t *testing.T) {
	tab := NewNeighborTable(256)
	for i := 0; i < 100000; i++ {
		if err := tab.Observe(42); err != nil {
			t.Fatalf("duplicate observations OOMed: %v", err)
		}
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestNeighborTableBoundedSurvives(t *testing.T) {
	// The fix: cap the table. The device drops excess entries instead
	// of dying.
	tab := NewNeighborTable(256)
	dropped := 0
	for i := uint64(0); i < 10000; i++ {
		if tab.ObserveBounded(i, 400) {
			dropped++
		}
	}
	if tab.Len() != 400 {
		t.Errorf("bounded table length = %d, want 400", tab.Len())
	}
	if dropped != 9600 {
		t.Errorf("dropped = %d, want 9600", dropped)
	}
	if tab.UsedKB() > 256 {
		t.Errorf("bounded table used %d KB over budget", tab.UsedKB())
	}
	// Re-observing an existing entry when full is not a drop.
	if tab.ObserveBounded(0, 400) {
		t.Error("existing entry reported as dropped")
	}
}

func TestRebootLoops(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 5; i++ {
		d.RecordCrash(CrashReport{Serial: "Q2XX-BUS", Kind: CrashOOM, Firmware: "r24.7", NeighborCount: 3200})
	}
	d.RecordCrash(CrashReport{Serial: "Q2XX-OK", Kind: CrashWatchdog, Firmware: "r24.7"})
	loops := d.RebootLoops(3)
	if len(loops) != 1 || loops[0] != "Q2XX-BUS" {
		t.Errorf("reboot loops = %v", loops)
	}
	byFW := d.CrashesByFirmware()
	if byFW["r24.7"] != 6 {
		t.Errorf("crashes by firmware = %v", byFW)
	}
}

func TestNeighborOutliersFindsSkyscraper(t *testing.T) {
	d := NewDetector()
	root := rng.New(1)
	// A normal fleet at ~55 neighbors...
	for i := 0; i < 500; i++ {
		d.RecordNeighborCount(serialN(i), 40+root.IntN(30))
	}
	// ...plus Manhattan and a bus.
	d.RecordNeighborCount("Q2XX-MANHATTAN", 2800)
	d.RecordNeighborCount("Q2XX-BUS", 1400)
	out := d.NeighborOutliers(8)
	if len(out) != 2 {
		t.Fatalf("outliers = %+v", out)
	}
	if out[0].Serial != "Q2XX-MANHATTAN" || out[1].Serial != "Q2XX-BUS" {
		t.Errorf("outlier order = %v, %v", out[0].Serial, out[1].Serial)
	}
	if out[0].Sigma < 50 {
		t.Errorf("skyscraper sigma = %.1f; should be extreme", out[0].Sigma)
	}
}

func TestNeighborOutliersRobustToMass(t *testing.T) {
	// Even if 20% of the fleet is anomalous, the MAD-based threshold
	// still flags them (a mean/stddev threshold would be masked).
	d := NewDetector()
	root := rng.New(2)
	for i := 0; i < 400; i++ {
		d.RecordNeighborCount(serialN(i), 40+root.IntN(30))
	}
	for i := 0; i < 100; i++ {
		d.RecordNeighborCount(serialN(10000+i), 2000+root.IntN(500))
	}
	out := d.NeighborOutliers(8)
	if len(out) != 100 {
		t.Errorf("outliers = %d, want 100", len(out))
	}
}

func TestNeighborOutliersSmallFleet(t *testing.T) {
	d := NewDetector()
	d.RecordNeighborCount("a", 1)
	if d.NeighborOutliers(3) != nil {
		t.Error("tiny fleet should return nil")
	}
}

func TestDetectorConcurrent(t *testing.T) {
	d := NewDetector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.RecordCrash(CrashReport{Serial: serialN(g), Kind: CrashOOM})
				d.RecordNeighborCount(serialN(g*100+i), 50)
			}
		}(g)
	}
	wg.Wait()
	if len(d.RebootLoops(100)) != 8 {
		t.Errorf("loops = %v", d.RebootLoops(100))
	}
}

func TestSpikeDetector(t *testing.T) {
	s := NewSpikeDetector(4, 3)
	// Baseline: ~100 GB per interval.
	for i := 0; i < 6; i++ {
		if s.Add("Software updates", 100e9) {
			t.Fatalf("baseline flagged as spike at %d", i)
		}
	}
	// Patch Tuesday: 800 GB.
	if !s.Add("Software updates", 800e9) {
		t.Error("8x surge not flagged")
	}
	// The spike must not poison the baseline: the next normal interval
	// is normal, and a second surge still trips.
	if s.Add("Software updates", 110e9) {
		t.Error("post-spike normal flagged")
	}
	if !s.Add("Software updates", 700e9) {
		t.Error("second surge not flagged")
	}
}

func TestSpikeDetectorPerApp(t *testing.T) {
	s := NewSpikeDetector(3, 2)
	for i := 0; i < 4; i++ {
		s.Add("Netflix", 50e9)
		s.Add("YouTube", 80e9)
	}
	if s.Add("Netflix", 55e9) {
		t.Error("cross-app contamination")
	}
	if !s.Add("YouTube", 200e9) {
		t.Error("YouTube surge missed")
	}
}

func TestSpikeDetectorDefensiveParams(t *testing.T) {
	s := NewSpikeDetector(0, 0.5)
	if s.Window != 1 || s.Factor != 2 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestCrashKindString(t *testing.T) {
	if CrashOOM.String() != "oom" || CrashPanic.String() != "panic" || CrashWatchdog.String() != "watchdog" {
		t.Error("kind names wrong")
	}
}

func serialN(i int) string {
	return "Q2XX-" + string(rune('A'+i%26)) + string(rune('A'+(i/26)%26)) + string(rune('A'+(i/676)%26))
}

func BenchmarkNeighborOutliers(b *testing.B) {
	d := NewDetector()
	root := rng.New(1)
	for i := 0; i < 10000; i++ {
		d.RecordNeighborCount(serialN(i)+string(rune('0'+i%10)), 40+root.IntN(30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.NeighborOutliers(8)
	}
}

func TestOOMCrashReport(t *testing.T) {
	nt := NewNeighborTable(1) // 1 KB budget: two 512-byte entries fill it
	var oom *ErrOOM
	var bssid uint64
	for bssid = 1; bssid < 100; bssid++ {
		if err := nt.Observe(bssid); err != nil {
			if !errors.As(err, &oom) {
				t.Fatalf("Observe returned %T, want *ErrOOM", err)
			}
			break
		}
	}
	if oom == nil {
		t.Fatal("table never exhausted its budget")
	}
	crash := nt.OOMCrash("Q2XX-OOM", 3600, "r24.7", 0x80401a2c)
	if crash.Kind != CrashOOM || crash.Serial != "Q2XX-OOM" {
		t.Errorf("crash = %+v", crash)
	}
	if crash.NeighborCount != nt.Len() || crash.NeighborCount != oom.Entries {
		t.Errorf("crash neighbor count %d, table %d, oom %d", crash.NeighborCount, nt.Len(), oom.Entries)
	}
	wire := crash.ToTelemetry()
	back := FromTelemetry("Q2XX-OOM", wire)
	if back != crash {
		t.Errorf("wire round trip: %+v vs %+v", back, crash)
	}
}
