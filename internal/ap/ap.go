// Package ap models a Meraki access point: the MR16 and MR18 hardware
// platforms of Table 1, their radios and virtual SSIDs, the nearby-
// network scanner that decodes beacons from other networks (Section
// 4.1), client association with per-band RSSI (Figure 1), the Click
// flow pipeline, and the periodic telemetry report the backend
// harvests.
package ap

import (
	"fmt"

	"wlanscale/internal/airtime"
	"wlanscale/internal/apps"
	"wlanscale/internal/client"
	"wlanscale/internal/dot11"
	"wlanscale/internal/flow"
	"wlanscale/internal/radio"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

// Hardware describes one access-point model (Table 1).
type Hardware struct {
	// Model is the marketing name.
	Model string
	// CPU and MemoryMB document the platform.
	CPU      string
	MemoryMB int
	// Radio24 and Radio5 are the serving radios.
	Radio24, Radio5 radio.Config
	// HasScanRadio marks the MR18's third, dedicated scanning radio.
	HasScanRadio bool
}

// The two hardware platforms the study measures (Table 1).
var (
	// HardwareMR16 is the Cisco Meraki MR16: AR7161 680 MHz, 64 MB,
	// 2x2 802.11n, 23 dBm at 2.4 GHz / 24 dBm at 5 GHz, 3/5 dBi
	// antennas.
	HardwareMR16 = Hardware{
		Model:    "Cisco Meraki MR16",
		CPU:      "Qualcomm Atheros AR7161 680MHz",
		MemoryMB: 64,
		Radio24:  radio.Config{Band: dot11.Band24, TxPowerDBm: 23, AntennaGainDBi: 3, Chains: 2},
		Radio5:   radio.Config{Band: dot11.Band5, TxPowerDBm: 24, AntennaGainDBi: 5, Chains: 2},
	}
	// HardwareMR18 is the Cisco Meraki MR18: QCA9557 SoC, 128 MB, 2x2
	// 802.11n plus a 1x1 dedicated scanning radio.
	HardwareMR18 = Hardware{
		Model:        "Cisco Meraki MR18",
		CPU:          "Qualcomm Atheros QCA9557 SoC",
		MemoryMB:     128,
		Radio24:      radio.Config{Band: dot11.Band24, TxPowerDBm: 24, AntennaGainDBi: 3, Chains: 2},
		Radio5:       radio.Config{Band: dot11.Band5, TxPowerDBm: 24, AntennaGainDBi: 5, Chains: 2},
		HasScanRadio: true,
	}
)

// MerakiOUI is the OUI prefix of the simulated fleet's devices.
var MerakiOUI = [3]byte{0x00, 0x18, 0x0a}

// Association is one client's attachment to the AP.
type Association struct {
	Device *client.Device
	Band   dot11.Band
	// RSSIdB is the uplink signal above the noise floor as measured at
	// the access point — the quantity Figure 1 plots.
	RSSIdB int32
	// DistanceM is the client-AP separation.
	DistanceM float64
}

// AP is one simulated access point.
type AP struct {
	Serial string
	MAC    dot11.MAC
	HW     Hardware
	Env    rf.Environment
	SSIDs  []string

	Radio24 *radio.Radio
	Radio5  *radio.Radio

	Table *flow.Table
	Pipe  *flow.Pipeline

	assocs []Association
	seq    uint32
}

// New creates an access point with its radios tuned to the given
// channels and its flow pipeline ready.
func New(serial string, serialNum uint64, hw Hardware, env rf.Environment, ch24, ch5 dot11.Channel, classifier *apps.Classifier) (*AP, error) {
	if ch24.Band != dot11.Band24 || ch5.Band != dot11.Band5 {
		return nil, fmt.Errorf("ap: channel bands swapped (%v, %v)", ch24.Band, ch5.Band)
	}
	a := &AP{
		Serial:  serial,
		MAC:     dot11.MACFromUint64(MerakiOUI, serialNum),
		HW:      hw,
		Env:     env,
		Radio24: radio.New(hw.Radio24, ch24),
		Radio5:  radio.New(hw.Radio5, ch5),
	}
	a.Table = flow.NewTable(classifier)
	a.Pipe = flow.NewPipeline(a.Table)
	return a, nil
}

// AddSSID configures an additional virtual access point; each SSID
// beacons independently, increasing channel usage (Section 4.1).
func (a *AP) AddSSID(ssid string) { a.SSIDs = append(a.SSIDs, ssid) }

// BeaconDuty returns the fraction of air time this AP's beacons occupy
// on the given band, with b11Fraction of SSID beacons sent at the
// 802.11b rate.
func (a *AP) BeaconDuty(band dot11.Band, b11Fraction float64) float64 {
	n := len(a.SSIDs)
	if n == 0 {
		n = 1
	}
	ch := a.Radio24.Channel
	if band == dot11.Band5 {
		ch = a.Radio5.Channel
	}
	return airtime.NewBeaconSource(ch, 0, n, b11Fraction).MeanDuty
}

// Beacon returns the marshaled beacon frame for SSID index i on the
// band.
func (a *AP) Beacon(i int, band dot11.Band) []byte {
	ssid := "meraki"
	if i < len(a.SSIDs) {
		ssid = a.SSIDs[i]
	}
	ch := a.Radio24.Channel
	caps := dot11.Capabilities{G: true, N: true, Streams: a.HW.Radio24.Chains}
	if band == dot11.Band5 {
		ch = a.Radio5.Channel
		caps = dot11.Capabilities{N: true, FiveGHz: true, Streams: a.HW.Radio5.Chains}
	}
	// Virtual APs use the base MAC with the low bits varied.
	bssid := a.MAC
	bssid[5] ^= byte(i)
	return dot11.NewBeacon(bssid, ssid, ch.Number, caps.Normalize()).Marshal()
}

// NeighborBSS is the ground truth of one nearby network as the RF
// environment presents it: a beacon frame on the air and its received
// power at this AP.
type NeighborBSS struct {
	// Frame is the marshaled beacon.
	Frame []byte
	// Band the beacon was heard on.
	Band dot11.Band
	// RxPowerDBm is the beacon's received power at this AP.
	RxPowerDBm float64
}

// ScanNeighbors decodes the beacons the AP can hear into neighbor
// records. Frames below the preamble-decode threshold, and frames that
// fail to parse, are skipped — the scanner only reports what it could
// actually decode.
func (a *AP) ScanNeighbors(bsses []NeighborBSS) []telemetry.NeighborRecord {
	var out []telemetry.NeighborRecord
	for _, b := range bsses {
		if b.RxPowerDBm < airtime.DefaultPreambleThresholdDBm {
			continue
		}
		f, err := dot11.Unmarshal(b.Frame)
		if err != nil || f.Type != dot11.FrameBeacon {
			continue
		}
		vendor := apps.VendorFromOUI(f.BSSID.OUI())
		if f.Vendor != "" {
			vendor = f.Vendor
		}
		out = append(out, telemetry.NeighborRecord{
			BSSID:   f.BSSID,
			SSID:    f.SSID,
			Band:    b.Band,
			Channel: f.Channel,
			RSSIdB:  int32(b.RxPowerDBm - rf.NoiseFloorDBm(20)),
			Vendor:  vendor,
		})
	}
	return out
}

// Associate attaches a client at the given distance. The client picks
// its band from the SNRs it observes toward the AP; the AP measures the
// uplink RSSI that Figure 1 reports. The association frame is actually
// built and parsed, so the capability record comes off the wire.
func (a *AP) Associate(dev *client.Device, distanceM float64, src *rng.Source) (Association, error) {
	// Downlink SNRs at the client decide the band.
	dn24 := rf.SNRdB(rf.ReceivedPowerDBm(a.Env, dot11.Band24, a.HW.Radio24.EIRPdBm(), distanceM)) + src.Normal(0, 3)
	dn5 := rf.SNRdB(rf.ReceivedPowerDBm(a.Env, dot11.Band5, a.HW.Radio5.EIRPdBm(), distanceM)) + src.Normal(0, 3)
	band := dev.AssociationBand(dn24, dn5, src)

	// The client transmits an association request; the AP decodes it.
	raw := dot11.NewAssocRequest(dev.MAC, a.MAC, dev.Caps).Marshal()
	f, err := dot11.Unmarshal(raw)
	if err != nil {
		return Association{}, fmt.Errorf("ap: associate: %w", err)
	}

	// Uplink RSSI at the AP: client TX power plus AP antenna gain,
	// minus path loss and shadowing.
	gain := a.HW.Radio24.AntennaGainDBi
	if band == dot11.Band5 {
		gain = a.HW.Radio5.AntennaGainDBi
	}
	rx := rf.ReceivedPowerDBm(a.Env, band, dev.TxPowerDBm+gain, distanceM) + src.Normal(0, a.Env.ShadowSigmaDB()*0.7)
	snr := rf.SNRdB(rx)
	if snr < 0 {
		snr = 0
	}
	assoc := Association{Device: dev, Band: band, RSSIdB: int32(snr + 0.5), DistanceM: distanceM}
	assoc.Device.Caps = f.Caps // what the AP learned from the frame
	a.assocs = append(a.assocs, assoc)
	return assoc, nil
}

// Associations returns the current association table.
func (a *AP) Associations() []Association { return a.assocs }

// ObserveClientDHCP feeds a client's DHCP fingerprint into the flow
// table (the slow path sees DHCP on association).
func (a *AP) ObserveClientDHCP(dev *client.Device, src *rng.Source) {
	fps, _ := dev.Artifacts(src)
	for _, fp := range fps {
		a.Table.ObserveDHCP(dev.MAC, fp)
	}
}

// BuildReport assembles the periodic telemetry report: radio counter
// snapshots (reset on harvest, as the driver does), per-client usage
// from the flow table, and whatever neighbor/link/scan data the caller
// collected this period.
func (a *AP) BuildReport(timestamp uint64, neighbors []telemetry.NeighborRecord, links []telemetry.LinkWindow, scans []telemetry.ScanSample) *telemetry.Report {
	r := &telemetry.Report{
		Serial:    a.Serial,
		MAC:       a.MAC,
		Timestamp: timestamp,
	}
	for _, rad := range []*radio.Radio{a.Radio24, a.Radio5} {
		c := rad.ResetCounters()
		if c.CycleUS == 0 {
			continue
		}
		r.Radios = append(r.Radios, telemetry.RadioStats{
			Band:      rad.Band,
			Channel:   rad.Channel.Number,
			WidthMHz:  rad.WidthMHz,
			CycleUS:   c.CycleUS,
			RxClearUS: c.RxClearUS,
			Rx11US:    c.Rx11US,
			TxUS:      c.TxUS,
		})
	}
	rssiByMAC := make(map[dot11.MAC]Association, len(a.assocs))
	for _, as := range a.assocs {
		rssiByMAC[as.Device.MAC] = as
	}
	for _, cu := range a.Table.Snapshot() {
		rec := telemetry.ClientRecord{
			MAC:              cu.Client,
			UserAgents:       cu.UserAgents,
			DHCPFingerprints: cu.DHCPFingerprints,
		}
		if as, ok := rssiByMAC[cu.Client]; ok {
			rec.Band = as.Band
			rec.RSSIdB = as.RSSIdB
			rec.Caps = as.Device.Caps
		}
		for _, u := range cu.Apps {
			rec.Apps = append(rec.Apps, telemetry.AppUsageRecord{
				App: u.App, UpBytes: u.UpBytes, DownBytes: u.DownBytes, Flows: uint32(u.Flows),
			})
		}
		sortAppRecords(rec.Apps)
		r.Clients = append(r.Clients, rec)
	}
	r.Neighbors = neighbors
	r.LinkWindows = links
	r.ScanSamples = scans
	return r
}

func sortAppRecords(v []telemetry.AppUsageRecord) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].App < v[j-1].App; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
