package ap

import (
	"testing"

	"wlanscale/internal/airtime"
	"wlanscale/internal/apps"
	"wlanscale/internal/click"
	"wlanscale/internal/client"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

func testAP(t *testing.T, hw Hardware) *AP {
	t.Helper()
	ch24, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	ch5, _ := dot11.ChannelByNumber(dot11.Band5, 36)
	a, err := New("Q2XX-TEST", 1, hw, rf.EnvOpenOffice, ch24, ch5, apps.NewClassifier())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHardwareTable1(t *testing.T) {
	// Table 1 values.
	if HardwareMR16.Radio24.TxPowerDBm != 23 || HardwareMR16.Radio5.TxPowerDBm != 24 {
		t.Error("MR16 TX power wrong")
	}
	if HardwareMR16.Radio24.AntennaGainDBi != 3 || HardwareMR16.Radio5.AntennaGainDBi != 5 {
		t.Error("MR16 antenna gains wrong")
	}
	if HardwareMR16.HasScanRadio {
		t.Error("MR16 has no scan radio")
	}
	if !HardwareMR18.HasScanRadio {
		t.Error("MR18 must have a scan radio")
	}
	if HardwareMR16.MemoryMB != 64 || HardwareMR18.MemoryMB != 128 {
		t.Error("memory sizes wrong")
	}
	if HardwareMR16.Radio24.Chains != 2 {
		t.Error("MR16 should be 2x2")
	}
}

func TestNewValidatesChannels(t *testing.T) {
	ch24, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	ch5, _ := dot11.ChannelByNumber(dot11.Band5, 36)
	if _, err := New("x", 1, HardwareMR16, rf.EnvOpenOffice, ch5, ch24, apps.NewClassifier()); err == nil {
		t.Error("swapped channels accepted")
	}
}

func TestBeaconDutyScalesWithSSIDs(t *testing.T) {
	a := testAP(t, HardwareMR16)
	a.AddSSID("corp")
	one := a.BeaconDuty(dot11.Band24, 1)
	a.AddSSID("guest")
	a.AddSSID("voice")
	three := a.BeaconDuty(dot11.Band24, 1)
	if three < 2.9*one || three > 3.1*one {
		t.Errorf("3-SSID duty %v vs 1-SSID %v", three, one)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	a := testAP(t, HardwareMR16)
	a.AddSSID("corp-wifi")
	f, err := dot11.Unmarshal(a.Beacon(0, dot11.Band24))
	if err != nil {
		t.Fatal(err)
	}
	if f.SSID != "corp-wifi" || f.Channel != 6 {
		t.Errorf("beacon = %+v", f)
	}
	if f.BSSID.OUI() != MerakiOUI {
		t.Error("beacon BSSID not Meraki OUI")
	}
	f5, err := dot11.Unmarshal(a.Beacon(0, dot11.Band5))
	if err != nil {
		t.Fatal(err)
	}
	if f5.Channel != 36 || !f5.Caps.FiveGHz {
		t.Errorf("5 GHz beacon = %+v", f5)
	}
}

func TestVirtualBSSIDsDistinct(t *testing.T) {
	a := testAP(t, HardwareMR16)
	a.AddSSID("one")
	a.AddSSID("two")
	f0, _ := dot11.Unmarshal(a.Beacon(0, dot11.Band24))
	f1, _ := dot11.Unmarshal(a.Beacon(1, dot11.Band24))
	if f0.BSSID == f1.BSSID {
		t.Error("virtual APs share a BSSID")
	}
}

func TestScanNeighborsDecodesFrames(t *testing.T) {
	a := testAP(t, HardwareMR18)
	hotspotMAC := dot11.MAC{0x00, 0x24, 0x23, 1, 2, 3} // Novatel OUI
	neighbor := dot11.NewBeacon(hotspotMAC, "MiFi-4620", 1, dot11.Capabilities{G: true, Streams: 1})
	bsses := []NeighborBSS{
		{Frame: neighbor.Marshal(), Band: dot11.Band24, RxPowerDBm: -70},
		{Frame: neighbor.Marshal(), Band: dot11.Band24, RxPowerDBm: -95},      // below decode threshold
		{Frame: []byte("garbage frame"), Band: dot11.Band24, RxPowerDBm: -50}, // undecodable
	}
	recs := a.ScanNeighbors(bsses)
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.SSID != "MiFi-4620" || r.Channel != 1 || r.BSSID != hotspotMAC {
		t.Errorf("record = %+v", r)
	}
	if !apps.IsHotspotVendor(r.Vendor) {
		t.Errorf("vendor = %q, want hotspot vendor", r.Vendor)
	}
	if r.RSSIdB < 15 || r.RSSIdB > 35 {
		t.Errorf("RSSI = %d dB", r.RSSIdB)
	}
}

func TestAssociateBuildsRecord(t *testing.T) {
	root := rng.New(1)
	a := testAP(t, HardwareMR16)
	dev := client.New(apps.OSMacOSX, epoch.Jan2015, 7, root.Split("dev"))
	assoc, err := a.Associate(dev, 10, root.Split("as"))
	if err != nil {
		t.Fatal(err)
	}
	if assoc.RSSIdB <= 0 {
		t.Errorf("RSSI = %d", assoc.RSSIdB)
	}
	if assoc.Device.Caps != dev.Caps.Normalize() {
		t.Errorf("caps from frame = %+v", assoc.Device.Caps)
	}
	if len(a.Associations()) != 1 {
		t.Error("association not recorded")
	}
}

func TestAssociate24OnlyClient(t *testing.T) {
	root := rng.New(2)
	a := testAP(t, HardwareMR16)
	dev := client.New(apps.OSBlackBerry, epoch.Jan2014, 1, root.Split("bb"))
	dev.Caps.FiveGHz = false
	dev.Caps.AC = false
	assoc, err := a.Associate(dev, 15, root.Split("as"))
	if err != nil {
		t.Fatal(err)
	}
	if assoc.Band != dot11.Band24 {
		t.Error("2.4-only client on 5 GHz")
	}
}

func TestMeasureThenReport(t *testing.T) {
	root := rng.New(3)
	a := testAP(t, HardwareMR16)
	ch6 := a.Radio24.Channel
	n := airtime.NewNeighborhood()
	n.Add(airtime.NewBeaconSource(ch6, -60, 5, 1))
	a.Radio24.Measure(n, 12, 60e9, 0.01)

	dev := client.New(apps.OSiOS, epoch.Jan2015, 5, root.Split("d"))
	if _, err := a.Associate(dev, 12, root.Split("as")); err != nil {
		t.Fatal(err)
	}
	a.ObserveClientDHCP(dev, root.Split("dhcp"))
	meta := &apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("i.instagram.com")}
	a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: 1, Length: 200, Meta: meta})
	a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: 1, Length: 500000})

	rep := a.BuildReport(1234, nil, []telemetry.LinkWindow{{Peer: dot11.MAC{9}, Band: dot11.Band24, Sent: 20, Delivered: 15}}, nil)
	if rep.Timestamp != 1234 || rep.Serial != "Q2XX-TEST" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Radios) != 1 {
		t.Fatalf("radios = %d, want 1 (5 GHz had no cycles)", len(rep.Radios))
	}
	if rep.Radios[0].RxClearUS == 0 {
		t.Error("busy counters empty")
	}
	if len(rep.Clients) != 1 {
		t.Fatalf("clients = %d", len(rep.Clients))
	}
	cr := rep.Clients[0]
	if cr.RSSIdB <= 0 {
		t.Error("client RSSI missing")
	}
	if len(cr.Apps) != 1 || cr.Apps[0].App != "Instagram" {
		t.Errorf("apps = %+v", cr.Apps)
	}
	if cr.Apps[0].DownBytes != 500000 {
		t.Errorf("bytes = %d", cr.Apps[0].DownBytes)
	}
	if len(cr.DHCPFingerprints) == 0 {
		t.Error("DHCP fingerprints missing")
	}
	if len(rep.LinkWindows) != 1 {
		t.Error("link windows missing")
	}
	// Harvest resets counters.
	if a.Radio24.Counters().CycleUS != 0 {
		t.Error("counters not reset after harvest")
	}
	// The report must survive the wire.
	rt, err := telemetry.UnmarshalReport(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Clients) != 1 || rt.Clients[0].Apps[0].App != "Instagram" {
		t.Error("report corrupted on the wire")
	}
}

func TestReportAppsSorted(t *testing.T) {
	root := rng.New(4)
	a := testAP(t, HardwareMR16)
	dev := client.New(apps.OSWindows, epoch.Jan2015, 9, root.Split("d"))
	for i, host := range []string{"www.netflix.com", "www.dropbox.com", "www.facebook.com"} {
		meta := &apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello(host)}
		a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: uint64(i), Length: 100, Meta: meta})
		a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: uint64(i), Length: 1000})
	}
	rep := a.BuildReport(1, nil, nil, nil)
	appsList := rep.Clients[0].Apps
	for i := 1; i < len(appsList); i++ {
		if appsList[i].App < appsList[i-1].App {
			t.Fatal("app records not sorted")
		}
	}
}

func BenchmarkAssociate(b *testing.B) {
	root := rng.New(1)
	ch24, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	ch5, _ := dot11.ChannelByNumber(dot11.Band5, 36)
	a, _ := New("bench", 1, HardwareMR16, rf.EnvOpenOffice, ch24, ch5, apps.NewClassifier())
	dev := client.New(apps.OSiOS, epoch.Jan2015, 1, root.Split("d"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.assocs = a.assocs[:0]
		if _, err := a.Associate(dev, 10, root); err != nil {
			b.Fatal(err)
		}
	}
}
