package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/obs"
)

// serveTruncating answers each connection's first command with n lines
// and then slams the connection shut without the blank terminator for
// the first `drops` connections; later connections get proper service
// from the wrapped store. This is the failure the truncation bug hid:
// a reply cut off mid-stream used to come back as a short success.
func serveTruncating(ln net.Listener, s *backend.Store, drops int32, lines int) *int32 {
	var conns int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := atomic.AddInt32(&conns, 1)
			go func(c net.Conn, truncate bool) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				w := bufio.NewWriter(c)
				for sc.Scan() {
					fields := strings.Fields(sc.Text())
					if len(fields) == 0 {
						continue
					}
					if fields[0] == "quit" {
						w.Flush()
						return
					}
					if truncate {
						for i := 0; i < lines; i++ {
							fmt.Fprintf(w, "line %d of a response that never finishes\n", i)
						}
						w.Flush()
						return // close without the blank terminator
					}
					fmt.Fprintln(w, s.Digest())
					fmt.Fprintln(w)
					w.Flush()
				}
			}(conn, n <= drops)
		}
	}()
	return &conns
}

// TestQueryOnceTruncated is the regression test for the scatter-gather
// truncation bug: a connection that closes before the blank-line
// terminator must surface ErrTruncated, never the partial lines as a
// short success.
func TestQueryOnceTruncated(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveTruncating(ln, backend.NewStore(), 1<<30, 3)
	lines, err := queryOnce(ln.Addr().String(), "digest", 2*time.Second)
	if err == nil {
		t.Fatalf("truncated response returned success with %d lines", len(lines))
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated response error = %v, want ErrTruncated", err)
	}
	if lines != nil {
		t.Fatalf("truncated response leaked partial lines: %q", lines)
	}
}

// TestFanoutRetriesTruncation pins the recovery path: a shard that
// drops its first response mid-stream is retried — because truncation
// is an error now — and the second, complete response wins.
func TestFanoutRetriesTruncation(t *testing.T) {
	s := backend.NewStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveTruncating(ln, s, 1, 3)
	r := &Router{
		Shards:      []string{ln.Addr().String()},
		Timeout:     2 * time.Second,
		Retries:     2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
	replies := r.Fanout("digest")
	if replies[0].Err != nil {
		t.Fatalf("retry after truncation did not recover: %v", replies[0].Err)
	}
	if replies[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (one truncated, one clean)", replies[0].Attempts)
	}
	if len(replies[0].Lines) != 1 || replies[0].Lines[0] != s.Digest() {
		t.Fatalf("post-retry reply %q, want the store digest", replies[0].Lines)
	}
}

// TestAttemptsMatchBudget pins the retry accounting: a shard that is
// down for good is dialed exactly Retries+1 times and the reply says
// so.
func TestAttemptsMatchBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: every dial fails fast
	r := &Router{
		Shards:      []string{addr},
		Timeout:     500 * time.Millisecond,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
	rep := r.queryShard(0, "digest")
	if rep.Err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}
	if rep.Attempts != 4 {
		t.Fatalf("Attempts = %d, want Retries+1 = 4", rep.Attempts)
	}
}

// TestRetryScheduleDeterministic pins the backoff contract: the
// schedule is a pure function of (shard, addr, base, max, attempts) —
// same inputs, same jittered waits — and every wait stays inside the
// [0.5, 1.5) jitter band around the capped exponential baseline.
func TestRetryScheduleDeterministic(t *testing.T) {
	const base, max = 50 * time.Millisecond, 400 * time.Millisecond
	a := retrySchedule(3, "10.0.0.7:7772", base, max, 6)
	b := retrySchedule(3, "10.0.0.7:7772", base, max, 6)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("schedule lengths %d/%d, want attempts-1 = 5", len(a), len(b))
	}
	backoff := base
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d differs across identical calls: %v vs %v", i, a[i], b[i])
		}
		lo, hi := backoff/2, backoff+backoff/2
		if a[i] < lo || a[i] >= hi {
			t.Fatalf("wait %d = %v outside jitter band [%v, %v)", i, a[i], lo, hi)
		}
		if backoff < max {
			backoff *= 2
			if backoff > max {
				backoff = max
			}
		}
	}
	if c := retrySchedule(4, "10.0.0.7:7772", base, max, 6); equalWaits(a, c) {
		t.Fatal("different shards produced identical schedules; jitter is not per-shard")
	}
	if d := retrySchedule(3, "10.0.0.8:7772", base, max, 6); equalWaits(a, d) {
		t.Fatal("different addresses produced identical schedules; jitter is not per-address")
	}
	if got := retrySchedule(0, "x", base, max, 1); got != nil {
		t.Fatalf("single-attempt schedule = %v, want nil", got)
	}
}

func equalWaits(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardErrGuardAfterRetarget is the regression test for the
// counter-slice panic: EnableObs sizes shardErrs to the Shards slice
// of that moment, and a router later retargeted to a larger topology
// (what the rebalance coordinator does) must degrade to not counting
// the new shards, not index out of range.
func TestShardErrGuardAfterRetarget(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // both down, so every shard takes the error path
	}
	r := &Router{Shards: addrs[:1], Timeout: 200 * time.Millisecond, Retries: -1}
	r.EnableObs(obs.NewRegistry())
	r.Shards = addrs // grown after EnableObs
	replies := r.Fanout("digest")
	if len(replies) != 2 {
		t.Fatalf("got %d replies, want 2", len(replies))
	}
	for i, rep := range replies {
		if rep.Err == nil {
			t.Fatalf("closed shard %d reported success", i)
		}
	}
}

// TestSnapshotLinesStayChunked pins the transport contract the fanout
// scanner depends on: however large the store, every snapshot line
// stays at the fixed chunk width — far under the 1 MiB scanner cap —
// and the chunked form round-trips to an identical digest. A >1 MiB
// single-line snapshot would kill the fanout scanner with
// bufio.ErrTooLong; this is the regression test that keeps the
// encoding chunked.
func TestSnapshotLinesStayChunked(t *testing.T) {
	s := backend.NewStore()
	streams := clusterReports(5, 220)
	for _, st := range streams {
		for _, r := range st.Reports {
			s.Ingest(r)
		}
	}
	var b strings.Builder
	if err := WriteSnapshotLines(&b, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(b.String())
	total := 0
	for i, ln := range lines {
		if len(ln) > snapshotLineLen {
			t.Fatalf("line %d is %d chars, over the %d chunk width", i, len(ln), snapshotLineLen)
		}
		total += len(ln)
	}
	if total <= 1<<20 {
		t.Fatalf("test store encodes to %d chars; grow it past the 1 MiB scanner cap to prove chunking matters", total)
	}
	merged := backend.NewStore()
	raw, err := DecodeSnapshotLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeSnapshot(raw); err != nil {
		t.Fatal(err)
	}
	if merged.Digest() != s.Digest() {
		t.Fatal("oversized store did not round-trip through snapshot lines")
	}
}
