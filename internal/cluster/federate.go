package cluster

import (
	"fmt"
	"strings"
)

// Metrics federation: scatter-gather the per-shard observability
// surfaces (the "prom" and "series" queries every merakid answers) and
// merge them into one fleet view, each sample tagged with the shard it
// came from. The merge is deterministic — families in first-seen order
// across shard-ID-ordered replies, shard-major within a family — and
// degrades to partial results like every other fanout: a dead shard
// costs its samples, not the scrape.

// FanoutMetrics scatter-gathers every shard's Prometheus exposition
// ("prom" query) and returns the merged fleet text alongside the raw
// replies, so callers can surface which shards contributed. Each
// sample line gains a shard="N" label; "# TYPE" metadata is emitted
// once per family. merakid serves this at /debug/federate on any
// daemon with -peers configured.
func (r *Router) FanoutMetrics() (string, []Reply) {
	replies := r.Fanout("prom")
	return MergeProm(replies), replies
}

// FanoutSeries scatter-gathers one metric's recent history ("series"
// query) from every shard. Use MergeSeriesLines to flatten the replies
// into shard-tagged text.
func (r *Router) FanoutSeries(metric string, n int) []Reply {
	return r.Fanout(fmt.Sprintf("series %s %d", metric, n))
}

// promFamily accumulates one family's type and samples across shards.
type promFamily struct {
	typ     string
	samples []string
}

// MergeProm merges per-shard Prometheus text replies into one fleet
// exposition. Sample lines are re-labeled with shard="N"; each
// family's "# TYPE" line is emitted once, before its samples, relying
// on WriteProm's contract that a TYPE line directly precedes its
// family's samples in each shard's scrape. Shards that errored (or
// answered with an ERR line) contribute nothing; the caller reports
// them from the replies.
func MergeProm(replies []Reply) string {
	fams := make(map[string]*promFamily)
	var order []string
	family := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, rep := range replies {
		if rep.Err != nil {
			continue
		}
		if len(rep.Lines) > 0 && strings.HasPrefix(rep.Lines[0], "ERR") {
			continue
		}
		cur := ""
		for _, ln := range rep.Lines {
			if name, typ, ok := parseTypeLine(ln); ok {
				cur = name
				family(name, typ)
				continue
			}
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			fam := cur
			if fam == "" {
				// A shard without TYPE metadata (older build): derive the
				// family from the sample name and mark it untyped.
				fam = sampleName(ln)
				if fam == "" {
					continue
				}
			}
			f := family(fam, "untyped")
			f.samples = append(f.samples, labelShard(ln, rep.Shard))
		}
	}
	var b strings.Builder
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// parseTypeLine splits a "# TYPE <name> <kind>" metadata line.
func parseTypeLine(ln string) (name, typ string, ok bool) {
	if !strings.HasPrefix(ln, "# TYPE ") {
		return "", "", false
	}
	fields := strings.Fields(ln)
	if len(fields) != 4 {
		return "", "", false
	}
	return fields[2], fields[3], true
}

// sampleName extracts the series name of one exposition sample line:
// everything before the first '{' or space.
func sampleName(ln string) string {
	end := len(ln)
	if i := strings.IndexByte(ln, '{'); i >= 0 && i < end {
		end = i
	}
	if i := strings.IndexByte(ln, ' '); i >= 0 && i < end {
		end = i
	}
	return ln[:end]
}

// labelShard injects shard="N" into one sample line, first in the
// label set when the sample already carries labels (the histogram
// bucket le label), as the only label otherwise. Lines that do not
// look like samples pass through unchanged.
func labelShard(ln string, shard int) string {
	sp := strings.IndexByte(ln, ' ')
	if sp < 0 {
		return ln
	}
	series, rest := ln[:sp], ln[sp:]
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return fmt.Sprintf(`%s{shard="%d",%s%s`, series[:i], shard, series[i+1:], rest)
	}
	return fmt.Sprintf(`%s{shard="%d"}%s`, series, shard, rest)
}

// MergeSeriesLines flattens FanoutSeries replies into shard-tagged
// text: each point line prefixed "shard=N ", a dead shard contributing
// one "shard=N DOWN: err" line instead — the same partial-results
// stance as the digest merge.
func MergeSeriesLines(replies []Reply) []string {
	var out []string
	for _, rep := range replies {
		if rep.Err != nil {
			out = append(out, fmt.Sprintf("shard=%d DOWN: %v", rep.Shard, rep.Err))
			continue
		}
		for _, ln := range rep.Lines {
			out = append(out, fmt.Sprintf("shard=%d %s", rep.Shard, ln))
		}
	}
	return out
}
