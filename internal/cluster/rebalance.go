package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"wlanscale/internal/backend"
)

// Live shard rebalancing. Growing a merakid cluster N→M shards moves
// ~1/(M) of the networks to new homes under the jump-hash map
// (map.go); this file is the coordinator that actually moves their
// data while the harvest keeps running, in five network-granular
// steps, each idempotent so an interrupted run re-converges:
//
//  1. discover — fan "networks" across the old topology; a network
//     migrates when the shard holding it is not its new-map home.
//  2. part — each source marks its moved networks as refusing
//     ingestion, so devices requeue instead of writing into a slice
//     already being copied. Parted state is WAL-durable on durable
//     shards.
//  3. extract+absorb — each (source, destination) group's slice is
//     exported with "extract" (a consistent per-network deep copy)
//     and pushed into the destination with "absorb" under a
//     deterministic per-pair token. Absorption is WAL-before-apply
//     and token-deduplicated: a destination SIGKILLed mid-migration
//     replays to exactly what it acknowledged, and re-pushing the
//     same token is a no-op.
//  4. verify — the digest of the moved slice re-extracted from the
//     destinations must equal the digest of what the sources
//     exported. On mismatch the absorbed copies are dropped, sources
//     un-parted, and the run fails without having destroyed anything.
//     (Full-topology digests cannot gate here: non-moved networks
//     keep ingesting mid-harvest.)
//  5. cut over — only after the verify gate do sources drop their
//     moved networks. Sources stay parted for the moved set, so
//     old-map agents that have not re-routed yet cannot resurrect a
//     network on its former home.
type Transfer struct {
	// Src indexes the old topology, Dst the new one.
	Src, Dst int
	// Networks is the sorted moved set for this pair.
	Networks []uint64
}

// RebalanceOptions tunes the coordinator. The zero value works for
// tests and small fleets.
type RebalanceOptions struct {
	// Token namespaces the migration: each (src,dst) pair absorbs
	// under "<token>.s<src>d<dst>". Re-running with the same token
	// skips already-absorbed slices (crash recovery); after a verified
	// failure and rollback, re-run with a fresh token. Empty defaults
	// to "rebalance".
	Token string
	// Timeout bounds each shard exchange (a slice push included).
	// Zero defaults to 30s.
	Timeout time.Duration
	// Retries / BackoffBase / BackoffMax follow Router semantics.
	Retries                 int
	BackoffBase, BackoffMax time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// RebalanceReport is what a completed rebalance proved.
type RebalanceReport struct {
	Token                string
	OldShards, NewShards int
	Transfers            []Transfer
	// MovedNetworks counts networks that changed homes this run.
	MovedNetworks int
	// SliceDigest is the canonical digest of the moved slice — equal
	// on the source side and the destination side, that equality being
	// the cutover gate.
	SliceDigest string
	// Full is the merged digest over the new topology after cutover.
	Full Digest
}

func (o *RebalanceOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o *RebalanceOptions) router(addrs []string) *Router {
	return &Router{
		Shards:      addrs,
		Timeout:     o.timeout(),
		Retries:     o.Retries,
		BackoffBase: o.BackoffBase,
		BackoffMax:  o.BackoffMax,
	}
}

func (o *RebalanceOptions) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 30 * time.Second
	}
	return o.Timeout
}

// idList renders IDs the way the merakid migration queries take them.
func idList(ids []uint64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatUint(id, 10)
	}
	return strings.Join(parts, ",")
}

// ParseIDList reverses idList — the daemon-side parser for the
// "extract"/"part"/"unpart"/"drop"/"absorb" ID operand.
func ParseIDList(s string) ([]uint64, error) {
	if s == "" {
		return nil, fmt.Errorf("cluster: empty network ID list")
	}
	parts := strings.Split(s, ",")
	ids := make([]uint64, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad network ID %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// shardReply converts a Reply into (lines, error), folding daemon-side
// ERR lines into the error.
func shardReply(rep Reply) ([]string, error) {
	if rep.Err != nil {
		return nil, fmt.Errorf("shard %d (%s): %w", rep.Shard, rep.Addr, rep.Err)
	}
	if len(rep.Lines) > 0 && strings.HasPrefix(rep.Lines[0], "ERR") {
		return nil, fmt.Errorf("shard %d (%s): %s", rep.Shard, rep.Addr, rep.Lines[0])
	}
	return rep.Lines, nil
}

// Rebalance migrates every network whose home changes between the old
// and new topologies, with the verify-gated cutover described above.
// All old shards must answer discovery — a rebalance that cannot see a
// shard's networks would silently strand them. On any failure after
// parting, the coordinator rolls back what it can (drop absorbed
// copies, un-part sources) and returns the first error.
func Rebalance(oldAddrs, newAddrs []string, o RebalanceOptions) (*RebalanceReport, error) {
	if len(oldAddrs) == 0 || len(newAddrs) == 0 {
		return nil, fmt.Errorf("cluster: rebalance needs both topologies (old=%d new=%d shards)", len(oldAddrs), len(newAddrs))
	}
	token := o.Token
	if token == "" {
		token = "rebalance"
	}
	oldR, newR := o.router(oldAddrs), o.router(newAddrs)
	rep := &RebalanceReport{Token: token, OldShards: len(oldAddrs), NewShards: len(newAddrs)}

	// 1. Discover. Every old shard must answer: a missing shard means
	// an unknown set of networks would be stranded.
	o.logf("rebalance: discovering networks across %d shard(s)", len(oldAddrs))
	owned := make([][]uint64, len(oldAddrs))
	for i, r := range oldR.Fanout("networks") {
		lines, err := shardReply(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: discovery: %w", err)
		}
		for _, ln := range lines {
			id, err := strconv.ParseUint(strings.TrimSpace(ln), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: discovery: shard %d: bad network line %q", i, ln)
			}
			owned[i] = append(owned[i], id)
		}
	}

	// 2. Plan. A network moves when the shard listing it is not its
	// new-map home (by address, so a shard keeping its slot never
	// copies to itself). Networks listed away from their old-map home
	// are a previous run's leftovers mid-cutover; moving them from
	// where they actually are converges that run too.
	newMap := NewMap(len(newAddrs))
	groups := make(map[[2]int][]uint64)
	for src, ids := range owned {
		for _, id := range ids {
			dst := newMap.Shard(id)
			if newAddrs[dst] == oldAddrs[src] {
				continue
			}
			groups[[2]int{src, dst}] = append(groups[[2]int{src, dst}], id)
		}
	}
	pairs := make([][2]int, 0, len(groups))
	for p := range groups {
		sort.Slice(groups[p], func(i, j int) bool { return groups[p][i] < groups[p][j] })
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	moved := make(map[uint64]bool)
	for _, p := range pairs {
		rep.Transfers = append(rep.Transfers, Transfer{Src: p[0], Dst: p[1], Networks: groups[p]})
		for _, id := range groups[p] {
			moved[id] = true
		}
	}
	rep.MovedNetworks = len(moved)
	if len(pairs) == 0 {
		o.logf("rebalance: nothing to move")
		rep.Full, _ = newR.MergedDigest()
		return rep, nil
	}
	o.logf("rebalance: moving %d network(s) across %d shard pair(s)", len(moved), len(pairs))

	// 3. Part every source's moved set so the slices stop changing.
	bySrc := make(map[int][]uint64)
	for _, t := range rep.Transfers {
		bySrc[t.Src] = append(bySrc[t.Src], t.Networks...)
	}
	srcs := make([]int, 0, len(bySrc))
	for src := range bySrc {
		sort.Slice(bySrc[src], func(i, j int) bool { return bySrc[src][i] < bySrc[src][j] })
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	unpartAll := func() {
		for _, src := range srcs {
			if _, err := shardReply(oldR.queryShard(src, "unpart "+idList(bySrc[src]))); err != nil {
				o.logf("rebalance: rollback: %v", err)
			}
		}
	}
	for _, src := range srcs {
		if _, err := shardReply(oldR.queryShard(src, "part "+idList(bySrc[src]))); err != nil {
			unpartAll()
			return nil, fmt.Errorf("cluster: part: %w", err)
		}
	}

	// 4. Extract each pair's slice and merge the source-side view.
	pre := backend.NewStore()
	slices := make(map[[2]int][]string, len(pairs))
	for _, p := range pairs {
		lines, err := shardReply(oldR.queryShard(p[0], "extract "+idList(groups[p])))
		if err != nil {
			unpartAll()
			return nil, fmt.Errorf("cluster: extract: %w", err)
		}
		raw, err := DecodeSnapshotLines(lines)
		if err != nil {
			unpartAll()
			return nil, fmt.Errorf("cluster: extract shard %d: %w", p[0], err)
		}
		if err := pre.MergeSnapshot(raw); err != nil {
			unpartAll()
			return nil, fmt.Errorf("cluster: extract shard %d: %w", p[0], err)
		}
		slices[p] = lines
		o.logf("rebalance: extracted %d network(s) from shard %d for shard %d (%d lines)",
			len(groups[p]), p[0], p[1], len(lines))
	}
	rep.SliceDigest = pre.Digest()

	// 5. Absorb into destinations, token-deduplicated per pair.
	pairToken := func(p [2]int) string { return fmt.Sprintf("%s.s%dd%d", token, p[0], p[1]) }
	dropAbsorbed := func() {
		for _, p := range pairs {
			if _, err := shardReply(newR.queryShard(p[1], fmt.Sprintf("drop %s %s", pairToken(p), idList(groups[p])))); err != nil {
				o.logf("rebalance: rollback: %v", err)
			}
		}
	}
	for _, p := range pairs {
		header := fmt.Sprintf("absorb %s %s", pairToken(p), idList(groups[p]))
		lines, err := pushShard(newAddrs[p[1]], p[1], header, slices[p], o)
		if err == nil && len(lines) > 0 && strings.HasPrefix(lines[0], "ERR") {
			err = fmt.Errorf("%s", lines[0])
		}
		if err != nil {
			dropAbsorbed()
			unpartAll()
			return nil, fmt.Errorf("cluster: absorb on shard %d (%s): %w", p[1], newAddrs[p[1]], err)
		}
		o.logf("rebalance: shard %d %s", p[1], strings.Join(lines, " "))
	}

	// 6. Verify: what the destinations now hold for the moved set must
	// digest identically to what the sources exported.
	post := backend.NewStore()
	for _, p := range pairs {
		lines, err := shardReply(newR.queryShard(p[1], "extract "+idList(groups[p])))
		if err != nil {
			dropAbsorbed()
			unpartAll()
			return nil, fmt.Errorf("cluster: verify: %w", err)
		}
		raw, err := DecodeSnapshotLines(lines)
		if err != nil {
			dropAbsorbed()
			unpartAll()
			return nil, fmt.Errorf("cluster: verify shard %d: %w", p[1], err)
		}
		if err := post.MergeSnapshot(raw); err != nil {
			dropAbsorbed()
			unpartAll()
			return nil, fmt.Errorf("cluster: verify shard %d: %w", p[1], err)
		}
	}
	if got := post.Digest(); got != rep.SliceDigest {
		dropAbsorbed()
		unpartAll()
		return nil, fmt.Errorf("cluster: verify gate failed: destination slice digest %s != source %s; rolled back (re-run with a fresh token)", got, rep.SliceDigest)
	}
	o.logf("rebalance: verify gate passed (slice digest %s)", rep.SliceDigest[:12])

	// 7. Cut over: sources drop the moved networks. They stay parted
	// there, so an old-map agent that has not re-routed yet cannot
	// rebuild a dropped network on its former home.
	for _, src := range srcs {
		lines, err := shardReply(oldR.queryShard(src, fmt.Sprintf("drop %s.s%d %s", token, src, idList(bySrc[src]))))
		if err != nil {
			return rep, fmt.Errorf("cluster: drop on shard %d after verified absorb: %w (destinations hold the data; re-run to finish the cutover)", src, err)
		}
		o.logf("rebalance: shard %d %s", src, strings.Join(lines, " "))
	}

	full, err := newR.MergedDigest()
	rep.Full = full
	if err != nil {
		return rep, fmt.Errorf("cluster: post-cutover digest: %w", err)
	}
	o.logf("rebalance: done; new-topology digest %s degraded=%v", full.Digest[:12], full.Degraded)
	return rep, nil
}

// pushShard is queryShard's payload-carrying sibling: send a header
// line plus payload lines ended by a blank line, then read the
// blank-line-terminated response, with the same retry schedule.
// Absorption is token-deduplicated daemon-side, so blind retries are
// safe.
func pushShard(addr string, shard int, header string, payload []string, o RebalanceOptions) ([]string, error) {
	base := o.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := o.BackoffMax
	if max <= 0 {
		max = time.Second
	}
	r := o.router(nil)
	attempts := r.attempts()
	waits := retrySchedule(shard, addr, base, max, attempts)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(waits[attempt-1])
		}
		lines, err := pushOnce(addr, header, payload, o.timeout())
		if err == nil {
			return lines, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func pushOnce(addr, header string, payload []string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	w := bufio.NewWriter(conn)
	fmt.Fprintln(w, header)
	for _, ln := range payload {
		fmt.Fprintln(w, ln)
	}
	fmt.Fprintln(w) // blank line ends the payload
	fmt.Fprintln(w, "quit")
	if err := w.Flush(); err != nil {
		return nil, err
	}
	var lines []string
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		ln := sc.Text()
		if ln == "" {
			return lines, nil
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w after %d lines from %s", ErrTruncated, len(lines), addr)
}
