package cluster

import "testing"

func TestMapDeterminismAndRange(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		m := NewMap(n)
		for id := uint64(0); id < 500; id++ {
			s1 := m.Shard(id)
			s2 := NewMap(n).Shard(id)
			if s1 != s2 {
				t.Fatalf("n=%d id=%d: shard not deterministic: %d vs %d", n, id, s1, s2)
			}
			if s1 < 0 || s1 >= n {
				t.Fatalf("n=%d id=%d: shard %d out of range", n, id, s1)
			}
		}
	}
}

func TestMapClampsToOne(t *testing.T) {
	for _, n := range []int{0, -3} {
		m := NewMap(n)
		if m.Shards != 1 {
			t.Fatalf("NewMap(%d).Shards = %d, want 1", n, m.Shards)
		}
		if s := m.Shard(12345); s != 0 {
			t.Fatalf("single-shard map routed id to %d", s)
		}
	}
}

// TestMapBalance pins that contiguous network IDs — the worst case for
// a bare modulus-free jump walk without premixing — spread evenly: no
// shard more than 25% off the fair share over 20k networks.
func TestMapBalance(t *testing.T) {
	const ids = 20000
	for _, n := range []int{2, 4, 8} {
		m := NewMap(n)
		counts := make([]int, n)
		for id := uint64(0); id < ids; id++ {
			counts[m.Shard(id)]++
		}
		fair := float64(ids) / float64(n)
		for s, c := range counts {
			if dev := float64(c)/fair - 1; dev > 0.25 || dev < -0.25 {
				t.Errorf("n=%d shard %d holds %d networks, fair share %.0f (%.1f%% off)",
					n, s, c, fair, dev*100)
			}
		}
	}
}

// TestMapConsistency pins the jump-hash minimal-movement property the
// rebalance runbook relies on: growing an N-shard cluster to N+1 moves
// only the networks the new shard takes over — about 1/(N+1) of them —
// and every moved network lands on the new shard, never between old
// shards.
func TestMapConsistency(t *testing.T) {
	const ids = 20000
	for _, n := range []int{2, 4, 8} {
		old, grown := NewMap(n), NewMap(n+1)
		moved := 0
		for id := uint64(0); id < ids; id++ {
			a, b := old.Shard(id), grown.Shard(id)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d id=%d moved from shard %d to %d, not to the new shard %d", n, id, a, b, n)
			}
		}
		want := float64(ids) / float64(n+1)
		if f := float64(moved); f > want*1.25 {
			t.Errorf("n=%d→%d moved %d networks, want ≈%.0f (minimal movement violated)", n, n+1, moved, want)
		}
	}
}

func TestMapAddr(t *testing.T) {
	m := NewMap(3)
	addrs := []string{"a:1", "b:2", "c:3"}
	for id := uint64(0); id < 50; id++ {
		got, err := m.Addr(id, addrs)
		if err != nil {
			t.Fatal(err)
		}
		if want := addrs[m.Shard(id)]; got != want {
			t.Fatalf("id %d routed to %s, want %s", id, got, want)
		}
	}
	if _, err := m.Addr(0, addrs[:2]); err == nil {
		t.Fatal("short addr list accepted")
	}
}
