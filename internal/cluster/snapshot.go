package cluster

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"strings"

	"wlanscale/internal/backend"
)

// snapshotLineLen is the base64 chunk width of a snapshot response.
// The query protocol is line-oriented with a blank-line terminator, so
// a gob snapshot travels as fixed-width base64 lines that any
// line-based client (and the Router) can carry without special
// framing.
const snapshotLineLen = 4096

// WriteSnapshotLines writes s's gob snapshot to w as base64 lines —
// the payload of the merakid "snapshot" query. The store is encoded
// under its stripe locks (Store.Save), so the lines are a consistent
// point-in-time view even on a live daemon.
func WriteSnapshotLines(w io.Writer, s *backend.Store) error {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return err
	}
	enc := base64.StdEncoding.EncodeToString(buf.Bytes())
	for len(enc) > 0 {
		n := snapshotLineLen
		if n > len(enc) {
			n = len(enc)
		}
		if _, err := fmt.Fprintln(w, enc[:n]); err != nil {
			return err
		}
		enc = enc[n:]
	}
	return nil
}

// DecodeSnapshotBytes reverses WriteSnapshotLines: it joins the base64
// lines of one shard's snapshot response back into the raw gob stream.
// The byte form is what a durable absorb logs to the WAL before
// applying.
func DecodeSnapshotBytes(lines []string) ([]byte, error) {
	raw, err := base64.StdEncoding.DecodeString(strings.Join(lines, ""))
	if err != nil {
		return nil, fmt.Errorf("cluster: corrupt snapshot response: %v", err)
	}
	return raw, nil
}

// DecodeSnapshotLines is DecodeSnapshotBytes as a reader — the form
// Store.MergeSnapshot and Store.Load take.
func DecodeSnapshotLines(lines []string) (io.Reader, error) {
	raw, err := DecodeSnapshotBytes(lines)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(raw), nil
}
