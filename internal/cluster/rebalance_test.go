package cluster

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

// startFleet serves the old stores plus `extra` fresh empty stores on
// loopback listeners. The new topology reuses the old shards'
// addresses for their slots and appends the extras — the grow-in-place
// deployment the rebalance coordinator is built for.
func startFleet(t *testing.T, oldStores []*backend.Store, extra int) (oldAddrs, newAddrs []string, newStores []*backend.Store) {
	t.Helper()
	newStores = append(newStores, oldStores...)
	for i := 0; i < extra; i++ {
		newStores = append(newStores, backend.NewStore())
	}
	for i, s := range newStores {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		serveStore(ln, i, s)
		newAddrs = append(newAddrs, ln.Addr().String())
	}
	return newAddrs[:len(oldStores)], newAddrs, newStores
}

func rebalanceOpts(token string) RebalanceOptions {
	return RebalanceOptions{
		Token:       token,
		Timeout:     5 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// TestRebalanceDigestEquivalence is the issue's proof obligation, run
// over 10 seeds: grow a harvesting 2-shard cluster to 3 shards with a
// live rebalance — while non-moved networks keep ingesting — and the
// merged digest over the new topology must be byte-identical to a
// single store fed the same reports. Moved networks must be gone from
// their sources, and a re-run with the same token must find nothing
// left to move.
func TestRebalanceDigestEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const networks = 12
			streams := clusterReports(seed, networks)
			control := backend.NewStore()
			for _, st := range streams {
				for _, r := range st.Reports {
					control.Ingest(r)
				}
			}
			oldStores := shardStores(2, streams)
			oldAddrs, newAddrs, newStores := startFleet(t, oldStores, 1)

			// The harvest keeps running: every network that keeps its home
			// takes a second wave of reports concurrently with the
			// rebalance. (Moved networks would be parted on a real daemon;
			// the in-process stores here have no ack path to refuse.)
			oldMap, newMap := NewMap(2), NewMap(3)
			src := rng.New(seed).Split("rebalance-wave")
			type ingest struct {
				s *backend.Store
				r []int // stream indexes
			}
			var wave []ingest
			for i, st := range streams {
				if oldMap.Shard(st.NetID) == newMap.Shard(st.NetID) {
					wave = append(wave, ingest{s: newStores[newMap.Shard(st.NetID)], r: []int{i}})
				}
			}
			if len(wave) == 0 {
				t.Fatalf("seed %d moved every network; pick seeds where some stay", seed)
			}
			// One goroutine per stream, ingesting in seq order: an AP's
			// reports arrive over one tunnel, so seqnos are in order per
			// serial — out-of-order delivery would (correctly) be eaten
			// by the watermark dedup.
			var wg sync.WaitGroup
			for _, in := range wave {
				for _, i := range in.r {
					st := streams[i]
					var batch []*telemetry.Report
					for seq := uint64(9); seq <= 12; seq++ {
						r := clusterReport(st.NetID, int(st.Serial[len(st.Serial)-1]-'0'), seq, src)
						control.Ingest(r)
						batch = append(batch, r)
					}
					wg.Add(1)
					go func(s *backend.Store, batch []*telemetry.Report) {
						defer wg.Done()
						for _, r := range batch {
							s.Ingest(r)
						}
					}(in.s, batch)
				}
			}

			rep, err := Rebalance(oldAddrs, newAddrs, rebalanceOpts(fmt.Sprintf("t%d", seed)))
			wg.Wait()
			if err != nil {
				t.Fatalf("rebalance: %v", err)
			}
			if rep.MovedNetworks == 0 {
				t.Fatal("2->3 rebalance moved nothing")
			}
			moved := make(map[uint64]bool)
			for _, tr := range rep.Transfers {
				if tr.Dst != 2 {
					t.Fatalf("jump hash growth moved a network to old shard %d", tr.Dst)
				}
				for _, id := range tr.Networks {
					moved[id] = true
				}
			}

			// Moved networks are gone from their sources...
			for i, s := range oldStores {
				for _, id := range s.Networks(backend.NetworkOfSerial) {
					if moved[id] {
						t.Fatalf("moved network %d still on source shard %d", id, i)
					}
				}
			}
			// ...and the whole cluster still equals the control.
			newR := &Router{Shards: newAddrs, Timeout: 5 * time.Second}
			dig, err := newR.MergedDigest()
			if err != nil {
				t.Fatal(err)
			}
			if dig.Digest != control.Digest() {
				t.Fatalf("seed %d: rebalanced cluster digest %s != control %s", seed, dig.Digest, control.Digest())
			}

			// Same token, same topology: the re-run (the crash-recovery
			// invocation) finds every network already home.
			rep2, err := Rebalance(newAddrs, newAddrs, rebalanceOpts(fmt.Sprintf("t%d", seed)))
			if err != nil {
				t.Fatalf("re-run: %v", err)
			}
			if rep2.MovedNetworks != 0 {
				t.Fatalf("re-run moved %d networks, want 0", rep2.MovedNetworks)
			}
		})
	}
}

// TestRebalanceVerifyGateRollsBack forces the verify gate to fail —
// the destination claims the pair tokens were already absorbed, so the
// slices never land — and checks the coordinator rolls everything
// back: no data lost on sources, nothing parted, no stray token state,
// and a re-run with a fresh token succeeds.
func TestRebalanceVerifyGateRollsBack(t *testing.T) {
	streams := clusterReports(99, 10)
	control := backend.NewStore()
	for _, st := range streams {
		for _, r := range st.Reports {
			control.Ingest(r)
		}
	}
	oldStores := shardStores(2, streams)
	oldAddrs, newAddrs, newStores := startFleet(t, oldStores, 1)

	// Poison the destination: pre-mark both pair tokens so every absorb
	// dedups into a no-op and the moved slice never arrives.
	const token = "poisoned"
	newStores[2].MarkAbsorbed(token + ".s0d2")
	newStores[2].MarkAbsorbed(token + ".s1d2")

	_, err := Rebalance(oldAddrs, newAddrs, rebalanceOpts(token))
	if err == nil {
		t.Fatal("verify gate passed with an empty destination")
	}
	if !strings.Contains(err.Error(), "verify gate failed") {
		t.Fatalf("error %v, want the verify-gate failure", err)
	}

	// Rollback proof: the old topology still holds everything, nothing
	// is parted, and the poisoned tokens were cleared by the rollback
	// drop (drop forgets the token — that is what lets a retry work).
	oldR := &Router{Shards: oldAddrs, Timeout: 5 * time.Second}
	dig, err := oldR.MergedDigest()
	if err != nil {
		t.Fatal(err)
	}
	if dig.Digest != control.Digest() {
		t.Fatal("rollback lost data: old topology no longer matches control")
	}
	for i, s := range oldStores {
		if parted := s.PartedIDs(); len(parted) != 0 {
			t.Fatalf("source shard %d still parted after rollback: %v", i, parted)
		}
	}
	if n := newStores[2].AbsorbedCount(); n != 0 {
		t.Fatalf("destination still holds %d absorb tokens after rollback", n)
	}

	// A fresh token — the documented recovery — succeeds end to end.
	rep, err := Rebalance(oldAddrs, newAddrs, rebalanceOpts("fresh"))
	if err != nil {
		t.Fatalf("fresh-token rebalance: %v", err)
	}
	if rep.MovedNetworks == 0 {
		t.Fatal("fresh-token rebalance moved nothing")
	}
	newR := &Router{Shards: newAddrs, Timeout: 5 * time.Second}
	dig, err = newR.MergedDigest()
	if err != nil {
		t.Fatal(err)
	}
	if dig.Digest != control.Digest() {
		t.Fatal("fresh-token rebalance digest != control")
	}
}

// TestRebalanceNeedsEveryShard pins discovery's all-shards rule: a
// rebalance that cannot enumerate one shard's networks must refuse to
// plan (it would silently strand them), not proceed degraded.
func TestRebalanceNeedsEveryShard(t *testing.T) {
	streams := clusterReports(7, 6)
	oldStores := shardStores(2, streams)
	oldAddrs, newAddrs, _ := startFleet(t, oldStores, 1)
	down, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	downAddr := down.Addr().String()
	down.Close()
	brokenOld := []string{oldAddrs[0], downAddr}
	o := rebalanceOpts("t")
	o.Retries = -1
	o.Timeout = 500 * time.Millisecond
	if _, err := Rebalance(brokenOld, newAddrs, o); err == nil {
		t.Fatal("rebalance planned around an unreachable source shard")
	} else if !strings.Contains(err.Error(), "discovery") {
		t.Fatalf("error %v, want a discovery failure", err)
	}
}

// TestParseIDList covers the daemon-side operand parser.
func TestParseIDList(t *testing.T) {
	ids, err := ParseIDList("3,17, 101")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 17 || ids[2] != 101 {
		t.Fatalf("ParseIDList = %v", ids)
	}
	for _, bad := range []string{"", "1,,2", "1,x"} {
		if _, err := ParseIDList(bad); err == nil {
			t.Fatalf("ParseIDList(%q) accepted", bad)
		}
	}
	if got := idList([]uint64{3, 17, 101}); got != "3,17,101" {
		t.Fatalf("idList = %q", got)
	}
}
