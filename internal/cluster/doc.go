// Package cluster shards the backend across a fleet of merakid
// processes and merges their answers back together.
//
// The paper's analysis tier ingests telemetry from hundreds of
// thousands of APs; one collector process tops out at one machine's
// cores and disks. This package supplies the two halves of horizontal
// scale-out:
//
// Map is the deterministic shard map: consistent hashing (splitmix64
// premix + jump hash) of network IDs over N shards. Every party — the
// agents routing their reports, the daemons owning disjoint network
// slices, the router merging answers — computes the same assignment
// from the pair (networkID, N) with zero coordination, the same trick
// the seeded RNG tree uses to keep the parallel pipeline deterministic.
// Jump hash makes resharding cheap: growing N to N+1 moves only
// ~1/(N+1) of the networks (see OPERATIONS.md for the rebalance
// runbook).
//
// Router is the scatter-gather coordinator: it fans a query across
// every shard's query port concurrently, with a per-shard deadline and
// jittered capped retries, and degrades gracefully — a down shard
// yields a per-shard error while the others' data still comes back,
// flagged Degraded so the caller knows the answer is partial.
// MergedStore/MergedDigest pull each live shard's gob snapshot and
// fold them through backend.Store.Merge; because shards own disjoint
// networks (hence disjoint serials and client MACs), the merged digest
// of a healthy cluster is byte-identical to the digest a single
// daemon fed the same reports would produce — the equivalence the
// cluster tests and `make cluster-smoke` pin across seeds and wire
// versions.
package cluster
