package cluster

import "fmt"

// Map is the deterministic shard map: it assigns every network ID to
// one of Shards shards. The zero value is invalid; use NewMap.
//
// Assignment is consistent hashing in the jump-hash form: the network
// ID is first mixed through the splitmix64 finalizer (IDs are small
// contiguous integers, exactly the worst case for a bare modulus) and
// the mixed key walks Lamping & Veach's jump sequence. Two properties
// matter here:
//
//   - Determinism with zero coordination: agents, daemons, and routers
//     each compute Shard(id) locally and always agree, the same
//     contract the seeded RNG tree gives the parallel pipeline.
//   - Minimal movement on reshard: growing from N to N+1 shards moves
//     only ~1/(N+1) of the networks, so a rebalance re-harvests a
//     slice of the fleet, not all of it (TestMapConsistency pins the
//     bound).
type Map struct {
	// Shards is the cluster size; always >= 1.
	Shards int
}

// NewMap returns a shard map over n shards; n < 1 is clamped to 1 (a
// single-daemon deployment is a 1-shard cluster).
func NewMap(n int) Map {
	if n < 1 {
		n = 1
	}
	return Map{Shards: n}
}

// Shard returns the shard index in [0, m.Shards) owning network id.
func (m Map) Shard(id uint64) int {
	n := m.Shards
	if n <= 1 {
		return 0
	}
	return jump(mix64(id), n)
}

// Addr routes a network to its shard's address: addrs is indexed by
// shard, so len(addrs) must equal Shards.
func (m Map) Addr(id uint64, addrs []string) (string, error) {
	if len(addrs) != m.Shards {
		return "", fmt.Errorf("cluster: %d addrs for %d shards", len(addrs), m.Shards)
	}
	return addrs[m.Shard(id)], nil
}

// mix64 is the splitmix64 finalizer — the same bijection the backend
// store uses to spread MACs across lock stripes. Contiguous network
// IDs differ only in their low bits; the premix turns them into
// uniform 64-bit keys before the jump walk.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// jump is Lamping & Veach's jump consistent hash: O(log n), no state,
// and growing n moves the minimum possible share of keys.
func jump(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
