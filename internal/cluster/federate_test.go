package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/obs"
)

// servePromShard runs a minimal query server over ln answering "prom"
// and "series" from a registry — the federation subset of merakid's
// line protocol.
func servePromShard(ln net.Listener, reg *obs.Registry) {
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				w := bufio.NewWriter(c)
				for sc.Scan() {
					fields := strings.Fields(sc.Text())
					if len(fields) == 0 {
						continue
					}
					switch fields[0] {
					case "prom":
						reg.WriteProm(w)
					case "series":
						fmt.Fprintln(w, "t=1000 v=1.000")
						fmt.Fprintln(w, "t=2000 v=2.000")
					case "quit":
						w.Flush()
						return
					default:
						fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
					}
					fmt.Fprintln(w)
					w.Flush()
				}
			}(conn)
		}
	}()
}

// startPromShards serves one registry per shard and returns the router
// plus listeners (close one to take its shard down).
func startPromShards(t *testing.T, regs []*obs.Registry) (*Router, []net.Listener) {
	t.Helper()
	lns := make([]net.Listener, len(regs))
	addrs := make([]string, len(regs))
	for i, reg := range regs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		servePromShard(ln, reg)
	}
	t.Cleanup(func() {
		for _, ln := range lns {
			ln.Close()
		}
	})
	return &Router{Shards: addrs, Timeout: 5 * time.Second}, lns
}

// TestFanoutMetricsMergesShards: N shards scrape into one exposition,
// every sample labeled with its shard, TYPE emitted once per family.
func TestFanoutMetricsMergesShards(t *testing.T) {
	regs := make([]*obs.Registry, 3)
	for i := range regs {
		regs[i] = obs.NewRegistry()
		regs[i].Counter("store.ingests").Add(int64(10 * (i + 1)))
		regs[i].Gauge("pool.devices").Set(int64(i))
	}
	r, _ := startPromShards(t, regs)

	merged, replies := r.FanoutMetrics()
	if NumDown(replies) != 0 {
		t.Fatalf("healthy fleet reports down shards: %v", DownShards(replies))
	}
	lines := strings.Split(strings.TrimSpace(merged), "\n")

	var typeLines []string
	counts := make(map[string]int)
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			typeLines = append(typeLines, ln)
			continue
		}
		name, _, _ := strings.Cut(ln, "{")
		counts[name]++
	}
	// TYPE once per family, not once per shard per family.
	seenType := make(map[string]bool)
	for _, tl := range typeLines {
		if seenType[tl] {
			t.Errorf("duplicate TYPE line %q", tl)
		}
		seenType[tl] = true
	}
	if !seenType["# TYPE store_ingests counter"] {
		t.Errorf("missing counter TYPE line; got %v", typeLines)
	}
	if counts["store_ingests"] != 3 || counts["pool_devices"] != 3 {
		t.Fatalf("sample counts per family = %v, want 3 each", counts)
	}
	// Every shard's sample appears with its own label and value.
	for i := range regs {
		want := fmt.Sprintf(`store_ingests{shard="%d"} %d`, i, 10*(i+1))
		if !strings.Contains(merged, want) {
			t.Errorf("merged output missing %q:\n%s", want, merged)
		}
	}
}

// TestFanoutMetricsHistogramLabels: bucket samples already carry an le
// label; shard must be injected alongside it, and the series must stay
// parseable.
func TestFanoutMetricsHistogramLabels(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("flush_us", []int64{10, 100}).Observe(50)
	r, _ := startPromShards(t, []*obs.Registry{reg})

	merged, _ := r.FanoutMetrics()
	for _, want := range []string{
		`flush_us_bucket{shard="0",le="10"} 0`,
		`flush_us_bucket{shard="0",le="100"} 1`,
		`flush_us_bucket{shard="0",le="+Inf"} 1`,
		`flush_us_sum{shard="0"} 50`,
		`flush_us_count{shard="0"} 1`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged output missing %q:\n%s", want, merged)
		}
	}
}

// TestFanoutMetricsPartialOnShardDown: a dead shard costs its samples,
// not the scrape — the other shards' samples still merge and the
// replies record which shard is down.
func TestFanoutMetricsPartialOnShardDown(t *testing.T) {
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	for i, reg := range regs {
		reg.Counter("store.ingests").Add(int64(i + 1))
	}
	r, lns := startPromShards(t, regs)
	lns[1].Close()
	r.Timeout = 500 * time.Millisecond

	merged, replies := r.FanoutMetrics()
	if NumDown(replies) != 1 || len(DownShards(replies)) != 1 || DownShards(replies)[0] != 1 {
		t.Fatalf("down accounting = %d/%v, want shard 1 down", NumDown(replies), DownShards(replies))
	}
	if !strings.Contains(merged, `store_ingests{shard="0"} 1`) {
		t.Errorf("surviving shard's sample missing:\n%s", merged)
	}
	if strings.Contains(merged, `shard="1"`) {
		t.Errorf("dead shard contributed samples:\n%s", merged)
	}
}

// TestMergePromSkipsErrReplies: a shard that answers an ERR line (e.g.
// an older build without the prom query) contributes nothing.
func TestMergePromSkipsErrReplies(t *testing.T) {
	merged := MergeProm([]Reply{
		{Shard: 0, Lines: []string{"# TYPE up gauge", "up 1"}},
		{Shard: 1, Lines: []string{`ERR unknown command "prom"`}},
	})
	if !strings.Contains(merged, `up{shard="0"} 1`) {
		t.Errorf("healthy shard's sample missing:\n%s", merged)
	}
	if strings.Contains(merged, "ERR") || strings.Contains(merged, `shard="1"`) {
		t.Errorf("ERR reply leaked into the merge:\n%s", merged)
	}
}

// TestMergePromUntypedFallback: samples arriving before any TYPE line
// (an older shard build) still merge, grouped by sample name and
// marked untyped.
func TestMergePromUntypedFallback(t *testing.T) {
	merged := MergeProm([]Reply{
		{Shard: 0, Lines: []string{"up 1", "reqs_total 5"}},
	})
	for _, want := range []string{
		"# TYPE up untyped",
		`up{shard="0"} 1`,
		"# TYPE reqs_total untyped",
		`reqs_total{shard="0"} 5`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged output missing %q:\n%s", want, merged)
		}
	}
}

// TestFanoutSeriesAndMerge: FanoutSeries gathers one metric's history
// per shard; MergeSeriesLines tags points by shard and renders dead
// shards as DOWN lines.
func TestFanoutSeriesAndMerge(t *testing.T) {
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	r, lns := startPromShards(t, regs)
	lns[1].Close()
	r.Timeout = 500 * time.Millisecond

	lines := MergeSeriesLines(r.FanoutSeries("store.ingests", 2))
	var up, down int
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "shard=0 t="):
			up++
		case strings.HasPrefix(ln, "shard=1 DOWN:"):
			down++
		default:
			t.Errorf("unexpected merged line %q", ln)
		}
	}
	if up != 2 || down != 1 {
		t.Fatalf("merged lines = %v, want 2 shard-0 points and 1 DOWN line", lines)
	}
}
