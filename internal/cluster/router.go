package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/obs"
	"wlanscale/internal/rng"
)

// Router is the scatter-gather coordinator: it owns the query
// addresses of every shard in a cluster and fans commands across them
// concurrently. Each shard gets its own dial+response deadline and its
// own jittered retry budget, so one slow or dead shard delays a fanout
// by at most Timeout×attempts and never sinks it: the other shards'
// answers come back regardless, marked degraded.
//
// A Router is stateless between calls (every fanout dials fresh
// connections) and safe for concurrent use.
type Router struct {
	// Shards holds each shard's query address, indexed by shard ID —
	// the same indexing Map.Shard produces.
	Shards []string
	// Timeout bounds one attempt against one shard: dial plus the full
	// response read. Zero defaults to 5s.
	Timeout time.Duration
	// Retries is how many times a failed shard query is re-attempted
	// (so attempts = Retries+1). Zero defaults to 2; negative disables
	// retries.
	Retries int
	// BackoffBase and BackoffMax tune the between-attempt backoff;
	// zero values default to 50ms and 1s. Each wait is scaled by a
	// jitter factor in [0.5, 1.5) drawn from a per-shard seeded stream,
	// so a fanout retrying several shards does not hammer them in
	// lockstep.
	BackoffBase, BackoffMax time.Duration

	// metrics, when EnableObs attached a registry. All nil-safe.
	fanouts   *obs.Counter
	retries   *obs.Counter
	degraded  *obs.Counter
	shardErrs []*obs.Counter
	fanoutDur *obs.Histogram
}

// Reply is one shard's answer to a fanout: the response lines on
// success, or the error that exhausted the shard's retry budget.
type Reply struct {
	Shard int
	Addr  string
	Lines []string
	Err   error
	// Attempts is how many times the shard was dialed (1 = first try
	// succeeded).
	Attempts int
}

// Digest is a cluster-wide merged digest. When Degraded is true the
// digest covers only the live shards (Down lists the dead ones) — a
// partial answer by design, so an operator mid-outage still sees what
// the surviving slice of the fleet holds.
type Digest struct {
	Digest   string
	Shards   int
	Down     []int
	Degraded bool
}

// EnableObs folds the router's counters into reg: "cluster.fanouts",
// "cluster.retries", "cluster.degraded" (fanouts that lost at least
// one shard), a "cluster.fanout_us" duration histogram, and one
// "cluster.shard.NN.errors" counter per shard — the per-shard health
// signal; a climbing counter on one index means that shard, not the
// fabric. Observe-only, like everything in obs.
func (r *Router) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.fanouts = reg.Counter("cluster.fanouts")
	r.retries = reg.Counter("cluster.retries")
	r.degraded = reg.Counter("cluster.degraded")
	r.fanoutDur = reg.Histogram("cluster.fanout_us", obs.DurationBuckets)
	r.shardErrs = make([]*obs.Counter, len(r.Shards))
	for i := range r.Shards {
		r.shardErrs[i] = reg.Counter(obs.Indexed("cluster.shard", i, "errors"))
	}
}

func (r *Router) timeout() time.Duration {
	if r.Timeout <= 0 {
		return 5 * time.Second
	}
	return r.Timeout
}

func (r *Router) attempts() int {
	switch {
	case r.Retries < 0:
		return 1
	case r.Retries == 0:
		return 3
	default:
		return r.Retries + 1
	}
}

// Fanout sends cmd to every shard concurrently and returns one Reply
// per shard, indexed by shard ID. It never returns an error itself:
// per-shard failures live in the replies, so a caller decides whether
// a partial answer is acceptable (NumDown counts the casualties).
func (r *Router) Fanout(cmd string) []Reply {
	r.fanouts.Inc()
	sp := obs.StartSpan(r.fanoutDur)
	defer sp.End()
	replies := make([]Reply, len(r.Shards))
	var wg sync.WaitGroup
	for i := range r.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = r.queryShard(i, cmd)
		}(i)
	}
	wg.Wait()
	if NumDown(replies) > 0 {
		r.degraded.Inc()
	}
	return replies
}

// NumDown counts replies that exhausted their retries.
func NumDown(replies []Reply) int {
	n := 0
	for _, rep := range replies {
		if rep.Err != nil {
			n++
		}
	}
	return n
}

// DownShards lists the shard IDs that failed, in order.
func DownShards(replies []Reply) []int {
	var down []int
	for _, rep := range replies {
		if rep.Err != nil {
			down = append(down, rep.Shard)
		}
	}
	return down
}

// retrySchedule returns the waits between a shard's attempts (length
// attempts-1): capped exponential backoff from base, each wait scaled
// by a jitter factor in [0.5, 1.5) drawn from a stream seeded per
// (shard, address). The schedule is a pure function of those inputs —
// deterministic for a given deployment yet staggered across shards —
// which the retry-determinism test pins.
func retrySchedule(shard int, addr string, base, max time.Duration, attempts int) []time.Duration {
	if attempts <= 1 {
		return nil
	}
	jitter := rng.New(uint64(shard)).Split("cluster-retry/" + addr)
	waits := make([]time.Duration, 0, attempts-1)
	backoff := base
	for a := 1; a < attempts; a++ {
		waits = append(waits, time.Duration(float64(backoff)*(0.5+jitter.Float64())))
		if backoff < max {
			backoff *= 2
			if backoff > max {
				backoff = max
			}
		}
	}
	return waits
}

// shardErr bumps a shard's error counter. The counter slice was sized
// when EnableObs ran; a Router whose Shards slice has since been
// replaced with a longer one (the rebalance coordinator retargets
// routers) must degrade to not counting, not index out of range.
func (r *Router) shardErr(i int) {
	if i < len(r.shardErrs) {
		r.shardErrs[i].Inc()
	}
}

// queryShard runs one shard's retry loop: dial, send cmd, read the
// blank-line-terminated response, with the jittered capped backoff of
// retrySchedule between attempts.
func (r *Router) queryShard(i int, cmd string) Reply {
	rep := Reply{Shard: i, Addr: r.Shards[i]}
	base := r.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := r.BackoffMax
	if max <= 0 {
		max = time.Second
	}
	waits := retrySchedule(i, rep.Addr, base, max, r.attempts())
	for attempt := 0; attempt < r.attempts(); attempt++ {
		if attempt > 0 {
			r.retries.Inc()
			time.Sleep(waits[attempt-1])
		}
		rep.Attempts++
		lines, err := queryOnce(rep.Addr, cmd, r.timeout())
		if err == nil {
			rep.Lines, rep.Err = lines, nil
			return rep
		}
		rep.Err = err
		r.shardErr(i)
	}
	return rep
}

// ErrTruncated marks a shard response whose connection closed before
// the blank-line terminator arrived: the lines read so far may be a
// prefix of the real answer, so they must be thrown away and the
// attempt retried, never merged. (A snapshot missing its tail would
// otherwise fold into a merged digest as if the shard held less data —
// the silent-loss mode the rebalance verify gate exists to rule out.)
var ErrTruncated = errors.New("cluster: truncated response (connection closed before terminator)")

// queryOnce is one attempt of the line protocol merakid's query port
// speaks: send the command plus "quit", read lines until the blank
// terminator. The deadline covers the whole exchange. A response
// without its terminator — clean EOF included — is an error, not a
// short answer.
func queryOnce(addr, cmd string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\nquit\n", cmd); err != nil {
		return nil, err
	}
	var lines []string
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		ln := sc.Text()
		if ln == "" {
			return lines, nil
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w after %d lines from %s", ErrTruncated, len(lines), addr)
}

// errAllDown is returned when no shard answered a merge.
var errAllDown = errors.New("cluster: every shard is down")

// MergedStore fetches each live shard's snapshot and folds them into
// one store, merging in shard-index order so the result is
// deterministic regardless of which fetch finished first. The replies
// are returned alongside so callers can see which shards contributed;
// an error is returned only when not a single shard answered.
func (r *Router) MergedStore() (*backend.Store, []Reply, error) {
	replies := r.Fanout("snapshot")
	merged := backend.NewStore()
	up := 0
	for i := range replies {
		rep := &replies[i]
		if rep.Err != nil {
			continue
		}
		if len(rep.Lines) > 0 && strings.HasPrefix(rep.Lines[0], "ERR") {
			rep.Err = fmt.Errorf("cluster: shard %d: %s", rep.Shard, rep.Lines[0])
			continue
		}
		raw, err := DecodeSnapshotLines(rep.Lines)
		if err != nil {
			rep.Err = err
			continue
		}
		if err := merged.MergeSnapshot(raw); err != nil {
			rep.Err = err
			continue
		}
		up++
	}
	if up == 0 {
		return nil, replies, errAllDown
	}
	return merged, replies, nil
}

// MergedDigest is the cluster-wide analogue of the merakid "digest"
// query: the canonical SHA-256 of every live shard's contents merged.
// On a healthy cluster whose agents route by the shard map, the result
// is byte-identical to the digest a single daemon fed the same reports
// would serve — the equivalence `make cluster-smoke` and the cluster
// tests pin. With shards down the digest still comes back, flagged
// Degraded, covering the surviving shards only.
func (r *Router) MergedDigest() (Digest, error) {
	merged, replies, err := r.MergedStore()
	if err != nil {
		return Digest{Shards: len(r.Shards), Down: DownShards(replies), Degraded: true}, err
	}
	return Digest{
		Digest:   merged.Digest(),
		Shards:   len(r.Shards),
		Down:     DownShards(replies),
		Degraded: NumDown(replies) > 0,
	}, nil
}
