package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

// apStream is one AP's deterministic report stream, tagged with the
// network it belongs to — the unit the shard map routes.
type apStream struct {
	NetID   uint64
	Serial  string
	Reports []*telemetry.Report
}

// clusterReports builds the seed's fleet: `networks` networks of two
// APs each, eight reports per AP, with seed-varied RSSI, airtime, and
// app counters. Client MACs embed the network ID so networks own
// disjoint client populations, mirroring how synth allocates serial
// blocks — the property that makes shard merges collision-free.
func clusterReports(seed uint64, networks int) []apStream {
	src := rng.New(seed).Split("cluster-equiv")
	var out []apStream
	for n := 0; n < networks; n++ {
		netID := uint64(100 + n)
		for ap := 0; ap < 2; ap++ {
			st := apStream{
				NetID:  netID,
				Serial: fmt.Sprintf("Q2CL-%03d-%d", netID, ap),
			}
			for seq := uint64(1); seq <= 8; seq++ {
				st.Reports = append(st.Reports, clusterReport(netID, ap, seq, src))
			}
			out = append(out, st)
		}
	}
	return out
}

// clusterReport is one AP report in the equivalence fleet.
func clusterReport(netID uint64, ap int, seq uint64, src *rng.Source) *telemetry.Report {
	r := &telemetry.Report{
		Serial:    fmt.Sprintf("Q2CL-%03d-%d", netID, ap),
		Timestamp: seq*300 + src.Uint64()%120,
		SeqNo:     seq,
		Radios: []telemetry.RadioStats{
			{Band: dot11.Band24, Channel: 6, WidthMHz: 20, CycleUS: 300e6,
				RxClearUS: 70e6 + src.Uint64()%1e7, Rx11US: 35e6, TxUS: 18e6},
			{Band: dot11.Band5, Channel: 36 + 4*ap, WidthMHz: 40, CycleUS: 300e6,
				RxClearUS: 25e6 + src.Uint64()%1e7, Rx11US: 12e6, TxUS: 8e6},
		},
	}
	for c := 0; c < 5; c++ {
		cl := telemetry.ClientRecord{
			MAC:    dot11.MAC{0xf0, byte(netID >> 8), byte(netID), byte(ap), byte(c), 0x01},
			Band:   dot11.Band24,
			RSSIdB: int32(10 + src.IntN(40)),
			Caps:   dot11.Capabilities{G: true, N: true, FiveGHz: c%2 == 0, Streams: 1 + c%2},
			UserAgents: []string{
				fmt.Sprintf("AppClient/%d.0", c%3),
			},
			DHCPFingerprints: [][]byte{{0x01, 0x03, 0x06, byte(c % 3)}},
		}
		for a, app := range []string{"Netflix", "YouTube", "HTTP"} {
			cl.Apps = append(cl.Apps, telemetry.AppUsageRecord{
				App:       app,
				UpBytes:   1e3 + src.Uint64()%1e4,
				DownBytes: 1e5 + src.Uint64()%1e6,
				Flows:     uint32(1 + a),
			})
		}
		r.Clients = append(r.Clients, cl)
	}
	for nb := 0; nb < 3; nb++ {
		r.Neighbors = append(r.Neighbors, telemetry.NeighborRecord{
			BSSID:   dot11.BSSID{0, 0x18, byte(netID), byte(ap), byte(nb), 9},
			SSID:    fmt.Sprintf("neighbor-%d", nb),
			Band:    dot11.Band24,
			Channel: 1 + 5*nb,
			RSSIdB:  -int32(35 + src.IntN(50)),
			Vendor:  "Cisco",
		})
	}
	r.LinkWindows = append(r.LinkWindows, telemetry.LinkWindow{
		Peer: dot11.MAC{0, 0x18, byte(netID), byte(ap), 0, 8}, Band: dot11.Band5,
		Sent: 200 + uint32(seq), Delivered: 190 + uint32(seq),
	})
	for s := 0; s < 2; s++ {
		r.ScanSamples = append(r.ScanSamples, telemetry.ScanSample{
			Band: dot11.Band5, Channel: 36 + 4*s,
			BusyPermille: 100 + uint32(src.IntN(200)), DecodablePermille: 80,
		})
	}
	if seq == 3 {
		r.Crashes = append(r.Crashes, telemetry.CrashRecord{
			Timestamp: r.Timestamp, Kind: 2, Firmware: "wlc-7.4",
			PC: 0x4000_0000 + netID, FreeKB: 512, NeighborCount: 3,
		})
	}
	return r
}

// shardStores ingests the streams directly into n per-shard stores,
// routed by the shard map — the cheap way router tests get populated,
// correctly partitioned shards without a harvest.
func shardStores(n int, streams []apStream) []*backend.Store {
	m := NewMap(n)
	stores := make([]*backend.Store, n)
	for i := range stores {
		stores[i] = backend.NewStore()
	}
	for _, st := range streams {
		s := stores[m.Shard(st.NetID)]
		for _, r := range st.Reports {
			s.Ingest(r)
		}
	}
	return stores
}

// harvestInto runs one AP's stream through the real agent/poller
// harvest over net.Pipe at the given wire version, ingesting into s —
// so the equivalence proof covers the wire codec, not just Ingest.
func harvestInto(t *testing.T, s *backend.Store, wire byte, st apStream) {
	t.Helper()
	key := make([]byte, 32)
	agent := telemetry.NewAgent(st.Serial, key)
	agent.Wire = wire
	for _, r := range st.Reports {
		agent.Enqueue(r)
	}
	c1, c2 := net.Pipe()
	go agent.ServeConn(c1)
	p, err := telemetry.AcceptPoller(c2, key)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer p.Close()
	if got := p.NegotiateWire(wire); got != wire {
		t.Fatalf("negotiated wire %d, want %d", got, wire)
	}
	p.BeforeAck = func(rs []*telemetry.Report, _ [][]byte) error {
		for _, r := range rs {
			s.Ingest(r)
		}
		return nil
	}
	for got := 0; got < len(st.Reports); {
		rs, err := p.Poll(5)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if len(rs) == 0 {
			t.Fatalf("harvest stalled at %d/%d", got, len(st.Reports))
		}
		got += len(rs)
	}
}

// TestClusterDigestEquivalence is the acceptance proof for sharding:
// over ten seeds and both wire versions, a 4-shard cluster — every AP
// harvested into the shard its network hashes to, then merged by the
// router's scatter-gather — lands on a digest byte-identical to a
// single daemon that harvested the whole fleet. Sharding may change
// where reports live, never what the cluster as a whole holds.
func TestClusterDigestEquivalence(t *testing.T) {
	const shards = 4
	for seed := uint64(1); seed <= 10; seed++ {
		for _, wire := range []byte{telemetry.WireV1, telemetry.WireV2} {
			streams := clusterReports(seed, 6)

			control := backend.NewStore()
			for _, st := range streams {
				harvestInto(t, control, wire, st)
			}

			m := NewMap(shards)
			stores := make([]*backend.Store, shards)
			for i := range stores {
				stores[i] = backend.NewStore()
			}
			for _, st := range streams {
				harvestInto(t, stores[m.Shard(st.NetID)], wire, st)
			}

			r, _ := startShards(t, stores)
			r.Timeout = 10 * time.Second
			dig, err := r.MergedDigest()
			if err != nil {
				t.Fatalf("seed %d wire %d: merged digest: %v", seed, wire, err)
			}
			if dig.Degraded || len(dig.Down) != 0 {
				t.Fatalf("seed %d wire %d: healthy cluster degraded: %+v", seed, wire, dig)
			}
			if want := control.Digest(); dig.Digest != want {
				t.Errorf("seed %d wire %d: cluster digest %s != single-daemon digest %s",
					seed, wire, dig.Digest, want)
			}
		}
	}
}
