package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/backend"
	"wlanscale/internal/faultnet"
	"wlanscale/internal/obs"
)

// serveStore runs a minimal shard query server over ln: the subset of
// merakid's line protocol the router and the rebalance coordinator
// speak (status, digest, snapshot, the migration commands, quit, ERR
// for the rest). It stops when ln closes.
func serveStore(ln net.Listener, shard int, s *backend.Store) {
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				sc.Buffer(make([]byte, 64<<10), 1<<20)
				w := bufio.NewWriter(c)
				for sc.Scan() {
					fields := strings.Fields(sc.Text())
					if len(fields) == 0 {
						continue
					}
					switch fields[0] {
					case "status":
						ing, dup := s.Stats()
						fmt.Fprintf(w, "shard %d\n", shard)
						fmt.Fprintf(w, "ingested=%d duplicates=%d clients=%d\n", ing, dup, s.NumClients())
					case "digest":
						fmt.Fprintln(w, s.Digest())
					case "snapshot":
						if err := WriteSnapshotLines(w, s); err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
						}
					case "networks":
						for _, id := range s.Networks(backend.NetworkOfSerial) {
							fmt.Fprintf(w, "%d\n", id)
						}
					case "extract":
						ids, err := ParseIDList(fields[1])
						if err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
							break
						}
						slice := s.ExtractNetworks(backend.IDSet(ids), backend.NetworkOfSerial)
						if err := WriteSnapshotLines(w, slice); err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
						}
					case "part", "unpart":
						ids, err := ParseIDList(fields[1])
						if err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
							break
						}
						if fields[0] == "part" {
							s.Part(ids)
							fmt.Fprintf(w, "parted n=%d\n", len(ids))
						} else {
							s.Unpart(ids)
							fmt.Fprintf(w, "unparted n=%d\n", len(ids))
						}
					case "drop":
						ids, err := ParseIDList(fields[2])
						if err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
							break
						}
						nets, entries := s.Drop(fields[1], ids, backend.NetworkOfSerial)
						fmt.Fprintf(w, "dropped networks=%d entries=%d\n", nets, entries)
					case "absorb":
						ids, err := ParseIDList(fields[2])
						if err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
							break
						}
						var payload []string
						for sc.Scan() {
							ln := sc.Text()
							if ln == "" {
								break
							}
							payload = append(payload, ln)
						}
						raw, err := DecodeSnapshotLines(payload)
						if err != nil {
							fmt.Fprintf(w, "ERR %v\n", err)
							break
						}
						applied, err := s.Absorb(fields[1], ids, raw, backend.NetworkOfSerial)
						switch {
						case err != nil:
							fmt.Fprintf(w, "ERR %v\n", err)
						case !applied:
							fmt.Fprintf(w, "already token=%s\n", fields[1])
						default:
							fmt.Fprintf(w, "absorbed token=%s networks=%d\n", fields[1], len(ids))
						}
					case "quit":
						w.Flush()
						return
					default:
						fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
					}
					fmt.Fprintln(w)
					w.Flush()
				}
			}(conn)
		}
	}()
}

// startShards serves each store on a loopback listener and returns the
// router plus the listeners (close one to take its shard down).
func startShards(t *testing.T, stores []*backend.Store) (*Router, []net.Listener) {
	t.Helper()
	lns := make([]net.Listener, len(stores))
	addrs := make([]string, len(stores))
	for i, s := range stores {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		serveStore(ln, i, s)
	}
	t.Cleanup(func() {
		for _, ln := range lns {
			ln.Close()
		}
	})
	return &Router{Shards: addrs, Timeout: 5 * time.Second}, lns
}

func TestFanoutDigest(t *testing.T) {
	stores := shardStores(4, clusterReports(1, 6))
	r, _ := startShards(t, stores)
	replies := r.Fanout("digest")
	if len(replies) != 4 {
		t.Fatalf("got %d replies", len(replies))
	}
	for i, rep := range replies {
		if rep.Err != nil {
			t.Fatalf("shard %d: %v", i, rep.Err)
		}
		if rep.Shard != i {
			t.Fatalf("reply %d carries shard %d", i, rep.Shard)
		}
		if len(rep.Lines) != 1 || rep.Lines[0] != stores[i].Digest() {
			t.Fatalf("shard %d digest reply %q, want its store digest", i, rep.Lines)
		}
		if rep.Attempts != 1 {
			t.Fatalf("healthy shard %d took %d attempts", i, rep.Attempts)
		}
	}
	if NumDown(replies) != 0 || DownShards(replies) != nil {
		t.Fatalf("healthy fanout reports down shards: %v", DownShards(replies))
	}
}

func TestFanoutErrLineIsNotAnError(t *testing.T) {
	r, _ := startShards(t, shardStores(2, nil))
	replies := r.Fanout("no-such-command")
	for _, rep := range replies {
		if rep.Err != nil {
			t.Fatalf("shard %d: transport error for ERR-line reply: %v", rep.Shard, rep.Err)
		}
		if len(rep.Lines) != 1 || !strings.HasPrefix(rep.Lines[0], "ERR") {
			t.Fatalf("shard %d: want single ERR line, got %q", rep.Shard, rep.Lines)
		}
	}
}

// TestFanoutRetrySucceeds pins the jittered retry path: a shard whose
// faultnet plan refuses exactly the first connection answers on the
// second attempt, and the reply records both attempts.
func TestFanoutRetrySucceeds(t *testing.T) {
	s := backend.NewStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := faultnet.Wrap(ln, faultnet.Plan{Seed: 7, Refuse: []faultnet.Window{{From: 0, To: 1}}})
	serveStore(fln, 0, s)
	r := &Router{
		Shards:      []string{ln.Addr().String()},
		Timeout:     2 * time.Second,
		Retries:     2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
	reg := obs.NewRegistry()
	r.EnableObs(reg)
	replies := r.Fanout("digest")
	if replies[0].Err != nil {
		t.Fatalf("retry did not recover: %v", replies[0].Err)
	}
	if replies[0].Attempts < 2 {
		t.Fatalf("expected >=2 attempts, got %d", replies[0].Attempts)
	}
	if got := reg.Counter("cluster.retries").Value(); got < 1 {
		t.Fatalf("cluster.retries = %d, want >= 1", got)
	}
	if got := reg.Counter(obs.Indexed("cluster.shard", 0, "errors")).Value(); got < 1 {
		t.Fatalf("per-shard error counter = %d, want >= 1", got)
	}
}

// TestScatterGatherPartialResults is the degradation proof the issue
// asks for: with one shard's listener in a permanent faultnet outage
// mid-cluster, a fanout and a merged digest still return the remaining
// shards' data, plus an explicit degraded marker naming the casualty —
// never an all-or-nothing failure.
func TestScatterGatherPartialResults(t *testing.T) {
	reports := clusterReports(3, 8)
	stores := shardStores(4, reports)
	lns := make([]net.Listener, 4)
	addrs := make([]string, 4)
	for i, s := range stores {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
		if i == 2 {
			// Shard 2 is down: every accepted connection is refused by
			// the fault plan, which the dialer sees as connect-then-drop.
			fln := faultnet.Wrap(ln, faultnet.Plan{Seed: 11, Refuse: []faultnet.Window{{From: 0, To: 1 << 30}}})
			serveStore(fln, i, s)
		} else {
			serveStore(ln, i, s)
		}
		lns[i] = ln
	}
	r := &Router{
		Shards:      addrs,
		Timeout:     time.Second,
		Retries:     1,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	}
	reg := obs.NewRegistry()
	r.EnableObs(reg)

	replies := r.Fanout("digest")
	if replies[2].Err == nil {
		t.Fatal("outaged shard 2 reported success")
	}
	for _, i := range []int{0, 1, 3} {
		if replies[i].Err != nil {
			t.Fatalf("live shard %d failed: %v", i, replies[i].Err)
		}
	}
	if down := DownShards(replies); len(down) != 1 || down[0] != 2 {
		t.Fatalf("DownShards = %v, want [2]", down)
	}

	dig, err := r.MergedDigest()
	if err != nil {
		t.Fatalf("partial merge should succeed: %v", err)
	}
	if !dig.Degraded {
		t.Fatal("merged digest with a down shard not flagged degraded")
	}
	if len(dig.Down) != 1 || dig.Down[0] != 2 {
		t.Fatalf("Down = %v, want [2]", dig.Down)
	}
	// The partial digest must equal exactly the surviving shards'
	// merged contents: nothing lost from live shards, nothing invented
	// for the dead one.
	want := backend.NewStore()
	for _, i := range []int{0, 1, 3} {
		mergeInto(t, want, stores[i])
	}
	if dig.Digest != want.Digest() {
		t.Fatalf("degraded digest %s != surviving shards' merge %s", dig.Digest, want.Digest())
	}
	if got := reg.Counter("cluster.degraded").Value(); got < 1 {
		t.Fatalf("cluster.degraded = %d, want >= 1", got)
	}
}

func TestMergedDigestAllDown(t *testing.T) {
	// Addresses from closed listeners: every shard refuses outright.
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		ln.Close()
	}
	r := &Router{Shards: addrs, Timeout: 500 * time.Millisecond, Retries: -1}
	dig, err := r.MergedDigest()
	if err == nil {
		t.Fatal("all-down cluster produced a digest")
	}
	if !dig.Degraded || len(dig.Down) != 2 {
		t.Fatalf("all-down Digest = %+v, want degraded with 2 down", dig)
	}
}

// mergeInto folds src into dst via the snapshot round-trip the router
// uses, so the test exercises the same path as production.
func mergeInto(t *testing.T, dst, src *backend.Store) {
	t.Helper()
	var b strings.Builder
	if err := WriteSnapshotLines(&b, src); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(b.String())
	raw, err := DecodeSnapshotLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.MergeSnapshot(raw); err != nil {
		t.Fatal(err)
	}
}
