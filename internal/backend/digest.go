package backend

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"wlanscale/internal/dot11"
)

// Digest returns a SHA-256 over a canonical dump of everything the
// store holds: client aggregates, dedup high-water marks, and every
// device series. Two stores with the same contents digest identically
// regardless of shard count, ingestion interleaving across serials, or
// map iteration order — per-serial series order still matters, as it
// does for analyses. The crash-recovery proof harness compares a
// recovered daemon's digest against a never-crashed control run's;
// merakid serves it as the "digest" query.
//
// Set-like fields (user agents, DHCP fingerprints, AP sets) are sorted
// into the dump because their in-memory order depends on which AP's
// report arrived first when several APs see one client.
//
// Digest takes every stripe lock, like Save; concurrent ingests stall
// for the walk.
func (s *Store) Digest() string {
	defer s.lockAll()()
	snap := s.collectLocked()
	h := sha256.New()

	macs := make([]dot11.MAC, 0, len(snap.Clients))
	for mac := range snap.Clients {
		macs = append(macs, mac)
	}
	sort.Slice(macs, func(i, j int) bool { return macs[i].Uint64() < macs[j].Uint64() })
	for _, mac := range macs {
		c := snap.Clients[mac]
		fmt.Fprintf(h, "client %s band=%d rssi=%d caps=%x\n", mac, c.Band, c.RSSIdB, c.Caps.Marshal())
		for _, name := range sortedKeys(c.Apps) {
			a := c.Apps[name]
			fmt.Fprintf(h, " app %s up=%d down=%d flows=%d\n", name, a.UpBytes, a.DownBytes, a.Flows)
		}
		uas := append([]string(nil), c.UserAgents...)
		sort.Strings(uas)
		for _, ua := range uas {
			fmt.Fprintf(h, " ua %s\n", ua)
		}
		fps := make([]string, 0, len(c.DHCPFingerprints))
		for _, fp := range c.DHCPFingerprints {
			fps = append(fps, hex.EncodeToString(fp))
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fmt.Fprintf(h, " fp %s\n", fp)
		}
		for _, serial := range sortedKeys(c.APs) {
			fmt.Fprintf(h, " ap %s\n", serial)
		}
	}

	for _, serial := range sortedKeys(snap.Seen) {
		fmt.Fprintf(h, "seen %s %d\n", serial, snap.Seen[serial])
	}
	for _, serial := range sortedKeys(snap.Radio) {
		fmt.Fprintf(h, "radio %s", serial)
		for _, r := range snap.Radio[serial] {
			fmt.Fprintf(h, " %d/%d/%d/%g/%g/%g", r.Timestamp, r.Band, r.Channel, r.Busy, r.Decodable, r.Tx)
		}
		io.WriteString(h, "\n")
	}
	for _, serial := range sortedKeys(snap.Scans) {
		fmt.Fprintf(h, "scan %s", serial)
		for _, p := range snap.Scans[serial] {
			fmt.Fprintf(h, " %d/%d/%d/%g/%g", p.Timestamp, p.Band, p.Channel, p.Busy, p.Decodable)
		}
		io.WriteString(h, "\n")
	}
	for _, serial := range sortedKeys(snap.Crashes) {
		fmt.Fprintf(h, "crash %s", serial)
		for _, c := range snap.Crashes[serial] {
			fmt.Fprintf(h, " %d/%d/%s/%x/%d/%d", c.Timestamp, c.Kind, c.Firmware, c.PC, c.FreeKB, c.NeighborCount)
		}
		io.WriteString(h, "\n")
	}
	for _, serial := range sortedKeys(snap.Neighbors) {
		m := snap.Neighbors[serial]
		bssids := make([]dot11.BSSID, 0, len(m))
		for b := range m {
			bssids = append(bssids, b)
		}
		sort.Slice(bssids, func(i, j int) bool { return bssids[i].Uint64() < bssids[j].Uint64() })
		fmt.Fprintf(h, "neigh %s", serial)
		for _, b := range bssids {
			n := m[b]
			fmt.Fprintf(h, " %s/%s/%d/%d/%d/%s", n.BSSID, n.SSID, n.Band, n.Channel, n.RSSIdB, n.Vendor)
		}
		io.WriteString(h, "\n")
	}
	links := make([]LinkKey, 0, len(snap.Links))
	for k := range snap.Links {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool { return lessLinkKey(links[i], links[j]) })
	for _, k := range links {
		l := snap.Links[k]
		fmt.Fprintf(h, "link %s->%s band=%d sent=%v del=%v\n", k.From, k.To, k.Band, l.Sent, l.Deliver)
	}

	return hex.EncodeToString(h.Sum(nil))
}
