// Package backend implements the Meraki backend's data layer (paper
// Section 2): ingestion of device reports with (serial, seqno)
// deduplication, aggregation of usage by client MAC across access
// points (to account for roaming), per-device time series of radio
// counters, neighbor tables, link-probe windows and scan samples, HMAC
// anonymization of identifiers for analysis exports, and gob snapshot
// persistence.
package backend

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// ClientAggregate is everything the backend knows about one client MAC,
// merged across every AP that reported it (roaming aggregation,
// Section 2.3).
type ClientAggregate struct {
	MAC  dot11.MAC
	Band dot11.Band
	// RSSIdB is the most recent signal report.
	RSSIdB int32
	Caps   dot11.Capabilities
	// Apps maps application name to byte totals.
	Apps map[string]*telemetry.AppUsageRecord
	// UserAgents and DHCPFingerprints feed OS inference.
	UserAgents       []string
	DHCPFingerprints [][]byte
	// APs counts how many distinct devices reported this client.
	APs map[string]bool
}

// Total returns the client's total bytes.
func (c *ClientAggregate) Total() uint64 {
	var t uint64
	for _, a := range c.Apps {
		t += a.UpBytes + a.DownBytes
	}
	return t
}

// OS runs the Section 3.2 inference over the aggregate's artifacts.
func (c *ClientAggregate) OS() apps.OS {
	return apps.InferOS(c.MAC.OUI(), c.DHCPFingerprints, c.UserAgents)
}

// LinkKey identifies a directed AP-AP link.
type LinkKey struct {
	From string // reporting device serial
	To   dot11.MAC
	Band dot11.Band
}

// LinkSeries is the stored window series for one link.
type LinkSeries struct {
	Key     LinkKey
	Sent    []uint32
	Deliver []uint32
}

// MeanDelivery returns the series' average delivery ratio.
func (l *LinkSeries) MeanDelivery() float64 {
	var s, d float64
	for i := range l.Sent {
		s += float64(l.Sent[i])
		d += float64(l.Deliver[i])
	}
	if s == 0 {
		return 0
	}
	return d / s
}

// Ratios returns the per-window delivery ratios.
func (l *LinkSeries) Ratios() []float64 {
	out := make([]float64, len(l.Sent))
	for i := range l.Sent {
		if l.Sent[i] > 0 {
			out[i] = float64(l.Deliver[i]) / float64(l.Sent[i])
		}
	}
	return out
}

// RadioSample is one stored counter snapshot.
type RadioSample struct {
	Timestamp uint64
	Band      dot11.Band
	Channel   int
	Busy      float64
	Decodable float64
	Tx        float64
}

// ScanPoint is one stored scanning-radio observation.
type ScanPoint struct {
	Timestamp uint64
	Band      dot11.Band
	Channel   int
	Busy      float64
	Decodable float64
}

// NeighborEntry is a deduplicated overheard BSS for one device.
type NeighborEntry struct {
	BSSID   dot11.BSSID
	SSID    string
	Band    dot11.Band
	Channel int
	RSSIdB  int32
	Vendor  string
}

// Store is the backend datastore. It is safe for concurrent use.
type Store struct {
	mu sync.Mutex

	seen    map[string]uint64 // highest seq per serial
	dupes   int
	ingests int

	clients   map[dot11.MAC]*ClientAggregate
	links     map[LinkKey]*LinkSeries
	radio     map[string][]RadioSample
	scans     map[string][]ScanPoint
	neighbors map[string]map[dot11.BSSID]NeighborEntry
	crashes   map[string][]telemetry.CrashRecord
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		seen:      make(map[string]uint64),
		clients:   make(map[dot11.MAC]*ClientAggregate),
		links:     make(map[LinkKey]*LinkSeries),
		radio:     make(map[string][]RadioSample),
		scans:     make(map[string][]ScanPoint),
		neighbors: make(map[string]map[dot11.BSSID]NeighborEntry),
		crashes:   make(map[string][]telemetry.CrashRecord),
	}
}

// Ingest merges one report. Re-delivered reports (same serial, seqno not
// above the high-water mark) are dropped, making harvest idempotent.
func (s *Store) Ingest(r *telemetry.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.SeqNo != 0 {
		if hw, ok := s.seen[r.Serial]; ok && r.SeqNo <= hw {
			s.dupes++
			return
		}
		s.seen[r.Serial] = r.SeqNo
	}
	s.ingests++

	for _, rs := range r.Radios {
		cyc := float64(rs.CycleUS)
		if cyc == 0 {
			continue
		}
		s.radio[r.Serial] = append(s.radio[r.Serial], RadioSample{
			Timestamp: r.Timestamp,
			Band:      rs.Band,
			Channel:   rs.Channel,
			Busy:      float64(rs.RxClearUS) / cyc,
			Decodable: float64(rs.Rx11US) / cyc,
			Tx:        float64(rs.TxUS) / cyc,
		})
	}
	for _, c := range r.Clients {
		agg, ok := s.clients[c.MAC]
		if !ok {
			agg = &ClientAggregate{
				MAC:  c.MAC,
				Apps: make(map[string]*telemetry.AppUsageRecord),
				APs:  make(map[string]bool),
			}
			s.clients[c.MAC] = agg
		}
		agg.Band = c.Band
		agg.RSSIdB = c.RSSIdB
		agg.Caps = c.Caps
		agg.APs[r.Serial] = true
		for _, ua := range c.UserAgents {
			agg.addUA(ua)
		}
		for _, fp := range c.DHCPFingerprints {
			agg.addFP(fp)
		}
		for _, a := range c.Apps {
			cur, ok := agg.Apps[a.App]
			if !ok {
				cur = &telemetry.AppUsageRecord{App: a.App}
				agg.Apps[a.App] = cur
			}
			cur.UpBytes += a.UpBytes
			cur.DownBytes += a.DownBytes
			cur.Flows += a.Flows
		}
	}
	for _, l := range r.LinkWindows {
		k := LinkKey{From: r.Serial, To: l.Peer, Band: l.Band}
		series, ok := s.links[k]
		if !ok {
			series = &LinkSeries{Key: k}
			s.links[k] = series
		}
		series.Sent = append(series.Sent, l.Sent)
		series.Deliver = append(series.Deliver, l.Delivered)
	}
	for _, sc := range r.ScanSamples {
		s.scans[r.Serial] = append(s.scans[r.Serial], ScanPoint{
			Timestamp: r.Timestamp,
			Band:      sc.Band,
			Channel:   sc.Channel,
			Busy:      float64(sc.BusyPermille) / 1000,
			Decodable: float64(sc.DecodablePermille) / 1000,
		})
	}
	if len(r.Crashes) > 0 {
		s.crashes[r.Serial] = append(s.crashes[r.Serial], r.Crashes...)
	}
	for _, n := range r.Neighbors {
		m, ok := s.neighbors[r.Serial]
		if !ok {
			m = make(map[dot11.BSSID]NeighborEntry)
			s.neighbors[r.Serial] = m
		}
		m[n.BSSID] = NeighborEntry{
			BSSID: n.BSSID, SSID: n.SSID, Band: n.Band,
			Channel: n.Channel, RSSIdB: n.RSSIdB, Vendor: n.Vendor,
		}
	}
}

func (c *ClientAggregate) addUA(ua string) {
	for _, e := range c.UserAgents {
		if e == ua {
			return
		}
	}
	c.UserAgents = append(c.UserAgents, ua)
}

func (c *ClientAggregate) addFP(fp []byte) {
	for _, e := range c.DHCPFingerprints {
		if string(e) == string(fp) {
			return
		}
	}
	cp := make([]byte, len(fp))
	copy(cp, fp)
	c.DHCPFingerprints = append(c.DHCPFingerprints, cp)
}

// Stats summarizes ingestion.
func (s *Store) Stats() (ingests, dupes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingests, s.dupes
}

// NumClients returns the number of distinct client MACs.
func (s *Store) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Clients returns the aggregates sorted by MAC.
func (s *Store) Clients() []*ClientAggregate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*ClientAggregate, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// Links returns every stored link series, sorted for determinism.
func (s *Store) Links() []*LinkSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*LinkSeries, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Band != b.Band {
			return a.Band < b.Band
		}
		return a.To.Uint64() < b.To.Uint64()
	})
	return out
}

// RadioSeries returns a device's stored counter samples.
func (s *Store) RadioSeries(serial string) []RadioSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.radio[serial]
}

// RadioSerials returns the serials with radio samples, sorted.
func (s *Store) RadioSerials() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.radio))
	for k := range s.radio {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ScanSeries returns a device's stored scan points.
func (s *Store) ScanSeries(serial string) []ScanPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scans[serial]
}

// ScanSerials returns the serials with scan data, sorted.
func (s *Store) ScanSerials() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.scans))
	for k := range s.scans {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns a device's deduplicated neighbor table, sorted by
// BSSID.
func (s *Store) Neighbors(serial string) []NeighborEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.neighbors[serial]
	out := make([]NeighborEntry, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BSSID.Uint64() < out[j].BSSID.Uint64() })
	return out
}

// NeighborSerials returns the serials with neighbor tables, sorted.
func (s *Store) NeighborSerials() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.neighbors))
	for k := range s.neighbors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Crashes returns a device's stored crash records.
func (s *Store) Crashes(serial string) []telemetry.CrashRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes[serial]
}

// CrashSerials returns the serials with crash reports, sorted.
func (s *Store) CrashSerials() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.crashes))
	for k := range s.crashes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NeighborCount returns the size of a device's deduplicated neighbor
// table (both bands).
func (s *Store) NeighborCount(serial string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.neighbors[serial])
}

// snapshot is the gob-persisted form of the store.
type snapshot struct {
	Seen      map[string]uint64
	Clients   map[dot11.MAC]*ClientAggregate
	Links     map[LinkKey]*LinkSeries
	Radio     map[string][]RadioSample
	Scans     map[string][]ScanPoint
	Neighbors map[string]map[dot11.BSSID]NeighborEntry
	Crashes   map[string][]telemetry.CrashRecord
}

// Save writes a gob snapshot.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gob.NewEncoder(w).Encode(snapshot{
		Seen: s.seen, Clients: s.clients, Links: s.links,
		Radio: s.radio, Scans: s.scans, Neighbors: s.neighbors,
		Crashes: s.crashes,
	})
}

// Load replaces the store contents from a gob snapshot.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("backend: load: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = snap.Seen
	s.clients = snap.Clients
	s.links = snap.Links
	s.radio = snap.Radio
	s.scans = snap.Scans
	s.neighbors = snap.Neighbors
	s.crashes = snap.Crashes
	if s.crashes == nil {
		s.crashes = make(map[string][]telemetry.CrashRecord)
	}
	for _, c := range s.clients {
		if c.Apps == nil {
			c.Apps = make(map[string]*telemetry.AppUsageRecord)
		}
		if c.APs == nil {
			c.APs = make(map[string]bool)
		}
	}
	return nil
}

// SaveFile writes the snapshot to a file path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Save(f)
}

// LoadFile reads a snapshot from a file path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
