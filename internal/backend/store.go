package backend

import (
	"encoding/gob"
	"fmt"
	"hash/maphash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry"
)

// ClientAggregate is everything the backend knows about one client MAC,
// merged across every AP that reported it (roaming aggregation,
// Section 2.3).
type ClientAggregate struct {
	MAC  dot11.MAC
	Band dot11.Band
	// RSSIdB is the most recent signal report.
	RSSIdB int32
	Caps   dot11.Capabilities
	// Apps maps application name to byte totals.
	Apps map[string]*telemetry.AppUsageRecord
	// UserAgents and DHCPFingerprints feed OS inference.
	UserAgents       []string
	DHCPFingerprints [][]byte
	// APs counts how many distinct devices reported this client.
	APs map[string]bool
}

// Total returns the client's total bytes.
func (c *ClientAggregate) Total() uint64 {
	var t uint64
	for _, a := range c.Apps {
		t += a.UpBytes + a.DownBytes
	}
	return t
}

// OS runs the Section 3.2 inference over the aggregate's artifacts.
func (c *ClientAggregate) OS() apps.OS {
	return apps.InferOS(c.MAC.OUI(), c.DHCPFingerprints, c.UserAgents)
}

// LinkKey identifies a directed AP-AP link.
type LinkKey struct {
	From string // reporting device serial
	To   dot11.MAC
	Band dot11.Band
}

// LinkSeries is the stored window series for one link.
type LinkSeries struct {
	Key     LinkKey
	Sent    []uint32
	Deliver []uint32
}

// MeanDelivery returns the series' average delivery ratio.
func (l *LinkSeries) MeanDelivery() float64 {
	var s, d float64
	for i := range l.Sent {
		s += float64(l.Sent[i])
		d += float64(l.Deliver[i])
	}
	if s == 0 {
		return 0
	}
	return d / s
}

// Ratios returns the per-window delivery ratios.
func (l *LinkSeries) Ratios() []float64 {
	out := make([]float64, len(l.Sent))
	for i := range l.Sent {
		if l.Sent[i] > 0 {
			out[i] = float64(l.Deliver[i]) / float64(l.Sent[i])
		}
	}
	return out
}

// RadioSample is one stored counter snapshot.
type RadioSample struct {
	Timestamp uint64
	Band      dot11.Band
	Channel   int
	Busy      float64
	Decodable float64
	Tx        float64
}

// ScanPoint is one stored scanning-radio observation.
type ScanPoint struct {
	Timestamp uint64
	Band      dot11.Band
	Channel   int
	Busy      float64
	Decodable float64
}

// NeighborEntry is a deduplicated overheard BSS for one device.
type NeighborEntry struct {
	BSSID   dot11.BSSID
	SSID    string
	Band    dot11.Band
	Channel int
	RSSIdB  int32
	Vendor  string
}

// DefaultShards is the stripe count of NewStore. 32 stripes keep
// contention negligible up to typical harvest-worker counts while the
// per-store footprint stays small.
const DefaultShards = 32

// clientShard is one stripe of the MAC-keyed client aggregation.
type clientShard struct {
	mu      sync.Mutex
	clients map[dot11.MAC]*ClientAggregate
}

// deviceShard is one stripe of the serial-keyed device data. Everything
// a single report writes outside the client map lives in the reporting
// device's shard, so dedup and series appends for one serial are
// serialized by one lock.
type deviceShard struct {
	// ingests counts reports Ingest routed to this stripe (accepted,
	// not deduplicated) — the per-stripe load signal EnableObs exports.
	// Merge is not attributed per stripe, so after merges the stripe
	// sum can trail the store total. Atomic, so readers never touch
	// the stripe lock.
	ingests   atomic.Int64
	mu        sync.Mutex
	seen      map[string]uint64 // highest seq per serial
	radio     map[string][]RadioSample
	scans     map[string][]ScanPoint
	neighbors map[string]map[dot11.BSSID]NeighborEntry
	crashes   map[string][]telemetry.CrashRecord
	links     map[LinkKey]*LinkSeries // keyed by From == shard serial
}

// Store is the backend datastore. It is safe for concurrent use: client
// aggregates are lock-striped by MAC and device series by serial.
type Store struct {
	clientShards []*clientShard
	deviceShards []*deviceShard
	mask         uint64

	ingests atomic.Int64
	dupes   atomic.Int64

	// Migration bookkeeping (see migrate.go). migMu guards both maps;
	// it is only ever taken alone or inside the stripe locks
	// (collectLocked), never the other way around. absorbMu serializes
	// whole Absorb operations so two concurrent absorbs of the same
	// token cannot both pass the dedup check and double-merge.
	migMu    sync.Mutex
	absorbed map[string]bool
	parted   map[uint64]bool
	absorbMu sync.Mutex

	// saveDur, when EnableObs attached a registry, times gob snapshot
	// encodes. Nil (no-op) otherwise.
	saveDur *obs.Histogram

	// tracer, when EnableTrace attached one, records a store.ingest span
	// for every sampled report folded in. Nil (no-op) otherwise.
	tracer *trace.Tracer
}

// serialSeed fixes the serial hash across stores so sharding is
// reproducible within a process (determinism never depends on it: reads
// re-sort).
var serialSeed = maphash.MakeSeed()

// NewStore creates an empty store with DefaultShards stripes.
func NewStore() *Store { return NewStoreShards(DefaultShards) }

// NewStoreShards creates an empty store with n lock stripes (rounded up
// to a power of two; n <= 1 yields a single-mutex store, useful as the
// contention baseline in benchmarks).
func NewStoreShards(n int) *Store {
	shards := 1
	for shards < n {
		shards <<= 1
	}
	s := &Store{
		clientShards: make([]*clientShard, shards),
		deviceShards: make([]*deviceShard, shards),
		mask:         uint64(shards - 1),
	}
	for i := 0; i < shards; i++ {
		s.clientShards[i] = &clientShard{clients: make(map[dot11.MAC]*ClientAggregate)}
		s.deviceShards[i] = &deviceShard{
			seen:      make(map[string]uint64),
			radio:     make(map[string][]RadioSample),
			scans:     make(map[string][]ScanPoint),
			neighbors: make(map[string]map[dot11.BSSID]NeighborEntry),
			crashes:   make(map[string][]telemetry.CrashRecord),
			links:     make(map[LinkKey]*LinkSeries),
		}
	}
	return s
}

// NumShards returns the stripe count.
func (s *Store) NumShards() int { return len(s.clientShards) }

// clientShardFor picks the stripe for a client MAC. MACs from one OUI
// differ only in the low 24 bits, so mix the packed value before
// masking.
func (s *Store) clientShardFor(mac dot11.MAC) *clientShard {
	return s.clientShards[mix64(mac.Uint64())&s.mask]
}

func (s *Store) deviceShardFor(serial string) *deviceShard {
	return s.deviceShards[maphash.String(serialSeed, serial)&s.mask]
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Ingest merges one report. Re-delivered reports (same serial, seqno not
// above the high-water mark) are dropped, making harvest idempotent.
// Reports for different serials take disjoint device stripes and
// contend on a client stripe only when their clients hash together.
func (s *Store) Ingest(r *telemetry.Report) {
	sp := s.tracer.Start(trace.ID(r.TraceID), trace.StageStoreIngest)
	sp.SetSerial(r.Serial)
	sp.SetSeq(r.SeqNo)
	defer sp.End()
	ds := s.deviceShardFor(r.Serial)
	ds.mu.Lock()
	if r.SeqNo != 0 {
		if hw, ok := ds.seen[r.Serial]; ok && r.SeqNo <= hw {
			ds.mu.Unlock()
			s.dupes.Add(1)
			return
		}
		ds.seen[r.Serial] = r.SeqNo
	}

	for _, rs := range r.Radios {
		cyc := float64(rs.CycleUS)
		if cyc == 0 {
			continue
		}
		ds.radio[r.Serial] = append(ds.radio[r.Serial], RadioSample{
			Timestamp: r.Timestamp,
			Band:      rs.Band,
			Channel:   rs.Channel,
			Busy:      float64(rs.RxClearUS) / cyc,
			Decodable: float64(rs.Rx11US) / cyc,
			Tx:        float64(rs.TxUS) / cyc,
		})
	}
	for _, l := range r.LinkWindows {
		k := LinkKey{From: r.Serial, To: l.Peer, Band: l.Band}
		series, ok := ds.links[k]
		if !ok {
			series = &LinkSeries{Key: k}
			ds.links[k] = series
		}
		series.Sent = append(series.Sent, l.Sent)
		series.Deliver = append(series.Deliver, l.Delivered)
	}
	for _, sc := range r.ScanSamples {
		ds.scans[r.Serial] = append(ds.scans[r.Serial], ScanPoint{
			Timestamp: r.Timestamp,
			Band:      sc.Band,
			Channel:   sc.Channel,
			Busy:      float64(sc.BusyPermille) / 1000,
			Decodable: float64(sc.DecodablePermille) / 1000,
		})
	}
	if len(r.Crashes) > 0 {
		ds.crashes[r.Serial] = append(ds.crashes[r.Serial], r.Crashes...)
	}
	for _, n := range r.Neighbors {
		m, ok := ds.neighbors[r.Serial]
		if !ok {
			m = make(map[dot11.BSSID]NeighborEntry)
			ds.neighbors[r.Serial] = m
		}
		m[n.BSSID] = NeighborEntry{
			BSSID: n.BSSID, SSID: n.SSID, Band: n.Band,
			Channel: n.Channel, RSSIdB: n.RSSIdB, Vendor: n.Vendor,
		}
	}
	ds.mu.Unlock()

	for _, c := range r.Clients {
		cs := s.clientShardFor(c.MAC)
		cs.mu.Lock()
		agg, ok := cs.clients[c.MAC]
		if !ok {
			agg = &ClientAggregate{
				MAC:  c.MAC,
				Apps: make(map[string]*telemetry.AppUsageRecord),
				APs:  make(map[string]bool),
			}
			cs.clients[c.MAC] = agg
		}
		agg.Band = c.Band
		agg.RSSIdB = c.RSSIdB
		agg.Caps = c.Caps
		agg.APs[r.Serial] = true
		for _, ua := range c.UserAgents {
			agg.addUA(ua)
		}
		for _, fp := range c.DHCPFingerprints {
			agg.addFP(fp)
		}
		for _, a := range c.Apps {
			cur, ok := agg.Apps[a.App]
			if !ok {
				cur = &telemetry.AppUsageRecord{App: a.App}
				agg.Apps[a.App] = cur
			}
			cur.UpBytes += a.UpBytes
			cur.DownBytes += a.DownBytes
			cur.Flows += a.Flows
		}
		cs.mu.Unlock()
	}

	// Counted only once every stripe write has landed, so an observer
	// that sees the count sees the report's client aggregates too.
	// Cross-shard reads are still only eventually consistent while
	// ingests are in flight: a reader can interleave between stripe
	// updates of a single report.
	ds.ingests.Add(1)
	s.ingests.Add(1)
}

// EnableObs folds the store's counters into reg: "store.ingests",
// "store.dupes", "store.clients", and "store.shards" as func gauges,
// one "store.stripe.NN.ingests" gauge per device stripe (the load-skew
// signal — a hot stripe means serials are hashing together), and a
// "store.save_us" histogram timing snapshot encodes. Like everything in
// obs, these are observe-only; calling EnableObs changes no stored
// data. Call before serving (merakid does) — attaching the save
// histogram is not synchronized with a concurrent Save.
func (s *Store) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterFunc("store.ingests", func() int64 { return s.ingests.Load() })
	reg.RegisterFunc("store.dupes", func() int64 { return s.dupes.Load() })
	reg.RegisterFunc("store.clients", func() int64 { return int64(s.NumClients()) })
	reg.RegisterFunc("store.shards", func() int64 { return int64(s.NumShards()) })
	for i := range s.deviceShards {
		ds := s.deviceShards[i]
		reg.RegisterFunc(obs.Indexed("store.stripe", i, "ingests"),
			func() int64 { return ds.ingests.Load() })
	}
	s.saveDur = reg.Histogram("store.save_us", obs.DurationBuckets)
}

// EnableTrace attaches a tracer: every sampled report folded in by
// Ingest records a store.ingest span (trace ID read from the report,
// duration covering all stripe writes). Observe-only — stored data and
// digests are unchanged. Call before serving; attaching is not
// synchronized with concurrent Ingest.
func (s *Store) EnableTrace(t *trace.Tracer) { s.tracer = t }

func (c *ClientAggregate) addUA(ua string) {
	for _, e := range c.UserAgents {
		if e == ua {
			return
		}
	}
	c.UserAgents = append(c.UserAgents, ua)
}

func (c *ClientAggregate) addFP(fp []byte) {
	for _, e := range c.DHCPFingerprints {
		if string(e) == string(fp) {
			return
		}
	}
	cp := make([]byte, len(fp))
	copy(cp, fp)
	c.DHCPFingerprints = append(c.DHCPFingerprints, cp)
}

// Merge folds a partial store into s. The caller hands over ownership
// of p: the parallel epoch pipeline builds one partial per network and
// merges them in network-index order, so every map and slice is folded
// in a deterministic sequence (keys are visited sorted, making merge
// output independent of p's map iteration order).
func (s *Store) Merge(p *Store) {
	// Client aggregates, in MAC order.
	for _, agg := range p.Clients() {
		cs := s.clientShardFor(agg.MAC)
		cs.mu.Lock()
		dst, ok := cs.clients[agg.MAC]
		if !ok {
			// First sighting: adopt the partial's aggregate wholesale.
			cs.clients[agg.MAC] = agg
			cs.mu.Unlock()
			continue
		}
		dst.Band = agg.Band
		dst.RSSIdB = agg.RSSIdB
		dst.Caps = agg.Caps
		for serial := range agg.APs {
			dst.APs[serial] = true
		}
		for _, ua := range agg.UserAgents {
			dst.addUA(ua)
		}
		for _, fp := range agg.DHCPFingerprints {
			dst.addFP(fp)
		}
		names := make([]string, 0, len(agg.Apps))
		for name := range agg.Apps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := agg.Apps[name]
			cur, ok := dst.Apps[name]
			if !ok {
				cur = &telemetry.AppUsageRecord{App: name}
				dst.Apps[name] = cur
			}
			cur.UpBytes += a.UpBytes
			cur.DownBytes += a.DownBytes
			cur.Flows += a.Flows
		}
		cs.mu.Unlock()
	}

	// Device-keyed series, in serial (and link-key) order per stripe.
	for _, pd := range p.deviceShards {
		for _, serial := range sortedKeys(pd.seen) {
			seq := pd.seen[serial]
			ds := s.deviceShardFor(serial)
			ds.mu.Lock()
			if seq > ds.seen[serial] {
				ds.seen[serial] = seq
			}
			ds.mu.Unlock()
		}
		for _, serial := range sortedKeys(pd.radio) {
			ds := s.deviceShardFor(serial)
			ds.mu.Lock()
			ds.radio[serial] = append(ds.radio[serial], pd.radio[serial]...)
			ds.mu.Unlock()
		}
		for _, serial := range sortedKeys(pd.scans) {
			ds := s.deviceShardFor(serial)
			ds.mu.Lock()
			ds.scans[serial] = append(ds.scans[serial], pd.scans[serial]...)
			ds.mu.Unlock()
		}
		for _, serial := range sortedKeys(pd.crashes) {
			ds := s.deviceShardFor(serial)
			ds.mu.Lock()
			ds.crashes[serial] = append(ds.crashes[serial], pd.crashes[serial]...)
			ds.mu.Unlock()
		}
		for _, serial := range sortedKeys(pd.neighbors) {
			ds := s.deviceShardFor(serial)
			ds.mu.Lock()
			m, ok := ds.neighbors[serial]
			if !ok {
				ds.neighbors[serial] = pd.neighbors[serial]
			} else {
				for bssid, e := range pd.neighbors[serial] {
					m[bssid] = e
				}
			}
			ds.mu.Unlock()
		}
		keys := make([]LinkKey, 0, len(pd.links))
		for k := range pd.links {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessLinkKey(keys[i], keys[j]) })
		for _, k := range keys {
			src := pd.links[k]
			ds := s.deviceShardFor(k.From)
			ds.mu.Lock()
			series, ok := ds.links[k]
			if !ok {
				ds.links[k] = src
			} else {
				series.Sent = append(series.Sent, src.Sent...)
				series.Deliver = append(series.Deliver, src.Deliver...)
			}
			ds.mu.Unlock()
		}
	}

	// Migration bookkeeping folds as a union: a merged view is "parted"
	// or "already absorbed" if any contributing partial was.
	p.migMu.Lock()
	tokens := make([]string, 0, len(p.absorbed))
	for tok := range p.absorbed {
		tokens = append(tokens, tok)
	}
	ids := make([]uint64, 0, len(p.parted))
	for id := range p.parted {
		ids = append(ids, id)
	}
	p.migMu.Unlock()
	for _, tok := range tokens {
		s.MarkAbsorbed(tok)
	}
	s.Part(ids)

	s.ingests.Add(p.ingests.Load())
	s.dupes.Add(p.dupes.Load())
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func lessLinkKey(a, b LinkKey) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Band != b.Band {
		return a.Band < b.Band
	}
	return a.To.Uint64() < b.To.Uint64()
}

// Stats summarizes ingestion.
func (s *Store) Stats() (ingests, dupes int) {
	return int(s.ingests.Load()), int(s.dupes.Load())
}

// NumClients returns the number of distinct client MACs.
func (s *Store) NumClients() int {
	n := 0
	for _, cs := range s.clientShards {
		cs.mu.Lock()
		n += len(cs.clients)
		cs.mu.Unlock()
	}
	return n
}

// Clients returns the aggregates explicitly sorted by MAC. The sort is
// load-bearing: downstream table rows must not depend on map iteration
// order or on how MACs happen to hash across shards.
func (s *Store) Clients() []*ClientAggregate {
	var out []*ClientAggregate
	for _, cs := range s.clientShards {
		cs.mu.Lock()
		for _, c := range cs.clients {
			out = append(out, c)
		}
		cs.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// Links returns every stored link series, sorted for determinism.
func (s *Store) Links() []*LinkSeries {
	var out []*LinkSeries
	for _, ds := range s.deviceShards {
		ds.mu.Lock()
		for _, l := range ds.links {
			out = append(out, l)
		}
		ds.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessLinkKey(out[i].Key, out[j].Key) })
	return out
}

// RadioSeries returns a device's stored counter samples.
func (s *Store) RadioSeries(serial string) []RadioSample {
	ds := s.deviceShardFor(serial)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.radio[serial]
}

// RadioSerials returns the serials with radio samples, sorted.
func (s *Store) RadioSerials() []string {
	return serialKeys(s.deviceShards, func(ds *deviceShard) map[string][]RadioSample { return ds.radio })
}

// ScanSeries returns a device's stored scan points.
func (s *Store) ScanSeries(serial string) []ScanPoint {
	ds := s.deviceShardFor(serial)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.scans[serial]
}

// ScanSerials returns the serials with scan data, sorted.
func (s *Store) ScanSerials() []string {
	return serialKeys(s.deviceShards, func(ds *deviceShard) map[string][]ScanPoint { return ds.scans })
}

// serialKeys collects the keys of one serial-keyed map across all
// shards, sorted.
func serialKeys[V any](shards []*deviceShard, pick func(*deviceShard) map[string]V) []string {
	var out []string
	for _, ds := range shards {
		ds.mu.Lock()
		for k := range pick(ds) {
			out = append(out, k)
		}
		ds.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Neighbors returns a device's deduplicated neighbor table, sorted by
// BSSID.
func (s *Store) Neighbors(serial string) []NeighborEntry {
	ds := s.deviceShardFor(serial)
	ds.mu.Lock()
	m := ds.neighbors[serial]
	out := make([]NeighborEntry, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	ds.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].BSSID.Uint64() < out[j].BSSID.Uint64() })
	return out
}

// NeighborSerials returns the serials with neighbor tables, sorted.
func (s *Store) NeighborSerials() []string {
	return serialKeys(s.deviceShards, func(ds *deviceShard) map[string]map[dot11.BSSID]NeighborEntry { return ds.neighbors })
}

// Crashes returns a device's stored crash records.
func (s *Store) Crashes(serial string) []telemetry.CrashRecord {
	ds := s.deviceShardFor(serial)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.crashes[serial]
}

// CrashSerials returns the serials with crash reports, sorted.
func (s *Store) CrashSerials() []string {
	return serialKeys(s.deviceShards, func(ds *deviceShard) map[string][]telemetry.CrashRecord { return ds.crashes })
}

// NeighborCount returns the size of a device's deduplicated neighbor
// table (both bands).
func (s *Store) NeighborCount(serial string) int {
	ds := s.deviceShardFor(serial)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.neighbors[serial])
}

// snapshot is the gob-persisted form of the store. The format predates
// sharding (flat maps), so snapshots round-trip across shard counts and
// old snapshots still load.
type snapshot struct {
	Seen      map[string]uint64
	Clients   map[dot11.MAC]*ClientAggregate
	Links     map[LinkKey]*LinkSeries
	Radio     map[string][]RadioSample
	Scans     map[string][]ScanPoint
	Neighbors map[string]map[dot11.BSSID]NeighborEntry
	Crashes   map[string][]telemetry.CrashRecord
	// Absorbed and Parted persist the rebalance bookkeeping (migrate.go)
	// so a restarted shard still refuses parted networks and still
	// deduplicates migration slices by token. Both are nil when no
	// rebalance ever touched the store — gob then omits them, so
	// pre-rebalance snapshots are byte-identical — and neither feeds
	// Digest, so data equivalence is unaffected.
	Absorbed map[string]bool
	Parted   map[uint64]bool
}

// Save writes a gob snapshot. Every stripe lock is held for the
// duration of the encode: the snapshot references live aggregates and
// series, so releasing the locks before encoding would let a concurrent
// Ingest mutate a map mid-encode (merakid snapshots while serve
// goroutines are still ingesting). Locks are acquired in index order,
// clients then devices; no other path holds more than one stripe at a
// time, so the ordering cannot deadlock. Ingest stalls for the encode,
// which is the price of a consistent snapshot — same contract as the
// pre-sharding single-mutex store.
func (s *Store) Save(w io.Writer) error {
	sp := obs.StartSpan(s.saveDur)
	defer sp.End()
	defer s.lockAll()()
	return gob.NewEncoder(w).Encode(s.collectLocked())
}

// lockAll acquires every stripe lock in index order (clients then
// devices) and returns the matching unlock. No other path holds more
// than one stripe at a time, so the ordering cannot deadlock.
func (s *Store) lockAll() func() {
	for _, cs := range s.clientShards {
		cs.mu.Lock()
	}
	for _, ds := range s.deviceShards {
		ds.mu.Lock()
	}
	return func() {
		for _, ds := range s.deviceShards {
			ds.mu.Unlock()
		}
		for _, cs := range s.clientShards {
			cs.mu.Unlock()
		}
	}
}

// collectLocked flattens the stripes into the persisted snapshot form.
// The result references live aggregates and series, so the caller must
// hold every stripe lock (lockAll) until it is done reading them.
func (s *Store) collectLocked() snapshot {
	snap := snapshot{
		Seen:      make(map[string]uint64),
		Clients:   make(map[dot11.MAC]*ClientAggregate),
		Links:     make(map[LinkKey]*LinkSeries),
		Radio:     make(map[string][]RadioSample),
		Scans:     make(map[string][]ScanPoint),
		Neighbors: make(map[string]map[dot11.BSSID]NeighborEntry),
		Crashes:   make(map[string][]telemetry.CrashRecord),
	}
	for _, cs := range s.clientShards {
		for mac, c := range cs.clients {
			snap.Clients[mac] = c
		}
	}
	for _, ds := range s.deviceShards {
		for k, v := range ds.seen {
			snap.Seen[k] = v
		}
		for k, v := range ds.links {
			snap.Links[k] = v
		}
		for k, v := range ds.radio {
			snap.Radio[k] = v
		}
		for k, v := range ds.scans {
			snap.Scans[k] = v
		}
		for k, v := range ds.neighbors {
			snap.Neighbors[k] = v
		}
		for k, v := range ds.crashes {
			snap.Crashes[k] = v
		}
	}
	s.migMu.Lock()
	if len(s.absorbed) > 0 {
		snap.Absorbed = make(map[string]bool, len(s.absorbed))
		for k := range s.absorbed {
			snap.Absorbed[k] = true
		}
	}
	if len(s.parted) > 0 {
		snap.Parted = make(map[uint64]bool, len(s.parted))
		for k := range s.parted {
			snap.Parted[k] = true
		}
	}
	s.migMu.Unlock()
	return snap
}

// Load replaces the store contents from a gob snapshot. The shard
// layout is never swapped out — the slice headers and mask are
// effectively immutable after NewStoreShards, which is what lets every
// other method read them without synchronization — so Load instead
// resets each existing stripe and folds the decoded entries in under
// the stripe locks. That makes Load race-free against concurrent Ingest
// and readers, but not atomic: an overlapping reader can observe a mix
// of old and new entries while the load is in flight. Callers wanting a
// consistent view should load before serving (merakid does).
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("backend: load: %w", err)
	}
	for _, cs := range s.clientShards {
		cs.mu.Lock()
		cs.clients = make(map[dot11.MAC]*ClientAggregate)
		cs.mu.Unlock()
	}
	for _, ds := range s.deviceShards {
		ds.mu.Lock()
		ds.seen = make(map[string]uint64)
		ds.radio = make(map[string][]RadioSample)
		ds.scans = make(map[string][]ScanPoint)
		ds.neighbors = make(map[string]map[dot11.BSSID]NeighborEntry)
		ds.crashes = make(map[string][]telemetry.CrashRecord)
		ds.links = make(map[LinkKey]*LinkSeries)
		ds.ingests.Store(0)
		ds.mu.Unlock()
	}
	s.ingests.Store(0)
	s.dupes.Store(0)
	s.migMu.Lock()
	s.absorbed, s.parted = nil, nil
	for k := range snap.Absorbed {
		if s.absorbed == nil {
			s.absorbed = make(map[string]bool)
		}
		s.absorbed[k] = true
	}
	for k := range snap.Parted {
		if s.parted == nil {
			s.parted = make(map[uint64]bool)
		}
		s.parted[k] = true
	}
	s.migMu.Unlock()
	for mac, c := range snap.Clients {
		if c.Apps == nil {
			c.Apps = make(map[string]*telemetry.AppUsageRecord)
		}
		if c.APs == nil {
			c.APs = make(map[string]bool)
		}
		cs := s.clientShardFor(mac)
		cs.mu.Lock()
		cs.clients[mac] = c
		cs.mu.Unlock()
	}
	withDeviceShard := func(serial string, fill func(*deviceShard)) {
		ds := s.deviceShardFor(serial)
		ds.mu.Lock()
		fill(ds)
		ds.mu.Unlock()
	}
	for serial, seq := range snap.Seen {
		withDeviceShard(serial, func(ds *deviceShard) { ds.seen[serial] = seq })
	}
	for k, v := range snap.Links {
		withDeviceShard(k.From, func(ds *deviceShard) { ds.links[k] = v })
	}
	for serial, v := range snap.Radio {
		withDeviceShard(serial, func(ds *deviceShard) { ds.radio[serial] = v })
	}
	for serial, v := range snap.Scans {
		withDeviceShard(serial, func(ds *deviceShard) { ds.scans[serial] = v })
	}
	for serial, v := range snap.Neighbors {
		withDeviceShard(serial, func(ds *deviceShard) { ds.neighbors[serial] = v })
	}
	for serial, v := range snap.Crashes {
		withDeviceShard(serial, func(ds *deviceShard) { ds.crashes[serial] = v })
	}
	return nil
}

// MergeSnapshot folds a gob snapshot into the store without resetting
// what it already holds — the shard-aware counterpart to Load. The
// scatter-gather router uses it to rebuild a cluster-wide view: each
// shard's snapshot decodes into a scratch store and merges through the
// same deterministic path the parallel epoch pipeline uses, so the
// merged digest is independent of fetch order. Ingestion counters from
// the snapshot are not recovered (the snapshot format predates them);
// digests never include counters, so equivalence is unaffected.
func (s *Store) MergeSnapshot(r io.Reader) error {
	tmp := NewStoreShards(s.NumShards())
	if err := tmp.Load(r); err != nil {
		return err
	}
	s.Merge(tmp)
	return nil
}

// SaveFile writes the snapshot to a file path atomically: encode into
// a temp file in the target directory, fsync it, then rename over the
// destination. A crash at any point leaves either the old snapshot or
// the new one — never a torn file — which is what lets merakid's
// "save" query and -snapshot shutdown path run against a path that
// already holds the previous generation.
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Best effort: some filesystems refuse directory fsync,
// and the rename itself is already atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// LoadFile reads a snapshot from a file path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
