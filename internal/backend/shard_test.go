package backend

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// fullReport builds a report exercising every store section, with
// deterministic contents derived from (serial index, seq).
func fullReport(n int, seq uint64) *telemetry.Report {
	serial := fmt.Sprintf("AP-%04d", n)
	mac := dot11.MAC{0xac, 0xbc, 0x32, byte(n >> 8), byte(n), 1}
	return &telemetry.Report{
		Serial:    serial,
		Timestamp: seq * 300,
		SeqNo:     seq,
		Radios: []telemetry.RadioStats{
			{Band: dot11.Band24, Channel: 6, CycleUS: 1000, RxClearUS: 250, Rx11US: 100, TxUS: 50},
		},
		Clients: []telemetry.ClientRecord{{
			MAC: mac, Band: dot11.Band24, RSSIdB: int32(10 + n%40),
			UserAgents: []string{fmt.Sprintf("UA-%d", n)},
			Apps:       []telemetry.AppUsageRecord{{App: "Netflix", UpBytes: 10, DownBytes: 100, Flows: 1}},
		}},
		Neighbors: []telemetry.NeighborRecord{
			{BSSID: dot11.BSSID{0, 0x18, 0x0a, 0, byte(n), 9}, SSID: "nbr", Band: dot11.Band24, Channel: 1},
		},
		LinkWindows: []telemetry.LinkWindow{
			{Peer: dot11.MAC{0, 0x18, 0x0a, 0, byte(n), 8}, Band: dot11.Band5, Sent: 20, Delivered: uint32(seq)},
		},
		ScanSamples: []telemetry.ScanSample{
			{Band: dot11.Band5, Channel: 36, BusyPermille: 120, DecodablePermille: 80},
		},
	}
}

// TestShardCountInvariance: every read accessor must return the same
// explicitly sorted results no matter how many stripes the store has —
// the "not map order, not shard order" contract Table rows depend on.
func TestShardCountInvariance(t *testing.T) {
	digest := func(shards int) []string {
		s := NewStoreShards(shards)
		for n := 0; n < 64; n++ {
			for seq := uint64(1); seq <= 3; seq++ {
				s.Ingest(fullReport(n, seq))
			}
		}
		var out []string
		for _, c := range s.Clients() {
			out = append(out, fmt.Sprintf("client %v total=%d", c.MAC, c.Total()))
		}
		for _, l := range s.Links() {
			out = append(out, fmt.Sprintf("link %+v sent=%v del=%v", l.Key, l.Sent, l.Deliver))
		}
		for _, serial := range s.RadioSerials() {
			out = append(out, fmt.Sprintf("radio %s n=%d", serial, len(s.RadioSeries(serial))))
		}
		for _, serial := range s.ScanSerials() {
			out = append(out, fmt.Sprintf("scan %s n=%d", serial, len(s.ScanSeries(serial))))
		}
		for _, serial := range s.NeighborSerials() {
			out = append(out, fmt.Sprintf("nbr %s n=%d", serial, s.NeighborCount(serial)))
		}
		return out
	}
	want := digest(1)
	for _, shards := range []int{2, 8, 32, 64} {
		got := digest(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: digest length %d, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: line %d = %q, want %q", shards, i, got[i], want[i])
			}
		}
	}
}

// TestClientsSorted pins the explicit sort of Clients(): ascending MAC,
// regardless of ingest order or shard placement.
func TestClientsSorted(t *testing.T) {
	s := NewStore()
	// Ingest in descending MAC order so map/shard order can't accidentally
	// look sorted.
	for n := 63; n >= 0; n-- {
		s.Ingest(fullReport(n, 1))
	}
	clients := s.Clients()
	if !sort.SliceIsSorted(clients, func(i, j int) bool {
		return clients[i].MAC.Uint64() < clients[j].MAC.Uint64()
	}) {
		t.Error("Clients() not sorted by MAC")
	}
	if len(clients) != 64 {
		t.Errorf("clients = %d, want 64", len(clients))
	}
}

// TestConcurrentIngestManySerials hammers the striped store from many
// goroutines across many serials and MACs; run under -race this is the
// striping's safety proof, and the totals prove no lost updates.
func TestConcurrentIngestManySerials(t *testing.T) {
	s := NewStore()
	const workers = 16
	const perWorker = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				s.Ingest(fullReport(n, 1))
				s.Ingest(fullReport(n, 2))
				s.Ingest(fullReport(n, 2)) // dupe
			}
		}(w)
	}
	wg.Wait()
	ing, dup := s.Stats()
	if ing != workers*perWorker*2 || dup != workers*perWorker {
		t.Errorf("ingests/dupes = %d/%d, want %d/%d", ing, dup, workers*perWorker*2, workers*perWorker)
	}
	if s.NumClients() != workers*perWorker {
		t.Errorf("clients = %d, want %d", s.NumClients(), workers*perWorker)
	}
	for _, c := range s.Clients() {
		if c.Total() != 220 { // two accepted reports x 110 bytes
			t.Fatalf("client %v total = %d, want 220", c.MAC, c.Total())
		}
	}
}

// TestConcurrentSaveLoadIngest: Save and Load must be safe while
// ingest workers are running — merakid snapshots (the "save" query
// command and the shutdown snapshot) while serve goroutines are still
// calling Ingest. Under -race this pins that Save encodes under the
// stripe locks and Load never swaps the shard layout out from under
// concurrent readers.
func TestConcurrentSaveLoadIngest(t *testing.T) {
	s := NewStore()
	for n := 0; n < 32; n++ {
		s.Ingest(fullReport(n, 1))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	initial := buf.Bytes()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(2); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				for n := 0; n < 32; n++ {
					s.Ingest(fullReport(w*64+n, seq))
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		if err := s.Save(io.Discard); err != nil {
			t.Errorf("save: %v", err)
		}
		if err := s.Load(bytes.NewReader(initial)); err != nil {
			t.Errorf("load: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// The snapshot taken before the churn must still round-trip cleanly.
	s2 := NewStore()
	if err := s2.Load(bytes.NewReader(initial)); err != nil {
		t.Fatal(err)
	}
	if s2.NumClients() != 32 {
		t.Errorf("restored clients = %d, want 32", s2.NumClients())
	}
}

// TestMergeEqualsDirectIngest: partitioning a report stream into
// partial stores and merging them must be indistinguishable from
// ingesting the whole stream into one store.
func TestMergeEqualsDirectIngest(t *testing.T) {
	const nDevices = 48
	direct := NewStore()
	for n := 0; n < nDevices; n++ {
		direct.Ingest(fullReport(n, 1))
		direct.Ingest(fullReport(n, 2))
	}

	merged := NewStore()
	const parts = 5
	for p := 0; p < parts; p++ {
		part := NewStoreShards(1)
		for n := p; n < nDevices; n += parts {
			part.Ingest(fullReport(n, 1))
			part.Ingest(fullReport(n, 2))
		}
		merged.Merge(part)
	}

	di, dd := direct.Stats()
	mi, md := merged.Stats()
	if di != mi || dd != md {
		t.Errorf("stats differ: %d/%d vs %d/%d", di, dd, mi, md)
	}
	dc, mc := direct.Clients(), merged.Clients()
	if len(dc) != len(mc) {
		t.Fatalf("client counts differ: %d vs %d", len(dc), len(mc))
	}
	for i := range dc {
		if dc[i].MAC != mc[i].MAC || dc[i].Total() != mc[i].Total() ||
			len(dc[i].UserAgents) != len(mc[i].UserAgents) {
			t.Fatalf("client %d differs: %+v vs %+v", i, dc[i], mc[i])
		}
	}
	dl, ml := direct.Links(), merged.Links()
	if len(dl) != len(ml) {
		t.Fatalf("link counts differ: %d vs %d", len(dl), len(ml))
	}
	for i := range dl {
		if dl[i].Key != ml[i].Key || fmt.Sprint(dl[i].Deliver) != fmt.Sprint(ml[i].Deliver) {
			t.Fatalf("link %d differs: %+v vs %+v", i, dl[i], ml[i])
		}
	}
	for n := 0; n < nDevices; n++ {
		serial := fmt.Sprintf("AP-%04d", n)
		if got, want := len(merged.RadioSeries(serial)), len(direct.RadioSeries(serial)); got != want {
			t.Errorf("%s radio series %d, want %d", serial, got, want)
		}
	}
	// Dedup high-water marks must survive the merge.
	merged.Ingest(fullReport(0, 2))
	if _, dup := merged.Stats(); dup != 1 {
		t.Error("merge lost dedup state")
	}
}

// TestMergeOverlappingClients: the same client roaming across partials
// must aggregate exactly as roaming across APs in one store does.
func TestMergeOverlappingClients(t *testing.T) {
	mac := dot11.MAC{0xac, 0xbc, 0x32, 0, 0, 7}
	mk := func(serial string) *Store {
		p := NewStoreShards(1)
		p.Ingest(&telemetry.Report{
			Serial: serial, SeqNo: 1,
			Clients: []telemetry.ClientRecord{{
				MAC: mac, Band: dot11.Band5, RSSIdB: 30,
				UserAgents: []string{"shared-ua"},
				Apps:       []telemetry.AppUsageRecord{{App: "YouTube", UpBytes: 5, DownBytes: 50, Flows: 1}},
			}},
		})
		return p
	}
	s := NewStore()
	s.Merge(mk("AP-A"))
	s.Merge(mk("AP-B"))
	if s.NumClients() != 1 {
		t.Fatalf("clients = %d, want 1", s.NumClients())
	}
	c := s.Clients()[0]
	if c.Total() != 110 || c.Apps["YouTube"].Flows != 2 {
		t.Errorf("merged usage = %+v", c.Apps["YouTube"])
	}
	if len(c.APs) != 2 {
		t.Errorf("AP set = %v, want 2 entries", c.APs)
	}
	if len(c.UserAgents) != 1 {
		t.Errorf("user agents not deduplicated: %v", c.UserAgents)
	}
}
