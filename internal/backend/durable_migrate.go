package backend

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Durable rebalance operations. Each migration step on a WAL-backed
// shard is its own WAL record, appended before the in-memory state
// changes (the same WAL-before-ack discipline IngestBatch follows), so
// a shard SIGKILLed mid-migration replays to exactly the state it
// acknowledged: an absorbed slice stays absorbed (token-deduplicated
// against the checkpoint), a parted network stays parted, a dropped
// network stays gone.
//
// Record layout: marker byte, then uvarint token length + token bytes,
// then uvarint ID count + uvarint IDs, then the rest of the record is
// the operation payload (the gob slice for absorb, empty otherwise).
// Part/unpart carry an empty token. The markers live in the gap the
// replay discriminator leaves open: 0x02 is a v2 batch frame, pbwire
// report tags start at 0x08.
const (
	recAbsorb byte = 0x03
	recDrop   byte = 0x04
	recPart   byte = 0x05
	recUnpart byte = 0x06
)

// isMigrationRecord reports whether a WAL payload is a migration
// record (see the OpenDurable replay discriminator).
func isMigrationRecord(b []byte) bool {
	return len(b) > 0 && b[0] >= recAbsorb && b[0] <= recUnpart
}

func encodeMigrationRecord(kind byte, token string, ids []uint64, payload []byte) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64*(len(ids)+2)+len(token)+len(payload))
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(token)))
	buf = append(buf, token...)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return append(buf, payload...)
}

func decodeMigrationRecord(b []byte) (kind byte, token string, ids []uint64, payload []byte, err error) {
	bad := fmt.Errorf("backend: short migration record (%d bytes)", len(b))
	if len(b) < 1 {
		return 0, "", nil, nil, bad
	}
	kind, rest := b[0], b[1:]
	tlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < tlen {
		return 0, "", nil, nil, bad
	}
	token = string(rest[n : n+int(tlen)])
	rest = rest[n+int(tlen):]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, "", nil, nil, bad
	}
	rest = rest[n:]
	ids = make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, "", nil, nil, bad
		}
		ids = append(ids, id)
		rest = rest[n:]
	}
	return kind, token, ids, rest, nil
}

// appendMigration writes one migration record through the WAL with the
// flight lock held — the same durability path as report batches, so
// Checkpoint's captured LSN never splits a migration step in half.
func (d *DurableStore) appendMigration(kind byte, token string, ids []uint64, payload []byte) error {
	if d.degraded.Load() {
		return ErrDegraded
	}
	d.flight.RLock()
	defer d.flight.RUnlock()
	if _, err := d.log.AppendBatch([][]byte{encodeMigrationRecord(kind, token, ids, payload)}); err != nil {
		d.degraded.Store(true)
		d.walFails.Inc()
		return fmt.Errorf("backend: wal append: %w", err)
	}
	return nil
}

// AbsorbSnapshot durably applies a migration slice: the whole slice
// rides one WAL record, then Store.Absorb folds it in. Returns false
// when the token was already absorbed (the slice is not re-logged).
func (d *DurableStore) AbsorbSnapshot(token string, ids []uint64, slice []byte) (bool, error) {
	if d.Store.HasAbsorbed(token) {
		return false, nil
	}
	if err := d.appendMigration(recAbsorb, token, ids, slice); err != nil {
		return false, err
	}
	return d.Store.Absorb(token, ids, bytes.NewReader(slice), d.netOf)
}

// DropNetworks durably removes migrated networks (and forgets the
// token, Store.Drop's contract).
func (d *DurableStore) DropNetworks(token string, ids []uint64) (networks, entries int, err error) {
	if err := d.appendMigration(recDrop, token, ids, nil); err != nil {
		return 0, 0, err
	}
	networks, entries = d.Store.Drop(token, ids, d.netOf)
	return networks, entries, nil
}

// PartNetworks durably marks networks as refusing ingestion.
func (d *DurableStore) PartNetworks(ids []uint64) error {
	if err := d.appendMigration(recPart, "", ids, nil); err != nil {
		return err
	}
	d.Store.Part(ids)
	return nil
}

// UnpartNetworks durably clears the parted mark.
func (d *DurableStore) UnpartNetworks(ids []uint64) error {
	if err := d.appendMigration(recUnpart, "", ids, nil); err != nil {
		return err
	}
	d.Store.Unpart(ids)
	return nil
}

// replayMigration re-applies one migration record during recovery.
// Absorb's token dedup and Part/Unpart/Drop's natural idempotence make
// replay safe whether or not the checkpoint already covers the record.
func (d *DurableStore) replayMigration(payload []byte) error {
	kind, token, ids, rest, err := decodeMigrationRecord(payload)
	if err != nil {
		return err
	}
	switch kind {
	case recAbsorb:
		_, err := d.Store.Absorb(token, ids, bytes.NewReader(rest), d.netOf)
		return err
	case recDrop:
		d.Store.Drop(token, ids, d.netOf)
	case recPart:
		d.Store.Part(ids)
	case recUnpart:
		d.Store.Unpart(ids)
	}
	return nil
}
