package backend

import (
	"fmt"
	"net"
	"testing"
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

// runHarvestArm drives one poll-loop benchmark arm: an in-process
// agent/poller pair over net.Pipe, batch-sized polls, with beforeAck
// standing where cmd/merakid hangs its ingest (and, durable, its WAL).
// wire selects the harvest protocol: telemetry.WireV1 per-report frames
// or telemetry.WireV2 delta-coded batches.
func runHarvestArm(b *testing.B, wire byte, beforeAck func([]*telemetry.Report, [][]byte) error, beforeAckFrame func([]*telemetry.Report, []byte) error) {
	const batch = 16
	key := make([]byte, 32)
	c1, c2 := net.Pipe()
	agent := telemetry.NewAgent("Q2XX-BENCH", key)
	agent.Wire = wire
	go agent.ServeConn(c1)
	p, err := telemetry.AcceptPoller(c2, key)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.NegotiateWire(wire)
	p.BeforeAck = beforeAck
	p.BeforeAckFrame = beforeAckFrame
	reports := make([]*telemetry.Report, batch)
	for j := range reports {
		reports[j] = benchReport(0, uint64(j+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reports {
			rr := *r
			agent.Enqueue(&rr)
		}
		got, err := p.Poll(batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != batch {
			b.Fatalf("poll returned %d reports, want %d", len(got), batch)
		}
	}
}

// BenchmarkHarvestPipeline measures the WAL where the daemon pays for
// it: one op is a full poll round — agent-side marshal and encrypt,
// frame transport, daemon-side decrypt, unmarshal, ingest, and ack —
// exactly cmd/merakid's serveDevice loop over an in-process pipe. The
// volatile arm ingests into a bare store from BeforeAck; the wal arms
// run DurableStore.IngestBatch there, as merakid does with -wal-dir.
// BenchmarkDurableIngest isolates the store+WAL cost by itself; this
// benchmark answers what fraction of a real harvest the log adds.
// Each arm runs under both wire versions, so the suite answers two
// questions at once: what the WAL adds to a harvest, and what wire v2's
// batch coalescing buys back (fewer bytes, one IngestBatch per frame).
func BenchmarkHarvestPipeline(b *testing.B) {
	for _, w := range []struct {
		name string
		wire byte
	}{{"wire-v1", telemetry.WireV1}, {"wire-v2", telemetry.WireV2}} {
		b.Run(w.name, func(b *testing.B) {
			b.Run("volatile", func(b *testing.B) {
				s := NewStore()
				runHarvestArm(b, w.wire, func(reports []*telemetry.Report, _ [][]byte) error {
					for _, r := range reports {
						s.Ingest(r)
					}
					return nil
				}, nil)
			})

			for _, pol := range []wal.Policy{wal.PolicyOff, wal.PolicyInterval, wal.PolicyAlways} {
				b.Run("wal-"+pol.String(), func(b *testing.B) {
					d, _, err := OpenDurable(b.TempDir(), DurableOptions{WAL: wal.Options{
						Policy:   pol,
						Interval: 100 * time.Millisecond,
					}})
					if err != nil {
						b.Fatal(err)
					}
					defer d.Close()
					runHarvestArm(b, w.wire, d.IngestBatch, d.IngestBatchFrame)
				})
			}
		})
	}
}

// benchReport builds a paper-shaped steady-state report: two radios, a
// dozen associated clients with user agents, DHCP fingerprints and app
// counters, a scanned neighborhood, mesh links, and spectrum samples —
// the density Section 2's per-AP uploads actually carry. Reports for
// the same AP repeat their strings and drift their counters, which is
// exactly the redundancy wire v2's dictionary and deltas exist to
// remove.
func benchReport(ap int, seq uint64) *telemetry.Report {
	r := &telemetry.Report{
		Serial:    fmt.Sprintf("Q2XX-%04d", ap),
		Timestamp: seq * 300,
		SeqNo:     seq,
		Radios: []telemetry.RadioStats{
			{Band: dot11.Band24, Channel: 6, WidthMHz: 20, CycleUS: 300e6, RxClearUS: 80e6 + seq*1e4, Rx11US: 40e6, TxUS: 20e6},
			{Band: dot11.Band5, Channel: 36, WidthMHz: 40, CycleUS: 300e6, RxClearUS: 30e6 + seq*1e4, Rx11US: 15e6, TxUS: 9e6},
		},
	}
	for c := 0; c < 12; c++ {
		cl := telemetry.ClientRecord{
			MAC:    dot11.MAC{0xf0, 0x18, byte(ap), byte(c), 0x01, 0x02},
			Band:   dot11.Band24,
			RSSIdB: int32(15 + (ap+c)%35),
			Caps:   dot11.Capabilities{G: true, N: true, FiveGHz: c%2 == 0, Streams: 1 + c%2},
			UserAgents: []string{
				"Mozilla/5.0 (iPhone; CPU iPhone OS 8_1 like Mac OS X)",
				fmt.Sprintf("AppClient/%d.0", c%3),
			},
			DHCPFingerprints: [][]byte{{0x01, 0x03, 0x06, 0x0f, byte(c % 3)}},
		}
		for a := 0; a < 4; a++ {
			cl.Apps = append(cl.Apps, telemetry.AppUsageRecord{
				App:     []string{"Netflix", "YouTube", "BitTorrent", "HTTP"}[a],
				UpBytes: 1e4 + seq*100, DownBytes: 2e6 + seq*5000, Flows: 3,
			})
		}
		r.Clients = append(r.Clients, cl)
	}
	for nb := 0; nb < 8; nb++ {
		r.Neighbors = append(r.Neighbors, telemetry.NeighborRecord{
			BSSID: dot11.BSSID{0, 0x18, 0x0a, byte(ap), byte(nb), 9}, SSID: fmt.Sprintf("neighbor-%d", nb%4),
			Band: dot11.Band24, Channel: 1 + 5*(nb%3), RSSIdB: -int32(40 + nb), Vendor: "Cisco",
		})
	}
	for l := 0; l < 2; l++ {
		r.LinkWindows = append(r.LinkWindows, telemetry.LinkWindow{
			Peer: dot11.MAC{0, 0x18, 0x0a, byte(ap), byte(l), 8}, Band: dot11.Band5,
			Sent: 200 + uint32(seq), Delivered: 190 + uint32(seq),
		})
	}
	for s := 0; s < 4; s++ {
		r.ScanSamples = append(r.ScanSamples, telemetry.ScanSample{
			Band: dot11.Band5, Channel: 36 + 4*s, BusyPermille: 120 + uint32(seq%50), DecodablePermille: 80,
		})
	}
	return r
}

// BenchmarkWireEncode isolates the codec cost and reports bytes/report
// for each wire version on a steady-state batch — the number
// EXPERIMENTS.md's wire table quotes and scripts/benchgate regresses.
func BenchmarkWireEncode(b *testing.B) {
	const batch = 16
	reports := make([]*telemetry.Report, batch)
	for i := range reports {
		reports[i] = benchReport(i%4, uint64(i+1))
	}
	b.Run("v1", func(b *testing.B) {
		var bytesOut int
		for i := 0; i < b.N; i++ {
			bytesOut = 0
			for _, r := range reports {
				bytesOut += len(r.Marshal())
			}
		}
		b.ReportMetric(float64(bytesOut)/batch, "bytes/report")
	})
	b.Run("v2", func(b *testing.B) {
		var bytesOut int
		for i := 0; i < b.N; i++ {
			be := telemetry.NewBatchEncoder(0)
			for _, r := range reports {
				be.Add(r)
			}
			bytesOut = len(be.Finish(0, 0, nil))
		}
		b.ReportMetric(float64(bytesOut)/batch, "bytes/report")
	})
}
