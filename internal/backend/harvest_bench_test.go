package backend

import (
	"net"
	"testing"
	"time"

	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

// runHarvestArm drives one poll-loop benchmark arm: an in-process
// agent/poller pair over net.Pipe, batch-sized polls, with beforeAck
// standing where cmd/merakid hangs its ingest (and, durable, its WAL).
func runHarvestArm(b *testing.B, beforeAck func([]*telemetry.Report, [][]byte) error) {
	const batch = 16
	key := make([]byte, 32)
	c1, c2 := net.Pipe()
	agent := telemetry.NewAgent("Q2XX-BENCH", key)
	go agent.ServeConn(c1)
	p, err := telemetry.AcceptPoller(c2, key)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.BeforeAck = beforeAck
	r := fullReport(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			rr := *r
			agent.Enqueue(&rr)
		}
		got, err := p.Poll(batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != batch {
			b.Fatalf("poll returned %d reports, want %d", len(got), batch)
		}
	}
}

// BenchmarkHarvestPipeline measures the WAL where the daemon pays for
// it: one op is a full poll round — agent-side marshal and encrypt,
// frame transport, daemon-side decrypt, unmarshal, ingest, and ack —
// exactly cmd/merakid's serveDevice loop over an in-process pipe. The
// volatile arm ingests into a bare store from BeforeAck; the wal arms
// run DurableStore.IngestBatch there, as merakid does with -wal-dir.
// BenchmarkDurableIngest isolates the store+WAL cost by itself; this
// benchmark answers what fraction of a real harvest the log adds.
func BenchmarkHarvestPipeline(b *testing.B) {
	b.Run("volatile", func(b *testing.B) {
		s := NewStore()
		runHarvestArm(b, func(reports []*telemetry.Report, _ [][]byte) error {
			for _, r := range reports {
				s.Ingest(r)
			}
			return nil
		})
	})

	for _, pol := range []wal.Policy{wal.PolicyOff, wal.PolicyInterval, wal.PolicyAlways} {
		b.Run("wal-"+pol.String(), func(b *testing.B) {
			d, _, err := OpenDurable(b.TempDir(), DurableOptions{WAL: wal.Options{
				Policy:   pol,
				Interval: 100 * time.Millisecond,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			runHarvestArm(b, d.IngestBatch)
		})
	}
}
