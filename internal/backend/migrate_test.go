package backend

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// netReport builds one report for AP ap of network net, touching every
// store section so extraction and deletion are exercised field by
// field. Client MACs embed the network, keeping populations disjoint
// the way real customer networks are.
func netReport(net, ap int, seq uint64) *telemetry.Report {
	serial := fmt.Sprintf("Q2TT-%04d-%04d", net, ap)
	mac := dot11.MAC{0x02, byte(net >> 8), byte(net), 0, byte(ap), byte(seq)}
	return &telemetry.Report{
		Serial:    serial,
		SeqNo:     seq,
		Timestamp: 1000 + seq,
		Radios: []telemetry.RadioStats{{
			Band: dot11.Band24, Channel: 6,
			CycleUS: 1000, RxClearUS: 300, Rx11US: 120, TxUS: 50,
		}},
		LinkWindows: []telemetry.LinkWindow{{
			Peer: dot11.MAC{0x02, 0xee, byte(net), 0, 0, 1}, Band: dot11.Band5,
			Sent: 100, Delivered: 90,
		}},
		ScanSamples: []telemetry.ScanSample{{
			Band: dot11.Band5, Channel: 36, BusyPermille: 120, DecodablePermille: 80,
		}},
		Neighbors: []telemetry.NeighborRecord{{
			BSSID: dot11.BSSID{0x06, 0, byte(net), 0, 0, byte(ap)}, SSID: "neigh",
			Band: dot11.Band24, Channel: 1, RSSIdB: -70,
		}},
		Crashes: []telemetry.CrashRecord{{Timestamp: 900 + seq, Kind: 1, Firmware: "fw"}},
		Clients: []telemetry.ClientRecord{{
			MAC: mac, Band: dot11.Band24, RSSIdB: -55,
			Apps: []telemetry.AppUsageRecord{{App: "Netflix", UpBytes: seq, DownBytes: seq * 10, Flows: 1}},
		}},
	}
}

// netStore ingests reps reports per AP for each listed network.
func netStore(nets []int, aps int, reps uint64) *Store {
	s := NewStore()
	for _, n := range nets {
		for a := 0; a < aps; a++ {
			for q := uint64(1); q <= reps; q++ {
				s.Ingest(netReport(n, a, q))
			}
		}
	}
	return s
}

func TestNetworkOfSerial(t *testing.T) {
	cases := []struct {
		serial string
		id     uint64
		ok     bool
	}{
		{"Q2XX-0005-0002", 5, true},
		{"Q2CL-100-0", 100, true},
		{"A-0-B", 0, true},
		{"NODASH", 0, false},
		{"A-B", 0, false},
		{"A--C", 0, false},
		{"A-12x-C", 0, false},
	}
	for _, c := range cases {
		id, ok := NetworkOfSerial(c.serial)
		if id != c.id || ok != c.ok {
			t.Errorf("NetworkOfSerial(%q) = %d,%v want %d,%v", c.serial, id, ok, c.id, c.ok)
		}
	}
}

func TestNetworksListsEveryNetwork(t *testing.T) {
	s := netStore([]int{7, 3, 11}, 2, 2)
	got := s.Networks(NetworkOfSerial)
	if want := []uint64{3, 7, 11}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Networks = %v, want %v", got, want)
	}
}

// TestExtractDeletePartition pins the core migration invariant: a
// store splits cleanly into a moved slice and a remainder, and merging
// the two back yields the original digest — nothing lost, nothing
// duplicated, no shared memory between slice and source.
func TestExtractDeletePartition(t *testing.T) {
	s := netStore([]int{1, 2, 3, 4}, 2, 3)
	want := s.Digest()
	moved := IDSet([]uint64{2, 4})

	slice := s.ExtractNetworks(moved, NetworkOfSerial)
	if got := slice.Networks(NetworkOfSerial); !reflect.DeepEqual(got, []uint64{2, 4}) {
		t.Fatalf("slice networks = %v", got)
	}
	// Deep copy: mutating the slice must not touch the source.
	sliceDigest := slice.Digest()
	before := s.Digest()
	slice.Ingest(netReport(2, 0, 99))
	if s.Digest() != before {
		t.Fatal("mutating the extracted slice changed the source store")
	}

	rest := s.ExtractNetworks(IDSet([]uint64{1, 3}), NetworkOfSerial)
	nets, entries := s.DeleteNetworks(moved, NetworkOfSerial)
	if nets != 2 || entries == 0 {
		t.Fatalf("DeleteNetworks = %d nets %d entries", nets, entries)
	}
	if got := s.Networks(NetworkOfSerial); !reflect.DeepEqual(got, []uint64{1, 3}) {
		t.Fatalf("post-delete networks = %v", got)
	}
	if s.Digest() != rest.Digest() {
		t.Fatal("post-delete store != extracted remainder")
	}

	// Reassemble: remainder + original slice == original store.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	merged := NewStore()
	if err := merged.MergeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	fresh := netStore([]int{2, 4}, 2, 3)
	if fresh.Digest() != sliceDigest {
		t.Fatal("extracted slice digest != fresh build of the same networks")
	}
	if err := fresh.Save(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeSnapshot(&sbuf); err != nil {
		t.Fatal(err)
	}
	if merged.Digest() != want {
		t.Fatal("remainder + slice digest != original")
	}
}

func TestAbsorbTokenIdempotent(t *testing.T) {
	src := netStore([]int{5}, 2, 2)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	slice := buf.Bytes()

	dst := netStore([]int{9}, 1, 1)
	applied, err := dst.Absorb("tok-1", []uint64{5}, bytes.NewReader(slice), NetworkOfSerial)
	if err != nil || !applied {
		t.Fatalf("first absorb = %v, %v", applied, err)
	}
	want := dst.Digest()
	applied, err = dst.Absorb("tok-1", []uint64{5}, bytes.NewReader(slice), NetworkOfSerial)
	if err != nil || applied {
		t.Fatalf("re-absorb under same token = %v, %v (want no-op)", applied, err)
	}
	if dst.Digest() != want {
		t.Fatal("re-absorb changed the store")
	}

	// A fresh token replaces: stale pre-existing data for the moved
	// networks is deleted first, so absorption converges instead of
	// appending duplicate series.
	dst.Ingest(netReport(5, 0, 99)) // stray stale copy
	applied, err = dst.Absorb("tok-2", []uint64{5}, bytes.NewReader(slice), NetworkOfSerial)
	if err != nil || !applied {
		t.Fatalf("fresh-token absorb = %v, %v", applied, err)
	}
	if dst.Digest() != want {
		t.Fatal("fresh-token absorb did not replace stale data")
	}
}

func TestPartUnpartAndDrop(t *testing.T) {
	s := netStore([]int{1, 2}, 1, 1)
	s.Part([]uint64{2, 7})
	if !s.IsParted(2) || !s.IsParted(7) || s.IsParted(1) {
		t.Fatal("IsParted wrong after Part")
	}
	if got := s.PartedIDs(); !reflect.DeepEqual(got, []uint64{2, 7}) {
		t.Fatalf("PartedIDs = %v", got)
	}
	s.Unpart([]uint64{7})
	if s.IsParted(7) {
		t.Fatal("Unpart did not clear")
	}
	s.MarkAbsorbed("tok")
	nets, _ := s.Drop("tok", []uint64{2}, NetworkOfSerial)
	if nets != 1 {
		t.Fatalf("Drop removed %d networks", nets)
	}
	if s.HasAbsorbed("tok") {
		t.Fatal("Drop did not clear the token")
	}
	if got := s.Networks(NetworkOfSerial); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("post-drop networks = %v", got)
	}
}

// TestMigrationStateSurvivesSnapshot pins that parted/absorbed state
// rides snapshots (so a restarted shard still refuses parted networks)
// without perturbing the data digest.
func TestMigrationStateSurvivesSnapshot(t *testing.T) {
	s := netStore([]int{1}, 1, 1)
	plain := s.Digest()
	s.Part([]uint64{42})
	s.MarkAbsorbed("tok-x")
	if s.Digest() != plain {
		t.Fatal("migration bookkeeping leaked into the digest")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !s2.IsParted(42) || !s2.HasAbsorbed("tok-x") {
		t.Fatal("migration bookkeeping lost across save/load")
	}
	if s2.Digest() != plain {
		t.Fatal("digest changed across save/load with bookkeeping")
	}
}

// TestDurableMigrationReplay crashes a destination shard (close
// without checkpoint) at every stage of a migration and requires
// recovery to land exactly where the shard acknowledged: absorbed
// slices stay absorbed, parts stay parted, drops stay gone.
func TestDurableMigrationReplay(t *testing.T) {
	src := netStore([]int{5, 6}, 2, 2)
	var buf bytes.Buffer
	if err := src.ExtractNetworks(IDSet([]uint64{5}), NetworkOfSerial).Save(&buf); err != nil {
		t.Fatal(err)
	}
	slice := buf.Bytes()
	wantSlice := netStore([]int{5}, 2, 2).Digest()

	dir := t.TempDir()
	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.PartNetworks([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	applied, err := d.AbsorbSnapshot("tok-d", []uint64{5}, slice)
	if err != nil || !applied {
		t.Fatalf("AbsorbSnapshot = %v, %v", applied, err)
	}
	if d.IsParted(5) {
		t.Fatal("absorb left the network parted on its new home")
	}
	d.Close() // SIGKILL stand-in: no checkpoint, WAL only

	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	if stats.BadRecords != 0 {
		t.Fatalf("recovery: %+v", stats)
	}
	if got := d2.Digest(); got != wantSlice {
		t.Fatalf("recovered digest != slice\n got %s\nwant %s", got, wantSlice)
	}
	if !d2.HasAbsorbed("tok-d") || d2.IsParted(5) {
		t.Fatal("recovered migration bookkeeping wrong")
	}
	// Re-absorbing after recovery stays a no-op.
	if applied, err := d2.AbsorbSnapshot("tok-d", []uint64{5}, slice); err != nil || applied {
		t.Fatalf("post-recovery re-absorb = %v, %v", applied, err)
	}

	// Checkpoint, then drop, then crash again: replay must apply the
	// drop above the checkpoint.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.DropNetworks("tok-d", []uint64{5}); err != nil {
		t.Fatal(err)
	}
	d2.Close()

	d3, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d3.Close()
	if stats.BadRecords != 0 {
		t.Fatalf("recovery: %+v", stats)
	}
	if got := d3.Networks(NetworkOfSerial); len(got) != 0 {
		t.Fatalf("dropped network resurrected after recovery: %v", got)
	}
	if d3.HasAbsorbed("tok-d") {
		t.Fatal("drop's token clear lost across recovery")
	}
}

func TestMigrationRecordRoundTrip(t *testing.T) {
	payload := []byte("gob-bytes-here")
	rec := encodeMigrationRecord(recAbsorb, "epoch3-2to3.s0d2", []uint64{1, 200, 1 << 40}, payload)
	if !isMigrationRecord(rec) {
		t.Fatal("isMigrationRecord = false")
	}
	kind, tok, ids, rest, err := decodeMigrationRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if kind != recAbsorb || tok != "epoch3-2to3.s0d2" || !reflect.DeepEqual(ids, []uint64{1, 200, 1 << 40}) || !bytes.Equal(rest, payload) {
		t.Fatalf("round trip = %d %q %v %q", kind, tok, ids, rest)
	}
	for cut := 1; cut < len(rec)-len(payload); cut++ {
		if _, _, _, _, err := decodeMigrationRecord(rec[:cut]); err == nil && cut < len(rec)-len(payload) {
			// Truncations inside the header must error; truncating the
			// payload region alone is legal (payload length is implicit).
			t.Fatalf("truncated record at %d decoded without error", cut)
		}
	}
}
