package backend

import (
	"bytes"
	"testing"
)

// FuzzStoreLoad feeds arbitrary bytes — seeded with valid, truncated,
// and bit-flipped gob snapshots — to Store.Load. The invariant is the
// recovery contract OpenDurable leans on: a load either succeeds or
// returns an error; it never panics, and on error the store is still
// usable (the caller falls back to an older checkpoint or an empty
// store and replays the WAL).
func FuzzStoreLoad(f *testing.F) {
	snap := func(n int) []byte {
		s := NewStore()
		for _, r := range durableReports(n) {
			s.Ingest(r)
		}
		var b bytes.Buffer
		if err := s.Save(&b); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	valid := snap(20)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(snap(1))
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add(valid[:len(valid)-1]) // torn final byte
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0xff // bit-flipped mid-stream
	f.Add(flipped)
	f.Add([]byte("not a gob stream at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore()
		err := s.Load(bytes.NewReader(data))
		// Success or error, the store must remain usable: ingest a
		// report and read the aggregate back without blowing up.
		_ = err
		s.Ingest(usageReport("AP-FUZZ", 1_000_000, clientA, "Probe", 1, 1))
		if s.NumClients() == 0 {
			t.Fatal("store unusable after Load")
		}
		_ = s.Digest()
	})
}
