package backend

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"

	"wlanscale/internal/dot11"
)

// Anonymizer produces stable pseudonyms for identifiers before analysis
// export — the paper's dataset is "an anonymized subset of
// measurements" and "data are presented only as an aggregate". The
// pseudonyms are HMAC-SHA256 under a secret, so they are consistent
// within a dataset but unlinkable without the key.
type Anonymizer struct {
	key []byte
}

// NewAnonymizer creates an anonymizer with the given secret.
func NewAnonymizer(secret []byte) *Anonymizer {
	k := make([]byte, len(secret))
	copy(k, secret)
	return &Anonymizer{key: k}
}

func (a *Anonymizer) tag(domain string, data []byte) string {
	m := hmac.New(sha256.New, a.key)
	m.Write([]byte(domain))
	m.Write([]byte{0})
	m.Write(data)
	return hex.EncodeToString(m.Sum(nil)[:8])
}

// MAC returns the pseudonym for a MAC address. The OUI class (Meraki /
// hotspot vendor / other) is preserved in the prefix because the
// analyses need it, but the address itself is not recoverable.
func (a *Anonymizer) MAC(m dot11.MAC) string {
	return "mac:" + a.tag("mac", m[:])
}

// SSID returns the pseudonym for a network name.
func (a *Anonymizer) SSID(ssid string) string {
	return "ssid:" + a.tag("ssid", []byte(ssid))
}

// Serial returns the pseudonym for a device serial.
func (a *Anonymizer) Serial(serial string) string {
	return "dev:" + a.tag("serial", []byte(serial))
}
