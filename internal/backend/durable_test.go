package backend

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

// durableReports builds n deterministic reports across a few serials,
// seqnos stamped the way Agent.Enqueue does (1-based, per device).
func durableReports(n int) []*telemetry.Report {
	out := make([]*telemetry.Report, 0, n)
	seq := map[string]uint64{}
	for i := 0; i < n; i++ {
		serial := fmt.Sprintf("AP-%d", i%3)
		seq[serial]++
		mac := dot11.MAC{0x02, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
		out = append(out, &telemetry.Report{
			Serial: serial,
			SeqNo:  seq[serial],
			Clients: []telemetry.ClientRecord{{
				MAC:  mac,
				Band: dot11.Band5,
				Apps: []telemetry.AppUsageRecord{{App: "Netflix", UpBytes: uint64(i), DownBytes: uint64(i) * 10, Flows: 1}},
			}},
		})
	}
	return out
}

// controlDigest ingests reports into a plain in-memory store and
// returns its canonical digest — the ground truth a recovered durable
// store must match exactly.
func controlDigest(reports []*telemetry.Report) string {
	s := NewStore()
	for _, r := range reports {
		s.Ingest(r)
	}
	return s.Digest()
}

func mustOpenDurable(t *testing.T, dir string, o DurableOptions) (*DurableStore, RecoveryStats) {
	t.Helper()
	d, stats, err := OpenDurable(dir, o)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d, stats
}

func TestDurableEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	d, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d.Close()
	if stats.CheckpointLSN != 0 || stats.Replayed != 0 || stats.Fallbacks != 0 {
		t.Fatalf("fresh dir recovery stats = %+v, want all zero", stats)
	}
	if d.NumClients() != 0 {
		t.Fatal("fresh durable store not empty")
	}
}

func TestDurableReplayMatchesControl(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(90)
	want := controlDigest(reports)

	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	// Mix single and batched ingests, checkpoint midway so recovery
	// exercises checkpoint + replay together.
	for i := 0; i < len(reports); i += 10 {
		if err := d.IngestBatch(reports[i:i+10], nil); err != nil {
			t.Fatal(err)
		}
		if i == 40 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if d.Digest() != want {
		t.Fatal("live durable digest diverged from control")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if stats.CheckpointLSN == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", stats)
	}
	if stats.Replayed == 0 {
		t.Fatalf("recovery replayed nothing: %+v", stats)
	}
	if stats.BadRecords != 0 {
		t.Fatalf("recovery hit undecodable records: %+v", stats)
	}
	if got := d2.Digest(); got != want {
		t.Fatalf("recovered digest != control\n got %s\nwant %s", got, want)
	}
}

// TestDurableTornTailOnly covers a WAL whose only content beyond the
// header is a torn record: recovery must come up empty-but-healthy.
func TestDurableTornTailOnly(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(1)
	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.IngestBatch(reports, nil); err != nil {
		t.Fatal(err)
	}
	d.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	fi, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if stats.Replayed != 0 || stats.TornBytes == 0 {
		t.Fatalf("torn-tail-only recovery stats = %+v", stats)
	}
	if d2.NumClients() != 0 {
		t.Fatal("torn record was ingested")
	}
	// The torn record was never acked, so in production the device
	// redelivers it; here we just append it again and recover once more.
	if err := d2.IngestBatch(reports, nil); err != nil {
		t.Fatal(err)
	}
	want := controlDigest(reports)
	d2.Close()
	d3, _ := mustOpenDurable(t, dir, DurableOptions{})
	defer d3.Close()
	if d3.Digest() != want {
		t.Fatal("redelivery after torn tail did not converge to control")
	}
}

// TestDurableCheckpointNewerThanWAL: checkpoint covers everything and
// the WAL has been truncated past its end — replay must be a no-op,
// not an error.
func TestDurableCheckpointNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(30)
	want := controlDigest(reports)

	d, _ := mustOpenDurable(t, dir, DurableOptions{KeepCheckpoints: 1})
	if err := d.IngestBatch(reports, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, stats := mustOpenDurable(t, dir, DurableOptions{KeepCheckpoints: 1})
	defer d2.Close()
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d records the checkpoint already covers", stats.Replayed)
	}
	if d2.Digest() != want {
		t.Fatal("checkpoint-only recovery diverged from control")
	}
}

// TestDurableReplayIdempotent: recover, recover again without any new
// writes — digests identical, no double-counting.
func TestDurableReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(45)
	want := controlDigest(reports)

	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.IngestBatch(reports[:20], nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.IngestBatch(reports[20:], nil); err != nil {
		t.Fatal(err)
	}
	d.Close()

	for pass := 1; pass <= 3; pass++ {
		d2, _ := mustOpenDurable(t, dir, DurableOptions{})
		if got := d2.Digest(); got != want {
			t.Fatalf("pass %d digest diverged", pass)
		}
		d2.Close() // no checkpoint, no writes: next pass replays the same WAL
	}
}

// TestDurableCheckpointFallback corrupts the newest checkpoint and
// proves recovery falls back one generation and still reaches the
// exact control digest via WAL replay.
func TestDurableCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(60)
	want := controlDigest(reports)

	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.IngestBatch(reports[:20], nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // generation 1
		t.Fatal(err)
	}
	if err := d.IngestBatch(reports[20:40], nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // generation 2 (newest)
		t.Fatal(err)
	}
	if err := d.IngestBatch(reports[40:], nil); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Smash the newest checkpoint.
	ckpts, _ := filepath.Glob(filepath.Join(dir, checkpointGlob))
	if len(ckpts) != 2 {
		t.Fatalf("checkpoints on disk: %v", ckpts)
	}
	newest := ckpts[len(ckpts)-1]
	if err := os.WriteFile(newest, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (stats %+v)", stats.Fallbacks, stats)
	}
	if got := d2.Digest(); got != want {
		t.Fatal("fallback recovery diverged from control")
	}
}

// TestDurableAllCheckpointsCorrupt: both generations bad — recovery
// starts from an empty store and replays the full WAL.
func TestDurableAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(30)
	want := controlDigest(reports)

	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.IngestBatch(reports, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	ckpts, _ := filepath.Glob(filepath.Join(dir, checkpointGlob))
	for _, c := range ckpts {
		if err := os.WriteFile(c, []byte{0x00}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// WAL still holds everything below the (now useless) checkpoint?
	// Only if truncation kept it — KeepCheckpoints=2 truncates below the
	// OLDEST kept generation, and with a single checkpoint taken nothing
	// was truncated. Full replay must reconstruct the control state.
	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if stats.Fallbacks == 0 || stats.CheckpointLSN != 0 {
		t.Fatalf("stats = %+v, want exhausted fallbacks and no checkpoint", stats)
	}
	if d2.Digest() != want {
		t.Fatal("checkpoint-less replay diverged from control")
	}
}

// TestDurableCrashPlanSeeds is the in-process half of the kill
// harness: a seeded tear strikes a random append, the batch fails (so
// in production it would not be acked), and recovery yields exactly
// the acked prefix — compare against a control fed the same prefix.
func TestDurableCrashPlanSeeds(t *testing.T) {
	const horizon = 40
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			reports := durableReports(horizon)
			plan := wal.NewCrashPlan(seed, horizon)
			d, _ := mustOpenDurable(t, dir, DurableOptions{WAL: wal.Options{Crash: plan}})

			acked := 0
			for _, r := range reports {
				if err := d.IngestBatch([]*telemetry.Report{r}, nil); err != nil {
					break // crashed mid-append: this report was NOT acked
				}
				acked++
			}
			if fired, at := plan.Fired(); !fired || at != acked {
				t.Fatalf("plan fired=%t at=%d, acked=%d", fired, at, acked)
			}
			// Degraded after the write failure: refuses further acks.
			if !d.Degraded() {
				t.Fatal("store not degraded after WAL crash")
			}
			if err := d.IngestBatch(reports[acked:acked+1], nil); err == nil {
				t.Fatal("degraded store accepted a batch")
			}

			d2, _ := mustOpenDurable(t, dir, DurableOptions{})
			defer d2.Close()
			if got, want := d2.Digest(), controlDigest(reports[:acked]); got != want {
				t.Fatalf("recovered digest != acked-prefix control (acked=%d)", acked)
			}
		})
	}
}

// TestDurableIgnoresCheckpointTempHusk: a SIGKILL inside SaveFile
// leaves "checkpoint-XXX.gob.tmp-NNN" behind; recovery must neither
// mistake it for a generation (Sscanf tolerates trailing input) nor
// leave it on disk.
func TestDurableIgnoresCheckpointTempHusk(t *testing.T) {
	dir := t.TempDir()
	reports := durableReports(20)
	d, _ := mustOpenDurable(t, dir, DurableOptions{})
	if err := d.IngestBatch(reports, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	husk := filepath.Join(dir, checkpointName(9999)+".tmp-1234")
	if err := os.WriteFile(husk, []byte("partial snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, stats := mustOpenDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if stats.Fallbacks != 0 {
		t.Fatalf("temp husk caused a fallback: %+v", stats)
	}
	if d2.Digest() != controlDigest(reports) {
		t.Fatal("recovery diverged with husk present")
	}
	if _, err := os.Stat(husk); !os.IsNotExist(err) {
		t.Fatal("checkpoint temp husk not swept at recovery")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")

	s := NewStore()
	s.Ingest(durableReports(5)[0])
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// First write: file exists, no temp residue.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory after SaveFile: %v", ents)
	}

	// Overwrite with different content; a failure mid-write must leave
	// the original intact, which atomic rename guarantees — here we just
	// verify the happy-path replacement is complete and loadable.
	s.Ingest(durableReports(10)[9])
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Digest() != s.Digest() {
		t.Fatal("reloaded snapshot digest mismatch")
	}
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}

	// Unwritable directory: error out, and do not clobber the existing
	// snapshot elsewhere.
	if err := s.SaveFile(filepath.Join(dir, "no-such-subdir", "x.gob")); err == nil {
		t.Fatal("SaveFile into missing directory succeeded")
	}
}

func TestDigestStability(t *testing.T) {
	reports := durableReports(50)
	want := controlDigest(reports)

	// Shard-count independence.
	s := NewStoreShards(16)
	for _, r := range reports {
		s.Ingest(r)
	}
	if s.Digest() != want {
		t.Fatal("digest depends on shard count")
	}

	// Cross-serial interleaving independence: ingest grouped by serial
	// (per-serial seqno order preserved — the watermark dedup requires
	// it) with each report redelivered once. Same end state.
	s2 := NewStore()
	for ap := 0; ap < 3; ap++ {
		serial := fmt.Sprintf("AP-%d", ap)
		for _, r := range reports {
			if r.Serial != serial {
				continue
			}
			s2.Ingest(r)
			s2.Ingest(r) // redelivery, absorbed by seqno watermark
		}
	}
	if s2.Digest() != want {
		t.Fatal("digest not stable under interleaving/redelivery")
	}
}
