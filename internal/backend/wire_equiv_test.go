package backend

import (
	"net"
	"testing"

	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

// seedReports builds the deterministic report stream one equivalence
// arm harvests: four APs, ten reports each, with seed-varied counters,
// RSSI, and neighbor lists layered over the steady-state benchReport
// shape. Every arm for a given seed rebuilds the identical stream, so
// any digest divergence is the wire format's fault, not the input's.
func seedReports(seed uint64) []*telemetry.Report {
	src := rng.New(seed).Split("wire-equiv")
	var out []*telemetry.Report
	for ap := 0; ap < 4; ap++ {
		for seq := uint64(1); seq <= 10; seq++ {
			r := benchReport(ap, seq)
			r.Timestamp += src.Uint64() % 250
			for c := range r.Clients {
				r.Clients[c].RSSIdB = int32(5 + src.IntN(40))
				for a := range r.Clients[c].Apps {
					r.Clients[c].Apps[a].DownBytes += src.Uint64() % 1e6
					r.Clients[c].Apps[a].UpBytes += src.Uint64() % 1e4
				}
			}
			r.Neighbors = r.Neighbors[:1+src.IntN(len(r.Neighbors))]
			for n := range r.Neighbors {
				r.Neighbors[n].RSSIdB = -int32(30 + src.IntN(60))
			}
			out = append(out, r)
		}
	}
	return out
}

// harvestDigest runs one arm: a fresh agent with the seed's report
// stream, polled to empty over net.Pipe into a fresh store, returning
// the store digest. agentWire is what the agent announces; pollerWire
// what the backend asks NegotiateWire for. legacyReject first accepts
// and immediately closes one session without polling — what a
// pre-batch backend's hello rejection looks like to the agent — so the
// harvest that follows exercises the sticky v1 fallback path.
func harvestDigest(t *testing.T, agentWire, pollerWire byte, legacyReject bool, reports []*telemetry.Report) (string, byte) {
	t.Helper()
	key := make([]byte, 32)
	agent := telemetry.NewAgent("Q2EQ-0001", key)
	agent.Wire = agentWire
	for _, r := range reports {
		agent.Enqueue(r)
	}

	if legacyReject {
		c1, c2 := net.Pipe()
		errc := make(chan error, 1)
		go func() { errc <- agent.ServeConn(c1) }()
		p0, err := telemetry.AcceptPoller(c2, key)
		if err != nil {
			t.Fatalf("legacy accept: %v", err)
		}
		if p0.AgentWire() != telemetry.WireV2 {
			t.Fatalf("legacy session saw wire %d, want v2 hello", p0.AgentWire())
		}
		p0.Close()
		<-errc
	}

	c1, c2 := net.Pipe()
	go agent.ServeConn(c1)
	p, err := telemetry.AcceptPoller(c2, key)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer p.Close()
	wire := p.NegotiateWire(pollerWire)
	s := NewStore()
	p.BeforeAck = func(rs []*telemetry.Report, _ [][]byte) error {
		for _, r := range rs {
			s.Ingest(r)
		}
		return nil
	}
	for got := 0; got < len(reports); {
		rs, err := p.Poll(7)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if len(rs) == 0 {
			t.Fatalf("harvest stalled at %d/%d reports", got, len(reports))
		}
		got += len(rs)
	}
	if ing, _ := s.Stats(); ing != len(reports) {
		t.Fatalf("ingested %d reports, want %d", ing, len(reports))
	}
	return s.Digest(), wire
}

// TestWireDigestEquivalence is the acceptance proof for wire v2: over
// ten seeds, a pure v1 harvest, a pure v2 harvest, and a mixed fleet
// (v2 agent falling back after a legacy backend rejected its hello)
// must land the backend store on byte-identical digests. The wire
// format may change how reports travel, never what arrives.
func TestWireDigestEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		v1, w1 := harvestDigest(t, telemetry.WireV1, telemetry.WireV1, false, seedReports(seed))
		v2, w2 := harvestDigest(t, telemetry.WireV2, telemetry.WireV2, false, seedReports(seed))
		mixed, wm := harvestDigest(t, telemetry.WireV2, telemetry.WireV2, true, seedReports(seed))
		if w1 != telemetry.WireV1 || w2 != telemetry.WireV2 || wm != telemetry.WireV1 {
			t.Fatalf("seed %d: negotiated wires v1=%d v2=%d mixed=%d, want 1/2/1", seed, w1, w2, wm)
		}
		if v1 == "" {
			t.Fatalf("seed %d: empty digest", seed)
		}
		if v2 != v1 {
			t.Errorf("seed %d: v2 digest %s != v1 digest %s", seed, v2, v1)
		}
		if mixed != v1 {
			t.Errorf("seed %d: mixed-fallback digest %s != v1 digest %s", seed, mixed, v1)
		}
	}
}

// TestWireDigestEquivalenceOffline pins the same property on the
// offline pipeline knob: core.Config.WireVersion round-trips every
// simulated report through the selected codec, and the resulting study
// store must not care which one (see internal/core's usage tests for
// the table-level version of this).
func TestWireDigestEquivalenceOffline(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		var digests [2]string
		for i, wire := range []byte{telemetry.WireV1, telemetry.WireV2} {
			reports := seedReports(seed)
			s := NewStore()
			if wire >= telemetry.WireV2 {
				be := telemetry.NewBatchEncoder(0)
				for _, r := range reports {
					if !be.Add(r) {
						t.Fatalf("unbounded encoder declined report")
					}
				}
				f, err := telemetry.DecodeBatchFrame(be.Finish(0, 0, nil))
				if err != nil {
					t.Fatalf("decode batch: %v", err)
				}
				for _, r := range f.Reports {
					s.Ingest(r)
				}
			} else {
				for _, r := range reports {
					rr, err := telemetry.UnmarshalReport(r.Marshal())
					if err != nil {
						t.Fatalf("unmarshal: %v", err)
					}
					s.Ingest(rr)
				}
			}
			digests[i] = s.Digest()
		}
		if digests[0] != digests[1] {
			t.Errorf("seed %d: offline v1 digest %s != v2 digest %s", seed, digests[0], digests[1])
		}
	}
}
