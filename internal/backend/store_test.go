package backend

import (
	"bytes"
	"sync"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

var (
	clientA = dot11.MAC{0xac, 0xbc, 0x32, 0, 0, 1}
	peerB   = dot11.MAC{0x00, 0x18, 0x0a, 0, 0, 2}
)

func usageReport(serial string, seq uint64, mac dot11.MAC, app string, up, down uint64) *telemetry.Report {
	return &telemetry.Report{
		Serial: serial,
		SeqNo:  seq,
		Clients: []telemetry.ClientRecord{{
			MAC:  mac,
			Band: dot11.Band24,
			Apps: []telemetry.AppUsageRecord{{App: app, UpBytes: up, DownBytes: down, Flows: 1}},
		}},
	}
}

func TestIngestAggregatesAcrossAPs(t *testing.T) {
	s := NewStore()
	// The same client roams across two APs; usage must merge by MAC
	// (Section 2.3).
	s.Ingest(usageReport("AP-1", 1, clientA, "Netflix", 100, 1000))
	s.Ingest(usageReport("AP-2", 1, clientA, "Netflix", 50, 500))
	if s.NumClients() != 1 {
		t.Fatalf("clients = %d, want 1 (roaming aggregation)", s.NumClients())
	}
	c := s.Clients()[0]
	u := c.Apps["Netflix"]
	if u.UpBytes != 150 || u.DownBytes != 1500 || u.Flows != 2 {
		t.Errorf("merged usage = %+v", u)
	}
	if len(c.APs) != 2 {
		t.Errorf("AP count = %d", len(c.APs))
	}
	if c.Total() != 1650 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestIngestDeduplicatesBySeq(t *testing.T) {
	s := NewStore()
	r := usageReport("AP-1", 5, clientA, "YouTube", 10, 100)
	s.Ingest(r)
	s.Ingest(r) // redelivered after a poller crash
	ing, dup := s.Stats()
	if ing != 1 || dup != 1 {
		t.Errorf("ingests/dupes = %d/%d", ing, dup)
	}
	u := s.Clients()[0].Apps["YouTube"]
	if u.DownBytes != 100 {
		t.Errorf("double-counted: %d", u.DownBytes)
	}
	// A later seq from the same device is accepted.
	s.Ingest(usageReport("AP-1", 6, clientA, "YouTube", 10, 100))
	if u := s.Clients()[0].Apps["YouTube"]; u.DownBytes != 200 {
		t.Errorf("later seq lost: %d", u.DownBytes)
	}
}

func TestIngestSeqZeroAlwaysAccepted(t *testing.T) {
	s := NewStore()
	s.Ingest(usageReport("AP-1", 0, clientA, "X", 1, 1))
	s.Ingest(usageReport("AP-1", 0, clientA, "X", 1, 1))
	ing, _ := s.Stats()
	if ing != 2 {
		t.Errorf("unsequenced ingests = %d", ing)
	}
}

func TestClientOSInference(t *testing.T) {
	s := NewStore()
	fp, _ := apps.DHCPFingerprintFor(apps.OSiOS)
	r := &telemetry.Report{
		Serial: "AP-1", SeqNo: 1,
		Clients: []telemetry.ClientRecord{{
			MAC:              clientA,
			DHCPFingerprints: [][]byte{fp},
			UserAgents:       []string{apps.UserAgentFor(apps.OSiOS)},
		}},
	}
	s.Ingest(r)
	if got := s.Clients()[0].OS(); got != apps.OSiOS {
		t.Errorf("OS = %v", got)
	}
}

func TestLinkSeriesAccumulation(t *testing.T) {
	s := NewStore()
	for i := uint64(1); i <= 3; i++ {
		s.Ingest(&telemetry.Report{
			Serial: "AP-1", SeqNo: i,
			LinkWindows: []telemetry.LinkWindow{
				{Peer: peerB, Band: dot11.Band24, Sent: 20, Delivered: uint32(10 + i)},
			},
		})
	}
	links := s.Links()
	if len(links) != 1 {
		t.Fatalf("links = %d", len(links))
	}
	l := links[0]
	if len(l.Sent) != 3 {
		t.Fatalf("windows = %d", len(l.Sent))
	}
	if got := l.MeanDelivery(); got != 36.0/60.0 {
		t.Errorf("mean delivery = %v", got)
	}
	ratios := l.Ratios()
	if ratios[0] != 11.0/20 || ratios[2] != 13.0/20 {
		t.Errorf("ratios = %v", ratios)
	}
}

func TestRadioAndScanSeries(t *testing.T) {
	s := NewStore()
	s.Ingest(&telemetry.Report{
		Serial: "AP-9", SeqNo: 1, Timestamp: 300,
		Radios: []telemetry.RadioStats{
			{Band: dot11.Band24, Channel: 6, CycleUS: 1000000, RxClearUS: 250000, Rx11US: 200000, TxUS: 5000},
			{Band: dot11.Band24, Channel: 6, CycleUS: 0}, // ignored
		},
		ScanSamples: []telemetry.ScanSample{
			{Band: dot11.Band5, Channel: 36, BusyPermille: 50, DecodablePermille: 45},
		},
	})
	rs := s.RadioSeries("AP-9")
	if len(rs) != 1 {
		t.Fatalf("radio samples = %d", len(rs))
	}
	if rs[0].Busy != 0.25 || rs[0].Decodable != 0.2 {
		t.Errorf("sample = %+v", rs[0])
	}
	sc := s.ScanSeries("AP-9")
	if len(sc) != 1 || sc[0].Busy != 0.05 {
		t.Errorf("scan = %+v", sc)
	}
	if got := s.RadioSerials(); len(got) != 1 || got[0] != "AP-9" {
		t.Errorf("serials = %v", got)
	}
	if got := s.ScanSerials(); len(got) != 1 {
		t.Errorf("scan serials = %v", got)
	}
}

func TestNeighborDeduplication(t *testing.T) {
	s := NewStore()
	n := telemetry.NeighborRecord{
		BSSID: peerB, SSID: "corp", Band: dot11.Band24, Channel: 1, RSSIdB: 20,
	}
	s.Ingest(&telemetry.Report{Serial: "AP-1", SeqNo: 1, Neighbors: []telemetry.NeighborRecord{n}})
	n.RSSIdB = 25 // later observation updates in place
	s.Ingest(&telemetry.Report{Serial: "AP-1", SeqNo: 2, Neighbors: []telemetry.NeighborRecord{n}})
	got := s.Neighbors("AP-1")
	if len(got) != 1 {
		t.Fatalf("neighbors = %d", len(got))
	}
	if got[0].RSSIdB != 25 {
		t.Errorf("neighbor not updated: %+v", got[0])
	}
	if len(s.NeighborSerials()) != 1 {
		t.Error("neighbor serials wrong")
	}
}

func TestStoreConcurrentIngest(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				mac := dot11.MAC{byte(g), 0, 0, 0, 0, 1}
				s.Ingest(usageReport("AP-"+string(rune('A'+g)), uint64(i), mac, "Facebook", 1, 10))
			}
		}(g)
	}
	wg.Wait()
	if s.NumClients() != 8 {
		t.Errorf("clients = %d", s.NumClients())
	}
	for _, c := range s.Clients() {
		if c.Apps["Facebook"].DownBytes != 1000 {
			t.Errorf("client %v bytes = %d", c.MAC, c.Apps["Facebook"].DownBytes)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Ingest(usageReport("AP-1", 1, clientA, "Netflix", 100, 1000))
	s.Ingest(&telemetry.Report{
		Serial: "AP-1", SeqNo: 2,
		LinkWindows: []telemetry.LinkWindow{{Peer: peerB, Band: dot11.Band5, Sent: 20, Delivered: 20}},
		Neighbors:   []telemetry.NeighborRecord{{BSSID: peerB, SSID: "x", Band: dot11.Band24, Channel: 6}},
	})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumClients() != 1 {
		t.Errorf("loaded clients = %d", s2.NumClients())
	}
	if len(s2.Links()) != 1 {
		t.Errorf("loaded links = %d", len(s2.Links()))
	}
	if len(s2.Neighbors("AP-1")) != 1 {
		t.Errorf("loaded neighbors = %d", len(s2.Neighbors("AP-1")))
	}
	// Dedup state survives: replaying seq 2 is dropped.
	s2.Ingest(&telemetry.Report{Serial: "AP-1", SeqNo: 2})
	if _, dup := s2.Stats(); dup != 1 {
		t.Error("dedup state lost across save/load")
	}
}

func TestLoadGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestAnonymizerStability(t *testing.T) {
	a := NewAnonymizer([]byte("secret"))
	m1 := a.MAC(clientA)
	m2 := a.MAC(clientA)
	if m1 != m2 {
		t.Error("pseudonym not stable")
	}
	if m1 == a.MAC(peerB) {
		t.Error("distinct MACs collide")
	}
	b := NewAnonymizer([]byte("other-secret"))
	if m1 == b.MAC(clientA) {
		t.Error("pseudonym independent of key")
	}
	if a.SSID("corp") == a.SSID("guest") {
		t.Error("SSIDs collide")
	}
	if a.Serial("Q2XX-1") == "" {
		t.Error("empty serial pseudonym")
	}
	// The raw identifier must not appear in the pseudonym.
	if bytes.Contains([]byte(m1), clientA[:]) {
		t.Error("MAC bytes leak into pseudonym")
	}
}

func BenchmarkIngest(b *testing.B) {
	s := NewStore()
	r := usageReport("AP-1", 0, clientA, "Netflix", 100, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ingest(r)
	}
}
