// Package backend implements the Meraki backend's data layer (paper
// Section 2): ingestion of device reports with (serial, seqno)
// deduplication, aggregation of usage by client MAC across access
// points (to account for roaming), per-device time series of radio
// counters, neighbor tables, link-probe windows and scan samples, HMAC
// anonymization of identifiers for analysis exports, and gob snapshot
// persistence.
//
// The store is lock-striped: client aggregates shard by MAC and
// device-keyed series shard by serial, so concurrent harvest workers
// ingesting reports for different devices rarely contend. Every read
// accessor returns results in an explicitly sorted order, so downstream
// analyses are independent of both map iteration order and the shard
// count.
package backend
