package backend

import (
	"sort"
	"strconv"
	"strings"
)

// NetworkFunc maps a device serial to the network it belongs to. The
// rebalance subsystem is network-granular — a network's devices and
// clients move between shards as one unit, matching how the cluster
// map routes by network ID — so every migration-facing Store method
// takes one of these instead of hard-coding a serial convention.
type NetworkFunc func(serial string) (id uint64, ok bool)

// NetworkOfSerial is the default NetworkFunc: it reads the network
// number out of a Meraki-style dash-separated serial ("XXXX-NNNN-NNNN"),
// whose middle field is the network ordinal in every fleet this repo
// synthesizes (synth.GenerateFleet, the cluster tests, the smoke
// scripts). Serials that don't follow the convention report ok=false
// and are then never extracted, deleted, or refused — unparseable data
// stays put, which is the safe failure mode for a migration.
func NetworkOfSerial(serial string) (uint64, bool) {
	parts := strings.Split(serial, "-")
	if len(parts) < 3 || parts[1] == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// networkOfClient attributes a client aggregate to a network via the
// APs that reported it. Client populations are disjoint per network
// (a MAC associates within one customer network), so any reporting AP
// decides; the lowest parseable serial is used so attribution is
// deterministic regardless of map order.
func networkOfClient(c *ClientAggregate, netOf NetworkFunc) (uint64, bool) {
	serials := make([]string, 0, len(c.APs))
	for s := range c.APs {
		serials = append(serials, s)
	}
	sort.Strings(serials)
	for _, s := range serials {
		if id, ok := netOf(s); ok {
			return id, true
		}
	}
	return 0, false
}
