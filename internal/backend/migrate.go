package backend

import (
	"fmt"
	"io"
	"sort"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// This file is the store half of live shard rebalancing: extracting a
// per-network slice out of a source shard, deleting it after a
// verified cutover, and the two pieces of bookkeeping that make the
// dance crash-safe — a "parted" network set (the shard refuses to ack
// new reports for networks mid-migration, so devices requeue) and an
// "absorbed" token set (a migration slice is applied at most once per
// token, so WAL replay and coordinator retries are idempotent). The
// durable WAL records for these operations live in durable.go.

// Networks lists every network ID the store holds data for, sorted.
// Device-keyed series attribute by serial; client aggregates attribute
// through the APs that reported them. Serials netOf cannot parse are
// skipped — they belong to no network and never migrate.
func (s *Store) Networks(netOf NetworkFunc) []uint64 {
	set := make(map[uint64]bool)
	add := func(serial string) {
		if id, ok := netOf(serial); ok {
			set[id] = true
		}
	}
	for _, ds := range s.deviceShards {
		ds.mu.Lock()
		for serial := range ds.seen {
			add(serial)
		}
		for serial := range ds.radio {
			add(serial)
		}
		for serial := range ds.scans {
			add(serial)
		}
		for serial := range ds.neighbors {
			add(serial)
		}
		for serial := range ds.crashes {
			add(serial)
		}
		for k := range ds.links {
			add(k.From)
		}
		ds.mu.Unlock()
	}
	for _, cs := range s.clientShards {
		cs.mu.Lock()
		for _, c := range cs.clients {
			if id, ok := networkOfClient(c, netOf); ok {
				set[id] = true
			}
		}
		cs.mu.Unlock()
	}
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExtractNetworks deep-copies everything the store holds for the given
// networks into a fresh store — the migration slice a source shard
// exports. Every stripe lock is held for the walk (same contract as
// Save), so the slice is a consistent point-in-time view even on a
// live daemon, and the copies share no memory with the live store: the
// caller can encode the slice after the locks drop while ingestion
// resumes. Migration bookkeeping is data, not payload — the slice
// carries none of it.
func (s *Store) ExtractNetworks(ids map[uint64]bool, netOf NetworkFunc) *Store {
	out := NewStoreShards(s.NumShards())
	in := func(serial string) bool {
		id, ok := netOf(serial)
		return ok && ids[id]
	}
	defer s.lockAll()()
	for _, ds := range s.deviceShards {
		for serial, seq := range ds.seen {
			if in(serial) {
				out.deviceShardFor(serial).seen[serial] = seq
			}
		}
		for serial, v := range ds.radio {
			if in(serial) {
				out.deviceShardFor(serial).radio[serial] = append([]RadioSample(nil), v...)
			}
		}
		for serial, v := range ds.scans {
			if in(serial) {
				out.deviceShardFor(serial).scans[serial] = append([]ScanPoint(nil), v...)
			}
		}
		for serial, v := range ds.crashes {
			if in(serial) {
				out.deviceShardFor(serial).crashes[serial] = append([]telemetry.CrashRecord(nil), v...)
			}
		}
		for serial, m := range ds.neighbors {
			if in(serial) {
				cp := make(map[dot11.BSSID]NeighborEntry, len(m))
				for b, e := range m {
					cp[b] = e
				}
				out.deviceShardFor(serial).neighbors[serial] = cp
			}
		}
		for k, l := range ds.links {
			if in(k.From) {
				out.deviceShardFor(k.From).links[k] = &LinkSeries{
					Key:     k,
					Sent:    append([]uint32(nil), l.Sent...),
					Deliver: append([]uint32(nil), l.Deliver...),
				}
			}
		}
	}
	for _, cs := range s.clientShards {
		for mac, c := range cs.clients {
			if id, ok := networkOfClient(c, netOf); ok && ids[id] {
				out.clientShardFor(mac).clients[mac] = copyClient(c)
			}
		}
	}
	return out
}

// copyClient deep-copies one aggregate for ExtractNetworks.
func copyClient(c *ClientAggregate) *ClientAggregate {
	cp := &ClientAggregate{
		MAC: c.MAC, Band: c.Band, RSSIdB: c.RSSIdB, Caps: c.Caps,
		Apps:       make(map[string]*telemetry.AppUsageRecord, len(c.Apps)),
		UserAgents: append([]string(nil), c.UserAgents...),
		APs:        make(map[string]bool, len(c.APs)),
	}
	for name, a := range c.Apps {
		dup := *a
		cp.Apps[name] = &dup
	}
	for _, fp := range c.DHCPFingerprints {
		cp.DHCPFingerprints = append(cp.DHCPFingerprints, append([]byte(nil), fp...))
	}
	for serial := range c.APs {
		cp.APs[serial] = true
	}
	return cp
}

// DeleteNetworks removes everything the store holds for the given
// networks, under the full stripe lock set, and reports how many
// networks actually had data and how many keyed entries went away.
// Dedup high-water marks are deleted too: after a cutover the network
// lives elsewhere, and if it ever migrates back its slice carries the
// watermark with it.
func (s *Store) DeleteNetworks(ids map[uint64]bool, netOf NetworkFunc) (networks, entries int) {
	removed := make(map[uint64]bool)
	in := func(serial string) (uint64, bool) {
		id, ok := netOf(serial)
		return id, ok && ids[id]
	}
	defer s.lockAll()()
	for _, ds := range s.deviceShards {
		for serial := range ds.seen {
			if id, ok := in(serial); ok {
				delete(ds.seen, serial)
				removed[id] = true
				entries++
			}
		}
		for serial := range ds.radio {
			if id, ok := in(serial); ok {
				delete(ds.radio, serial)
				removed[id] = true
				entries++
			}
		}
		for serial := range ds.scans {
			if id, ok := in(serial); ok {
				delete(ds.scans, serial)
				removed[id] = true
				entries++
			}
		}
		for serial := range ds.crashes {
			if id, ok := in(serial); ok {
				delete(ds.crashes, serial)
				removed[id] = true
				entries++
			}
		}
		for serial := range ds.neighbors {
			if id, ok := in(serial); ok {
				delete(ds.neighbors, serial)
				removed[id] = true
				entries++
			}
		}
		for k := range ds.links {
			if id, ok := in(k.From); ok {
				delete(ds.links, k)
				removed[id] = true
				entries++
			}
		}
	}
	for _, cs := range s.clientShards {
		for mac, c := range cs.clients {
			if id, ok := networkOfClient(c, netOf); ok && ids[id] {
				delete(cs.clients, mac)
				removed[id] = true
				entries++
			}
		}
	}
	return len(removed), entries
}

// IDSet turns an ID list into the set form ExtractNetworks and
// DeleteNetworks take.
func IDSet(ids []uint64) map[uint64]bool {
	set := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// Part marks networks as mid-migration: IsParted turns true for each,
// and the daemon's harvest path refuses to ack their reports, so
// devices hold their queues until the networks' new home is serving.
func (s *Store) Part(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	s.migMu.Lock()
	if s.parted == nil {
		s.parted = make(map[uint64]bool)
	}
	for _, id := range ids {
		s.parted[id] = true
	}
	s.migMu.Unlock()
}

// Unpart clears the parted mark — the rollback half of Part.
func (s *Store) Unpart(ids []uint64) {
	s.migMu.Lock()
	for _, id := range ids {
		delete(s.parted, id)
	}
	s.migMu.Unlock()
}

// IsParted reports whether a network is currently refusing ingestion.
func (s *Store) IsParted(id uint64) bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.parted[id]
}

// PartedIDs lists the parted networks, sorted (status display, tests).
func (s *Store) PartedIDs() []uint64 {
	s.migMu.Lock()
	out := make([]uint64, 0, len(s.parted))
	for id := range s.parted {
		out = append(out, id)
	}
	s.migMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkAbsorbed records that a migration token's slice has been applied.
func (s *Store) MarkAbsorbed(token string) {
	s.migMu.Lock()
	if s.absorbed == nil {
		s.absorbed = make(map[string]bool)
	}
	s.absorbed[token] = true
	s.migMu.Unlock()
}

// HasAbsorbed reports whether a migration token was already applied.
func (s *Store) HasAbsorbed(token string) bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.absorbed[token]
}

// ClearAbsorbed forgets a token — Drop's inverse-of-Absorb half, so a
// rolled-back migration can be retried under the same token.
func (s *Store) ClearAbsorbed(token string) {
	s.migMu.Lock()
	delete(s.absorbed, token)
	s.migMu.Unlock()
}

// AbsorbedCount returns how many migration tokens the store remembers.
func (s *Store) AbsorbedCount() int {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return len(s.absorbed)
}

// Absorb applies one migration slice on a destination shard: anything
// the store already holds for the moved networks is deleted, the gob
// snapshot merges in through the deterministic MergeSnapshot path, the
// networks are un-parted (receiving a slice makes this shard their
// home), and the token is marked done. A token that was already
// absorbed is a no-op returning false — that single check is what lets
// the coordinator retry blindly and lets WAL replay re-apply records
// without double-merging. Delete-before-merge makes absorption a
// replacement, so re-running an interrupted migration under a fresh
// token converges instead of duplicating series.
func (s *Store) Absorb(token string, ids []uint64, slice io.Reader, netOf NetworkFunc) (bool, error) {
	s.absorbMu.Lock()
	defer s.absorbMu.Unlock()
	if s.HasAbsorbed(token) {
		return false, nil
	}
	s.DeleteNetworks(IDSet(ids), netOf)
	if err := s.MergeSnapshot(slice); err != nil {
		return false, fmt.Errorf("backend: absorb %s: %w", token, err)
	}
	s.Unpart(ids)
	s.MarkAbsorbed(token)
	return true, nil
}

// Drop removes the given networks and forgets the token that absorbed
// them — on a source shard after a verified cutover (token never
// absorbed there, so only the delete matters), or on a destination
// rolling back a failed migration (where clearing the token re-arms a
// retry). Returns DeleteNetworks' counts.
func (s *Store) Drop(token string, ids []uint64, netOf NetworkFunc) (networks, entries int) {
	networks, entries = s.DeleteNetworks(IDSet(ids), netOf)
	s.ClearAbsorbed(token)
	return networks, entries
}
