package backend

import (
	"bytes"
	"strings"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/obs"
	"wlanscale/internal/telemetry"
)

// TestStoreEnableObs checks the counters EnableObs folds into a
// registry: totals, per-stripe ingest routing, and the snapshot-encode
// histogram.
func TestStoreEnableObs(t *testing.T) {
	s := NewStoreShards(4)
	reg := obs.NewRegistry()
	s.EnableObs(reg)

	for i := 0; i < 10; i++ {
		s.Ingest(&telemetry.Report{
			Serial: "Q2AA-000" + string(rune('0'+i)),
			SeqNo:  1,
			Clients: []telemetry.ClientRecord{{
				MAC: dot11.MAC{0xac, 0, 0, 0, 0, byte(i)}, Band: dot11.Band24,
			}},
		})
	}
	// A duplicate: same serial, same seq.
	s.Ingest(&telemetry.Report{Serial: "Q2AA-0000", SeqNo: 1})

	read := func(name string) int64 {
		for _, sm := range reg.Snapshot() {
			if sm.Name == name {
				return sm.Value
			}
		}
		t.Fatalf("metric %q not in registry", name)
		return 0
	}
	if got := read("store.ingests"); got != 10 {
		t.Fatalf("store.ingests = %d, want 10", got)
	}
	if got := read("store.dupes"); got != 1 {
		t.Fatalf("store.dupes = %d, want 1", got)
	}
	if got := read("store.clients"); got != 10 {
		t.Fatalf("store.clients = %d, want 10", got)
	}
	if got := read("store.shards"); got != 4 {
		t.Fatalf("store.shards = %d, want 4", got)
	}
	var stripes int64
	for _, sm := range reg.Snapshot() {
		if strings.HasPrefix(sm.Name, "store.stripe.") {
			stripes += sm.Value
		}
	}
	if stripes != 10 {
		t.Fatalf("stripe ingest counts sum to %d, want 10", stripes)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("store.save_us", nil).Count(); got != 1 {
		t.Fatalf("store.save_us count = %d, want 1", got)
	}

	// Load resets the stripe counters along with the totals.
	if err := s.Load(&buf); err != nil {
		t.Fatal(err)
	}
	var after int64
	for _, sm := range reg.Snapshot() {
		if strings.HasPrefix(sm.Name, "store.stripe.") {
			after += sm.Value
		}
	}
	if after != 0 {
		t.Fatalf("stripe ingest counts after Load sum to %d, want 0", after)
	}
}
