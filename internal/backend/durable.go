package backend

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"wlanscale/internal/obs"
	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

// DurableOptions tunes OpenDurable. The zero value is usable:
// DefaultShards stripes, default WAL options, two checkpoint
// generations kept.
type DurableOptions struct {
	// Shards is the store stripe count; zero means DefaultShards.
	Shards int
	// WAL configures the write-ahead log (segment size, fsync policy,
	// crash injection for tests).
	WAL wal.Options
	// KeepCheckpoints is how many checkpoint generations to retain;
	// recovery falls back one generation when the newest is corrupt.
	// Zero means 2.
	KeepCheckpoints int
	// NetworkOf maps serials to network IDs for migration records
	// (absorb/drop replay must resolve the same networks the original
	// operation did). Nil means NetworkOfSerial.
	NetworkOf NetworkFunc
}

// RecoveryStats describes what OpenDurable found and rebuilt.
type RecoveryStats struct {
	// CheckpointLSN is the WAL position the restored checkpoint covers
	// (0 when no checkpoint loaded).
	CheckpointLSN wal.LSN
	// CheckpointFile is the checkpoint restored, "" when none.
	CheckpointFile string
	// Fallbacks counts corrupt checkpoint generations skipped before one
	// loaded (or all were exhausted).
	Fallbacks int
	// Replayed is how many WAL records were re-ingested; Skipped is how
	// many the checkpoint already covered; TornBytes is the torn tail
	// discarded from the final segment.
	Replayed  int
	Skipped   int
	TornBytes int64
	// BadRecords counts CRC-valid WAL payloads that failed report
	// decoding (should be zero; nonzero means a writer bug, not disk
	// damage).
	BadRecords int
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("checkpoint_lsn=%d fallbacks=%d replayed=%d skipped=%d torn_bytes=%d bad_records=%d",
		r.CheckpointLSN, r.Fallbacks, r.Replayed, r.Skipped, r.TornBytes, r.BadRecords)
}

// DurableStore is a Store whose ingests survive process death: every
// report's wire bytes are appended to a write-ahead log before the
// harvest path acknowledges them, and periodic checkpoints bound
// replay time. Recovery (OpenDurable) loads the newest valid
// checkpoint — falling back one generation on corruption — and
// replays the WAL above it through the ordinary Ingest path, so
// (serial, seqno) dedup absorbs the overlap between a checkpoint and
// the records that raced into it.
//
// When the WAL write path fails (disk full, I/O error) the store goes
// degraded: IngestBatch refuses further writes, so pollers stop
// acknowledging and devices queue — reports back up at the edge
// instead of being acked into a black hole. Queries keep serving the
// in-memory state.
type DurableStore struct {
	*Store

	dir   string
	log   *wal.Log
	keep  int
	netOf NetworkFunc

	// flight serializes checkpoint LSN capture against in-flight
	// batches: IngestBatch holds the read side across append+ingest, so
	// when Checkpoint briefly takes the write side, every record below
	// the captured LSN is already in the in-memory store (and therefore
	// in the snapshot about to be written).
	flight sync.RWMutex

	mu       sync.Mutex // serializes Checkpoint; guards ckptLSN
	ckptLSN  wal.LSN
	degraded atomic.Bool

	ckptDur          *obs.Histogram
	ckpts, ckptFails *obs.Counter
	walFails         *obs.Counter
}

// ErrDegraded is returned by IngestBatch once the WAL write path has
// failed; the daemon is read-only until restarted with a healthy disk.
var ErrDegraded = fmt.Errorf("backend: durable store is degraded (WAL write failed); refusing to ack")

const checkpointGlob = "checkpoint-*.gob"

func checkpointName(lsn wal.LSN) string { return fmt.Sprintf("checkpoint-%016x.gob", uint64(lsn)) }

func parseCheckpointName(name string) (wal.LSN, bool) {
	var v uint64
	if n, err := fmt.Sscanf(name, "checkpoint-%016x.gob", &v); n != 1 || err != nil {
		return 0, false
	}
	// Sscanf ignores trailing input, so reconstruct and compare: a
	// SaveFile temp husk ("checkpoint-...gob.tmp-123") left by a crash
	// mid-checkpoint must not be mistaken for a real generation.
	if name != checkpointName(wal.LSN(v)) {
		return 0, false
	}
	return wal.LSN(v), true
}

// listCheckpoints returns checkpoint LSNs in dir, descending (newest
// first).
func listCheckpoints(dir string) ([]wal.LSN, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []wal.LSN
	for _, e := range ents {
		if lsn, ok := parseCheckpointName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns, nil
}

// OpenDurable opens (or creates) a durable store rooted at dir:
// checkpoints and WAL segments live side by side in the one
// directory. Recovery order: newest checkpoint that loads cleanly,
// then WAL replay from its LSN, with the WAL's own torn-tail repair
// running first. A corrupt newest checkpoint falls back one
// generation — the WAL is only ever truncated below the oldest kept
// checkpoint, so the fallback generation still has every record it
// needs ahead of it.
func OpenDurable(dir string, o DurableOptions) (*DurableStore, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	keep := o.KeepCheckpoints
	if keep <= 0 {
		keep = 2
	}
	netOf := o.NetworkOf
	if netOf == nil {
		netOf = NetworkOfSerial
	}
	d := &DurableStore{Store: NewStoreShards(shards), dir: dir, keep: keep, netOf: netOf}

	// A crash inside SaveFile leaves a temp file the rename never
	// promoted; sweep such husks so they cannot accumulate.
	if husks, err := filepath.Glob(filepath.Join(dir, checkpointGlob+".tmp-*")); err == nil {
		for _, h := range husks {
			os.Remove(h)
		}
	}
	lsns, err := listCheckpoints(dir)
	if err != nil {
		return nil, stats, err
	}
	for _, lsn := range lsns {
		path := filepath.Join(dir, checkpointName(lsn))
		if err := d.Store.LoadFile(path); err != nil {
			// Corrupt or torn checkpoint: fall back a generation. The
			// store may hold a partial load; reset by rebuilding.
			log.Printf("backend: checkpoint %s unreadable (%v), falling back", filepath.Base(path), err)
			stats.Fallbacks++
			d.Store = NewStoreShards(shards)
			continue
		}
		d.ckptLSN = lsn
		stats.CheckpointLSN = lsn
		stats.CheckpointFile = path
		break
	}

	wlog, err := wal.Open(dir, o.WAL)
	if err != nil {
		return nil, stats, err
	}
	d.log = wlog
	rstats, err := wlog.Replay(d.ckptLSN, func(_ wal.LSN, payload []byte) error {
		// Three record shapes share the log: a v1 per-report record is
		// one pbwire-encoded report, a v2 record is a whole batch
		// payload (IngestBatchFrame), and a migration record carries a
		// rebalance operation (migrate.go). The leading byte
		// discriminates — a batch opens with its version byte (2),
		// migration records claim 0x03–0x06, and a pbwire tag is always
		// field<<3|type with field >= 1, so a report record can never
		// start below 0x08.
		if isMigrationRecord(payload) {
			if err := d.replayMigration(payload); err != nil {
				stats.BadRecords++
			}
			return nil
		}
		if len(payload) > 0 && payload[0] == telemetry.WireV2 {
			f, err := telemetry.DecodeBatchFrame(payload)
			if err != nil {
				stats.BadRecords++
				return nil
			}
			for _, r := range f.Reports {
				d.Store.Ingest(r)
			}
			return nil
		}
		r, err := telemetry.UnmarshalReport(payload)
		if err != nil {
			stats.BadRecords++
			return nil
		}
		d.Store.Ingest(r)
		return nil
	})
	if err != nil {
		wlog.Close()
		return nil, stats, err
	}
	stats.Replayed = rstats.Records
	stats.Skipped = rstats.Skipped
	stats.TornBytes = rstats.TornBytes + wlog.TornAtOpen()
	return d, stats, nil
}

// WAL exposes the underlying log (metrics registration, tests).
func (d *DurableStore) WAL() *wal.Log { return d.log }

// Degraded reports whether the WAL write path has failed.
func (d *DurableStore) Degraded() bool { return d.degraded.Load() }

// CheckpointLSN returns the WAL position covered by the newest
// on-disk checkpoint.
func (d *DurableStore) CheckpointLSN() wal.LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ckptLSN
}

// IngestBatch makes a batch of harvested reports durable and folds
// them into the store, in that order: wire bytes reach the WAL (one
// write syscall for the batch) before any in-memory state changes, so
// the caller may acknowledge the batch to the device the moment
// IngestBatch returns nil. raw[i] must be the pbwire encoding of
// reports[i]; pass nil raw to have the batch re-marshaled (replay
// produces identical bytes either way).
//
// On WAL failure the store flips to degraded and every future call
// returns ErrDegraded without acking — the device keeps its queue.
func (d *DurableStore) IngestBatch(reports []*telemetry.Report, raw [][]byte) error {
	if len(reports) == 0 {
		return nil
	}
	if d.degraded.Load() {
		return ErrDegraded
	}
	if raw == nil {
		raw = make([][]byte, len(reports))
		for i, r := range reports {
			raw[i] = r.Marshal()
		}
	}
	d.flight.RLock()
	defer d.flight.RUnlock()
	if _, err := d.log.AppendBatch(raw); err != nil {
		d.degraded.Store(true)
		d.walFails.Inc()
		return fmt.Errorf("backend: wal append: %w", err)
	}
	for _, r := range reports {
		d.Store.Ingest(r)
	}
	return nil
}

// IngestBatchFrame is the v2-harvest counterpart of IngestBatch: the
// whole delta-coded batch payload becomes a single WAL record — one
// append, one CRC frame, no per-report re-marshal — before the decoded
// reports fold into the store. Replay tells the two record shapes
// apart by the leading byte (see OpenDurable). reports must be the
// decoded contents of payload; the ack contract is IngestBatch's.
func (d *DurableStore) IngestBatchFrame(reports []*telemetry.Report, payload []byte) error {
	if len(reports) == 0 {
		return nil
	}
	if d.degraded.Load() {
		return ErrDegraded
	}
	d.flight.RLock()
	defer d.flight.RUnlock()
	if _, err := d.log.AppendBatch([][]byte{payload}); err != nil {
		d.degraded.Store(true)
		d.walFails.Inc()
		return fmt.Errorf("backend: wal append: %w", err)
	}
	for _, r := range reports {
		d.Store.Ingest(r)
	}
	return nil
}

// Checkpoint writes an atomic snapshot covering every WAL record below
// the captured LSN, prunes checkpoint generations beyond the retention
// count, and truncates WAL segments wholly below the oldest kept
// generation. Safe to call concurrently with ingestion; calls are
// serialized. Harvested reports carry nonzero seqnos, so the records
// that race into the snapshot from above the captured LSN are absorbed
// by dedup when replayed.
func (d *DurableStore) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sp := obs.StartSpan(d.ckptDur)
	defer sp.End()

	// With the flight write lock held, no batch sits between "in the
	// WAL" and "in the store": everything below lsn is in memory.
	d.flight.Lock()
	lsn := d.log.NextLSN()
	d.flight.Unlock()

	path := filepath.Join(d.dir, checkpointName(lsn))
	if err := d.Store.SaveFile(path); err != nil {
		d.ckptFails.Inc()
		return fmt.Errorf("backend: checkpoint: %w", err)
	}
	d.ckptLSN = lsn
	d.ckpts.Inc()

	// Prune old generations, then drop WAL segments no kept generation
	// needs. Both are best-effort: leftovers cost disk, not correctness.
	lsns, err := listCheckpoints(d.dir)
	if err != nil {
		return nil
	}
	oldestKept := lsn
	for i, old := range lsns {
		if i < d.keep {
			if old < oldestKept {
				oldestKept = old
			}
			continue
		}
		os.Remove(filepath.Join(d.dir, checkpointName(old)))
	}
	d.log.TruncateBelow(oldestKept)
	return nil
}

// EnableDurableObs registers the durability metrics on reg —
// checkpoint.duration_us, checkpoint.count, checkpoint.failures,
// checkpoint.lsn, wal.write_failures, wal.degraded — alongside the
// WAL's own wal.* metrics and the store's store.* set.
func (d *DurableStore) EnableDurableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.Store.EnableObs(reg)
	d.log.EnableObs(reg)
	d.ckptDur = reg.Histogram("checkpoint.duration_us", obs.DurationBuckets)
	d.ckpts = reg.Counter("checkpoint.count")
	d.ckptFails = reg.Counter("checkpoint.failures")
	d.walFails = reg.Counter("wal.write_failures")
	reg.RegisterFunc("checkpoint.lsn", func() int64 { return int64(d.CheckpointLSN()) })
	reg.RegisterFunc("wal.degraded", func() int64 {
		if d.Degraded() {
			return 1
		}
		return 0
	})
}

// Close checkpoints nothing; it syncs and closes the WAL. Call
// Checkpoint first for a fast next boot.
func (d *DurableStore) Close() error {
	return d.log.Close()
}
