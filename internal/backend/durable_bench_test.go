package backend

import (
	"testing"
	"time"

	"wlanscale/internal/telemetry"
	"wlanscale/internal/wal"
)

// The durability tax: BenchmarkDurableIngest measures a poll-sized
// batch (16 reports) through the volatile store and through the
// durable store under each fsync policy. The wire bytes are pre-built,
// as on the real harvest path, so the delta is pure WAL cost: frame
// building, one write(2) per batch, and whatever fsync the policy
// demands. EXPERIMENTS.md records the numbers; the budget for the
// default interval policy is <10% over volatile.

const (
	benchBatches   = 512
	benchBatchSize = 16
	benchSerials   = 64
)

// buildEra materializes one era of distinct (serial, seqno) batches.
// Re-running with era+1 continues every serial's seqno sequence, so
// the watermark dedup never short-circuits the ingest being measured.
func buildEra(era int) ([][]*telemetry.Report, [][][]byte) {
	perSerial := benchBatches * benchBatchSize / benchSerials
	reports := make([][]*telemetry.Report, benchBatches)
	raws := make([][][]byte, benchBatches)
	k := 0
	for bi := range reports {
		reports[bi] = make([]*telemetry.Report, benchBatchSize)
		raws[bi] = make([][]byte, benchBatchSize)
		for j := range reports[bi] {
			r := fullReport(k%benchSerials, uint64(era*perSerial+k/benchSerials+1))
			reports[bi][j] = r
			raws[bi][j] = r.Marshal()
			k++
		}
	}
	return reports, raws
}

func BenchmarkDurableIngest(b *testing.B) {
	b.Run("volatile", func(b *testing.B) {
		s := NewStore()
		era := 0
		reports, _ := buildEra(era)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := i % benchBatches
			if idx == 0 && i > 0 {
				b.StopTimer()
				era++
				reports, _ = buildEra(era)
				b.StartTimer()
			}
			for _, r := range reports[idx] {
				s.Ingest(r)
			}
		}
	})

	for _, pol := range []wal.Policy{wal.PolicyOff, wal.PolicyInterval, wal.PolicyAlways} {
		b.Run("wal-"+pol.String(), func(b *testing.B) {
			dir := b.TempDir()
			d, _, err := OpenDurable(dir, DurableOptions{WAL: wal.Options{
				Policy:   pol,
				Interval: 100 * time.Millisecond,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			era := 0
			reports, raws := buildEra(era)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % benchBatches
				if idx == 0 && i > 0 {
					b.StopTimer()
					era++
					reports, raws = buildEra(era)
					b.StartTimer()
				}
				if err := d.IngestBatch(reports[idx], raws[idx]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
