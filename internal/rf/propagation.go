// Package rf models the radio-frequency environment of the study:
// indoor propagation (log-distance path loss with log-normal shadowing),
// temporal channel variation (slow AR(1) shadowing plus Rician fast
// fading), frequency-selective subcarrier fading, thermal noise, and the
// non-802.11 interference sources (Bluetooth frequency hoppers, microwave
// ovens, Zigbee and analog transmitters) whose presence the paper
// quantifies in Sections 4 and 5.
package rf

import (
	"math"

	"wlanscale/internal/dot11"
)

// DBmToMw converts a power level from dBm to milliwatts.
func DBmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MwToDBm converts a power level from milliwatts to dBm. Non-positive
// inputs map to a -200 dBm floor.
func MwToDBm(mw float64) float64 {
	if mw <= 0 {
		return -200
	}
	return 10 * math.Log10(mw)
}

// SumPowersDBm adds power levels expressed in dBm (summing in the linear
// domain).
func SumPowersDBm(levels ...float64) float64 {
	var mw float64
	for _, l := range levels {
		mw += DBmToMw(l)
	}
	return MwToDBm(mw)
}

// NoiseFloorDBm returns the thermal noise floor for the given receive
// bandwidth in MHz, assuming a 7 dB receiver noise figure — about
// -94 dBm for a 20 MHz 802.11 channel.
func NoiseFloorDBm(bandwidthMHz float64) float64 {
	// kTB at 290 K is -174 dBm/Hz.
	return -174 + 10*math.Log10(bandwidthMHz*1e6) + 7
}

// Environment selects path-loss parameters for a deployment type.
type Environment int

const (
	// EnvOpenOffice is an open-plan office with cubicles.
	EnvOpenOffice Environment = iota
	// EnvDrywallOffice is an office with drywall partitions.
	EnvDrywallOffice
	// EnvDenseObstructed is a warehouse/retail/hospital environment
	// with racks, machinery, or masonry walls.
	EnvDenseObstructed
	// EnvOutdoor is an open outdoor deployment.
	EnvOutdoor
)

// pathLossParams holds the log-distance model parameters: exponent and
// shadowing sigma.
type pathLossParams struct {
	exponent float64
	shadowDB float64
}

var envParams = map[Environment]pathLossParams{
	EnvOpenOffice:      {exponent: 3.0, shadowDB: 5},
	EnvDrywallOffice:   {exponent: 3.5, shadowDB: 7},
	EnvDenseObstructed: {exponent: 4.0, shadowDB: 9},
	EnvOutdoor:         {exponent: 2.3, shadowDB: 4},
}

// ShadowSigmaDB returns the log-normal shadowing standard deviation for
// the environment.
func (e Environment) ShadowSigmaDB() float64 { return envParams[e].shadowDB }

// PathLossExponent returns the log-distance exponent for the environment.
func (e Environment) PathLossExponent() float64 { return envParams[e].exponent }

// PathLossDB returns the median path loss in dB over the given distance
// in meters for a carrier in the given band, using the log-distance model
// with a 1 m free-space reference. The 5 GHz band sees roughly 6-7 dB
// more loss than 2.4 GHz at the same distance (free-space difference),
// which is the attenuation the paper invokes to explain why most capable
// clients still associate at 2.4 GHz.
func PathLossDB(e Environment, band dot11.Band, distanceM float64) float64 {
	if distanceM < 1 {
		distanceM = 1
	}
	// Free-space loss at the 1 m reference: 20log10(4*pi*d*f/c).
	fMHz := 2437.0
	if band == dot11.Band5 {
		fMHz = 5220.0
	}
	ref := 20*math.Log10(fMHz) - 27.55 // d = 1 m
	return ref + 10*envParams[e].exponent*math.Log10(distanceM)
}

// ReceivedPowerDBm returns the median received power for a transmitter
// with the given EIRP (dBm, including antenna gain) at the given
// distance, before shadowing and fading.
func ReceivedPowerDBm(e Environment, band dot11.Band, eirpDBm, distanceM float64) float64 {
	return eirpDBm - PathLossDB(e, band, distanceM)
}

// SNRdB returns the signal-to-noise ratio for a received power over a
// 20 MHz channel.
func SNRdB(rxDBm float64) float64 { return rxDBm - NoiseFloorDBm(20) }

// RangeForSNR returns the distance in meters at which the median SNR
// drops to the given value — useful for sizing simulated sites.
func RangeForSNR(e Environment, band dot11.Band, eirpDBm, snrDB float64) float64 {
	// Solve eirp - ref - 10*n*log10(d) - noise = snr for d.
	fMHz := 2437.0
	if band == dot11.Band5 {
		fMHz = 5220.0
	}
	ref := 20*math.Log10(fMHz) - 27.55
	lossBudget := eirpDBm - ref - NoiseFloorDBm(20) - snrDB
	n := envParams[e].exponent
	if lossBudget <= 0 {
		return 1
	}
	return math.Pow(10, lossBudget/(10*n))
}
