package rf

import (
	"math"
	"testing"
	"testing/quick"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
)

func TestDBmConversions(t *testing.T) {
	if got := DBmToMw(0); got != 1 {
		t.Errorf("DBmToMw(0) = %v, want 1", got)
	}
	if got := DBmToMw(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("DBmToMw(30) = %v, want 1000", got)
	}
	if got := MwToDBm(100); math.Abs(got-20) > 1e-9 {
		t.Errorf("MwToDBm(100) = %v, want 20", got)
	}
	if got := MwToDBm(0); got != -200 {
		t.Errorf("MwToDBm(0) = %v, want -200 floor", got)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	err := quick.Check(func(raw int16) bool {
		dbm := float64(raw%100) - 50
		return math.Abs(MwToDBm(DBmToMw(dbm))-dbm) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSumPowersDBm(t *testing.T) {
	// Two equal powers sum to +3 dB.
	if got := SumPowersDBm(-60, -60); math.Abs(got+57) > 0.02 {
		t.Errorf("sum of two -60 dBm = %v, want ~-57", got)
	}
	// A much weaker signal barely moves the total.
	if got := SumPowersDBm(-40, -90); math.Abs(got+40) > 0.01 {
		t.Errorf("-40 + -90 dBm = %v, want ~-40", got)
	}
}

func TestNoiseFloor(t *testing.T) {
	nf := NoiseFloorDBm(20)
	if nf < -95 || nf > -93 {
		t.Errorf("20 MHz noise floor = %v dBm, want ~-94", nf)
	}
	// Wider bandwidth raises the floor by 3 dB per doubling.
	if diff := NoiseFloorDBm(40) - nf; math.Abs(diff-3.01) > 0.05 {
		t.Errorf("40 vs 20 MHz floor difference = %v, want ~3 dB", diff)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	err := quick.Check(func(a, b uint8) bool {
		d1, d2 := float64(a)+1, float64(b)+1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return PathLossDB(EnvOpenOffice, dot11.Band24, d1) <= PathLossDB(EnvOpenOffice, dot11.Band24, d2)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPathLoss5GHzHigher(t *testing.T) {
	// The 5 GHz band must attenuate more at the same distance — the
	// paper's explanation for clients crowding onto 2.4 GHz.
	for _, d := range []float64{5, 20, 50} {
		l24 := PathLossDB(EnvOpenOffice, dot11.Band24, d)
		l5 := PathLossDB(EnvOpenOffice, dot11.Band5, d)
		if l5-l24 < 5 || l5-l24 > 9 {
			t.Errorf("5 GHz extra loss at %vm = %.1f dB, want ~6.6", d, l5-l24)
		}
	}
}

func TestPathLossClampsBelowOneMeter(t *testing.T) {
	if PathLossDB(EnvOpenOffice, dot11.Band24, 0.1) != PathLossDB(EnvOpenOffice, dot11.Band24, 1) {
		t.Error("distances below 1 m should clamp to the 1 m reference")
	}
}

func TestEnvironmentOrdering(t *testing.T) {
	// Denser environments lose more at distance.
	d := 30.0
	open := PathLossDB(EnvOpenOffice, dot11.Band24, d)
	dense := PathLossDB(EnvDenseObstructed, dot11.Band24, d)
	outdoor := PathLossDB(EnvOutdoor, dot11.Band24, d)
	if !(outdoor < open && open < dense) {
		t.Errorf("loss ordering outdoor(%.0f) < open(%.0f) < dense(%.0f) violated", outdoor, open, dense)
	}
}

func TestReceivedPowerReasonable(t *testing.T) {
	// A 23 dBm AP (MR16 at 2.4 GHz, +3 dBi antenna = 26 EIRP) at 10 m in
	// an open office should land in a plausible indoor RSSI range.
	rx := ReceivedPowerDBm(EnvOpenOffice, dot11.Band24, 26, 10)
	if rx < -75 || rx > -35 {
		t.Errorf("rx at 10 m = %.1f dBm, outside plausible range", rx)
	}
	snr := SNRdB(rx)
	if snr < 20 || snr > 60 {
		t.Errorf("SNR at 10 m = %.1f dB", snr)
	}
}

func TestRangeForSNRInvertsPathLoss(t *testing.T) {
	for _, env := range []Environment{EnvOpenOffice, EnvDenseObstructed, EnvOutdoor} {
		d := RangeForSNR(env, dot11.Band24, 26, 25)
		// Verify: at the returned distance, the median SNR is 25 dB.
		rx := ReceivedPowerDBm(env, dot11.Band24, 26, d)
		if math.Abs(SNRdB(rx)-25) > 0.1 {
			t.Errorf("env %d: SNR at RangeForSNR distance = %.2f, want 25", env, SNRdB(rx))
		}
	}
}

func TestRangeForSNRImpossibleBudget(t *testing.T) {
	if got := RangeForSNR(EnvDenseObstructed, dot11.Band5, -50, 60); got != 1 {
		t.Errorf("impossible budget range = %v, want 1 m floor", got)
	}
}

func TestDeliveryProbabilityShape(t *testing.T) {
	// Far below threshold: ~0. Far above: ~1. Near: intermediate.
	if p := DeliveryProbability(-10, 4, 60); p > 0.01 {
		t.Errorf("delivery 14 dB below threshold = %v", p)
	}
	if p := DeliveryProbability(20, 4, 60); p < 0.99 {
		t.Errorf("delivery 16 dB above threshold = %v", p)
	}
	mid := DeliveryProbability(4.5, 4, 60)
	if mid < 0.2 || mid > 0.9 {
		t.Errorf("delivery near threshold = %v, want intermediate", mid)
	}
}

func TestDeliveryProbabilityLongerFramesWorse(t *testing.T) {
	err := quick.Check(func(snrRaw uint8) bool {
		snr := float64(snrRaw%20) - 2
		p60 := DeliveryProbability(snr, 4, 60)
		p1500 := DeliveryProbability(snr, 4, 1500)
		return p1500 <= p60+1e-12
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestDeliveryProbabilityMonotoneInSNR(t *testing.T) {
	prev := -1.0
	for snr := -10.0; snr < 30; snr += 0.5 {
		p := DeliveryProbability(snr, 4, 60)
		if p < prev {
			t.Fatalf("delivery probability not monotone at snr=%v", snr)
		}
		prev = p
	}
}

func TestLinkChannelVariation(t *testing.T) {
	src := rng.New(1).Split("link")
	lc := NewLinkChannel(EnvOpenOffice, dot11.Band24, 30, src)
	// Packet gains vary around median + slow component.
	var s, s2 float64
	const n = 5000
	for i := 0; i < n; i++ {
		g := lc.PacketGainDB()
		s += g
		s2 += g * g
	}
	mean := s / n
	sd := math.Sqrt(s2/n - mean*mean)
	if sd < 0.1 {
		t.Errorf("fast fading stddev = %v dB; link shows no variation", sd)
	}
	if math.Abs(mean-lc.MedianGainDB-lc.SlowGainDB()) > 6 {
		t.Errorf("mean packet gain %.1f far from median %.1f", mean, lc.MedianGainDB)
	}
}

func TestLinkChannelSlowProcessMoves(t *testing.T) {
	src := rng.New(2).Split("link")
	lc := NewLinkChannel(EnvDrywallOffice, dot11.Band24, 40, src)
	first := lc.AdvanceWindow()
	moved := false
	for i := 0; i < 50; i++ {
		if math.Abs(lc.AdvanceWindow()-first) > 0.5 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("slow shadowing process never moved")
	}
}

func TestLinkChannelHeterogeneity(t *testing.T) {
	// Different links at the same distance should have meaningfully
	// different median gains (static shadowing) and K-factors.
	root := rng.New(3)
	var gains []float64
	for i := 0; i < 50; i++ {
		lc := NewLinkChannel(EnvOpenOffice, dot11.Band24, 30, root.SplitN("link", i))
		gains = append(gains, lc.MedianGainDB)
	}
	var s, s2 float64
	for _, g := range gains {
		s += g
		s2 += g * g
	}
	sd := math.Sqrt(s2/float64(len(gains)) - (s/float64(len(gains)))*(s/float64(len(gains))))
	if sd < 2 {
		t.Errorf("static shadowing spread = %.2f dB, want a few dB", sd)
	}
}

func TestSubcarrierFades(t *testing.T) {
	src := rng.New(4)
	flat := SubcarrierFades(52, 0, src.Split("flat"))
	if len(flat) != 52 {
		t.Fatalf("len = %d", len(flat))
	}
	for _, f := range flat {
		if math.Abs(f) > 0.01 {
			t.Errorf("flat channel has fade %v dB", f)
		}
	}
	sel := SubcarrierFades(52, 1, src.Split("sel"))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range sel {
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if hi-lo < 3 {
		t.Errorf("selective channel spread = %.1f dB, want notches", hi-lo)
	}
	if SubcarrierFades(0, 1, src) != nil {
		t.Error("zero subcarriers should return nil")
	}
}

func TestInterfererBand(t *testing.T) {
	src := rng.New(5)
	bt := NewInterferer(Bluetooth, 5, src.Split("bt"))
	if bt.Band() != dot11.Band24 {
		t.Error("bluetooth should be 2.4 GHz")
	}
	radar := NewInterferer(Radar, 1000, src.Split("radar"))
	if radar.Band() != dot11.Band5 {
		t.Error("radar should be 5 GHz")
	}
}

func TestInterfererOverlap(t *testing.T) {
	src := rng.New(6)
	ch6, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	ch36, _ := dot11.ChannelByNumber(dot11.Band5, 36)

	bt := NewInterferer(Bluetooth, 5, src.Split("bt"))
	// A 79 MHz hopper spends roughly 20/79 of its hops in any 20 MHz
	// channel.
	ov := bt.OverlapWithChannel(ch6)
	if ov < 0.2 || ov > 0.35 {
		t.Errorf("bluetooth overlap with ch6 = %v, want ~0.27", ov)
	}
	if bt.OverlapWithChannel(ch36) != 0 {
		t.Error("bluetooth overlaps a 5 GHz channel")
	}

	mw := NewInterferer(Microwave, 8, src.Split("mw"))
	ch1, _ := dot11.ChannelByNumber(dot11.Band24, 1)
	if mw.OverlapWithChannel(ch1) != 0 {
		t.Error("microwave (upper band) overlaps channel 1")
	}
	ch11, _ := dot11.ChannelByNumber(dot11.Band24, 11)
	if mw.OverlapWithChannel(ch11) <= 0 {
		t.Error("microwave does not overlap channel 11")
	}
}

func TestInterfererBusyContribution(t *testing.T) {
	src := rng.New(7)
	ch6, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	mw := NewInterferer(Microwave, 5, src.Split("mw"))
	mw.CenterMHz = 2437 // move onto ch6 for the test
	if got := mw.BusyContribution(EnvOpenOffice, ch6, -62, false); got != 0 {
		t.Errorf("inactive interferer busy = %v", got)
	}
	busy := mw.BusyContribution(EnvOpenOffice, ch6, -62, true)
	if busy <= 0 || busy > 1 {
		t.Errorf("active nearby microwave busy = %v", busy)
	}
	// Below the energy-detect threshold (very far away) contributes 0.
	far := NewInterferer(Zigbee, 10000, src.Split("far"))
	far.CenterMHz = 2437
	if got := far.BusyContribution(EnvDenseObstructed, ch6, -62, true); got != 0 {
		t.Errorf("distant interferer busy = %v", got)
	}
}

func TestTypicalInterferersScaleWithDensity(t *testing.T) {
	root := rng.New(8)
	var lo, hi int
	for i := 0; i < 30; i++ {
		lo += len(TypicalInterferers(0.2, root.SplitN("lo", i)))
		hi += len(TypicalInterferers(3, root.SplitN("hi", i)))
	}
	if hi <= lo {
		t.Errorf("interferer counts do not scale with density: lo=%d hi=%d", lo, hi)
	}
}

func TestInterfererKindString(t *testing.T) {
	if Bluetooth.String() != "bluetooth" || Radar.String() != "radar" {
		t.Error("kind names wrong")
	}
}
