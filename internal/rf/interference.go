package rf

import (
	"fmt"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
)

// InterfererKind identifies a class of non-802.11 emitter. These are the
// sources the paper's Section 5.3 and Figure 11 discuss: they raise the
// energy-detect counter without producing decodable 802.11 headers.
type InterfererKind uint8

const (
	// Bluetooth is a 1 MHz-wide frequency hopper over the whole 2.4 GHz
	// ISM band (79 hop channels, 1600 hops/s).
	Bluetooth InterfererKind = iota
	// Microwave is a microwave oven: strong, ~50% duty at mains
	// frequency, occupying the upper half of the 2.4 GHz band.
	Microwave
	// Zigbee is an 802.15.4 transmitter on a fixed 2 MHz channel.
	Zigbee
	// CordlessPhone is an analog or DSS cordless phone.
	CordlessPhone
	// AnalogVideo is an analog video sender occupying ~6 MHz.
	AnalogVideo
	// Radar is a 5 GHz pulsed radar, relevant to DFS channels.
	Radar
)

// String names the interferer kind.
func (k InterfererKind) String() string {
	switch k {
	case Bluetooth:
		return "bluetooth"
	case Microwave:
		return "microwave"
	case Zigbee:
		return "zigbee"
	case CordlessPhone:
		return "cordless-phone"
	case AnalogVideo:
		return "analog-video"
	case Radar:
		return "radar"
	default:
		return fmt.Sprintf("interferer(%d)", uint8(k))
	}
}

// Interferer is one non-802.11 emitter near an access point.
type Interferer struct {
	Kind InterfererKind
	// EIRPdBm is the transmit power including antenna.
	EIRPdBm float64
	// DistanceM is the distance to the observing access point.
	DistanceM float64
	// DutyCycle is the fraction of time the emitter is on the air while
	// active.
	DutyCycle float64
	// ActiveProb is the probability the emitter is in use during any
	// given measurement window (a phone call, an oven run).
	ActiveProb float64
	// WidthMHz is the emission bandwidth.
	WidthMHz float64
	// CenterMHz is the emission center frequency; for hoppers this is
	// the band center and WidthMHz spans the hop range.
	CenterMHz float64
	// Hopper reports whether the emitter frequency-hops across
	// WidthMHz, in which case only InstWidthMHz is occupied at any
	// instant.
	Hopper bool
	// InstWidthMHz is the instantaneous bandwidth for hoppers.
	InstWidthMHz float64
}

// Band returns the band the interferer lands in.
func (in *Interferer) Band() dot11.Band {
	if in.CenterMHz < 3000 {
		return dot11.Band24
	}
	return dot11.Band5
}

// NewInterferer builds an interferer of the given kind with per-kind
// typical parameters, randomized slightly by src.
func NewInterferer(kind InterfererKind, distanceM float64, src *rng.Source) *Interferer {
	in := &Interferer{Kind: kind, DistanceM: distanceM}
	switch kind {
	case Bluetooth:
		in.EIRPdBm = src.Normal(2, 2) // class 2, ~1-4 dBm
		in.DutyCycle = 0.03 + src.Float64()*0.12
		in.ActiveProb = 0.4
		in.CenterMHz = 2441
		in.WidthMHz = 79
		in.Hopper = true
		in.InstWidthMHz = 1
	case Microwave:
		in.EIRPdBm = src.Normal(20, 5)
		in.DutyCycle = 0.5 // magnetron on half the mains cycle
		in.ActiveProb = 0.03
		in.CenterMHz = 2458
		in.WidthMHz = 20
	case Zigbee:
		in.EIRPdBm = src.Normal(0, 2)
		in.DutyCycle = 0.01 + src.Float64()*0.05
		in.ActiveProb = 0.8
		in.CenterMHz = 2405 + float64(src.IntN(16))*5
		in.WidthMHz = 2
	case CordlessPhone:
		in.EIRPdBm = src.Normal(10, 3)
		in.DutyCycle = 0.9
		in.ActiveProb = 0.05
		in.CenterMHz = 2412 + src.Float64()*50
		in.WidthMHz = 1
	case AnalogVideo:
		in.EIRPdBm = src.Normal(13, 3)
		in.DutyCycle = 1
		in.ActiveProb = 0.1
		in.CenterMHz = 2414 + float64(src.IntN(4))*16
		in.WidthMHz = 6
	case Radar:
		in.EIRPdBm = 40
		in.DutyCycle = 0.001
		in.ActiveProb = 0.02
		in.CenterMHz = 5300 + float64(src.IntN(40))*10
		in.WidthMHz = 4
	}
	return in
}

// OverlapWithChannel returns the fraction of time-frequency energy the
// interferer puts into a 20 MHz 802.11 channel. For hoppers it is the
// probability that a hop lands in the channel; for fixed emitters it is
// the spectral overlap fraction.
func (in *Interferer) OverlapWithChannel(ch dot11.Channel) float64 {
	if in.Band() != ch.Band {
		return 0
	}
	chLo := float64(ch.CenterMHz) - 10
	chHi := float64(ch.CenterMHz) + 10
	emLo := in.CenterMHz - in.WidthMHz/2
	emHi := in.CenterMHz + in.WidthMHz/2
	lo, hi := chLo, chHi
	if emLo > lo {
		lo = emLo
	}
	if emHi < hi {
		hi = emHi
	}
	if hi <= lo {
		return 0
	}
	overlapMHz := hi - lo
	if in.Hopper {
		// Fraction of hop slots that land (even partially) in-channel.
		return (overlapMHz + in.InstWidthMHz) / in.WidthMHz
	}
	return overlapMHz / in.WidthMHz
}

// BusyContribution returns the expected fraction of a measurement window
// during which this interferer holds the channel busy at the observer,
// given the observer's energy-detect threshold in dBm. active selects
// whether the emitter is in use this window.
func (in *Interferer) BusyContribution(env Environment, ch dot11.Channel, edThresholdDBm float64, active bool) float64 {
	if !active {
		return 0
	}
	rx := ReceivedPowerDBm(env, in.Band(), in.EIRPdBm, in.DistanceM)
	if rx < edThresholdDBm {
		return 0
	}
	return in.DutyCycle * in.OverlapWithChannel(ch)
}

// TypicalInterferers draws the non-802.11 emitter population around one
// access point: a handful of Bluetooth devices, occasionally a microwave
// oven or Zigbee network, rarely the others. density scales the expected
// counts (1 = typical office).
func TypicalInterferers(density float64, src *rng.Source) []*Interferer {
	var out []*Interferer
	add := func(kind InterfererKind, mean float64, maxDist float64) {
		n := src.Poisson(mean * density)
		for i := 0; i < n; i++ {
			d := 2 + src.Float64()*maxDist
			out = append(out, NewInterferer(kind, d, src.SplitN(kind.String(), i)))
		}
	}
	add(Bluetooth, 4, 15)
	add(Microwave, 0.7, 20)
	add(Zigbee, 0.5, 20)
	// Cordless phones and analog video senders were already rare by the
	// 2014-15 study period.
	add(CordlessPhone, 0.15, 25)
	add(AnalogVideo, 0.05, 25)
	add(Radar, 0.05, 2000)
	return out
}
