package chanplan

import (
	"strings"
	"testing"

	"wlanscale/internal/airtime"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

func ch(t *testing.T, band dot11.Band, n int) dot11.Channel {
	t.Helper()
	c, ok := dot11.ChannelByNumber(band, n)
	if !ok {
		t.Fatalf("channel %d missing", n)
	}
	return c
}

// crowdedButIdleHood builds the paper's counterexample: channel 11
// crowded with idle networks, channel 1 sparse but saturated.
func crowdedButIdleHood(t *testing.T) *airtime.Neighborhood {
	t.Helper()
	root := rng.New(1)
	hood := airtime.NewNeighborhood()
	ch1 := ch(t, dot11.Band24, 1)
	ch11 := ch(t, dot11.Band24, 11)
	for i := 0; i < 20; i++ {
		hood.Add(airtime.NewBeaconSource(ch11, -58, 1, 0))
	}
	for i := 0; i < 3; i++ {
		hood.Add(airtime.NewBeaconSource(ch1, -58, 1, 0))
		hood.Add(airtime.NewClientTrafficSource(ch1, -55, 0.3, 0, root.SplitN("h", i)))
	}
	return hood
}

func neighborsFor(t *testing.T, chNum, count int) []telemetry.NeighborRecord {
	t.Helper()
	out := make([]telemetry.NeighborRecord, count)
	for i := range out {
		out[i] = telemetry.NeighborRecord{Band: dot11.Band24, Channel: chNum}
	}
	return out
}

func TestCandidateChannels(t *testing.T) {
	c24 := CandidateChannels(dot11.Band24)
	if len(c24) != 3 {
		t.Fatalf("2.4 GHz candidates = %d, want 3", len(c24))
	}
	c5 := CandidateChannels(dot11.Band5)
	if len(c5) != 8 {
		t.Fatalf("5 GHz candidates = %d, want 8 (UNII-1/3)", len(c5))
	}
	for _, c := range c5 {
		if c.DFS {
			t.Errorf("DFS channel %d in default candidates", c.Number)
		}
	}
}

func TestBuildSurveysAndPolicyDivergence(t *testing.T) {
	hood := crowdedButIdleHood(t)
	neighbors := append(neighborsFor(t, 11, 20), neighborsFor(t, 1, 3)...)
	surveys := BuildSurveys(dot11.Band24, neighbors, hood, 13, 10)
	if len(surveys) != 3 {
		t.Fatalf("surveys = %d", len(surveys))
	}

	byCount, ok := Pick(surveys, ByCount)
	if !ok {
		t.Fatal("Pick failed")
	}
	byUtil, ok := Pick(surveys, ByUtilization)
	if !ok {
		t.Fatal("Pick failed")
	}
	// Count-based policy falls for sparse-but-saturated channel 1... or
	// channel 6 (empty). With ch6 empty both its count and util are 0,
	// so both policies would pick 6; force the interesting case by
	// removing ch6 from the surveys.
	var no6 []Survey
	for _, s := range surveys {
		if s.Channel.Number != 6 {
			no6 = append(no6, s)
		}
	}
	byCount, _ = Pick(no6, ByCount)
	byUtil, _ = Pick(no6, ByUtilization)
	if byCount.Channel.Number != 1 {
		t.Errorf("count policy picked ch %d, want the sparse saturated ch 1", byCount.Channel.Number)
	}
	if byUtil.Channel.Number != 11 {
		t.Errorf("utilization policy picked ch %d, want the crowded idle ch 11", byUtil.Channel.Number)
	}
	if byUtil.Busy >= byCount.Busy {
		t.Errorf("utilization policy did not find a quieter channel: %.2f vs %.2f", byUtil.Busy, byCount.Busy)
	}
}

func TestPickEmpty(t *testing.T) {
	if _, ok := Pick(nil, ByCount); ok {
		t.Error("Pick(nil) succeeded")
	}
}

func TestPickTieBreaksLowChannel(t *testing.T) {
	s := []Survey{
		{Channel: ch(t, dot11.Band24, 11), Networks: 2, Busy: 0.1},
		{Channel: ch(t, dot11.Band24, 1), Networks: 2, Busy: 0.1},
	}
	got, _ := Pick(s, ByCount)
	if got.Channel.Number != 1 {
		t.Errorf("tie broke to ch %d, want 1", got.Channel.Number)
	}
	got, _ = Pick(s, ByUtilization)
	if got.Channel.Number != 1 {
		t.Errorf("util tie broke to ch %d", got.Channel.Number)
	}
}

func TestPlanNetworkSpreadsPeers(t *testing.T) {
	// Three APs with identical flat surveys must spread across 1/6/11
	// rather than stack on one channel.
	flat := func() []Survey {
		var out []Survey
		for _, c := range CandidateChannels(dot11.Band24) {
			out = append(out, Survey{Channel: c, Networks: 5, Busy: 0.1})
		}
		return out
	}
	surveys := map[string][]Survey{
		"AP-A": flat(), "AP-B": flat(), "AP-C": flat(),
	}
	plan := PlanNetwork(surveys, ByUtilization)
	if len(plan) != 3 {
		t.Fatalf("assignments = %d", len(plan))
	}
	used := map[int]bool{}
	for _, a := range plan {
		if used[a.Channel.Number] {
			t.Errorf("channel %d assigned twice", a.Channel.Number)
		}
		used[a.Channel.Number] = true
	}
	if !strings.Contains(plan[0].String(), "ch ") {
		t.Error("assignment String malformed")
	}
}

func TestPlanNetworkDeterministic(t *testing.T) {
	mk := func() map[string][]Survey {
		return map[string][]Survey{
			"AP-2": {{Channel: ch(t, dot11.Band24, 1), Busy: 0.3}, {Channel: ch(t, dot11.Band24, 6), Busy: 0.1}},
			"AP-1": {{Channel: ch(t, dot11.Band24, 1), Busy: 0.05}, {Channel: ch(t, dot11.Band24, 6), Busy: 0.2}},
		}
	}
	a := PlanNetwork(mk(), ByUtilization)
	b := PlanNetwork(mk(), ByUtilization)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("plan not deterministic")
		}
	}
	// Serial order: AP-1 plans first and takes its best channel (1).
	if a[0].Serial != "AP-1" || a[0].Channel.Number != 1 {
		t.Errorf("first assignment = %+v", a[0])
	}
}

func TestEvaluatePolicies(t *testing.T) {
	// Fleet-level: utilization-planned assignments should realize no
	// more busy time than count-planned ones on the adversarial hood.
	hood := crowdedButIdleHood(t)
	neighbors := append(neighborsFor(t, 11, 20), neighborsFor(t, 1, 3)...)
	surveys := BuildSurveys(dot11.Band24, neighbors, hood, 13, 10)
	var no6 []Survey
	for _, s := range surveys {
		if s.Channel.Number != 6 {
			no6 = append(no6, s)
		}
	}
	perAP := map[string][]Survey{"AP-X": no6}
	hoods := map[string]*airtime.Neighborhood{"AP-X": hood}

	planCount := PlanNetwork(perAP, ByCount)
	planUtil := PlanNetwork(perAP, ByUtilization)
	busyCount := Evaluate(planCount, hoods, 13, 20)
	busyUtil := Evaluate(planUtil, hoods, 13, 20)
	if busyUtil > busyCount {
		t.Errorf("utilization plan busier: %.3f vs %.3f", busyUtil, busyCount)
	}
	if Evaluate(nil, hoods, 13, 5) != 0 {
		t.Error("empty plan should evaluate to 0")
	}
}

func TestPolicyString(t *testing.T) {
	if ByCount.String() != "by-count" || ByUtilization.String() != "by-utilization" {
		t.Error("policy names wrong")
	}
}
