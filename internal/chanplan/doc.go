// Package chanplan implements the paper's second practical implication:
// "channel planning using a utilization measure to identify the best
// wireless channel". It provides two selection policies — the naive
// count-based policy (fewest detected APs) and the utilization-based
// policy the paper's Figures 7/8 argue for — plus a fleet-level planner
// that assigns channels to the APs of one network while avoiding
// co-channel overlap between peers.
//
// A Survey carries what one AP knows about its candidate channels
// (detected-AP counts and measured utilization); Policy selects
// between ByCount and ByUtilization ranking. Evaluate scores a
// set of Assignments against the true airtime.Neighborhoods so tests
// can show the utilization policy beating the count policy — the
// paper's argument, made runnable.
package chanplan
