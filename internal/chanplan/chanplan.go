package chanplan

import (
	"fmt"
	"sort"

	"wlanscale/internal/airtime"
	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry"
)

// Policy selects a serving channel from survey data.
type Policy uint8

const (
	// ByCount picks the channel with the fewest detected networks —
	// the policy the paper shows to be insufficient.
	ByCount Policy = iota
	// ByUtilization picks the channel with the lowest measured busy
	// fraction.
	ByUtilization
)

// String names the policy.
func (p Policy) String() string {
	if p == ByUtilization {
		return "by-utilization"
	}
	return "by-count"
}

// Survey is the per-channel evidence a planner works from: the detected
// network count (from the scanner's beacon decodes) and the measured
// busy fraction (from the scanning radio's counters).
type Survey struct {
	Channel dot11.Channel
	// Networks is the number of distinct networks detected.
	Networks int
	// Busy is the measured mean utilization in [0,1].
	Busy float64
}

// BuildSurveys combines a neighbor scan with utilization sweeps into
// per-channel surveys for one band. Candidates are restricted to the
// non-DFS channels a default plan uses (all three 2.4 GHz
// non-overlapping channels; UNII-1/3 at 5 GHz).
func BuildSurveys(band dot11.Band, neighbors []telemetry.NeighborRecord, hood *airtime.Neighborhood, todHours float64, windows int) []Survey {
	if windows < 1 {
		windows = 1
	}
	counts := make(map[int]int)
	for _, rec := range neighbors {
		if rec.Band == band {
			counts[rec.Channel]++
		}
	}
	var out []Survey
	for _, ch := range CandidateChannels(band) {
		var busy float64
		for w := 0; w < windows; w++ {
			busy += hood.ObserveED(ch, todHours).Busy
		}
		out = append(out, Survey{
			Channel:  ch,
			Networks: counts[ch.Number],
			Busy:     busy / float64(windows),
		})
	}
	return out
}

// CandidateChannels returns the channels a default (non-DFS) plan
// considers for the band.
func CandidateChannels(band dot11.Band) []dot11.Channel {
	var nums []int
	if band == dot11.Band24 {
		nums = dot11.NonOverlapping24
	} else {
		nums = []int{36, 40, 44, 48, 149, 153, 157, 161}
	}
	out := make([]dot11.Channel, 0, len(nums))
	for _, n := range nums {
		if ch, ok := dot11.ChannelByNumber(band, n); ok {
			out = append(out, ch)
		}
	}
	return out
}

// Pick selects a channel from the surveys under the policy. Ties break
// toward the lower channel number for determinism. It returns false for
// an empty survey set.
func Pick(surveys []Survey, policy Policy) (Survey, bool) {
	if len(surveys) == 0 {
		return Survey{}, false
	}
	best := surveys[0]
	for _, s := range surveys[1:] {
		switch policy {
		case ByUtilization:
			if s.Busy < best.Busy || (s.Busy == best.Busy && s.Channel.Number < best.Channel.Number) {
				best = s
			}
		default:
			if s.Networks < best.Networks || (s.Networks == best.Networks && s.Channel.Number < best.Channel.Number) {
				best = s
			}
		}
	}
	return best, true
}

// Assignment is one AP's planned channel.
type Assignment struct {
	Serial  string
	Channel dot11.Channel
	// Expected is the survey's busy fraction on the chosen channel.
	Expected float64
}

// PlanNetwork assigns channels to a network's APs from their individual
// surveys, one AP at a time in serial order: each AP picks the best
// channel under the policy with a penalty for channels already taken by
// peers (so a three-AP office lands on 1/6/11 rather than piling onto
// the globally quietest channel). The peer penalty approximates the
// co-channel cost of sharing a site.
func PlanNetwork(surveysByAP map[string][]Survey, policy Policy) []Assignment {
	serials := make([]string, 0, len(surveysByAP))
	for s := range surveysByAP {
		serials = append(serials, s)
	}
	sort.Strings(serials)

	taken := make(map[int]int) // channel -> peers already assigned
	const peerPenaltyBusy = 0.25
	const peerPenaltyCount = 10

	var out []Assignment
	for _, serial := range serials {
		surveys := surveysByAP[serial]
		adjusted := make([]Survey, len(surveys))
		for i, s := range surveys {
			adj := s
			adj.Busy += float64(taken[s.Channel.Number]) * peerPenaltyBusy
			adj.Networks += taken[s.Channel.Number] * peerPenaltyCount
			adjusted[i] = adj
		}
		best, ok := Pick(adjusted, policy)
		if !ok {
			continue
		}
		taken[best.Channel.Number]++
		// Report the unpenalized expectation.
		for _, s := range surveys {
			if s.Channel.Number == best.Channel.Number {
				best = s
				break
			}
		}
		out = append(out, Assignment{Serial: serial, Channel: best.Channel, Expected: best.Busy})
	}
	return out
}

// Evaluate measures the realized mean busy fraction of a set of
// assignments against live neighborhoods — the planner's report card.
func Evaluate(assignments []Assignment, hoods map[string]*airtime.Neighborhood, todHours float64, windows int) float64 {
	if windows < 1 {
		windows = 1
	}
	var total float64
	var n int
	for _, a := range assignments {
		hood, ok := hoods[a.Serial]
		if !ok {
			continue
		}
		for w := 0; w < windows; w++ {
			total += hood.ObserveED(a.Channel, todHours).Busy
		}
		n += windows
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// String renders an assignment.
func (a Assignment) String() string {
	return fmt.Sprintf("%s -> ch %d (%s, expect %.1f%% busy)", a.Serial, a.Channel.Number, a.Channel.Band, a.Expected*100)
}
