package faultnet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"wlanscale/internal/rng"
)

// ErrInjected is the error surfaced to the local endpoint when the plan
// hard-closes a connection (reset, truncation, op-budget exhaustion).
var ErrInjected = errors.New("faultnet: injected connection failure")

// Window is a half-open index interval [From, To). Listener windows
// index accepted connections (0-based, counting refused ones); conn-op
// schedules derived from them index I/O operations on one connection.
type Window struct {
	From, To int
}

func (w Window) contains(i int) bool { return i >= w.From && i < w.To }

func inWindows(ws []Window, i int) bool {
	for _, w := range ws {
		if w.contains(i) {
			return true
		}
	}
	return false
}

// Plan scripts the faults a listener injects. Index-based windows refer
// to the accept order, which makes outages deterministic: "the backend
// is down for connections 3..6" reproduces regardless of wall-clock
// timing. The zero Plan injects nothing.
type Plan struct {
	// Seed roots the per-connection fault streams.
	Seed uint64

	// Refuse lists accept-index outage windows: a connection whose
	// index falls inside any window is closed immediately after accept
	// (the dialer sees a connect-then-drop, as during a datacenter
	// outage).
	Refuse []Window

	// Corrupt lists accept-index windows in which each I/O op on the
	// connection independently has its payload corrupted (one byte
	// flipped) with probability CorruptProb.
	Corrupt []Window
	// CorruptProb is the per-op corruption probability inside Corrupt
	// windows. Zero defaults to 0.5.
	CorruptProb float64

	// Reset lists accept-index windows in which the connection is
	// hard-closed after a small random number of ops; half the time the
	// final write is truncated mid-frame before the close.
	Reset []Window

	// Stall lists accept-index windows in which, after a few ops, reads
	// black-hole: no data and no error until the peer's deadline fires
	// or the connection is closed. This is the fault that exposes
	// missing I/O deadlines.
	Stall []Window

	// Latency, when non-zero, adds an exponentially distributed delay
	// with this mean to every I/O op on every connection.
	Latency time.Duration

	// MaxOps, when non-zero, hard-closes any connection after this many
	// I/O ops regardless of windows.
	MaxOps int
}

func (p *Plan) corruptProb() float64 {
	if p.CorruptProb == 0 {
		return 0.5
	}
	return p.CorruptProb
}

// Listener wraps a net.Listener with the plan. Accept skips refused
// connections transparently, so the accept loop of the system under
// test needs no changes.
type Listener struct {
	net.Listener
	plan Plan

	mu      sync.Mutex
	src     *rng.Source
	next    int
	refused int
}

// Wrap applies plan to an existing listener.
func Wrap(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan, src: rng.New(plan.Seed)}
}

// Accepted returns how many connections have been accepted (including
// refused ones) and how many of those were refused.
func (l *Listener) Accepted() (total, refused int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next, l.refused
}

// Accept returns the next non-refused connection, wrapped with the
// plan's per-connection fault schedule.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.next
		l.next++
		refuse := inWindows(l.plan.Refuse, i)
		if refuse {
			l.refused++
		}
		src := l.src.SplitN("conn", i)
		l.mu.Unlock()
		if refuse {
			c.Close()
			continue
		}
		return newConn(c, &l.plan, i, src), nil
	}
}

// Conn is one faulty connection. All fault decisions come from the
// connection's private rng stream, keyed by (plan seed, accept index),
// so they do not depend on goroutine scheduling elsewhere.
type Conn struct {
	inner net.Conn
	plan  *Plan
	index int

	mu         sync.Mutex
	src        *rng.Source
	ops        int
	corrupt    bool
	resetAfter int // op index at which to hard-close; -1 = never
	truncate   bool
	stallAfter int // op index at which reads black-hole; -1 = never

	readDeadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// WrapConn applies plan to a single connection, as the listener would
// for the connection with the given accept index. Useful for wrapping
// the dialer side or net.Pipe ends in tests.
func WrapConn(c net.Conn, plan Plan, index int) *Conn {
	return newConn(c, &plan, index, rng.New(plan.Seed).SplitN("conn", index))
}

func newConn(c net.Conn, plan *Plan, index int, src *rng.Source) *Conn {
	fc := &Conn{
		inner:      c,
		plan:       plan,
		index:      index,
		src:        src,
		resetAfter: -1,
		stallAfter: -1,
		closed:     make(chan struct{}),
	}
	// The whole fault schedule is drawn up-front so it depends only on
	// the accept index, never on op interleaving.
	fc.corrupt = inWindows(plan.Corrupt, index)
	if inWindows(plan.Reset, index) {
		fc.resetAfter = 1 + src.IntN(8)
		fc.truncate = src.Bool(0.5)
	}
	if inWindows(plan.Stall, index) {
		fc.stallAfter = 1 + src.IntN(4)
	}
	return fc
}

// FaultProfile summarizes the connection's pre-drawn fault schedule
// ("corrupt", "reset@3", "reset+truncate@3", "stall@2", comma-joined),
// or "" for a clean connection. Trace spans attach it so a slow or
// failed report delivery can be read against the faults that were
// scheduled on its connection.
func (c *Conn) FaultProfile() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var parts []string
	if c.corrupt {
		parts = append(parts, "corrupt")
	}
	if c.resetAfter >= 0 {
		if c.truncate {
			parts = append(parts, fmt.Sprintf("reset+truncate@%d", c.resetAfter))
		} else {
			parts = append(parts, fmt.Sprintf("reset@%d", c.resetAfter))
		}
	}
	if c.stallAfter >= 0 {
		parts = append(parts, fmt.Sprintf("stall@%d", c.stallAfter))
	}
	return strings.Join(parts, ",")
}

// step advances the op counter and returns this op's fault decisions.
func (c *Conn) step() (op int, corrupt bool, delay time.Duration, reset, truncate, stall bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op = c.ops
	c.ops++
	if c.plan.Latency > 0 {
		delay = time.Duration(c.src.Exp(float64(c.plan.Latency)))
	}
	if c.corrupt {
		corrupt = c.src.Bool(c.plan.corruptProb())
	}
	reset = (c.resetAfter >= 0 && op >= c.resetAfter) ||
		(c.plan.MaxOps > 0 && op >= c.plan.MaxOps)
	truncate = reset && c.truncate
	stall = c.stallAfter >= 0 && op >= c.stallAfter
	return
}

// flip corrupts one byte of b in place at an rng-chosen offset.
func (c *Conn) flip(b []byte) {
	if len(b) == 0 {
		return
	}
	c.mu.Lock()
	i := c.src.IntN(len(b))
	c.mu.Unlock()
	b[i] ^= 0xff
}

func (c *Conn) hardClose() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.inner.Close()
	})
}

// Read applies the schedule, then reads from the wire. Received bytes
// may be corrupted in place; stalled reads block until the read
// deadline or Close.
func (c *Conn) Read(b []byte) (int, error) {
	_, corrupt, delay, reset, _, stall := c.step()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.hardClose()
		return 0, ErrInjected
	}
	if stall {
		return 0, c.blackhole()
	}
	n, err := c.inner.Read(b)
	if n > 0 && corrupt {
		c.flip(b[:n])
	}
	return n, err
}

// blackhole blocks until the connection is closed or the read deadline
// passes, returning the timeout error a real dead peer would produce.
func (c *Conn) blackhole() error {
	c.mu.Lock()
	dl := c.readDeadline
	c.mu.Unlock()
	if dl.IsZero() {
		<-c.closed
		return ErrInjected
	}
	t := time.NewTimer(time.Until(dl))
	defer t.Stop()
	select {
	case <-c.closed:
		return ErrInjected
	case <-t.C:
		return os.ErrDeadlineExceeded
	}
}

// Write applies the schedule, then writes to the wire. A truncating
// reset writes a prefix of b (a mid-frame cut for the peer) before
// closing.
func (c *Conn) Write(b []byte) (int, error) {
	_, corrupt, delay, reset, truncate, _ := c.step()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		if truncate && len(b) > 1 {
			c.inner.Write(b[:len(b)/2])
		}
		c.hardClose()
		return 0, ErrInjected
	}
	if corrupt {
		cp := make([]byte, len(b))
		copy(cp, b)
		c.flip(cp)
		b = cp
	}
	return c.inner.Write(b)
}

// Close tears the connection down.
func (c *Conn) Close() error {
	c.hardClose()
	return nil
}

// LocalAddr returns the inner connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the inner connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline sets the read deadline; stalled reads honor it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline sets the write deadline on the wire.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}
