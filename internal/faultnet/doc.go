// Package faultnet is a deterministic fault-injection layer for the
// harvest path. It wraps net.Listener/net.Conn with a scriptable Plan
// that refuses connections during outage windows, corrupts bytes in
// flight, truncates frames mid-write, hard-resets sessions, black-holes
// reads, and adds latency — the hostile conditions paper Section 2's
// queue-and-catch-up design and Section 6's reboot storms assume. Every
// fault decision is driven by an internal/rng stream split per
// connection, so a whole chaos run reproduces from one seed: the same
// seed and the same per-listener connection order yield the same faults.
//
// Wrap a net.Listener with Wrap and every accepted Conn inherits the
// plan (WrapConn does the same for a dialed client side); injected
// failures surface as ErrInjected so tests
// can tell scripted chaos from real network errors. The chaos tests in
// internal/telemetry drive the full agent-to-daemon path through this
// package.
package faultnet
