package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// drive pushes payloads through a wrapped pipe end and returns what the
// peer received, concatenated, plus the first write error.
func drive(t *testing.T, plan Plan, index int, payloads [][]byte) ([]byte, error) {
	t.Helper()
	a, b := net.Pipe()
	fc := WrapConn(a, plan, index)
	defer fc.Close()
	defer b.Close()

	got := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, b)
		got <- buf.Bytes()
	}()
	var werr error
	for _, p := range payloads {
		if _, err := fc.Write(p); err != nil {
			werr = err
			break
		}
	}
	fc.Close()
	return <-got, werr
}

func TestDeterministicFromSeed(t *testing.T) {
	plan := Plan{Seed: 7, Corrupt: []Window{{0, 10}}, CorruptProb: 0.5}
	payloads := [][]byte{
		bytes.Repeat([]byte{0xaa}, 64),
		bytes.Repeat([]byte{0xbb}, 64),
		bytes.Repeat([]byte{0xcc}, 64),
	}
	first, _ := drive(t, plan, 3, payloads)
	second, _ := drive(t, plan, 3, payloads)
	if !bytes.Equal(first, second) {
		t.Error("same seed and conn index produced different corruption")
	}
	other, _ := drive(t, Plan{Seed: 8, Corrupt: []Window{{0, 10}}, CorruptProb: 0.5}, 3, payloads)
	if bytes.Equal(first, other) {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestCorruptionFlipsBytes(t *testing.T) {
	payload := bytes.Repeat([]byte{0x11}, 256)
	got, err := drive(t, Plan{Seed: 1, Corrupt: []Window{{0, 1}}, CorruptProb: 1}, 0, [][]byte{payload})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if len(got) != len(payload) {
		t.Fatalf("received %d bytes, want %d", len(got), len(payload))
	}
	if bytes.Equal(got, payload) {
		t.Error("CorruptProb=1 delivered the payload intact")
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption changed %d bytes, want exactly 1", diff)
	}
}

func TestMaxOpsResets(t *testing.T) {
	_, err := drive(t, Plan{Seed: 1, MaxOps: 2}, 0, [][]byte{{1}, {2}, {3}, {4}})
	if !errors.Is(err, ErrInjected) {
		t.Errorf("op-budget exhaustion err = %v, want ErrInjected", err)
	}
}

func TestRefusalWindows(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(inner, Plan{Seed: 1, Refuse: []Window{{0, 2}}})
	defer ln.Close()

	accepted := make(chan net.Conn, 3)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
	}
	// Only the third connection survives the outage window.
	select {
	case c := <-accepted:
		go c.Write([]byte("x"))
		defer c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("no connection accepted after outage window")
	}
	select {
	case <-accepted:
		t.Error("refused connection was delivered to Accept")
	case <-time.After(100 * time.Millisecond):
	}
	total, refused := ln.Accepted()
	if total != 3 || refused != 2 {
		t.Errorf("accepted = (%d, %d refused), want (3, 2)", total, refused)
	}
}

func TestStallHonorsReadDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	// stallAfter is at most 4 ops; burn 5 so the next read stalls.
	fc := WrapConn(a, Plan{Seed: 1, Stall: []Window{{0, 1}}}, 0)
	defer fc.Close()
	go io.Copy(io.Discard, b)
	for i := 0; i < 5; i++ {
		if _, err := fc.Write([]byte("op")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("stalled read err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("stalled read ignored the deadline")
	}
}

func TestTruncatingResetCutsMidWrite(t *testing.T) {
	// Find a seed whose reset schedule truncates; the decision is
	// deterministic per (seed, index) so probe a few indexes.
	payload := bytes.Repeat([]byte{0x7f}, 128)
	for idx := 0; idx < 16; idx++ {
		plan := Plan{Seed: 42, Reset: []Window{{idx, idx + 1}}}
		var payloads [][]byte
		for i := 0; i < 10; i++ {
			payloads = append(payloads, payload)
		}
		got, err := drive(t, plan, idx, payloads)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("idx %d: reset err = %v, want ErrInjected", idx, err)
		}
		if len(got)%len(payload) != 0 {
			return // observed a mid-frame truncation
		}
	}
	t.Error("no truncating reset observed across 16 schedules")
}
