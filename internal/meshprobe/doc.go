// Package meshprobe implements the link-measurement subsystem of paper
// Section 4.2: each access point broadcasts a 60-byte probe every 15
// seconds — at 1 Mb/s on its 2.4 GHz radio and 6 Mb/s at 5 GHz — and
// receivers report delivery ratios over 300-second windows to the
// backend. Links combine a fading channel (rf.LinkChannel) with a
// co-channel-busy process, so delivery ratios are intermediate and vary
// over time exactly as Figures 3-5 show.
//
// Link is the unit of measurement: one directed AP-to-AP path whose
// MeasureWindow method yields a WindowResult (probes sent, received,
// delivery ratio) and whose WeekSeries traces the Figures 4/5 curves. SamplingMode selects between per-probe Bernoulli draws and
// the binomial window approximation — both produce the same population
// statistics; the ablation in EXPERIMENTS.md measures the speed
// difference.
package meshprobe
