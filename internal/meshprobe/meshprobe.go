package meshprobe

import (
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
)

// Probe timing from the paper.
const (
	// ProbeInterval is the time between broadcasts.
	ProbeInterval = 15 * time.Second
	// Window is the measurement window over which delivery is computed.
	Window = 300 * time.Second
	// ProbesPerWindow is the number of probes in one window.
	ProbesPerWindow = int(Window / ProbeInterval)
	// WindowsPerWeek is the number of windows in a one-week series.
	WindowsPerWeek = 7 * 24 * 3600 / 300
)

// SamplingMode selects how a window's deliveries are sampled.
type SamplingMode uint8

const (
	// PerProbe samples each probe's fading and collision independently
	// — the reference model.
	PerProbe SamplingMode = iota
	// BinomialApprox computes a single delivery probability for the
	// window and draws a binomial count — cheaper, used at full fleet
	// scale; the ablation bench quantifies the difference.
	BinomialApprox
)

// Link is one directed AP-to-AP probe link.
type Link struct {
	// Band the link operates in.
	Band dot11.Band
	// DistanceM is the transmitter-receiver separation.
	DistanceM float64
	// Rate is the probe rate (1 Mb/s at 2.4 GHz, 6 Mb/s at 5 GHz).
	Rate dot11.Rate

	ch       *rf.LinkChannel
	snrBase  float64 // EIRP - noise floor: SNR when gain is 0 dB
	busyMean float64
	busyProc rng.AR1
	vuln     float64 // collision vulnerability scale for the probe air time
	src      *rng.Source
}

// New creates a link in the given environment. eirpDBm is the
// transmitter's EIRP; busyMean is the long-run co-channel busy fraction
// at the receiver (probes lost to collisions when the channel is
// occupied), which is how rising 2.4 GHz utilization degrades delivery
// between the two epochs.
func New(env rf.Environment, band dot11.Band, distanceM, eirpDBm, busyMean float64, src *rng.Source) *Link {
	rate := dot11.Rate1Mb
	if band == dot11.Band5 {
		rate = dot11.Rate6Mb
	}
	airMs := dot11.AirTime(dot11.ProbeFrameBytes, rate).Seconds() * 1000
	vuln := 0.25 + airMs/1.5
	if vuln > 0.9 {
		vuln = 0.9
	}
	if busyMean < 0 {
		busyMean = 0
	}
	if busyMean > 0.95 {
		busyMean = 0.95
	}
	l := &Link{
		Band:      band,
		DistanceM: distanceM,
		Rate:      rate,
		ch:        rf.NewLinkChannel(env, band, distanceM, src.Split("channel")),
		snrBase:   eirpDBm - rf.NoiseFloorDBm(20),
		busyMean:  busyMean,
		busyProc:  rng.AR1{Mean: busyMean, Stddev: busyMean * 0.4, Rho: 0.9},
		vuln:      vuln,
		src:       src,
	}
	return l
}

// MedianSNRdB returns the link's median SNR (no fast fading), used by
// the fleet generator to decide which links the backend would have data
// for at all (too-weak links never appear in the dataset).
func (l *Link) MedianSNRdB() float64 {
	return l.snrBase + l.ch.MedianGainDB
}

// WindowResult is one 300-second window's delivery measurement.
type WindowResult struct {
	Sent      int
	Delivered int
}

// Ratio returns the delivery ratio.
func (w WindowResult) Ratio() float64 {
	if w.Sent == 0 {
		return 0
	}
	return float64(w.Delivered) / float64(w.Sent)
}

// MeasureWindow advances the link by one window and measures delivery.
func (l *Link) MeasureWindow(mode SamplingMode) WindowResult {
	l.ch.AdvanceWindow()
	busy := l.busyProc.Next(l.src)
	if busy < 0 {
		busy = 0
	}
	if busy > 0.95 {
		busy = 0.95
	}
	collisionLoss := busy * l.vuln

	res := WindowResult{Sent: ProbesPerWindow}
	switch mode {
	case BinomialApprox:
		// One representative fade for the window.
		snr := l.snrBase + l.ch.MedianGainDB + l.ch.SlowGainDB() + l.src.RicianPowerDB(l.ch.RicianK)
		p := rf.DeliveryProbability(snr, l.Rate.MinSNRdB, dot11.ProbeFrameBytes) * (1 - collisionLoss)
		res.Delivered = l.src.Binomial(ProbesPerWindow, p)
	default:
		for i := 0; i < ProbesPerWindow; i++ {
			snr := l.snrBase + l.ch.PacketGainDB()
			p := rf.DeliveryProbability(snr, l.Rate.MinSNRdB, dot11.ProbeFrameBytes) * (1 - collisionLoss)
			if l.src.Bool(p) {
				res.Delivered++
			}
		}
	}
	return res
}

// WeekSeries measures a full week of windows and returns the per-window
// delivery ratios — the time series of Figures 4 and 5.
func (l *Link) WeekSeries(mode SamplingMode) []float64 {
	out := make([]float64, WindowsPerWeek)
	for i := range out {
		out[i] = l.MeasureWindow(mode).Ratio()
	}
	return out
}

// MeanDelivery measures n windows and returns the average delivery
// ratio — one point of the Figure 3 CDF.
func (l *Link) MeanDelivery(windows int, mode SamplingMode) float64 {
	if windows <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < windows; i++ {
		sum += l.MeasureWindow(mode).Ratio()
	}
	return sum / float64(windows)
}
