package meshprobe

import (
	"math"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
)

func TestProbeTimingConstants(t *testing.T) {
	if ProbesPerWindow != 20 {
		t.Errorf("ProbesPerWindow = %d, want 20 (300s / 15s)", ProbesPerWindow)
	}
	if WindowsPerWeek != 2016 {
		t.Errorf("WindowsPerWeek = %d, want 2016", WindowsPerWeek)
	}
}

func TestProbeRatesPerBand(t *testing.T) {
	root := rng.New(1)
	l24 := New(rf.EnvOpenOffice, dot11.Band24, 30, 26, 0, root.Split("a"))
	if l24.Rate != dot11.Rate1Mb {
		t.Errorf("2.4 GHz probe rate = %+v, want 1 Mb/s", l24.Rate)
	}
	l5 := New(rf.EnvOpenOffice, dot11.Band5, 30, 29, 0, root.Split("b"))
	if l5.Rate != dot11.Rate6Mb {
		t.Errorf("5 GHz probe rate = %+v, want 6 Mb/s", l5.Rate)
	}
}

func TestStrongLinkDeliversEverything(t *testing.T) {
	root := rng.New(2)
	l := New(rf.EnvOpenOffice, dot11.Band24, 5, 26, 0, root.Split("l"))
	w := l.MeasureWindow(PerProbe)
	if w.Sent != ProbesPerWindow {
		t.Errorf("Sent = %d", w.Sent)
	}
	if w.Ratio() < 0.95 {
		t.Errorf("short quiet link delivery = %v, want ~1", w.Ratio())
	}
}

func TestHopelessLinkDeliversNothing(t *testing.T) {
	root := rng.New(3)
	l := New(rf.EnvDenseObstructed, dot11.Band24, 5000, 26, 0, root.Split("l"))
	if r := l.MeanDelivery(10, PerProbe); r > 0.05 {
		t.Errorf("5 km obstructed link delivery = %v", r)
	}
}

func TestBusyChannelDegradesDelivery(t *testing.T) {
	root := rng.New(4)
	var quiet, busy float64
	const n = 40
	for i := 0; i < n; i++ {
		lq := New(rf.EnvOpenOffice, dot11.Band24, 20, 26, 0, root.SplitN("q", i))
		lb := New(rf.EnvOpenOffice, dot11.Band24, 20, 26, 0.5, root.SplitN("b", i))
		quiet += lq.MeanDelivery(20, PerProbe)
		busy += lb.MeanDelivery(20, PerProbe)
	}
	if busy >= quiet {
		t.Errorf("50%% busy channel did not degrade delivery: quiet=%.3f busy=%.3f", quiet/n, busy/n)
	}
	// Collision loss should be substantial for 1 Mb/s probes: the 672us
	// air time makes them vulnerable.
	if (quiet-busy)/n < 0.1 {
		t.Errorf("busy-channel loss only %.3f", (quiet-busy)/n)
	}
}

func TestIntermediateLinksExist(t *testing.T) {
	// A population of medium-distance 2.4 GHz links should contain a
	// large intermediate (0.05 < r < 0.95) fraction — the core claim of
	// Figure 3.
	root := rng.New(5)
	intermediate, total := 0, 0
	for i := 0; i < 150; i++ {
		d := 20 + root.SplitN("dist", i).Float64()*120
		l := New(rf.EnvDrywallOffice, dot11.Band24, d, 26, 0.25, root.SplitN("l", i))
		if l.MedianSNRdB() < 3 {
			continue // invisible to the backend
		}
		r := l.MeanDelivery(30, PerProbe)
		total++
		if r > 0.05 && r < 0.95 {
			intermediate++
		}
	}
	if total < 50 {
		t.Fatalf("only %d visible links", total)
	}
	if frac := float64(intermediate) / float64(total); frac < 0.4 {
		t.Errorf("intermediate fraction = %.2f, want the majority", frac)
	}
}

func TestWeekSeriesVariesOverTime(t *testing.T) {
	root := rng.New(6)
	l := New(rf.EnvDrywallOffice, dot11.Band24, 60, 26, 0.25, root.Split("l"))
	series := l.WeekSeries(PerProbe)
	if len(series) != WindowsPerWeek {
		t.Fatalf("series length = %d", len(series))
	}
	var s, s2 float64
	for _, v := range series {
		s += v
		s2 += v * v
	}
	mean := s / float64(len(series))
	sd := math.Sqrt(s2/float64(len(series)) - mean*mean)
	if sd < 0.01 {
		t.Errorf("delivery series stddev = %v; Figures 4/5 show variation", sd)
	}
	for _, v := range series {
		if v < 0 || v > 1 {
			t.Fatalf("ratio out of range: %v", v)
		}
	}
}

func TestBinomialApproxCloseToPerProbe(t *testing.T) {
	// The two sampling modes should agree on the population mean within
	// a few points (the ablation bench quantifies the residual).
	root := rng.New(7)
	var mp, mb float64
	const n = 60
	for i := 0; i < n; i++ {
		d := 20 + root.SplitN("d", i).Float64()*80
		lp := New(rf.EnvOpenOffice, dot11.Band24, d, 26, 0.2, root.SplitN("p", i))
		lb := New(rf.EnvOpenOffice, dot11.Band24, d, 26, 0.2, root.SplitN("p", i))
		mp += lp.MeanDelivery(25, PerProbe)
		mb += lb.MeanDelivery(25, BinomialApprox)
	}
	if math.Abs(mp-mb)/n > 0.08 {
		t.Errorf("sampling modes disagree: per-probe %.3f vs binomial %.3f", mp/n, mb/n)
	}
}

func TestFiveGHzMoreConsistent(t *testing.T) {
	// Same geometry: 5 GHz links (quieter channels) should deliver more
	// and vary less than 2.4 GHz links, per Figures 3-5.
	root := rng.New(8)
	meanOf := func(band dot11.Band, busy float64, eirp float64) (float64, float64) {
		var full, count float64
		for i := 0; i < 80; i++ {
			d := 15 + root.Split(band.String()).SplitN("d", i).Float64()*50
			l := New(rf.EnvOpenOffice, band, d, eirp, busy, root.Split(band.String()).SplitN("l", i))
			if l.MedianSNRdB() < 3 {
				continue
			}
			r := l.MeanDelivery(20, PerProbe)
			count++
			if r >= 0.95 {
				full++
			}
		}
		return full, count
	}
	full24, n24 := meanOf(dot11.Band24, 0.3, 26)
	full5, n5 := meanOf(dot11.Band5, 0.05, 29)
	if n24 == 0 || n5 == 0 {
		t.Fatal("no visible links")
	}
	if full5/n5 <= full24/n24 {
		t.Errorf("5 GHz full-delivery fraction %.2f <= 2.4 GHz %.2f", full5/n5, full24/n24)
	}
}

func TestWindowResultRatioZeroSent(t *testing.T) {
	if (WindowResult{}).Ratio() != 0 {
		t.Error("zero-sent ratio should be 0")
	}
}

func TestMeanDeliveryZeroWindows(t *testing.T) {
	root := rng.New(9)
	l := New(rf.EnvOpenOffice, dot11.Band24, 10, 26, 0, root.Split("l"))
	if l.MeanDelivery(0, PerProbe) != 0 {
		t.Error("zero windows should return 0")
	}
}

func TestBusyClamped(t *testing.T) {
	root := rng.New(10)
	l := New(rf.EnvOpenOffice, dot11.Band24, 10, 26, 5, root.Split("l"))
	if l.busyMean > 0.95 {
		t.Errorf("busyMean not clamped: %v", l.busyMean)
	}
	l2 := New(rf.EnvOpenOffice, dot11.Band24, 10, 26, -1, root.Split("m"))
	if l2.busyMean != 0 {
		t.Errorf("negative busyMean not clamped: %v", l2.busyMean)
	}
}

func BenchmarkMeasureWindowPerProbe(b *testing.B) {
	root := rng.New(1)
	l := New(rf.EnvOpenOffice, dot11.Band24, 50, 26, 0.25, root.Split("l"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.MeasureWindow(PerProbe)
	}
}

func BenchmarkMeasureWindowBinomial(b *testing.B) {
	root := rng.New(2)
	l := New(rf.EnvOpenOffice, dot11.Band24, 50, 26, 0.25, root.Split("l"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.MeasureWindow(BinomialApprox)
	}
}
