package spectrum

import (
	"fmt"
	"math"
	"strings"

	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
)

// EmitterKind classifies a baseband emitter.
type EmitterKind uint8

const (
	// EmitterOFDM is an 802.11 OFDM burst (20 or 40 MHz of 312.5 kHz
	// subcarriers).
	EmitterOFDM EmitterKind = iota
	// EmitterHopper is a 1 MHz Bluetooth-style frequency hopper.
	EmitterHopper
	// EmitterCW is a narrowband continuous transmitter (analog video,
	// cordless phone).
	EmitterCW
)

// Emitter is one signal source in the composed baseband.
type Emitter struct {
	Kind EmitterKind
	// CenterOffsetHz is the emitter center relative to the capture
	// center frequency.
	CenterOffsetHz float64
	// WidthHz is the occupied bandwidth (for hoppers, the hop range).
	WidthHz float64
	// PowerDB is the per-emitter power relative to the noise floor.
	PowerDB float64
	// DutyCycle is the fraction of the capture during which the emitter
	// is on.
	DutyCycle float64
	// Selectivity in [0,1] controls frequency-selective fading depth
	// across the emitter's band (the 5 GHz effect visible in Fig. 11).
	Selectivity float64
}

// Capture parameters matching the paper's USRP B200 configuration:
// "a 32 MHz wide scan with 4096-point FFT".
const (
	CaptureSampleRateHz = 32e6
	CaptureFFTSize      = 4096
)

// ComposeBaseband synthesizes n complex samples at the given sample
// rate containing the emitters plus unit-power white noise. Each OFDM
// emitter is built from individually faded 312.5 kHz subcarriers, so
// the analyzer recovers the spectral structure of real 802.11 signals.
func ComposeBaseband(n int, sampleRateHz float64, emitters []Emitter, src *rng.Source) []complex128 {
	out := make([]complex128, n)
	// Thermal noise floor: complex white Gaussian, unit power.
	noise := src.Split("noise")
	for i := range out {
		out[i] = complex(noise.Normal(0, math.Sqrt2/2), noise.Normal(0, math.Sqrt2/2))
	}
	for ei, e := range emitters {
		esrc := src.SplitN("emitter", ei)
		switch e.Kind {
		case EmitterOFDM:
			addOFDMBurst(out, sampleRateHz, e, esrc)
		case EmitterHopper:
			addHopper(out, sampleRateHz, e, esrc)
		case EmitterCW:
			addCW(out, sampleRateHz, e, esrc)
		}
	}
	return out
}

// burstInterval picks the active sample range for a duty-cycled burst.
func burstInterval(n int, duty float64, src *rng.Source) (int, int) {
	if duty >= 1 {
		return 0, n
	}
	if duty <= 0 {
		return 0, 0
	}
	length := int(duty * float64(n))
	if length < 1 {
		length = 1
	}
	start := 0
	if n > length {
		start = src.IntN(n - length)
	}
	return start, start + length
}

func addOFDMBurst(out []complex128, fs float64, e Emitter, src *rng.Source) {
	const subSpacing = 312500.0
	nSub := int(e.WidthHz / subSpacing)
	if nSub < 1 {
		nSub = 1
	}
	fades := rf.SubcarrierFades(nSub, e.Selectivity, src.Split("fades"))
	amp := math.Pow(10, e.PowerDB/20) / math.Sqrt(float64(nSub))
	start, end := burstInterval(len(out), e.DutyCycle, src.Split("t"))
	// OFDM symbols are 4 us; each subcarrier takes a fresh (QPSK-like)
	// phase every symbol, which fills the band between subcarrier
	// centers exactly as a real 802.11 transmission does.
	symbolLen := int(4e-6 * fs)
	if symbolLen < 1 {
		symbolLen = 1
	}
	for s := 0; s < nSub; s++ {
		f := e.CenterOffsetHz + (float64(s)-float64(nSub-1)/2)*subSpacing
		if math.Abs(f) > fs/2 {
			continue
		}
		a := amp * math.Pow(10, fades[s]/20)
		w := 2 * math.Pi * f / fs
		phase := src.Float64() * 2 * math.Pi
		for i := start; i < end; i++ {
			if (i-start)%symbolLen == 0 {
				phase = math.Floor(src.Float64()*4) * math.Pi / 2
			}
			th := w*float64(i) + phase
			out[i] += complex(a*math.Cos(th), a*math.Sin(th))
		}
	}
}

func addHopper(out []complex128, fs float64, e Emitter, src *rng.Source) {
	// Bluetooth: 625 us slots; hop to a random 1 MHz channel per slot.
	slot := int(625e-6 * fs)
	if slot < 1 {
		slot = 1
	}
	amp := math.Pow(10, e.PowerDB/20)
	for start := 0; start < len(out); start += slot {
		if !src.Bool(e.DutyCycle) {
			continue
		}
		f := e.CenterOffsetHz + (src.Float64()-0.5)*e.WidthHz
		if math.Abs(f) > fs/2 {
			continue
		}
		phase := src.Float64() * 2 * math.Pi
		end := start + slot
		if end > len(out) {
			end = len(out)
		}
		// GFSK-style frequency modulation: a bounded (mean-reverting)
		// instantaneous deviation of ~±170 kHz broadens the hop to
		// about 1 MHz with steep Gaussian tails, like real Bluetooth.
		dev := rng.AR1{Mean: 0, Stddev: 170e3, Rho: 0.95}
		for i := start; i < end; i++ {
			phase += 2 * math.Pi * (f + dev.Next(src)) / fs
			out[i] += complex(amp*math.Cos(phase), amp*math.Sin(phase))
		}
	}
}

func addCW(out []complex128, fs float64, e Emitter, src *rng.Source) {
	amp := math.Pow(10, e.PowerDB/20)
	start, end := burstInterval(len(out), e.DutyCycle, src.Split("t"))
	phase := src.Float64() * 2 * math.Pi
	w := 2 * math.Pi * e.CenterOffsetHz / fs
	for i := start; i < end; i++ {
		th := w*float64(i) + phase
		out[i] += complex(amp*math.Cos(th), amp*math.Sin(th))
	}
}

// Band24Environment returns the Figure 11 2.4 GHz scene centered at
// 2.437 GHz: a 20 MHz 802.11 packet, Bluetooth hops across the band,
// and an unidentified narrowband source.
func Band24Environment() []Emitter {
	return []Emitter{
		{Kind: EmitterOFDM, CenterOffsetHz: 0, WidthHz: 20e6, PowerDB: 25, DutyCycle: 0.4, Selectivity: 0.3},
		{Kind: EmitterHopper, CenterOffsetHz: 0, WidthHz: 30e6, PowerDB: 18, DutyCycle: 0.5},
		{Kind: EmitterCW, CenterOffsetHz: -9e6, WidthHz: 100e3, PowerDB: 12, DutyCycle: 1},
	}
}

// Band5Environment returns the Figure 11 5 GHz scene centered at
// 5.220 GHz: a 20 MHz and a 40 MHz 802.11 packet, the latter with
// visible frequency-selective fading, plus a faint distant transmitter.
func Band5Environment() []Emitter {
	return []Emitter{
		// A full 20 MHz packet on the lower channel.
		{Kind: EmitterOFDM, CenterOffsetHz: -6e6, WidthHz: 20e6, PowerDB: 32, DutyCycle: 0.5, Selectivity: 0.2},
		// A 40 MHz packet on a higher channel whose lower edge falls
		// inside the 32 MHz capture, with visible frequency-selective
		// fading.
		{Kind: EmitterOFDM, CenterOffsetHz: 26e6, WidthHz: 40e6, PowerDB: 28, DutyCycle: 0.4, Selectivity: 0.9},
		// Fainter distant transmissions with selective fading.
		{Kind: EmitterOFDM, CenterOffsetHz: 10e6, WidthHz: 10e6, PowerDB: 14, DutyCycle: 0.2, Selectivity: 0.7},
	}
}

// Segment is a contiguous occupied frequency range recovered from a
// spectrum.
type Segment struct {
	StartHz, EndHz float64
	PeakDB         float64
}

// WidthHz returns the segment width.
func (s Segment) WidthHz() float64 { return s.EndHz - s.StartHz }

// OccupiedBands scans an fft-shifted dB spectrum and returns contiguous
// segments at least minWidthHz wide whose power exceeds the noise floor
// estimate by thresholdDB.
func OccupiedBands(spectrumDB []float64, sampleRateHz, thresholdDB, minWidthHz float64) []Segment {
	n := len(spectrumDB)
	if n == 0 {
		return nil
	}
	floor := noiseFloorEstimate(spectrumDB)
	// Gaps narrower than maxGapHz (guard intervals, faded subcarriers)
	// are bridged into the surrounding segment.
	const maxGapHz = 400e3
	maxGapBins := int(maxGapHz * float64(n) / sampleRateHz)
	var segs []Segment
	inSeg := false
	gap := 0
	var cur Segment
	var lastAbove int
	for i := 0; i <= n; i++ {
		above := i < n && spectrumDB[i] > floor+thresholdDB
		switch {
		case above && !inSeg:
			inSeg = true
			gap = 0
			lastAbove = i
			cur = Segment{StartHz: BinFrequencyHz(i, n, sampleRateHz), PeakDB: spectrumDB[i]}
		case above:
			gap = 0
			lastAbove = i
			if spectrumDB[i] > cur.PeakDB {
				cur.PeakDB = spectrumDB[i]
			}
		case inSeg:
			gap++
			if gap > maxGapBins || i == n {
				inSeg = false
				cur.EndHz = BinFrequencyHz(lastAbove+1, n, sampleRateHz)
				if cur.WidthHz() >= minWidthHz {
					segs = append(segs, cur)
				}
			}
		}
	}
	return segs
}

// noiseFloorEstimate estimates the mean noise power as the minimum
// chunk-average across 32 equal slices of the band. Averaging within a
// chunk tames the exponential per-bin noise distribution, and taking
// the minimum chunk stays robust even when transmissions fill most of
// the capture — in a 32 MHz span, any ~1 MHz of clean spectrum anchors
// the floor.
func noiseFloorEstimate(s []float64) float64 {
	const chunks = 32
	n := len(s)
	if n == 0 {
		return 0
	}
	size := n / chunks
	if size < 1 {
		size = 1
	}
	best := math.Inf(1)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		var mw float64
		for i := start; i < end; i++ {
			mw += math.Pow(10, s[i]/10)
		}
		mw /= float64(end - start)
		if db := 10 * math.Log10(mw); db < best {
			best = db
		}
	}
	return best
}

// Render draws the spectrum as an ASCII chart, one column per bin group,
// in the spirit of Figure 11.
func Render(title string, spectrumDB []float64, sampleRateHz float64, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	n := len(spectrumDB)
	cols := make([]float64, width)
	for c := range cols {
		lo := c * n / width
		hi := (c + 1) * n / width
		m := math.Inf(-1)
		for i := lo; i < hi && i < n; i++ {
			if spectrumDB[i] > m {
				m = spectrumDB[i]
			}
		}
		cols[c] = m
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 1 {
		maxV = minV + 1
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for row := 0; row < height; row++ {
		level := maxV - (maxV-minV)*float64(row)/float64(height-1)
		fmt.Fprintf(&b, "%7.1f |", level)
		for _, v := range cols {
			if v >= level {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-*.1f%*.1f MHz offset\n", width/2,
		BinFrequencyHz(0, n, sampleRateHz)/1e6, width/2, BinFrequencyHz(n-1, n, sampleRateHz)/1e6)
	return b.String()
}
