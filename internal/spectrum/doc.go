// Package spectrum is the study's software spectrum analyzer: a pure-Go
// radix-2 FFT, a complex-baseband composer that synthesizes the 2.4 and
// 5 GHz environments of Figure 11 (20/40 MHz 802.11 OFDM bursts, 1 MHz
// Bluetooth frequency hoppers, narrowband interferers, and
// frequency-selective fading), and analysis utilities that recover the
// occupied bands from the computed spectrum. It substitutes for the
// USRP B200 the paper pointed at one access point.
//
// The pipeline is ComposeBaseband (Emitters → time-domain samples at
// CaptureSampleRateHz) → HannWindow → FFT → PowerSpectrumDB →
// AverageSpectraDB over repeated captures → Render for the ASCII
// spectra merakireport prints as Figure 11. FFT/IFFT are in-place and
// allocation-free; ErrNotPowerOfTwo is the only failure mode.
package spectrum
