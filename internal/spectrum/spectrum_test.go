package spectrum

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"wlanscale/internal/rng"
)

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	// FFT of an impulse is flat.
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	const n = 256
	const bin = 37
	x := make([]complex128, n)
	for i := range x {
		th := 2 * math.Pi * bin * float64(i) / n
		x[i] = cmplx.Exp(complex(0, th))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == bin {
			if math.Abs(mag-n) > 1e-9 {
				t.Errorf("peak bin magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	src := rng.New(1)
	const n = 1024
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= n
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-9 {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	src := rng.New(2)
	const n = 512
	orig := make([]complex128, n)
	x := make([]complex128, n)
	for i := range x {
		v := complex(src.Normal(0, 1), src.Normal(0, 1))
		orig[i], x[i] = v, v
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 100)); err != ErrNotPowerOfTwo {
		t.Errorf("err = %v", err)
	}
	if err := FFT(nil); err != ErrNotPowerOfTwo {
		t.Errorf("nil err = %v", err)
	}
	if err := IFFT(make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Errorf("ifft err = %v", err)
	}
}

func TestBinFrequency(t *testing.T) {
	// 4096 bins over 32 MHz: bin 0 is -16 MHz, bin n/2 is 0.
	if got := BinFrequencyHz(0, 4096, 32e6); got != -16e6 {
		t.Errorf("bin 0 = %v", got)
	}
	if got := BinFrequencyHz(2048, 4096, 32e6); got != 0 {
		t.Errorf("center bin = %v", got)
	}
}

func TestPowerSpectrumLocatesTone(t *testing.T) {
	src := rng.New(3)
	const n = CaptureFFTSize
	// A strong tone at +5 MHz over the noise.
	em := []Emitter{{Kind: EmitterCW, CenterOffsetHz: 5e6, PowerDB: 40, DutyCycle: 1}}
	samples := ComposeBaseband(n, CaptureSampleRateHz, em, src)
	spec, err := PowerSpectrumDB(samples)
	if err != nil {
		t.Fatal(err)
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range spec {
		if v > bestV {
			best, bestV = i, v
		}
	}
	f := BinFrequencyHz(best, n, CaptureSampleRateHz)
	if math.Abs(f-5e6) > 100e3 {
		t.Errorf("tone found at %v Hz, want 5 MHz", f)
	}
}

func TestComposeOFDMOccupiesBand(t *testing.T) {
	src := rng.New(4)
	em := []Emitter{{Kind: EmitterOFDM, CenterOffsetHz: 0, WidthHz: 20e6, PowerDB: 30, DutyCycle: 1, Selectivity: 0.2}}
	samples := ComposeBaseband(CaptureFFTSize, CaptureSampleRateHz, em, src)
	spec, err := PowerSpectrumDB(samples)
	if err != nil {
		t.Fatal(err)
	}
	segs := OccupiedBands(spec, CaptureSampleRateHz, 10, 5e6)
	if len(segs) != 1 {
		t.Fatalf("segments = %d (%v), want 1", len(segs), segs)
	}
	w := segs[0].WidthHz()
	if w < 15e6 || w > 24e6 {
		t.Errorf("OFDM occupied width = %v MHz, want ~20", w/1e6)
	}
}

func TestComposeSelectivityCreatesNotches(t *testing.T) {
	// High selectivity should increase in-band power variance.
	varOf := func(sel float64, seed uint64) float64 {
		src := rng.New(seed)
		em := []Emitter{{Kind: EmitterOFDM, CenterOffsetHz: 0, WidthHz: 20e6, PowerDB: 35, DutyCycle: 1, Selectivity: sel}}
		samples := ComposeBaseband(CaptureFFTSize, CaptureSampleRateHz, em, src)
		spec, _ := PowerSpectrumDB(samples)
		n := len(spec)
		// In-band bins: center +/- 9 MHz.
		var vals []float64
		for i := 0; i < n; i++ {
			if math.Abs(BinFrequencyHz(i, n, CaptureSampleRateHz)) < 9e6 {
				vals = append(vals, spec[i])
			}
		}
		var m, m2 float64
		for _, v := range vals {
			m += v
		}
		m /= float64(len(vals))
		for _, v := range vals {
			m2 += (v - m) * (v - m)
		}
		return m2 / float64(len(vals))
	}
	flat := varOf(0, 10)
	faded := varOf(1, 10)
	if faded <= flat {
		t.Errorf("selectivity did not raise in-band variance: flat=%v faded=%v", flat, faded)
	}
}

func TestBandEnvironmentsAnalyzable(t *testing.T) {
	src := rng.New(5)
	for name, env := range map[string][]Emitter{
		"2.4 GHz": Band24Environment(),
		"5 GHz":   Band5Environment(),
	} {
		samples := ComposeBaseband(CaptureFFTSize, CaptureSampleRateHz, env, src.Split(name))
		spec, err := PowerSpectrumDB(samples)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		segs := OccupiedBands(spec, CaptureSampleRateHz, 8, 1e6)
		if len(segs) == 0 {
			t.Errorf("%s environment shows no occupied bands", name)
		}
	}
}

func TestHopperOccupiesNarrowSlices(t *testing.T) {
	src := rng.New(6)
	em := []Emitter{{Kind: EmitterHopper, CenterOffsetHz: 0, WidthHz: 30e6, PowerDB: 25, DutyCycle: 1}}
	samples := ComposeBaseband(CaptureFFTSize, CaptureSampleRateHz, em, src)
	spec, _ := PowerSpectrumDB(samples)
	segs := OccupiedBands(spec, CaptureSampleRateHz, 12, 200e3)
	if len(segs) == 0 {
		t.Fatal("hopper invisible")
	}
	for _, s := range segs {
		if s.WidthHz() > 6e6 {
			t.Errorf("hopper segment %v MHz wide; hops should be narrow", s.WidthHz()/1e6)
		}
	}
}

func TestAverageSpectraDB(t *testing.T) {
	a := []float64{0, 10}
	b := []float64{0, 20}
	avg := AverageSpectraDB([][]float64{a, b})
	if math.Abs(avg[0]-0) > 1e-9 {
		t.Errorf("avg[0] = %v", avg[0])
	}
	// Power-domain average of 10 and 20 dB: 10*log10((10+100)/2)=17.4.
	if math.Abs(avg[1]-17.4) > 0.1 {
		t.Errorf("avg[1] = %v, want 17.4", avg[1])
	}
	if AverageSpectraDB(nil) != nil {
		t.Error("empty average should be nil")
	}
}

func TestOccupiedBandsEmptySpectrum(t *testing.T) {
	if segs := OccupiedBands(nil, 32e6, 10, 1e6); segs != nil {
		t.Error("nil spectrum should return nil")
	}
}

func TestRenderSpectrum(t *testing.T) {
	src := rng.New(7)
	samples := ComposeBaseband(1024, CaptureSampleRateHz, Band24Environment(), src)
	spec, _ := PowerSpectrumDB(samples)
	out := Render("Figure 11 (2.437 GHz)", spec, CaptureSampleRateHz, 60, 12)
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "#") {
		t.Errorf("render:\n%s", out)
	}
}

func TestNoiseFloorEstimate(t *testing.T) {
	s := make([]float64, 101)
	for i := range s {
		s[i] = -90
	}
	for i := 0; i < 20; i++ {
		s[i] = -40 // strong occupied chunk
	}
	if got := noiseFloorEstimate(s); math.Abs(got+90) > 0.5 {
		t.Errorf("floor = %v, want -90", got)
	}
	// Heavy occupancy must not drag the estimate up: with 80% of the
	// band hot, the minimum chunk still anchors the floor.
	for i := 0; i < 80; i++ {
		s[i] = -40
	}
	if got := noiseFloorEstimate(s); math.Abs(got+90) > 0.5 {
		t.Errorf("floor with 80%% occupied = %v, want -90", got)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	src := rng.New(1)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
	}
	buf := make([]complex128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComposeBaseband(b *testing.B) {
	src := rng.New(2)
	env := Band24Environment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComposeBaseband(CaptureFFTSize, CaptureSampleRateHz, env, src.SplitN("f", i))
	}
}
