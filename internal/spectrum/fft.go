package spectrum

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned for FFT lengths that are not powers of
// two.
var ErrNotPowerOfTwo = errors.New("spectrum: length must be a power of two")

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The
// length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// IFFT computes the in-place inverse FFT of x.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// HannWindow applies a Hann window in place and returns its coherent
// gain for amplitude correction.
func HannWindow(x []complex128) float64 {
	n := len(x)
	if n == 0 {
		return 1
	}
	var gain float64
	for i := range x {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		x[i] *= complex(w, 0)
		gain += w
	}
	return gain / float64(n)
}

// PowerSpectrumDB computes the windowed power spectrum of the samples in
// dB, fft-shifted so index 0 is the lowest (most negative) frequency
// offset. The input is not modified.
func PowerSpectrumDB(samples []complex128) ([]float64, error) {
	n := len(samples)
	buf := make([]complex128, n)
	copy(buf, samples)
	gain := HannWindow(buf)
	if err := FFT(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		// fftshift: first half of output is the upper half of the FFT.
		src := (i + n/2) % n
		p := real(buf[src])*real(buf[src]) + imag(buf[src])*imag(buf[src])
		p /= float64(n) * float64(n) * gain * gain
		if p < 1e-30 {
			p = 1e-30
		}
		out[i] = 10 * math.Log10(p)
	}
	return out, nil
}

// BinFrequencyHz returns the frequency offset of bin i of an n-point
// fft-shifted spectrum at the given sample rate.
func BinFrequencyHz(i, n int, sampleRateHz float64) float64 {
	return (float64(i) - float64(n)/2) * sampleRateHz / float64(n)
}

// AverageSpectraDB averages multiple dB spectra in the power domain
// (video averaging, as a spectrum analyzer's average trace does).
func AverageSpectraDB(spectra [][]float64) []float64 {
	if len(spectra) == 0 {
		return nil
	}
	n := len(spectra[0])
	acc := make([]float64, n)
	for _, s := range spectra {
		for i := 0; i < n && i < len(s); i++ {
			acc[i] += math.Pow(10, s[i]/10)
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 10 * math.Log10(acc[i]/float64(len(spectra)))
	}
	return out
}
