// Package core is the measurement study itself: it drives the fleet
// simulator through the measurement pipeline (association, flow
// classification, telemetry harvest, backend aggregation) and computes
// every table and figure of the paper. Each experiment has a typed
// result plus a text renderer that prints the paper's rows.
package core
