package core

import (
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
)

// smallConfig is a fast configuration for determinism checks.
func smallConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		UsageNetworks: 12,
		ClientCap:     60,
		LinkNetworks:  15,
		LinkWindows:   10,
		Sampling:      meshprobe.BinomialApprox,
		UtilAPs:       20,
		UtilWindows:   6,
		ScanAPs:       15,
	}
}

// TestStudyDeterministic verifies that two studies built from the same
// seed produce byte-identical renders for every experiment — the
// property that makes EXPERIMENTS.md numbers stable.
func TestStudyDeterministic(t *testing.T) {
	render := func() map[string]string {
		s, err := NewStudy(smallConfig(99))
		if err != nil {
			t.Fatal(err)
		}
		now, err := s.RunUsageEpoch(s.Fleet15)
		if err != nil {
			t.Fatal(err)
		}
		before, err := s.RunUsageEpoch(s.Fleet14)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{
			"table2": Table2Industries(s.Fleet15).Render(),
			"table3": Table3UsageByOS(now, before).Render(),
			"table4": Table4Capabilities(now, before).Render(),
			"table5": Table5TopApps(now, before, 20).Render(),
			"table6": Table6Categories(now, before).Render(),
			"fig1":   Figure1RSSI(now).Render(),
			"fig3":   s.RunFigure3().Render(),
		}
		scanNow, err := s.RunNeighborScan(epoch.Jan2015)
		if err != nil {
			t.Fatal(err)
		}
		scanBefore, err := s.RunNeighborScan(epoch.Jul2014)
		if err != nil {
			t.Fatal(err)
		}
		out["table7"] = Table7NearbyNetworks(scanNow, scanBefore, 1).Render()
		out["fig2"] = Figure2NearbyByChannel(scanNow, 1).Render()
		f6, err := s.RunFigure6()
		if err != nil {
			t.Fatal(err)
		}
		out["fig6"] = f6.Render()
		f7, err := s.RunScatter(dot11.Band24)
		if err != nil {
			t.Fatal(err)
		}
		out["fig7"] = f7.Render()
		f9, err := s.RunFigure9()
		if err != nil {
			t.Fatal(err)
		}
		out["fig9"] = f9.Render()
		f10, err := s.RunFigure10()
		if err != nil {
			t.Fatal(err)
		}
		out["fig10"] = f10.Render()
		f11, err := s.RunFigure11(2)
		if err != nil {
			t.Fatal(err)
		}
		out["fig11"] = f11.Render()
		return out
	}
	a := render()
	b := render()
	for name, want := range a {
		if b[name] != want {
			t.Errorf("%s differs between identical seeds", name)
		}
	}
}

// TestStudySeedSensitivity verifies different seeds actually produce
// different universes (the determinism above is not a constant).
func TestStudySeedSensitivity(t *testing.T) {
	mk := func(seed uint64) string {
		s, err := NewStudy(smallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		now, err := s.RunUsageEpoch(s.Fleet15)
		if err != nil {
			t.Fatal(err)
		}
		before, err := s.RunUsageEpoch(s.Fleet14)
		if err != nil {
			t.Fatal(err)
		}
		return Table3UsageByOS(now, before).Render()
	}
	if mk(1) == mk(2) {
		t.Error("different seeds produced identical Table 3")
	}
}

// TestUsageEpochRerunStable verifies re-running the same epoch on a
// fresh study gives the same store contents (the epochs are generated,
// not accumulated).
func TestUsageEpochRerunStable(t *testing.T) {
	s1, err := NewStudy(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	u1, err := s1.RunUsageEpoch(s1.Fleet15)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStudy(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s2.RunUsageEpoch(s2.Fleet15)
	if err != nil {
		t.Fatal(err)
	}
	if u1.Store.NumClients() != u2.Store.NumClients() {
		t.Fatalf("client counts differ: %d vs %d", u1.Store.NumClients(), u2.Store.NumClients())
	}
	c1, c2 := u1.Store.Clients(), u2.Store.Clients()
	for i := range c1 {
		if c1[i].MAC != c2[i].MAC || c1[i].Total() != c2[i].Total() {
			t.Fatalf("client %d differs: %v/%d vs %v/%d", i, c1[i].MAC, c1[i].Total(), c2[i].MAC, c2[i].Total())
		}
	}
}
