package core

import (
	"fmt"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/stats"
	"wlanscale/internal/telemetry"
)

// NeighborScan holds the decoded neighbor tables for every AP of the
// link fleet at one epoch.
type NeighborScan struct {
	Epoch epoch.Epoch
	// PerAP holds each AP's non-Meraki networks per band.
	PerAP []APNeighbors
}

// APNeighbors is one AP's scan summary.
type APNeighbors struct {
	Serial string
	Nets24 []telemetry.NeighborRecord
	Nets5  []telemetry.NeighborRecord
	// Hotspots24 counts mobile-hotspot networks at 2.4 GHz, identified
	// by vendor OUI exactly as Section 4.1 does.
	Hotspots24 int
	Hotspots5  int
}

// RunNeighborScan scans every AP's environment at the given epoch,
// excluding other Meraki devices as Table 7 specifies.
func (s *Study) RunNeighborScan(e epoch.Epoch) (*NeighborScan, error) {
	res := &NeighborScan{Epoch: e}
	for _, n := range s.LinkFleet.Networks {
		for apIdx, a := range n.APs {
			env, err := s.LinkFleet.Environment(n, apIdx, e)
			if err != nil {
				return nil, err
			}
			an := APNeighbors{Serial: a.Serial}
			for _, rec := range a.ScanNeighbors(env.Neighbors24) {
				if rec.Vendor == "Cisco Meraki" {
					continue
				}
				an.Nets24 = append(an.Nets24, rec)
				if apps.IsHotspotVendor(rec.Vendor) {
					an.Hotspots24++
				}
			}
			for _, rec := range a.ScanNeighbors(env.Neighbors5) {
				if rec.Vendor == "Cisco Meraki" {
					continue
				}
				an.Nets5 = append(an.Nets5, rec)
				if apps.IsHotspotVendor(rec.Vendor) {
					an.Hotspots5++
				}
			}
			res.PerAP = append(res.PerAP, an)
		}
	}
	return res, nil
}

// Table7Result reproduces Table 7 (nearby-network growth over six
// months) plus the hotspot counts quoted in Section 4.1.
type Table7Result struct {
	// APs is the reporting AP count (paper scale).
	APs float64
	// Rows: networks and networks-per-AP for each (band, epoch).
	Nets24Now, Nets24Before   float64
	Nets5Now, Nets5Before     float64
	PerAP24Now, PerAP24Before float64
	PerAP5Now, PerAP5Before   float64
	// Hotspot counts (paper scale) and shares.
	Hotspots24Now, Hotspots24Before float64
	HotspotShare24Now               float64
	HotspotShare5Now                float64
}

// Table7NearbyNetworks compares the two scan epochs.
func Table7NearbyNetworks(now, before *NeighborScan, scale float64) *Table7Result {
	res := &Table7Result{}
	nAPs := float64(len(now.PerAP))
	res.APs = nAPs * scale
	for _, an := range now.PerAP {
		res.Nets24Now += float64(len(an.Nets24)) * scale
		res.Nets5Now += float64(len(an.Nets5)) * scale
		res.Hotspots24Now += float64(an.Hotspots24) * scale
	}
	var h5 float64
	for _, an := range now.PerAP {
		h5 += float64(an.Hotspots5) * scale
	}
	for _, an := range before.PerAP {
		res.Nets24Before += float64(len(an.Nets24)) * scale
		res.Nets5Before += float64(len(an.Nets5)) * scale
		res.Hotspots24Before += float64(an.Hotspots24) * scale
	}
	if nAPs > 0 {
		res.PerAP24Now = res.Nets24Now / (nAPs * scale)
		res.PerAP24Before = res.Nets24Before / (nAPs * scale)
		res.PerAP5Now = res.Nets5Now / (nAPs * scale)
		res.PerAP5Before = res.Nets5Before / (nAPs * scale)
	}
	if res.Nets24Now > 0 {
		res.HotspotShare24Now = res.Hotspots24Now / res.Nets24Now
	}
	if res.Nets5Now > 0 {
		res.HotspotShare5Now = h5 / res.Nets5Now
	}
	return res
}

// Render prints Table 7.
func (r *Table7Result) Render() string {
	t := stats.NewTable("Table 7: Nearby (non-Meraki) networks over six months",
		"", "Networks", "Networks per AP")
	t.AddRow("2.4 GHz (now)", fmt.Sprintf("%.0f", r.Nets24Now), fmt.Sprintf("%.2f", r.PerAP24Now))
	t.AddRow("2.4 GHz (six months ago)", fmt.Sprintf("%.0f", r.Nets24Before), fmt.Sprintf("%.2f", r.PerAP24Before))
	t.AddRow("5 GHz (now)", fmt.Sprintf("%.0f", r.Nets5Now), fmt.Sprintf("%.2f", r.PerAP5Now))
	t.AddRow("5 GHz (six months ago)", fmt.Sprintf("%.0f", r.Nets5Before), fmt.Sprintf("%.2f", r.PerAP5Before))
	t.AddNote(fmt.Sprintf("%.0f APs reporting; mobile hotspots: %.0f now (%.1f%% of 2.4 GHz networks) vs %.0f six months ago; %.1f%% at 5 GHz",
		r.APs, r.Hotspots24Now, r.HotspotShare24Now*100, r.Hotspots24Before, r.HotspotShare5Now*100))
	return t.String()
}

// Figure2Result reproduces Figure 2: nearby networks by channel number.
type Figure2Result struct {
	// Counts24 and Counts5 map channel number to paper-scale network
	// counts.
	Counts24, Counts5 map[int]float64
}

// Figure2NearbyByChannel histograms the current scan by channel.
func Figure2NearbyByChannel(scan *NeighborScan, scale float64) *Figure2Result {
	res := &Figure2Result{Counts24: map[int]float64{}, Counts5: map[int]float64{}}
	for _, an := range scan.PerAP {
		for _, rec := range an.Nets24 {
			res.Counts24[rec.Channel] += scale
		}
		for _, rec := range an.Nets5 {
			res.Counts5[rec.Channel] += scale
		}
	}
	return res
}

// Channel1Excess returns how many more networks channel 1 carries than
// the mean of channels 6 and 11 — the paper reports ~37%.
func (r *Figure2Result) Channel1Excess() float64 {
	base := (r.Counts24[6] + r.Counts24[11]) / 2
	if base == 0 {
		return 0
	}
	return r.Counts24[1]/base - 1
}

// Render prints Figure 2 as two channel bar charts.
func (r *Figure2Result) Render() string {
	bar := func(title string, band dot11.Band, counts map[int]float64) string {
		var maxV float64
		for _, v := range counts {
			if v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		out := title + "\n"
		for _, ch := range dot11.Channels(band) {
			v := counts[ch.Number]
			n := int(v / maxV * 50)
			out += fmt.Sprintf("%8s |%-50s| %.0f\n", fmt.Sprintf("ch %d", ch.Number), repeat('#', n), v)
		}
		return out
	}
	out := bar("Figure 2: nearby networks by channel (2.4 GHz)", dot11.Band24, r.Counts24)
	out += bar("Figure 2 (cont.): 5 GHz", dot11.Band5, r.Counts5)
	out += fmt.Sprintf("channel 1 carries %.0f%% more networks than channels 6/11\n", r.Channel1Excess()*100)
	return out
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// Figure3Result reproduces Figure 3: the distribution of link delivery
// ratios for both bands and both epochs, over the same link pairs.
type Figure3Result struct {
	// CDFs keyed by "band/epoch".
	Now24, Before24, Now5, Before5 *stats.CDF
	// Counts at paper scale.
	Links24, Links5 float64
}

// RunFigure3 measures every fleet link for LinkWindows windows in each
// epoch.
func (s *Study) RunFigure3() *Figure3Result {
	res := &Figure3Result{
		Now24: &stats.CDF{}, Before24: &stats.CDF{},
		Now5: &stats.CDF{}, Before5: &stats.CDF{},
	}
	scale := s.LinkFleet.Params.Scale()
	now := s.LinkFleet.Links(epoch.Jan2015)
	before := s.LinkFleet.Links(epoch.Jul2014)
	for i := range now {
		rNow := now[i].Link.MeanDelivery(s.Config.LinkWindows, s.Config.Sampling)
		rBefore := before[i].Link.MeanDelivery(s.Config.LinkWindows, s.Config.Sampling)
		if now[i].Band == dot11.Band24 {
			res.Now24.Add(rNow)
			res.Before24.Add(rBefore)
			res.Links24 += scale
		} else {
			res.Now5.Add(rNow)
			res.Before5.Add(rBefore)
			res.Links5 += scale
		}
	}
	return res
}

// IntermediateFraction returns the share of links with delivery in
// (lo, hi) — the "intermediate links" of the paper.
func IntermediateFraction(c *stats.CDF, lo, hi float64) float64 {
	return c.FractionBelow(hi) - c.FractionBelow(lo)
}

// Render prints Figure 3.
func (r *Figure3Result) Render() string {
	out := stats.RenderCDFs("Figure 3: link delivery ratios, 2.4 GHz", 64, 14, map[string]*stats.CDF{
		"now":            r.Now24,
		"six months ago": r.Before24,
	})
	out += stats.RenderCDFs("Figure 3 (cont.): 5 GHz", 64, 14, map[string]*stats.CDF{
		"now":            r.Now5,
		"six months ago": r.Before5,
	})
	out += fmt.Sprintf("links: %.0f at 2.4 GHz, %.0f at 5 GHz\n", r.Links24, r.Links5)
	out += fmt.Sprintf("intermediate (5%%-95%%) 2.4 GHz links: %.0f%% now, %.0f%% before\n",
		IntermediateFraction(r.Now24, 0.05, 0.95)*100, IntermediateFraction(r.Before24, 0.05, 0.95)*100)
	out += fmt.Sprintf("5 GHz links delivering >=95%%: %.0f%%\n", r.Now5.FractionAtLeast(0.95)*100)
	return out
}

// FigureSeriesResult reproduces Figures 4 and 5: delivery ratio over a
// week for two chosen links on one band.
type FigureSeriesResult struct {
	Band   dot11.Band
	Series map[string][]float64
}

// RunLinkSeries picks the first two intermediate links on the band and
// measures a full week at 300 s windows.
func (s *Study) RunLinkSeries(band dot11.Band) *FigureSeriesResult {
	res := &FigureSeriesResult{Band: band, Series: map[string][]float64{}}
	links := s.LinkFleet.Links(epoch.Jan2015)
	picked := 0
	for _, l := range links {
		if l.Band != band {
			continue
		}
		// Probe the link briefly to find interesting (non-saturated)
		// ones, as the paper's random picks show variation.
		probe := l.Link.MeanDelivery(5, s.Config.Sampling)
		if probe > 0.98 || probe < 0.02 {
			continue
		}
		name := fmt.Sprintf("link %s -> %s", l.From.Serial, l.To.Serial)
		res.Series[name] = l.Link.WeekSeries(s.Config.Sampling)
		picked++
		if picked == 2 {
			break
		}
	}
	return res
}

// Render prints the week series chart.
func (r *FigureSeriesResult) Render() string {
	figure := "Figure 4"
	if r.Band == dot11.Band5 {
		figure = "Figure 5"
	}
	return stats.RenderSeries(
		fmt.Sprintf("%s: delivery ratio over one week, %s links", figure, r.Band),
		72, 12, 0, 1, r.Series)
}
