package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/telemetry"
)

// conformanceSeeds are the fixture seeds: 2026 matches the golden and
// EXPERIMENTS.md bench seed, the rest guard against a change that
// happens to cancel out at one seed.
var conformanceSeeds = []uint64{2026, 2027, 2028, 2029, 2030}

// conformanceRenders produces every table and figure of the paper for
// one seed — the complete merakireport surface at smallConfig scale.
func conformanceRenders(t *testing.T, seed uint64) map[string]string {
	t.Helper()
	s, err := NewStudy(smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	now, err := s.RunUsageEpoch(s.Fleet15)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.RunUsageEpoch(s.Fleet14)
	if err != nil {
		t.Fatal(err)
	}
	scanNow, err := s.RunNeighborScan(epoch.Jan2015)
	if err != nil {
		t.Fatal(err)
	}
	scanBefore, err := s.RunNeighborScan(epoch.Jul2014)
	if err != nil {
		t.Fatal(err)
	}
	apScale := 10000.0 / float64(len(scanNow.PerAP))
	fig6, err := s.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := s.RunScatter(dot11.Band24)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := s.RunScatter(dot11.Band5)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := s.RunFigure9()
	if err != nil {
		t.Fatal(err)
	}
	fig10, err := s.RunFigure10()
	if err != nil {
		t.Fatal(err)
	}
	fig11, err := s.RunFigure11(4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{
		"table1": Table1Hardware().Render(),
		"table2": Table2Industries(s.Fleet15).Render(),
		"table3": Table3UsageByOS(now, before).Render(),
		"table4": Table4Capabilities(now, before).Render(),
		"table5": Table5TopApps(now, before, 20).Render(),
		"table6": Table6Categories(now, before).Render(),
		"table7": Table7NearbyNetworks(scanNow, scanBefore, apScale).Render(),
		"fig1":   Figure1RSSI(now).Render(),
		"fig2":   Figure2NearbyByChannel(scanNow, apScale).Render(),
		"fig3":   s.RunFigure3().Render(),
		"fig4":   s.RunLinkSeries(dot11.Band24).Render(),
		"fig5":   s.RunLinkSeries(dot11.Band5).Render(),
		"fig6":   fig6.Render(),
		"fig7":   fig7.Render(),
		"fig8":   fig8.Render(),
		"fig9":   fig9.Render(),
		"fig10":  fig10.Render(),
		"fig11":  fig11.Render(),
	}
}

// diffLines renders a compact line diff for a drifted golden: every
// run of differing lines with its 1-based line numbers, capped so a
// wholesale rewrite does not flood the test log.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	var b strings.Builder
	shown := 0
	for i := 0; i < n && shown < 20; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		fmt.Fprintf(&b, "  line %d:\n    -%s\n    +%s\n", i+1, wl, gl)
		shown++
	}
	if shown == 20 {
		b.WriteString("  ... (diff truncated)\n")
	}
	return b.String()
}

// TestPaperConformance pins the full paper surface — Tables 1-7 and
// Figures 1-11 — against checked-in goldens for five seeds. This is
// the repo's conformance suite: any drift anywhere in the simulate →
// harvest → aggregate → render pipeline fails with a line diff naming
// exactly which rows of which figure moved. Accept intentional changes
// with:
//
//	go test ./internal/core -run TestPaperConformance -update
func TestPaperConformance(t *testing.T) {
	for _, seed := range conformanceSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			renders := conformanceRenders(t, seed)
			dir := filepath.Join("testdata", "conformance", fmt.Sprintf("seed%d", seed))
			if *update {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
			}
			for name, got := range renders {
				name, got := name, got
				t.Run(name, func(t *testing.T) {
					path := filepath.Join(dir, name+".golden")
					if *update {
						if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing conformance golden (regenerate with -update): %v", err)
					}
					if got != string(want) {
						t.Errorf("%s drifted from seed-%d conformance golden:\n%s", name, seed, diffLines(string(want), got))
					}
				})
			}
		})
	}
}

// TestUsageEpochWireEquivalence pins the offline pipeline's wire knob
// at the study level: RunUsageEpoch must land the identical store
// digest whether Config.WireVersion routes every report through v1
// per-report marshal or v2 delta-coded batches. Together with the
// conformance goldens (rendered on the v1 path) this proves the v2
// codec can never move a table.
func TestUsageEpochWireEquivalence(t *testing.T) {
	digest := func(wire int) string {
		cfg := smallConfig(2026)
		cfg.WireVersion = wire
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		u, err := s.RunUsageEpoch(s.Fleet15)
		if err != nil {
			t.Fatal(err)
		}
		return u.Store.Digest()
	}
	v1 := digest(int(telemetry.WireV1))
	v2 := digest(int(telemetry.WireV2))
	if v1 != v2 {
		t.Fatalf("usage epoch digest differs across wire versions:\nv1: %s\nv2: %s", v1, v2)
	}
}
