// The parallel usage-epoch pipeline. The usage week is embarrassingly
// parallel along the network axis: every network owns its APs, its
// client population, and its own RNG stream (split off the study source
// by network ID), so networks can simulate concurrently without
// synchronizing. Each worker harvests into a private per-network
// partial store; a deterministic merge then folds the partials into the
// epoch's sharded store in network-index order. Because no random draw
// and no store write ever crosses a network boundary, the merged result
// is bit-for-bit identical for every worker count — the property the
// equivalence and golden tests in parallel_test.go/golden_test.go pin.

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wlanscale/internal/apps"
	"wlanscale/internal/backend"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/synth"
)

// poolMetrics is the epoch pool's observability hookup. All fields are
// nil (no-op) without a registry, and `live` gates the explicit clock
// reads so an un-instrumented run never calls time.Now. Metrics are
// observe-only — nothing here feeds back into the simulation, which is
// why instrumented and plain runs stay bit-identical (the determinism
// contract, pinned by TestRunUsageEpochObsInvariance).
type poolMetrics struct {
	live      bool
	runs      *obs.Counter   // epochs completed
	networks  *obs.Counter   // networks simulated, all workers
	perWorker []*obs.Counter // networks simulated by each worker
	netSim    *obs.Histogram // per-network simulate+harvest time, µs
	queueWait *obs.Histogram // per-claim wait between networks, µs
	mergeDur  *obs.Histogram // full partial-fold time, µs
}

func newPoolMetrics(reg *obs.Registry, workers int) poolMetrics {
	m := poolMetrics{
		live:      reg != nil,
		runs:      reg.Counter("epoch.runs"),
		networks:  reg.Counter("epoch.networks"),
		netSim:    reg.Histogram("epoch.net_sim_us", obs.DurationBuckets),
		queueWait: reg.Histogram("epoch.queue_wait_us", obs.DurationBuckets),
		mergeDur:  reg.Histogram("epoch.merge_us", obs.DurationBuckets),
	}
	m.perWorker = make([]*obs.Counter, workers)
	for w := range m.perWorker {
		m.perWorker[w] = reg.Counter(fmt.Sprintf("epoch.worker.%02d.networks", w))
	}
	return m
}

// RunUsageEpochWorkers is RunUsageEpoch with an explicit worker count.
// workers <= 0 selects GOMAXPROCS. The output is identical for every
// worker count; only wall-clock time changes.
func (s *Study) RunUsageEpochWorkers(f *synth.Fleet, workers int) (*UsageEpoch, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nets := f.NetworkOrder()
	if workers > len(nets) {
		workers = len(nets)
	}
	e := f.Params.Epoch
	label := fmt.Sprintf("usage/%d", e)
	catalog := apps.Catalog()

	// Fan out: workers pull network indices from a shared counter and
	// write only to their network's slot, so no two goroutines touch the
	// same network, partial store, or error cell.
	partials := make([]*backend.Store, len(nets))
	errs := make([]error, len(nets))
	traced := make([][]tracedReport, len(nets))
	tr := s.Config.Trace
	m := newPoolMetrics(s.Config.Obs, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// free marks when this worker last became idle; the gap to
			// the next claim is its queue wait (with an atomic-counter
			// queue it is nanoseconds today, but it is the number that
			// grows first if claiming ever becomes a bottleneck).
			var free time.Time
			if m.live {
				free = time.Now()
			}
			for {
				// Once any network has failed the epoch cannot succeed,
				// so stop pulling new networks instead of simulating the
				// rest of the fleet just to discard it. In-flight
				// networks still finish; which additional errors get
				// recorded depends on scheduling, but the run is failing
				// either way and success output is unaffected.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(nets) {
					return
				}
				if m.live {
					m.queueWait.ObserveDuration(time.Since(free))
				}
				// A partial holds one network's harvest and has exactly
				// one writer; a single stripe avoids 2x32 map allocations
				// per network.
				part := backend.NewStoreShards(1)
				part.EnableTrace(tr)
				sp := obs.StartSpan(m.netSim)
				t, err := s.harvestNetworkUsage(f, nets[i], label, catalog, part)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				sp.End()
				traced[i] = t
				m.networks.Inc()
				m.perWorker[w].Inc()
				partials[i] = part
				if m.live {
					free = time.Now()
				}
			}
		}(w)
	}
	wg.Wait()

	// Deterministic merge: fold partials in network-index order. The
	// error scan runs in the same order, so the lowest-index recorded
	// failure is the one reported.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	store := backend.NewStore()
	sp := obs.StartSpan(m.mergeDur)
	for i, part := range partials {
		// Each traced report of this network gets an epoch.merge span
		// covering its partial's fold into the epoch store — the final
		// link of the agent→…→epoch chain. The clock is only read when
		// the network actually has sampled reports.
		var mergeStart time.Time
		if tr != nil && len(traced[i]) > 0 {
			mergeStart = time.Now()
		}
		store.Merge(part)
		if tr != nil && len(traced[i]) > 0 {
			durUS := time.Since(mergeStart).Microseconds()
			for _, trd := range traced[i] {
				tr.RecordEvent(trace.Event{
					Trace:   trd.id,
					Span:    trace.StageEpochMerge.SpanID(),
					Parent:  trace.StageEpochMerge.Parent(),
					Stage:   trace.StageEpochMerge.String(),
					Serial:  trd.serial,
					Seq:     trd.seq,
					StartUS: mergeStart.UnixMicro(),
					DurUS:   durUS,
				})
			}
		}
	}
	sp.End()
	m.runs.Inc()
	return &UsageEpoch{Epoch: e, Scale: f.Params.Scale(), Store: store}, nil
}
