package core

import (
	"fmt"

	"wlanscale/internal/spectrum"
)

// Figure11Result reproduces Figure 11: the software-radio spectrum
// snapshots at 2.437 and 5.220 GHz, plus the occupied-band structure
// the paper describes (20 MHz 802.11 packets and Bluetooth hops at
// 2.4 GHz; 20/40 MHz packets with frequency-selective fading at 5 GHz).
type Figure11Result struct {
	Spectrum24, Spectrum5 []float64
	Segments24, Segments5 []spectrum.Segment
	// Util24 and Util5 are the band occupancy estimates from the
	// capture (the paper's anecdote: 22% and 2%).
	Util24, Util5 float64
}

// RunFigure11 composes both band environments, analyzes them with the
// 4096-point FFT, and recovers the occupied segments. Averaging several
// captures emulates a spectrum analyzer's average trace.
func (s *Study) RunFigure11(captures int) (*Figure11Result, error) {
	if captures < 1 {
		captures = 1
	}
	res := &Figure11Result{}
	analyze := func(label string, env []spectrum.Emitter) ([]float64, []spectrum.Segment, float64, error) {
		src := s.src.Split("fig11/" + label)
		var spectra [][]float64
		busyEnergy, totalBins := 0.0, 0.0
		for c := 0; c < captures; c++ {
			samples := spectrum.ComposeBaseband(spectrum.CaptureFFTSize, spectrum.CaptureSampleRateHz, env, src.SplitN("cap", c))
			spec, err := spectrum.PowerSpectrumDB(samples)
			if err != nil {
				return nil, nil, 0, err
			}
			spectra = append(spectra, spec)
		}
		avg := spectrum.AverageSpectraDB(spectra)
		segs := spectrum.OccupiedBands(avg, spectrum.CaptureSampleRateHz, 8, 500e3)
		for _, seg := range segs {
			busyEnergy += seg.WidthHz()
		}
		totalBins = spectrum.CaptureSampleRateHz
		return avg, segs, busyEnergy / totalBins, nil
	}
	var err error
	res.Spectrum24, res.Segments24, res.Util24, err = analyze("24", spectrum.Band24Environment())
	if err != nil {
		return nil, err
	}
	res.Spectrum5, res.Segments5, res.Util5, err = analyze("5", spectrum.Band5Environment())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints both spectra and the recovered structure.
func (r *Figure11Result) Render() string {
	out := spectrum.Render("Figure 11: spectrum at 2.437 GHz (32 MHz, 4096-pt FFT)", r.Spectrum24, spectrum.CaptureSampleRateHz, 72, 14)
	for _, seg := range r.Segments24 {
		out += fmt.Sprintf("  occupied: %+.1f to %+.1f MHz (%.1f MHz wide, peak %.0f dB)\n",
			seg.StartHz/1e6, seg.EndHz/1e6, seg.WidthHz()/1e6, seg.PeakDB)
	}
	out += spectrum.Render("Figure 11 (cont.): spectrum at 5.220 GHz", r.Spectrum5, spectrum.CaptureSampleRateHz, 72, 14)
	for _, seg := range r.Segments5 {
		out += fmt.Sprintf("  occupied: %+.1f to %+.1f MHz (%.1f MHz wide, peak %.0f dB)\n",
			seg.StartHz/1e6, seg.EndHz/1e6, seg.WidthHz()/1e6, seg.PeakDB)
	}
	out += fmt.Sprintf("occupied-bandwidth share: %.0f%% at 2.4 GHz, %.0f%% at 5 GHz\n", r.Util24*100, r.Util5*100)
	return out
}
