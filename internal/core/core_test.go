package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
)

// The study fixture is expensive; build it once for the whole package.
var (
	fixtureOnce sync.Once
	fixture     *Study
	fixNow      *UsageEpoch
	fixBefore   *UsageEpoch
	fixErr      error
)

func testConfig() Config {
	return Config{
		Seed:          7,
		UsageNetworks: 60,
		ClientCap:     250,
		LinkNetworks:  80,
		LinkWindows:   40,
		Sampling:      meshprobe.BinomialApprox,
		UtilAPs:       120,
		UtilWindows:   16,
		ScanAPs:       90,
	}
}

func study(t *testing.T) (*Study, *UsageEpoch, *UsageEpoch) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixture, fixErr = NewStudy(testConfig())
		if fixErr != nil {
			return
		}
		fixNow, fixErr = fixture.RunUsageEpoch(fixture.Fleet15)
		if fixErr != nil {
			return
		}
		fixBefore, fixErr = fixture.RunUsageEpoch(fixture.Fleet14)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixture, fixNow, fixBefore
}

func TestDefaultAndFullConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.UsageNetworks <= 0 || d.LinkWindows <= 0 {
		t.Error("default config degenerate")
	}
	f := d.Full()
	if f.UsageNetworks != 20667 || f.LinkWindows != meshprobe.WindowsPerWeek {
		t.Errorf("full config = %+v", f)
	}
}

func TestTable1Hardware(t *testing.T) {
	r := Table1Hardware()
	out := r.Render()
	for _, want := range []string{"MR16", "MR18", "23 dBm", "Scanning radio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Industries(t *testing.T) {
	s, _, _ := study(t)
	r := Table2Industries(s.Fleet15)
	if len(r.Rows) != 19 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Scaled total should approximate the paper's 20,667.
	if r.Total < 15000 || r.Total > 27000 {
		t.Errorf("scaled total = %d, want ~20667", r.Total)
	}
	if !strings.Contains(r.Render(), "Education") {
		t.Error("render missing Education row")
	}
}

func TestTable3HeadlineClaims(t *testing.T) {
	_, now, before := study(t)
	r := Table3UsageByOS(now, before)

	// Total growth: clients +37%, usage +62%, per-client +18%.
	if r.All.ClientsIncrease < 0.15 || r.All.ClientsIncrease > 0.6 {
		t.Errorf("client growth = %+.2f, want ~+0.37", r.All.ClientsIncrease)
	}
	if r.All.TBIncrease < 0.3 || r.All.TBIncrease > 1.1 {
		t.Errorf("usage growth = %+.2f, want ~+0.62", r.All.TBIncrease)
	}
	if r.All.MBIncrease < 0.0 || r.All.MBIncrease > 0.5 {
		t.Errorf("per-client growth = %+.2f, want ~+0.18", r.All.MBIncrease)
	}
	// Total absolute scale: ~1950 TB and ~5.6M clients. The test-scale
	// ClientCap truncates the lognormal tail, so totals run low here;
	// uncapped runs land near the paper (see EXPERIMENTS.md).
	if r.All.TB < 700 || r.All.TB > 4500 {
		t.Errorf("total = %.0f TB, want ~1950 uncapped", r.All.TB)
	}
	if r.All.Clients < 2e6 || r.All.Clients > 10e6 {
		t.Errorf("clients = %.0f, want ~5.6M uncapped", r.All.Clients)
	}

	rows := make(map[apps.OS]OSRow)
	for _, row := range r.Rows {
		rows[row.OS] = row
	}
	// Windows, iOS and Mac dominate bytes; iOS has ~3x Windows clients.
	if rows[apps.OSiOS].Clients < 2*rows[apps.OSWindows].Clients {
		t.Errorf("iOS clients (%.0f) not ~3x Windows (%.0f)",
			rows[apps.OSiOS].Clients, rows[apps.OSWindows].Clients)
	}
	// Macs pull roughly twice the per-client bytes of Windows.
	ratio := rows[apps.OSMacOSX].MBPerClient / rows[apps.OSWindows].MBPerClient
	if ratio < 1.3 || ratio > 3.2 {
		t.Errorf("mac/windows MB-per-client ratio = %.2f, want ~2", ratio)
	}
	// Mobile platforms are download-heavy (~90%).
	if rows[apps.OSAndroid].PctDownload < 0.8 {
		t.Errorf("Android download share = %.2f", rows[apps.OSAndroid].PctDownload)
	}
	// The Unknown row exists (ambiguous devices).
	if rows[apps.OSUnknown].Clients == 0 {
		t.Error("no Unknown clients; ambiguity path dead")
	}
	out := r.Render()
	if !strings.Contains(out, "Windows") || !strings.Contains(out, "All") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable4CapabilityTrends(t *testing.T) {
	_, now, before := study(t)
	r := Table4Capabilities(now, before)
	if r.Now.Total == 0 || r.Before.Total == 0 {
		t.Fatal("no capability records")
	}
	f5Now := r.Now.Fraction(r.Now.FiveGHz)
	f5Before := r.Before.Fraction(r.Before.FiveGHz)
	if math.Abs(f5Now-0.649) > 0.07 {
		t.Errorf("5 GHz 2015 = %.3f, want ~0.649", f5Now)
	}
	if math.Abs(f5Before-0.489) > 0.07 {
		t.Errorf("5 GHz 2014 = %.3f, want ~0.489", f5Before)
	}
	acNow := r.Now.Fraction(r.Now.AC)
	if math.Abs(acNow-0.18) > 0.06 {
		t.Errorf("11ac 2015 = %.3f, want ~0.18", acNow)
	}
	if acBefore := r.Before.Fraction(r.Before.AC); acBefore > acNow {
		t.Error("11ac decreased year-over-year")
	}
	if !strings.Contains(r.Render(), "802.11ac") {
		t.Error("render missing 11ac row")
	}
}

func TestTable5TopApps(t *testing.T) {
	_, now, before := study(t)
	r := Table5TopApps(now, before, 40)
	if len(r.Rows) != 40 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Rows must be sorted by bytes.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].TB > r.Rows[i-1].TB {
			t.Fatal("rows not sorted by TB")
		}
	}
	byName := make(map[string]AppRow)
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// Video heavy hitters present and download-dominated.
	for _, name := range []string{"YouTube", "Netflix", "iTunes"} {
		row, ok := byName[name]
		if !ok {
			t.Errorf("%s missing from top 40", name)
			continue
		}
		if row.PctDownload < 0.9 {
			t.Errorf("%s download share = %.2f", name, row.PctDownload)
		}
	}
	// Netflix per-client ~1.2 GB/week.
	if nf, ok := byName["Netflix"]; ok {
		if nf.MBPerClient < 600 || nf.MBPerClient > 2500 {
			t.Errorf("Netflix MB/client = %.0f, want ~1200", nf.MBPerClient)
		}
	}
	// Misc buckets appear as rows, as in the paper.
	if _, ok := byName[apps.MiscWeb]; !ok {
		t.Error("Miscellaneous web missing")
	}
	// Dropcam is upload-dominated when present.
	if dc, ok := byName["Dropcam"]; ok && dc.PctDownload > 0.3 {
		t.Errorf("Dropcam download share = %.2f, want ~0.05", dc.PctDownload)
	}
	if !strings.Contains(r.Render(), "Netflix") {
		t.Error("render missing Netflix")
	}
}

func TestTable6Categories(t *testing.T) {
	_, now, before := study(t)
	r := Table6Categories(now, before)
	byCat := make(map[apps.Category]AppRow)
	for _, row := range r.Rows {
		byCat[row.Category] = row
	}
	// Table 6 headline shares: Other ~47%, Video ~34%, File sharing
	// ~8.4%.
	if v := byCat[apps.CatOther].PctTotal; math.Abs(v-0.47) > 0.12 {
		t.Errorf("Other share = %.2f, want ~0.47", v)
	}
	if v := byCat[apps.CatVideoMusic].PctTotal; math.Abs(v-0.34) > 0.1 {
		t.Errorf("Video share = %.2f, want ~0.34", v)
	}
	if v := byCat[apps.CatFileSharing].PctTotal; math.Abs(v-0.084) > 0.05 {
		t.Errorf("File sharing share = %.2f, want ~0.084", v)
	}
	// Video is ~97% download; file sharing balanced; online backup
	// upload-dominated.
	if v := byCat[apps.CatVideoMusic].PctDownload; v < 0.9 {
		t.Errorf("video download share = %.2f", v)
	}
	if v := byCat[apps.CatFileSharing].PctDownload; v < 0.4 || v > 0.8 {
		t.Errorf("file sharing download share = %.2f, want ~0.58", v)
	}
	if row, ok := byCat[apps.CatOnlineBackup]; ok {
		if row.PctDownload > 0.25 {
			t.Errorf("online backup download share = %.2f, want ~0.04", row.PctDownload)
		}
	}
	if !strings.Contains(r.Render(), "Video & music") {
		t.Error("render missing video row")
	}
}

func TestFigure1BandSplitAndSNR(t *testing.T) {
	_, now, _ := study(t)
	r := Figure1RSSI(now)
	// ~80% of clients on 2.4 GHz despite ~65% being capable.
	if f := r.Fraction24(); f < 0.68 || f > 0.92 {
		t.Errorf("2.4 GHz share = %.2f, want ~0.8", f)
	}
	if r.CapableFiveGHz < 0.55 || r.CapableFiveGHz > 0.75 {
		t.Errorf("capable share = %.2f, want ~0.65", r.CapableFiveGHz)
	}
	// Median SNR ~28 dB.
	if m := r.RSSI24.Median(); m < 20 || m > 36 {
		t.Errorf("2.4 GHz median SNR = %.1f, want ~28", m)
	}
	if !strings.Contains(r.Render(), "median SNR") {
		t.Error("render missing SNR line")
	}
}

func TestTable7AndFigure2(t *testing.T) {
	s, _, _ := study(t)
	now, err := s.RunNeighborScan(epoch.Jan2015)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.RunNeighborScan(epoch.Jul2014)
	if err != nil {
		t.Fatal(err)
	}
	// Table 7 uses per-AP means; scale is irrelevant for them.
	r := Table7NearbyNetworks(now, before, 1)
	if r.PerAP24Now < 40 || r.PerAP24Now > 65 {
		t.Errorf("2.4 GHz networks/AP = %.1f, want ~55", r.PerAP24Now)
	}
	if r.PerAP24Before < 20 || r.PerAP24Before > 38 {
		t.Errorf("2.4 GHz before = %.1f, want ~28.6", r.PerAP24Before)
	}
	if r.PerAP5Now < 2.3 || r.PerAP5Now > 5.5 {
		t.Errorf("5 GHz networks/AP = %.2f, want ~3.68", r.PerAP5Now)
	}
	if r.PerAP5Before >= r.PerAP5Now {
		t.Error("5 GHz neighbor count did not grow")
	}
	if r.HotspotShare24Now < 0.1 || r.HotspotShare24Now > 0.3 {
		t.Errorf("hotspot share = %.2f, want ~0.19", r.HotspotShare24Now)
	}
	if r.HotspotShare5Now > 0.1 {
		t.Errorf("5 GHz hotspot share = %.2f, want ~0.017", r.HotspotShare5Now)
	}
	if !strings.Contains(r.Render(), "six months ago") {
		t.Error("Table 7 render malformed")
	}

	f2 := Figure2NearbyByChannel(now, 1)
	if ex := f2.Channel1Excess(); ex < 0.15 || ex > 0.6 {
		t.Errorf("channel 1 excess = %.2f, want ~0.37", ex)
	}
	if f2.Counts5[36] == 0 {
		t.Error("no 5 GHz networks on channel 36")
	}
	if !strings.Contains(f2.Render(), "ch 6") {
		t.Error("Figure 2 render missing channels")
	}
}

func TestFigure3DeliveryShapes(t *testing.T) {
	s, _, _ := study(t)
	r := s.RunFigure3()
	if r.Now24.N() == 0 || r.Now5.N() == 0 {
		t.Fatal("no links measured")
	}
	// Intermediate delivery dominates 2.4 GHz.
	if f := IntermediateFraction(r.Now24, 0.05, 0.95); f < 0.4 {
		t.Errorf("2.4 GHz intermediate fraction = %.2f, want majority", f)
	}
	// Over half of 5 GHz links deliver essentially everything.
	if f := r.Now5.FractionAtLeast(0.90); f < 0.45 {
		t.Errorf("5 GHz near-full fraction = %.2f, want > ~0.5", f)
	}
	// 2.4 GHz degraded over six months (median moved down).
	if r.Now24.Median() >= r.Before24.Median() {
		t.Errorf("2.4 GHz median now %.3f vs before %.3f; no degradation",
			r.Now24.Median(), r.Before24.Median())
	}
	// 5 GHz links are more consistent than 2.4 GHz.
	if r.Now5.Median() <= r.Now24.Median() {
		t.Error("5 GHz links not better than 2.4 GHz")
	}
	if !strings.Contains(r.Render(), "intermediate") {
		t.Error("Figure 3 render malformed")
	}
}

func TestFigures4And5Series(t *testing.T) {
	s, _, _ := study(t)
	for _, band := range []dot11.Band{dot11.Band24, dot11.Band5} {
		r := s.RunLinkSeries(band)
		if len(r.Series) == 0 {
			t.Fatalf("%s: no series picked", band)
		}
		for name, series := range r.Series {
			if len(series) != meshprobe.WindowsPerWeek {
				t.Fatalf("%s series length = %d", name, len(series))
			}
			var mn, mx = 1.0, 0.0
			for _, v := range series {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if mx-mn < 0.05 {
				t.Errorf("%s: series flat (%.2f..%.2f); Figures 4/5 show variation", name, mn, mx)
			}
		}
		if !strings.Contains(r.Render(), "link") {
			t.Error("series render malformed")
		}
	}
}

func TestFigure6UtilizationLevels(t *testing.T) {
	s, _, _ := study(t)
	r, err := s.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Util24.N() == 0 {
		t.Fatal("no utilization samples")
	}
	med24 := r.Util24.Median()
	p90 := r.Util24.Quantile(0.9)
	// Figure 6: 2.4 GHz median ~25%, p90 ~50%.
	if med24 < 0.15 || med24 > 0.38 {
		t.Errorf("2.4 GHz median utilization = %.2f, want ~0.25", med24)
	}
	if p90 < 0.33 || p90 > 0.70 {
		t.Errorf("2.4 GHz p90 utilization = %.2f, want ~0.5", p90)
	}
	// 5 GHz much lower: median ~5%, p90 ~30%.
	med5 := r.Util5.Median()
	if med5 < 0.005 || med5 > 0.15 {
		t.Errorf("5 GHz median utilization = %.2f, want ~0.05", med5)
	}
	if med5 >= med24 {
		t.Error("5 GHz utilization not below 2.4 GHz")
	}
	if !strings.Contains(r.Render(), "median") {
		t.Error("Figure 6 render malformed")
	}
}

func TestFigures7And8NoCorrelation(t *testing.T) {
	s, _, _ := study(t)
	for _, band := range []dot11.Band{dot11.Band24, dot11.Band5} {
		r, err := s.RunScatter(band)
		if err != nil {
			t.Fatal(err)
		}
		if r.Scatter.N() < 100 {
			t.Fatalf("%s: only %d scatter points", band, r.Scatter.N())
		}
		// The paper's key negative result: neighbor count does not
		// predict utilization. Correlation must stay weak.
		if rho := math.Abs(r.Scatter.Pearson()); rho > 0.5 {
			t.Errorf("%s: |Pearson| = %.3f; expected weak correlation", band, rho)
		}
		if !strings.Contains(r.Render(), "Pearson") {
			t.Error("scatter render malformed")
		}
	}
}

func TestFigure9DayNight(t *testing.T) {
	s, _, _ := study(t)
	r, err := s.RunFigure9()
	if err != nil {
		t.Fatal(err)
	}
	if r.Day24.N() == 0 || r.Day5.N() == 0 {
		t.Fatal("no sweep samples")
	}
	// Day must exceed night at 2.4 GHz (by ~5 points at the median).
	gap := r.Day24.Median() - r.Night24.Median()
	if gap <= 0 {
		t.Errorf("day-night gap = %.3f; day should be busier", gap)
	}
	if gap > 0.2 {
		t.Errorf("day-night gap = %.3f; implausibly large", gap)
	}
	// 5 GHz skews toward zero (most channels unused).
	if r.Day5.Median() > 0.05 {
		t.Errorf("5 GHz median across all channels = %.3f, want ~0", r.Day5.Median())
	}
	if !strings.Contains(r.Render(), "night") {
		t.Error("Figure 9 render malformed")
	}
}

func TestFigure10MostlyDecodable(t *testing.T) {
	s, _, _ := study(t)
	r, err := s.RunFigure10()
	if err != nil {
		t.Fatal(err)
	}
	if r.Decodable24.N() == 0 {
		t.Fatal("no decodable samples")
	}
	// The majority of busy time contains decodable 802.11 headers.
	if m := r.Decodable24.Median(); m < 0.5 {
		t.Errorf("2.4 GHz median decodable fraction = %.2f, want > 0.5", m)
	}
	if !strings.Contains(r.Render(), "decodable") {
		t.Error("Figure 10 render malformed")
	}
}

func TestFigure11Structure(t *testing.T) {
	s, _, _ := study(t)
	r, err := s.RunFigure11(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spectrum24) != 4096 || len(r.Spectrum5) != 4096 {
		t.Fatalf("spectrum lengths = %d/%d", len(r.Spectrum24), len(r.Spectrum5))
	}
	if len(r.Segments24) == 0 || len(r.Segments5) == 0 {
		t.Fatal("no occupied segments recovered")
	}
	// The 5 GHz scene contains a wide (40 MHz-class) occupancy spilling
	// past a 20 MHz segment; the 2.4 GHz scene is dominated by the
	// 20 MHz packet plus narrowband hops.
	var widest5 float64
	for _, seg := range r.Segments5 {
		if w := seg.WidthHz(); w > widest5 {
			widest5 = w
		}
	}
	if widest5 < 15e6 {
		t.Errorf("widest 5 GHz segment = %.1f MHz; 20/40 MHz structure missing", widest5/1e6)
	}
	if !strings.Contains(r.Render(), "occupied") {
		t.Error("Figure 11 render malformed")
	}
}

func TestUsageEpochIngestStats(t *testing.T) {
	_, now, _ := study(t)
	ing, dup := now.Store.Stats()
	if ing == 0 {
		t.Fatal("nothing ingested")
	}
	if dup != 0 {
		t.Errorf("unexpected duplicate reports: %d", dup)
	}
	if now.Store.NumClients() == 0 {
		t.Fatal("no clients in store")
	}
}
