package core

import (
	"fmt"
	"sort"

	"wlanscale/internal/ap"
	"wlanscale/internal/apps"
	"wlanscale/internal/backend"
	"wlanscale/internal/click"
	"wlanscale/internal/client"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/stats"
	"wlanscale/internal/synth"
	"wlanscale/internal/telemetry"
)

// UsageEpoch is everything the backend collected for one usage week.
type UsageEpoch struct {
	Epoch epoch.Epoch
	// Scale maps simulated counts to the paper's 20,667 networks.
	Scale float64
	// Store holds the harvested aggregates.
	Store *backend.Store
}

// RunUsageEpoch simulates one measurement week for the fleet: every
// client associates, emits its flows through its AP's Click pipeline,
// and every AP's report crosses the (in-process) telemetry wire into a
// backend store. The returned store is what the analyses read.
//
// Networks fan out across Config.Workers goroutines (see epochpool.go);
// the result is bit-for-bit identical for every worker count.
func (s *Study) RunUsageEpoch(f *synth.Fleet) (*UsageEpoch, error) {
	return s.RunUsageEpochWorkers(f, s.Config.Workers)
}

// tracedReport remembers one sampled report of the offline pipeline so
// the merge stage can record its epoch.merge span later.
type tracedReport struct {
	id     trace.ID
	serial string
	seq    uint64
}

// harvestNetworkUsage simulates one network's usage week and ingests
// its AP reports into store, returning the trace bookkeeping for any
// sampled reports (nil when tracing is off). Every random draw comes
// from the network's own stream (split off the study source by network
// ID) — and trace IDs likewise come from a per-network stream keyed by
// network ID — so the result does not depend on which other networks
// ran before or concurrently. All mutated state — the network's APs,
// their Click pipelines, and the store — is owned by the caller, making
// concurrent calls for distinct networks (with distinct partial stores)
// race-free.
func (s *Study) harvestNetworkUsage(f *synth.Fleet, n *synth.Network, label string, catalog []apps.AppInfo, store *backend.Store) ([]tracedReport, error) {
	e := f.Params.Epoch
	devs := f.Clients(n)
	nsrc := s.src.Split(label).SplitN("net", n.ID)
	for i, dev := range devs {
		a := n.APs[i%len(n.APs)]
		csrc := nsrc.SplitN("client", i)
		dist := csrc.LogNormalMeanMedian(15, 0.45)
		if _, err := a.Associate(dev, dist, csrc.Split("assoc")); err != nil {
			return nil, err
		}
		a.ObserveClientDHCP(dev, csrc.Split("dhcp"))
		ua := apps.UserAgentFor(dev.OS)
		if dev.Ambiguous {
			ua = ""
		}
		flows := dev.WeeklyFlows(e, catalog, csrc.Split("flows"))
		for fid, fs := range flows {
			meta := client.BuildMeta(fs, ua)
			a.Pipe.Push(&click.Packet{
				Client: dev.MAC, FlowID: uint64(fid), Length: 300, Meta: &meta,
			})
			if fs.DownBytes > 0 {
				a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: uint64(fid), Length: int(fs.DownBytes)})
			}
			if fs.UpBytes > 0 {
				a.Pipe.Push(&click.Packet{Client: dev.MAC, FlowID: uint64(fid), Length: int(fs.UpBytes), Upstream: true})
			}
		}
	}
	// Harvest every AP over the telemetry wire format. With tracing on,
	// the offline pipeline maps onto the same span chain as the live
	// protocol: agent.enqueue is the report build, tunnel.write its
	// marshal onto the (in-process) wire, daemon.read the unmarshal on
	// the backend side, and store.ingest is recorded by the store itself
	// (the partial store carries the tracer).
	tr := s.Config.Trace
	var ids *trace.IDStream
	if tr != nil {
		ids = tr.IDs(fmt.Sprintf("net/%d", n.ID))
	}
	if s.Config.WireVersion >= int(telemetry.WireV2) {
		return s.harvestNetworkUsageV2(n, e, tr, ids, store)
	}
	var traced []tracedReport
	for _, a := range n.APs {
		var id trace.ID
		var sampled bool
		if ids != nil {
			id, sampled = ids.Next()
		}
		esp := tr.Start(id, trace.StageAgentEnqueue)
		esp.SetSerial(a.Serial)
		rep := a.BuildReport(uint64(e)*1e6, nil, nil, nil)
		rep.TraceID = uint64(id)
		esp.SetSeq(rep.SeqNo)
		esp.End()
		wsp := tr.Start(id, trace.StageTunnelWrite)
		wsp.SetSerial(a.Serial)
		wsp.SetSeq(rep.SeqNo)
		wire := rep.Marshal()
		wsp.End()
		rsp := tr.Start(id, trace.StageDaemonRead)
		rsp.SetSerial(a.Serial)
		decoded, err := telemetry.UnmarshalReport(wire)
		if err != nil {
			rsp.SetErr(err)
			rsp.End()
			return nil, fmt.Errorf("core: harvest %s: %w", a.Serial, err)
		}
		rsp.SetSeq(decoded.SeqNo)
		rsp.End()
		store.Ingest(decoded)
		if sampled {
			traced = append(traced, tracedReport{id: id, serial: a.Serial, seq: decoded.SeqNo})
		}
	}
	return traced, nil
}

// harvestNetworkUsageV2 is the wire-v2 leg of harvestNetworkUsage: the
// network's AP reports coalesce into one delta-coded batch frame that
// crosses the (in-process) wire whole, exactly as a live v2 poll would
// carry them. The decoded fleet must be indistinguishable from the v1
// leg — the digest-equivalence tests compare the two store states
// byte for byte.
func (s *Study) harvestNetworkUsageV2(n *synth.Network, e epoch.Epoch, tr *trace.Tracer, ids *trace.IDStream, store *backend.Store) ([]tracedReport, error) {
	type pendingTrace struct {
		id      trace.ID
		sampled bool
		serial  string
	}
	var pend []pendingTrace
	be := telemetry.NewBatchEncoder(0)
	for _, a := range n.APs {
		var id trace.ID
		var sampled bool
		if ids != nil {
			id, sampled = ids.Next()
		}
		esp := tr.Start(id, trace.StageAgentEnqueue)
		esp.SetSerial(a.Serial)
		rep := a.BuildReport(uint64(e)*1e6, nil, nil, nil)
		rep.TraceID = uint64(id)
		esp.SetSeq(rep.SeqNo)
		esp.End()
		wsp := tr.Start(id, trace.StageTunnelWrite)
		wsp.SetSerial(a.Serial)
		wsp.SetSeq(rep.SeqNo)
		be.Add(rep) // unbounded encoder: Add never declines
		wsp.End()
		pend = append(pend, pendingTrace{id: id, sampled: sampled, serial: a.Serial})
	}
	frame, err := telemetry.DecodeBatchFrame(be.Finish(0, 0, nil))
	if err != nil {
		return nil, fmt.Errorf("core: harvest net %d batch: %w", n.ID, err)
	}
	if len(frame.Reports) != len(n.APs) {
		return nil, fmt.Errorf("core: harvest net %d: batch carried %d reports for %d APs", n.ID, len(frame.Reports), len(n.APs))
	}
	var traced []tracedReport
	for i, decoded := range frame.Reports {
		rsp := tr.Start(pend[i].id, trace.StageDaemonRead)
		rsp.SetSerial(pend[i].serial)
		rsp.SetSeq(decoded.SeqNo)
		rsp.End()
		store.Ingest(decoded)
		if pend[i].sampled {
			traced = append(traced, tracedReport{id: pend[i].id, serial: pend[i].serial, seq: decoded.SeqNo})
		}
	}
	return traced, nil
}

// usageCell is one aggregate row cell set shared by Tables 3, 5 and 6.
type usageCell struct {
	Bytes   float64
	Down    float64
	Clients float64
	// scaled values
}

// OSRow is one row of Table 3.
type OSRow struct {
	OS apps.OS
	// TB is total terabytes (paper scale).
	TB float64
	// PctTotal is the share of all bytes.
	PctTotal float64
	// PctDownload is the download share of this OS's bytes.
	PctDownload float64
	// Clients is the client count (paper scale).
	Clients float64
	// MBPerClient is mean usage per client.
	MBPerClient float64
	// Increases are year-over-year changes (fractions; 0.62 = +62%).
	TBIncrease, ClientsIncrease, MBIncrease float64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []OSRow
	All  OSRow
}

// Table3UsageByOS computes usage by inferred operating system for both
// epochs and the year-over-year deltas.
func Table3UsageByOS(now, before *UsageEpoch) *Table3Result {
	type agg struct{ bytes, down, clients float64 }
	collect := func(u *UsageEpoch) map[apps.OS]*agg {
		m := make(map[apps.OS]*agg)
		for _, c := range u.Store.Clients() {
			os := c.OS()
			a, ok := m[os]
			if !ok {
				a = &agg{}
				m[os] = a
			}
			a.clients += u.Scale
			for _, rec := range c.Apps {
				a.bytes += float64(rec.UpBytes+rec.DownBytes) * u.Scale
				a.down += float64(rec.DownBytes) * u.Scale
			}
		}
		return m
	}
	nowAgg := collect(now)
	beforeAgg := collect(before)

	var res Table3Result
	var totalNow, totalDown, totalClients, totalBefore, totalClientsBefore float64
	for _, a := range nowAgg {
		totalNow += a.bytes
		totalDown += a.down
		totalClients += a.clients
	}
	for _, a := range beforeAgg {
		totalBefore += a.bytes
		totalClientsBefore += a.clients
	}
	for _, os := range apps.AllOSes() {
		a := nowAgg[os]
		if a == nil {
			a = &agg{}
		}
		b := beforeAgg[os]
		if b == nil {
			b = &agg{}
		}
		row := OSRow{OS: os, TB: a.bytes / 1e12, Clients: a.clients}
		if totalNow > 0 {
			row.PctTotal = a.bytes / totalNow
		}
		if a.bytes > 0 {
			row.PctDownload = a.down / a.bytes
		}
		if a.clients > 0 {
			row.MBPerClient = a.bytes / a.clients / 1e6
		}
		row.TBIncrease = stats.PercentChange(b.bytes, a.bytes)
		row.ClientsIncrease = stats.PercentChange(b.clients, a.clients)
		mbBefore := 0.0
		if b.clients > 0 {
			mbBefore = b.bytes / b.clients / 1e6
		}
		row.MBIncrease = stats.PercentChange(mbBefore, row.MBPerClient)
		res.Rows = append(res.Rows, row)
	}
	res.All = OSRow{
		TB:       totalNow / 1e12,
		Clients:  totalClients,
		PctTotal: 1,
	}
	if totalNow > 0 {
		res.All.PctDownload = totalDown / totalNow
	}
	if totalClients > 0 {
		res.All.MBPerClient = totalNow / totalClients / 1e6
	}
	res.All.TBIncrease = stats.PercentChange(totalBefore, totalNow)
	res.All.ClientsIncrease = stats.PercentChange(totalClientsBefore, totalClients)
	mbBefore := 0.0
	if totalClientsBefore > 0 {
		mbBefore = totalBefore / totalClientsBefore / 1e6
	}
	res.All.MBIncrease = stats.PercentChange(mbBefore, res.All.MBPerClient)
	return &res
}

// Render prints Table 3 in the paper's format.
func (r *Table3Result) Render() string {
	t := stats.NewTable("Table 3: Usage by operating system (January 15-22)",
		"OS", "TB (% total/% download)", "% incr", "# clients", "% incr", "MB/client", "% incr")
	row := func(o OSRow, name string) {
		t.AddRow(name,
			fmt.Sprintf("%.3g (%s/%s)", o.TB, stats.FormatPercent(o.PctTotal), stats.FormatPercent(o.PctDownload)),
			stats.FormatPercent(o.TBIncrease),
			fmt.Sprintf("%.0f", o.Clients),
			stats.FormatPercent(o.ClientsIncrease),
			fmt.Sprintf("%.0f", o.MBPerClient),
			stats.FormatPercent(o.MBIncrease))
	}
	for _, o := range r.Rows {
		row(o, o.OS.String())
	}
	row(r.All, "All")
	return t.String()
}

// AppRow is one row of Table 5 (or, rolled up, Table 6).
type AppRow struct {
	Name                                    string
	Category                                apps.Category
	TB                                      float64
	PctTotal                                float64
	PctDownload                             float64
	Clients                                 float64
	MBPerClient                             float64
	TBIncrease, ClientsIncrease, MBIncrease float64
}

// Table5Result reproduces Table 5 (top applications by usage).
type Table5Result struct {
	Rows []AppRow
	// TotalTB is fleet-wide weekly bytes.
	TotalTB float64
}

// collectApps aggregates by application name.
func collectApps(u *UsageEpoch) map[string]*usageCell {
	m := make(map[string]*usageCell)
	for _, c := range u.Store.Clients() {
		for name, rec := range c.Apps {
			cell, ok := m[name]
			if !ok {
				cell = &usageCell{}
				m[name] = cell
			}
			cell.Bytes += float64(rec.UpBytes+rec.DownBytes) * u.Scale
			cell.Down += float64(rec.DownBytes) * u.Scale
			cell.Clients += u.Scale
		}
	}
	return m
}

// Table5TopApps computes the top-N applications by bytes with YoY
// deltas.
func Table5TopApps(now, before *UsageEpoch, topN int) *Table5Result {
	nowAgg := collectApps(now)
	beforeAgg := collectApps(before)
	classifier := apps.CatalogByName()

	var total float64
	for _, cell := range nowAgg {
		total += cell.Bytes
	}
	var rows []AppRow
	for name, cell := range nowAgg {
		row := AppRow{
			Name:    name,
			TB:      cell.Bytes / 1e12,
			Clients: cell.Clients,
		}
		if info, ok := classifier[name]; ok {
			row.Category = info.Category
		}
		if total > 0 {
			row.PctTotal = cell.Bytes / total
		}
		if cell.Bytes > 0 {
			row.PctDownload = cell.Down / cell.Bytes
		}
		if cell.Clients > 0 {
			row.MBPerClient = cell.Bytes / cell.Clients / 1e6
		}
		if b, ok := beforeAgg[name]; ok {
			row.TBIncrease = stats.PercentChange(b.Bytes, cell.Bytes)
			row.ClientsIncrease = stats.PercentChange(b.Clients, cell.Clients)
			mbBefore := 0.0
			if b.Clients > 0 {
				mbBefore = b.Bytes / b.Clients / 1e6
			}
			row.MBIncrease = stats.PercentChange(mbBefore, row.MBPerClient)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TB != rows[j].TB {
			return rows[i].TB > rows[j].TB
		}
		return rows[i].Name < rows[j].Name
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return &Table5Result{Rows: rows, TotalTB: total / 1e12}
}

// Render prints Table 5.
func (r *Table5Result) Render() string {
	t := stats.NewTable(fmt.Sprintf("Table 5: Top %d applications by usage (total %.3g TB)", len(r.Rows), r.TotalTB),
		"Application", "Category", "TB (% total/% down)", "% incr", "# clients", "% incr", "MB/client", "% incr")
	for _, o := range r.Rows {
		t.AddRow(o.Name, o.Category.String(),
			fmt.Sprintf("%.3g (%s/%s)", o.TB, stats.FormatPercent(o.PctTotal), stats.FormatPercent(o.PctDownload)),
			stats.FormatPercent(o.TBIncrease),
			fmt.Sprintf("%.0f", o.Clients),
			stats.FormatPercent(o.ClientsIncrease),
			fmt.Sprintf("%.1f", o.MBPerClient),
			stats.FormatPercent(o.MBIncrease))
	}
	return t.String()
}

// Table6Result reproduces Table 6 (usage by category).
type Table6Result struct {
	Rows    []AppRow
	TotalTB float64
}

// Table6Categories rolls application usage up to categories.
func Table6Categories(now, before *UsageEpoch) *Table6Result {
	classifier := apps.CatalogByName()
	roll := func(u *UsageEpoch) (map[apps.Category]*usageCell, map[apps.Category]map[uint64]bool) {
		cells := make(map[apps.Category]*usageCell)
		clients := make(map[apps.Category]map[uint64]bool)
		for _, c := range u.Store.Clients() {
			for name, rec := range c.Apps {
				cat := apps.CatOther
				if info, ok := classifier[name]; ok {
					cat = info.Category
				}
				cell, ok := cells[cat]
				if !ok {
					cell = &usageCell{}
					cells[cat] = cell
					clients[cat] = make(map[uint64]bool)
				}
				cell.Bytes += float64(rec.UpBytes+rec.DownBytes) * u.Scale
				cell.Down += float64(rec.DownBytes) * u.Scale
				clients[cat][c.MAC.Uint64()] = true
			}
		}
		return cells, clients
	}
	nowCells, nowClients := roll(now)
	beforeCells, beforeClients := roll(before)

	var total float64
	for _, cell := range nowCells {
		total += cell.Bytes
	}
	var rows []AppRow
	for _, cat := range apps.Categories() {
		cell := nowCells[cat]
		if cell == nil {
			continue
		}
		nClients := float64(len(nowClients[cat])) * now.Scale
		row := AppRow{
			Name:     cat.String(),
			Category: cat,
			TB:       cell.Bytes / 1e12,
			Clients:  nClients,
		}
		if total > 0 {
			row.PctTotal = cell.Bytes / total
		}
		if cell.Bytes > 0 {
			row.PctDownload = cell.Down / cell.Bytes
		}
		if nClients > 0 {
			row.MBPerClient = cell.Bytes / nClients / 1e6
		}
		if b := beforeCells[cat]; b != nil {
			row.TBIncrease = stats.PercentChange(b.Bytes, cell.Bytes)
			bClients := float64(len(beforeClients[cat])) * before.Scale
			row.ClientsIncrease = stats.PercentChange(bClients, nClients)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TB > rows[j].TB })
	return &Table6Result{Rows: rows, TotalTB: total / 1e12}
}

// Render prints Table 6.
func (r *Table6Result) Render() string {
	t := stats.NewTable("Table 6: Usage by application categories",
		"Category", "TB (% total/% down)", "% incr", "# clients", "% incr", "MB/client")
	for _, o := range r.Rows {
		t.AddRow(o.Name,
			fmt.Sprintf("%.3g (%s/%s)", o.TB, stats.FormatPercent(o.PctTotal), stats.FormatPercent(o.PctDownload)),
			stats.FormatPercent(o.TBIncrease),
			fmt.Sprintf("%.0f", o.Clients),
			stats.FormatPercent(o.ClientsIncrease),
			fmt.Sprintf("%.1f", o.MBPerClient))
	}
	return t.String()
}

// Table4Result reproduces Table 4 (client capabilities, two years).
type Table4Result struct {
	Now, Before dot11.CapabilityCounts
}

// Table4Capabilities aggregates the capability IEs the APs decoded from
// association frames.
func Table4Capabilities(now, before *UsageEpoch) *Table4Result {
	collect := func(u *UsageEpoch) dot11.CapabilityCounts {
		var cc dot11.CapabilityCounts
		for _, c := range u.Store.Clients() {
			cc.Add(c.Caps)
		}
		return cc
	}
	return &Table4Result{Now: collect(now), Before: collect(before)}
}

// Render prints Table 4.
func (r *Table4Result) Render() string {
	t := stats.NewTable("Table 4: Client capabilities", "", "Jan. 2014", "Jan. 2015")
	add := func(name string, before, now int) {
		t.AddRow(name,
			stats.FormatPercent(r.Before.Fraction(before)),
			stats.FormatPercent(r.Now.Fraction(now)))
	}
	add("802.11g", r.Before.G, r.Now.G)
	add("802.11n", r.Before.N, r.Now.N)
	add("5 GHz", r.Before.FiveGHz, r.Now.FiveGHz)
	add("40 MHz channels", r.Before.Width40, r.Now.Width40)
	add("802.11ac", r.Before.AC, r.Now.AC)
	add("Two streams", r.Before.TwoStreams, r.Now.TwoStreams)
	add("Three streams", r.Before.ThreeStreams, r.Now.ThreeStreams)
	add("Four streams", r.Before.FourStreams, r.Now.FourStreams)
	return t.String()
}

// Figure1Result reproduces Figure 1: the RSSI snapshot of connected
// clients.
type Figure1Result struct {
	RSSI24, RSSI5 *stats.CDF
	// Counts are paper-scale client counts per band.
	Count24, Count5 float64
	// CapableFiveGHz is the fraction of snapshot clients that advertise
	// 5 GHz support (the paradox the paper highlights).
	CapableFiveGHz float64
}

// Figure1RSSI computes the association snapshot from a usage epoch.
func Figure1RSSI(u *UsageEpoch) *Figure1Result {
	res := &Figure1Result{RSSI24: &stats.CDF{}, RSSI5: &stats.CDF{}}
	capable := 0.0
	total := 0.0
	for _, c := range u.Store.Clients() {
		total++
		if c.Caps.FiveGHz {
			capable++
		}
		if c.Band == dot11.Band5 {
			res.RSSI5.Add(float64(c.RSSIdB))
			res.Count5 += u.Scale
		} else {
			res.RSSI24.Add(float64(c.RSSIdB))
			res.Count24 += u.Scale
		}
	}
	if total > 0 {
		res.CapableFiveGHz = capable / total
	}
	return res
}

// Fraction24 returns the share of snapshot clients on 2.4 GHz.
func (r *Figure1Result) Fraction24() float64 {
	total := r.Count24 + r.Count5
	if total == 0 {
		return 0
	}
	return r.Count24 / total
}

// Render prints Figure 1 as a CDF chart plus the headline numbers.
func (r *Figure1Result) Render() string {
	out := stats.RenderCDFs("Figure 1: client RSSI (dB above noise) at the AP", 64, 16,
		map[string]*stats.CDF{"2.4 GHz": r.RSSI24, "5 GHz": r.RSSI5})
	out += fmt.Sprintf("clients: %.0f on 2.4 GHz (%.0f%%), %.0f on 5 GHz; %.0f%% 5 GHz-capable\n",
		r.Count24, r.Fraction24()*100, r.Count5, r.CapableFiveGHz*100)
	out += fmt.Sprintf("median SNR: %.1f dB (2.4 GHz), %.1f dB (5 GHz)\n",
		r.RSSI24.Median(), r.RSSI5.Median())
	return out
}

// Table2Result reproduces Table 2 (networks by industry).
type Table2Result struct {
	Rows  []synth.Industry
	Total int
}

// Table2Industries tallies the simulated fleet's industries at paper
// scale.
func Table2Industries(f *synth.Fleet) *Table2Result {
	counts := make(map[string]int)
	for _, n := range f.Networks {
		counts[n.Industry]++
	}
	scale := f.Params.Scale()
	var res Table2Result
	for _, ind := range synth.Industries() {
		scaled := int(float64(counts[ind.Name])*scale + 0.5)
		res.Rows = append(res.Rows, synth.Industry{Name: ind.Name, Networks: scaled})
		res.Total += scaled
	}
	return &res
}

// Render prints Table 2.
func (r *Table2Result) Render() string {
	t := stats.NewTable("Table 2: Network deployment types", "Industry", "# networks")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Networks))
	}
	t.AddRow("Total", fmt.Sprintf("%d", r.Total))
	return t.String()
}

// Table1Result reproduces Table 1 (hardware platforms).
type Table1Result struct {
	Platforms []ap.Hardware
}

// Table1Hardware returns the measured hardware platforms.
func Table1Hardware() *Table1Result {
	return &Table1Result{Platforms: []ap.Hardware{ap.HardwareMR16, ap.HardwareMR18}}
}

// Render prints Table 1.
func (r *Table1Result) Render() string {
	t := stats.NewTable("Table 1: Hardware platforms", "", r.Platforms[0].Model, r.Platforms[1].Model)
	t.AddRow("CPU", r.Platforms[0].CPU, r.Platforms[1].CPU)
	t.AddRow("Memory",
		fmt.Sprintf("%d MB", r.Platforms[0].MemoryMB),
		fmt.Sprintf("%d MB", r.Platforms[1].MemoryMB))
	t.AddRow("TX power",
		fmt.Sprintf("%.0f dBm (2.4), %.0f dBm (5)", r.Platforms[0].Radio24.TxPowerDBm, r.Platforms[0].Radio5.TxPowerDBm),
		fmt.Sprintf("%.0f dBm (2.4), %.0f dBm (5)", r.Platforms[1].Radio24.TxPowerDBm, r.Platforms[1].Radio5.TxPowerDBm))
	t.AddRow("Antenna",
		fmt.Sprintf("%.0f dBi (2.4), %.0f dBi (5)", r.Platforms[0].Radio24.AntennaGainDBi, r.Platforms[0].Radio5.AntennaGainDBi),
		fmt.Sprintf("%.0f dBi (2.4), %.0f dBi (5)", r.Platforms[1].Radio24.AntennaGainDBi, r.Platforms[1].Radio5.AntennaGainDBi))
	t.AddRow("Scanning radio", "no", "yes (1x1, both bands)")
	return t.String()
}
