package core

import (
	"fmt"

	"wlanscale/internal/backend"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/rng"
	"wlanscale/internal/synth"
)

// Config sizes a study run. The defaults (via DefaultConfig) are laptop
// scale; Full() matches the paper's populations.
type Config struct {
	// Seed roots all randomness.
	Seed uint64
	// UsageNetworks is the simulated subset of the 20,667 networks for
	// the usage study (Tables 2-6, Figure 1).
	UsageNetworks int
	// ClientCap bounds clients per network (0 = uncapped).
	ClientCap int
	// LinkNetworks sizes the fleet for the link study (Figures 3-5).
	LinkNetworks int
	// LinkWindows is the number of 300 s windows measured per link for
	// the delivery CDF (2016 = a full week).
	LinkWindows int
	// Sampling selects the probe sampling mode.
	Sampling meshprobe.SamplingMode
	// UtilAPs is the number of MR16 APs measured for Figure 6.
	UtilAPs int
	// UtilWindows is the number of measurement windows per AP.
	UtilWindows int
	// ScanAPs is the number of MR18 APs swept for Figures 7-10.
	ScanAPs int
	// Workers is the usage-epoch worker-pool size; 0 means GOMAXPROCS.
	// Results are identical for every value (see epochpool.go).
	Workers int
	// WireVersion selects the harvest wire format the offline pipeline
	// round-trips every report through: 0 or 1 is the per-report v1
	// protocol, 2 the delta-coded batch frames (one batch per network).
	// The ingested fleet — and so every table, figure, and digest — is
	// identical for either version (pinned by the wire-equivalence
	// tests).
	WireVersion int
	// Obs, when set, receives the pipeline's stage metrics (per-worker
	// network counts, simulate/merge timing — the "epoch.*" names in
	// DESIGN.md §8). Metrics are observe-only: a nil and a non-nil
	// registry produce bit-identical simulation output.
	Obs *obs.Registry
	// Trace, when set, stamps sampled harvest reports with deterministic
	// trace IDs and records the offline pipeline's span chain
	// (agent.enqueue → tunnel.write → daemon.read → store.ingest →
	// epoch.merge) into the tracer's flight recorder. Like Obs it is
	// observe-only: tracing on or off, stdout and epoch digests are
	// bit-identical (pinned by TestRunUsageEpochObsInvariance).
	Trace *trace.Tracer
}

// DefaultConfig returns a configuration that runs the whole study in
// seconds on a laptop while preserving every distribution shape.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		UsageNetworks: 120,
		ClientCap:     400,
		LinkNetworks:  150,
		LinkWindows:   60,
		Sampling:      meshprobe.BinomialApprox,
		UtilAPs:       250,
		UtilWindows:   24,
		ScanAPs:       200,
	}
}

// Full returns the paper-scale configuration: 20,667 usage networks,
// 10,000 APs per hardware study, full-week link series.
func (c Config) Full() Config {
	c.UsageNetworks = synth.PaperNetworkCount
	c.ClientCap = 0
	c.LinkNetworks = 4000 // ~10,000 MR16 APs
	c.LinkWindows = meshprobe.WindowsPerWeek
	c.UtilAPs = 10000
	c.UtilWindows = 7 * 24
	c.ScanAPs = 10000
	return c
}

// Study holds the shared state of one reproduction run.
type Study struct {
	Config Config

	// Fleet15 and Fleet14 are the same universe at the two usage
	// epochs.
	Fleet15, Fleet14 *synth.Fleet
	// LinkFleet sizes the interference/link studies.
	LinkFleet *synth.Fleet

	// Store receives everything the backend harvested.
	Store *backend.Store

	src *rng.Source
}

// NewStudy builds the simulated universes.
func NewStudy(cfg Config) (*Study, error) {
	f15, err := synth.GenerateFleet(synth.Params{
		Seed: cfg.Seed, NumNetworks: cfg.UsageNetworks,
		Epoch: epoch.Jan2015, ClientCap: cfg.ClientCap,
	})
	if err != nil {
		return nil, fmt.Errorf("core: usage fleet 2015: %w", err)
	}
	f14, err := synth.GenerateFleet(synth.Params{
		Seed: cfg.Seed, NumNetworks: cfg.UsageNetworks,
		Epoch: epoch.Jan2014, ClientCap: cfg.ClientCap,
	})
	if err != nil {
		return nil, fmt.Errorf("core: usage fleet 2014: %w", err)
	}
	lf, err := synth.GenerateFleet(synth.Params{
		Seed: cfg.Seed + 1, NumNetworks: cfg.LinkNetworks,
		Epoch: epoch.Jan2015, ClientCap: 50,
	})
	if err != nil {
		return nil, fmt.Errorf("core: link fleet: %w", err)
	}
	return &Study{
		Config:    cfg,
		Fleet15:   f15,
		Fleet14:   f14,
		LinkFleet: lf,
		Store:     backend.NewStore(),
		src:       rng.New(cfg.Seed ^ 0xd1ce),
	}, nil
}
