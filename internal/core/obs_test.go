package core

import (
	"strings"
	"testing"
	"time"

	"wlanscale/internal/obs"
	"wlanscale/internal/obs/health"
	"wlanscale/internal/obs/series"
	"wlanscale/internal/obs/trace"
)

// TestRunUsageEpochObsInvariance pins the observe-only contract of the
// observability layer (DESIGN.md §8): attaching a metrics registry to
// the pipeline must not change a single byte of simulation output. The
// instrumented run is compared digest-for-digest against a plain run at
// the same seed and worker count.
func TestRunUsageEpochObsInvariance(t *testing.T) {
	const seed = 2026
	_, plain := runEpochAt(t, seed, 4)

	cfg := parallelConfig(seed)
	cfg.Obs = obs.NewRegistry()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.RunUsageEpochWorkers(s.Fleet15, 4)
	if err != nil {
		t.Fatal(err)
	}

	a, b := storeDigest(t, plain), storeDigest(t, u)
	if len(a) != len(b) {
		t.Fatalf("digest lengths differ: plain=%d instrumented=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instrumented run diverges at digest line %d:\n  plain:        %s\n  instrumented: %s",
				i, a[i], b[i])
		}
	}

	// And the registry actually observed the run: every network was
	// counted, each exactly once, with a simulate span per network.
	nets := int64(len(s.Fleet15.NetworkOrder()))
	if got := cfg.Obs.Counter("epoch.networks").Value(); got != nets {
		t.Fatalf("epoch.networks = %d, want %d", got, nets)
	}
	var perWorker int64
	for _, sm := range cfg.Obs.Snapshot() {
		if strings.HasPrefix(sm.Name, "epoch.worker.") {
			perWorker += sm.Value
		}
	}
	if perWorker != nets {
		t.Fatalf("per-worker network counts sum to %d, want %d", perWorker, nets)
	}
	if got := cfg.Obs.Histogram("epoch.net_sim_us", nil).Count(); got != nets {
		t.Fatalf("epoch.net_sim_us count = %d, want %d", got, nets)
	}
	if got := cfg.Obs.Histogram("epoch.merge_us", nil).Count(); got != 1 {
		t.Fatalf("epoch.merge_us count = %d, want 1", got)
	}

	// Tracing at full sampling is equally observe-only: digests match
	// the plain run byte for byte...
	tcfg := parallelConfig(seed)
	rec := trace.NewRecorder(1 << 16)
	tcfg.Trace = trace.New(rec, seed, 1.0)
	ts, err := NewStudy(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := ts.RunUsageEpochWorkers(ts.Fleet15, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := storeDigest(t, tu)
	if len(a) != len(c) {
		t.Fatalf("digest lengths differ: plain=%d traced=%d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("traced run diverges at digest line %d:\n  plain:  %s\n  traced: %s", i, a[i], c[i])
		}
	}

	// ...and the recorder holds at least one complete trace whose span
	// tree covers the full agent→tunnel→daemon→store→epoch chain with
	// correct parent links.
	id, evs, ok := rec.LastTrace()
	if !ok {
		t.Fatal("flight recorder is empty after a fully sampled run")
	}
	wantStages := []string{"agent.enqueue", "tunnel.write", "daemon.read", "store.ingest", "epoch.merge"}
	if len(evs) != len(wantStages) {
		t.Fatalf("trace %v has %d spans, want %d: %+v", id, len(evs), len(wantStages), evs)
	}
	for i, ev := range evs {
		if ev.Stage != wantStages[i] {
			t.Fatalf("span %d stage = %q, want %q", i, ev.Stage, wantStages[i])
		}
		if ev.Span != uint32(i+1) || ev.Parent != uint32(i) {
			t.Fatalf("span %d has ids span=%d parent=%d, want span=%d parent=%d",
				i, ev.Span, ev.Parent, i+1, i)
		}
	}

	// Trace IDs are deterministic: the same seed re-run assigns the same
	// ID to the last trace.
	rcfg := parallelConfig(seed)
	rec2 := trace.NewRecorder(1 << 16)
	rcfg.Trace = trace.New(rec2, seed, 1.0)
	rs, err := NewStudy(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunUsageEpochWorkers(rs.Fleet15, 1); err != nil {
		t.Fatal(err)
	}
	ids1, ids2 := rec.TraceIDs(), rec2.TraceIDs()
	set1 := make(map[trace.ID]bool, len(ids1))
	for _, v := range ids1 {
		set1[v] = true
	}
	for _, v := range ids2 {
		if !set1[v] {
			t.Fatalf("trace ID %v from workers=1 run absent from workers=4 run", v)
		}
	}
}

// TestRunUsageEpochSeriesHealthInvariance extends the observe-only
// contract to the full PR-9 observability stack: a run whose registry
// is concurrently sampled into time-series rings and judged by the
// health rule engine must produce byte-identical digests to a plain
// run, across ten seeds. The recorder and engine only read the
// registry — this pins that nothing in the sample/eval path feeds back
// into the pipeline.
func TestRunUsageEpochSeriesHealthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed invariance sweep in -short mode")
	}
	seeds := []uint64{1, 2, 3, 7, 42, 99, 2014, 2015, 2026, 0xd1ce}
	for _, seed := range seeds {
		_, plain := runEpochAt(t, seed, 4)

		cfg := parallelConfig(seed)
		cfg.Obs = obs.NewRegistry()
		rec := series.NewRecorder(cfg.Obs, series.Options{Cap: 64})
		eng := health.NewEngine(rec, health.DefaultRules(2, 2))
		eng.EnableObs(cfg.Obs)
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Sample and evaluate concurrently with the run, the way
		// merakid's seriesLoop does, on a tight synthetic cadence.
		stop := make(chan struct{})
		looped := make(chan struct{})
		go func() {
			defer close(looped)
			now := time.Unix(1_700_000_000, 0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now = now.Add(time.Second)
				rec.Sample(now)
				eng.Eval(now)
			}
		}()
		u, err := s.RunUsageEpochWorkers(s.Fleet15, 4)
		close(stop)
		<-looped
		if err != nil {
			t.Fatal(err)
		}
		// One final deterministic tick so the rings saw the finished run.
		rec.Sample(time.Unix(1_800_000_000, 0))
		eng.Eval(time.Unix(1_800_000_000, 0))

		a, b := storeDigest(t, plain), storeDigest(t, u)
		if len(a) != len(b) {
			t.Fatalf("seed %d: digest lengths differ: plain=%d instrumented=%d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: series+health run diverges at digest line %d:\n  plain:        %s\n  instrumented: %s",
					seed, i, a[i], b[i])
			}
		}
		if rec.Ticks() < 1 {
			t.Fatalf("seed %d: recorder never sampled", seed)
		}
		if len(rec.Names()) == 0 {
			t.Fatalf("seed %d: recorder saw no metrics", seed)
		}
	}
}
