package core

import (
	"strings"
	"testing"

	"wlanscale/internal/obs"
)

// TestRunUsageEpochObsInvariance pins the observe-only contract of the
// observability layer (DESIGN.md §8): attaching a metrics registry to
// the pipeline must not change a single byte of simulation output. The
// instrumented run is compared digest-for-digest against a plain run at
// the same seed and worker count.
func TestRunUsageEpochObsInvariance(t *testing.T) {
	const seed = 2026
	_, plain := runEpochAt(t, seed, 4)

	cfg := parallelConfig(seed)
	cfg.Obs = obs.NewRegistry()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.RunUsageEpochWorkers(s.Fleet15, 4)
	if err != nil {
		t.Fatal(err)
	}

	a, b := storeDigest(t, plain), storeDigest(t, u)
	if len(a) != len(b) {
		t.Fatalf("digest lengths differ: plain=%d instrumented=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instrumented run diverges at digest line %d:\n  plain:        %s\n  instrumented: %s",
				i, a[i], b[i])
		}
	}

	// And the registry actually observed the run: every network was
	// counted, each exactly once, with a simulate span per network.
	nets := int64(len(s.Fleet15.NetworkOrder()))
	if got := cfg.Obs.Counter("epoch.networks").Value(); got != nets {
		t.Fatalf("epoch.networks = %d, want %d", got, nets)
	}
	var perWorker int64
	for _, sm := range cfg.Obs.Snapshot() {
		if strings.HasPrefix(sm.Name, "epoch.worker.") {
			perWorker += sm.Value
		}
	}
	if perWorker != nets {
		t.Fatalf("per-worker network counts sum to %d, want %d", perWorker, nets)
	}
	if got := cfg.Obs.Histogram("epoch.net_sim_us", nil).Count(); got != nets {
		t.Fatalf("epoch.net_sim_us count = %d, want %d", got, nets)
	}
	if got := cfg.Obs.Histogram("epoch.merge_us", nil).Count(); got != 1 {
		t.Fatalf("epoch.merge_us count = %d, want 1", got)
	}
}
