package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata/golden snapshots")

// goldenConfig pins the golden fixture: seed 2026 (the EXPERIMENTS.md
// bench seed) at a scale small enough to regenerate under -race on
// every CI run.
func goldenConfig() Config {
	cfg := smallConfig(2026)
	cfg.UsageNetworks = 24
	cfg.ClientCap = 150
	return cfg
}

// TestGoldenRenders pins the seed-2026 Render() output of Table 1-6 and
// Figure 1 against testdata/golden/. Any behavioral drift in the
// simulation, classification, aggregation, or rendering path — however
// it is scheduled across workers — fails this test with a diff. To
// accept an intentional change:
//
//	go test ./internal/core -run TestGoldenRenders -update
func TestGoldenRenders(t *testing.T) {
	s, err := NewStudy(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	now, err := s.RunUsageEpoch(s.Fleet15)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.RunUsageEpoch(s.Fleet14)
	if err != nil {
		t.Fatal(err)
	}
	renders := map[string]string{
		"table1": Table1Hardware().Render(),
		"table2": Table2Industries(s.Fleet15).Render(),
		"table3": Table3UsageByOS(now, before).Render(),
		"table4": Table4Capabilities(now, before).Render(),
		"table5": Table5TopApps(now, before, 20).Render(),
		"table6": Table6Categories(now, before).Render(),
		"fig1":   Figure1RSSI(now).Render(),
	}
	dir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, got := range renders {
		name, got := name, got
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from seed-2026 golden.\n--- want\n%s\n--- got\n%s", name, want, got)
			}
		})
	}
}
