package core

import (
	"fmt"
	"math"
	"time"

	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/radio"
	"wlanscale/internal/stats"
)

// measurementHours spreads utilization windows across a day, weighted
// toward business hours the way polling-period coverage is in practice.
var measurementHours = []float64{1, 4, 7, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 21, 23}

// Figure6Result reproduces Figure 6: channel utilization on the serving
// channel as measured by MR16 access points.
type Figure6Result struct {
	Util24, Util5 *stats.CDF
	// APs is the measured population (paper scale).
	APs float64
}

// RunFigure6 measures every MR16's serving channels across UtilWindows
// windows spread over the day and records the per-AP mean utilization.
func (s *Study) RunFigure6() (*Figure6Result, error) {
	res := &Figure6Result{Util24: &stats.CDF{}, Util5: &stats.CDF{}}
	mr16, _ := s.LinkFleet.APsByModel()
	if len(mr16) > s.Config.UtilAPs {
		mr16 = mr16[:s.Config.UtilAPs]
	}
	scale := float64(10000) / float64(max(len(mr16), 1))
	res.APs = float64(len(mr16)) * scale
	for _, a := range mr16 {
		n, apIdx, ok := s.LinkFleet.Locate(a)
		if !ok {
			return nil, fmt.Errorf("core: AP %s not in fleet", a.Serial)
		}
		env, err := s.LinkFleet.Environment(n, apIdx, epoch.Jan2015)
		if err != nil {
			return nil, err
		}
		for w := 0; w < s.Config.UtilWindows; w++ {
			tod := measurementHours[w%len(measurementHours)]
			a.Radio24.Measure(env.Hood, tod, time.Minute, env.OwnDuty24)
			a.Radio5.Measure(env.Hood, tod, time.Minute, env.OwnDuty5)
		}
		res.Util24.Add(a.Radio24.ResetCounters().Utilization())
		res.Util5.Add(a.Radio5.ResetCounters().Utilization())
	}
	return res, nil
}

// Render prints Figure 6.
func (r *Figure6Result) Render() string {
	out := stats.RenderCDFs("Figure 6: channel utilization (MR16, serving channel)", 64, 14,
		map[string]*stats.CDF{"2.4 GHz": r.Util24, "5 GHz": r.Util5})
	out += fmt.Sprintf("2.4 GHz: median %.0f%%, p90 %.0f%%;  5 GHz: median %.0f%%, p90 %.0f%%\n",
		r.Util24.Median()*100, r.Util24.Quantile(0.9)*100,
		r.Util5.Median()*100, r.Util5.Quantile(0.9)*100)
	return out
}

// ScatterResult reproduces Figures 7 and 8: per-(AP, channel)
// utilization versus the number of nearby APs detected on that channel,
// from MR18 three-minute scans.
type ScatterResult struct {
	Band    dot11.Band
	Scatter *stats.Scatter
}

// RunScatter sweeps the MR18 population's scanning radios and pairs
// each channel's busy fraction with its detected AP count.
func (s *Study) RunScatter(band dot11.Band) (*ScatterResult, error) {
	res := &ScatterResult{Band: band, Scatter: &stats.Scatter{}}
	_, mr18 := s.LinkFleet.APsByModel()
	if len(mr18) > s.Config.ScanAPs {
		mr18 = mr18[:s.Config.ScanAPs]
	}
	for _, a := range mr18 {
		n, apIdx, ok := s.LinkFleet.Locate(a)
		if !ok {
			return nil, fmt.Errorf("core: AP %s not in fleet", a.Serial)
		}
		env, err := s.LinkFleet.Environment(n, apIdx, epoch.Jan2015)
		if err != nil {
			return nil, err
		}
		// Count detected networks per channel from the scan view. Within
		// one three-minute window the 5 ms-dwell scanner misses a
		// fraction of beacons, so detection is probabilistic — part of
		// why the paper's per-window scatter decorrelates.
		detSrc := s.src.Split("scatter-detect/" + a.Serial)
		perChannel := make(map[int]float64)
		neighbors := env.Neighbors24
		if band == dot11.Band5 {
			neighbors = env.Neighbors5
		}
		for _, rec := range a.ScanNeighbors(neighbors) {
			if detSrc.Bool(0.8) {
				perChannel[rec.Channel]++
			}
		}
		// Three-minute aggregated sweep (the backend collects every
		// three minutes; SweepAveraged models the in-period averaging).
		// Windows are pooled from across the day, as the published
		// scatter pools three-minute samples from the whole
		// measurement period.
		tod := measurementHours[detSrc.IntN(len(measurementHours))]
		samples := radio.SweepAveraged(env.Hood, tod, 3)
		for _, cs := range samples {
			if cs.Channel.Band != band {
				continue
			}
			res.Scatter.Add(perChannel[cs.Channel.Number], cs.Busy)
		}
	}
	return res, nil
}

// Render prints the scatter summary.
func (r *ScatterResult) Render() string {
	figure := "Figure 7"
	if r.Band == dot11.Band5 {
		figure = "Figure 8"
	}
	out := fmt.Sprintf("%s: utilization vs nearby APs, %s (%d points)\n", figure, r.Band, r.Scatter.N())
	out += fmt.Sprintf("Pearson r = %+.3f, Spearman rho = %+.3f\n", r.Scatter.Pearson(), r.Scatter.Spearman())
	for _, p := range r.Scatter.BinnedMeans(8) {
		out += fmt.Sprintf("  %5.1f nearby APs -> mean utilization %5.1f%%\n", p.X, p.Y*100)
	}
	return out
}

// Figure9Result reproduces Figure 9: day versus night utilization
// across all channels, from the MR18 scanning radio.
type Figure9Result struct {
	Day24, Night24, Day5, Night5 *stats.CDF
}

// RunFigure9 samples every MR18's full-band sweep at 10:00 and 22:00.
func (s *Study) RunFigure9() (*Figure9Result, error) {
	res := &Figure9Result{
		Day24: &stats.CDF{}, Night24: &stats.CDF{},
		Day5: &stats.CDF{}, Night5: &stats.CDF{},
	}
	_, mr18 := s.LinkFleet.APsByModel()
	if len(mr18) > s.Config.ScanAPs {
		mr18 = mr18[:s.Config.ScanAPs]
	}
	for _, a := range mr18 {
		n, apIdx, ok := s.LinkFleet.Locate(a)
		if !ok {
			return nil, fmt.Errorf("core: AP %s not in fleet", a.Serial)
		}
		env, err := s.LinkFleet.Environment(n, apIdx, epoch.Jan2015)
		if err != nil {
			return nil, err
		}
		day := radio.SweepAveraged(env.Hood, 10, 3)
		night := radio.SweepAveraged(env.Hood, 22, 3)
		for i := range day {
			if day[i].Channel.Band == dot11.Band24 {
				res.Day24.Add(day[i].Busy)
				res.Night24.Add(night[i].Busy)
			} else {
				res.Day5.Add(day[i].Busy)
				res.Night5.Add(night[i].Busy)
			}
		}
	}
	return res, nil
}

// Render prints Figure 9.
func (r *Figure9Result) Render() string {
	out := stats.RenderCDFs("Figure 9: channel utilization day vs night (MR18, all channels), 2.4 GHz", 64, 14,
		map[string]*stats.CDF{"day (10:00)": r.Day24, "night (22:00)": r.Night24})
	out += stats.RenderCDFs("Figure 9 (cont.): 5 GHz", 64, 14,
		map[string]*stats.CDF{"day (10:00)": r.Day5, "night (22:00)": r.Night5})
	out += fmt.Sprintf("2.4 GHz median: day %.1f%% vs night %.1f%%;  5 GHz median: day %.1f%% vs night %.1f%%\n",
		r.Day24.Median()*100, r.Night24.Median()*100,
		r.Day5.Median()*100, r.Night5.Median()*100)
	return out
}

// Figure10Result reproduces Figure 10: the share of busy time with
// decodable 802.11 headers.
type Figure10Result struct {
	Decodable24, Decodable5 *stats.CDF
}

// RunFigure10 computes, per AP and band, the busy-weighted share of
// utilization that carried decodable 802.11 headers — "the percentage
// of utilization that contained decodable 802.11 headers" across the
// band's channels.
func (s *Study) RunFigure10() (*Figure10Result, error) {
	res := &Figure10Result{Decodable24: &stats.CDF{}, Decodable5: &stats.CDF{}}
	_, mr18 := s.LinkFleet.APsByModel()
	if len(mr18) > s.Config.ScanAPs {
		mr18 = mr18[:s.Config.ScanAPs]
	}
	for _, a := range mr18 {
		n, apIdx, ok := s.LinkFleet.Locate(a)
		if !ok {
			return nil, fmt.Errorf("core: AP %s not in fleet", a.Serial)
		}
		env, err := s.LinkFleet.Environment(n, apIdx, epoch.Jan2015)
		if err != nil {
			return nil, err
		}
		var busy24, dec24, busy5, dec5 float64
		for _, cs := range radio.SweepAveraged(env.Hood, 13, 3) {
			if cs.Channel.Band == dot11.Band24 {
				busy24 += cs.Busy
				dec24 += cs.Decodable
			} else {
				busy5 += cs.Busy
				dec5 += cs.Decodable
			}
		}
		if busy24 > 0.01 {
			res.Decodable24.Add(math.Min(dec24/busy24, 1))
		}
		if busy5 > 0.01 {
			res.Decodable5.Add(math.Min(dec5/busy5, 1))
		}
	}
	return res, nil
}

// Render prints Figure 10.
func (r *Figure10Result) Render() string {
	out := stats.RenderCDFs("Figure 10: decodable 802.11 fraction of busy time", 64, 14,
		map[string]*stats.CDF{"2.4 GHz": r.Decodable24, "5 GHz": r.Decodable5})
	out += fmt.Sprintf("median decodable fraction: %.0f%% (2.4 GHz), %.0f%% (5 GHz)\n",
		r.Decodable24.Median()*100, r.Decodable5.Median()*100)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
