package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// parallelConfig is small enough that a workers=1 and a workers=8 run
// per seed stay fast under the race detector.
func parallelConfig(seed uint64) Config {
	cfg := smallConfig(seed)
	cfg.UsageNetworks = 10
	cfg.ClientCap = 50
	return cfg
}

// storeDigest flattens a usage store into a comparable, fully sorted
// form covering every field the tables and figures read.
func storeDigest(t *testing.T, u *UsageEpoch) []string {
	t.Helper()
	var out []string
	ing, dup := u.Store.Stats()
	out = append(out, fmt.Sprintf("ingests=%d dupes=%d clients=%d", ing, dup, u.Store.NumClients()))
	for _, c := range u.Store.Clients() {
		aps := make([]string, 0, len(c.APs))
		for s := range c.APs {
			aps = append(aps, s)
		}
		sort.Strings(aps)
		apps := make([]string, 0, len(c.Apps))
		for name, rec := range c.Apps {
			apps = append(apps, fmt.Sprintf("%s:%d/%d/%d", name, rec.UpBytes, rec.DownBytes, rec.Flows))
		}
		sort.Strings(apps)
		fps := make([]string, 0, len(c.DHCPFingerprints))
		for _, fp := range c.DHCPFingerprints {
			fps = append(fps, fmt.Sprintf("%x", fp))
		}
		out = append(out, fmt.Sprintf("mac=%v band=%v rssi=%d caps=%+v os=%v aps=%v uas=%v fps=%v apps=%v",
			c.MAC, c.Band, c.RSSIdB, c.Caps, c.OS(), aps, c.UserAgents, fps, apps))
	}
	for _, serial := range u.Store.RadioSerials() {
		out = append(out, fmt.Sprintf("radio %s %+v", serial, u.Store.RadioSeries(serial)))
	}
	return out
}

// runEpochAt builds a fresh study (fleets carry mutable AP state, so
// every run needs its own) and executes the usage epoch with the given
// worker count.
func runEpochAt(t *testing.T, seed uint64, workers int) (*Study, *UsageEpoch) {
	t.Helper()
	s, err := NewStudy(parallelConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.RunUsageEpochWorkers(s.Fleet15, workers)
	if err != nil {
		t.Fatal(err)
	}
	return s, u
}

// TestRunUsageEpochWorkerEquivalence is the determinism contract of the
// parallel pipeline: for a spread of seeds, a serial run and an
// 8-worker run must produce identical UsageEpoch aggregates, down to
// every per-client field and every radio series.
func TestRunUsageEpochWorkerEquivalence(t *testing.T) {
	seeds := []uint64{1, 2, 3, 7, 42, 99, 2014, 2015, 2026, 0xd1ce}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, serial := runEpochAt(t, seed, 1)
			_, parallel := runEpochAt(t, seed, 8)
			if serial.Epoch != parallel.Epoch || serial.Scale != parallel.Scale {
				t.Fatalf("epoch/scale differ: %v/%v vs %v/%v",
					serial.Epoch, serial.Scale, parallel.Epoch, parallel.Scale)
			}
			a, b := storeDigest(t, serial), storeDigest(t, parallel)
			if len(a) != len(b) {
				t.Fatalf("digest lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=1 and workers=8 diverge at digest line %d:\n  serial:   %s\n  parallel: %s",
						i, a[i], b[i])
				}
			}
		})
	}
}

// TestRunUsageEpochRenderEquivalence checks the contract end to end:
// the rendered tables and figure — what EXPERIMENTS.md actually records
// — must be byte-identical across worker counts, including the merge
// into Table 3/5/6's year-over-year joins.
func TestRunUsageEpochRenderEquivalence(t *testing.T) {
	render := func(workers int) map[string]string {
		s, err := NewStudy(parallelConfig(77))
		if err != nil {
			t.Fatal(err)
		}
		now, err := s.RunUsageEpochWorkers(s.Fleet15, workers)
		if err != nil {
			t.Fatal(err)
		}
		before, err := s.RunUsageEpochWorkers(s.Fleet14, workers)
		if err != nil {
			t.Fatal(err)
		}
		return map[string]string{
			"table3": Table3UsageByOS(now, before).Render(),
			"table4": Table4Capabilities(now, before).Render(),
			"table5": Table5TopApps(now, before, 20).Render(),
			"table6": Table6Categories(now, before).Render(),
			"fig1":   Figure1RSSI(now).Render(),
		}
	}
	serial := render(1)
	for _, workers := range []int{3, 8} {
		parallel := render(workers)
		if !reflect.DeepEqual(serial, parallel) {
			for name := range serial {
				if serial[name] != parallel[name] {
					t.Errorf("workers=%d: %s differs from serial render", workers, name)
				}
			}
		}
	}
}

// TestRunUsageEpochWorkersMergeCount verifies the partial-merge step
// neither drops nor double-counts reports: the merged store's ingest
// count equals the fleet's AP count (one report per AP).
func TestRunUsageEpochWorkersMergeCount(t *testing.T) {
	s, u := runEpochAt(t, 11, 4)
	ing, dup := u.Store.Stats()
	if want := s.Fleet15.TotalAPs(); ing != want || dup != 0 {
		t.Errorf("ingests/dupes = %d/%d, want %d/0", ing, dup, want)
	}
	var clients int
	for _, n := range s.Fleet15.Networks {
		clients += n.NumClients
	}
	if got := u.Store.NumClients(); got != clients {
		t.Errorf("NumClients = %d, want %d (serials are fleet-unique)", got, clients)
	}
}

// TestStoreMergeDisjointEqualsIngest cross-checks Merge against direct
// ingestion: splitting a report stream across partial stores and
// merging must equal ingesting everything into one store.
func TestStoreMergeDisjointEqualsIngest(t *testing.T) {
	s, err := NewStudy(parallelConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.RunUsageEpochWorkers(s.Fleet15, 1)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewStudy(parallelConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := s2.RunUsageEpochWorkers(s2.Fleet15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Store.NumClients() != merged.Store.NumClients() {
		t.Fatalf("client counts differ: %d vs %d", direct.Store.NumClients(), merged.Store.NumClients())
	}
	dc, mc := direct.Store.Clients(), merged.Store.Clients()
	for i := range dc {
		if dc[i].MAC != mc[i].MAC || dc[i].Total() != mc[i].Total() {
			t.Fatalf("client %d differs: %v/%d vs %v/%d",
				i, dc[i].MAC, dc[i].Total(), mc[i].MAC, mc[i].Total())
		}
	}
}
