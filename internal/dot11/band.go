package dot11

import (
	"fmt"
	"sort"
)

// Band identifies a frequency band.
type Band uint8

const (
	// Band24 is the 2.4 GHz ISM band (channels 1-13 worldwide, 1-11 in
	// the US under FCC Part 15).
	Band24 Band = iota
	// Band5 is the 5 GHz band spanning the UNII-1 through UNII-3
	// sub-bands.
	Band5
)

// String returns the conventional name of the band.
func (b Band) String() string {
	switch b {
	case Band24:
		return "2.4 GHz"
	case Band5:
		return "5 GHz"
	default:
		return fmt.Sprintf("Band(%d)", uint8(b))
	}
}

// SubBand identifies the regulatory sub-band a 5 GHz channel belongs to.
type SubBand uint8

const (
	// SubBandISM is the 2.4 GHz ISM band.
	SubBandISM SubBand = iota
	// SubBandUNII1 is the 5 GHz lower band (channels 36-48).
	SubBandUNII1
	// SubBandUNII2 is the 5 GHz middle band (channels 52-64, DFS).
	SubBandUNII2
	// SubBandUNII2Ext is the 5 GHz extended band (channels 100-140, DFS).
	SubBandUNII2Ext
	// SubBandUNII3 is the 5 GHz upper band (channels 149-165).
	SubBandUNII3
)

// String returns the regulatory name of the sub-band.
func (s SubBand) String() string {
	switch s {
	case SubBandISM:
		return "2.4 GHz ISM"
	case SubBandUNII1:
		return "UNII-1"
	case SubBandUNII2:
		return "UNII-2"
	case SubBandUNII2Ext:
		return "UNII-2 Extended"
	case SubBandUNII3:
		return "UNII-3"
	default:
		return fmt.Sprintf("SubBand(%d)", uint8(s))
	}
}

// Channel describes one 20 MHz-wide 802.11 channel center.
type Channel struct {
	// Number is the 802.11 channel number (1-13 at 2.4 GHz, 36-165 at
	// 5 GHz).
	Number int
	// Band is the frequency band.
	Band Band
	// CenterMHz is the channel center frequency in MHz.
	CenterMHz int
	// Sub is the regulatory sub-band.
	Sub SubBand
	// DFS reports whether the channel requires Dynamic Frequency
	// Selection (radar detection) before and during use.
	DFS bool
}

// channelTable lists the US (FCC Part 15) channel plan used by the study:
// all measured APs were located in the United States.
var channelTable = buildChannels()

func buildChannels() []Channel {
	var chans []Channel
	// 2.4 GHz: channels 1-11 (US), 5 MHz spacing from 2412 MHz.
	for n := 1; n <= 11; n++ {
		chans = append(chans, Channel{
			Number:    n,
			Band:      Band24,
			CenterMHz: 2407 + 5*n,
			Sub:       SubBandISM,
		})
	}
	add5 := func(numbers []int, sub SubBand, dfs bool) {
		for _, n := range numbers {
			chans = append(chans, Channel{
				Number:    n,
				Band:      Band5,
				CenterMHz: 5000 + 5*n,
				Sub:       sub,
				DFS:       dfs,
			})
		}
	}
	add5([]int{36, 40, 44, 48}, SubBandUNII1, false)
	add5([]int{52, 56, 60, 64}, SubBandUNII2, true)
	// Channels 124 and 128 are omitted: during the study period the FCC
	// TDWR weather-radar restriction kept them out of the US plan, which
	// is why the paper counts ten non-overlapping 40 MHz channels with
	// DFS rather than eleven.
	add5([]int{100, 104, 108, 112, 116, 120, 132, 136, 140}, SubBandUNII2Ext, true)
	add5([]int{149, 153, 157, 161, 165}, SubBandUNII3, false)
	return chans
}

// Channels returns the US channel plan for the band, ordered by channel
// number. The returned slice is shared; callers must not modify it.
func Channels(b Band) []Channel {
	lo := sort.Search(len(channelTable), func(i int) bool { return channelTable[i].Band >= b })
	hi := sort.Search(len(channelTable), func(i int) bool { return channelTable[i].Band > b })
	return channelTable[lo:hi]
}

// AllChannels returns every US channel in both bands.
func AllChannels() []Channel { return channelTable }

// ChannelByNumber looks up a channel by its number within a band.
func ChannelByNumber(b Band, number int) (Channel, bool) {
	for _, c := range Channels(b) {
		if c.Number == number {
			return c, true
		}
	}
	return Channel{}, false
}

// NonOverlapping24 lists the three non-overlapping 20 MHz channels in the
// 2.4 GHz band that the paper's Figure 2 discusses.
var NonOverlapping24 = []int{1, 6, 11}

// Overlap returns the fraction of transmit energy from a transmitter on
// channel tx that lands inside the receive bandwidth of a listener on
// channel rx, both using the given channel widths in MHz (20 or 40).
// The model treats spectral occupancy as rectangular, which captures the
// adjacent-channel behaviour that matters for the study: co-channel
// overlap is 1, 2.4 GHz channels 5 MHz apart overlap 0.75, and channels
// 25 MHz apart (1 vs 6) do not overlap at 20 MHz width.
func Overlap(tx Channel, txWidthMHz int, rx Channel, rxWidthMHz int) float64 {
	if tx.Band != rx.Band {
		return 0
	}
	if txWidthMHz <= 0 {
		txWidthMHz = 20
	}
	if rxWidthMHz <= 0 {
		rxWidthMHz = 20
	}
	txLo := float64(tx.CenterMHz) - float64(txWidthMHz)/2
	txHi := float64(tx.CenterMHz) + float64(txWidthMHz)/2
	rxLo := float64(rx.CenterMHz) - float64(rxWidthMHz)/2
	rxHi := float64(rx.CenterMHz) + float64(rxWidthMHz)/2
	lo := txLo
	if rxLo > lo {
		lo = rxLo
	}
	hi := txHi
	if rxHi < hi {
		hi = rxHi
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (txHi - txLo)
}

// NonOverlapping40MHz5GHz returns the number of non-overlapping 40 MHz
// channels available at 5 GHz, with or without the DFS bands — the counts
// the paper quotes in Section 4.1 (four without DFS, ten with).
func NonOverlapping40MHz5GHz(includeDFS bool) int {
	n := 0
	chans := Channels(Band5)
	for i := 0; i+1 < len(chans); i += 2 {
		a, b := chans[i], chans[i+1]
		// A 40 MHz channel bonds two adjacent 20 MHz channels.
		if b.CenterMHz-a.CenterMHz != 20 {
			i-- // re-align: skip single channel (e.g. 165)
			continue
		}
		if !includeDFS && (a.DFS || b.DFS) {
			continue
		}
		n++
	}
	return n
}
