package dot11

import (
	"fmt"
	"strings"
)

// Capabilities describes the 802.11 capabilities a client advertises when
// it associates — the fields the study's Table 4 tracks year over year.
type Capabilities struct {
	// G reports 802.11g (ERP-OFDM at 2.4 GHz) support.
	G bool
	// N reports 802.11n (HT) support.
	N bool
	// AC reports 802.11ac (VHT) support; implies 5 GHz capability.
	AC bool
	// FiveGHz reports that the client can operate in the 5 GHz band.
	FiveGHz bool
	// Width40 reports 40 MHz channel support.
	Width40 bool
	// Width80 reports 80 MHz channel support (802.11ac).
	Width80 bool
	// Streams is the number of spatial streams (1-4).
	Streams int
}

// Normalize enforces the standard's implication rules: 802.11ac implies
// 802.11n and 5 GHz support; 80 MHz implies 40 MHz; stream counts are
// clamped to [1,4].
func (c Capabilities) Normalize() Capabilities {
	if c.AC {
		c.N = true
		c.FiveGHz = true
		c.Width80 = true
	}
	if c.Width80 {
		c.Width40 = true
	}
	if c.Streams < 1 {
		c.Streams = 1
	}
	if c.Streams > 4 {
		c.Streams = 4
	}
	return c
}

// String renders a compact capability summary such as "11ac/5GHz/80MHz/2ss".
func (c Capabilities) String() string {
	var parts []string
	switch {
	case c.AC:
		parts = append(parts, "11ac")
	case c.N:
		parts = append(parts, "11n")
	case c.G:
		parts = append(parts, "11g")
	default:
		parts = append(parts, "11b")
	}
	if c.FiveGHz {
		parts = append(parts, "5GHz")
	} else {
		parts = append(parts, "2.4GHz-only")
	}
	switch {
	case c.Width80:
		parts = append(parts, "80MHz")
	case c.Width40:
		parts = append(parts, "40MHz")
	default:
		parts = append(parts, "20MHz")
	}
	parts = append(parts, fmt.Sprintf("%dss", c.Streams))
	return strings.Join(parts, "/")
}

// capability IE bit layout (2 bytes) used by Marshal/Unmarshal.
const (
	capBitG = 1 << iota
	capBitN
	capBitAC
	capBit5GHz
	capBit40
	capBit80
	// bits 6-7: streams-1
	capStreamShift = 6
)

// Marshal encodes the capabilities into the 2-byte information-element
// payload the simulated beacon and association frames carry.
func (c Capabilities) Marshal() [2]byte {
	c = c.Normalize()
	var v uint16
	if c.G {
		v |= capBitG
	}
	if c.N {
		v |= capBitN
	}
	if c.AC {
		v |= capBitAC
	}
	if c.FiveGHz {
		v |= capBit5GHz
	}
	if c.Width40 {
		v |= capBit40
	}
	if c.Width80 {
		v |= capBit80
	}
	v |= uint16(c.Streams-1) << capStreamShift
	return [2]byte{byte(v), byte(v >> 8)}
}

// UnmarshalCapabilities decodes a capability IE payload.
func UnmarshalCapabilities(b [2]byte) Capabilities {
	v := uint16(b[0]) | uint16(b[1])<<8
	c := Capabilities{
		G:       v&capBitG != 0,
		N:       v&capBitN != 0,
		AC:      v&capBitAC != 0,
		FiveGHz: v&capBit5GHz != 0,
		Width40: v&capBit40 != 0,
		Width80: v&capBit80 != 0,
		Streams: int(v>>capStreamShift&0x3) + 1,
	}
	return c.Normalize()
}

// CapabilityCounts aggregates capability advertisement across a client
// population, producing the percentages reported in Table 4.
type CapabilityCounts struct {
	Total        int
	G            int
	N            int
	AC           int
	FiveGHz      int
	Width40      int
	TwoStreams   int
	ThreeStreams int
	FourStreams  int
}

// Add counts one client's capabilities.
func (cc *CapabilityCounts) Add(c Capabilities) {
	c = c.Normalize()
	cc.Total++
	if c.G {
		cc.G++
	}
	if c.N {
		cc.N++
	}
	if c.AC {
		cc.AC++
	}
	if c.FiveGHz {
		cc.FiveGHz++
	}
	if c.Width40 {
		cc.Width40++
	}
	// Stream buckets are exclusive, matching Table 4 (the paper's "about
	// 25% support multiple spatial streams" is the sum of the three rows).
	switch c.Streams {
	case 2:
		cc.TwoStreams++
	case 3:
		cc.ThreeStreams++
	case 4:
		cc.FourStreams++
	}
}

// Fraction returns n/Total, or 0 for an empty count.
func (cc *CapabilityCounts) Fraction(n int) float64 {
	if cc.Total == 0 {
		return 0
	}
	return float64(n) / float64(cc.Total)
}
