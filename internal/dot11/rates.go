package dot11

import "time"

// PHY identifies the modulation family of a transmission.
type PHY uint8

const (
	// PHYDSSS is 802.11b DSSS/CCK (1, 2, 5.5, 11 Mb/s).
	PHYDSSS PHY = iota
	// PHYOFDM is 802.11a/g OFDM (6-54 Mb/s).
	PHYOFDM
	// PHYHT is 802.11n HT (MCS 0-31).
	PHYHT
	// PHYVHT is 802.11ac VHT.
	PHYVHT
)

// String returns the standard-family name of the PHY.
func (p PHY) String() string {
	switch p {
	case PHYDSSS:
		return "802.11b"
	case PHYOFDM:
		return "802.11a/g"
	case PHYHT:
		return "802.11n"
	case PHYVHT:
		return "802.11ac"
	default:
		return "unknown PHY"
	}
}

// Rate describes one PHY rate.
type Rate struct {
	// PHY is the modulation family.
	PHY PHY
	// Mbps is the data rate in megabits per second.
	Mbps float64
	// MinSNRdB is the approximate SNR (dB) required for reliable
	// reception at this rate, from standard receiver sensitivity tables.
	MinSNRdB float64
}

// Canonical basic rates used by the measurement subsystems.
var (
	// Rate1Mb is the 1 Mb/s DSSS rate the mesh probes use at 2.4 GHz.
	Rate1Mb = Rate{PHY: PHYDSSS, Mbps: 1, MinSNRdB: 4}
	// Rate6Mb is the 6 Mb/s OFDM rate the mesh probes use at 5 GHz and
	// the rate a/g/n beacons are sent at.
	Rate6Mb = Rate{PHY: PHYOFDM, Mbps: 6, MinSNRdB: 5}
	// Rate11Mb is the maximum 802.11b rate.
	Rate11Mb = Rate{PHY: PHYDSSS, Mbps: 11, MinSNRdB: 10}
	// Rate54Mb is the maximum 802.11a/g rate.
	Rate54Mb = Rate{PHY: PHYOFDM, Mbps: 54, MinSNRdB: 25}
)

// OFDMRates lists the eight 802.11a/g rates with their required SNRs.
var OFDMRates = []Rate{
	{PHYOFDM, 6, 5},
	{PHYOFDM, 9, 6},
	{PHYOFDM, 12, 8},
	{PHYOFDM, 18, 11},
	{PHYOFDM, 24, 15},
	{PHYOFDM, 36, 19},
	{PHYOFDM, 48, 23},
	{PHYOFDM, 54, 25},
}

// HTMCS returns the 802.11n rate for the given MCS index (0-7 per
// stream), stream count (1-4) and channel width (20 or 40 MHz) with a
// long guard interval. It returns false for out-of-range arguments.
func HTMCS(mcs, streams, widthMHz int) (Rate, bool) {
	if mcs < 0 || mcs > 7 || streams < 1 || streams > 4 {
		return Rate{}, false
	}
	// Base 20 MHz long-GI single-stream rates for MCS 0-7.
	base := []float64{6.5, 13, 19.5, 26, 39, 52, 58.5, 65}
	snr := []float64{5, 8, 11, 14, 18, 22, 24, 26}
	mult := 1.0
	switch widthMHz {
	case 20:
	case 40:
		mult = 2.077 // 108/52 data subcarrier ratio
	default:
		return Rate{}, false
	}
	return Rate{
		PHY:      PHYHT,
		Mbps:     base[mcs] * mult * float64(streams),
		MinSNRdB: snr[mcs] + 3*float64(streams-1), // MIMO needs more SNR
	}, true
}

// PLCP/PHY timing constants from the standard.
const (
	// dsssLongPreambleUS is the 802.11b long preamble + PLCP header.
	dsssLongPreambleUS = 192
	// ofdmPreambleUS is the 802.11a/g/n preamble + SIGNAL field.
	ofdmPreambleUS = 20
	// ofdmSymbolUS is one OFDM symbol (long GI).
	ofdmSymbolUS = 4
	// serviceTailBits are the OFDM SERVICE (16) + tail (6) bits.
	serviceTailBits = 22
)

// AirTime returns the on-air duration of a frame of the given MAC-layer
// length (bytes, including the MAC header and FCS) at the given rate.
// It reproduces the beacon air times the paper quotes in Section 4.1:
// 0.42 ms for an 802.11a/g/n beacon at 6 Mb/s and about 2.6 ms for an
// 802.11b beacon at 1 Mb/s.
func AirTime(bytes int, r Rate) time.Duration {
	bits := float64(bytes * 8)
	var us float64
	switch r.PHY {
	case PHYDSSS:
		us = dsssLongPreambleUS + bits/r.Mbps
	default:
		// OFDM-family: preamble plus a whole number of symbols.
		bitsPerSymbol := r.Mbps * ofdmSymbolUS
		symbols := (bits + serviceTailBits + bitsPerSymbol - 1) / bitsPerSymbol
		us = ofdmPreambleUS + float64(int(symbols))*ofdmSymbolUS
	}
	return time.Duration(us * float64(time.Microsecond))
}

// Standard frame sizes used by the measurement subsystems.
const (
	// BeaconFrameBytes is a typical beacon frame length including MAC
	// header, fixed fields, common IEs and FCS.
	BeaconFrameBytes = 300
	// ProbeFrameBytes is the 60-byte mesh link probe the paper's
	// Section 4.2 describes.
	ProbeFrameBytes = 60
	// BeaconIntervalTU is the default beacon interval in time units;
	// one TU is 1024 microseconds, so 100 TU is the 102.4 ms the paper
	// quotes.
	BeaconIntervalTU = 100
)

// BeaconInterval is the default beacon period (102.4 ms).
const BeaconInterval = BeaconIntervalTU * 1024 * time.Microsecond

// SNRForRate returns whether the given SNR supports the rate, with a
// margin of zero dB.
func SNRForRate(snrDB float64, r Rate) bool { return snrDB >= r.MinSNRdB }

// BestOFDMRate returns the fastest 802.11a/g rate the SNR supports, or
// false if even 6 Mb/s is not supported.
func BestOFDMRate(snrDB float64) (Rate, bool) {
	var best Rate
	ok := false
	for _, r := range OFDMRates {
		if snrDB >= r.MinSNRdB {
			best = r
			ok = true
		}
	}
	return best, ok
}
