package dot11

import (
	"testing"
)

func TestChannelPlan24(t *testing.T) {
	chans := Channels(Band24)
	if len(chans) != 11 {
		t.Fatalf("2.4 GHz channels = %d, want 11 (US plan)", len(chans))
	}
	if chans[0].Number != 1 || chans[0].CenterMHz != 2412 {
		t.Errorf("channel 1 = %+v", chans[0])
	}
	if chans[5].Number != 6 || chans[5].CenterMHz != 2437 {
		t.Errorf("channel 6 = %+v, want center 2437", chans[5])
	}
	if chans[10].Number != 11 || chans[10].CenterMHz != 2462 {
		t.Errorf("channel 11 = %+v", chans[10])
	}
	for _, c := range chans {
		if c.DFS {
			t.Errorf("2.4 GHz channel %d flagged DFS", c.Number)
		}
		if c.Sub != SubBandISM {
			t.Errorf("2.4 GHz channel %d in sub-band %v", c.Number, c.Sub)
		}
	}
}

func TestChannelPlan5(t *testing.T) {
	chans := Channels(Band5)
	if len(chans) != 22 {
		t.Fatalf("5 GHz channels = %d, want 22 (US plan, TDWR 124/128 excluded)", len(chans))
	}
	ch36, ok := ChannelByNumber(Band5, 36)
	if !ok || ch36.CenterMHz != 5180 || ch36.Sub != SubBandUNII1 || ch36.DFS {
		t.Errorf("channel 36 = %+v", ch36)
	}
	ch52, ok := ChannelByNumber(Band5, 52)
	if !ok || !ch52.DFS || ch52.Sub != SubBandUNII2 {
		t.Errorf("channel 52 = %+v, want DFS UNII-2", ch52)
	}
	ch100, ok := ChannelByNumber(Band5, 100)
	if !ok || !ch100.DFS || ch100.Sub != SubBandUNII2Ext {
		t.Errorf("channel 100 = %+v, want DFS UNII-2e", ch100)
	}
	ch149, ok := ChannelByNumber(Band5, 149)
	if !ok || ch149.DFS || ch149.Sub != SubBandUNII3 {
		t.Errorf("channel 149 = %+v, want non-DFS UNII-3", ch149)
	}
	if _, ok := ChannelByNumber(Band5, 124); ok {
		t.Error("TDWR channel 124 present; should be excluded from the 2014 US plan")
	}
}

func TestChannelByNumberMissing(t *testing.T) {
	if _, ok := ChannelByNumber(Band24, 14); ok {
		t.Error("channel 14 should not exist in the US plan")
	}
	if _, ok := ChannelByNumber(Band5, 1); ok {
		t.Error("channel 1 should not exist at 5 GHz")
	}
}

func TestAllChannelsCount(t *testing.T) {
	if got := len(AllChannels()); got != 33 {
		t.Errorf("AllChannels = %d, want 33", got)
	}
}

func TestOverlapCoChannel(t *testing.T) {
	ch6, _ := ChannelByNumber(Band24, 6)
	if got := Overlap(ch6, 20, ch6, 20); got != 1 {
		t.Errorf("co-channel overlap = %v, want 1", got)
	}
}

func TestOverlapAdjacent24(t *testing.T) {
	ch1, _ := ChannelByNumber(Band24, 1)
	ch2, _ := ChannelByNumber(Band24, 2)
	ch6, _ := ChannelByNumber(Band24, 6)
	// 5 MHz apart at 20 MHz width: 15/20 = 0.75 overlap.
	if got := Overlap(ch1, 20, ch2, 20); got != 0.75 {
		t.Errorf("ch1-ch2 overlap = %v, want 0.75", got)
	}
	// Channels 1 and 6 are 25 MHz apart: no overlap at 20 MHz.
	if got := Overlap(ch1, 20, ch6, 20); got != 0 {
		t.Errorf("ch1-ch6 overlap = %v, want 0", got)
	}
}

func TestOverlapCrossBand(t *testing.T) {
	ch1, _ := ChannelByNumber(Band24, 1)
	ch36, _ := ChannelByNumber(Band5, 36)
	if got := Overlap(ch1, 20, ch36, 20); got != 0 {
		t.Errorf("cross-band overlap = %v, want 0", got)
	}
}

func TestOverlap40MHz(t *testing.T) {
	ch36, _ := ChannelByNumber(Band5, 36)
	ch40, _ := ChannelByNumber(Band5, 40)
	// A 40 MHz transmission centered on ch36 spans 5160-5200 MHz; ch40's
	// 20 MHz receive band (5190-5210) captures 10 of those 40 MHz.
	if got := Overlap(ch36, 40, ch40, 20); got != 0.25 {
		t.Errorf("40->20 overlap = %v, want 0.25", got)
	}
	// Defaults: zero width treated as 20 MHz.
	if got := Overlap(ch36, 0, ch36, 0); got != 1 {
		t.Errorf("default-width overlap = %v, want 1", got)
	}
}

func TestOverlapSymmetricEnergyFraction(t *testing.T) {
	ch1, _ := ChannelByNumber(Band24, 1)
	ch3, _ := ChannelByNumber(Band24, 3)
	// 10 MHz offset at 20 MHz width: half the TX energy lands in-band.
	if got := Overlap(ch1, 20, ch3, 20); got != 0.5 {
		t.Errorf("ch1-ch3 overlap = %v, want 0.5", got)
	}
}

func TestNonOverlapping40Counts(t *testing.T) {
	// Section 4.1: four non-overlapping 40 MHz channels without DFS, ten
	// with DFS.
	if got := NonOverlapping40MHz5GHz(false); got != 4 {
		t.Errorf("non-DFS 40 MHz channels = %d, want 4", got)
	}
	if got := NonOverlapping40MHz5GHz(true); got != 10 {
		t.Errorf("DFS 40 MHz channels = %d, want 10", got)
	}
}

func TestBandString(t *testing.T) {
	if Band24.String() != "2.4 GHz" || Band5.String() != "5 GHz" {
		t.Error("band names wrong")
	}
	if SubBandUNII2Ext.String() != "UNII-2 Extended" {
		t.Errorf("sub-band name = %q", SubBandUNII2Ext.String())
	}
}
