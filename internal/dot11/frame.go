package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType is the 802.11 frame type/subtype the measurement pipeline
// cares about.
type FrameType uint8

const (
	// FrameBeacon is a management beacon frame.
	FrameBeacon FrameType = iota
	// FrameProbeRequest is a probe request.
	FrameProbeRequest
	// FrameProbeResponse is a probe response.
	FrameProbeResponse
	// FrameAssocRequest is an association request carrying capability IEs.
	FrameAssocRequest
	// FrameMeshProbe is the Meraki 60-byte broadcast link probe.
	FrameMeshProbe
	// FrameData is a generic data frame.
	FrameData
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameProbeRequest:
		return "probe-req"
	case FrameProbeResponse:
		return "probe-resp"
	case FrameAssocRequest:
		return "assoc-req"
	case FrameMeshProbe:
		return "mesh-probe"
	case FrameData:
		return "data"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// IE identifiers used in the simulated management frames.
const (
	ieSSID      = 0
	ieCaps      = 1
	ieChannel   = 2
	ieSeq       = 3
	ieHostVendo = 4
)

// Errors returned by the decoders.
var (
	ErrShortFrame  = errors.New("dot11: frame too short")
	ErrBadMagic    = errors.New("dot11: bad frame magic")
	ErrTruncatedIE = errors.New("dot11: truncated information element")
)

const frameMagic = 0xB5

// header layout: magic(1) type(1) sa(6) da(6) bssid(6) = 20 bytes,
// followed by IEs as (id, len, payload) triples.
const headerLen = 20

// Frame is a decoded management frame.
type Frame struct {
	Type  FrameType
	SA    MAC // transmitter
	DA    MAC // receiver (broadcast for beacons/probes)
	BSSID BSSID

	// SSID is present on beacons and probe responses.
	SSID string
	// Caps is present on beacons and association requests.
	Caps Capabilities
	// HasCaps reports whether Caps was present in the frame.
	HasCaps bool
	// Channel is the advertised operating channel (beacons).
	Channel int
	// Seq is the probe sequence number (mesh probes).
	Seq uint32
	// Vendor is a free-form vendor string (used for hotspot detection).
	Vendor string
}

// Marshal encodes the frame. The mesh probe is padded to exactly
// ProbeFrameBytes (60 bytes) to match the on-air size the paper measures.
func (f *Frame) Marshal() []byte {
	b := make([]byte, headerLen, headerLen+64)
	b[0] = frameMagic
	b[1] = byte(f.Type)
	copy(b[2:8], f.SA[:])
	copy(b[8:14], f.DA[:])
	copy(b[14:20], f.BSSID[:])

	appendIE := func(id byte, payload []byte) {
		b = append(b, id, byte(len(payload)))
		b = append(b, payload...)
	}
	if f.SSID != "" {
		s := f.SSID
		if len(s) > 32 {
			s = s[:32]
		}
		appendIE(ieSSID, []byte(s))
	}
	if f.HasCaps {
		c := f.Caps.Marshal()
		appendIE(ieCaps, c[:])
	}
	if f.Channel != 0 {
		appendIE(ieChannel, []byte{byte(f.Channel)})
	}
	if f.Vendor != "" {
		v := f.Vendor
		if len(v) > 32 {
			v = v[:32]
		}
		appendIE(ieHostVendo, []byte(v))
	}
	if f.Type == FrameMeshProbe {
		var seq [4]byte
		binary.BigEndian.PutUint32(seq[:], f.Seq)
		appendIE(ieSeq, seq[:])
		// Pad to the fixed 60-byte on-air size the paper measures.
		for len(b) < ProbeFrameBytes {
			b = append(b, 0)
		}
	}
	return b
}

// Unmarshal decodes a frame produced by Marshal.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen {
		return nil, ErrShortFrame
	}
	if b[0] != frameMagic {
		return nil, ErrBadMagic
	}
	f := &Frame{Type: FrameType(b[1])}
	copy(f.SA[:], b[2:8])
	copy(f.DA[:], b[8:14])
	copy(f.BSSID[:], b[14:20])

	rest := b[headerLen:]
	for len(rest) > 0 {
		if rest[0] == 0 && len(rest) >= 2 && rest[1] == 0 && f.Type == FrameMeshProbe {
			// Probe padding.
			rest = rest[2:]
			continue
		}
		if len(rest) < 2 {
			if f.Type == FrameMeshProbe && rest[0] == 0 {
				break // trailing pad byte
			}
			return nil, ErrTruncatedIE
		}
		id, n := rest[0], int(rest[1])
		if len(rest) < 2+n {
			return nil, ErrTruncatedIE
		}
		payload := rest[2 : 2+n]
		switch id {
		case ieSSID:
			f.SSID = string(payload)
		case ieCaps:
			if n == 2 {
				f.Caps = UnmarshalCapabilities([2]byte{payload[0], payload[1]})
				f.HasCaps = true
			}
		case ieChannel:
			if n == 1 {
				f.Channel = int(payload[0])
			}
		case ieSeq:
			if n == 4 {
				f.Seq = binary.BigEndian.Uint32(payload)
			}
		case ieHostVendo:
			f.Vendor = string(payload)
		default:
			// Unknown IEs are skipped, as a real parser must.
		}
		rest = rest[2+n:]
	}
	return f, nil
}

// NewBeacon builds a beacon frame for the given BSS.
func NewBeacon(bssid BSSID, ssid string, channel int, caps Capabilities) *Frame {
	return &Frame{
		Type:    FrameBeacon,
		SA:      bssid,
		DA:      Broadcast,
		BSSID:   bssid,
		SSID:    ssid,
		Channel: channel,
		Caps:    caps,
		HasCaps: true,
	}
}

// NewMeshProbe builds the 60-byte broadcast link probe.
func NewMeshProbe(sa MAC, seq uint32) *Frame {
	return &Frame{Type: FrameMeshProbe, SA: sa, DA: Broadcast, BSSID: sa, Seq: seq}
}

// NewAssocRequest builds an association request advertising the client's
// capabilities.
func NewAssocRequest(sa MAC, bssid BSSID, caps Capabilities) *Frame {
	return &Frame{Type: FrameAssocRequest, SA: sa, DA: bssid, BSSID: bssid, Caps: caps, HasCaps: true}
}
