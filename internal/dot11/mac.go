package dot11

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit IEEE 802 MAC address. It is a value type so it can key
// maps directly, which the flow-aggregation paths rely on.
type MAC [6]byte

// String renders the address in canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// OUI returns the 24-bit organizationally unique identifier prefix.
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsLocallyAdministered reports whether the locally-administered bit is
// set, as on randomized client MACs and many mobile hotspots.
func (m MAC) IsLocallyAdministered() bool { return m[0]&0x02 != 0 }

// Broadcast is the broadcast MAC address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MACFromUint64 builds a MAC from the low 48 bits of v with the given
// 3-byte OUI.
func MACFromUint64(oui [3]byte, v uint64) MAC {
	var m MAC
	m[0], m[1], m[2] = oui[0], oui[1], oui[2]
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 packs the address into the low 48 bits of a uint64, for compact
// storage in the backend.
func (m MAC) Uint64() uint64 {
	var b [8]byte
	copy(b[2:], m[:])
	return binary.BigEndian.Uint64(b[:])
}

// MACFromPacked is the inverse of Uint64.
func MACFromPacked(v uint64) MAC {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	var m MAC
	copy(m[:], b[2:])
	return m
}

// BSSID identifies a wireless network instance (one SSID on one radio).
type BSSID = MAC
