package dot11

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCapabilitiesRoundTrip(t *testing.T) {
	err := quick.Check(func(g, n, ac, five, w40, w80 bool, streamsRaw uint8) bool {
		c := Capabilities{
			G: g, N: n, AC: ac, FiveGHz: five,
			Width40: w40, Width80: w80,
			Streams: int(streamsRaw%4) + 1,
		}.Normalize()
		got := UnmarshalCapabilities(c.Marshal())
		return got == c
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestCapabilitiesNormalize(t *testing.T) {
	c := Capabilities{AC: true}.Normalize()
	if !c.N || !c.FiveGHz || !c.Width80 || !c.Width40 {
		t.Errorf("11ac normalize = %+v; ac must imply n, 5 GHz, 80 and 40 MHz", c)
	}
	if c.Streams != 1 {
		t.Errorf("streams clamp = %d, want 1", c.Streams)
	}
	c = Capabilities{Streams: 9}.Normalize()
	if c.Streams != 4 {
		t.Errorf("streams clamp high = %d, want 4", c.Streams)
	}
}

func TestCapabilitiesString(t *testing.T) {
	c := Capabilities{AC: true, Streams: 2}.Normalize()
	if got := c.String(); got != "11ac/5GHz/80MHz/2ss" {
		t.Errorf("String = %q", got)
	}
	c = Capabilities{G: true, Streams: 1}
	if got := c.String(); got != "11g/2.4GHz-only/20MHz/1ss" {
		t.Errorf("String = %q", got)
	}
}

func TestCapabilityCountsExclusiveStreams(t *testing.T) {
	var cc CapabilityCounts
	cc.Add(Capabilities{N: true, Streams: 2})
	cc.Add(Capabilities{N: true, Streams: 3})
	cc.Add(Capabilities{N: true, Streams: 4})
	cc.Add(Capabilities{N: true, Streams: 1})
	if cc.TwoStreams != 1 || cc.ThreeStreams != 1 || cc.FourStreams != 1 {
		t.Errorf("stream buckets = %d/%d/%d, want 1/1/1 (exclusive)", cc.TwoStreams, cc.ThreeStreams, cc.FourStreams)
	}
	if cc.Fraction(cc.TwoStreams) != 0.25 {
		t.Errorf("Fraction = %v", cc.Fraction(cc.TwoStreams))
	}
	var empty CapabilityCounts
	if empty.Fraction(1) != 0 {
		t.Error("empty Fraction should be 0")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	bssid := MAC{0x00, 0x18, 0x0a, 1, 2, 3}
	caps := Capabilities{G: true, N: true, Streams: 2}.Normalize()
	f := NewBeacon(bssid, "corp-wifi", 6, caps)
	b := f.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Type != FrameBeacon || got.SSID != "corp-wifi" || got.Channel != 6 {
		t.Errorf("decoded beacon = %+v", got)
	}
	if got.BSSID != bssid || got.SA != bssid || got.DA != Broadcast {
		t.Errorf("addresses = sa=%v da=%v bssid=%v", got.SA, got.DA, got.BSSID)
	}
	if !got.HasCaps || got.Caps != caps {
		t.Errorf("caps = %+v, want %+v", got.Caps, caps)
	}
}

func TestMeshProbeSize(t *testing.T) {
	f := NewMeshProbe(MAC{1, 2, 3, 4, 5, 6}, 12345)
	b := f.Marshal()
	if len(b) != ProbeFrameBytes {
		t.Fatalf("mesh probe size = %d bytes, want %d", len(b), ProbeFrameBytes)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Seq != 12345 || got.Type != FrameMeshProbe {
		t.Errorf("decoded probe = %+v", got)
	}
}

func TestAssocRequestRoundTrip(t *testing.T) {
	sa := MAC{0xac, 0xbc, 0x32, 9, 9, 9}
	bssid := MAC{0x00, 0x18, 0x0a, 0, 0, 1}
	caps := Capabilities{AC: true, Streams: 1}.Normalize()
	got, err := Unmarshal(NewAssocRequest(sa, bssid, caps).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SA != sa || got.Caps != caps || !got.HasCaps {
		t.Errorf("assoc = %+v", got)
	}
}

func TestVendorIERoundTrip(t *testing.T) {
	f := NewBeacon(MAC{2, 0, 0, 0, 0, 1}, "Verizon-MiFi", 1, Capabilities{G: true, Streams: 1})
	f.Vendor = "Novatel"
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Vendor != "Novatel" {
		t.Errorf("vendor = %q", got.Vendor)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err != ErrShortFrame {
		t.Errorf("short frame err = %v", err)
	}
	b := NewMeshProbe(MAC{}, 1).Marshal()
	b[0] = 0x00
	if _, err := Unmarshal(b); err != ErrBadMagic {
		t.Errorf("bad magic err = %v", err)
	}
	// Truncated IE: header plus an IE claiming more payload than present.
	raw := make([]byte, headerLen)
	raw[0] = frameMagic
	raw = append(raw, ieSSID, 10, 'a')
	if _, err := Unmarshal(raw); err != ErrTruncatedIE {
		t.Errorf("truncated IE err = %v", err)
	}
}

func TestUnmarshalSkipsUnknownIE(t *testing.T) {
	f := NewBeacon(MAC{1, 1, 1, 1, 1, 1}, "x", 11, Capabilities{G: true, Streams: 1})
	b := f.Marshal()
	b = append(b, 0x77, 2, 0xde, 0xad) // unknown IE
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal with unknown IE: %v", err)
	}
	if got.SSID != "x" || got.Channel != 11 {
		t.Errorf("decoded = %+v", got)
	}
}

func TestSSIDTruncatedTo32(t *testing.T) {
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	f := NewBeacon(MAC{}, string(long), 1, Capabilities{Streams: 1})
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SSID) != 32 {
		t.Errorf("SSID length = %d, want 32", len(got.SSID))
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(sa, da [6]byte, seq uint32) bool {
		f := &Frame{Type: FrameMeshProbe, SA: MAC(sa), DA: MAC(da), Seq: seq}
		got, err := Unmarshal(f.Marshal())
		return err == nil && got.SA == MAC(sa) && got.DA == MAC(da) && got.Seq == seq
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMACHelpers(t *testing.T) {
	m := MAC{0x00, 0x18, 0x0a, 0xab, 0xcd, 0xef}
	if m.String() != "00:18:0a:ab:cd:ef" {
		t.Errorf("String = %q", m.String())
	}
	if m.OUI() != [3]byte{0x00, 0x18, 0x0a} {
		t.Errorf("OUI = %v", m.OUI())
	}
	if m.IsBroadcast() || !Broadcast.IsBroadcast() {
		t.Error("broadcast detection wrong")
	}
	if m.IsLocallyAdministered() {
		t.Error("globally administered MAC flagged local")
	}
	local := MAC{0x02, 0, 0, 0, 0, 1}
	if !local.IsLocallyAdministered() {
		t.Error("locally administered MAC not flagged")
	}
}

func TestMACPackRoundTrip(t *testing.T) {
	err := quick.Check(func(raw [6]byte) bool {
		m := MAC(raw)
		return MACFromPacked(m.Uint64()) == m
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMACFromUint64(t *testing.T) {
	m := MACFromUint64([3]byte{0xaa, 0xbb, 0xcc}, 0x112233)
	want := MAC{0xaa, 0xbb, 0xcc, 0x11, 0x22, 0x33}
	if m != want {
		t.Errorf("MACFromUint64 = %v, want %v", m, want)
	}
}

func TestAirTimeMatchesPaper(t *testing.T) {
	// Section 4.1: 0.42 ms for an a/g/n beacon, 2.592 ms for an 802.11b
	// beacon.
	ofdm := AirTime(BeaconFrameBytes, Rate6Mb)
	if ofdm < 410*time.Microsecond || ofdm > 430*time.Microsecond {
		t.Errorf("OFDM beacon air time = %v, want ~0.42 ms", ofdm)
	}
	dsss := AirTime(BeaconFrameBytes, Rate1Mb)
	if dsss != 2592*time.Microsecond {
		t.Errorf("11b beacon air time = %v, want 2.592 ms", dsss)
	}
}

func TestAirTimeProbe(t *testing.T) {
	// 60-byte probe at 1 Mb/s: 192 + 480 = 672 us.
	if got := AirTime(ProbeFrameBytes, Rate1Mb); got != 672*time.Microsecond {
		t.Errorf("probe air time 2.4 GHz = %v, want 672 us", got)
	}
	// At 6 Mb/s OFDM: 20 + ceil((480+22)/24)*4 = 20 + 21*4 = 104 us.
	if got := AirTime(ProbeFrameBytes, Rate6Mb); got != 104*time.Microsecond {
		t.Errorf("probe air time 5 GHz = %v, want 104 us", got)
	}
}

func TestAirTimeMonotoneInSize(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		x, y := int(a%4000), int(b%4000)
		if x > y {
			x, y = y, x
		}
		return AirTime(x, Rate54Mb) <= AirTime(y, Rate54Mb)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestBeaconInterval(t *testing.T) {
	if BeaconInterval != 102400*time.Microsecond {
		t.Errorf("BeaconInterval = %v, want 102.4 ms", BeaconInterval)
	}
}

func TestHTMCSRates(t *testing.T) {
	r, ok := HTMCS(7, 1, 20)
	if !ok || r.Mbps != 65 {
		t.Errorf("MCS7 1ss 20 MHz = %+v, want 65 Mb/s", r)
	}
	// MCS7 at 2 streams and 40 MHz is MCS15: 270 Mb/s long-GI.
	r2, ok := HTMCS(7, 2, 40)
	if !ok || r2.Mbps < 265 || r2.Mbps > 275 {
		t.Errorf("MCS7 2ss 40 MHz = %+v, want ~270 Mb/s", r2)
	}
	if _, ok := HTMCS(8, 1, 20); ok {
		t.Error("MCS8 accepted")
	}
	if _, ok := HTMCS(0, 5, 20); ok {
		t.Error("5 streams accepted")
	}
	if _, ok := HTMCS(0, 1, 80); ok {
		t.Error("80 MHz HT accepted")
	}
}

func TestBestOFDMRate(t *testing.T) {
	r, ok := BestOFDMRate(30)
	if !ok || r.Mbps != 54 {
		t.Errorf("BestOFDMRate(30) = %+v", r)
	}
	r, ok = BestOFDMRate(9)
	if !ok || r.Mbps != 12 {
		t.Errorf("BestOFDMRate(9) = %+v, want 12 Mb/s", r)
	}
	if _, ok := BestOFDMRate(2); ok {
		t.Error("BestOFDMRate(2) should fail")
	}
}

func TestSNRForRate(t *testing.T) {
	if !SNRForRate(5, Rate6Mb) || SNRForRate(4.9, Rate6Mb) {
		t.Error("SNRForRate threshold wrong")
	}
}

func TestPHYString(t *testing.T) {
	for phy, want := range map[PHY]string{
		PHYDSSS: "802.11b", PHYOFDM: "802.11a/g", PHYHT: "802.11n", PHYVHT: "802.11ac",
	} {
		if phy.String() != want {
			t.Errorf("PHY %d = %q, want %q", phy, phy.String(), want)
		}
	}
}

func BenchmarkBeaconMarshal(b *testing.B) {
	f := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "benchmark-ssid", 6, Capabilities{N: true, Streams: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Marshal()
	}
}

func BenchmarkFrameUnmarshal(b *testing.B) {
	raw := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "benchmark-ssid", 6, Capabilities{N: true, Streams: 2}).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
