// Package dot11 implements the 802.11 substrate the study rests on:
// frequency bands and channels (including the 5 GHz UNII sub-bands and
// their DFS requirements), channel-overlap math for 20 and 40 MHz
// operation, client capability advertisement, PHY rate tables with
// air-time calculations, and wire-format encoding and decoding of the
// management frames the measurement pipeline observes (beacons and the
// mesh link probes).
//
// The package is organized by file: band.go (Band, Channel, the UNII
// sub-bands, Overlap), mac.go (MAC addresses and OUI vendor prefixes),
// caps.go (client capability advertisement for Table 4), rates.go
// (PHY Rate tables, AirTime, SNRForRate), and frame.go (beacon and
// probe wire formats with round-trip encode/decode). Everything here
// is pure computation — no I/O, no clock — so every higher layer can
// use it deterministically.
package dot11
