package airtime

import (
	"math"
	"testing"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
)

func ch24(t *testing.T, n int) dot11.Channel {
	t.Helper()
	ch, ok := dot11.ChannelByNumber(dot11.Band24, n)
	if !ok {
		t.Fatalf("channel %d missing", n)
	}
	return ch
}

func TestBeaconSourceDuty(t *testing.T) {
	ch := ch24(t, 6)
	// One OFDM SSID: 0.424 ms / 102.4 ms = ~0.41%.
	s := NewBeaconSource(ch, -60, 1, 0)
	if s.MeanDuty < 0.003 || s.MeanDuty > 0.005 {
		t.Errorf("1 OFDM SSID duty = %v, want ~0.41%%", s.MeanDuty)
	}
	// One 11b SSID: 2.592/102.4 = ~2.5%.
	b := NewBeaconSource(ch, -60, 1, 1)
	if b.MeanDuty < 0.024 || b.MeanDuty > 0.027 {
		t.Errorf("1 11b SSID duty = %v, want ~2.5%%", b.MeanDuty)
	}
	// Four SSIDs quadruple the duty.
	four := NewBeaconSource(ch, -60, 4, 1)
	if math.Abs(four.MeanDuty-4*b.MeanDuty) > 1e-9 {
		t.Errorf("4-SSID duty = %v, want %v", four.MeanDuty, 4*b.MeanDuty)
	}
}

func TestBeaconSource5GHzIgnoresB11(t *testing.T) {
	ch, _ := dot11.ChannelByNumber(dot11.Band5, 36)
	s := NewBeaconSource(ch, -60, 1, 1)
	ofdm := dot11.AirTime(dot11.BeaconFrameBytes, dot11.Rate6Mb).Seconds() / dot11.BeaconInterval.Seconds()
	if math.Abs(s.MeanDuty-ofdm) > 1e-9 {
		t.Errorf("5 GHz beacon duty = %v, want OFDM-only %v", s.MeanDuty, ofdm)
	}
}

func TestDielFactorShape(t *testing.T) {
	if DielFactor(13, 0) != 1 {
		t.Error("zero strength should be flat")
	}
	day := DielFactor(13, 1)
	night := DielFactor(1, 1)
	if day <= 1.5 {
		t.Errorf("midday factor = %v, want ~2", day)
	}
	if night >= 0.6 {
		t.Errorf("night factor = %v, want ~0.4", night)
	}
	if DielFactor(13, 0.5) <= DielFactor(13, 0.1) {
		t.Error("diel factor should grow with strength at midday")
	}
}

func TestObserveEmptyNeighborhood(t *testing.T) {
	n := NewNeighborhood()
	obs := n.Observe(ch24(t, 6), 12)
	if obs.Busy != 0 || obs.Decodable != 0 || obs.Sources != 0 {
		t.Errorf("empty observation = %+v", obs)
	}
	if obs.DecodableFraction() != 0 {
		t.Error("idle DecodableFraction should be 0")
	}
}

func TestObserveCoChannelBeacon(t *testing.T) {
	n := NewNeighborhood()
	ch := ch24(t, 6)
	n.Add(NewBeaconSource(ch, -70, 3, 0.5))
	obs := n.Observe(ch, 12)
	if obs.Sources != 1 {
		t.Fatalf("sources = %d", obs.Sources)
	}
	if obs.Busy <= 0 || obs.Busy > 0.1 {
		t.Errorf("beacon busy = %v", obs.Busy)
	}
	if obs.DecodableFraction() < 0.99 {
		t.Errorf("beacon decodable fraction = %v, want 1", obs.DecodableFraction())
	}
}

func TestObserveWeakCoChannelWiFiStillDefers(t *testing.T) {
	// WiFi at -85 dBm is below ED (-62) but above preamble threshold
	// (-88): it must still hold the medium.
	n := NewNeighborhood()
	ch := ch24(t, 1)
	n.Add(NewBeaconSource(ch, -85, 2, 1))
	obs := n.Observe(ch, 12)
	if obs.Busy <= 0 {
		t.Error("weak co-channel WiFi did not trigger carrier sense")
	}
}

func TestObserveTooWeakWiFiIgnored(t *testing.T) {
	n := NewNeighborhood()
	ch := ch24(t, 1)
	n.Add(NewBeaconSource(ch, -95, 2, 1)) // below preamble threshold
	obs := n.Observe(ch, 12)
	if obs.Busy != 0 {
		t.Errorf("sub-threshold WiFi busy = %v", obs.Busy)
	}
}

func TestObserveAdjacentChannelNeedsEDLevel(t *testing.T) {
	ch1 := ch24(t, 1)
	ch3 := ch24(t, 3)
	// Adjacent-channel WiFi at -70 dBm: undecodable energy below ED
	// threshold, so ignored.
	n := NewNeighborhood()
	src := NewBeaconSource(ch3, -70, 4, 1)
	n.Add(src)
	if obs := n.Observe(ch1, 12); obs.Busy != 0 {
		t.Errorf("weak adjacent energy counted: %+v", obs)
	}
	// The same source very loud (-40 dBm) does trigger ED, and is
	// counted as undecodable.
	n2 := NewNeighborhood()
	loud := NewBeaconSource(ch3, -40, 4, 1)
	n2.Add(loud)
	obs := n2.Observe(ch1, 12)
	if obs.Busy <= 0 {
		t.Fatal("loud adjacent energy not counted")
	}
	if obs.Decodable != 0 {
		t.Errorf("adjacent energy counted as decodable: %+v", obs)
	}
}

func TestObserveNonWiFiNeverDecodable(t *testing.T) {
	n := NewNeighborhood()
	ch := ch24(t, 6)
	n.Add(NewNonWiFiSource(ch, 20, -50, 0.3, rng.New(1).Split("nw")))
	obs := n.Observe(ch, 12)
	if obs.Busy <= 0 {
		t.Fatal("strong non-WiFi not counted")
	}
	if obs.Decodable != 0 {
		t.Errorf("non-WiFi counted as decodable: %+v", obs)
	}
}

func TestObserveUnionNeverExceedsOne(t *testing.T) {
	root := rng.New(2)
	n := NewNeighborhood()
	ch := ch24(t, 6)
	for i := 0; i < 200; i++ {
		n.Add(NewDataSource(ch, 20, -55, root.SplitN("d", i)))
	}
	for w := 0; w < 20; w++ {
		obs := n.Observe(ch, 13)
		if obs.Busy < 0 || obs.Busy > 1 {
			t.Fatalf("busy out of range: %v", obs.Busy)
		}
		if obs.Decodable > obs.Busy+1e-12 {
			t.Fatalf("decodable %v > busy %v", obs.Decodable, obs.Busy)
		}
	}
}

func TestDataSourceHeavyTail(t *testing.T) {
	root := rng.New(3)
	ch := ch24(t, 1)
	var duties []float64
	for i := 0; i < 2000; i++ {
		duties = append(duties, NewDataSource(ch, 20, -50, root.SplitN("d", i)).MeanDuty)
	}
	// Median should be small (<2%), but the tail should reach >10%.
	nBig, nSmall := 0, 0
	for _, d := range duties {
		if d > 0.10 {
			nBig++
		}
		if d < 0.02 {
			nSmall++
		}
	}
	if nSmall < len(duties)/2 {
		t.Errorf("only %d/%d sources are near idle; duty not heavy-tailed-low", nSmall, len(duties))
	}
	if nBig == 0 {
		t.Error("no heavy sources in 2000 draws; tail missing")
	}
}

func TestObserveDayHigherThanNight(t *testing.T) {
	// With diurnal data sources, average busy at 13:00 should exceed
	// 01:00 (Figure 9's day/night gap).
	root := rng.New(4)
	ch := ch24(t, 6)
	var day, night float64
	const trials = 400
	for i := 0; i < trials; i++ {
		nd := NewNeighborhood()
		nn := NewNeighborhood()
		for j := 0; j < 10; j++ {
			nd.Add(NewDataSource(ch, 20, -55, root.Split("d").SplitN("x", i*100+j)))
			nn.Add(NewDataSource(ch, 20, -55, root.Split("d").SplitN("x", i*100+j)))
		}
		day += nd.Observe(ch, 13).Busy
		night += nn.Observe(ch, 1).Busy
	}
	if day <= night {
		t.Errorf("day busy %v <= night busy %v", day/trials, night/trials)
	}
}

func TestObserveBandCoversAllChannels(t *testing.T) {
	n := NewNeighborhood()
	obs := n.ObserveBand(dot11.Band5, 12)
	if len(obs) != len(dot11.Channels(dot11.Band5)) {
		t.Errorf("band sweep = %d observations", len(obs))
	}
}

func TestObservationDecodableFractionClamp(t *testing.T) {
	o := Observation{Busy: 0.5, Decodable: 0.6}
	if o.DecodableFraction() != 1 {
		t.Errorf("clamped fraction = %v", o.DecodableFraction())
	}
}

func TestSourceKindString(t *testing.T) {
	if KindBeacon.String() != "beacon" || KindData.String() != "data" || KindNonWiFi.String() != "non-wifi" {
		t.Error("kind names wrong")
	}
}

func BenchmarkObserve(b *testing.B) {
	root := rng.New(5)
	ch, _ := dot11.ChannelByNumber(dot11.Band24, 6)
	n := NewNeighborhood()
	for i := 0; i < 50; i++ {
		n.Add(NewDataSource(ch, 20, -60, root.SplitN("d", i)))
		n.Add(NewBeaconSource(ch, -65, 2, 0.3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Observe(ch, 13)
	}
}
