// Package airtime models per-channel medium occupancy as seen by one
// listener: which transmitters near an access point hold the channel
// busy, for what fraction of a measurement window, and whether the busy
// time carries decodable 802.11 preambles. It is the substrate behind
// the paper's channel-utilization results (Figures 6 through 10).
//
// The model is statistical rather than per-packet: each source has a
// duty-cycle process (window-to-window AR(1) variation around a
// heavy-tailed mean, with optional diurnal modulation), and a window's
// busy fraction is the probabilistic union of the in-range sources'
// contributions. This reproduces the two key phenomena the paper
// reports: utilization is driven by a few heavy sources rather than by
// the neighbor count (Figures 7/8 show no correlation), and most busy
// time is decodable 802.11 (Figure 10).
//
// A Neighborhood holds the sources audible at one listening point;
// Neighborhood.Measure produces an Observation (busy fraction plus its
// decodable-802.11 share) for one channel and window. Sources below
// DefaultEDThresholdDBm contribute nothing — the energy-detect
// semantics that DESIGN.md §4 argues are needed to reconcile
// Figures 7-10. DielFactor supplies the day/night modulation behind
// Figure 9.
package airtime
