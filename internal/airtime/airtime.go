package airtime

import (
	"math"

	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
)

// SourceKind classifies a medium occupant.
type SourceKind uint8

const (
	// KindBeacon is 802.11 management beacon traffic: constant duty,
	// always decodable when co-channel.
	KindBeacon SourceKind = iota
	// KindData is 802.11 data traffic: bursty, diurnal, decodable.
	KindData
	// KindNonWiFi is non-802.11 energy (Bluetooth, microwave, ...):
	// busy time without decodable headers.
	KindNonWiFi
)

// String names the source kind.
func (k SourceKind) String() string {
	switch k {
	case KindBeacon:
		return "beacon"
	case KindData:
		return "data"
	case KindNonWiFi:
		return "non-wifi"
	default:
		return "unknown"
	}
}

// adjacentMaskPenaltyDB is the extra attenuation applied to partially
// overlapping WiFi beyond the band-overlap fraction, reflecting the
// 802.11 transmit spectral mask and receive filtering.
const adjacentMaskPenaltyDB = 6

// Default receiver thresholds (dBm) for a 20 MHz 802.11 channel.
const (
	// DefaultEDThresholdDBm is the energy-detect threshold: any energy
	// above this holds carrier sense busy whether or not it is WiFi.
	DefaultEDThresholdDBm = -62
	// DefaultPreambleThresholdDBm is the preamble-detect threshold:
	// 802.11 preambles are decodable (and defer the MAC) down to this
	// much weaker level.
	DefaultPreambleThresholdDBm = -88
)

// Source is one occupant of the medium as seen by a particular listener.
type Source struct {
	// Kind classifies the occupant.
	Kind SourceKind
	// Channel is the occupant's operating channel.
	Channel dot11.Channel
	// WidthMHz is the occupant's transmission bandwidth (20 or 40).
	WidthMHz int
	// RxPowerDBm is the occupant's received power at the listener.
	RxPowerDBm float64
	// MeanDuty is the long-run mean fraction of time the occupant
	// transmits.
	MeanDuty float64
	// DiurnalStrength in [0,1] scales how strongly the occupant's duty
	// follows the business-hours cycle. Beacons use 0.
	DiurnalStrength float64

	proc   rng.AR1
	src    *rng.Source
	primed bool
}

// NewBeaconSource builds a beacon occupant: an AP broadcasting nSSIDs
// virtual networks, a fraction of which beacon at the slow 802.11b rate.
// The duty is deterministic: nSSIDs beacons per 102.4 ms interval.
func NewBeaconSource(ch dot11.Channel, rxDBm float64, nSSIDs int, b11Fraction float64) *Source {
	perOFDM := dot11.AirTime(dot11.BeaconFrameBytes, dot11.Rate6Mb).Seconds()
	perB := dot11.AirTime(dot11.BeaconFrameBytes, dot11.Rate1Mb).Seconds()
	interval := dot11.BeaconInterval.Seconds()
	per := perOFDM*(1-b11Fraction) + perB*b11Fraction
	if ch.Band == dot11.Band5 {
		per = perOFDM // no DSSS at 5 GHz
	}
	return &Source{
		Kind:       KindBeacon,
		Channel:    ch,
		WidthMHz:   20,
		RxPowerDBm: rxDBm,
		MeanDuty:   per * float64(nSSIDs) / interval,
	}
}

// NewDataSource builds a data-traffic occupant with a sparse,
// heavy-tailed mean duty: over half of all networks sit essentially
// idle, while a few stream hard. The resulting per-channel variance
// dwarfs the count-proportional mean, which is what reproduces the
// paper's non-correlation between neighbor count and utilization
// (Figures 7/8); the uniform-duty ablation bench shows the contrast.
func NewDataSource(ch dot11.Channel, widthMHz int, rxDBm float64, src *rng.Source) *Source {
	var duty float64
	if src.Bool(0.55) {
		duty = 0.0002 // idle network: the odd ARP and DHCP exchange
	} else {
		duty = src.LogNormalMeanMedian(0.004, 2.0)
	}
	if duty > 0.6 {
		duty = 0.6
	}
	return &Source{
		Kind:            KindData,
		Channel:         ch,
		WidthMHz:        widthMHz,
		RxPowerDBm:      rxDBm,
		MeanDuty:        duty,
		DiurnalStrength: 0.5 + src.Float64()*0.5,
		src:             src,
	}
}

// NewClientTrafficSource builds a data occupant with an explicit mean
// duty — used for an AP's own-BSS client traffic, whose load is set by
// the client population rather than drawn from the neighbor-duty
// distribution.
func NewClientTrafficSource(ch dot11.Channel, rxDBm, meanDuty, diurnal float64, src *rng.Source) *Source {
	if meanDuty < 0 {
		meanDuty = 0
	}
	if meanDuty > 0.9 {
		meanDuty = 0.9
	}
	return &Source{
		Kind:            KindData,
		Channel:         ch,
		WidthMHz:        20,
		RxPowerDBm:      rxDBm,
		MeanDuty:        meanDuty,
		DiurnalStrength: diurnal,
		src:             src,
	}
}

// NewNonWiFiSource builds a non-802.11 occupant from its busy
// contribution parameters (already distance-resolved by the rf layer).
func NewNonWiFiSource(ch dot11.Channel, widthMHz int, rxDBm, meanDuty float64, src *rng.Source) *Source {
	return &Source{
		Kind:            KindNonWiFi,
		Channel:         ch,
		WidthMHz:        widthMHz,
		RxPowerDBm:      rxDBm,
		MeanDuty:        meanDuty,
		DiurnalStrength: 0.3,
		src:             src,
	}
}

// DielFactor returns the business-hours load multiplier at the given
// local time of day (hours, 0-24) for a source with the given diurnal
// strength. Strength 0 is flat; strength 1 swings from ~0.4 at night to
// ~2.0 at midday.
func DielFactor(todHours, strength float64) float64 {
	if strength <= 0 {
		return 1
	}
	phase := (todHours - 13) / 12 * math.Pi
	bump := math.Cos(phase)
	if bump < 0 {
		bump = 0
	}
	bump = math.Pow(bump, 1.5)
	return (1 - strength) + strength*(0.4+1.6*bump)
}

// dutyAt returns the source's duty for the current window at the given
// time of day, advancing its variation process.
func (s *Source) dutyAt(todHours float64) float64 {
	d := s.MeanDuty
	if s.src != nil {
		if !s.primed {
			// Window-to-window multiplicative wobble around the mean.
			s.proc = rng.AR1{Mean: 0, Stddev: 0.5, Rho: 0.85}
			s.primed = true
		}
		d *= math.Exp(s.proc.Next(s.src) - 0.125) // -sigma^2/2 keeps mean
	}
	d *= DielFactor(todHours, s.DiurnalStrength)
	if d > 0.95 {
		d = 0.95
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Observation is what one measurement window on one channel looks like
// to the listener.
type Observation struct {
	// Busy is the fraction of the window carrier sense was held busy.
	Busy float64
	// Decodable is the fraction of the window spent on energy with
	// intact 802.11 preambles. Decodable <= Busy.
	Decodable float64
	// Sources is the number of sources that contributed energy.
	Sources int
}

// DecodableFraction returns Decodable/Busy, or 0 for an idle window —
// the quantity Figure 10 plots.
func (o Observation) DecodableFraction() float64 {
	if o.Busy <= 0 {
		return 0
	}
	f := o.Decodable / o.Busy
	if f > 1 {
		f = 1
	}
	return f
}

// Neighborhood is the set of medium occupants audible at one listener,
// with the listener's receiver thresholds.
type Neighborhood struct {
	Sources              []*Source
	EDThresholdDBm       float64
	PreambleThresholdDBm float64
}

// NewNeighborhood returns an empty neighborhood with default thresholds.
func NewNeighborhood() *Neighborhood {
	return &Neighborhood{
		EDThresholdDBm:       DefaultEDThresholdDBm,
		PreambleThresholdDBm: DefaultPreambleThresholdDBm,
	}
}

// Add registers a source.
func (n *Neighborhood) Add(s *Source) { n.Sources = append(n.Sources, s) }

// Observe computes one window's occupancy on the given 20 MHz listen
// channel at the given local time of day, with full CCA semantics: a
// serving radio defers to co-channel WiFi down to the preamble-detect
// threshold, and to any other energy above the ED threshold. This is
// what the MR16's on-channel counters report (Figure 6). Each call
// advances the sources' duty processes by one window.
func (n *Neighborhood) Observe(ch dot11.Channel, todHours float64) Observation {
	return n.observe(ch, todHours, false)
}

// ObserveED computes one window's occupancy with energy-detect-only
// semantics: every source, WiFi or not, must clear the ED threshold to
// register. This is what the MR18's 5 ms-dwell scanning radio measures
// (Figures 7-10): a dwell landing mid-frame sees only energy, and weak
// co-channel frames fall below the -62 dBm ED level. The distinction is
// what breaks the proportionality between detected-AP count and scanned
// utilization that Figures 7/8 famously do not show.
func (n *Neighborhood) ObserveED(ch dot11.Channel, todHours float64) Observation {
	return n.observe(ch, todHours, true)
}

func (n *Neighborhood) observe(ch dot11.Channel, todHours float64, edOnly bool) Observation {
	var obs Observation
	idle := 1.0          // probability-mass of fully idle air
	idleDecodable := 1.0 // idle considering only decodable sources
	for _, s := range n.Sources {
		ov := dot11.Overlap(s.Channel, s.WidthMHz, ch, 20)
		if ov <= 0 {
			continue
		}
		// In-channel received power after spectral overlap.
		inband := s.RxPowerDBm + 10*math.Log10(ov)
		decodable := false
		switch s.Kind {
		case KindBeacon, KindData:
			// Co-channel WiFi is decodable; partially overlapping WiFi
			// is undecodable energy, further attenuated by the 802.11
			// transmit spectral mask (OFDM occupancy is not
			// rectangular, so naive band overlap overstates
			// adjacent-channel coupling).
			threshold := n.EDThresholdDBm
			if ov >= 0.999 {
				decodable = true
				if !edOnly {
					threshold = n.PreambleThresholdDBm
				}
			} else {
				inband -= adjacentMaskPenaltyDB
			}
			if inband < threshold {
				continue
			}
		default:
			if inband < n.EDThresholdDBm {
				continue
			}
		}
		d := s.dutyAt(todHours) * ov
		if d <= 0 {
			continue
		}
		if d > 1 {
			d = 1
		}
		obs.Sources++
		idle *= 1 - d
		if decodable {
			idleDecodable *= 1 - d
		}
	}
	obs.Busy = 1 - idle
	obs.Decodable = 1 - idleDecodable
	if obs.Decodable > obs.Busy {
		obs.Decodable = obs.Busy
	}
	return obs
}

// ObserveBand sweeps every channel in the band and returns the per-
// channel observations in channel order — what the MR18's dedicated
// scanning radio produces each scan cycle.
func (n *Neighborhood) ObserveBand(band dot11.Band, todHours float64) []Observation {
	chans := dot11.Channels(band)
	out := make([]Observation, len(chans))
	for i, ch := range chans {
		out[i] = n.Observe(ch, todHours)
	}
	return out
}
