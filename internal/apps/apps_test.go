package apps

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogShareRoughlyOne(t *testing.T) {
	var total float64
	for _, a := range Catalog() {
		if a.ShareOfBytes < 0 {
			t.Errorf("%s has negative share", a.Name)
		}
		total += a.ShareOfBytes
	}
	if total < 0.85 || total > 1.1 {
		t.Errorf("catalog byte shares sum to %.3f, want ~1", total)
	}
}

func TestCatalogCategoryTotalsMatchTable6(t *testing.T) {
	// Category shares should land near Table 6: Other ~47%, Video ~34%,
	// File sharing ~8.4%, Social ~4.2%.
	byCat := make(map[Category]float64)
	for _, a := range Catalog() {
		byCat[a.Category] += a.ShareOfBytes
	}
	checks := []struct {
		cat  Category
		want float64
		tol  float64
	}{
		{CatOther, 0.47, 0.08},
		{CatVideoMusic, 0.34, 0.06},
		{CatFileSharing, 0.084, 0.02},
		{CatSocial, 0.042, 0.015},
		{CatEmail, 0.017, 0.01},
		{CatP2P, 0.010, 0.005},
	}
	for _, c := range checks {
		if got := byCat[c.cat]; math.Abs(got-c.want) > c.tol {
			t.Errorf("category %s share = %.3f, want %.3f±%.3f", c.cat, got, c.want, c.tol)
		}
	}
}

func TestCatalogFieldsSane(t *testing.T) {
	for _, a := range Catalog() {
		if a.Name == "" {
			t.Fatal("unnamed app")
		}
		if a.DownloadFrac < 0 || a.DownloadFrac > 1 {
			t.Errorf("%s DownloadFrac = %v", a.Name, a.DownloadFrac)
		}
		if a.ClientFrac < 0 || a.ClientFrac > 1 {
			t.Errorf("%s ClientFrac = %v", a.Name, a.ClientFrac)
		}
		if a.YoYBytes <= 0 {
			t.Errorf("%s YoYBytes = %v", a.Name, a.YoYBytes)
		}
	}
}

func TestCatalogByNameComplete(t *testing.T) {
	m := CatalogByName()
	if len(m) != len(Catalog()) {
		t.Errorf("CatalogByName has %d entries, catalog %d (duplicate names?)", len(m), len(Catalog()))
	}
}

func TestIsMiscBucket(t *testing.T) {
	for _, name := range []string{MiscWeb, MiscSecureWeb, MiscVideo, MiscAudio, NonWebTCP, MiscUDP, EncryptedTCP, UnknownApp} {
		if !IsMiscBucket(name) {
			t.Errorf("%q not detected as misc", name)
		}
	}
	if IsMiscBucket("Netflix") {
		t.Error("Netflix flagged as misc")
	}
}

func TestCategoriesCount(t *testing.T) {
	if got := len(Categories()); got != 14 {
		t.Errorf("categories = %d, want 14 (Table 6)", got)
	}
	if CatOther.String() != "Other" || CatWebFileSharing.String() != "Web file sharing" {
		t.Error("category names wrong")
	}
}

func TestHTTPRequestRoundTrip(t *testing.T) {
	raw := BuildHTTPRequest("GET", "www.netflix.com", "/browse", UserAgentFor(OSMacOSX), "")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("ParseHTTPRequest: %v", err)
	}
	if req.Host != "www.netflix.com" || req.Method != "GET" || req.Path != "/browse" {
		t.Errorf("parsed = %+v", req)
	}
	if !strings.Contains(req.UserAgent, "Mac OS X") {
		t.Errorf("UA = %q", req.UserAgent)
	}
}

func TestHTTPHostPortStripped(t *testing.T) {
	raw := BuildHTTPRequest("GET", "example.com:8080", "/", "", "")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Host != "example.com" {
		t.Errorf("Host = %q", req.Host)
	}
}

func TestHTTPContentTypeCarried(t *testing.T) {
	raw := BuildHTTPRequest("GET", "cdn077.example.net", "/stream.mp4", "", "video/mp4")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.ContentType != "video/mp4" {
		t.Errorf("ContentType = %q", req.ContentType)
	}
}

func TestParseHTTPRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("\x16\x03\x01"),
		[]byte("NOTAVERB / HTTP/1.1\r\n"),
		[]byte("GET /nohttp\r\n"),
		[]byte("GET / SPDY/3\r\n"),
	} {
		if _, err := ParseHTTPRequest(in); err == nil {
			t.Errorf("ParseHTTPRequest(%q) accepted", in)
		}
	}
}

func TestClientHelloSNIRoundTrip(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		names := []string{"netflix.com", "a.b.c.example.org", "x", "googlevideo.com"}
		name := names[raw%uint32(len(names))]
		sni, err := ParseClientHelloSNI(BuildClientHello(name))
		return err == nil && sni == name
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestClientHelloNoSNI(t *testing.T) {
	sni, err := ParseClientHelloSNI(BuildClientHello(""))
	if err != nil || sni != "" {
		t.Errorf("no-SNI hello = %q, %v", sni, err)
	}
}

func TestClientHelloRejectsGarbage(t *testing.T) {
	if _, err := ParseClientHelloSNI([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Error("HTTP accepted as TLS")
	}
	if _, err := ParseClientHelloSNI(nil); err == nil {
		t.Error("nil accepted as TLS")
	}
	// Truncated record.
	good := BuildClientHello("example.com")
	if _, err := ParseClientHelloSNI(good[:8]); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestClientHelloFuzzNoPanic(t *testing.T) {
	// The parser must never panic on arbitrary bytes.
	err := quick.Check(func(b []byte) bool {
		_, _ = ParseClientHelloSNI(b)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestDNSQueryRoundTrip(t *testing.T) {
	raw := BuildDNSQuery(0x1234, "api.dropcam.com")
	name, err := ParseDNSQuery(raw)
	if err != nil {
		t.Fatalf("ParseDNSQuery: %v", err)
	}
	if name != "api.dropcam.com" {
		t.Errorf("name = %q", name)
	}
}

func TestDNSRejectsResponse(t *testing.T) {
	raw := BuildDNSQuery(1, "example.com")
	raw[2] |= 0x80 // QR bit: response
	if _, err := ParseDNSQuery(raw); err == nil {
		t.Error("DNS response accepted as query")
	}
}

func TestDNSFuzzNoPanic(t *testing.T) {
	err := quick.Check(func(b []byte) bool {
		_, _ = ParseDNSQuery(b)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestClassifierRuleCount(t *testing.T) {
	c := NewClassifier()
	// "There are about 200 application identification rules" (§2.1).
	if n := c.RuleCount(); n < 150 || n > 260 {
		t.Errorf("rule count = %d, want ~200", n)
	}
}

func TestClassifyBySNI(t *testing.T) {
	c := NewClassifier()
	r := c.Classify(FlowMeta{
		Proto:       TCP,
		ServerPort:  443,
		ClientHello: BuildClientHello("occ-ams-01.nflxvideo.net"),
	})
	if r.App != "Netflix" || r.Category != CatVideoMusic {
		t.Errorf("Netflix flow classified as %q/%v (rule %s)", r.App, r.Category, r.Rule)
	}
}

func TestClassifyByHTTPHost(t *testing.T) {
	c := NewClassifier()
	r := c.Classify(FlowMeta{
		Proto:      TCP,
		ServerPort: 80,
		HTTPHead:   BuildHTTPRequest("GET", "www.espn.go.com", "/scores", UserAgentFor(OSiOS), ""),
	})
	if r.App != "ESPN" || r.Category != CatSports {
		t.Errorf("ESPN flow = %q/%v", r.App, r.Category)
	}
	if !strings.Contains(r.UserAgent, "iPhone") {
		t.Error("user agent not forwarded")
	}
}

func TestClassifyByDNSOnly(t *testing.T) {
	c := NewClassifier()
	r := c.Classify(FlowMeta{
		Proto:      TCP,
		ServerPort: 443,
		DNSQuery:   BuildDNSQuery(7, "stream.dropcam.com"),
	})
	if r.App != "Dropcam" {
		t.Errorf("Dropcam flow = %q", r.App)
	}
}

func TestClassifyByPort(t *testing.T) {
	c := NewClassifier()
	r := c.Classify(FlowMeta{Proto: TCP, ServerPort: 445})
	if r.App != "Windows file sharing" || r.Category != CatFileSharing {
		t.Errorf("SMB flow = %q/%v", r.App, r.Category)
	}
	r = c.Classify(FlowMeta{Proto: TCP, ServerPort: 1935})
	if r.App != "RTMP (Adobe Flash)" {
		t.Errorf("RTMP flow = %q", r.App)
	}
}

func TestClassifyLongestSuffixWins(t *testing.T) {
	c := NewClassifier()
	// spotify.map.fastly.net must hit Spotify, not the CDNs rule for
	// fastly.net.
	r := c.Classify(FlowMeta{Proto: TCP, ServerPort: 443, ClientHello: BuildClientHello("audio4.spotify.map.fastly.net")})
	if r.App != "Spotify" {
		t.Errorf("spotify-on-fastly = %q (rule %s)", r.App, r.Rule)
	}
	// Plain fastly.net still hits CDNs.
	r = c.Classify(FlowMeta{Proto: TCP, ServerPort: 443, ClientHello: BuildClientHello("global.fastly.net")})
	if r.App != "CDNs" {
		t.Errorf("fastly = %q", r.App)
	}
}

func TestClassifyFallbacks(t *testing.T) {
	c := NewClassifier()
	cases := []struct {
		meta FlowMeta
		want string
	}{
		{FlowMeta{Proto: TCP, ServerPort: 80, HTTPHead: BuildHTTPRequest("GET", "tiny-unknown-site.xyz", "/", "", "")}, MiscWeb},
		{FlowMeta{Proto: TCP, ServerPort: 443, ClientHello: BuildClientHello("obscure-unknown.example")}, MiscSecureWeb},
		{FlowMeta{Proto: TCP, ServerPort: 8443, ClientHello: BuildClientHello("")}, EncryptedTCP},
		{FlowMeta{Proto: TCP, ServerPort: 9999}, NonWebTCP},
		{FlowMeta{Proto: UDP, ServerPort: 9999}, MiscUDP},
		{FlowMeta{Proto: TCP, ServerPort: 80, HTTPHead: BuildHTTPRequest("GET", "cdn9.unknownvideo.example", "/v.mp4", "", "video/mp4")}, MiscVideo},
		{FlowMeta{Proto: TCP, ServerPort: 80, HTTPHead: BuildHTTPRequest("GET", "cdn9.unknownaudio.example", "/a.mp3", "", "audio/mpeg")}, MiscAudio},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.meta); got.App != tc.want {
			t.Errorf("flow %+v classified %q, want %q", tc.meta.ServerPort, got.App, tc.want)
		}
	}
}

func TestClassifyPortFirstAblation(t *testing.T) {
	c := NewClassifier()
	// A Dropbox flow on port 445: hostname-first finds Dropbox,
	// port-first misattributes it to Windows file sharing.
	meta := FlowMeta{Proto: TCP, ServerPort: 445, ClientHello: BuildClientHello("client.dropbox.com")}
	if r := c.Classify(meta); r.App != "Dropbox" {
		t.Errorf("hostname-first = %q", r.App)
	}
	c.PortFirst = true
	if r := c.Classify(meta); r.App != "Windows file sharing" {
		t.Errorf("port-first = %q", r.App)
	}
}

func TestClassifyNeverEmpty(t *testing.T) {
	c := NewClassifier()
	err := quick.Check(func(port uint16, udp bool, junk []byte) bool {
		p := TCP
		if udp {
			p = UDP
		}
		r := c.Classify(FlowMeta{Proto: p, ServerPort: port, HTTPHead: junk})
		return r.App != ""
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestOSFromUserAgentTable(t *testing.T) {
	for _, os := range []OS{OSWindows, OSiOS, OSMacOSX, OSAndroid, OSChromeOS, OSPlayStation, OSLinux, OSBlackBerry, OSWindowsMobile} {
		ua := UserAgentFor(os)
		if got := OSFromUserAgent(ua); got != os {
			t.Errorf("UA round trip for %v = %v (ua %q)", os, got, ua)
		}
	}
	if OSFromUserAgent("") != OSUnknown {
		t.Error("empty UA should be Unknown")
	}
	if OSFromUserAgent("curl/7.35") != OSOther {
		t.Error("unrecognized UA should be Other")
	}
}

func TestOSFromDHCPTable(t *testing.T) {
	for _, os := range []OS{OSWindows, OSiOS, OSMacOSX, OSAndroid, OSChromeOS, OSPlayStation, OSLinux, OSBlackBerry, OSWindowsMobile} {
		fp, ok := DHCPFingerprintFor(os)
		if !ok {
			t.Errorf("no fingerprint for %v", os)
			continue
		}
		if got := OSFromDHCP(fp); got != os {
			t.Errorf("DHCP round trip for %v = %v", os, got)
		}
	}
	if OSFromDHCP([]byte{9, 9, 9}) != OSUnknown {
		t.Error("unknown fingerprint should be Unknown")
	}
}

func TestInferOSAgreement(t *testing.T) {
	fp, _ := DHCPFingerprintFor(OSAndroid)
	got := InferOS([3]byte{0x38, 0xaa, 0x3c}, [][]byte{fp}, []string{UserAgentFor(OSAndroid)})
	if got != OSAndroid {
		t.Errorf("agreeing signals = %v", got)
	}
}

func TestInferOSConflictingDHCP(t *testing.T) {
	// Dual-boot: two different fingerprints from one MAC -> Unknown.
	fpW, _ := DHCPFingerprintFor(OSWindows)
	fpL, _ := DHCPFingerprintFor(OSLinux)
	got := InferOS([3]byte{}, [][]byte{fpW, fpL}, nil)
	if got != OSUnknown {
		t.Errorf("dual-boot = %v, want Unknown", got)
	}
}

func TestInferOSConflictingUAvsDHCP(t *testing.T) {
	fpW, _ := DHCPFingerprintFor(OSWindows)
	got := InferOS([3]byte{}, [][]byte{fpW}, []string{UserAgentFor(OSiOS)})
	if got != OSUnknown {
		t.Errorf("conflicting DHCP/UA = %v, want Unknown", got)
	}
}

func TestInferOSVendorOnlyWeakSignal(t *testing.T) {
	// Sony Interactive OUI alone identifies a PlayStation.
	got := InferOS([3]byte{0xf8, 0xd0, 0xac}, nil, nil)
	if got != OSPlayStation {
		t.Errorf("sony OUI = %v", got)
	}
	// No signals at all: Unknown.
	if InferOS([3]byte{0xde, 0xad, 0x01}, nil, nil) != OSUnknown {
		t.Error("no signals should be Unknown")
	}
}

func TestInferOSUserAgentOnly(t *testing.T) {
	got := InferOS([3]byte{}, nil, []string{UserAgentFor(OSChromeOS)})
	if got != OSChromeOS {
		t.Errorf("UA-only = %v", got)
	}
}

func TestHotspotVendors(t *testing.T) {
	if !IsHotspotVendor("Novatel Wireless") || !IsHotspotVendor("Sierra Wireless") || !IsHotspotVendor("Pantech") {
		t.Error("hotspot vendors missing")
	}
	if IsHotspotVendor("Apple") {
		t.Error("Apple flagged as hotspot vendor")
	}
	if len(HotspotOUIs()) < 3 {
		t.Errorf("HotspotOUIs = %d entries", len(HotspotOUIs()))
	}
	for _, oui := range HotspotOUIs() {
		if !IsHotspotVendor(VendorFromOUI(oui)) {
			t.Errorf("OUI %v not a hotspot vendor", oui)
		}
	}
}

func TestOSStringsMatchTable3(t *testing.T) {
	want := map[OS]string{
		OSWindows:       "Windows",
		OSiOS:           "Apple iOS",
		OSMacOSX:        "Mac OS X",
		OSAndroid:       "Android",
		OSUnknown:       "Unknown",
		OSChromeOS:      "Chrome OS",
		OSOther:         "Other",
		OSPlayStation:   "Sony Playstation OS",
		OSLinux:         "Linux",
		OSBlackBerry:    "RIM BlackBerry",
		OSWindowsMobile: "Mobile Windows OSes",
	}
	for os, name := range want {
		if os.String() != name {
			t.Errorf("%d.String() = %q, want %q", os, os.String(), name)
		}
	}
	if len(AllOSes()) != 11 {
		t.Errorf("AllOSes = %d, want 11 rows", len(AllOSes()))
	}
}

func TestIsMobile(t *testing.T) {
	for _, os := range []OS{OSiOS, OSAndroid, OSBlackBerry, OSWindowsMobile} {
		if !os.IsMobile() {
			t.Errorf("%v not mobile", os)
		}
	}
	for _, os := range []OS{OSWindows, OSMacOSX, OSLinux, OSPlayStation} {
		if os.IsMobile() {
			t.Errorf("%v flagged mobile", os)
		}
	}
}

func BenchmarkClassifySNI(b *testing.B) {
	c := NewClassifier()
	meta := FlowMeta{Proto: TCP, ServerPort: 443, ClientHello: BuildClientHello("v12.googlevideo.com")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(meta)
	}
}

func BenchmarkParseClientHello(b *testing.B) {
	raw := BuildClientHello("edge.example.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseClientHelloSNI(raw); err != nil {
			b.Fatal(err)
		}
	}
}
