package apps

import (
	"strings"
)

// FlowMeta is the metadata the AP slow path extracts for one new flow:
// the transport and server port from the SYN, the preceding DNS lookup,
// and either the TLS ClientHello or the HTTP request head, whichever the
// flow carries.
type FlowMeta struct {
	// Proto is the transport protocol.
	Proto Proto
	// ServerPort is the destination port of the flow.
	ServerPort uint16
	// DNSQuery is the raw DNS query message observed immediately before
	// the flow, if any.
	DNSQuery []byte
	// ClientHello is the raw TLS ClientHello, if the flow is TLS.
	ClientHello []byte
	// HTTPHead is the raw HTTP request head, if the flow is plain HTTP.
	HTTPHead []byte
}

// Result is a classification outcome.
type Result struct {
	// App is the application name (a Table 5 row).
	App string
	// Category is the application's category.
	Category Category
	// Host is the hostname that drove the decision, if any.
	Host string
	// UserAgent is the HTTP User-Agent, if the flow carried one
	// (forwarded to OS inference).
	UserAgent string
	// Rule describes which rule matched, for diagnostics.
	Rule string
}

type portKey struct {
	proto Proto
	port  uint16
}

// Classifier is the compiled rule engine. It is safe for concurrent use
// after construction.
type Classifier struct {
	hostRules map[string]AppInfo
	portRules map[portKey]AppInfo
	byName    map[string]AppInfo
	// PortFirst inverts the evaluation order so port rules run before
	// hostname rules. The paper's pipeline is hostname-first; this knob
	// exists for the rule-order ablation bench.
	PortFirst bool
	ruleCount int
}

// NewClassifier compiles the catalog into a classifier.
func NewClassifier() *Classifier {
	c := &Classifier{
		hostRules: make(map[string]AppInfo),
		portRules: make(map[portKey]AppInfo),
		byName:    make(map[string]AppInfo),
	}
	for _, app := range Catalog() {
		c.byName[app.Name] = app
		for _, h := range app.Hosts {
			c.hostRules[strings.ToLower(h)] = app
			c.ruleCount++
		}
		for _, p := range app.Ports {
			c.portRules[portKey{app.Proto, p}] = app
			c.ruleCount++
		}
	}
	// Fallback rules (misc web, misc secure web, content-type video and
	// audio, non-web TCP, UDP, encrypted TCP) count toward the rule set.
	c.ruleCount += 7
	return c
}

// RuleCount returns the number of compiled rules — about 200, matching
// the paper's "about 200 application identification rules".
func (c *Classifier) RuleCount() int { return c.ruleCount }

// AppByName returns the catalog entry for an application name.
func (c *Classifier) AppByName(name string) (AppInfo, bool) {
	a, ok := c.byName[name]
	return a, ok
}

// lookupHost finds the most specific (longest-suffix) host rule for a
// hostname: it tries the full name, then strips leading labels.
func (c *Classifier) lookupHost(host string) (AppInfo, bool) {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	for host != "" {
		if app, ok := c.hostRules[host]; ok {
			return app, true
		}
		dot := strings.IndexByte(host, '.')
		if dot < 0 {
			break
		}
		host = host[dot+1:]
	}
	return AppInfo{}, false
}

// Classify identifies the application behind one flow. It never returns
// an empty result: flows that match no specific rule land in the misc
// buckets, exactly as the paper's Table 5 reports them.
func (c *Classifier) Classify(m FlowMeta) Result {
	// Extract metadata from the artifacts (the real work of the slow
	// path).
	var host, ua, contentType string
	isTLS := false
	isHTTP := false
	if len(m.ClientHello) > 0 {
		if sni, err := ParseClientHelloSNI(m.ClientHello); err == nil {
			isTLS = true
			host = sni
		}
	}
	if host == "" && len(m.HTTPHead) > 0 {
		if req, err := ParseHTTPRequest(m.HTTPHead); err == nil {
			isHTTP = true
			host = req.Host
			ua = req.UserAgent
			contentType = req.ContentType
		}
	}
	if host == "" && len(m.DNSQuery) > 0 {
		if name, err := ParseDNSQuery(m.DNSQuery); err == nil {
			host = name
		}
	}

	mk := func(app AppInfo, rule string) Result {
		return Result{App: app.Name, Category: app.Category, Host: host, UserAgent: ua, Rule: rule}
	}

	tryHost := func() (Result, bool) {
		if host == "" {
			return Result{}, false
		}
		if app, ok := c.lookupHost(host); ok {
			return mk(app, "host:"+host), true
		}
		return Result{}, false
	}
	tryPort := func() (Result, bool) {
		if app, ok := c.portRules[portKey{m.Proto, m.ServerPort}]; ok {
			return mk(app, "port"), true
		}
		return Result{}, false
	}

	first, second := tryHost, tryPort
	if c.PortFirst {
		first, second = tryPort, tryHost
	}
	if r, ok := first(); ok {
		return r
	}
	if r, ok := second(); ok {
		return r
	}

	// Fallback buckets.
	ctLower := strings.ToLower(contentType)
	switch {
	case strings.HasPrefix(ctLower, "video/"):
		return mk(c.byName[MiscVideo], "content-type:video")
	case strings.HasPrefix(ctLower, "audio/"):
		return mk(c.byName[MiscAudio], "content-type:audio")
	case isHTTP || (m.Proto == TCP && m.ServerPort == 80):
		return mk(c.byName[MiscWeb], "fallback:http")
	case isTLS && m.ServerPort == 443:
		return mk(c.byName[MiscSecureWeb], "fallback:https")
	case isTLS:
		return mk(c.byName[EncryptedTCP], "fallback:tls-nonstd")
	case m.Proto == TCP && m.ServerPort == 443:
		return mk(c.byName[MiscSecureWeb], "fallback:443")
	case m.Proto == TCP:
		return mk(c.byName[NonWebTCP], "fallback:tcp")
	default:
		return mk(c.byName[MiscUDP], "fallback:udp")
	}
}
