// Package apps implements the application-identification pipeline the
// Meraki access points run (paper Sections 2.1 and 3.3): parsers that
// extract metadata from flow artifacts (DNS queries, TLS ClientHello
// SNI, HTTP request headers, ports), a rule engine of roughly two
// hundred application-identification rules, the application category
// taxonomy of Table 6, and the OS-inference heuristics of Section 3.2
// (MAC OUI prefix, DHCP option fingerprints, HTTP User-Agent).
package apps

// Category is the application category taxonomy of Table 6.
type Category uint8

const (
	CatOther Category = iota
	CatVideoMusic
	CatFileSharing
	CatSocial
	CatEmail
	CatVoIP
	CatP2P
	CatSoftwareUpdates
	CatGaming
	CatSports
	CatNews
	CatOnlineBackup
	CatBlogging
	CatWebFileSharing
	numCategories
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case CatOther:
		return "Other"
	case CatVideoMusic:
		return "Video & music"
	case CatFileSharing:
		return "File sharing"
	case CatSocial:
		return "Social web & photo sharing"
	case CatEmail:
		return "Email"
	case CatVoIP:
		return "VoIP & video conferencing"
	case CatP2P:
		return "Peer-to-peer (P2P)"
	case CatSoftwareUpdates:
		return "Software & anti-virus updates"
	case CatGaming:
		return "Gaming"
	case CatSports:
		return "Sports"
	case CatNews:
		return "News"
	case CatOnlineBackup:
		return "Online backup"
	case CatBlogging:
		return "Blogging"
	case CatWebFileSharing:
		return "Web file sharing"
	default:
		return "unknown"
	}
}

// Categories returns all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Proto is a transport protocol.
type Proto uint8

const (
	// TCP transport.
	TCP Proto = iota
	// UDP transport.
	UDP
)

// String names the protocol.
func (p Proto) String() string {
	if p == UDP {
		return "UDP"
	}
	return "TCP"
}

// AppInfo describes one application the rule set can identify, plus the
// calibration targets the fleet generator uses to reproduce Table 5.
type AppInfo struct {
	// Name as reported in Table 5.
	Name string
	// Category per Table 6.
	Category Category
	// Hosts are DNS/SNI/HTTP-Host suffixes that identify the app.
	Hosts []string
	// Ports are well-known server ports for non-web protocols.
	Ports []uint16
	// Proto is the dominant transport.
	Proto Proto
	// Secure marks TLS traffic (identified via SNI rather than HTTP).
	Secure bool

	// Calibration targets for January 2015, from Table 5.
	// ShareOfBytes is the fraction of all weekly bytes.
	ShareOfBytes float64
	// DownloadFrac is the download share of the app's bytes.
	DownloadFrac float64
	// ClientFrac is the fraction of all clients that use the app in a
	// week.
	ClientFrac float64
	// YoYBytes is the 2014→2015 byte growth multiplier (1.62 = +62%).
	YoYBytes float64
}

// Misc-bucket application names produced when no specific rule matches.
// They appear in Table 5 alongside named applications.
const (
	MiscWeb       = "Miscellaneous web"
	MiscSecureWeb = "Miscellaneous secure web"
	MiscVideo     = "Miscellaneous video"
	MiscAudio     = "Miscellaneous audio"
	NonWebTCP     = "Non-web TCP"
	MiscUDP       = "UDP"
	EncryptedTCP  = "Encrypted TCP (SSL)"
	UnknownApp    = "Unknown"
)

// Catalog returns the application catalog: every named application in
// Table 5 plus the misc buckets and a tail of smaller applications that
// fill out the category totals of Table 6. The calibration fields are
// the paper's January 2015 values (approximated where the published
// table is ambiguous; see EXPERIMENTS.md).
func Catalog() []AppInfo {
	const totalClients = 5578126.0
	cf := func(n float64) float64 { return n / totalClients }
	return []AppInfo{
		// ---- Misc buckets (classified by fallback rules). ----
		{Name: MiscWeb, Category: CatOther, Proto: TCP,
			ShareOfBytes: 0.138, DownloadFrac: 0.80, ClientFrac: cf(4623630), YoYBytes: 1.55},
		{Name: MiscSecureWeb, Category: CatOther, Proto: TCP, Secure: true,
			ShareOfBytes: 0.077, DownloadFrac: 0.94, ClientFrac: cf(5115023), YoYBytes: 1.94},
		{Name: NonWebTCP, Category: CatOther, Proto: TCP,
			ShareOfBytes: 0.070, DownloadFrac: 0.76, ClientFrac: cf(2900000), YoYBytes: 1.76},
		{Name: MiscUDP, Category: CatOther, Proto: UDP,
			ShareOfBytes: 0.032, DownloadFrac: 0.61, ClientFrac: cf(3705171), YoYBytes: 1.60},
		{Name: MiscVideo, Category: CatVideoMusic, Proto: TCP,
			ShareOfBytes: 0.051, DownloadFrac: 0.91, ClientFrac: cf(1383386), YoYBytes: 1.61},
		{Name: MiscAudio, Category: CatVideoMusic, Proto: TCP,
			ShareOfBytes: 0.0066, DownloadFrac: 0.97, ClientFrac: cf(460262), YoYBytes: 1.54},
		{Name: EncryptedTCP, Category: CatOther, Proto: TCP, Secure: true,
			ShareOfBytes: 0.0031, DownloadFrac: 0.65, ClientFrac: cf(1441775), YoYBytes: 1.50},

		// ---- Video & music. ----
		{Name: "YouTube", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"youtube.com", "googlevideo.com", "ytimg.com", "youtu.be"},
			ShareOfBytes: 0.103, DownloadFrac: 0.97, ClientFrac: cf(3500000), YoYBytes: 1.70},
		{Name: "Netflix", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"netflix.com", "nflxvideo.net", "nflximg.net", "nflxext.com"},
			ShareOfBytes: 0.098, DownloadFrac: 0.98, ClientFrac: cf(161014), YoYBytes: 1.76},
		{Name: "iTunes", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"itunes.apple.com", "mzstatic.com", "itunes.com", "phobos.apple.com"},
			ShareOfBytes: 0.054, DownloadFrac: 0.98, ClientFrac: cf(2230787), YoYBytes: 1.66},
		{Name: "Pandora", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"pandora.com", "p-cdn.com"},
			ShareOfBytes: 0.0064, DownloadFrac: 0.97, ClientFrac: cf(182753), YoYBytes: 1.25},
		{Name: "Spotify", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"spotify.com", "scdn.co", "spotify.map.fastly.net"},
			Ports:        []uint16{4070},
			ShareOfBytes: 0.0056, DownloadFrac: 0.98, ClientFrac: cf(209219), YoYBytes: 2.42},
		{Name: "Hulu", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"hulu.com", "huluim.com", "hulustream.com"},
			ShareOfBytes: 0.0036, DownloadFrac: 0.98, ClientFrac: cf(51667), YoYBytes: 2.02},
		{Name: "Xfinity TV", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"xfinity.com", "comcast.net", "xfinitytv.comcast.net"},
			ShareOfBytes: 0.0026, DownloadFrac: 0.98, ClientFrac: cf(12802), YoYBytes: 1.87},
		{Name: "Vimeo", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"vimeo.com", "vimeocdn.com"},
			ShareOfBytes: 0.0020, DownloadFrac: 0.97, ClientFrac: cf(310000), YoYBytes: 1.5},
		{Name: "Twitch", Category: CatVideoMusic, Secure: true,
			Hosts:        []string{"twitch.tv", "ttvnw.net", "jtvnw.net"},
			ShareOfBytes: 0.0018, DownloadFrac: 0.98, ClientFrac: cf(90000), YoYBytes: 1.9},

		// ---- File sharing. ----
		{Name: "Windows file sharing", Category: CatFileSharing, Proto: TCP,
			Ports:        []uint16{445, 139},
			ShareOfBytes: 0.045, DownloadFrac: 0.66, ClientFrac: cf(740591), YoYBytes: 1.48},
		{Name: "Apple file sharing", Category: CatFileSharing, Proto: TCP,
			Ports:        []uint16{548},
			ShareOfBytes: 0.022, DownloadFrac: 0.44, ClientFrac: cf(21951), YoYBytes: 1.18},
		{Name: "Dropbox", Category: CatFileSharing, Secure: true,
			Hosts:        []string{"dropbox.com", "dropboxstatic.com", "getdropbox.com"},
			ShareOfBytes: 0.012, DownloadFrac: 0.60, ClientFrac: cf(369068), YoYBytes: 0.985},
		{Name: "Microsoft Skydrive", Category: CatFileSharing, Secure: true,
			Hosts:        []string{"skydrive.live.com", "onedrive.live.com", "storage.live.com"},
			ShareOfBytes: 0.0023, DownloadFrac: 0.25, ClientFrac: cf(269437), YoYBytes: 0.90},
		{Name: "Box", Category: CatFileSharing, Secure: true,
			Hosts:        []string{"box.com", "boxcdn.net"},
			ShareOfBytes: 0.0012, DownloadFrac: 0.55, ClientFrac: cf(90000), YoYBytes: 1.3},

		// ---- Social web & photo sharing. ----
		{Name: "Facebook", Category: CatSocial, Secure: true,
			Hosts:        []string{"facebook.com", "fbcdn.net", "fb.com", "fbstatic-a.akamaihd.net"},
			ShareOfBytes: 0.029, DownloadFrac: 0.93, ClientFrac: cf(3579926), YoYBytes: 1.61},
		{Name: "Instagram", Category: CatSocial, Secure: true,
			Hosts:        []string{"instagram.com", "cdninstagram.com"},
			ShareOfBytes: 0.0091, DownloadFrac: 0.96, ClientFrac: cf(831935), YoYBytes: 1.45},
		{Name: "Twitter", Category: CatSocial, Secure: true,
			Hosts:        []string{"twitter.com", "twimg.com", "t.co"},
			ShareOfBytes: 0.0033, DownloadFrac: 0.91, ClientFrac: cf(1925505), YoYBytes: 1.67},
		{Name: "Pinterest", Category: CatSocial, Secure: true,
			Hosts:        []string{"pinterest.com", "pinimg.com"},
			ShareOfBytes: 0.0012, DownloadFrac: 0.95, ClientFrac: cf(420000), YoYBytes: 1.6},
		{Name: "Snapchat", Category: CatSocial, Secure: true,
			Hosts:        []string{"snapchat.com", "sc-cdn.net", "feelinsonice.appspot.com"},
			ShareOfBytes: 0.0008, DownloadFrac: 0.85, ClientFrac: cf(350000), YoYBytes: 2.5},

		// ---- Email. ----
		{Name: "Gmail", Category: CatEmail, Secure: true,
			Hosts:        []string{"mail.google.com", "gmail.com", "googlemail.com"},
			ShareOfBytes: 0.0062, DownloadFrac: 0.74, ClientFrac: cf(1337755), YoYBytes: 1.26},
		{Name: "Windows Live Hotmail and Outlook", Category: CatEmail, Secure: true,
			Hosts:        []string{"hotmail.com", "outlook.com", "mail.live.com", "outlook.office365.com"},
			ShareOfBytes: 0.0047, DownloadFrac: 0.64, ClientFrac: cf(366272), YoYBytes: 3.16},
		{Name: "Other web-based email", Category: CatEmail, Secure: true,
			Hosts:        []string{"mail.yahoo.com", "mail.aol.com", "mail.comcast.net", "roundcube.net", "squirrelmail.org"},
			ShareOfBytes: 0.0025, DownloadFrac: 0.49, ClientFrac: cf(277919), YoYBytes: 0.936},
		{Name: "IMAP/SMTP email", Category: CatEmail, Proto: TCP,
			Ports:        []uint16{993, 143, 587, 465, 25, 995, 110},
			ShareOfBytes: 0.0030, DownloadFrac: 0.70, ClientFrac: cf(600000), YoYBytes: 1.2},

		// ---- VoIP & video conferencing. ----
		{Name: "Skype", Category: CatVoIP, Secure: true,
			Hosts:        []string{"skype.com", "skypeassets.com", "skypedata.akadns.net"},
			Ports:        []uint16{33033},
			ShareOfBytes: 0.0069, DownloadFrac: 0.49, ClientFrac: cf(392878), YoYBytes: 1.48},
		{Name: "Dropcam", Category: CatVoIP, Secure: true,
			Hosts:        []string{"dropcam.com", "nexusapi.dropcam.com", "stream.dropcam.com"},
			ShareOfBytes: 0.0042, DownloadFrac: 0.05, ClientFrac: cf(2940), YoYBytes: 1.72},
		{Name: "WebEx", Category: CatVoIP, Secure: true,
			Hosts:        []string{"webex.com", "wbx2.com"},
			ShareOfBytes: 0.0010, DownloadFrac: 0.50, ClientFrac: cf(80000), YoYBytes: 1.4},
		{Name: "FaceTime", Category: CatVoIP, Proto: UDP,
			Ports:        []uint16{3478, 16393},
			ShareOfBytes: 0.0009, DownloadFrac: 0.50, ClientFrac: cf(250000), YoYBytes: 1.5},

		// ---- P2P. ----
		{Name: "BitTorrent", Category: CatP2P, Proto: TCP,
			Ports:        []uint16{6881, 6882, 6883, 6889, 51413},
			ShareOfBytes: 0.0069, DownloadFrac: 0.58, ClientFrac: cf(38294), YoYBytes: 0.915},
		{Name: "Encrypted P2P", Category: CatP2P, Proto: TCP,
			Ports:        []uint16{4662, 4672, 16881},
			ShareOfBytes: 0.0033, DownloadFrac: 0.97, ClientFrac: cf(81673), YoYBytes: 1.17},

		// ---- Software & anti-virus updates. ----
		{Name: "Software updates", Category: CatSoftwareUpdates,
			Hosts:        []string{"windowsupdate.com", "update.microsoft.com", "swcdn.apple.com", "swscan.apple.com", "avast.com", "symantecliveupdate.com"},
			ShareOfBytes: 0.0094, DownloadFrac: 0.98, ClientFrac: cf(689677), YoYBytes: 1.36},

		// ---- Gaming. ----
		{Name: "Steam", Category: CatGaming, Secure: true,
			Hosts:        []string{"steampowered.com", "steamcontent.com", "steamstatic.com"},
			Ports:        []uint16{27030, 27031},
			ShareOfBytes: 0.0035, DownloadFrac: 0.98, ClientFrac: cf(21011), YoYBytes: 1.47},
		{Name: "Xbox Live", Category: CatGaming, Secure: true,
			Hosts:        []string{"xboxlive.com", "xbox.com"},
			Ports:        []uint16{3074},
			ShareOfBytes: 0.0013, DownloadFrac: 0.95, ClientFrac: cf(60000), YoYBytes: 1.5},
		{Name: "PlayStation Network", Category: CatGaming, Secure: true,
			Hosts:        []string{"playstation.net", "playstation.com", "sonyentertainmentnetwork.com"},
			ShareOfBytes: 0.0009, DownloadFrac: 0.96, ClientFrac: cf(50000), YoYBytes: 1.5},

		// ---- Sports. ----
		{Name: "ESPN", Category: CatSports, Secure: true,
			Hosts:        []string{"espn.com", "espn.go.com", "espncdn.com"},
			ShareOfBytes: 0.0027, DownloadFrac: 0.98, ClientFrac: cf(202971), YoYBytes: 2.22},
		{Name: "MLB.tv", Category: CatSports, Secure: true,
			Hosts:        []string{"mlb.com", "mlbstatic.com"},
			ShareOfBytes: 0.0001, DownloadFrac: 0.98, ClientFrac: cf(23000), YoYBytes: 1.5},

		// ---- News. ----
		{Name: "CNN", Category: CatNews,
			Hosts:        []string{"cnn.com", "cdn.turner.com"},
			ShareOfBytes: 0.0008, DownloadFrac: 0.95, ClientFrac: cf(300000), YoYBytes: 1.76},
		{Name: "BBC", Category: CatNews,
			Hosts:        []string{"bbc.co.uk", "bbc.com", "bbci.co.uk"},
			ShareOfBytes: 0.0006, DownloadFrac: 0.95, ClientFrac: cf(200000), YoYBytes: 1.7},
		{Name: "New York Times", Category: CatNews, Secure: true,
			Hosts:        []string{"nytimes.com", "nyt.com"},
			ShareOfBytes: 0.0004, DownloadFrac: 0.95, ClientFrac: cf(180000), YoYBytes: 1.8},
		{Name: "Reddit", Category: CatNews, Secure: true,
			Hosts:        []string{"reddit.com", "redditstatic.com", "redd.it"},
			ShareOfBytes: 0.0004, DownloadFrac: 0.96, ClientFrac: cf(220000), YoYBytes: 1.8},

		// ---- Online backup. ----
		{Name: "Crashplan", Category: CatOnlineBackup, Secure: true,
			Hosts:        []string{"crashplan.com", "code42.com"},
			Ports:        []uint16{4282},
			ShareOfBytes: 0.0007, DownloadFrac: 0.042, ClientFrac: cf(3200), YoYBytes: 1.1},
		{Name: "Backblaze", Category: CatOnlineBackup, Secure: true,
			Hosts:        []string{"backblaze.com", "backblazeb2.com"},
			ShareOfBytes: 0.0005, DownloadFrac: 0.042, ClientFrac: cf(2400), YoYBytes: 1.1},
		{Name: "Carbonite", Category: CatOnlineBackup, Secure: true,
			Hosts:        []string{"carbonite.com"},
			ShareOfBytes: 0.0003, DownloadFrac: 0.042, ClientFrac: cf(1976), YoYBytes: 1.1},

		// ---- Blogging. ----
		{Name: "Tumblr", Category: CatOther, Secure: true,
			Hosts:        []string{"tumblr.com", "media.tumblr.com"},
			ShareOfBytes: 0.0057, DownloadFrac: 0.97, ClientFrac: cf(270482), YoYBytes: 1.31},
		{Name: "WordPress", Category: CatBlogging,
			Hosts:        []string{"wordpress.com", "wp.com", "gravatar.com"},
			ShareOfBytes: 0.00025, DownloadFrac: 0.97, ClientFrac: cf(300000), YoYBytes: 0.66},
		{Name: "Blogger", Category: CatBlogging,
			Hosts:        []string{"blogger.com", "blogspot.com"},
			ShareOfBytes: 0.00014, DownloadFrac: 0.97, ClientFrac: cf(187085), YoYBytes: 0.66},

		// ---- Web file sharing. ----
		{Name: "Mediafire", Category: CatWebFileSharing,
			Hosts:        []string{"mediafire.com"},
			ShareOfBytes: 0.0001, DownloadFrac: 0.978, ClientFrac: cf(6800), YoYBytes: 0.73},
		{Name: "Hotfile", Category: CatWebFileSharing,
			Hosts:        []string{"hotfile.com"},
			ShareOfBytes: 0.00007, DownloadFrac: 0.978, ClientFrac: cf(4022), YoYBytes: 0.73},

		// ---- Other (named). ----
		{Name: "CDNs", Category: CatOther,
			Hosts:        []string{"akamaihd.net", "akamai.net", "cloudfront.net", "edgecastcdn.net", "fastly.net", "llnwd.net"},
			ShareOfBytes: 0.039, DownloadFrac: 0.72, ClientFrac: cf(3157028), YoYBytes: 1.81},
		{Name: "Google HTTPS", Category: CatOther, Secure: true,
			Hosts:        []string{"google.com", "gstatic.com", "googleapis.com", "googleusercontent.com"},
			ShareOfBytes: 0.026, DownloadFrac: 0.85, ClientFrac: cf(3953002), YoYBytes: 1.67},
		{Name: "apple.com", Category: CatOther, Secure: true,
			Hosts:        []string{"apple.com", "icloud.com", "cdn-apple.com"},
			ShareOfBytes: 0.019, DownloadFrac: 0.94, ClientFrac: cf(2763663), YoYBytes: 1.79},
		{Name: "Google", Category: CatOther,
			Hosts:        []string{"www.google.com", "google-analytics.com", "googlesyndication.com", "doubleclick.net"},
			ShareOfBytes: 0.018, DownloadFrac: 0.85, ClientFrac: cf(3804317), YoYBytes: 1.19},
		{Name: "Google Drive", Category: CatOther, Secure: true,
			Hosts:        []string{"drive.google.com", "docs.google.com", "drive.googleusercontent.com"},
			ShareOfBytes: 0.012, DownloadFrac: 0.79, ClientFrac: cf(1325938), YoYBytes: 4.74},
		{Name: "RTMP (Adobe Flash)", Category: CatOther, Proto: TCP,
			Ports:        []uint16{1935},
			ShareOfBytes: 0.0062, DownloadFrac: 0.96, ClientFrac: cf(141403), YoYBytes: 1.10},
		{Name: "microsoft.com", Category: CatOther,
			Hosts:        []string{"microsoft.com", "msn.com", "live.com", "bing.com"},
			ShareOfBytes: 0.0059, DownloadFrac: 0.94, ClientFrac: cf(861136), YoYBytes: 1.15},
		{Name: "Remote desktop", Category: CatOther, Proto: TCP,
			Ports:        []uint16{3389, 5900},
			ShareOfBytes: 0.0029, DownloadFrac: 0.88, ClientFrac: cf(93876), YoYBytes: 1.66},
		{Name: "Amazon", Category: CatOther, Secure: true,
			Hosts:        []string{"amazon.com", "images-amazon.com", "ssl-images-amazon.com", "amazonaws.com"},
			ShareOfBytes: 0.0045, DownloadFrac: 0.90, ClientFrac: cf(1900000), YoYBytes: 1.6},
		{Name: "Yahoo", Category: CatOther,
			Hosts:        []string{"yahoo.com", "yimg.com", "yahooapis.com"},
			ShareOfBytes: 0.0030, DownloadFrac: 0.92, ClientFrac: cf(1500000), YoYBytes: 1.1},
		{Name: "Wikipedia", Category: CatOther, Secure: true,
			Hosts:        []string{"wikipedia.org", "wikimedia.org"},
			ShareOfBytes: 0.0010, DownloadFrac: 0.96, ClientFrac: cf(900000), YoYBytes: 1.3},
		{Name: "LinkedIn", Category: CatOther, Secure: true,
			Hosts:        []string{"linkedin.com", "licdn.com"},
			ShareOfBytes: 0.0008, DownloadFrac: 0.93, ClientFrac: cf(600000), YoYBytes: 1.4},
		{Name: "SSH", Category: CatOther, Proto: TCP,
			Ports:        []uint16{22},
			ShareOfBytes: 0.0005, DownloadFrac: 0.60, ClientFrac: cf(120000), YoYBytes: 1.2},
		{Name: "DNS", Category: CatOther, Proto: UDP,
			Ports:        []uint16{53},
			ShareOfBytes: 0.0004, DownloadFrac: 0.55, ClientFrac: cf(5000000), YoYBytes: 1.35},
		{Name: "NTP", Category: CatOther, Proto: UDP,
			Ports:        []uint16{123},
			ShareOfBytes: 0.0001, DownloadFrac: 0.50, ClientFrac: cf(4500000), YoYBytes: 1.35},
	}
}

// CatalogByName indexes the catalog by application name.
func CatalogByName() map[string]AppInfo {
	m := make(map[string]AppInfo)
	for _, a := range Catalog() {
		m[a.Name] = a
	}
	return m
}

// IsMiscBucket reports whether the application name is one of the
// fallback buckets rather than a rule-identified application.
func IsMiscBucket(name string) bool {
	switch name {
	case MiscWeb, MiscSecureWeb, MiscVideo, MiscAudio, NonWebTCP, MiscUDP, EncryptedTCP, UnknownApp:
		return true
	}
	return false
}
