package apps

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by the protocol parsers.
var (
	ErrNotHTTP      = errors.New("apps: not an HTTP request head")
	ErrNotTLS       = errors.New("apps: not a TLS ClientHello")
	ErrShortMessage = errors.New("apps: truncated message")
	ErrNotDNS       = errors.New("apps: not a DNS query")
)

// HTTPRequest is the metadata the slow path extracts from a packet
// containing an HTTP request header.
type HTTPRequest struct {
	Method    string
	Path      string
	Host      string
	UserAgent string
	// ContentType mirrors the Content-Type the server returned for the
	// flow, when the AP has seen the response; used to put unmatched
	// video/audio streams into the misc video/audio buckets.
	ContentType string
}

// ParseHTTPRequest parses the head of an HTTP/1.x request (request line
// plus headers, terminated by a blank line or end of input).
func ParseHTTPRequest(b []byte) (*HTTPRequest, error) {
	// Request line: METHOD SP PATH SP HTTP/1.x
	lineEnd := bytes.IndexByte(b, '\n')
	if lineEnd < 0 {
		lineEnd = len(b)
	}
	line := strings.TrimRight(string(b[:lineEnd]), "\r")
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, ErrNotHTTP
	}
	switch parts[0] {
	case "GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS", "CONNECT", "PATCH":
	default:
		return nil, ErrNotHTTP
	}
	req := &HTTPRequest{Method: parts[0], Path: parts[1]}
	rest := b
	if lineEnd < len(b) {
		rest = b[lineEnd+1:]
	} else {
		rest = nil
	}
	for len(rest) > 0 {
		end := bytes.IndexByte(rest, '\n')
		var hline string
		if end < 0 {
			hline = string(rest)
			rest = nil
		} else {
			hline = string(rest[:end])
			rest = rest[end+1:]
		}
		hline = strings.TrimRight(hline, "\r")
		if hline == "" {
			break
		}
		colon := strings.IndexByte(hline, ':')
		if colon < 0 {
			continue
		}
		name := strings.ToLower(strings.TrimSpace(hline[:colon]))
		value := strings.TrimSpace(hline[colon+1:])
		switch name {
		case "host":
			req.Host = stripPort(value)
		case "user-agent":
			req.UserAgent = value
		case "x-observed-content-type":
			// The simulated AP annotates flows with the response
			// content type it observed; carried as a header here.
			req.ContentType = value
		}
	}
	return req, nil
}

func stripPort(host string) string {
	if i := strings.IndexByte(host, ':'); i >= 0 {
		return host[:i]
	}
	return host
}

// BuildHTTPRequest synthesizes an HTTP request head with the given
// fields, as the traffic generator emits.
func BuildHTTPRequest(method, host, path, userAgent, contentType string) []byte {
	var b bytes.Buffer
	if method == "" {
		method = "GET"
	}
	if path == "" {
		path = "/"
	}
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	fmt.Fprintf(&b, "Host: %s\r\n", host)
	if userAgent != "" {
		fmt.Fprintf(&b, "User-Agent: %s\r\n", userAgent)
	}
	if contentType != "" {
		fmt.Fprintf(&b, "X-Observed-Content-Type: %s\r\n", contentType)
	}
	b.WriteString("Accept: */*\r\n\r\n")
	return b.Bytes()
}

// TLS record/handshake constants for the ClientHello parser.
const (
	tlsRecordHandshake = 22
	tlsHandshakeHello  = 1
	tlsExtensionSNI    = 0
	tlsSNIHostname     = 0
)

// ParseClientHelloSNI extracts the server_name extension from a TLS
// ClientHello record, exactly as the AP slow path inspects SSL
// handshakes. It returns ErrNotTLS for non-TLS input and an empty string
// for a ClientHello without SNI.
func ParseClientHelloSNI(b []byte) (string, error) {
	// TLS record header: type(1) version(2) length(2).
	if len(b) < 5 || b[0] != tlsRecordHandshake {
		return "", ErrNotTLS
	}
	recLen := int(binary.BigEndian.Uint16(b[3:5]))
	if len(b) < 5+recLen {
		return "", ErrShortMessage
	}
	hs := b[5 : 5+recLen]
	// Handshake header: type(1) length(3).
	if len(hs) < 4 || hs[0] != tlsHandshakeHello {
		return "", ErrNotTLS
	}
	hsLen := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	if len(hs) < 4+hsLen {
		return "", ErrShortMessage
	}
	p := hs[4 : 4+hsLen]
	// client_version(2) random(32).
	if len(p) < 34 {
		return "", ErrShortMessage
	}
	p = p[34:]
	// session_id.
	if len(p) < 1 {
		return "", ErrShortMessage
	}
	sidLen := int(p[0])
	if len(p) < 1+sidLen {
		return "", ErrShortMessage
	}
	p = p[1+sidLen:]
	// cipher_suites.
	if len(p) < 2 {
		return "", ErrShortMessage
	}
	csLen := int(binary.BigEndian.Uint16(p))
	if len(p) < 2+csLen {
		return "", ErrShortMessage
	}
	p = p[2+csLen:]
	// compression_methods.
	if len(p) < 1 {
		return "", ErrShortMessage
	}
	cmLen := int(p[0])
	if len(p) < 1+cmLen {
		return "", ErrShortMessage
	}
	p = p[1+cmLen:]
	if len(p) < 2 {
		return "", nil // no extensions: legal, no SNI
	}
	extLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < extLen {
		return "", ErrShortMessage
	}
	p = p[:extLen]
	for len(p) >= 4 {
		extType := binary.BigEndian.Uint16(p)
		l := int(binary.BigEndian.Uint16(p[2:]))
		if len(p) < 4+l {
			return "", ErrShortMessage
		}
		body := p[4 : 4+l]
		p = p[4+l:]
		if extType != tlsExtensionSNI {
			continue
		}
		// server_name_list: length(2) then entries of
		// type(1) length(2) name.
		if len(body) < 2 {
			return "", ErrShortMessage
		}
		listLen := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if len(body) < listLen {
			return "", ErrShortMessage
		}
		for len(body) >= 3 {
			nameType := body[0]
			nameLen := int(binary.BigEndian.Uint16(body[1:]))
			if len(body) < 3+nameLen {
				return "", ErrShortMessage
			}
			if nameType == tlsSNIHostname {
				return string(body[3 : 3+nameLen]), nil
			}
			body = body[3+nameLen:]
		}
	}
	return "", nil
}

// BuildClientHello synthesizes a minimal TLS 1.2 ClientHello carrying the
// given SNI, byte-compatible with ParseClientHelloSNI and shaped like
// what a real client emits.
func BuildClientHello(sni string) []byte {
	var ext []byte
	if sni != "" {
		name := []byte(sni)
		entry := make([]byte, 3+len(name))
		entry[0] = tlsSNIHostname
		binary.BigEndian.PutUint16(entry[1:], uint16(len(name)))
		copy(entry[3:], name)
		list := make([]byte, 2+len(entry))
		binary.BigEndian.PutUint16(list, uint16(len(entry)))
		copy(list[2:], entry)
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint16(hdr, tlsExtensionSNI)
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(list)))
		ext = append(hdr, list...)
	}
	body := make([]byte, 0, 64+len(ext))
	body = append(body, 3, 3) // TLS 1.2
	var random [32]byte
	body = append(body, random[:]...)
	body = append(body, 0)    // empty session id
	body = append(body, 0, 4) // two cipher suites
	body = append(body, 0x13, 0x01, 0x00, 0x2f)
	body = append(body, 1, 0) // one compression method: null
	extBlock := make([]byte, 2+len(ext))
	binary.BigEndian.PutUint16(extBlock, uint16(len(ext)))
	copy(extBlock[2:], ext)
	body = append(body, extBlock...)

	hs := make([]byte, 4+len(body))
	hs[0] = tlsHandshakeHello
	hs[1] = byte(len(body) >> 16)
	hs[2] = byte(len(body) >> 8)
	hs[3] = byte(len(body))
	copy(hs[4:], body)

	rec := make([]byte, 5+len(hs))
	rec[0] = tlsRecordHandshake
	rec[1], rec[2] = 3, 1
	binary.BigEndian.PutUint16(rec[3:], uint16(len(hs)))
	copy(rec[5:], hs)
	return rec
}

// ParseDNSQuery extracts the first question name from a DNS query
// message, as the slow path inspects the initial lookup of each flow.
func ParseDNSQuery(b []byte) (string, error) {
	// Header: id(2) flags(2) qdcount(2) an(2) ns(2) ar(2) = 12 bytes.
	if len(b) < 12 {
		return "", ErrNotDNS
	}
	if b[2]&0x80 != 0 {
		return "", ErrNotDNS // response, not query
	}
	qd := binary.BigEndian.Uint16(b[4:6])
	if qd == 0 {
		return "", ErrNotDNS
	}
	p := b[12:]
	var labels []string
	for {
		if len(p) < 1 {
			return "", ErrShortMessage
		}
		l := int(p[0])
		if l == 0 {
			break
		}
		if l >= 0xc0 {
			return "", ErrNotDNS // compression pointers invalid in query names
		}
		if len(p) < 1+l {
			return "", ErrShortMessage
		}
		labels = append(labels, string(p[1:1+l]))
		p = p[1+l:]
	}
	if len(labels) == 0 {
		return "", ErrNotDNS
	}
	return strings.Join(labels, "."), nil
}

// BuildDNSQuery synthesizes a DNS A-record query for the given name.
func BuildDNSQuery(id uint16, name string) []byte {
	b := make([]byte, 12, 12+len(name)+6)
	binary.BigEndian.PutUint16(b[0:], id)
	b[2] = 0x01 // RD
	binary.BigEndian.PutUint16(b[4:], 1)
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	b = append(b, 0)    // root label
	b = append(b, 0, 1) // QTYPE A
	b = append(b, 0, 1) // QCLASS IN
	return b
}
