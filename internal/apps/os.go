package apps

import (
	"bytes"
	"strings"
)

// OS is the client operating system taxonomy of Table 3.
type OS uint8

const (
	OSUnknown OS = iota
	OSWindows
	OSiOS
	OSMacOSX
	OSAndroid
	OSChromeOS
	OSPlayStation
	OSLinux
	OSBlackBerry
	OSWindowsMobile
	OSOther
	numOSes
)

// String returns the paper's name for the operating system.
func (o OS) String() string {
	switch o {
	case OSWindows:
		return "Windows"
	case OSiOS:
		return "Apple iOS"
	case OSMacOSX:
		return "Mac OS X"
	case OSAndroid:
		return "Android"
	case OSChromeOS:
		return "Chrome OS"
	case OSPlayStation:
		return "Sony Playstation OS"
	case OSLinux:
		return "Linux"
	case OSBlackBerry:
		return "RIM BlackBerry"
	case OSWindowsMobile:
		return "Mobile Windows OSes"
	case OSOther:
		return "Other"
	default:
		return "Unknown"
	}
}

// AllOSes returns every OS in Table 3 display order.
func AllOSes() []OS {
	return []OS{
		OSWindows, OSiOS, OSMacOSX, OSAndroid, OSUnknown, OSChromeOS,
		OSOther, OSPlayStation, OSLinux, OSBlackBerry, OSWindowsMobile,
	}
}

// IsMobile reports whether the OS is a handheld platform — used for the
// paper's mobile-versus-desktop usage comparisons.
func (o OS) IsMobile() bool {
	switch o {
	case OSiOS, OSAndroid, OSBlackBerry, OSWindowsMobile:
		return true
	}
	return false
}

// DHCP fingerprints: the option-55 parameter request lists that identify
// client OS families, as in the device-driver fingerprinting literature
// the paper cites. Keys are the raw option lists.
var dhcpFingerprints = []struct {
	params []byte
	os     OS
}{
	{[]byte{1, 15, 3, 6, 44, 46, 47, 31, 33, 121, 249, 43}, OSWindows},           // Win7/8
	{[]byte{1, 3, 6, 15, 31, 33, 43, 44, 46, 47, 119, 121, 249, 252}, OSWindows}, // Win10 preview
	{[]byte{1, 121, 3, 6, 15, 119, 252, 95, 44, 46}, OSMacOSX},
	{[]byte{1, 121, 3, 6, 15, 119, 252}, OSiOS},
	{[]byte{1, 3, 6, 15, 26, 28, 51, 58, 59, 43}, OSAndroid},
	{[]byte{1, 3, 6, 12, 15, 26, 28, 51, 58, 59}, OSChromeOS},
	{[]byte{1, 3, 15, 6}, OSPlayStation},
	{[]byte{1, 28, 2, 3, 15, 6, 119, 12, 44, 47, 26, 121, 42}, OSLinux}, // dhclient
	{[]byte{1, 3, 6, 15, 12}, OSBlackBerry},
	{[]byte{1, 3, 6, 15, 31, 33, 43, 44, 46, 47, 121, 249, 252}, OSWindowsMobile},
}

// DHCPFingerprintFor returns the canonical option-55 list a client of
// the given OS sends, for traffic synthesis. The second result is false
// for OSes with no stable fingerprint (they emit a generic list).
func DHCPFingerprintFor(os OS) ([]byte, bool) {
	for _, fp := range dhcpFingerprints {
		if fp.os == os {
			out := make([]byte, len(fp.params))
			copy(out, fp.params)
			return out, true
		}
	}
	return []byte{1, 3, 6, 15}, false
}

// OSFromDHCP identifies an OS from a DHCP option-55 parameter list.
func OSFromDHCP(params []byte) OS {
	for _, fp := range dhcpFingerprints {
		if bytes.Equal(fp.params, params) {
			return fp.os
		}
	}
	return OSUnknown
}

// OSFromUserAgent identifies an OS from an HTTP User-Agent string.
func OSFromUserAgent(ua string) OS {
	switch {
	case strings.Contains(ua, "Windows Phone"), strings.Contains(ua, "IEMobile"):
		return OSWindowsMobile
	case strings.Contains(ua, "Windows NT"):
		return OSWindows
	case strings.Contains(ua, "iPhone"), strings.Contains(ua, "iPad"), strings.Contains(ua, "iPod"):
		return OSiOS
	case strings.Contains(ua, "Mac OS X"):
		return OSMacOSX
	case strings.Contains(ua, "CrOS"):
		return OSChromeOS
	case strings.Contains(ua, "Android"):
		return OSAndroid
	case strings.Contains(ua, "PlayStation"):
		return OSPlayStation
	case strings.Contains(ua, "BlackBerry"), strings.Contains(ua, "BB10"):
		return OSBlackBerry
	case strings.Contains(ua, "Linux"):
		return OSLinux
	case ua == "":
		return OSUnknown
	default:
		return OSOther
	}
}

// UserAgentFor returns a realistic User-Agent string for the OS, for
// traffic synthesis.
func UserAgentFor(os OS) string {
	switch os {
	case OSWindows:
		return "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/39.0.2171.95 Safari/537.36"
	case OSiOS:
		return "Mozilla/5.0 (iPhone; CPU iPhone OS 8_1_2 like Mac OS X) AppleWebKit/600.1.4 (KHTML, like Gecko) Version/8.0 Mobile/12B440 Safari/600.1.4"
	case OSMacOSX:
		return "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_1) AppleWebKit/600.2.5 (KHTML, like Gecko) Version/8.0.2 Safari/600.2.5"
	case OSAndroid:
		return "Mozilla/5.0 (Linux; Android 4.4.4; Nexus 5 Build/KTU84P) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/39.0.2171.93 Mobile Safari/537.36"
	case OSChromeOS:
		return "Mozilla/5.0 (X11; CrOS x86_64 6457.83.0) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/39.0.2171.96 Safari/537.36"
	case OSPlayStation:
		return "Mozilla/5.0 (PlayStation 4 2.03) AppleWebKit/537.73 (KHTML, like Gecko)"
	case OSLinux:
		return "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/39.0.2171.95 Safari/537.36"
	case OSBlackBerry:
		return "Mozilla/5.0 (BB10; Touch) AppleWebKit/537.35+ (KHTML, like Gecko) Version/10.2.1.3247 Mobile Safari/537.35+"
	case OSWindowsMobile:
		return "Mozilla/5.0 (Mobile; Windows Phone 8.1; Android 4.0; ARM; Trident/7.0; Touch; rv:11.0; IEMobile/11.0) like iPhone OS 7_0_3 Mac OS X"
	default:
		return ""
	}
}

// Vendor OUI prefixes the study's section 3.2 heuristics consult, and
// the section 4.1 mobile-hotspot detection uses.
var ouiVendors = map[[3]byte]string{
	{0x00, 0x18, 0x0a}: "Cisco Meraki",
	{0xac, 0xbc, 0x32}: "Apple",
	{0x28, 0xcf, 0xe9}: "Apple",
	{0x00, 0x17, 0xf2}: "Apple",
	{0x00, 0x50, 0xf2}: "Microsoft",
	{0x28, 0x18, 0x78}: "Microsoft",
	{0x94, 0x39, 0xe5}: "Hon Hai/Foxconn",
	{0x9c, 0xd9, 0x17}: "Motorola",
	{0xf8, 0xa9, 0xd0}: "LG",
	{0x38, 0xaa, 0x3c}: "Samsung",
	{0x00, 0x1d, 0xba}: "Sony",
	{0xf8, 0xd0, 0xac}: "Sony Interactive",
	{0x00, 0x24, 0x23}: "Novatel Wireless",
	{0x00, 0x15, 0xff}: "Novatel Wireless",
	{0x00, 0x26, 0x5e}: "Pantech",
	{0x00, 0x0e, 0x3b}: "Sierra Wireless",
	{0x00, 0x14, 0x3e}: "Sierra Wireless",
	{0x00, 0x21, 0xe8}: "RIM",
	{0x00, 0x1c, 0xbf}: "Intel",
	{0x00, 0x1e, 0x8c}: "ASUSTek",
	{0x00, 0x90, 0x4c}: "Epigram/Broadcom",
}

// hotspotVendors are the personal-hotspot makers the paper names in
// Section 4.1 (Novatel, Pantech, Sierra Wireless, etc.).
var hotspotVendors = map[string]bool{
	"Novatel Wireless": true,
	"Pantech":          true,
	"Sierra Wireless":  true,
}

// VendorFromOUI returns the vendor name for a MAC prefix, or "".
func VendorFromOUI(oui [3]byte) string { return ouiVendors[oui] }

// IsHotspotVendor reports whether the vendor is a known personal mobile
// hotspot maker.
func IsHotspotVendor(vendor string) bool { return hotspotVendors[vendor] }

// HotspotOUIs returns the known hotspot OUI prefixes, for synthesis.
func HotspotOUIs() [][3]byte {
	var out [][3]byte
	for oui, v := range ouiVendors {
		if hotspotVendors[v] {
			out = append(out, oui)
		}
	}
	return out
}

// osFromVendor maps an OUI vendor to a likely OS family. Apple is
// ambiguous between iOS and Mac OS X, so it gives no vote.
func osFromVendor(vendor string) OS {
	switch vendor {
	case "Sony Interactive":
		return OSPlayStation
	case "RIM":
		return OSBlackBerry
	case "Samsung", "Motorola", "LG":
		return OSAndroid
	default:
		return OSUnknown
	}
}

// InferOS combines the three heuristics of Section 3.2 — MAC OUI prefix,
// DHCP fingerprint, and HTTP User-Agent inspection — into one OS verdict
// per client MAC. Conflicting strong signals (a device presenting
// multiple DHCP fingerprints, or user agents from two OS families)
// yield OSUnknown, matching the paper's description of the Unknown row.
func InferOS(oui [3]byte, dhcpParamLists [][]byte, userAgents []string) OS {
	votes := make(map[OS]int)

	var dhcpVotes []OS
	for _, params := range dhcpParamLists {
		if os := OSFromDHCP(params); os != OSUnknown {
			dhcpVotes = append(dhcpVotes, os)
		}
	}
	if conflicting(dhcpVotes) {
		// Dual-boot or VM host: multiple fingerprints from one MAC.
		return OSUnknown
	}
	if len(dhcpVotes) > 0 {
		votes[dhcpVotes[0]] += 2
	}

	var uaVotes []OS
	for _, ua := range userAgents {
		if os := OSFromUserAgent(ua); os != OSUnknown && os != OSOther {
			uaVotes = append(uaVotes, os)
		}
	}
	if conflicting(uaVotes) {
		return OSUnknown
	}
	if len(uaVotes) > 0 {
		votes[uaVotes[0]] += 2
	}

	if os := osFromVendor(VendorFromOUI(oui)); os != OSUnknown {
		votes[os]++
	}

	best, bestScore := OSUnknown, 0
	for os, score := range votes {
		if score > bestScore {
			best, bestScore = os, score
		}
	}
	if bestScore == 0 {
		return OSUnknown
	}
	// Strong disagreement between DHCP and UA.
	if len(dhcpVotes) > 0 && len(uaVotes) > 0 && dhcpVotes[0] != uaVotes[0] {
		return OSUnknown
	}
	return best
}

func conflicting(votes []OS) bool {
	for i := 1; i < len(votes); i++ {
		if votes[i] != votes[0] {
			return true
		}
	}
	return false
}
