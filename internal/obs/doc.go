// Package obs is the fleet observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket streaming
// histograms) plus a Timer/Span helper for pipeline stage timing. The
// paper's backend only worked at 20,667-network scale because it could
// watch itself — harvest lag, per-AP poll health, and aggregation
// throughput were first-class queryable signals — and obs gives this
// reproduction the same property: the telemetry harvest path, the
// parallel usage-epoch worker pool, and the lock-striped backend store
// all publish into one Registry that merakid serves over its -debug
// HTTP listener (expvar-style JSON next to net/http/pprof) and its
// "metrics" query command.
//
// Two contracts shape the API. First, the hot path is allocation-free
// and nil-safe: every metric method is a no-op on a nil receiver, and a
// nil *Registry hands out nil metrics, so un-instrumented runs pay
// nothing — not even a time.Now call (StartSpan on a nil histogram
// skips the clock read). Second, metrics are observe-only: nothing in
// the simulation ever reads a metric back, so instrumented and
// un-instrumented runs produce bit-identical output (the determinism
// contract DESIGN.md §8 states and internal/core's obs-invariance test
// pins).
//
// Histogram buckets are fixed at construction. That keeps Observe down
// to one bounded scan plus three atomic adds — no resizing, no
// rebucketing locks — and means a snapshot reader can walk the counts
// without coordinating with writers.
package obs
