package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBuckets)
	r.RegisterFunc("f", func() int64 { return 7 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(10)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics accumulated state: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	sp := StartSpan(h)
	if d := sp.End(); d != 0 {
		t.Fatalf("inert span returned %v", d)
	}
	var tm *Timer
	tm.Start("s").End()
	tm.Record("s", time.Second)
	if s := tm.Summary(); s != "" {
		t.Fatalf("nil timer summary = %q", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("harvest.polls")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("harvest.polls") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("pool.devices")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 0, 1} // <=10: {1,10}; <=100: {11,100}; <=1000: none; +Inf: 5000
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 1+10+11+100+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 1000 { // +Inf bucket floors at the largest bound
		t.Fatalf("p100 = %d, want 1000", q)
	}
	if m := h.Mean(); m != float64(5122)/5 {
		t.Fatalf("mean = %v", m)
	}
}

func TestRegistrySnapshotSortedAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(9)
	r.RegisterFunc("c.func", func() int64 { return 42 })
	r.Histogram("d.hist_us", []int64{100}).Observe(50)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	want := []string{"a.gauge", "b.count", "c.func", "d.hist_us"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
	if snap[2].Value != 42 {
		t.Fatalf("func gauge read %d, want 42", snap[2].Value)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("store.ingests").Add(7)
	h := r.Histogram("store.save_us", []int64{100, 1000})
	h.Observe(40)
	h.Observe(400)

	var text bytes.Buffer
	r.WriteText(&text)
	out := text.String()
	if !strings.Contains(out, "store.ingests 7\n") {
		t.Fatalf("text output missing counter line:\n%s", out)
	}
	if !strings.Contains(out, "store.save_us count=2 sum=440 mean=220.0 p50=100 p99=1000") {
		t.Fatalf("text output missing histogram line:\n%s", out)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, js.String())
	}
	if decoded["store.ingests"].(float64) != 7 {
		t.Fatalf("json counter = %v", decoded["store.ingests"])
	}
	hist := decoded["store.save_us"].(map[string]any)
	if hist["count"].(float64) != 2 || hist["sum"].(float64) != 440 {
		t.Fatalf("json histogram = %v", hist)
	}
}

func TestTimerSummary(t *testing.T) {
	tm := NewTimer()
	tm.Record("build-fleets", 1500*time.Millisecond)
	tm.Record("usage-epoch", time.Second)
	tm.Record("usage-epoch", 3*time.Second)
	sum := tm.Summary()
	lines := strings.Split(strings.TrimRight(sum, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary has %d lines:\n%s", len(lines), sum)
	}
	// Insertion order, not alphabetical.
	if !strings.HasPrefix(strings.TrimSpace(lines[1]), "build-fleets") {
		t.Fatalf("first stage line %q", lines[1])
	}
	if !strings.Contains(lines[2], "usage-epoch") || !strings.Contains(lines[2], "4s") ||
		!strings.Contains(lines[2], "2") {
		t.Fatalf("usage-epoch line %q (want total 4s, count 2)", lines[2])
	}
}

func TestSpanRecordsIntoHistogramAndTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epoch.net_sim_us", DurationBuckets)
	sp := StartSpan(h)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span elapsed %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	tm := NewTimer()
	tm.Start("merge").End()
	if !strings.Contains(tm.Summary(), "merge") {
		t.Fatal("timer missing merge stage")
	}
}

// TestConcurrentUse exercises the registry and metrics from many
// goroutines; run under -race this pins the lock-free hot path.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.count")
			h := r.Histogram("shared.hist", []int64{10, 100})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 150))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
