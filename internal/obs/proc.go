package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RegisterProcessMetrics registers the standard fleet-dashboard
// process gauges on r as func gauges, read at snapshot time:
//
//	proc.uptime_s          seconds since start
//	proc.goroutines        runtime.NumGoroutine
//	proc.heap_inuse_bytes  bytes in in-use heap spans
//	proc.gc_pause_p99_us   p99 of the last 256 GC stop-the-world pauses
//
// The two MemStats-backed gauges share one cached runtime.ReadMemStats
// snapshot refreshed at most once per second, so a scrape costs one
// stop-the-world stats read, not one per gauge.
func RegisterProcessMetrics(r *Registry, start time.Time) {
	if r == nil {
		return
	}
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	memStats := func() *runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(last) >= time.Second {
			runtime.ReadMemStats(&ms)
			last = now
		}
		return &ms
	}
	r.RegisterFunc("proc.uptime_s", func() int64 {
		return int64(time.Since(start).Seconds())
	})
	r.RegisterFunc("proc.goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.RegisterFunc("proc.heap_inuse_bytes", func() int64 {
		return int64(memStats().HeapInuse)
	})
	r.RegisterFunc("proc.gc_pause_p99_us", func() int64 {
		m := memStats()
		n := m.NumGC
		if n == 0 {
			return 0
		}
		if n > uint32(len(m.PauseNs)) {
			n = uint32(len(m.PauseNs))
		}
		pauses := make([]uint64, n)
		copy(pauses, m.PauseNs[:n])
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		// rank = ceil(0.99*n), as Histogram.Quantile computes it.
		idx := (int(n)*99+99)/100 - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= int(n) {
			idx = int(n) - 1
		}
		return int64(pauses[idx] / 1000)
	})
}
