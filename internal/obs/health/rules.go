package health

// DefaultRules is the stock rule set for a merakid daemon, covering
// the failure modes earlier PRs taught the pipeline to survive — now
// judged continuously instead of discovered in a post-mortem. forTicks
// and forOK set the hysteresis every spiky rule uses (the wal-degraded
// latch is a firm state, so it fires and resolves on a single tick);
// OPERATIONS.md's monitoring runbook documents what to do when each
// fires.
//
// The cumulative counters referenced here (harvest.errors and
// store.dupes are func gauges over cumulative totals) are judged by
// RateOfChange — new events across the lookback window — so the bounds
// are in events per window, independent of the absolute totals a
// long-lived daemon accumulates.
func DefaultRules(forTicks, forOK int) []Rule {
	return []Rule{
		{
			Name:     "harvest-degradation",
			Metric:   "harvest.errors",
			Kind:     RateOfChange,
			Severity: Warn,
			Bound:    5,
			Ticks:    3,
			For:      forTicks,
			ForOK:    forOK,
			Msg:      "more than 5 new harvest hard errors (MAC failures + corrupt frames + timeouts) in 3 ticks; inspect devices and fabric, see the flight-recorder dump",
		},
		{
			Name:     "wal-degraded",
			Metric:   "wal.degraded",
			Kind:     Threshold,
			Severity: Crit,
			Bound:    0.5,
			For:      1,
			ForOK:    1,
			Msg:      "durable store is read-only: WAL appends are failing and polls are not acked; free or replace the disk, then restart",
		},
		{
			Name:     "dedup-spike",
			Metric:   "store.dupes",
			Kind:     RateOfChange,
			Severity: Warn,
			Bound:    100,
			Ticks:    1,
			For:      forTicks,
			ForOK:    forOK,
			Msg:      "more than 100 new duplicate-report hits in one tick; a device is replaying or a retry storm is underway",
		},
		{
			Name:     "harvest-silence",
			Metric:   "harvest.reports",
			Kind:     Absence,
			Severity: Warn,
			For:      forTicks,
			ForOK:    forOK,
			Msg:      "shard received reports before and now receives none; check device tunnels and the shard map",
		},
	}
}
