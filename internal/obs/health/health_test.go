package health

import (
	"strings"
	"testing"
	"time"

	"wlanscale/internal/obs"
	"wlanscale/internal/obs/series"
)

func tick(n int) time.Time {
	return time.Unix(1_700_000_000, 0).Add(time.Duration(n) * time.Second)
}

// harness drives one rule against one gauge under a synthetic clock.
type harness struct {
	reg *obs.Registry
	g   *obs.Gauge
	rec *series.Recorder
	eng *Engine
	n   int
}

func newHarness(t *testing.T, rule Rule) *harness {
	t.Helper()
	reg := obs.NewRegistry()
	h := &harness{reg: reg, g: reg.Gauge(rule.Metric)}
	h.rec = series.NewRecorder(reg, series.Options{Cap: 32})
	h.eng = NewEngine(h.rec, []Rule{rule})
	return h
}

// step sets the gauge, samples one tick, evaluates, and returns the
// rule's state.
func (h *harness) step(v int64) State {
	h.g.Set(v)
	h.rec.Sample(tick(h.n))
	h.eng.Eval(tick(h.n))
	h.n++
	return h.eng.Alerts()[0].State
}

// TestThresholdHysteresis walks the full state machine: OK under the
// bound, Pending for For-1 breaches, Firing at For, still Firing
// through ForOK-1 clears, resolved at ForOK.
func TestThresholdHysteresis(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "hot", Metric: "temp", Kind: Threshold, Bound: 100, For: 3, ForOK: 2,
	})
	if got := h.step(50); got != OK {
		t.Fatalf("below bound: state %v, want ok", got)
	}
	if got := h.step(150); got != Pending {
		t.Fatalf("breach 1: state %v, want pending", got)
	}
	if got := h.step(150); got != Pending {
		t.Fatalf("breach 2: state %v, want pending", got)
	}
	if got := h.step(150); got != Firing {
		t.Fatalf("breach 3: state %v, want firing (For=3)", got)
	}
	a := h.eng.Alerts()[0]
	if a.Since != tick(3) {
		t.Errorf("Since = %v, want the firing tick %v", a.Since, tick(3))
	}
	if a.Fired != 1 {
		t.Errorf("Fired = %d, want 1", a.Fired)
	}
	if got := h.step(50); got != Firing {
		t.Fatalf("clear 1: state %v, want still firing (ForOK=2)", got)
	}
	if got := h.step(50); got != OK {
		t.Fatalf("clear 2: state %v, want resolved", got)
	}
	a = h.eng.Alerts()[0]
	if a.Resolved != 1 {
		t.Errorf("Resolved = %d, want 1", a.Resolved)
	}
	if !a.Since.IsZero() {
		t.Errorf("Since after resolve = %v, want zero", a.Since)
	}
}

// TestPendingResetOnClear: one noisy tick never fires — a clear tick
// while Pending drops straight back to OK and the breach count resets.
func TestPendingResetOnClear(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "hot", Metric: "temp", Kind: Threshold, Bound: 100, For: 2, ForOK: 1,
	})
	if got := h.step(150); got != Pending {
		t.Fatalf("breach 1: %v, want pending", got)
	}
	if got := h.step(50); got != OK {
		t.Fatalf("clear while pending: %v, want ok", got)
	}
	// The earlier breach must not count toward the next streak.
	if got := h.step(150); got != Pending {
		t.Fatalf("new breach 1: %v, want pending again", got)
	}
	if got := h.step(150); got != Firing {
		t.Fatalf("new breach 2: %v, want firing", got)
	}
}

// TestBelowThreshold: Below inverts the comparison.
func TestBelowThreshold(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "cold", Metric: "rate", Kind: Threshold, Bound: 10, Below: true, For: 1, ForOK: 1,
	})
	if got := h.step(50); got != OK {
		t.Fatalf("above bound: %v, want ok", got)
	}
	if got := h.step(5); got != Firing {
		t.Fatalf("below bound: %v, want firing (For=1)", got)
	}
}

// TestRateOfChange: the rule differences the last Ticks+1 points and
// does not evaluate until the window is full.
func TestRateOfChange(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "spike", Metric: "total", Kind: RateOfChange, Bound: 50, Ticks: 2, For: 1, ForOK: 1,
	})
	// Window not full: two points, need Ticks+1 = 3. A +60 jump across
	// an incomplete window must not fire.
	if got := h.step(0); got != OK {
		t.Fatalf("tick 0: %v", got)
	}
	if got := h.step(60); got != OK {
		t.Fatalf("short window: %v, want ok (needs Ticks+1 points)", got)
	}
	// Window full: [0, 60, 40] → delta 40, under bound.
	if got := h.step(40); got != OK {
		t.Fatalf("small delta: %v, want ok", got)
	}
	// [60, 40, 45] → delta -15, under bound.
	if got := h.step(45); got != OK {
		t.Fatalf("negative delta: %v, want ok", got)
	}
	// [40, 45, 145] → delta 105 > 50.
	if got := h.step(145); got != Firing {
		t.Fatalf("delta 105: %v, want firing", got)
	}
	if v := h.eng.Alerts()[0].Value; v != 105 {
		t.Errorf("alert value = %v, want the delta 105", v)
	}
}

// TestAbsenceNeedsActivity: an absence rule never fires on a metric
// that has been silent from birth — only after it was active and then
// went quiet.
func TestAbsenceNeedsActivity(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("reports")
	rec := series.NewRecorder(reg, series.Options{Cap: 32})
	eng := NewEngine(rec, []Rule{{
		Name: "silent", Metric: "reports", Kind: Absence, For: 1, ForOK: 1,
	}})
	step := func(n int) State {
		rec.Sample(tick(n))
		eng.Eval(tick(n))
		return eng.Alerts()[0].State
	}
	// Silence from birth: two idle ticks, no alert.
	if got := step(0); got != OK {
		t.Fatalf("boot tick: %v, want ok", got)
	}
	if got := step(1); got != OK {
		t.Fatalf("idle-from-birth: %v, want ok (never active)", got)
	}
	// Activity, then silence: now it fires.
	c.Add(10)
	if got := step(2); got != OK {
		t.Fatalf("active tick: %v, want ok", got)
	}
	if got := step(3); got != Firing {
		t.Fatalf("silent after active: %v, want firing", got)
	}
	// Activity resumes: resolves.
	c.Add(5)
	if got := step(4); got != OK {
		t.Fatalf("resumed: %v, want ok", got)
	}
}

// TestOnFireHookAndObs: the OnFire hook runs once per firing
// transition (not per firing tick), and EnableObs counts transitions on
// the registry.
func TestOnFireHookAndObs(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "hot", Metric: "temp", Kind: Threshold, Bound: 100, For: 1, ForOK: 1, Severity: Crit,
	})
	h.eng.EnableObs(h.reg)
	var fires []Alert
	h.eng.OnFire = func(a Alert) { fires = append(fires, a) }

	h.step(150) // fire
	h.step(150) // still firing: no second hook call
	h.step(50)  // resolve
	h.step(150) // fire again

	if len(fires) != 2 {
		t.Fatalf("OnFire ran %d times, want 2 (one per transition)", len(fires))
	}
	if fires[0].Rule.Name != "hot" || fires[0].State != Firing {
		t.Errorf("OnFire alert = %+v, want firing hot", fires[0])
	}

	byName := snapshotValues(h.reg)
	if byName["health.fired"] != 2 {
		t.Errorf("health.fired = %d, want 2", byName["health.fired"])
	}
	if byName["health.resolved"] != 1 {
		t.Errorf("health.resolved = %d, want 1", byName["health.resolved"])
	}
	if byName["health.evals"] != 4 {
		t.Errorf("health.evals = %d, want 4", byName["health.evals"])
	}
	if byName["health.firing"] != 1 {
		t.Errorf("health.firing = %d, want 1", byName["health.firing"])
	}
}

func snapshotValues(reg *obs.Registry) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range reg.Snapshot() {
		out[s.Name] = s.Value
	}
	return out
}

// TestNilEngine: a nil engine (health disabled) is a no-op everywhere.
func TestNilEngine(t *testing.T) {
	var e *Engine
	if NewEngine(nil, nil) != nil {
		t.Fatal("NewEngine(nil recorder) != nil")
	}
	e.Eval(tick(0))
	e.EnableObs(obs.NewRegistry())
	if e.Alerts() != nil || e.Firing() != nil {
		t.Error("nil engine returned alerts")
	}
	var b strings.Builder
	e.WriteText(&b)
	if !strings.HasPrefix(b.String(), "ERR") {
		t.Errorf("nil engine WriteText = %q, want ERR line", b.String())
	}
}

// TestWriteText renders one line per rule with name, severity, state.
func TestWriteText(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "hot", Metric: "temp", Kind: Threshold, Bound: 100,
		For: 1, ForOK: 1, Severity: Warn, Msg: "turn on the fans",
	})
	h.step(150)
	var b strings.Builder
	h.eng.WriteText(&b)
	line := strings.TrimSpace(b.String())
	for _, f := range []string{"hot", "[warn]", "firing", "metric=temp", "value=150.000", "since=", "turn on the fans"} {
		if !strings.Contains(line, f) {
			t.Errorf("alert line %q missing %q", line, f)
		}
	}
}

// TestDefaultRules sanity-checks the stock rule set: the four known
// failure modes are covered and reference metrics the daemon registers.
func TestDefaultRules(t *testing.T) {
	rules := DefaultRules(3, 2)
	byName := make(map[string]Rule)
	for _, r := range rules {
		byName[r.Name] = r
		if r.Msg == "" {
			t.Errorf("rule %q has no operator message", r.Name)
		}
	}
	if len(byName) != len(rules) {
		t.Fatal("duplicate rule names")
	}
	for name, wantMetric := range map[string]string{
		"harvest-degradation": "harvest.errors",
		"wal-degraded":        "wal.degraded",
		"dedup-spike":         "store.dupes",
		"harvest-silence":     "harvest.reports",
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("missing default rule %q", name)
			continue
		}
		if r.Metric != wantMetric {
			t.Errorf("rule %q watches %q, want %q", name, r.Metric, wantMetric)
		}
	}
	if r := byName["wal-degraded"]; r.Severity != Crit || r.For != 1 {
		t.Errorf("wal-degraded = severity %v For %d, want crit with For=1 (firm latch)", r.Severity, r.For)
	}
	if r := byName["harvest-silence"]; r.Kind != Absence {
		t.Errorf("harvest-silence kind = %v, want Absence", r.Kind)
	}
}
