// Package health judges a daemon's time-series history: a
// dependency-free rule engine over obs/series that turns metric points
// into firing/resolved alerts with hysteresis, so "shard 2 is
// unhealthy" is a state transition an operator (and the flight
// recorder) sees before the digest diverges (DESIGN.md §12).
//
// Three rule kinds cover the known failure modes: Threshold compares
// the latest point's value (a per-second rate for counters, the raw
// reading for gauges) against a bound; RateOfChange compares the value
// delta across the last Ticks points; Absence fires when a metric that
// was active has recorded no activity for the evaluation tick. Every
// rule carries hysteresis — the condition must hold For consecutive
// evaluations to fire and stay clear ForOK consecutive evaluations to
// resolve — so one noisy tick neither pages nor flaps. Transitions
// increment health.* metrics on the same registry the series recorder
// samples, and an OnFire hook lets merakid dump the flight recorder at
// the moment a rule first fires.
package health

import (
	"fmt"
	"io"
	"sync"
	"time"

	"wlanscale/internal/obs"
	"wlanscale/internal/obs/series"
)

// Severity ranks an alert.
type Severity uint8

const (
	Info Severity = iota
	Warn
	Crit
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Crit:
		return "crit"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// RuleKind selects a rule's evaluation.
type RuleKind uint8

const (
	// Threshold compares the latest point's value against Bound.
	Threshold RuleKind = iota
	// RateOfChange compares the difference between the latest point's
	// value and the value Ticks points earlier against Bound.
	RateOfChange
	// Absence breaches when the metric was ever active but the latest
	// point shows no activity: a zero rate for counters and histograms,
	// a zero reading for gauges. A metric that never reported at all
	// does not breach — silence from birth is "not started", not "went
	// silent".
	Absence
)

// Rule is one health judgment over one metric's series.
type Rule struct {
	// Name identifies the rule in alerts, status lines, and metrics.
	Name string
	// Metric is the series metric the rule reads.
	Metric string
	// Kind selects the evaluation; see the RuleKind constants.
	Kind RuleKind
	// Severity ranks the alert when firing.
	Severity Severity
	// Bound is the comparison bound for Threshold and RateOfChange.
	Bound float64
	// Below inverts the comparison: breach when value < Bound instead
	// of value > Bound. Ignored by Absence.
	Below bool
	// Ticks is the RateOfChange lookback, in points; zero means 1.
	Ticks int
	// For is how many consecutive breaching evaluations arm the rule
	// before it fires; zero means 1 (fire on first breach).
	For int
	// ForOK is how many consecutive clear evaluations resolve a firing
	// rule; zero means 1.
	ForOK int
	// Msg is the operator-facing description rendered with the alert.
	Msg string
}

func (r Rule) forTicks() int {
	if r.For <= 0 {
		return 1
	}
	return r.For
}

func (r Rule) forOKTicks() int {
	if r.ForOK <= 0 {
		return 1
	}
	return r.ForOK
}

// State is a rule's position in the firing state machine.
type State uint8

const (
	OK State = iota
	// Pending rules have breached but not yet for For evaluations.
	Pending
	// Firing rules have breached For consecutive evaluations and not
	// yet resolved.
	Firing
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Firing:
		return "firing"
	case Pending:
		return "pending"
	default:
		return "ok"
	}
}

// Alert is one rule's current status.
type Alert struct {
	Rule     Rule
	State    State
	// Value is the rule's reading at the last evaluation (rate, gauge
	// value, or delta, by kind).
	Value float64
	// Since is when the rule entered Firing (zero unless firing).
	Since time.Time
	// Fired and Resolved count lifetime transitions.
	Fired, Resolved int64
}

// String renders the alert as the one-line form the "alerts" query
// prints.
func (a Alert) String() string {
	s := fmt.Sprintf("%s [%s] %s metric=%s value=%.3f", a.Rule.Name, a.Rule.Severity, a.State, a.Rule.Metric, a.Value)
	if a.State == Firing {
		s += fmt.Sprintf(" since=%s", a.Since.UTC().Format(time.RFC3339))
	}
	if a.Rule.Msg != "" {
		s += " — " + a.Rule.Msg
	}
	return s
}

// ruleState is the engine's per-rule bookkeeping.
type ruleState struct {
	breach   int // consecutive breaching evaluations
	clear    int // consecutive clear evaluations while firing
	state    State
	since    time.Time
	value    float64
	fired    int64
	resolved int64
}

// Engine evaluates rules against one series recorder. Eval is handed
// the tick time like series.Recorder.Sample — no clock in the
// evaluation path — so hysteresis tests run on a synthetic clock.
type Engine struct {
	rec   *series.Recorder
	rules []Rule

	mu     sync.Mutex
	states []ruleState

	// OnFire, when set, runs (outside the engine lock) for each rule
	// transitioning into Firing. merakid points this at the flight
	// recorder trigger.
	OnFire func(Alert)

	evals    *obs.Counter
	fired    *obs.Counter
	resolved *obs.Counter
}

// NewEngine creates an engine over rec with the given rules. A nil
// recorder yields a nil (no-op) engine.
func NewEngine(rec *series.Recorder, rules []Rule) *Engine {
	if rec == nil {
		return nil
	}
	return &Engine{rec: rec, rules: rules, states: make([]ruleState, len(rules))}
}

// EnableObs registers the engine's transition metrics on reg:
// "health.evals", "health.fired", "health.resolved" counters and a
// "health.firing" func gauge of currently firing rules. Observe-only,
// like everything in obs.
func (e *Engine) EnableObs(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.evals = reg.Counter("health.evals")
	e.fired = reg.Counter("health.fired")
	e.resolved = reg.Counter("health.resolved")
	reg.RegisterFunc("health.firing", func() int64 {
		return int64(len(e.Firing()))
	})
}

// breach evaluates one rule's condition against the recorder,
// returning whether it breached and the reading it judged.
func (e *Engine) breach(r Rule) (bool, float64) {
	switch r.Kind {
	case RateOfChange:
		look := r.Ticks
		if look <= 0 {
			look = 1
		}
		pts := e.rec.Last(r.Metric, look+1)
		if len(pts) < look+1 {
			return false, 0
		}
		delta := pts[len(pts)-1].V - pts[0].V
		if r.Below {
			return delta < r.Bound, delta
		}
		return delta > r.Bound, delta
	case Absence:
		pts := e.rec.Last(r.Metric, 1)
		if len(pts) == 0 || !e.rec.EverActive(r.Metric) {
			return false, 0
		}
		kind, _ := e.rec.Kind(r.Metric)
		v := pts[0].V
		if kind == obs.KindHistogram {
			return pts[0].Count == 0, v
		}
		return v == 0, v
	default: // Threshold
		pts := e.rec.Last(r.Metric, 1)
		if len(pts) == 0 {
			return false, 0
		}
		v := pts[0].V
		if r.Below {
			return v < r.Bound, v
		}
		return v > r.Bound, v
	}
}

// Eval runs one evaluation pass at time now over every rule, advancing
// the firing state machines. merakid calls it right after each series
// sample tick.
func (e *Engine) Eval(now time.Time) {
	if e == nil {
		return
	}
	e.evals.Inc()
	var fired []Alert
	e.mu.Lock()
	for i, r := range e.rules {
		st := &e.states[i]
		breached, v := e.breach(r)
		st.value = v
		if breached {
			st.clear = 0
			st.breach++
			switch st.state {
			case OK:
				st.state = Pending
				if st.breach >= r.forTicks() {
					st.state = Firing
					st.since = now
					st.fired++
					e.fired.Inc()
					fired = append(fired, e.alertLocked(i))
				}
			case Pending:
				if st.breach >= r.forTicks() {
					st.state = Firing
					st.since = now
					st.fired++
					e.fired.Inc()
					fired = append(fired, e.alertLocked(i))
				}
			}
			continue
		}
		st.breach = 0
		switch st.state {
		case Pending:
			st.state = OK
		case Firing:
			st.clear++
			if st.clear >= r.forOKTicks() {
				st.state = OK
				st.since = time.Time{}
				st.clear = 0
				st.resolved++
				e.resolved.Inc()
			}
		}
	}
	e.mu.Unlock()
	if e.OnFire != nil {
		for _, a := range fired {
			e.OnFire(a)
		}
	}
}

// alertLocked builds rule i's Alert; e.mu must be held.
func (e *Engine) alertLocked(i int) Alert {
	st := e.states[i]
	return Alert{
		Rule:     e.rules[i],
		State:    st.state,
		Value:    st.value,
		Since:    st.since,
		Fired:    st.fired,
		Resolved: st.resolved,
	}
}

// Alerts returns every rule's current status, in rule order.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.rules))
	for i := range e.rules {
		out[i] = e.alertLocked(i)
	}
	return out
}

// Firing returns only the currently firing alerts, in rule order.
func (e *Engine) Firing() []Alert {
	var out []Alert
	for _, a := range e.Alerts() {
		if a.State == Firing {
			out = append(out, a)
		}
	}
	return out
}

// WriteText renders every rule's status one line per rule — the
// payload of the merakid "alerts" query.
func (e *Engine) WriteText(w io.Writer) {
	if e == nil {
		fmt.Fprintln(w, "ERR health engine disabled")
		return
	}
	for _, a := range e.Alerts() {
		fmt.Fprintln(w, a.String())
	}
}
