package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Get-or-create accessors
// (Counter, Gauge, Histogram) hand out the live metric for a name, so
// independently instrumented subsystems sharing a registry share
// counters by naming them alike. A nil *Registry is the no-op registry:
// every accessor returns nil, and nil metrics ignore all writes — the
// un-instrumented configuration costs nothing on the hot path.
//
// Metric names are dotted lowercase paths, "subsystem.metric" with the
// value's unit suffixed where it is not a plain count
// ("store.save_us"). DESIGN.md §8 lists the scheme and every name the
// pipeline emits.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram | funcGauge
}

// funcGauge reads an external value at snapshot time — how existing
// counter blocks (telemetry.HarvestHealth, the store's stripe counts)
// fold into the registry without rewriting their internals.
type funcGauge func() int64

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric under name, creating it with mk on first
// use. Reusing a name for a different metric kind is a programming
// error and panics.
func lookup[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	return t
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use. Bounds are fixed at
// construction: a later call with different bounds returns the
// existing histogram unchanged. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Histogram { return NewHistogram(bounds) })
}

// RegisterFunc registers a gauge whose value is read by calling fn at
// snapshot time. fn must be safe for concurrent use. Re-registering a
// name replaces the previous function. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if _, isFunc := m.(funcGauge); !isFunc {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
	}
	r.metrics[name] = funcGauge(fn)
}

// Indexed builds the conventional per-index metric name sharded
// subsystems register: "<prefix>.<NN>.<suffix>", as in
// "store.stripe.03.ingests" or "cluster.shard.00.errors". Zero-padding
// to two digits keeps the sorted WriteText/WriteJSON output grouped by
// index; indexes past 99 widen naturally and sort after the padded
// block, which is acceptable for the load-skew scan these names serve.
func Indexed(prefix string, i int, suffix string) string {
	return fmt.Sprintf("%s.%02d.%s", prefix, i, suffix)
}

// Kind classifies a sample's metric type. Func gauges report as
// KindGauge: to a consumer they are instantaneous readings, however the
// value is produced. The kind drives the "# TYPE" metadata lines in
// WriteProm and the per-kind sampling rules of obs/series (counters
// difference into rates, gauges sample raw, histograms summarize per
// tick).
type Kind uint8

const (
	KindGauge Kind = iota
	KindCounter
	KindHistogram
)

// String returns the Prometheus type name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Sample is one metric in a registry snapshot.
type Sample struct {
	Name string
	Kind Kind
	// Value holds counter, gauge, and func-gauge readings; Hist is set
	// instead for histograms.
	Value int64
	Hist  *HistogramSnapshot
}

// Snapshot reads every metric, sorted by name. Func gauges run outside
// the registry lock, so a func gauge may itself use the registry.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	metrics := make(map[string]any, len(r.metrics))
	for n, m := range r.metrics {
		names = append(names, n)
		metrics[n] = m
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	for _, n := range names {
		s := Sample{Name: n}
		switch m := metrics[n].(type) {
		case *Counter:
			s.Kind = KindCounter
			s.Value = m.Value()
		case *Gauge:
			s.Value = m.Value()
		case funcGauge:
			s.Value = m()
		case *Histogram:
			s.Kind = KindHistogram
			hs := m.Snapshot()
			s.Hist = &hs
		}
		out = append(out, s)
	}
	return out
}

// WriteText renders the snapshot one metric per line — "name value"
// for scalars, "name count=N sum=S mean=M p50=Q p99=Q" for histograms
// — which is what merakid's "metrics" query returns.
func (r *Registry) WriteText(w io.Writer) {
	for _, s := range r.Snapshot() {
		if s.Hist == nil {
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
			continue
		}
		h := s.Hist
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		fmt.Fprintf(w, "%s count=%d sum=%d mean=%.1f p50=%d p99=%d\n",
			s.Name, h.Count, h.Sum, mean, quantileOf(h, 0.5), quantileOf(h, 0.99))
	}
}

// quantileOf estimates a quantile from a snapshot the way
// Histogram.Quantile does from the live buckets.
func quantileOf(h *HistogramSnapshot, q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// jsonHistogram is the wire form WriteJSON uses for histograms.
type jsonHistogram struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// WriteJSON renders the snapshot as one expvar-style JSON object with
// sorted keys: scalars as numbers, histograms as objects. merakid's
// -debug listener serves this at /debug/vars.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	var buf []byte
	buf = append(buf, '{')
	for i, s := range samples {
		if i > 0 {
			buf = append(buf, ',')
		}
		key, _ := json.Marshal(s.Name)
		buf = append(buf, key...)
		buf = append(buf, ':')
		if s.Hist == nil {
			buf = append(buf, fmt.Sprintf("%d", s.Value)...)
			continue
		}
		h := s.Hist
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		obj, err := json.Marshal(jsonHistogram{
			Count: h.Count, Sum: h.Sum, Mean: mean,
			Bounds: h.Bounds, Buckets: h.Counts,
		})
		if err != nil {
			return err
		}
		buf = append(buf, obj...)
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}
