package obs

import (
	"fmt"
	"io"
	"strings"
)

// promName converts a dotted metric name to the Prometheus identifier
// charset: dots and dashes become underscores, any other character
// outside [a-zA-Z0-9_:] is dropped, and a leading digit is prefixed
// with an underscore. "epoch.worker.02.networks" →
// "epoch_worker_02_networks".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.' || c == '-':
			b.WriteByte('_')
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Every family is announced with a "# TYPE"
// metadata line carrying its registry kind (counter, gauge, or
// histogram — func gauges scrape as gauges); histograms become the
// conventional triplet of cumulative `_bucket{le="..."}` series (ending
// with le="+Inf"), `_sum`, and `_count` under the family's TYPE line.
// Metric names are sanitized with promName, so the dotted registry
// names scrape as underscore-separated families. merakid serves this
// at /debug/metrics on the -debug listener, and the cluster federation
// path relies on each TYPE line directly preceding its family's
// samples when it re-groups shard scrapes.
func (r *Registry) WriteProm(w io.Writer) {
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, s.Kind)
		if s.Hist == nil {
			fmt.Fprintf(w, "%s %d\n", name, s.Value)
			continue
		}
		h := s.Hist
		var cum int64
		for i, c := range h.Counts {
			cum += c
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, h.Bounds[i], cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}
