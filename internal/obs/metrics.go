package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are no-ops on a nil receiver, which is
// how a nil Registry turns instrumentation into free code.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Like Counter, nil receivers
// are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a streaming histogram with bucket upper bounds fixed at
// construction. Observe is allocation-free: one bounded linear scan
// over the bounds (they are few and cache-resident) plus three atomic
// adds. Because the bucket layout never changes, readers can snapshot
// the counts without any lock against writers; a snapshot taken while
// observations are in flight may be off by the in-flight observation,
// never torn across buckets of a resize.
type Histogram struct {
	bounds []int64        // ascending upper bounds (inclusive)
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. An empty bounds slice yields a single +Inf bucket (count and
// sum only).
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DurationBuckets is the default bucket layout for duration histograms,
// in microseconds: 50µs to 30s, roughly 1-2.5-5 per decade. Wide enough
// for a per-report ingest and a full-fleet epoch merge alike.
var DurationBuckets = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000,
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveDuration records a duration in microseconds, the unit
// DurationBuckets is laid out in.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <=
// 1): the bound of the bucket holding the q*count-th observation.
//
// Error bound: because observations inside a bucket are not tracked
// individually, the true quantile lies in (lower bound, returned
// bound], so the estimate never understates and overstates by at most
// one bucket width. With the DurationBuckets 1-2.5-5 decade layout the
// returned value is at most 2.5x the true quantile; the estimate is
// exact whenever every observation in the target bucket equals its
// bound. The +Inf bucket has no upper bound, so a quantile landing
// there reports the largest finite bound (or 0 with no finite buckets)
// — a floor rather than a ceiling, clearly marked by Snapshot
// consumers.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket.
	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// Snapshot copies the current buckets. The copy is consistent per
// bucket, not across buckets (writers never block for readers).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
