package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed interval in flight. End records the elapsed time
// into the histogram and/or timer stage the span was started against.
// The zero Span (from StartSpan(nil) or a nil Timer) is inert and never
// reads the clock, so un-instrumented code paths skip even time.Now.
type Span struct {
	h     *Histogram
	t     *Timer
	stage int
	start time.Time
}

// StartSpan begins timing an interval recorded into h on End.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span, records it, and returns the elapsed time (zero
// for an inert span). Durations land in histograms in microseconds,
// matching DurationBuckets.
func (s Span) End() time.Duration {
	if s.h == nil && s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	if s.t != nil {
		s.t.add(s.stage, d)
	}
	return d
}

// Timer accumulates wall-clock time per named pipeline stage, in
// insertion order, for an end-of-run summary (the -timings flag on
// merakisim and merakireport). A nil Timer is a no-op. Safe for
// concurrent use — parallel stages may overlap, so stage totals can
// legitimately sum to more than the run's wall time.
type Timer struct {
	mu     sync.Mutex
	names  []string
	idx    map[string]int
	totals []time.Duration
	counts []int64
}

// NewTimer creates an empty stage timer.
func NewTimer() *Timer {
	return &Timer{idx: make(map[string]int)}
}

// Start begins timing one execution of the named stage; call End on the
// returned span when the stage completes.
func (t *Timer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: t.stageIndex(stage), start: time.Now()}
}

// Record adds one completed execution of the named stage directly.
func (t *Timer) Record(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.add(t.stageIndex(stage), d)
}

func (t *Timer) stageIndex(stage string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.idx[stage]; ok {
		return i
	}
	i := len(t.names)
	t.idx[stage] = i
	t.names = append(t.names, stage)
	t.totals = append(t.totals, 0)
	t.counts = append(t.counts, 0)
	return i
}

func (t *Timer) add(i int, d time.Duration) {
	t.mu.Lock()
	t.totals[i] += d
	t.counts[i]++
	t.mu.Unlock()
}

// Summary renders an aligned stage table in insertion order:
//
//	stage             total     count   mean
//	build-fleets      1.204s        1   1.204s
//
// Empty timers (and nil) render as an empty string.
func (t *Timer) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	names := append([]string(nil), t.names...)
	totals := append([]time.Duration(nil), t.totals...)
	counts := append([]int64(nil), t.counts...)
	t.mu.Unlock()
	if len(names) == 0 {
		return ""
	}
	wName := len("stage")
	for _, n := range names {
		if len(n) > wName {
			wName = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %12s  %6s  %12s\n", wName, "stage", "total", "count", "mean")
	for i, n := range names {
		mean := time.Duration(0)
		if counts[i] > 0 {
			mean = totals[i] / time.Duration(counts[i])
		}
		fmt.Fprintf(&b, "%-*s  %12s  %6d  %12s\n",
			wName, n, totals[i].Round(time.Microsecond), counts[i], mean.Round(time.Microsecond))
	}
	return b.String()
}
