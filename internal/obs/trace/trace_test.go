package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestIDStringRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeef, 1<<64 - 1} {
		got, err := ParseID(id.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %q -> %v", id, id.String(), got)
		}
	}
	if _, err := ParseID("0xdeadbeef"); err != nil {
		t.Fatalf("ParseID with 0x prefix: %v", err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestIDStreamDeterministic(t *testing.T) {
	draw := func(sample float64, n int) []ID {
		tr := New(NewRecorder(16), 2026, sample)
		s := tr.IDs("net/7")
		out := make([]ID, n)
		for i := range out {
			out[i], _ = s.Next()
		}
		return out
	}
	a, b := draw(1.0, 32), draw(1.0, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
	// The ID assignment must not depend on the sampling rate: sampling
	// only changes which IDs record, never which IDs reports carry.
	c := draw(0.01, 32)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("draw %d depends on sample rate: %v vs %v", i, a[i], c[i])
		}
	}
	// Distinct labels get distinct streams.
	tr := New(nil, 2026, 1)
	other, _ := tr.IDs("net/8").Next()
	if other == a[0] {
		t.Fatal("distinct labels produced identical first draws")
	}
	for _, id := range a {
		if id == 0 {
			t.Fatal("stream yielded the reserved untraced ID")
		}
	}
}

func TestSampling(t *testing.T) {
	full := New(nil, 1, 1.0)
	none := New(nil, 1, 0.0)
	half := New(nil, 1, 0.5)
	if !full.Sampled(1) || !full.Sampled(1<<64-1) {
		t.Fatal("sample=1 must sample every nonzero ID")
	}
	if full.Sampled(0) {
		t.Fatal("untraced ID sampled")
	}
	if none.Sampled(1) || none.Sampled(1<<64-1) {
		t.Fatal("sample=0 sampled something")
	}
	if !half.Sampled(1) {
		t.Fatal("sample=0.5 must sample small IDs")
	}
	if half.Sampled(1<<64 - 1) {
		t.Fatal("sample=0.5 sampled the max ID")
	}
	var nilT *Tracer
	if nilT.Sampled(1) {
		t.Fatal("nil tracer sampled")
	}
	if s := nilT.IDs("x"); s != nil {
		t.Fatal("nil tracer returned a stream")
	}
	if id, ok := (*IDStream)(nil).Next(); id != 0 || ok {
		t.Fatal("nil stream drew a sampled ID")
	}
}

func TestSpanRecording(t *testing.T) {
	rec := NewRecorder(64)
	tr := New(rec, 42, 1.0)
	sp := tr.Start(7, StageDaemonRead)
	sp.SetSerial("Q2XX-1")
	sp.SetSeq(9)
	sp.SetRetries(2)
	sp.SetFault("corrupt")
	sp.SetErr(errors.New("boom"))
	sp.End()

	evs := rec.Trace(7)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Stage != "daemon.read" || ev.Span != 3 || ev.Parent != 2 {
		t.Fatalf("bad span identity: %+v", ev)
	}
	if ev.Serial != "Q2XX-1" || ev.Seq != 9 || ev.Retries != 2 || ev.Fault != "corrupt" || ev.Err != "boom" {
		t.Fatalf("annotations lost: %+v", ev)
	}
	if ev.StartUS == 0 {
		t.Fatal("start time not stamped")
	}

	// Inert spans: unsampled ID and nil tracer record nothing.
	cold := New(rec, 42, 0)
	sp = cold.Start(7, StageStoreIngest)
	sp.End()
	var nilT *Tracer
	sp = nilT.Start(7, StageStoreIngest)
	sp.SetSerial("x")
	sp.End()
	if got := rec.Total(); got != 1 {
		t.Fatalf("inert spans recorded: total=%d", got)
	}
}

func TestStageChain(t *testing.T) {
	stages := []Stage{StageAgentEnqueue, StageTunnelWrite, StageDaemonRead, StageStoreIngest, StageEpochMerge}
	for i, s := range stages {
		if s.SpanID() != uint32(i+1) {
			t.Fatalf("%v span id %d", s, s.SpanID())
		}
		want := uint32(i)
		if s.Parent() != want {
			t.Fatalf("%v parent %d, want %d", s, s.Parent(), want)
		}
		if StageByName(s.String()) != s {
			t.Fatalf("StageByName(%q) != %v", s.String(), s)
		}
	}
	if StageByName("nope") != 0 {
		t.Fatal("unknown stage name mapped")
	}
}

func TestRecorderWraparound(t *testing.T) {
	rec := NewRecorder(16) // exact power of two
	if rec.Cap() != 16 {
		t.Fatalf("cap %d", rec.Cap())
	}
	for i := 0; i < 40; i++ {
		rec.Record(Event{Trace: ID(i + 1), Span: 1})
	}
	evs := rec.Events()
	if len(evs) != 16 {
		t.Fatalf("buffered %d, want 16", len(evs))
	}
	// Oldest first, and only the newest 16 survive.
	for i, ev := range evs {
		if want := ID(40 - 16 + i + 1); ev.Trace != want {
			t.Fatalf("slot %d trace %v, want %v", i, ev.Trace, want)
		}
	}
	if rec.Total() != 40 {
		t.Fatalf("total %d", rec.Total())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(128)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Record(Event{Trace: ID(w + 1), Span: 1, Seq: uint64(i)})
			}
		}(w)
	}
	// Concurrent readers must never see torn events.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, ev := range rec.Events() {
				if ev.Trace == 0 || ev.Trace > writers {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if rec.Total() != writers*per {
		t.Fatalf("total %d, want %d", rec.Total(), writers*per)
	}
}

func TestDumpAndLoad(t *testing.T) {
	rec := NewRecorder(16)
	tr := New(rec, 7, 1.0)
	for _, st := range []Stage{StageAgentEnqueue, StageTunnelWrite, StageDaemonRead} {
		sp := tr.Start(0xabc, st)
		sp.End()
	}
	var buf bytes.Buffer
	if err := rec.DumpJSON(&buf, "test"); err != nil {
		t.Fatalf("dump: %v", err)
	}
	// The dump is valid JSON with the expected shape.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if raw["reason"] != "test" {
		t.Fatalf("reason %v", raw["reason"])
	}

	d, err := LoadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(d.Events) != 3 || d.Total != 3 || d.Dropped != 0 {
		t.Fatalf("loaded %+v", d)
	}
	// Replaying into a fresh recorder preserves the trace.
	rec2 := NewRecorder(16)
	rec2.Load(d)
	id, evs, ok := rec2.LastTrace()
	if !ok || id != 0xabc || len(evs) != 3 {
		t.Fatalf("replayed trace: ok=%v id=%v n=%d", ok, id, len(evs))
	}
	if evs[0].Stage != "agent.enqueue" || evs[2].Stage != "daemon.read" {
		t.Fatalf("span order lost: %+v", evs)
	}
}

func TestTraceDedupKeepsLatest(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record(Event{Trace: 5, Span: 1, Retries: 0})
	rec.Record(Event{Trace: 5, Span: 2})
	rec.Record(Event{Trace: 5, Span: 1, Retries: 3}) // re-delivery re-ships span 1
	evs := rec.Trace(5)
	if len(evs) != 2 {
		t.Fatalf("got %d spans, want 2", len(evs))
	}
	if evs[0].Span != 1 || evs[0].Retries != 3 {
		t.Fatalf("dedup kept stale span: %+v", evs[0])
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(Event{Trace: 1})
	if rec.Events() != nil || rec.Total() != 0 || rec.Cap() != 0 {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := rec.DumpJSON(&buf, "nil"); err != nil {
		t.Fatalf("nil dump: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil dump not JSON")
	}
	rec.Load(&Dump{Events: []Event{{Trace: 1}}})
	rec.RegisterMetrics(nil)
}

func TestTriggerRateLimit(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record(Event{Trace: 1, Span: 1})
	var buf bytes.Buffer
	tg := &Trigger{Rec: rec, W: &buf, MinInterval: time.Hour}
	if !tg.Fire("first") {
		t.Fatal("first fire suppressed")
	}
	if tg.Fire("second") {
		t.Fatal("rate limit did not hold")
	}
	tg2 := &Trigger{Rec: rec, W: &buf, MinInterval: time.Nanosecond}
	if !tg2.Fire("a") {
		t.Fatal("fire a")
	}
	time.Sleep(2 * time.Millisecond)
	if !tg2.Fire("b") {
		t.Fatal("fire b after interval")
	}
	// Nil pieces never panic.
	(&Trigger{}).Fire("x")
	(*Trigger)(nil).Fire("x")
}

func TestRecordEventDownsamples(t *testing.T) {
	rec := NewRecorder(16)
	tr := New(rec, 1, 0.5)
	tr.RecordEvent(Event{Trace: 1, Span: 1})         // tiny ID: sampled
	tr.RecordEvent(Event{Trace: 1<<64 - 1, Span: 1}) // huge ID: dropped
	tr.RecordEvent(Event{Trace: 0, Span: 1})         // untraced: dropped
	if rec.Total() != 1 {
		t.Fatalf("total %d, want 1", rec.Total())
	}
	var nilT *Tracer
	nilT.RecordEvent(Event{Trace: 1})
}
