package trace

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"wlanscale/internal/rng"
)

// ID identifies one traced report end to end. IDs are 64-bit values
// drawn from a seeded rng stream; zero is reserved for "untraced", so a
// report whose wire encoding lacks the trace field decodes to the
// untraced ID.
type ID uint64

// String renders the ID as 16 lowercase hex digits, the form the
// merakid "trace <id>" query accepts.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the hex form produced by String. A leading "0x" is
// tolerated.
func ParseID(s string) (ID, error) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q", s)
	}
	return ID(v), nil
}

// Stage is one tier of the harvest pipeline. Stages double as span IDs:
// a report traverses each stage at most once, so the span tree is the
// fixed chain agent.enqueue -> tunnel.write -> daemon.read ->
// store.ingest -> epoch.merge and the parent of stage s is stage s-1.
type Stage uint8

// The pipeline stages, in traversal order.
const (
	// StageAgentEnqueue covers building and queueing the report on the
	// device (BuildReport + Marshal + queue append).
	StageAgentEnqueue Stage = 1
	// StageTunnelWrite covers the report's time in the agent queue until
	// it is put on the wire in a report batch — the span that grows when
	// the backend is unreachable and the queue drains late.
	StageTunnelWrite Stage = 2
	// StageDaemonRead covers the backend poll round trip that delivered
	// the report (frame read + decode).
	StageDaemonRead Stage = 3
	// StageStoreIngest covers folding the report into the striped store.
	StageStoreIngest Stage = 4
	// StageEpochMerge covers folding the report's per-network partial
	// store into the epoch store (offline pipeline only).
	StageEpochMerge Stage = 5
)

var stageNames = [...]string{
	StageAgentEnqueue: "agent.enqueue",
	StageTunnelWrite:  "tunnel.write",
	StageDaemonRead:   "daemon.read",
	StageStoreIngest:  "store.ingest",
	StageEpochMerge:   "epoch.merge",
}

// String returns the dotted stage name ("agent.enqueue").
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return fmt.Sprintf("stage.%d", uint8(s))
}

// SpanID returns the stage's span ID within its trace.
func (s Stage) SpanID() uint32 { return uint32(s) }

// Parent returns the parent stage's span ID (0 for the root stage).
func (s Stage) Parent() uint32 {
	if s <= StageAgentEnqueue {
		return 0
	}
	return uint32(s) - 1
}

// StageByName maps a dotted stage name back to its Stage (0 if
// unknown), used when reloading flight-recorder dumps.
func StageByName(name string) Stage {
	for s, n := range stageNames {
		if n == name {
			return Stage(s)
		}
	}
	return 0
}

// Tracer hands out deterministic trace IDs and records span events into
// a flight recorder. A nil Tracer is the disabled configuration: every
// method is a no-op, inert spans never read the clock, and the hot path
// pays only a nil check.
type Tracer struct {
	rec  *Recorder
	seed uint64
	// threshold implements sampling as a pure function of the ID: an ID
	// is sampled iff 0 < id <= threshold. Every tier computes the same
	// answer for the same ID with no coordination.
	threshold uint64
}

// New creates a Tracer recording into rec, drawing IDs from streams
// rooted at seed, sampling the given fraction of reports (clamped to
// [0,1]; 1 samples everything).
func New(rec *Recorder, seed uint64, sample float64) *Tracer {
	t := &Tracer{rec: rec, seed: seed}
	switch {
	case sample >= 1:
		t.threshold = math.MaxUint64
	case sample <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(sample * float64(math.MaxUint64))
	}
	return t
}

// Recorder returns the tracer's flight recorder (nil on a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Sampled reports whether id is in the sampled fraction. The untraced
// ID (0) is never sampled.
func (t *Tracer) Sampled(id ID) bool {
	return t != nil && id != 0 && uint64(id) <= t.threshold
}

// IDs derives the deterministic ID stream for one entity (an agent
// serial, a network). The stream depends only on (seed, label) — never
// on scheduling or on other labels — so a fleet's trace IDs reproduce
// run over run, and the parallel epoch pipeline assigns identical IDs
// for every worker count.
func (t *Tracer) IDs(label string) *IDStream {
	if t == nil {
		return nil
	}
	return &IDStream{t: t, src: rng.New(t.seed).Split("trace").Split(label)}
}

// IDStream is one entity's private trace-ID sequence. Not safe for
// concurrent use; derive one per agent or per network. A nil stream
// yields only untraced IDs.
type IDStream struct {
	t   *Tracer
	src *rng.Source
}

// Next draws the next ID and reports whether it is sampled. Every call
// consumes exactly one draw whether or not the ID is sampled, so the
// assignment of IDs to reports is independent of the sampling rate.
func (s *IDStream) Next() (ID, bool) {
	if s == nil {
		return 0, false
	}
	v := s.src.Uint64()
	if v == 0 {
		// Zero means "untraced" on the wire; remap the one-in-2^64 draw
		// deterministically instead of consuming an extra one.
		v = 1
	}
	return ID(v), s.t.Sampled(ID(v))
}

// Span is one stage of one trace in flight. The zero Span (from an
// unsampled or nil Start) is inert: End records nothing and the clock
// is never read.
type Span struct {
	t     *Tracer
	ev    Event
	start time.Time
}

// Start opens a span for the given trace and stage. If the tracer is
// nil or the ID unsampled, the returned span is inert.
func (t *Tracer) Start(id ID, stage Stage) Span {
	if !t.Sampled(id) {
		return Span{}
	}
	now := time.Now()
	return Span{
		t: t,
		ev: Event{
			Trace:   id,
			Span:    stage.SpanID(),
			Parent:  stage.Parent(),
			Stage:   stage.String(),
			StartUS: now.UnixMicro(),
		},
		start: now,
	}
}

// SetSerial attaches the reporting device's serial.
func (s *Span) SetSerial(serial string) {
	if s.t != nil {
		s.ev.Serial = serial
	}
}

// SetSeq attaches the report's sequence number.
func (s *Span) SetSeq(seq uint64) {
	if s.t != nil {
		s.ev.Seq = seq
	}
}

// SetRetries records how many delivery attempts preceded this one.
func (s *Span) SetRetries(n int) {
	if s.t != nil {
		s.ev.Retries = n
	}
}

// SetFault attaches a fault-injection annotation (see internal/faultnet).
func (s *Span) SetFault(fault string) {
	if s.t != nil {
		s.ev.Fault = fault
	}
}

// SetErr records the error that ended the stage, if any.
func (s *Span) SetErr(err error) {
	if s.t != nil && err != nil {
		s.ev.Err = err.Error()
	}
}

// End closes the span and records it into the flight recorder.
func (s *Span) End() { s.EndEvent() }

// EndEvent closes the span, records it, and returns the recorded event
// — for callers that also ship the event elsewhere (the agent re-sends
// its spans with each report batch). Inert spans return the zero Event.
func (s *Span) EndEvent() Event {
	if s.t == nil {
		return Event{}
	}
	s.ev.DurUS = time.Since(s.start).Microseconds()
	s.t.rec.Record(s.ev)
	return s.ev
}

// RecordEvent records a pre-built event — how span events shipped over
// the tunnel from an agent enter the daemon's recorder. Unsampled and
// untraced events are dropped, so a daemon with a lower sampling rate
// than its agents down-samples consistently.
func (t *Tracer) RecordEvent(ev Event) {
	if !t.Sampled(ev.Trace) {
		return
	}
	t.rec.Record(ev)
}
