// Package trace is the per-report provenance layer on top of the
// internal/obs metrics registry. Where obs counters say how much the
// pipeline did, trace says which report went where and why it was slow:
// every sampled telemetry report carries a deterministic trace ID from
// the agent that built it through the tunnel wire format, the daemon's
// poll loop, the striped store, and the epoch merge, producing a
// parent/child span tree (agent.enqueue -> tunnel.write -> daemon.read
// -> store.ingest -> epoch.merge) with per-span duration, retry count,
// and fault-injection annotations.
//
// Trace IDs are drawn from the seeded rng stream (never wall-clock
// randomness), so a given seed always traces the same reports; the
// sampling decision is a pure function of the ID, so every tier agrees
// on what is sampled without coordination. Span events land in a
// bounded, lock-free flight recorder (a ring of the last N events) that
// can be dumped as JSON on demand, on anomaly triggers, or on SIGQUIT.
// Like everything in obs, tracing is observe-only: stdout and epoch
// digests are bit-identical with tracing on or off (pinned by
// TestRunUsageEpochObsInvariance), and the nil *Tracer / nil *Recorder
// are free no-ops that never read the clock.
package trace
