package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"wlanscale/internal/obs"
)

// Event is one recorded span: a (trace, stage) pair with its timing and
// annotations. Events are what the flight recorder stores and what a
// dump serializes.
type Event struct {
	// Index is the recorder-assigned global sequence number; it orders
	// events across goroutines in a dump.
	Index int64 `json:"i"`
	// Trace identifies the report; Span/Parent place this event in the
	// trace's span tree (span IDs are the Stage constants).
	Trace  ID     `json:"trace"`
	Span   uint32 `json:"span"`
	Parent uint32 `json:"parent"`
	// Stage is the dotted stage name ("agent.enqueue").
	Stage string `json:"stage"`
	// Serial and Seq identify the report within its device's stream.
	Serial string `json:"serial,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	// StartUS is the span's wall-clock start (Unix microseconds); DurUS
	// its duration in microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Retries counts delivery attempts that preceded this one.
	Retries int `json:"retries,omitempty"`
	// Fault carries the fault-injection annotation active on the
	// connection that carried the report (see internal/faultnet).
	Fault string `json:"fault,omitempty"`
	// Err is the error that ended the stage, if it failed.
	Err string `json:"err,omitempty"`
}

// MarshalJSON renders the ID as a 16-hex-digit string — the same form
// the merakid "trace <id>" query accepts.
func (id ID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON accepts the hex-string form (and, for robustness, a
// bare JSON number).
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		var v uint64
		if err2 := json.Unmarshal(b, &v); err2 != nil {
			return err
		}
		*id = ID(v)
		return nil
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// Recorder is the bounded in-memory flight recorder: a lock-free ring
// holding the last N span events. Writers pay one atomic add and one
// atomic pointer store; there is no lock for readers to block on, so
// recording from every harvest goroutine is safe and cheap. A nil
// Recorder ignores all writes and dumps empty.
//
// Consistency: a dump taken while writers are in flight may miss the
// very newest events (a writer that has claimed a slot but not yet
// stored into it leaves the slot's previous event visible), but never
// observes a torn event — slots hold immutable Event copies swapped in
// by pointer.
type Recorder struct {
	slots  []atomic.Pointer[Event]
	mask   uint64
	cursor atomic.Uint64 // total events ever recorded
}

// NewRecorder creates a recorder holding the last n events (rounded up
// to a power of two, minimum 16).
func NewRecorder(n int) *Recorder {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Event], size), mask: uint64(size - 1)}
}

// Cap returns the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many events were ever recorded, including ones the
// ring has since overwritten.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return int64(r.cursor.Load())
}

// Record appends one event, overwriting the oldest once the ring is
// full. Safe for concurrent use; no-op on nil.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	seq := r.cursor.Add(1) - 1
	ev.Index = int64(seq)
	r.slots[seq&r.mask].Store(&ev)
}

// Events returns the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Trace returns the buffered events of one trace, in span order (the
// pipeline's stage order), deduplicated: when a span was recorded more
// than once (a re-delivered batch re-ships its agent spans), the most
// recent recording wins.
func (r *Recorder) Trace(id ID) []Event {
	bySpan := make(map[uint32]Event)
	for _, ev := range r.Events() {
		if ev.Trace == id {
			bySpan[ev.Span] = ev // Events is oldest-first; later overwrites
		}
	}
	out := make([]Event, 0, len(bySpan))
	for _, ev := range bySpan {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Span < out[j].Span })
	return out
}

// LastTrace returns the trace of the most recently recorded event (the
// "trace last" query). ok is false when the recorder is empty.
func (r *Recorder) LastTrace() (id ID, events []Event, ok bool) {
	evs := r.Events()
	if len(evs) == 0 {
		return 0, nil, false
	}
	id = evs[len(evs)-1].Trace
	return id, r.Trace(id), true
}

// TraceIDs returns the distinct trace IDs currently buffered, most
// recent last.
func (r *Recorder) TraceIDs() []ID {
	seen := make(map[ID]bool)
	var out []ID
	for _, ev := range r.Events() {
		if !seen[ev.Trace] {
			seen[ev.Trace] = true
			out = append(out, ev.Trace)
		}
	}
	return out
}

// Dump is the JSON form of a flight-recorder dump.
type Dump struct {
	// Reason says what triggered the dump ("sigquit",
	// "crash-report ...", "end-of-run", ...).
	Reason string `json:"reason"`
	// AtUS is the dump's wall-clock time (Unix microseconds).
	AtUS int64 `json:"at_us"`
	// Total counts events ever recorded; Dropped is how many of those
	// the ring had already overwritten at dump time.
	Total   int64   `json:"events_total"`
	Dropped int64   `json:"events_dropped"`
	Events  []Event `json:"events"`
}

// DumpJSON writes the recorder contents as one JSON object. A nil
// recorder dumps an empty event list.
func (r *Recorder) DumpJSON(w io.Writer, reason string) error {
	events := r.Events()
	d := Dump{
		Reason: reason,
		AtUS:   time.Now().UnixMicro(),
		Total:  r.Total(),
		Events: events,
	}
	d.Dropped = d.Total - int64(len(events))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// LoadDump parses a dump previously written by DumpJSON.
func LoadDump(rd io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(rd).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: load dump: %w", err)
	}
	return &d, nil
}

// Load replays a dump's events into the recorder in their original
// order, so traces from an offline run become queryable in a daemon
// (merakid -trace-load).
func (r *Recorder) Load(d *Dump) {
	if r == nil || d == nil {
		return
	}
	events := append([]Event(nil), d.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Index < events[j].Index })
	for _, ev := range events {
		r.Record(ev)
	}
}

// RegisterMetrics folds the recorder's counters into an obs registry:
// "trace.recorded" (events ever), "trace.buffered" (currently held),
// and "trace.capacity".
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.RegisterFunc("trace.recorded", r.Total)
	reg.RegisterFunc("trace.buffered", func() int64 {
		t := r.Total()
		if c := int64(len(r.slots)); t > c {
			return c
		}
		return r.Total()
	})
	reg.RegisterFunc("trace.capacity", func() int64 { return int64(len(r.slots)) })
}

// Trigger rate-limits anomaly-driven dumps: Fire dumps the recorder to
// W at most once per MinInterval, so a burst of crash reports or a
// degrading harvest produces one readable dump, not a dump per report.
// Safe for concurrent use.
type Trigger struct {
	Rec *Recorder
	W   io.Writer
	// MinInterval is the minimum spacing between dumps; zero defaults
	// to 30 seconds.
	MinInterval time.Duration
	// Fires, when set, counts dumps actually written (an obs counter).
	Fires *obs.Counter

	last atomic.Int64 // unix nanos of the last dump
}

// Fire dumps the recorder if the rate limit allows, returning whether a
// dump was written.
func (tg *Trigger) Fire(reason string) bool {
	if tg == nil || tg.Rec == nil || tg.W == nil {
		return false
	}
	min := tg.MinInterval
	if min <= 0 {
		min = 30 * time.Second
	}
	now := time.Now().UnixNano()
	last := tg.last.Load()
	if last != 0 && now-last < int64(min) {
		return false
	}
	if !tg.last.CompareAndSwap(last, now) {
		return false // another goroutine just fired
	}
	tg.Fires.Inc()
	tg.Rec.DumpJSON(tg.W, reason)
	return true
}
