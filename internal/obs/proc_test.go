package obs

import (
	"testing"
	"time"
)

// TestRegisterProcessMetrics: the four process gauges register, answer
// plausible values, and survive repeated snapshots (the cached MemStats
// path).
func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r, time.Now().Add(-3*time.Second))

	byName := make(map[string]int64)
	for _, s := range r.Snapshot() {
		byName[s.Name] = s.Value
		if s.Kind != KindGauge {
			t.Errorf("%s kind = %v, want gauge", s.Name, s.Kind)
		}
	}
	for _, name := range []string{
		"proc.uptime_s", "proc.goroutines", "proc.heap_inuse_bytes", "proc.gc_pause_p99_us",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing process gauge %q", name)
		}
	}
	if up := byName["proc.uptime_s"]; up < 3 || up > 60 {
		t.Errorf("proc.uptime_s = %d, want ~3", up)
	}
	if byName["proc.goroutines"] < 1 {
		t.Errorf("proc.goroutines = %d, want >= 1", byName["proc.goroutines"])
	}
	if byName["proc.heap_inuse_bytes"] <= 0 {
		t.Errorf("proc.heap_inuse_bytes = %d, want > 0", byName["proc.heap_inuse_bytes"])
	}
	if byName["proc.gc_pause_p99_us"] < 0 {
		t.Errorf("proc.gc_pause_p99_us = %d, want >= 0", byName["proc.gc_pause_p99_us"])
	}

	// A second snapshot inside the cache TTL must not panic or change
	// kinds; values may differ.
	if got := len(r.Snapshot()); got != len(byName) {
		t.Errorf("second snapshot has %d metrics, want %d", got, len(byName))
	}

	// Nil registry: no-op, matching the rest of the package.
	RegisterProcessMetrics(nil, time.Now())
}
