// Package series records registry snapshots over time: a
// dependency-free time-series store that turns the point-in-time
// counters of an obs.Registry into fixed-capacity ring-buffer history,
// so "is the harvest degrading" is answerable from one daemon without
// an external scrape stack (DESIGN.md §12).
//
// Each Sample tick reads Registry.Snapshot once and appends one Point
// per metric: counters are differenced into per-second rates, gauges
// sample raw, and histograms record the tick's observation delta
// (count, sum) plus p50/p95/p99 computed over the buckets observed in
// that tick alone. The sample path takes its timestamp as an argument
// — there is no time.Now inside the recording logic — so tests drive a
// synthetic clock tick by tick and assert exact rates; the background
// Run loop is the only place a real clock lives. Rings hold the last
// Cap points per metric; Last and Window answer the queries merakid's
// "series" command and /debug/series serve, and the health rule engine
// (obs/health) evaluates over the same points.
package series

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"wlanscale/internal/obs"
)

// DefaultCap is the ring capacity when Options.Cap is zero: six hours
// of history at the default 60s cadence.
const DefaultCap = 360

// Point is one tick of one metric's history.
type Point struct {
	// T is the tick's timestamp, unix milliseconds.
	T int64 `json:"t"`
	// V is the metric's value at the tick: a per-second rate for
	// counters (delta since the previous tick over elapsed time), the
	// raw reading for gauges and func gauges, and the per-second
	// observation rate for histograms.
	V float64 `json:"v"`
	// Count and Sum are the histogram observations recorded during this
	// tick (deltas, not cumulative); zero for scalars.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	// P50/P95/P99 are upper-bound quantile estimates over the
	// observations of this tick alone (see obs.Histogram.Quantile for
	// the error bound); zero when the tick saw no observations.
	P50 int64 `json:"p50,omitempty"`
	P95 int64 `json:"p95,omitempty"`
	P99 int64 `json:"p99,omitempty"`
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	buf  []Point
	head int // next write slot
	n    int // valid points
}

func (r *ring) push(p Point) {
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// last returns up to n most recent points, oldest first.
func (r *ring) last(n int) []Point {
	if n > r.n {
		n = r.n
	}
	if n <= 0 {
		return nil
	}
	out := make([]Point, n)
	start := r.head - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// metricSeries is one metric's ring plus the baseline the next tick
// differences against.
type metricSeries struct {
	kind obs.Kind
	ring ring
	// prev is the last cumulative counter value (counters) or
	// observation count/sum and bucket counts (histograms).
	prevValue  int64
	prevCounts []int64
	prevSum    int64
	everActive bool // some tick saw a nonzero value or delta
}

// Options configures a Recorder.
type Options struct {
	// Cap is the ring capacity per metric; zero means DefaultCap.
	Cap int
	// Every is the Run loop's sampling cadence; zero means 60s. The
	// manual Sample path ignores it.
	Every time.Duration
	// Now is the Run loop's clock, defaulting to time.Now. Sample
	// itself never reads a clock — it is handed the tick time.
	Now func() time.Time
}

// Recorder samples one registry into per-metric rings. All methods are
// safe for concurrent use; a nil Recorder is a no-op on every method,
// matching the rest of the obs package.
type Recorder struct {
	reg *obs.Registry
	cap int

	mu     sync.Mutex
	series map[string]*metricSeries
	ticks  int64
	lastT  time.Time // previous tick time, for rate denominators

	every time.Duration
	now   func() time.Time
}

// NewRecorder creates a recorder over reg. A nil registry yields a nil
// (no-op) recorder.
func NewRecorder(reg *obs.Registry, o Options) *Recorder {
	if reg == nil {
		return nil
	}
	if o.Cap <= 0 {
		o.Cap = DefaultCap
	}
	if o.Every <= 0 {
		o.Every = 60 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Recorder{
		reg:    reg,
		cap:    o.Cap,
		series: make(map[string]*metricSeries),
		every:  o.Every,
		now:    o.Now,
	}
}

// Run samples on the configured cadence until stop closes. The
// returned channel closes when the loop exits; merakid runs one per
// daemon.
func (r *Recorder) Run(stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	if r == nil {
		close(done)
		return done
	}
	go func() {
		defer close(done)
		t := time.NewTicker(r.every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Sample(r.now())
			}
		}
	}()
	return done
}

// Sample records one tick at time now: one registry snapshot, one new
// point per metric. Ticks must be handed non-decreasing times; a tick
// at or before the previous tick's time still records (gauges are
// timeless) but reports zero rates rather than dividing by a
// non-positive interval.
func (r *Recorder) Sample(now time.Time) {
	if r == nil {
		return
	}
	snap := r.reg.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := 0.0
	if r.ticks > 0 {
		elapsed = now.Sub(r.lastT).Seconds()
	}
	for _, s := range snap {
		ms, ok := r.series[s.Name]
		if !ok {
			ms = &metricSeries{kind: s.Kind, ring: ring{buf: make([]Point, r.cap)}}
			r.series[s.Name] = ms
		}
		p := Point{T: now.UnixMilli()}
		switch {
		case s.Hist != nil:
			p = histPoint(p, s.Hist, ms, elapsed)
		case s.Kind == obs.KindCounter:
			delta := s.Value - ms.prevValue
			ms.prevValue = s.Value
			if r.ticks > 0 && elapsed > 0 && delta > 0 {
				p.V = float64(delta) / elapsed
			}
			if delta > 0 {
				ms.everActive = true
			}
		default: // gauges and func gauges: raw
			p.V = float64(s.Value)
			if s.Value != 0 {
				ms.everActive = true
			}
		}
		ms.ring.push(p)
	}
	r.ticks++
	r.lastT = now
}

// histPoint differences a histogram snapshot against the metric's
// previous tick: per-tick count/sum deltas, per-second observation
// rate, and quantiles over the tick's own bucket deltas.
func histPoint(p Point, h *obs.HistogramSnapshot, ms *metricSeries, elapsed float64) Point {
	dCount := h.Count - ms.prevValue
	dSum := h.Sum - ms.prevSum
	deltas := make([]int64, len(h.Counts))
	for i, c := range h.Counts {
		d := c
		if i < len(ms.prevCounts) {
			d -= ms.prevCounts[i]
		}
		deltas[i] = d
	}
	ms.prevValue, ms.prevSum = h.Count, h.Sum
	ms.prevCounts = append(ms.prevCounts[:0], h.Counts...)
	if dCount <= 0 {
		return p
	}
	ms.everActive = true
	p.Count, p.Sum = dCount, dSum
	if elapsed > 0 {
		p.V = float64(dCount) / elapsed
	}
	p.P50 = bucketQuantile(h.Bounds, deltas, dCount, 0.50)
	p.P95 = bucketQuantile(h.Bounds, deltas, dCount, 0.95)
	p.P99 = bucketQuantile(h.Bounds, deltas, dCount, 0.99)
	return p
}

// bucketQuantile is obs.Histogram.Quantile over an explicit bucket
// count vector (here: one tick's deltas): the upper bound of the
// bucket holding the rank-th observation, flooring at the largest
// finite bound for the +Inf bucket.
func bucketQuantile(bounds, counts []int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Ticks returns how many samples have been recorded.
func (r *Recorder) Ticks() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

// Names lists every recorded metric, sorted.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kind reports the recorded kind of a metric and whether the metric
// exists in the store.
func (r *Recorder) Kind(name string) (obs.Kind, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ms, ok := r.series[name]
	if !ok {
		return 0, false
	}
	return ms.kind, true
}

// EverActive reports whether the metric has ever shown activity: a
// nonzero gauge reading, a counter increment, or a histogram
// observation. The health engine's absence rules use this to tell "was
// active, went silent" from "never started".
func (r *Recorder) EverActive(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ms, ok := r.series[name]
	return ok && ms.everActive
}

// Last returns the metric's n most recent points, oldest first — fewer
// when the ring holds fewer. Unknown metrics return nil.
func (r *Recorder) Last(name string, n int) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ms, ok := r.series[name]
	if !ok {
		return nil
	}
	return ms.ring.last(n)
}

// Window returns the metric's points within d of the most recent
// point's timestamp, oldest first.
func (r *Recorder) Window(name string, d time.Duration) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ms, ok := r.series[name]
	if !ok || ms.ring.n == 0 {
		return nil
	}
	all := ms.ring.last(ms.ring.n)
	cutoff := all[len(all)-1].T - d.Milliseconds()
	for i, p := range all {
		if p.T >= cutoff {
			return all[i:]
		}
	}
	return nil
}

// WriteText renders one metric's last n points, one per line, oldest
// first — the payload of the merakid "series <metric> [n]" query.
// Scalar points render "t=<unixms> v=<value>"; histogram points append
// "count= sum= p50= p95= p99=".
func (r *Recorder) WriteText(w io.Writer, name string, n int) error {
	if r == nil {
		return fmt.Errorf("series: recording disabled")
	}
	kind, ok := r.Kind(name)
	if !ok {
		return fmt.Errorf("series: unknown metric %q", name)
	}
	for _, p := range r.Last(name, n) {
		if kind == obs.KindHistogram {
			fmt.Fprintf(w, "t=%d v=%.3f count=%d sum=%d p50=%d p95=%d p99=%d\n",
				p.T, p.V, p.Count, p.Sum, p.P50, p.P95, p.P99)
			continue
		}
		fmt.Fprintf(w, "t=%d v=%.3f\n", p.T, p.V)
	}
	return nil
}

// jsonSeries is one metric's entry in the WriteJSON rendering.
type jsonSeries struct {
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// WriteJSON renders the last n points of every metric (or of the named
// metric only, when name is non-empty) as one JSON object keyed by
// metric name — what /debug/series serves.
func (r *Recorder) WriteJSON(w io.Writer, name string, n int) error {
	if r == nil {
		return fmt.Errorf("series: recording disabled")
	}
	names := r.Names()
	if name != "" {
		if _, ok := r.Kind(name); !ok {
			return fmt.Errorf("series: unknown metric %q", name)
		}
		names = []string{name}
	}
	out := make(map[string]jsonSeries, len(names))
	for _, nm := range names {
		kind, _ := r.Kind(nm)
		pts := r.Last(nm, n)
		if pts == nil {
			pts = []Point{}
		}
		out[nm] = jsonSeries{Kind: kind.String(), Points: pts}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
