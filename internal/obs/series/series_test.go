package series

import (
	"strings"
	"testing"
	"time"

	"wlanscale/internal/obs"
)

// tick returns a deterministic timestamp n seconds after a fixed base.
// Every test drives Sample with these — no real clock in any assertion.
func tick(n int) time.Time {
	return time.Unix(1_700_000_000, 0).Add(time.Duration(n) * time.Second)
}

// TestCounterRates pins the core counter semantics: the first tick is a
// baseline (no rate), later ticks record delta/elapsed.
func TestCounterRates(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ingest.total")
	rec := NewRecorder(reg, Options{Cap: 8})

	c.Add(100)
	rec.Sample(tick(0)) // baseline: absorbs the pre-existing total
	c.Add(30)
	rec.Sample(tick(2)) // 30 over 2s = 15/s
	rec.Sample(tick(4)) // no increment: rate 0

	pts := rec.Last("ingest.total", 10)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].V != 0 {
		t.Errorf("baseline tick rate = %v, want 0", pts[0].V)
	}
	if pts[1].V != 15 {
		t.Errorf("second tick rate = %v, want 15", pts[1].V)
	}
	if pts[2].V != 0 {
		t.Errorf("idle tick rate = %v, want 0", pts[2].V)
	}
	if k, ok := rec.Kind("ingest.total"); !ok || k != obs.KindCounter {
		t.Errorf("Kind = %v/%v, want counter/true", k, ok)
	}
	if !rec.EverActive("ingest.total") {
		t.Error("counter that incremented not EverActive")
	}
}

// TestGaugeRaw: gauges record raw readings, never rates, and a
// never-nonzero gauge is not EverActive.
func TestGaugeRaw(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("pool.devices")
	reg.Gauge("always.zero")
	rec := NewRecorder(reg, Options{Cap: 8})

	g.Set(7)
	rec.Sample(tick(0))
	g.Set(3)
	rec.Sample(tick(1))

	pts := rec.Last("pool.devices", 10)
	if len(pts) != 2 || pts[0].V != 7 || pts[1].V != 3 {
		t.Fatalf("gauge points = %v, want raw 7 then 3", pts)
	}
	if !rec.EverActive("pool.devices") {
		t.Error("nonzero gauge not EverActive")
	}
	if rec.EverActive("always.zero") {
		t.Error("all-zero gauge reported EverActive")
	}
}

// TestFuncGaugeCumulative: a RegisterFunc reader over a cumulative
// total records raw values (the daemon's store.ingests pattern), so
// health rules difference them with RateOfChange.
func TestFuncGaugeCumulative(t *testing.T) {
	reg := obs.NewRegistry()
	var total int64
	reg.RegisterFunc("store.ingests", func() int64 { return total })
	rec := NewRecorder(reg, Options{Cap: 8})

	total = 50
	rec.Sample(tick(0))
	total = 80
	rec.Sample(tick(1))

	pts := rec.Last("store.ingests", 10)
	if len(pts) != 2 || pts[0].V != 50 || pts[1].V != 80 {
		t.Fatalf("func gauge points = %v, want raw 50 then 80", pts)
	}
	if k, _ := rec.Kind("store.ingests"); k != obs.KindGauge {
		t.Errorf("func gauge kind = %v, want gauge", k)
	}
}

// TestHistogramTickDeltas: histogram points carry the tick's own
// count/sum deltas and quantiles over that tick's observations only —
// not lifetime cumulative stats.
func TestHistogramTickDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("flush_us", []int64{10, 100, 1000})
	rec := NewRecorder(reg, Options{Cap: 8})

	h.Observe(5)
	h.Observe(50)
	rec.Sample(tick(0))

	// Second tick: 10 fast observations. Lifetime p99 would sit in the
	// 100 bucket; the tick's own p99 must be 10.
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	rec.Sample(tick(1))

	pts := rec.Last("flush_us", 10)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Sum != 55 {
		t.Errorf("tick 0 count/sum = %d/%d, want 2/55", pts[0].Count, pts[0].Sum)
	}
	if pts[1].Count != 10 || pts[1].Sum != 30 {
		t.Errorf("tick 1 count/sum = %d/%d, want 10/30", pts[1].Count, pts[1].Sum)
	}
	if pts[1].P50 != 10 || pts[1].P99 != 10 {
		t.Errorf("tick 1 p50/p99 = %d/%d, want 10/10 (tick-local quantiles)", pts[1].P50, pts[1].P99)
	}
	if pts[1].V != 10 {
		t.Errorf("tick 1 rate = %v, want 10 obs/s", pts[1].V)
	}

	// Idle tick: zero count, zero quantiles.
	rec.Sample(tick(2))
	last := rec.Last("flush_us", 1)[0]
	if last.Count != 0 || last.P99 != 0 || last.V != 0 {
		t.Errorf("idle histogram tick = %+v, want all-zero", last)
	}
}

// TestRingWraps: the ring keeps exactly Cap points, oldest first.
func TestRingWraps(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g")
	rec := NewRecorder(reg, Options{Cap: 3})
	for i := 0; i < 5; i++ {
		g.Set(int64(i))
		rec.Sample(tick(i))
	}
	pts := rec.Last("g", 10)
	if len(pts) != 3 {
		t.Fatalf("ring holds %d points, want cap 3", len(pts))
	}
	for i, want := range []float64{2, 3, 4} {
		if pts[i].V != want {
			t.Errorf("point %d = %v, want %v", i, pts[i].V, want)
		}
	}
	if n := len(rec.Last("g", 2)); n != 2 {
		t.Errorf("Last(2) returned %d points", n)
	}
}

// TestWindow: Window cuts by timestamp distance from the newest point.
func TestWindow(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g")
	rec := NewRecorder(reg, Options{Cap: 16})
	for i := 0; i < 10; i++ {
		g.Set(int64(i))
		rec.Sample(tick(i * 10)) // points 10s apart
	}
	got := rec.Window("g", 25*time.Second)
	if len(got) != 3 {
		t.Fatalf("Window(25s) = %d points, want 3 (t-20, t-10, t)", len(got))
	}
	if got[0].V != 7 || got[2].V != 9 {
		t.Errorf("window points = %v..%v, want 7..9", got[0].V, got[2].V)
	}
	if rec.Window("missing", time.Minute) != nil {
		t.Error("Window on unknown metric not nil")
	}
}

// TestNilRecorder: every method on a nil recorder is a no-op, matching
// the rest of the obs package.
func TestNilRecorder(t *testing.T) {
	var rec *Recorder
	if NewRecorder(nil, Options{}) != nil {
		t.Fatal("NewRecorder(nil) != nil")
	}
	rec.Sample(tick(0))
	if rec.Ticks() != 0 || rec.Names() != nil || rec.Last("x", 1) != nil {
		t.Error("nil recorder leaked state")
	}
	if rec.EverActive("x") {
		t.Error("nil recorder EverActive")
	}
	if err := rec.WriteText(nil, "x", 1); err == nil {
		t.Error("nil recorder WriteText did not error")
	}
	<-rec.Run(nil) // must return a closed channel, not hang or panic
}

// TestWriteText pins the query rendering: scalar and histogram line
// shapes, and the unknown-metric error.
func TestWriteText(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(10)
	h := reg.Histogram("h", []int64{10, 100})
	rec := NewRecorder(reg, Options{Cap: 8})
	rec.Sample(tick(0))
	reg.Counter("c").Add(4)
	h.Observe(7)
	rec.Sample(tick(2))

	var b strings.Builder
	if err := rec.WriteText(&b, "c", 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("counter rendered %d lines, want 2", len(lines))
	}
	if want := "v=2.000"; !strings.HasSuffix(lines[1], want) {
		t.Errorf("counter line = %q, want suffix %q", lines[1], want)
	}

	b.Reset()
	if err := rec.WriteText(&b, "h", 1); err != nil {
		t.Fatal(err)
	}
	hline := strings.TrimSpace(b.String())
	for _, f := range []string{"count=1", "sum=7", "p50=10", "p95=10", "p99=10"} {
		if !strings.Contains(hline, f) {
			t.Errorf("histogram line %q missing %q", hline, f)
		}
	}

	if err := rec.WriteText(&b, "nope", 1); err == nil {
		t.Error("unknown metric did not error")
	}
}

// TestSampleNonPositiveElapsed: a tick at the same timestamp as the
// previous one still records but must not divide by zero.
func TestSampleNonPositiveElapsed(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	rec := NewRecorder(reg, Options{Cap: 8})
	c.Add(1)
	rec.Sample(tick(0))
	c.Add(1)
	rec.Sample(tick(0)) // zero elapsed
	pts := rec.Last("c", 10)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[1].V != 0 {
		t.Errorf("zero-elapsed tick rate = %v, want 0", pts[1].V)
	}
}
