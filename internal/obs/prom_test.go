package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestHistogramQuantiles pins the documented upper-bound semantics of
// Quantile at the common p50/p95/p99 read points: the returned value
// is the bound of the bucket holding the rank-th observation, never
// less than the true quantile, and at most one bucket width above it.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})

	// 90 observations in (0,10], 9 in (10,100], 1 in (100,1000]:
	// p50 and p90 land in the first bucket, p95 and p99 in the second,
	// p100 in the third.
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)

	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 10},
		{0.90, 10},
		{0.95, 100},
		{0.99, 100},
		{1.00, 1000},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}

	// The estimate is an upper bound on the true quantile: the true p50
	// here is 5, the reported 10 — within one bucket width, never below.
	if got, truth := h.Quantile(0.5), int64(5); got < truth {
		t.Fatalf("Quantile(0.5) = %d understates true quantile %d", got, truth)
	}
}

// TestHistogramQuantileEdges covers the degenerate shapes: an empty
// histogram, a tiny q clamped to rank 1, and the +Inf bucket floor.
func TestHistogramQuantileEdges(t *testing.T) {
	if got := NewHistogram([]int64{10}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}

	h := NewHistogram([]int64{10, 100})
	h.Observe(5)
	if got := h.Quantile(0.0001); got != 10 {
		t.Fatalf("tiny-q Quantile = %d, want rank-1 bucket bound 10", got)
	}

	// An observation past every finite bound lands in +Inf; the
	// reported quantile floors at the largest finite bound.
	h.Observe(5000)
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("+Inf-bucket Quantile = %d, want floor 100", got)
	}

	// No finite buckets at all: count/sum only, quantile is 0.
	inf := NewHistogram(nil)
	inf.Observe(42)
	if got := inf.Quantile(0.5); got != 0 {
		t.Fatalf("boundless histogram Quantile = %d, want 0", got)
	}
}

// TestHistogramEmptyMean: an empty histogram reports mean 0, not NaN —
// series points and watch lines render it directly.
func TestHistogramEmptyMean(t *testing.T) {
	h := NewHistogram([]int64{10})
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty histogram Mean = %v, want 0", got)
	}
	h.Observe(8)
	if got := h.Mean(); got != 8 {
		t.Fatalf("Mean after one observation = %v, want 8", got)
	}
}

// TestWriteProm checks the Prometheus text rendering: sanitized names,
// a TYPE metadata line directly preceding each family's samples (the
// contract cluster.MergeProm relies on), cumulative le buckets ending
// at +Inf, and the _sum/_count pair.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("harvest.polls").Add(3)
	r.Gauge("pool.devices").Set(7)
	r.RegisterFunc("proc.uptime_s", func() int64 { return 12 })
	h := r.Histogram("store.ingest_us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	r.WriteProm(&buf)
	got := buf.String()

	want := strings.Join([]string{
		"# TYPE harvest_polls counter",
		"harvest_polls 3",
		"# TYPE pool_devices gauge",
		"pool_devices 7",
		"# TYPE proc_uptime_s gauge",
		"proc_uptime_s 12",
		"# TYPE store_ingest_us histogram",
		`store_ingest_us_bucket{le="10"} 1`,
		`store_ingest_us_bucket{le="100"} 2`,
		`store_ingest_us_bucket{le="+Inf"} 3`,
		"store_ingest_us_sum 5055",
		"store_ingest_us_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("WriteProm output:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromName pins the sanitizer's corner cases.
func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"epoch.worker.02.networks", "epoch_worker_02_networks"},
		{"trace-dumps", "trace_dumps"},
		{"2fast", "_2fast"},
		{"ok_name:x", "ok_name:x"},
		{"weird µ chars", "weirdchars"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Fatalf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
