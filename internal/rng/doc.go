// Package rng provides deterministic, splittable random number generation
// for the fleet simulator.
//
// Every random decision in the simulation flows from a single root seed.
// Sub-systems obtain independent streams by splitting a Source with a
// labeled path (for example "fleet/net/1234/ap/7/radio0"). Splitting is
// stable: the stream obtained for a label does not depend on the order in
// which other labels are split, so adding a new consumer never perturbs
// existing behaviour. This property is what makes the reproduction's
// tables and figures bit-for-bit reproducible from one seed.
package rng
