package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitIsDeterministic(t *testing.T) {
	a := New(42).Split("fleet/net/1")
	b := New(42).Split("fleet/net/1")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	p1 := New(7)
	p1.Float64() // consume some of the parent stream
	p1.Float64()
	c1 := p1.Split("child")

	p2 := New(7)
	c2 := p2.Split("child")

	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("child stream depends on parent consumption (draw %d)", i)
		}
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	root := New(1)
	a := root.Split("a")
	b := root.Split("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for distinct labels look identical (%d/64 equal)", same)
	}
}

func TestSplitNMatchesManual(t *testing.T) {
	root := New(9)
	a := root.SplitN("ap", 17)
	b := root.Split("ap/17")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN and Split disagree")
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(3)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if s.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !s.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %.3f, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Normal stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(13)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMeanMedian(100, 1.5)
	}
	// The median of a log-normal is exp(mu); check the empirical median.
	med := quickSelectMedian(vals)
	if med < 90 || med > 110 {
		t.Errorf("LogNormal median = %.1f, want ~100", med)
	}
}

func quickSelectMedian(v []float64) float64 {
	// Simple selection by counting; fine for tests.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	target := len(v) / 2
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		n := 0
		for _, x := range v {
			if x < mid {
				n++
			}
		}
		if n < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func TestBinomialMoments(t *testing.T) {
	s := New(17)
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.5}, {20, 0.05}, {1000, 0.3}, {5000, 0.9}} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(s.Binomial(tc.n, tc.p))
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		tol := 4 * math.Sqrt(float64(tc.n)*tc.p*(1-tc.p)/trials)
		if math.Abs(mean-want) > tol+0.05 {
			t.Errorf("Binomial(%d,%.2f) mean = %.2f, want %.2f±%.2f", tc.n, tc.p, mean, want, tol)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	s := New(19)
	err := quick.Check(func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 2000)
		p := float64(pRaw) / 65535
		k := s.Binomial(n, p)
		return k >= 0 && k <= n
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, mean := range []float64{0.5, 3, 25, 100} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / trials
		if math.Abs(got-mean) > 4*math.Sqrt(mean/trials)+0.05 {
			t.Errorf("Poisson(%.1f) mean = %.2f", mean, got)
		}
	}
}

func TestParetoTail(t *testing.T) {
	s := New(29)
	const n = 50000
	over := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("Pareto sample %.3f below minimum", v)
		}
		if v > 4 {
			over++
		}
	}
	// P(X > 4) for Pareto(1, 1.5) = 4^-1.5 = 0.125.
	frac := float64(over) / n
	if math.Abs(frac-0.125) > 0.01 {
		t.Errorf("Pareto tail mass = %.4f, want ~0.125", frac)
	}
}

func TestRicianHighKHasLittleFading(t *testing.T) {
	s := New(31)
	var worst float64
	for i := 0; i < 10000; i++ {
		db := s.RicianPowerDB(100)
		if math.Abs(db) > worst {
			worst = math.Abs(db)
		}
	}
	if worst > 3 {
		t.Errorf("K=100 Rician fading excursion %.1f dB, want < 3 dB", worst)
	}
	// Rayleigh (K=0) should show deep fades.
	deep := false
	for i := 0; i < 10000; i++ {
		if s.RicianPowerDB(0) < -15 {
			deep = true
			break
		}
	}
	if !deep {
		t.Error("K=0 Rician (Rayleigh) never produced a deep fade")
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestCategoricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Categorical(nil) did not panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestWeightedTableMatchesWeights(t *testing.T) {
	s := New(41)
	w := []float64{5, 1, 0, 4}
	tab := NewWeightedTable(w)
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tab.Len())
	}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[tab.Sample(s)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[2])
	}
	for i, want := range []float64{0.5, 0.1, 0, 0.4} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedTablePanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"empty":    nil,
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeightedTable(%s) did not panic", name)
				}
			}()
			NewWeightedTable(w)
		}()
	}
}

func TestAR1Stationary(t *testing.T) {
	s := New(43)
	p := AR1{Mean: 10, Stddev: 2, Rho: 0.9}
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := p.Next(s)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("AR1 mean = %.2f, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.2 {
		t.Errorf("AR1 stddev = %.2f, want ~2", sd)
	}
}

func TestAR1Autocorrelation(t *testing.T) {
	s := New(47)
	p := AR1{Mean: 0, Stddev: 1, Rho: 0.8}
	const n = 200000
	prev := p.Next(s)
	var sumXY, sumXX float64
	for i := 1; i < n; i++ {
		cur := p.Next(s)
		sumXY += prev * cur
		sumXX += prev * prev
		prev = cur
	}
	rho := sumXY / sumXX
	if math.Abs(rho-0.8) > 0.02 {
		t.Errorf("AR1 lag-1 autocorrelation = %.3f, want ~0.8", rho)
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	s := New(53)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[s.Zipf(10, 1.3)]++
	}
	for i := 1; i < 10; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d (%d) more popular than rank 0 (%d)", i, counts[i], counts[0])
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(59)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func BenchmarkSplit(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.SplitN("ap", i)
	}
}

func BenchmarkWeightedTableSample(b *testing.B) {
	w := make([]float64, 200)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	tab := NewWeightedTable(w)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Sample(s)
	}
}

func BenchmarkBinomialWindow(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Binomial(20, 0.7)
	}
}
