package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strconv"
)

// Source is a deterministic random stream. It wraps a PCG generator from
// math/rand/v2 and adds the distribution samplers the simulator needs.
// A Source is not safe for concurrent use; split one per goroutine.
type Source struct {
	r *rand.Rand
	// seed material retained so the source can be split.
	hi, lo uint64
}

// New returns a Source rooted at the given seed.
func New(seed uint64) *Source {
	return newFrom(seed, 0x9e3779b97f4a7c15)
}

func newFrom(hi, lo uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives an independent Source identified by label. The derived
// stream depends only on the parent's seed material and the label, never
// on how much of the parent stream has been consumed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	var b [8]byte
	putUint64(b[:], s.hi)
	h.Write(b[:])
	putUint64(b[:], s.lo)
	h.Write(b[:])
	h.Write([]byte(label))
	lo := h.Sum64()
	h.Write([]byte{0x5c})
	hi := h.Sum64()
	return newFrom(hi, lo)
}

// SplitN derives an independent Source identified by label and an index,
// e.g. SplitN("ap", 17) for the 18th access point.
func (s *Source) SplitN(label string, n int) *Source {
	return s.Split(label + "/" + strconv.Itoa(n))
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Int64N returns a uniform int64 in [0,n). It panics if n <= 0.
func (s *Source) Int64N(n int64) int64 { return s.r.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a value whose logarithm is normally distributed with
// parameters mu and sigma (natural log scale).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMeanMedian returns a log-normal sample parameterized by its
// median m and the sigma of the underlying normal. Usage and traffic
// volumes in the study are heavy-tailed, and a median-parameterized
// log-normal is the most convenient way to state calibration targets.
func (s *Source) LogNormalMeanMedian(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return s.LogNormal(math.Log(median), sigma)
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed with minimum xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Rayleigh returns a Rayleigh-distributed value with scale sigma. The
// Rayleigh distribution models the envelope of non-line-of-sight
// multipath fading.
func (s *Source) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// RicianPowerDB returns the instantaneous fading gain in dB for a Rician
// channel with K-factor k (linear ratio of line-of-sight power to
// scattered power). Large k approaches no fading; k=0 is Rayleigh.
func (s *Source) RicianPowerDB(k float64) float64 {
	// Sample the complex envelope: LOS component sqrt(k/(k+1)) plus a
	// complex Gaussian scatter component with variance 1/(k+1).
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	los := math.Sqrt(k / (k + 1))
	re := los + sigma*s.r.NormFloat64()
	im := sigma * s.r.NormFloat64()
	p := re*re + im*im
	if p < 1e-12 {
		p = 1e-12
	}
	return 10 * math.Log10(p)
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
// For large n it uses a normal approximation; exact sampling otherwise.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n >= 64 && n*int(math.Min(p, 1-p)*100) >= 500 {
		// Normal approximation with continuity correction.
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		v := int(math.Round(s.Normal(mean, sd)))
		if v < 0 {
			v = 0
		}
		if v > n {
			v = n
		}
		return v
	}
	k := 0
	for i := 0; i < n; i++ {
		if s.r.Float64() < p {
			k++
		}
	}
	return k
}

// Poisson returns a Poisson-distributed count with the given mean.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for large means.
		v := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf samples ranks in [0, n) with Zipf exponent sExp >= 1. Rank 0 is the
// most popular. Used for application and host popularity.
func (s *Source) Zipf(n int, sExp float64) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(s.r, sExp, 1, uint64(n-1))
	return int(z.Uint64())
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Categorical draws an index from the (unnormalized) weight vector.
// It panics if weights is empty or sums to a non-positive value.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Categorical requires positive weights")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// WeightedTable is a precomputed alias-method sampler over a fixed weight
// vector, for hot paths that draw from the same categorical distribution
// millions of times (e.g. assigning applications to flows).
type WeightedTable struct {
	prob  []float64
	alias []int
}

// NewWeightedTable builds an alias table from the (unnormalized) weights.
func NewWeightedTable(weights []float64) *WeightedTable {
	n := len(weights)
	if n == 0 {
		panic("rng: NewWeightedTable requires at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: weights sum to zero")
	}
	t := &WeightedTable{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[l] = scaled[l]
		t.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Len returns the number of categories in the table.
func (t *WeightedTable) Len() int { return len(t.prob) }

// Sample draws one index using the source.
func (t *WeightedTable) Sample(s *Source) int {
	i := s.IntN(len(t.prob))
	if s.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// AR1 is a first-order autoregressive Gaussian process, used to model
// slowly varying quantities such as shadowing and channel load. The
// process has stationary mean Mean and stationary standard deviation
// Stddev; Rho in [0,1) controls how strongly successive samples correlate.
type AR1 struct {
	Mean   float64
	Stddev float64
	Rho    float64
	state  float64
	primed bool
}

// Next advances the process and returns the new value.
func (a *AR1) Next(s *Source) float64 {
	if !a.primed {
		a.state = s.Normal(0, a.Stddev)
		a.primed = true
	} else {
		innov := a.Stddev * math.Sqrt(1-a.Rho*a.Rho)
		a.state = a.Rho*a.state + s.Normal(0, innov)
	}
	return a.Mean + a.state
}

// Value returns the current value without advancing.
func (a *AR1) Value() float64 { return a.Mean + a.state }
