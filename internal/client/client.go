// Package client models the WiFi client devices of the study: their
// operating systems (Table 3), the 802.11 capabilities they advertise
// (Table 4) and how those shift between the two measurement years, the
// identification artifacts they emit (MAC OUI, DHCP fingerprints, HTTP
// User-Agents), their band-selection behaviour at association time
// (Figure 1), and their weekly application usage profile (Tables 3/5/6).
package client

import (
	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rng"
)

// Device is one client device.
type Device struct {
	// MAC is the device's MAC address; the OUI matches the OS vendor
	// ecosystem so the backend's OUI heuristic has something to read.
	MAC dot11.MAC
	// OS is the device's true operating system. The measurement
	// pipeline must *infer* this from artifacts; tables are built from
	// the inference, not from this field.
	OS apps.OS
	// Caps are the 802.11 capabilities the device advertises.
	Caps dot11.Capabilities
	// UsageScale multiplies the device's traffic draws (desktops pull
	// several times more than phones).
	UsageScale float64
	// Ambiguous marks devices that present conflicting identification
	// artifacts (dual-boot, VMs, embedded boxes) and should classify as
	// Unknown.
	Ambiguous bool
	// TxPowerDBm is the client's transmit power (clients run well below
	// AP power, which is why uplink RSSI at the AP is modest).
	TxPowerDBm float64
}

// osMixEntry weights the OS populations per epoch, derived from
// Table 3's client counts ("true" OS before inference; the Unknown rows
// of Table 3 emerge from ambiguous devices, embedded Linux, etc.).
type osMixEntry struct {
	os               apps.OS
	w2014            float64
	w2015            float64
	scale14, scale15 float64 // MB/client relative to the fleet mean
}

// The per-OS usage scales are Table 3's MB/client columns divided by the
// fleet mean (311 MB in 2014, 367 MB in 2015).
var osMix = []osMixEntry{
	{apps.OSWindows, 642782, 822761, 671.0 / 311, 751.0 / 367},
	{apps.OSiOS, 1903268, 2550379, 156.0 / 311, 224.0 / 367},
	{apps.OSMacOSX, 253206, 313976, 1271.0 / 311, 1487.0 / 367},
	{apps.OSAndroid, 953950, 1535859, 72.0 / 311, 121.0 / 367},
	{apps.OSUnknown, 250474, 228182, 358.0 / 311, 357.0 / 367},
	{apps.OSChromeOS, 55309, 178095, 316.0 / 311, 366.0 / 367},
	{apps.OSOther, 20849, 13969, 728.0 / 311, 1951.0 / 367},
	{apps.OSPlayStation, 4905, 4267, 3005.0 / 311, 5319.0 / 367},
	{apps.OSLinux, 1661, 4402, 518.0 / 311, 1393.0 / 367},
	{apps.OSBlackBerry, 29108, 13681, 13.6 / 311, 11.0 / 367},
	{apps.OSWindowsMobile, 8523, 4943, 23.0 / 311, 26.0 / 367},
}

// OSMix returns the OS population weights for the epoch, in a stable
// order aligned with OSMixOSes.
func OSMix(e epoch.Epoch) []float64 {
	out := make([]float64, len(osMix))
	for i, m := range osMix {
		if e == epoch.Jan2014 {
			out[i] = m.w2014
		} else {
			out[i] = m.w2015
		}
	}
	return out
}

// OSMixOSes returns the OS for each index of OSMix.
func OSMixOSes() []apps.OS {
	out := make([]apps.OS, len(osMix))
	for i, m := range osMix {
		out[i] = m.os
	}
	return out
}

// usageScale returns the device's MB/client scale for the epoch.
func usageScale(os apps.OS, e epoch.Epoch) float64 {
	for _, m := range osMix {
		if m.os == os {
			if e == epoch.Jan2014 {
				return m.scale14
			}
			return m.scale15
		}
	}
	return 1
}

// capParams are per-OS capability probabilities for one epoch.
type capParams struct {
	ac      float64 // P(802.11ac)
	fiveGHz float64 // P(5 GHz capable), including the ac devices
	n       float64 // P(802.11n)
	s2      float64 // P(exactly 2 streams)
	s3      float64 // P(exactly 3 streams)
	s4      float64 // P(exactly 4 streams)
	w40If5  float64 // P(40 MHz | 5 GHz capable)
	w40If24 float64 // P(40 MHz | 2.4 GHz only)
}

// Capability parameters per OS for January 2015, chosen so the
// population aggregates land on Table 4's right column given the
// Table 3 OS mix.
var caps2015 = map[apps.OS]capParams{
	apps.OSWindows:       {ac: 0.16, fiveGHz: 0.62, n: 0.985, s2: 0.45, s3: 0.05, s4: 0.06, w40If5: 0.95, w40If24: 0.03},
	apps.OSiOS:           {ac: 0.20, fiveGHz: 0.76, n: 0.995, s2: 0.08, s3: 0, s4: 0, w40If5: 0.95, w40If24: 0.01},
	apps.OSMacOSX:        {ac: 0.45, fiveGHz: 0.97, n: 1.0, s2: 0.40, s3: 0.45, s4: 0.09, w40If5: 0.98, w40If24: 0.05},
	apps.OSAndroid:       {ac: 0.13, fiveGHz: 0.46, n: 0.97, s2: 0.15, s3: 0.01, s4: 0.01, w40If5: 0.94, w40If24: 0.02},
	apps.OSUnknown:       {ac: 0.05, fiveGHz: 0.35, n: 0.90, s2: 0.10, s3: 0.01, s4: 0.03, w40If5: 0.90, w40If24: 0.02},
	apps.OSChromeOS:      {ac: 0.12, fiveGHz: 0.55, n: 0.99, s2: 0.30, s3: 0.01, s4: 0.01, w40If5: 0.95, w40If24: 0.02},
	apps.OSOther:         {ac: 0.10, fiveGHz: 0.50, n: 0.95, s2: 0.20, s3: 0.05, s4: 0.05, w40If5: 0.90, w40If24: 0.02},
	apps.OSPlayStation:   {ac: 0, fiveGHz: 0.40, n: 0.80, s2: 0.05, s3: 0, s4: 0, w40If5: 0.60, w40If24: 0},
	apps.OSLinux:         {ac: 0.10, fiveGHz: 0.55, n: 0.95, s2: 0.35, s3: 0.08, s4: 0.10, w40If5: 0.90, w40If24: 0.05},
	apps.OSBlackBerry:    {ac: 0, fiveGHz: 0.40, n: 0.95, s2: 0, s3: 0, s4: 0, w40If5: 0.80, w40If24: 0},
	apps.OSWindowsMobile: {ac: 0, fiveGHz: 0.35, n: 0.95, s2: 0, s3: 0, s4: 0, w40If5: 0.80, w40If24: 0},
}

// Capability parameters for January 2014 (Table 4's left column).
var caps2014 = map[apps.OS]capParams{
	apps.OSWindows:       {ac: 0.03, fiveGHz: 0.52, n: 0.96, s2: 0.22, s3: 0.03, s4: 0.025, w40If5: 0.42, w40If24: 0.02},
	apps.OSiOS:           {ac: 0.005, fiveGHz: 0.55, n: 0.97, s2: 0.02, s3: 0, s4: 0, w40If5: 0.35, w40If24: 0.01},
	apps.OSMacOSX:        {ac: 0.15, fiveGHz: 0.95, n: 1.0, s2: 0.45, s3: 0.35, s4: 0.035, w40If5: 0.75, w40If24: 0.05},
	apps.OSAndroid:       {ac: 0.015, fiveGHz: 0.33, n: 0.93, s2: 0.05, s3: 0, s4: 0, w40If5: 0.40, w40If24: 0.01},
	apps.OSUnknown:       {ac: 0.01, fiveGHz: 0.30, n: 0.88, s2: 0.08, s3: 0.01, s4: 0.01, w40If5: 0.40, w40If24: 0.02},
	apps.OSChromeOS:      {ac: 0.02, fiveGHz: 0.45, n: 0.98, s2: 0.20, s3: 0, s4: 0, w40If5: 0.45, w40If24: 0.02},
	apps.OSOther:         {ac: 0.02, fiveGHz: 0.45, n: 0.92, s2: 0.15, s3: 0.04, s4: 0.02, w40If5: 0.45, w40If24: 0.02},
	apps.OSPlayStation:   {ac: 0, fiveGHz: 0.30, n: 0.70, s2: 0.03, s3: 0, s4: 0, w40If5: 0.30, w40If24: 0},
	apps.OSLinux:         {ac: 0.02, fiveGHz: 0.50, n: 0.92, s2: 0.30, s3: 0.06, s4: 0.05, w40If5: 0.50, w40If24: 0.03},
	apps.OSBlackBerry:    {ac: 0, fiveGHz: 0.35, n: 0.90, s2: 0, s3: 0, s4: 0, w40If5: 0.35, w40If24: 0},
	apps.OSWindowsMobile: {ac: 0, fiveGHz: 0.30, n: 0.90, s2: 0, s3: 0, s4: 0, w40If5: 0.35, w40If24: 0},
}

func capsFor(e epoch.Epoch) map[apps.OS]capParams {
	if e == epoch.Jan2014 {
		return caps2014
	}
	return caps2015
}

// OUI prefixes per OS ecosystem, drawn from the apps package vendor
// table so inference can round-trip.
var osOUIs = map[apps.OS][][3]byte{
	apps.OSWindows:       {{0x00, 0x1c, 0xbf}, {0x00, 0x1e, 0x8c}, {0x28, 0x18, 0x78}},
	apps.OSiOS:           {{0xac, 0xbc, 0x32}, {0x28, 0xcf, 0xe9}},
	apps.OSMacOSX:        {{0x00, 0x17, 0xf2}, {0x28, 0xcf, 0xe9}},
	apps.OSAndroid:       {{0x38, 0xaa, 0x3c}, {0x9c, 0xd9, 0x17}, {0xf8, 0xa9, 0xd0}},
	apps.OSChromeOS:      {{0x94, 0x39, 0xe5}},
	apps.OSPlayStation:   {{0xf8, 0xd0, 0xac}},
	apps.OSLinux:         {{0x00, 0x90, 0x4c}},
	apps.OSBlackBerry:    {{0x00, 0x21, 0xe8}},
	apps.OSWindowsMobile: {{0x00, 0x50, 0xf2}},
	apps.OSUnknown:       {{0x00, 0x90, 0x4c}, {0x94, 0x39, 0xe5}},
	apps.OSOther:         {{0x00, 0x1d, 0xba}, {0x94, 0x39, 0xe5}},
}

// New creates a device of the given OS for the epoch, drawing its
// capabilities, MAC, and usage scale from src.
func New(os apps.OS, e epoch.Epoch, serial uint64, src *rng.Source) *Device {
	p := capsFor(e)[os]
	c := dot11.Capabilities{G: src.Bool(0.999)}
	c.N = src.Bool(p.n)
	if src.Bool(p.ac) {
		c.AC = true
	} else if p.fiveGHz > p.ac {
		// fiveGHz is the *total* P(5 GHz); ac devices already have it,
		// so condition the remaining probability on not-ac.
		c.FiveGHz = src.Bool((p.fiveGHz - p.ac) / (1 - p.ac))
	}
	switch {
	case src.Bool(p.s4):
		c.Streams = 4
	case src.Bool(p.s3):
		c.Streams = 3
	case src.Bool(p.s2):
		c.Streams = 2
	default:
		c.Streams = 1
	}
	if c.FiveGHz || c.AC {
		c.Width40 = src.Bool(p.w40If5)
	} else {
		c.Width40 = src.Bool(p.w40If24)
	}
	c = c.Normalize()

	ouis := osOUIs[os]
	oui := ouis[src.IntN(len(ouis))]
	return &Device{
		MAC:        dot11.MACFromUint64(oui, serial),
		OS:         os,
		Caps:       c,
		UsageScale: usageScale(os, e),
		Ambiguous:  os == apps.OSUnknown || src.Bool(0.015),
		TxPowerDBm: clientTxPower(os),
	}
}

// NewFromMix draws a device whose OS follows the epoch's population mix.
func NewFromMix(e epoch.Epoch, serial uint64, src *rng.Source) *Device {
	oses := OSMixOSes()
	os := oses[src.Categorical(OSMix(e))]
	return New(os, e, serial, src)
}

func clientTxPower(os apps.OS) float64 {
	if os.IsMobile() {
		return 12 // handhelds run lower TX power
	}
	return 15
}

// Artifacts generates the identification artifacts the device leaves on
// the network: DHCP fingerprints and User-Agent strings. Ambiguous
// devices emit conflicting fingerprints (the dual-boot/VM case the paper
// describes); others emit their OS's canonical artifacts.
func (d *Device) Artifacts(src *rng.Source) (dhcp [][]byte, userAgents []string) {
	if d.Ambiguous {
		fp1, _ := apps.DHCPFingerprintFor(apps.OSWindows)
		fp2, _ := apps.DHCPFingerprintFor(apps.OSLinux)
		return [][]byte{fp1, fp2}, nil
	}
	fp, ok := apps.DHCPFingerprintFor(d.OS)
	if ok {
		dhcp = append(dhcp, fp)
	}
	if ua := apps.UserAgentFor(d.OS); ua != "" && src.Bool(0.9) {
		userAgents = append(userAgents, ua)
	}
	return dhcp, userAgents
}

// AssociationBand picks the band the device associates on, given the
// SNRs it observes toward the AP on each band. Real clients are
// conservative about 5 GHz: they prefer it only when its signal is
// strong, which — combined with the extra 5 GHz attenuation — produces
// the paper's 80/20 split despite 65% of clients being 5 GHz capable.
func (d *Device) AssociationBand(snr24, snr5 float64, src *rng.Source) dot11.Band {
	if !d.Caps.FiveGHz {
		return dot11.Band24
	}
	if snr5 < 33 {
		// Clients only take 5 GHz when its signal is strong; the band's
		// extra attenuation puts most of the floor past this point,
		// pinning ~80% of associations to 2.4 GHz even though ~65% of
		// clients are capable (Figure 1).
		return dot11.Band24
	}
	// Strong 5 GHz: most, but not all, clients take it (legacy
	// preference lists, sticky behaviour).
	if src.Bool(0.75) {
		return dot11.Band5
	}
	return dot11.Band24
}
