package client

import (
	"math"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rng"
)

func makeFleet(t *testing.T, e epoch.Epoch, n int, seed uint64) []*Device {
	t.Helper()
	root := rng.New(seed)
	out := make([]*Device, n)
	for i := range out {
		out[i] = NewFromMix(e, uint64(i), root.SplitN("dev", i))
	}
	return out
}

func TestCapabilityAggregatesMatchTable4_2015(t *testing.T) {
	devs := makeFleet(t, epoch.Jan2015, 30000, 1)
	var cc dot11.CapabilityCounts
	for _, d := range devs {
		cc.Add(d.Caps)
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"802.11g", cc.Fraction(cc.G), 0.999, 0.01},
		{"802.11n", cc.Fraction(cc.N), 0.977, 0.02},
		{"5 GHz", cc.Fraction(cc.FiveGHz), 0.649, 0.05},
		{"40 MHz", cc.Fraction(cc.Width40), 0.638, 0.06},
		{"802.11ac", cc.Fraction(cc.AC), 0.18, 0.04},
		{"2 streams", cc.Fraction(cc.TwoStreams), 0.193, 0.05},
		{"3 streams", cc.Fraction(cc.ThreeStreams), 0.038, 0.02},
		{"4 streams", cc.Fraction(cc.FourStreams), 0.018, 0.012},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("Jan 2015 %s = %.3f, want %.3f±%.3f (Table 4)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestCapabilityAggregatesMatchTable4_2014(t *testing.T) {
	devs := makeFleet(t, epoch.Jan2014, 30000, 2)
	var cc dot11.CapabilityCounts
	for _, d := range devs {
		cc.Add(d.Caps)
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"5 GHz", cc.Fraction(cc.FiveGHz), 0.489, 0.05},
		{"40 MHz", cc.Fraction(cc.Width40), 0.234, 0.05},
		{"802.11ac", cc.Fraction(cc.AC), 0.025, 0.02},
		{"2 streams", cc.Fraction(cc.TwoStreams), 0.077, 0.035},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("Jan 2014 %s = %.3f, want %.3f±%.3f (Table 4)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestOSMixProportions(t *testing.T) {
	devs := makeFleet(t, epoch.Jan2015, 30000, 3)
	counts := make(map[apps.OS]int)
	for _, d := range devs {
		counts[d.OS]++
	}
	frac := func(os apps.OS) float64 { return float64(counts[os]) / float64(len(devs)) }
	// iOS should dominate (~45%), Android ~27%, Windows ~14.5%.
	if f := frac(apps.OSiOS); math.Abs(f-0.45) > 0.03 {
		t.Errorf("iOS share = %.3f, want ~0.45", f)
	}
	if f := frac(apps.OSAndroid); math.Abs(f-0.27) > 0.03 {
		t.Errorf("Android share = %.3f, want ~0.27", f)
	}
	if f := frac(apps.OSWindows); math.Abs(f-0.145) > 0.02 {
		t.Errorf("Windows share = %.3f, want ~0.145", f)
	}
	// Three times more iOS than Windows devices (Section 3.2).
	if r := frac(apps.OSiOS) / frac(apps.OSWindows); r < 2.4 || r > 3.9 {
		t.Errorf("iOS/Windows ratio = %.2f, want ~3.1", r)
	}
}

func TestOSMixAligned(t *testing.T) {
	if len(OSMix(epoch.Jan2014)) != len(OSMixOSes()) {
		t.Fatal("mix and OS lists misaligned")
	}
}

func TestDeviceMACMatchesEcosystem(t *testing.T) {
	root := rng.New(4)
	d := New(apps.OSPlayStation, epoch.Jan2015, 1, root.Split("ps"))
	if v := apps.VendorFromOUI(d.MAC.OUI()); v != "Sony Interactive" {
		t.Errorf("PlayStation vendor = %q", v)
	}
	d = New(apps.OSiOS, epoch.Jan2015, 2, root.Split("ios"))
	if v := apps.VendorFromOUI(d.MAC.OUI()); v != "Apple" {
		t.Errorf("iOS vendor = %q", v)
	}
}

func TestArtifactsRoundTripToInference(t *testing.T) {
	root := rng.New(5)
	// For unambiguous devices with stable fingerprints, the pipeline
	// must recover the OS.
	for _, os := range []apps.OS{apps.OSWindows, apps.OSiOS, apps.OSMacOSX, apps.OSAndroid, apps.OSChromeOS, apps.OSPlayStation, apps.OSBlackBerry} {
		d := New(os, epoch.Jan2015, 7, root.Split(os.String()))
		d.Ambiguous = false
		dhcp, uas := d.Artifacts(root.Split("art" + os.String()))
		got := apps.InferOS(d.MAC.OUI(), dhcp, uas)
		if got != os {
			t.Errorf("inference for %v = %v", os, got)
		}
	}
}

func TestAmbiguousDeviceInfersUnknown(t *testing.T) {
	root := rng.New(6)
	d := New(apps.OSWindows, epoch.Jan2015, 1, root.Split("d"))
	d.Ambiguous = true
	dhcp, uas := d.Artifacts(root.Split("a"))
	if got := apps.InferOS(d.MAC.OUI(), dhcp, uas); got != apps.OSUnknown {
		t.Errorf("ambiguous device inferred %v", got)
	}
}

func TestAssociationBand(t *testing.T) {
	root := rng.New(7)
	d24 := New(apps.OSBlackBerry, epoch.Jan2014, 1, root.Split("bb"))
	d24.Caps.FiveGHz = false
	d24.Caps.AC = false
	if d24.AssociationBand(40, 40, root) != dot11.Band24 {
		t.Error("2.4-only client chose 5 GHz")
	}
	cap5 := New(apps.OSMacOSX, epoch.Jan2015, 2, root.Split("mac"))
	cap5.Caps.FiveGHz = true
	// Weak 5 GHz: always 2.4.
	for i := 0; i < 50; i++ {
		if cap5.AssociationBand(40, 10, root) != dot11.Band24 {
			t.Fatal("client with weak 5 GHz signal chose 5 GHz")
		}
	}
	// Strong 5 GHz: mostly 5 GHz.
	n5 := 0
	for i := 0; i < 1000; i++ {
		if cap5.AssociationBand(40, 35, root) == dot11.Band5 {
			n5++
		}
	}
	if n5 < 650 || n5 > 850 {
		t.Errorf("strong-5GHz association rate = %d/1000, want ~750", n5)
	}
}

func TestUsageScalesFollowTable3(t *testing.T) {
	// Mac OS X devices consume roughly twice what Windows devices do,
	// and Windows several times more than Android (Section 3.2).
	mac := usageScale(apps.OSMacOSX, epoch.Jan2015)
	win := usageScale(apps.OSWindows, epoch.Jan2015)
	android := usageScale(apps.OSAndroid, epoch.Jan2015)
	if r := mac / win; r < 1.7 || r > 2.3 {
		t.Errorf("mac/windows usage ratio = %.2f, want ~2", r)
	}
	if r := win / android; r < 4 || r > 9 {
		t.Errorf("windows/android usage ratio = %.2f, want ~6", r)
	}
}

func TestWeeklyFlowsCalibration(t *testing.T) {
	root := rng.New(8)
	catalog := apps.Catalog()
	const n = 4000
	var total float64
	netflixUsers, netflixBytes := 0, 0.0
	for i := 0; i < n; i++ {
		d := NewFromMix(epoch.Jan2015, uint64(i), root.SplitN("dev", i))
		flows := d.WeeklyFlows(epoch.Jan2015, catalog, root.SplitN("usage", i))
		hadNetflix := false
		for _, f := range flows {
			b := float64(f.UpBytes + f.DownBytes)
			total += b
			if f.App.Name == "Netflix" {
				hadNetflix = true
				netflixBytes += b
			}
		}
		if hadNetflix {
			netflixUsers++
		}
	}
	meanMB := total / n / 1e6
	// Fleet mean is 367 MB/client; the log-normal tail makes the sample
	// mean noisy, so accept a wide band.
	if meanMB < 150 || meanMB > 800 {
		t.Errorf("fleet mean = %.0f MB/client, want ~367", meanMB)
	}
	// Netflix penetration ~2.9%.
	pen := float64(netflixUsers) / n
	if pen < 0.01 || pen > 0.06 {
		t.Errorf("netflix penetration = %.3f, want ~0.029", pen)
	}
}

func TestWeeklyFlows2014Smaller(t *testing.T) {
	root := rng.New(9)
	catalog := apps.Catalog()
	var b14, b15 float64
	const n = 3000
	for i := 0; i < n; i++ {
		d14 := NewFromMix(epoch.Jan2014, uint64(i), root.SplitN("d14", i))
		for _, f := range d14.WeeklyFlows(epoch.Jan2014, catalog, root.SplitN("u14", i)) {
			b14 += float64(f.UpBytes + f.DownBytes)
		}
		d15 := NewFromMix(epoch.Jan2015, uint64(i), root.SplitN("d15", i))
		for _, f := range d15.WeeklyFlows(epoch.Jan2015, catalog, root.SplitN("u15", i)) {
			b15 += float64(f.UpBytes + f.DownBytes)
		}
	}
	if b15 <= b14 {
		t.Errorf("per-client usage did not grow: 2014=%.0f 2015=%.0f", b14, b15)
	}
}

func TestGeneratedFlowsClassifyCorrectly(t *testing.T) {
	root := rng.New(10)
	c := apps.NewClassifier()
	catalog := apps.Catalog()
	misses := 0
	totalNamed := 0
	for i := 0; i < 300; i++ {
		d := NewFromMix(epoch.Jan2015, uint64(i), root.SplitN("dev", i))
		for _, fs := range d.WeeklyFlows(epoch.Jan2015, catalog, root.SplitN("u", i)) {
			meta := BuildMeta(fs, apps.UserAgentFor(d.OS))
			got := c.Classify(meta)
			if apps.IsMiscBucket(fs.App.Name) {
				// Misc traffic must land in SOME misc bucket of the
				// right family.
				if !apps.IsMiscBucket(got.App) {
					t.Errorf("misc flow (%s) classified as %q", fs.App.Name, got.App)
				}
				continue
			}
			totalNamed++
			if got.App != fs.App.Name {
				misses++
				if misses < 5 {
					t.Logf("miss: %s -> %s (host %q port %d rule %s)", fs.App.Name, got.App, fs.Host, fs.Port, got.Rule)
				}
			}
		}
	}
	if totalNamed == 0 {
		t.Fatal("no named flows generated")
	}
	if rate := float64(misses) / float64(totalNamed); rate > 0.02 {
		t.Errorf("named-app misclassification rate = %.3f (%d/%d)", rate, misses, totalNamed)
	}
}

func TestMiscBucketsClassifyToThemselves(t *testing.T) {
	root := rng.New(11)
	c := apps.NewClassifier()
	byName := apps.CatalogByName()
	for _, name := range []string{apps.MiscWeb, apps.MiscSecureWeb, apps.MiscVideo, apps.MiscAudio, apps.NonWebTCP, apps.MiscUDP, apps.EncryptedTCP} {
		fs := FlowSpec{App: byName[name], Proto: byName[name].Proto, Secure: byName[name].Secure}
		fillEndpoint(&fs, root.Split(name))
		got := c.Classify(BuildMeta(fs, ""))
		if got.App != name {
			t.Errorf("%s flow classified as %q", name, got.App)
		}
	}
}

func TestMeanBytesPerUserNetflix(t *testing.T) {
	byName := apps.CatalogByName()
	m := meanBytesPerUser(byName["Netflix"], epoch.Jan2015)
	// "each client consumed nearly 1.2 GB in a week" (Section 3.3).
	if m < 0.9e9 || m > 1.5e9 {
		t.Errorf("Netflix mean = %.2g bytes/user-week, want ~1.2e9", m)
	}
}

func TestMeanBytesDropcamUploadHeavy(t *testing.T) {
	byName := apps.CatalogByName()
	dc := byName["Dropcam"]
	m := meanBytesPerUser(dc, epoch.Jan2015)
	// ~2.8 GB per client per week.
	if m < 2e9 || m > 4e9 {
		t.Errorf("Dropcam mean = %.2g", m)
	}
	if dc.DownloadFrac > 0.1 {
		t.Errorf("Dropcam download frac = %v, want ~0.05 (uploads 19x)", dc.DownloadFrac)
	}
}

func TestBuildMetaArtifacts(t *testing.T) {
	byName := apps.CatalogByName()
	fs := FlowSpec{App: byName["Netflix"], Host: "www.netflix.com", Port: 443, Proto: apps.TCP, Secure: true}
	m := BuildMeta(fs, "")
	if len(m.ClientHello) == 0 || len(m.DNSQuery) == 0 || len(m.HTTPHead) != 0 {
		t.Errorf("TLS meta = hello:%d dns:%d http:%d", len(m.ClientHello), len(m.DNSQuery), len(m.HTTPHead))
	}
	fs2 := FlowSpec{App: byName["CNN"], Host: "www.cnn.com", Port: 80, Proto: apps.TCP}
	m2 := BuildMeta(fs2, apps.UserAgentFor(apps.OSWindows))
	if len(m2.HTTPHead) == 0 || len(m2.ClientHello) != 0 {
		t.Error("HTTP meta missing head")
	}
}

func BenchmarkNewDevice(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		NewFromMix(epoch.Jan2015, uint64(i), root.SplitN("d", i))
	}
}

func BenchmarkWeeklyFlows(b *testing.B) {
	root := rng.New(2)
	catalog := apps.Catalog()
	d := NewFromMix(epoch.Jan2015, 1, root.Split("d"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WeeklyFlows(epoch.Jan2015, catalog, root.SplitN("u", i))
	}
}
