package client

import (
	"fmt"
	"math"

	"wlanscale/internal/apps"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rng"
)

// Fleet-wide calibration constants from the paper: total weekly bytes
// and client counts per usage epoch (Table 3's "All" row).
const (
	TotalBytes2015   = 1950e12
	TotalBytes2014   = TotalBytes2015 / 1.62
	TotalClients2015 = 5578126
	TotalClients2014 = 4070000
)

// FlowSpec is one generated flow: what the client will actually do on
// the network during the measurement week. The traffic emitter turns a
// FlowSpec into wire artifacts (DNS query, TLS ClientHello or HTTP head)
// that the AP pipeline classifies — generation and classification are
// deliberately separated so classifier errors show up in the tables.
type FlowSpec struct {
	// App is the ground-truth application (not visible to the
	// pipeline).
	App apps.AppInfo
	// Host is the server hostname the flow contacts ("" for flows with
	// no resolvable name, e.g. raw TCP or P2P).
	Host string
	// Port is the server port.
	Port uint16
	// Proto is the transport.
	Proto apps.Proto
	// Secure selects TLS (SNI) vs plain HTTP artifacts.
	Secure bool
	// ContentType is the response content type for HTTP flows that
	// carry one (drives the misc video/audio buckets).
	ContentType string
	// UpBytes and DownBytes are the flow's weekly byte totals.
	UpBytes, DownBytes uint64
}

// appAffinity returns a relative preference multiplier for an OS using
// an app, normalized elsewhere so fleet-wide participation stays at the
// catalog's ClientFrac. Only ecosystem-bound apps need entries.
func appAffinity(app string, os apps.OS) float64 {
	switch app {
	case "iTunes", "Apple file sharing", "apple.com":
		switch os {
		case apps.OSiOS, apps.OSMacOSX:
			return 2.0
		case apps.OSWindows:
			return 0.4
		default:
			return 0.1
		}
	case "Windows file sharing", "microsoft.com":
		switch os {
		case apps.OSWindows, apps.OSWindowsMobile:
			return 2.2
		case apps.OSMacOSX, apps.OSLinux:
			return 0.4
		default:
			return 0.15
		}
	case "Microsoft Skydrive":
		if os == apps.OSWindows || os == apps.OSWindowsMobile {
			return 2.5
		}
		return 0.4
	case "Xbox Live", "PlayStation Network", "Steam":
		switch os {
		case apps.OSPlayStation:
			return 20
		case apps.OSWindows:
			return 1.8
		case apps.OSiOS, apps.OSAndroid, apps.OSBlackBerry, apps.OSWindowsMobile:
			return 0.2
		default:
			return 0.5
		}
	case "Instagram", "Snapchat":
		if os.IsMobile() {
			return 2.0
		}
		return 0.3
	case "Crashplan", "Backblaze", "Carbonite":
		switch os {
		case apps.OSMacOSX, apps.OSWindows, apps.OSLinux:
			return 2.5
		default:
			return 0.05
		}
	case "Dropcam":
		// Dropcam cameras are embedded Linux boxes.
		switch os {
		case apps.OSLinux, apps.OSUnknown, apps.OSOther:
			return 12
		default:
			return 0.05
		}
	default:
		return 1
	}
}

// affinityNorms caches, per app, the expected affinity under the 2015 OS
// mix so participation can be renormalized.
var affinityNorms = computeAffinityNorms()

func computeAffinityNorms() map[string]float64 {
	weights := OSMix(epoch.Jan2015)
	oses := OSMixOSes()
	var total float64
	for _, w := range weights {
		total += w
	}
	norms := make(map[string]float64)
	for _, app := range apps.Catalog() {
		var e float64
		for i, os := range oses {
			e += weights[i] / total * appAffinity(app.Name, os)
		}
		if e <= 0 {
			e = 1
		}
		norms[app.Name] = e
	}
	return norms
}

// meanBytesPerUser returns the calibrated mean weekly bytes a
// participating client moves through the app in the given epoch.
func meanBytesPerUser(app apps.AppInfo, e epoch.Epoch) float64 {
	if app.ClientFrac <= 0 {
		return 0
	}
	appBytes2015 := app.ShareOfBytes * TotalBytes2015
	if e == epoch.Jan2014 {
		appBytes2014 := appBytes2015 / app.YoYBytes
		return appBytes2014 / (app.ClientFrac * TotalClients2014)
	}
	return appBytes2015 / (app.ClientFrac * TotalClients2015)
}

// WeeklyFlows generates the device's flows for one measurement week.
// The catalog argument is typically apps.Catalog(); passing a subset
// narrows the simulation for focused tests.
func (d *Device) WeeklyFlows(e epoch.Epoch, catalog []apps.AppInfo, src *rng.Source) []FlowSpec {
	var flows []FlowSpec
	for _, app := range catalog {
		p := app.ClientFrac * appAffinity(app.Name, d.OS) / affinityNorms[app.Name]
		if !src.Bool(p) {
			continue
		}
		mean := meanBytesPerUser(app, e) * d.UsageScale
		if mean <= 0 {
			continue
		}
		// Log-normal per-user draw around the calibrated mean.
		const sigma = 1.5
		total := src.LogNormal(math.Log(mean)-sigma*sigma/2, sigma)
		if total < 1024 {
			total = 1024
		}
		nFlows := 1 + src.IntN(4)
		shares := make([]float64, nFlows)
		var sum float64
		for i := range shares {
			shares[i] = src.Exp(1)
			sum += shares[i]
		}
		for i := 0; i < nFlows; i++ {
			fbytes := total * shares[i] / sum
			downFrac := app.DownloadFrac
			// Small per-flow wobble, clamped.
			downFrac += src.Normal(0, 0.03)
			if downFrac < 0 {
				downFrac = 0
			}
			if downFrac > 1 {
				downFrac = 1
			}
			fs := FlowSpec{
				App:       app,
				Proto:     app.Proto,
				Secure:    app.Secure,
				DownBytes: uint64(fbytes * downFrac),
				UpBytes:   uint64(fbytes * (1 - downFrac)),
			}
			fillEndpoint(&fs, src)
			flows = append(flows, fs)
		}
	}
	return flows
}

// fillEndpoint picks the host/port artifacts for the flow, including the
// synthetic unknown hosts that land in the misc buckets.
func fillEndpoint(fs *FlowSpec, src *rng.Source) {
	app := fs.App
	switch app.Name {
	case apps.MiscWeb:
		fs.Host = randomUnknownHost(src)
		fs.Port = 80
	case apps.MiscSecureWeb:
		fs.Host = randomUnknownHost(src)
		fs.Port = 443
		fs.Secure = true
	case apps.MiscVideo:
		fs.Host = randomUnknownHost(src)
		fs.Port = 80
		fs.ContentType = "video/mp4"
	case apps.MiscAudio:
		fs.Host = randomUnknownHost(src)
		fs.Port = 80
		fs.ContentType = "audio/mpeg"
	case apps.NonWebTCP:
		fs.Port = uint16(10000 + src.IntN(40000))
	case apps.MiscUDP:
		fs.Proto = apps.UDP
		fs.Port = uint16(10000 + src.IntN(40000))
	case apps.EncryptedTCP:
		fs.Host = "" // TLS without SNI
		fs.Port = uint16(8000 + src.IntN(2000))
		fs.Secure = true
	default:
		if len(app.Hosts) > 0 {
			fs.Host = "www." + app.Hosts[src.IntN(len(app.Hosts))]
		}
		switch {
		case len(app.Ports) > 0:
			fs.Port = app.Ports[src.IntN(len(app.Ports))]
		case app.Secure:
			fs.Port = 443
		default:
			fs.Port = 80
		}
	}
}

func randomUnknownHost(src *rng.Source) string {
	return fmt.Sprintf("host%d.site-%04d.example", src.IntN(1000), src.IntN(10000))
}

// BuildMeta turns a FlowSpec into the wire artifacts the AP slow path
// sees: the preceding DNS lookup plus either a TLS ClientHello or an
// HTTP request head. userAgent may be empty.
func BuildMeta(fs FlowSpec, userAgent string) apps.FlowMeta {
	m := apps.FlowMeta{Proto: fs.Proto, ServerPort: fs.Port}
	if fs.Host != "" {
		m.DNSQuery = apps.BuildDNSQuery(0x2b2b, fs.Host)
	}
	switch {
	case fs.Secure:
		m.ClientHello = apps.BuildClientHello(fs.Host)
	case fs.Host != "":
		m.HTTPHead = apps.BuildHTTPRequest("GET", fs.Host, "/", userAgent, fs.ContentType)
	}
	return m
}
