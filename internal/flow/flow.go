// Package flow implements the per-client flow table each access point
// maintains (paper Section 2.1): TCP/UDP flows keyed by client MAC,
// tagged with the application the slow-path classifier identified, and
// rolled up into per-client, per-application byte counters that the
// backend harvests. It also assembles the Click pipeline that routes
// slow-path packets into the classifier.
package flow

import (
	"sort"
	"sync"

	"wlanscale/internal/apps"
	"wlanscale/internal/click"
	"wlanscale/internal/dot11"
)

// Key identifies a flow.
type Key struct {
	Client dot11.MAC
	FlowID uint64
}

// Flow is one tracked flow.
type Flow struct {
	Key       Key
	App       string
	Category  apps.Category
	UpBytes   uint64
	DownBytes uint64
	// UserAgent observed on the flow, forwarded to OS inference.
	UserAgent string

	counted bool // whether the flow was counted toward AppUsage.Flows
}

// Total returns the flow's total bytes.
func (f *Flow) Total() uint64 { return f.UpBytes + f.DownBytes }

// AppUsage is the per-application byte rollup for one client.
type AppUsage struct {
	App       string
	Category  apps.Category
	UpBytes   uint64
	DownBytes uint64
	Flows     int
}

// Total returns the usage's total bytes.
func (u *AppUsage) Total() uint64 { return u.UpBytes + u.DownBytes }

// ClientUsage aggregates one client's week.
type ClientUsage struct {
	Client dot11.MAC
	Apps   map[string]*AppUsage
	// UserAgents collects distinct user agents seen, for OS inference.
	UserAgents []string
	// DHCPFingerprints collects distinct option-55 lists seen.
	DHCPFingerprints [][]byte
}

// Total returns the client's total bytes across applications.
func (c *ClientUsage) Total() uint64 {
	var t uint64
	for _, u := range c.Apps {
		t += u.Total()
	}
	return t
}

// Table tracks flows and client usage for one access point. It is safe
// for concurrent use.
type Table struct {
	classifier *apps.Classifier

	mu      sync.Mutex
	flows   map[Key]*Flow
	clients map[dot11.MAC]*ClientUsage
}

// NewTable creates a flow table using the given classifier.
func NewTable(classifier *apps.Classifier) *Table {
	return &Table{
		classifier: classifier,
		flows:      make(map[Key]*Flow),
		clients:    make(map[dot11.MAC]*ClientUsage),
	}
}

// Observe handles a slow-path packet: it classifies the flow from its
// artifacts and creates or retags the flow entry.
func (t *Table) Observe(client dot11.MAC, flowID uint64, meta apps.FlowMeta) *Flow {
	res := t.classifier.Classify(meta)
	t.mu.Lock()
	defer t.mu.Unlock()
	k := Key{Client: client, FlowID: flowID}
	f, ok := t.flows[k]
	if !ok {
		f = &Flow{Key: k}
		t.flows[k] = f
	}
	f.App = res.App
	f.Category = res.Category
	if res.UserAgent != "" {
		f.UserAgent = res.UserAgent
		t.clientLocked(client).addUserAgent(res.UserAgent)
	}
	return f
}

// AddBytes accounts fast-path bytes to a flow. Flows never observed on
// the slow path (no SYN seen, e.g. the AP rebooted mid-flow) are lazily
// created and classified by port alone when first counted.
func (t *Table) AddBytes(client dot11.MAC, flowID uint64, proto apps.Proto, serverPort uint16, up, down uint64) {
	t.mu.Lock()
	k := Key{Client: client, FlowID: flowID}
	f, ok := t.flows[k]
	t.mu.Unlock()
	if !ok {
		f = t.Observe(client, flowID, apps.FlowMeta{Proto: proto, ServerPort: serverPort})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f.UpBytes += up
	f.DownBytes += down
	cu := t.clientLocked(client)
	u, ok := cu.Apps[f.App]
	if !ok {
		u = &AppUsage{App: f.App, Category: f.Category}
		cu.Apps[f.App] = u
	}
	if !f.counted {
		u.Flows++
		f.counted = true
	}
	u.UpBytes += up
	u.DownBytes += down
}

// ObserveDHCP records a DHCP fingerprint for the client.
func (t *Table) ObserveDHCP(client dot11.MAC, params []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clientLocked(client).addFingerprint(params)
}

func (t *Table) clientLocked(client dot11.MAC) *ClientUsage {
	cu, ok := t.clients[client]
	if !ok {
		cu = &ClientUsage{Client: client, Apps: make(map[string]*AppUsage)}
		t.clients[client] = cu
	}
	return cu
}

func (c *ClientUsage) addUserAgent(ua string) {
	for _, existing := range c.UserAgents {
		if existing == ua {
			return
		}
	}
	c.UserAgents = append(c.UserAgents, ua)
}

func (c *ClientUsage) addFingerprint(params []byte) {
	for _, existing := range c.DHCPFingerprints {
		if string(existing) == string(params) {
			return
		}
	}
	cp := make([]byte, len(params))
	copy(cp, params)
	c.DHCPFingerprints = append(c.DHCPFingerprints, cp)
}

// NumFlows returns the number of tracked flows.
func (t *Table) NumFlows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// NumClients returns the number of clients with usage.
func (t *Table) NumClients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.clients)
}

// Snapshot returns the per-client usage records, sorted by client MAC
// for determinism, and clears nothing (harvest is idempotent; the
// backend deduplicates by polling period).
func (t *Table) Snapshot() []*ClientUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ClientUsage, 0, len(t.clients))
	for _, cu := range t.clients {
		out = append(out, cu)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Client.Uint64() < out[j].Client.Uint64()
	})
	return out
}

// InferOS runs the Section 3.2 heuristics over everything the table has
// seen for the client.
func (t *Table) InferOS(client dot11.MAC) apps.OS {
	t.mu.Lock()
	cu, ok := t.clients[client]
	t.mu.Unlock()
	if !ok {
		return apps.OSUnknown
	}
	return apps.InferOS(client.OUI(), cu.DHCPFingerprints, cu.UserAgents)
}

// Pipeline assembles the AP data path: an input counter, then the
// fast/slow path switch. Fast-path packets are counted into the flow's
// byte totals; slow-path packets go through the classifier. It mirrors
// the element structure of Section 2.1.
type Pipeline struct {
	table *Table
	// In counts everything entering the data path.
	In *click.Counter
	// SlowPath counts packets diverted for inspection.
	SlowPath *click.Counter
	root     click.Element
}

// NewPipeline builds the data path over a flow table.
func NewPipeline(table *Table) *Pipeline {
	p := &Pipeline{
		table:    table,
		In:       click.NewCounter("in"),
		SlowPath: click.NewCounter("slow-path"),
	}
	slow := click.NewChain("slow",
		p.SlowPath,
		click.Func{Label: "classify", Fn: func(pkt *click.Packet) {
			table.Observe(pkt.Client, pkt.FlowID, *pkt.Meta)
		}},
	)
	fast := click.Func{Label: "count", Fn: func(pkt *click.Packet) {
		var up, down uint64
		if pkt.Upstream {
			up = uint64(pkt.Length)
		} else {
			down = uint64(pkt.Length)
		}
		proto := apps.TCP
		port := uint16(0)
		if pkt.Meta != nil {
			proto, port = pkt.Meta.Proto, pkt.Meta.ServerPort
		}
		table.AddBytes(pkt.Client, pkt.FlowID, proto, port, up, down)
	}}
	p.root = click.NewChain("datapath",
		p.In,
		&click.PathSwitch{Fast: fast, Slow: slow},
	)
	return p
}

// Push sends one packet through the data path.
func (p *Pipeline) Push(pkt *click.Packet) { p.root.Push(pkt) }
