package flow

import (
	"sync"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/click"
	"wlanscale/internal/dot11"
)

var testMAC = dot11.MAC{0xac, 0xbc, 0x32, 0, 0, 1}

func newTestTable() *Table { return NewTable(apps.NewClassifier()) }

func TestObserveClassifies(t *testing.T) {
	tab := newTestTable()
	f := tab.Observe(testMAC, 1, apps.FlowMeta{
		Proto:       apps.TCP,
		ServerPort:  443,
		ClientHello: apps.BuildClientHello("api.netflix.com"),
	})
	if f.App != "Netflix" || f.Category != apps.CatVideoMusic {
		t.Errorf("flow = %+v", f)
	}
	if tab.NumFlows() != 1 {
		t.Errorf("NumFlows = %d", tab.NumFlows())
	}
}

func TestAddBytesAccumulates(t *testing.T) {
	tab := newTestTable()
	tab.Observe(testMAC, 1, apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("www.youtube.com")})
	tab.AddBytes(testMAC, 1, apps.TCP, 443, 1000, 50000)
	tab.AddBytes(testMAC, 1, apps.TCP, 443, 500, 25000)
	snap := tab.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("clients = %d", len(snap))
	}
	u := snap[0].Apps["YouTube"]
	if u == nil {
		t.Fatalf("no YouTube usage: %+v", snap[0].Apps)
	}
	if u.UpBytes != 1500 || u.DownBytes != 75000 {
		t.Errorf("usage = %+v", u)
	}
	if u.Flows != 1 {
		t.Errorf("Flows = %d, want 1 (same flow counted twice)", u.Flows)
	}
	if u.Total() != 76500 || snap[0].Total() != 76500 {
		t.Errorf("totals = %d / %d", u.Total(), snap[0].Total())
	}
}

func TestAddBytesUnseenFlowClassifiedByPort(t *testing.T) {
	tab := newTestTable()
	// No slow-path observation: AP rebooted mid-flow. Port 445 should
	// classify as Windows file sharing.
	tab.AddBytes(testMAC, 9, apps.TCP, 445, 100, 200)
	snap := tab.Snapshot()
	if _, ok := snap[0].Apps["Windows file sharing"]; !ok {
		t.Errorf("apps = %v", snap[0].Apps)
	}
}

func TestDistinctFlowsCounted(t *testing.T) {
	tab := newTestTable()
	for id := uint64(1); id <= 3; id++ {
		tab.Observe(testMAC, id, apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("www.dropbox.com")})
		tab.AddBytes(testMAC, id, apps.TCP, 443, 10, 10)
	}
	u := tab.Snapshot()[0].Apps["Dropbox"]
	if u.Flows != 3 {
		t.Errorf("Flows = %d, want 3", u.Flows)
	}
}

func TestUserAgentCollected(t *testing.T) {
	tab := newTestTable()
	ua := apps.UserAgentFor(apps.OSAndroid)
	meta := apps.FlowMeta{Proto: apps.TCP, ServerPort: 80, HTTPHead: apps.BuildHTTPRequest("GET", "www.cnn.com", "/", ua, "")}
	tab.Observe(testMAC, 1, meta)
	tab.Observe(testMAC, 2, meta) // duplicate UA deduplicated
	snap := tab.Snapshot()
	if len(snap[0].UserAgents) != 1 || snap[0].UserAgents[0] != ua {
		t.Errorf("user agents = %v", snap[0].UserAgents)
	}
}

func TestInferOSFromTable(t *testing.T) {
	tab := newTestTable()
	fp, _ := apps.DHCPFingerprintFor(apps.OSAndroid)
	tab.ObserveDHCP(testMAC, fp)
	tab.ObserveDHCP(testMAC, fp) // dedup
	ua := apps.UserAgentFor(apps.OSAndroid)
	tab.Observe(testMAC, 1, apps.FlowMeta{Proto: apps.TCP, ServerPort: 80, HTTPHead: apps.BuildHTTPRequest("GET", "example.org", "/", ua, "")})
	if got := tab.InferOS(testMAC); got != apps.OSAndroid {
		t.Errorf("InferOS = %v", got)
	}
	if got := tab.InferOS(dot11.MAC{9, 9, 9, 9, 9, 9}); got != apps.OSUnknown {
		t.Errorf("unknown client OS = %v", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	tab := newTestTable()
	macs := []dot11.MAC{
		{5, 0, 0, 0, 0, 1},
		{1, 0, 0, 0, 0, 1},
		{3, 0, 0, 0, 0, 1},
	}
	for i, m := range macs {
		tab.AddBytes(m, uint64(i), apps.TCP, 80, 1, 1)
	}
	snap := tab.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("clients = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Client.Uint64() >= snap[i].Client.Uint64() {
			t.Fatal("snapshot not sorted by MAC")
		}
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := newTestTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mac := dot11.MAC{byte(g), 0, 0, 0, 0, 1}
			for i := 0; i < 200; i++ {
				id := uint64(i % 10)
				tab.Observe(mac, id, apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("www.facebook.com")})
				tab.AddBytes(mac, id, apps.TCP, 443, 10, 100)
			}
		}(g)
	}
	wg.Wait()
	if tab.NumClients() != 8 {
		t.Errorf("clients = %d", tab.NumClients())
	}
	var total uint64
	for _, cu := range tab.Snapshot() {
		total += cu.Total()
	}
	if total != 8*200*110 {
		t.Errorf("total bytes = %d, want %d", total, 8*200*110)
	}
}

func TestPipelineFastSlowSplit(t *testing.T) {
	tab := newTestTable()
	p := NewPipeline(tab)

	meta := &apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("www.instagram.com")}
	// Slow-path packet: the SYN/handshake with artifacts.
	p.Push(&click.Packet{Client: testMAC, FlowID: 7, Length: 300, Meta: meta})
	// Fast-path aggregates.
	p.Push(&click.Packet{Client: testMAC, FlowID: 7, Length: 100000, Upstream: false})
	p.Push(&click.Packet{Client: testMAC, FlowID: 7, Length: 4000, Upstream: true})

	if p.In.Packets() != 3 {
		t.Errorf("in counter = %d", p.In.Packets())
	}
	if p.SlowPath.Packets() != 1 {
		t.Errorf("slow counter = %d", p.SlowPath.Packets())
	}
	u := tab.Snapshot()[0].Apps["Instagram"]
	if u == nil {
		t.Fatalf("apps = %v", tab.Snapshot()[0].Apps)
	}
	if u.DownBytes != 100000 || u.UpBytes != 4000 {
		t.Errorf("usage = %+v", u)
	}
}

func BenchmarkTableAddBytes(b *testing.B) {
	tab := newTestTable()
	tab.Observe(testMAC, 1, apps.FlowMeta{Proto: apps.TCP, ServerPort: 443, ClientHello: apps.BuildClientHello("www.google.com")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddBytes(testMAC, 1, apps.TCP, 443, 10, 100)
	}
}

func BenchmarkPipelinePush(b *testing.B) {
	tab := newTestTable()
	p := NewPipeline(tab)
	pkt := &click.Packet{Client: testMAC, FlowID: 1, Length: 1500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Push(pkt)
	}
}
