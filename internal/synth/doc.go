// Package synth generates the simulated fleet the study measures: the
// 20,667 customer networks of Table 2 spread across industries, their
// access points (MR16 and MR18 populations), their client populations
// per epoch, the RF neighborhoods around each AP (nearby networks,
// personal hotspots, non-WiFi interferers), and the AP-to-AP mesh
// links. One seed determines everything.
//
// The generator produces *environments*; the measurement pipeline
// (scanner, radio counters, probes, flow classifier) is what turns them
// into data. Calibration constants reference the paper's aggregate
// numbers; distribution shapes come from the physical models.
package synth
