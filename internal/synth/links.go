package synth

import (
	"wlanscale/internal/ap"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
)

// FleetLink is one AP-to-AP probe link in the fleet.
type FleetLink struct {
	From, To *ap.AP
	Band     dot11.Band
	Link     *meshprobe.Link
	// DistanceM is the pair separation.
	DistanceM float64
}

// Channel-busy medians per epoch for the link receivers, tracking the
// utilization growth the paper reports between July 2014 and January
// 2015 (Figure 3's degradation; Figure 6's levels).
func linkBusyMedian(band dot11.Band, e epoch.Epoch) float64 {
	if band == dot11.Band24 {
		if e == epoch.Jul2014 {
			return 0.13
		}
		return 0.20
	}
	if e == epoch.Jul2014 {
		return 0.025
	}
	return 0.045
}

// Links generates the fleet's mesh links for one epoch. The link
// population (which pairs exist, their distances, their channels) is
// drawn from epoch-independent streams, so calling Links for July 2014
// and January 2015 yields the same link pairs with only the channel
// load differing — matching the paper's paired-link comparison ("links
// which were reported both six months ago and today").
//
// A link only enters the dataset if its median SNR clears the backend's
// visibility floor: links that never deliver a probe never appear. The
// 5 GHz band's extra attenuation makes far fewer 5 GHz pairs visible,
// reproducing the 16,583 versus 5,650 split without an explicit quota.
func (f *Fleet) Links(e epoch.Epoch) []FleetLink {
	var out []FleetLink
	for _, n := range f.Networks {
		if len(n.APs) < 2 {
			continue
		}
		nsrc := f.root.SplitN("net", n.ID).Split("links")
		for i := 0; i < len(n.APs); i++ {
			for j := 0; j < len(n.APs); j++ {
				if i == j {
					continue
				}
				pairSrc := nsrc.SplitN("pair", i*len(n.APs)+j)
				d := siteDistance(n, i, j, pairSrc.Split("dist"))
				for _, band := range []dot11.Band{dot11.Band24, dot11.Band5} {
					// Links are measured only between co-channel APs
					// ("where they occupied the same channel").
					if band == dot11.Band24 {
						if n.APs[i].Radio24.Channel.Number != n.APs[j].Radio24.Channel.Number {
							continue
						}
					} else if n.APs[i].Radio5.Channel.Number != n.APs[j].Radio5.Channel.Number {
						continue
					}
					eirp := n.APs[i].HW.Radio24.EIRPdBm()
					if band == dot11.Band5 {
						eirp = n.APs[i].HW.Radio5.EIRPdBm()
					}
					busy := linkBusyMedian(band, e) * pairSrc.Split("busy"+band.String()).LogNormalMeanMedian(1, 1.0)
					link := meshprobe.New(n.Env, band, d, eirp, busy,
						pairSrc.Split("link"+band.String()))
					if link.MedianSNRdB() < 3 {
						continue // invisible to the backend
					}
					out = append(out, FleetLink{
						From: n.APs[i], To: n.APs[j],
						Band: band, Link: link, DistanceM: d,
					})
				}
			}
		}
	}
	return out
}
