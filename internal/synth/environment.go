package synth

import (
	"fmt"
	"math"

	"wlanscale/internal/airtime"
	"wlanscale/internal/ap"
	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
)

// Neighbor-density calibration (Table 7). The values are the paper's
// mean *networks per AP*; radios carry multiple SSIDs, so radio counts
// are derived below.
const (
	// Mean non-Meraki networks per AP, 2.4 GHz.
	nets24Jan2015 = 55.47
	nets24Jul2014 = 28.60
	// Hotspot share of 2.4 GHz networks.
	hotspotShare24Jan2015 = 0.194 // 102,344 / 527,087
	hotspotShare24Jul2014 = 0.244 // 56,293 / 230,628
	// Mean non-Meraki networks per AP, 5 GHz.
	nets5Jan2015 = 3.68
	nets5Jul2014 = 2.47
	// Hotspot share of 5 GHz networks.
	hotspotShare5 = 0.017

	// Mean SSIDs per regular neighbor radio (1-4 uniform).
	meanSSIDsPerRadio = 2.5
)

// Channel popularity for neighbor networks (Figure 2): channel 1 holds
// about 37% more networks than 6 or 11, with a small fraction parked on
// the overlapping channels.
var neighborChannelWeights24 = map[int]float64{
	1: 1.37, 6: 1.0, 11: 1.0,
	2: 0.06, 3: 0.06, 4: 0.06, 5: 0.06,
	7: 0.06, 8: 0.06, 9: 0.06, 10: 0.06,
}

// 5 GHz neighbor channels: UNII-1 dominant, UNII-3 second, DFS rare.
var neighborChannelWeights5 = map[int]float64{
	36: 1.0, 40: 0.9, 44: 0.85, 48: 0.8,
	149: 0.7, 153: 0.6, 157: 0.6, 161: 0.55, 165: 0.3,
	52: 0.12, 56: 0.1, 60: 0.1, 64: 0.1,
	100: 0.04, 104: 0.03, 108: 0.03, 112: 0.03, 116: 0.03,
	120: 0.02, 132: 0.02, 136: 0.02, 140: 0.02,
}

func pickNeighborChannel(band dot11.Band, src *rng.Source) dot11.Channel {
	weights := neighborChannelWeights24
	if band == dot11.Band5 {
		weights = neighborChannelWeights5
	}
	chans := dot11.Channels(band)
	w := make([]float64, len(chans))
	for i, ch := range chans {
		w[i] = weights[ch.Number]
	}
	return chans[src.Categorical(w)]
}

// meanFleetDensity is the expected Network.Density across the industry
// mix, used to normalize neighbor intensities so fleet means hit the
// Table 7 targets.
var meanFleetDensity = computeMeanFleetDensity()

func computeMeanFleetDensity() float64 {
	var num, den float64
	for _, ind := range Industries() {
		prof := industryProfiles[ind.Name]
		// Neighbor draws happen per AP, so industries weigh in by
		// their expected AP population (2 + Poisson(2.5*apScale) per
		// network), not by network count.
		apsPerNet := 2 + 2.5*prof.apScale
		num += float64(ind.Networks) * apsPerNet * prof.density
		den += float64(ind.Networks) * apsPerNet
	}
	// Per-network lognormal(median 1, sigma 0.8) has mean e^{0.32}.
	return num / den * math.Exp(0.8*0.8/2)
}

// APEnvironment is everything around one access point: the ground-truth
// beacons its scanner can try to decode, and the airtime sources its
// radios measure. Both views are built from the same neighbor draw, so
// Table 7 / Figure 2 stay consistent with Figures 6-10.
type APEnvironment struct {
	AP *ap.AP
	// Neighbors holds the on-air beacons per band.
	Neighbors24, Neighbors5 []ap.NeighborBSS
	// Hood is the airtime view (neighbor beacons + data + non-WiFi +
	// this AP's own client traffic).
	Hood *airtime.Neighborhood
	// TrueHotspots24 counts ground-truth hotspot networks at 2.4 GHz.
	TrueHotspots24 int
	// OwnDuty24 and OwnDuty5 are the AP's own-BSS transmit duty
	// (beacons plus serving its clients), used when driving the radio
	// counters.
	OwnDuty24, OwnDuty5 float64
}

// neighborRadio is one drawn neighbor device.
type neighborRadio struct {
	hotspot bool
	band    dot11.Band
	ch      dot11.Channel
	ssids   int
	rxDBm   float64
	b11Frac float64
	keepU   float64 // uniform draw deciding Jul-2014 membership
}

// Environment builds the RF environment around AP apIdx of network n
// for the given measurement epoch. The Jul 2014 environment is a strict
// subset of the Jan 2015 one (networks accrete over time), drawn from
// the same stream so the six-month comparison is apples-to-apples.
func (f *Fleet) Environment(n *Network, apIdx int, e epoch.Epoch) (*APEnvironment, error) {
	if apIdx < 0 || apIdx >= len(n.APs) {
		return nil, fmt.Errorf("synth: ap index %d out of range", apIdx)
	}
	a := n.APs[apIdx]
	src := f.root.SplitN("net", n.ID).SplitN("env", apIdx)

	env := &APEnvironment{AP: a, Hood: airtime.NewNeighborhood()}
	densityNorm := n.Density / meanFleetDensity

	radios := drawNeighborRadios(dot11.Band24, densityNorm, src.Split("n24"))
	radios = append(radios, drawNeighborRadios(dot11.Band5, densityNorm, src.Split("n5"))...)

	hsOUIs := apps.HotspotOUIs()
	serial := src.Split("serial")
	for i, r := range radios {
		if e == epoch.Jul2014 && !keptInJul2014(r) {
			continue
		}
		// Build the scan view: one beacon per SSID, distinct BSSIDs.
		var oui [3]byte
		vendorSSID := ""
		if r.hotspot {
			oui = hsOUIs[serial.IntN(len(hsOUIs))]
			vendorSSID = fmt.Sprintf("MiFi-%04d", serial.IntN(10000))
		} else {
			// A generic non-Meraki enterprise/home vendor OUI.
			oui = [3]byte{0x00, 0x1c, 0xbf}
			if serial.Bool(0.3) {
				oui = [3]byte{0x00, 0x1e, 0x8c}
			}
		}
		base := dot11.MACFromUint64(oui, uint64(n.ID)<<20|uint64(apIdx)<<12|uint64(i))
		for s := 0; s < r.ssids; s++ {
			bssid := base
			bssid[5] ^= byte(s)
			ssid := vendorSSID
			if ssid == "" {
				ssid = fmt.Sprintf("nbr-%d-%d", i, s)
			}
			caps := dot11.Capabilities{G: true, N: true, Streams: 2}
			if r.band == dot11.Band5 {
				caps = dot11.Capabilities{N: true, FiveGHz: true, Streams: 2}
			}
			frame := dot11.NewBeacon(bssid, ssid, r.ch.Number, caps.Normalize()).Marshal()
			nb := ap.NeighborBSS{Frame: frame, Band: r.band, RxPowerDBm: r.rxDBm}
			if r.band == dot11.Band24 {
				env.Neighbors24 = append(env.Neighbors24, nb)
			} else {
				env.Neighbors5 = append(env.Neighbors5, nb)
			}
		}
		if r.hotspot && r.band == dot11.Band24 {
			env.TrueHotspots24++
		}
		// Build the airtime view: the radio's beacons plus its data
		// traffic.
		env.Hood.Add(airtime.NewBeaconSource(r.ch, r.rxDBm, r.ssids, r.b11Frac))
		env.Hood.Add(airtime.NewDataSource(r.ch, 20, r.rxDBm, src.SplitN("data", i)))
	}

	// Peer Meraki APs from the same network are audible too; the
	// analysis must exclude them from Table 7, so they are present in
	// the scan view. Unlike distant strangers, peers are close and
	// carry real client traffic: their loud, diurnal transmissions are
	// a large share of what a scanning radio measures, independent of
	// how many *foreign* networks are around — one of the reasons
	// utilization does not track the neighbor count.
	perAPClients := float64(n.NumClients) / float64(len(n.APs))
	for peerIdx, peer := range n.APs {
		if peerIdx == apIdx {
			continue
		}
		d := siteDistance(n, apIdx, peerIdx, src.SplitN("peerd", peerIdx))
		psrc := src.SplitN("peertraffic", peerIdx)
		for _, band := range []dot11.Band{dot11.Band24, dot11.Band5} {
			eirp := peer.HW.Radio24.EIRPdBm()
			if band == dot11.Band5 {
				eirp = peer.HW.Radio5.EIRPdBm()
			}
			rx := rf.ReceivedPowerDBm(n.Env, band, eirp, d) + src.Normal(0, 4)
			nb := ap.NeighborBSS{Frame: peer.Beacon(0, band), Band: band, RxPowerDBm: rx}
			if band == dot11.Band24 {
				env.Neighbors24 = append(env.Neighbors24, nb)
				env.Hood.Add(airtime.NewBeaconSource(peer.Radio24.Channel, rx, len(peer.SSIDs), 0.1))
				duty := psrc.LogNormalMeanMedian(0.004*perAPClients/10+0.04, 0.8)
				env.Hood.Add(airtime.NewClientTrafficSource(peer.Radio24.Channel, rx, duty, 0.9, psrc.Split("t24")))
			} else {
				env.Neighbors5 = append(env.Neighbors5, nb)
				env.Hood.Add(airtime.NewBeaconSource(peer.Radio5.Channel, rx, len(peer.SSIDs), 0))
				duty := psrc.LogNormalMeanMedian(0.002*perAPClients/10+0.012, 0.8)
				env.Hood.Add(airtime.NewClientTrafficSource(peer.Radio5.Channel, rx, duty, 0.9, psrc.Split("t5")))
			}
		}
	}

	// Non-WiFi interferers.
	for i, in := range rf.TypicalInterferers(densityNorm, src.Split("interf")) {
		band := dot11.Band24
		if in.Band() == dot11.Band5 {
			band = dot11.Band5
		}
		rx := rf.ReceivedPowerDBm(n.Env, band, in.EIRPdBm, in.DistanceM)
		// Approximate the interferer as a non-WiFi source on its
		// nearest channel with its duty scaled by activity.
		ch := nearestChannel(band, in.CenterMHz)
		duty := in.DutyCycle * in.ActiveProb * in.OverlapWithChannel(ch)
		if duty > 0 {
			env.Hood.Add(airtime.NewNonWiFiSource(ch, int(in.WidthMHz)+1, rx, duty, src.SplitN("nw", i)))
		}
	}

	// The AP's own transmissions (beacons plus management) enter the
	// radio counters via OwnDuty; its own-BSS *client* traffic is a
	// neighborhood source at client receive levels, visible both to the
	// serving radio and to the scanning radio. Most client traffic
	// rides 2.4 GHz (Figure 1).
	own := src.Split("own")
	env.OwnDuty24 = clamp01(a.BeaconDuty(dot11.Band24, 0.1) + 0.005)
	env.OwnDuty5 = clamp01(a.BeaconDuty(dot11.Band5, 0) + 0.003)
	// Own-cell traffic is received near the client uplink level: strong
	// enough for the serving radio's CCA, but usually below the scan
	// radio's energy-detect threshold (own downlink is blanked on the
	// scan radio — it shares the board with the transmitter).
	clientDuty24 := own.LogNormalMeanMedian(0.004*perAPClients/10+0.04, 0.8)
	clientDuty5 := own.LogNormalMeanMedian(0.002*perAPClients/10+0.012, 0.8)
	env.Hood.Add(airtime.NewClientTrafficSource(a.Radio24.Channel, -63, clientDuty24, 0.9, own.Split("d24")))
	env.Hood.Add(airtime.NewClientTrafficSource(a.Radio5.Channel, -63, clientDuty5, 0.9, own.Split("d5")))
	return env, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.9 {
		return 0.9
	}
	return v
}

// drawNeighborRadios draws the Jan-2015 neighbor radio population for
// one band, tagging each with the uniform draw that decides whether it
// already existed in July 2014.
func drawNeighborRadios(band dot11.Band, densityNorm float64, src *rng.Source) []neighborRadio {
	var hotspotMean, regularRadioMean float64
	if band == dot11.Band24 {
		hotspotMean = nets24Jan2015 * hotspotShare24Jan2015
		regularRadioMean = nets24Jan2015 * (1 - hotspotShare24Jan2015) / meanSSIDsPerRadio
	} else {
		hotspotMean = nets5Jan2015 * hotspotShare5
		regularRadioMean = nets5Jan2015 * (1 - hotspotShare5) / meanSSIDsPerRadio
	}
	// In very dense environments most of the *extra* detected networks
	// are far away — heard through floors and walls (the paper's
	// Manhattan-skyscraper anecdote, Section 6.1). Their beacons decode
	// but their energy rarely clears the ED threshold, which is why
	// utilization does not track the neighbor count (Figures 7/8).
	rxShift := 0.0
	if densityNorm > 1 {
		rxShift = -4 * math.Log2(densityNorm)
		if rxShift < -12 {
			rxShift = -12
		}
	}
	// Received powers follow a near/far mixture: roughly a fifth of
	// neighbor radios share the floor (loud enough to spill energy into
	// adjacent channels), the rest are heard through walls and floors.
	drawRx := func() float64 {
		if src.Bool(0.22) {
			return src.Normal(-58+rxShift, 6)
		}
		return src.Normal(-75+rxShift, 7)
	}
	var out []neighborRadio
	nHot := src.Poisson(hotspotMean * densityNorm)
	nReg := src.Poisson(regularRadioMean * densityNorm)
	for i := 0; i < nHot; i++ {
		out = append(out, neighborRadio{
			hotspot: true,
			band:    band,
			ch:      pickNeighborChannel(band, src),
			ssids:   1,
			rxDBm:   drawRx(),
			b11Frac: 0,
			keepU:   src.Float64(),
		})
	}
	for i := 0; i < nReg; i++ {
		out = append(out, neighborRadio{
			band:    band,
			ch:      pickNeighborChannel(band, src),
			ssids:   1 + src.IntN(4),
			rxDBm:   drawRx(),
			b11Frac: 0.1, // few networks still beacon at 802.11b rates
			keepU:   src.Float64(),
		})
	}
	return out
}

// keptInJul2014 decides whether a Jan-2015 neighbor already existed six
// months earlier, at rates that reproduce Table 7's growth.
func keptInJul2014(r neighborRadio) bool {
	var keep float64
	if r.band == dot11.Band24 {
		if r.hotspot {
			keep = (nets24Jul2014 * hotspotShare24Jul2014) / (nets24Jan2015 * hotspotShare24Jan2015)
		} else {
			keep = (nets24Jul2014 * (1 - hotspotShare24Jul2014)) / (nets24Jan2015 * (1 - hotspotShare24Jan2015))
		}
	} else {
		keep = nets5Jul2014 / nets5Jan2015
	}
	return r.keepU < keep
}

func nearestChannel(band dot11.Band, centerMHz float64) dot11.Channel {
	chans := dot11.Channels(band)
	best := chans[0]
	bestD := math.Abs(float64(best.CenterMHz) - centerMHz)
	for _, ch := range chans[1:] {
		if d := math.Abs(float64(ch.CenterMHz) - centerMHz); d < bestD {
			best, bestD = ch, d
		}
	}
	return best
}

// siteDistance returns the distance between two APs of a network,
// derived deterministically from the site size.
func siteDistance(n *Network, i, j int, src *rng.Source) float64 {
	// APs are spread across the site; typical inter-AP spacing is a
	// fraction of the site diameter.
	base := n.SiteSizeM * (0.25 + 0.5*src.Float64())
	if base < 8 {
		base = 8
	}
	return base
}
