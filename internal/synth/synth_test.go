package synth

import (
	"math"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/meshprobe"
)

func smallFleet(t *testing.T, n int, e epoch.Epoch) *Fleet {
	t.Helper()
	f, err := GenerateFleet(Params{Seed: 12345, NumNetworks: n, Epoch: e, ClientCap: 400})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenerateFleetBasics(t *testing.T) {
	f := smallFleet(t, 100, epoch.Jan2015)
	if len(f.Networks) != 100 {
		t.Fatalf("networks = %d", len(f.Networks))
	}
	for _, n := range f.Networks {
		if len(n.APs) < 2 {
			t.Fatalf("network %d has %d APs; dataset filter requires >= 2", n.ID, len(n.APs))
		}
		if n.NumClients < 1 {
			t.Fatalf("network %d has no clients", n.ID)
		}
		if n.Industry == "" {
			t.Fatal("missing industry")
		}
	}
	if got := f.Params.Scale(); math.Abs(got-206.67) > 0.01 {
		t.Errorf("Scale = %v", got)
	}
}

func TestGenerateFleetRejectsZero(t *testing.T) {
	if _, err := GenerateFleet(Params{}); err == nil {
		t.Error("zero networks accepted")
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := smallFleet(t, 30, epoch.Jan2015)
	b := smallFleet(t, 30, epoch.Jan2015)
	for i := range a.Networks {
		na, nb := a.Networks[i], b.Networks[i]
		if na.Industry != nb.Industry || len(na.APs) != len(nb.APs) || na.NumClients != nb.NumClients {
			t.Fatalf("network %d differs between identical seeds", i)
		}
		for j := range na.APs {
			if na.APs[j].Serial != nb.APs[j].Serial ||
				na.APs[j].Radio24.Channel != nb.APs[j].Radio24.Channel {
				t.Fatalf("AP %d/%d differs", i, j)
			}
		}
	}
}

func TestIndustriesMatchTable2(t *testing.T) {
	inds := Industries()
	if len(inds) != 19 {
		t.Fatalf("industries = %d, want 19", len(inds))
	}
	total := 0
	for _, ind := range inds {
		total += ind.Networks
		if _, ok := industryProfiles[ind.Name]; !ok {
			t.Errorf("industry %q has no profile", ind.Name)
		}
	}
	if total != PaperNetworkCount {
		t.Errorf("industry total = %d, want %d", total, PaperNetworkCount)
	}
}

func TestIndustryMixFollowsWeights(t *testing.T) {
	f := smallFleet(t, 2000, epoch.Jan2015)
	counts := make(map[string]int)
	for _, n := range f.Networks {
		counts[n.Industry]++
	}
	// Education is ~19.7% of networks.
	frac := float64(counts["Education"]) / 2000
	if math.Abs(frac-0.197) > 0.03 {
		t.Errorf("education share = %.3f, want ~0.197", frac)
	}
}

func TestClientsGeneration(t *testing.T) {
	f := smallFleet(t, 20, epoch.Jan2015)
	n := f.Networks[0]
	c1 := f.Clients(n)
	c2 := f.Clients(n)
	if len(c1) != n.NumClients {
		t.Fatalf("clients = %d, want %d", len(c1), n.NumClients)
	}
	for i := range c1 {
		if c1[i].MAC != c2[i].MAC || c1[i].OS != c2[i].OS {
			t.Fatal("client generation not deterministic")
		}
	}
}

func TestClientGrowthBetweenEpochs(t *testing.T) {
	f14 := smallFleet(t, 300, epoch.Jan2014)
	f15 := smallFleet(t, 300, epoch.Jan2015)
	var t14, t15 float64
	for i := range f14.Networks {
		t14 += float64(f14.Networks[i].NumClients)
		t15 += float64(f15.Networks[i].NumClients)
	}
	growth := t15 / t14
	// Table 3: +37% clients YoY (loose band; the cap and the lognormal
	// tail add noise).
	if growth < 1.1 || growth > 1.7 {
		t.Errorf("client growth = %.2f, want ~1.37", growth)
	}
}

func TestServingChannels(t *testing.T) {
	f := smallFleet(t, 60, epoch.Jan2015)
	for _, n := range f.Networks {
		for _, a := range n.APs {
			ch := a.Radio24.Channel.Number
			if ch != 1 && ch != 6 && ch != 11 {
				t.Fatalf("AP serving 2.4 GHz channel %d; auto-selection uses 1/6/11", ch)
			}
			if a.Radio5.Channel.DFS {
				t.Fatalf("AP serving DFS channel %d by default", a.Radio5.Channel.Number)
			}
		}
	}
}

func TestEnvironmentNeighborCounts(t *testing.T) {
	f := smallFleet(t, 120, epoch.Jan2015)
	var nets24, nets5, hot24 float64
	nAPs := 0
	for _, n := range f.Networks {
		env, err := f.Environment(n, 0, epoch.Jan2015)
		if err != nil {
			t.Fatal(err)
		}
		// Count non-Meraki networks as the analysis would: decodable
		// beacons excluding the Meraki OUI.
		recs := env.AP.ScanNeighbors(env.Neighbors24)
		for _, r := range recs {
			if r.Vendor == "Cisco Meraki" {
				continue
			}
			nets24++
			if apps.IsHotspotVendor(r.Vendor) {
				hot24++
			}
		}
		for _, r := range env.AP.ScanNeighbors(env.Neighbors5) {
			if r.Vendor != "Cisco Meraki" {
				nets5++
			}
		}
		nAPs++
	}
	mean24 := nets24 / float64(nAPs)
	mean5 := nets5 / float64(nAPs)
	// Table 7: 55.47 and 3.68 networks per AP (detection losses push
	// slightly below the raw draw).
	if mean24 < 40 || mean24 > 65 {
		t.Errorf("2.4 GHz networks per AP = %.1f, want ~55 (Table 7)", mean24)
	}
	if mean5 < 2.4 || mean5 > 5 {
		t.Errorf("5 GHz networks per AP = %.1f, want ~3.7 (Table 7)", mean5)
	}
	hotShare := hot24 / nets24
	if hotShare < 0.12 || hotShare > 0.28 {
		t.Errorf("hotspot share = %.3f, want ~0.19", hotShare)
	}
}

func TestEnvironmentGrowthSixMonths(t *testing.T) {
	f := smallFleet(t, 100, epoch.Jan2015)
	var now, before float64
	for _, n := range f.Networks {
		envNow, err := f.Environment(n, 0, epoch.Jan2015)
		if err != nil {
			t.Fatal(err)
		}
		envBefore, err := f.Environment(n, 0, epoch.Jul2014)
		if err != nil {
			t.Fatal(err)
		}
		now += float64(len(envNow.Neighbors24))
		before += float64(len(envBefore.Neighbors24))
	}
	growth := now / before
	// Table 7: 28.60 -> 55.47 per AP is 1.94x.
	if growth < 1.6 || growth > 2.4 {
		t.Errorf("six-month neighbor growth = %.2f, want ~1.94", growth)
	}
}

func TestEnvironmentChannelDistribution(t *testing.T) {
	f := smallFleet(t, 150, epoch.Jan2015)
	counts := make(map[int]int)
	for _, n := range f.Networks {
		env, err := f.Environment(n, 0, epoch.Jan2015)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range env.AP.ScanNeighbors(env.Neighbors24) {
			if r.Vendor != "Cisco Meraki" {
				counts[r.Channel]++
			}
		}
	}
	// Figure 2: channel 1 has ~37% more networks than 6 or 11.
	r16 := float64(counts[1]) / float64(counts[6])
	r111 := float64(counts[1]) / float64(counts[11])
	if r16 < 1.2 || r16 > 1.6 || r111 < 1.2 || r111 > 1.6 {
		t.Errorf("ch1/ch6 = %.2f, ch1/ch11 = %.2f, want ~1.37", r16, r111)
	}
	if counts[3] == 0 {
		t.Error("no networks on overlapping channels at all")
	}
	if counts[3] > counts[6]/2 {
		t.Errorf("channel 3 (%d) too popular vs 6 (%d)", counts[3], counts[6])
	}
}

func TestEnvironmentHoodHasSources(t *testing.T) {
	f := smallFleet(t, 10, epoch.Jan2015)
	env, err := f.Environment(f.Networks[0], 0, epoch.Jan2015)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Hood.Sources) < 10 {
		t.Errorf("airtime sources = %d; expected beacons+data+own", len(env.Hood.Sources))
	}
	if env.OwnDuty24 <= 0 || env.OwnDuty24 > 0.9 {
		t.Errorf("OwnDuty24 = %v", env.OwnDuty24)
	}
	obs := env.Hood.Observe(env.AP.Radio24.Channel, 13)
	if obs.Busy <= 0 || obs.Busy > 1 {
		t.Errorf("serving-channel busy = %v", obs.Busy)
	}
}

func TestEnvironmentIndexValidation(t *testing.T) {
	f := smallFleet(t, 5, epoch.Jan2015)
	if _, err := f.Environment(f.Networks[0], 99, epoch.Jan2015); err == nil {
		t.Error("out-of-range AP index accepted")
	}
}

func TestLinksPairedAcrossEpochs(t *testing.T) {
	f := smallFleet(t, 60, epoch.Jan2015)
	now := f.Links(epoch.Jan2015)
	before := f.Links(epoch.Jul2014)
	if len(now) == 0 {
		t.Fatal("no links generated")
	}
	if len(now) != len(before) {
		t.Fatalf("link population differs across epochs: %d vs %d", len(now), len(before))
	}
	for i := range now {
		if now[i].From.Serial != before[i].From.Serial || now[i].DistanceM != before[i].DistanceM {
			t.Fatal("link pairing broken across epochs")
		}
	}
}

func TestLinksBandSplit(t *testing.T) {
	f := smallFleet(t, 150, epoch.Jan2015)
	links := f.Links(epoch.Jan2015)
	n24, n5 := 0, 0
	for _, l := range links {
		if l.Band == dot11.Band24 {
			n24++
		} else {
			n5++
		}
	}
	if n24 == 0 || n5 == 0 {
		t.Fatalf("bands missing: 2.4=%d 5=%d", n24, n5)
	}
	// The paper's dataset: 16,583 2.4 GHz vs 5,650 5 GHz links — about
	// 3:1. Accept 1.5-6x.
	ratio := float64(n24) / float64(n5)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("2.4/5 GHz link ratio = %.2f (%d vs %d), want ~3", ratio, n24, n5)
	}
}

func TestLinksDegradeBetweenEpochs(t *testing.T) {
	f := smallFleet(t, 80, epoch.Jan2015)
	now := f.Links(epoch.Jan2015)
	before := f.Links(epoch.Jul2014)
	var mNow, mBefore float64
	cnt := 0
	for i := range now {
		if now[i].Band != dot11.Band24 {
			continue
		}
		mNow += now[i].Link.MeanDelivery(10, meshprobe.BinomialApprox)
		mBefore += before[i].Link.MeanDelivery(10, meshprobe.BinomialApprox)
		cnt++
	}
	if cnt == 0 {
		t.Fatal("no 2.4 GHz links")
	}
	if mNow >= mBefore {
		t.Errorf("2.4 GHz delivery did not degrade: now %.3f vs before %.3f", mNow/float64(cnt), mBefore/float64(cnt))
	}
}

func TestAPsByModelSplit(t *testing.T) {
	f := smallFleet(t, 100, epoch.Jan2015)
	mr16, mr18 := f.APsByModel()
	total := f.TotalAPs()
	if len(mr16)+len(mr18) != total {
		t.Fatal("model split loses APs")
	}
	frac := float64(len(mr18)) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("MR18 fraction = %.2f", frac)
	}
	for _, a := range mr18 {
		if !a.HW.HasScanRadio {
			t.Fatal("MR18 without scan radio")
		}
	}
}

// TestNetworkOrderContract pins the ordering contract the parallel
// usage-epoch pipeline merges by: GenerateFleet produces networks with
// contiguous ascending IDs, and NetworkOrder returns them in that
// canonical order even if a caller shuffles f.Networks.
func TestNetworkOrderContract(t *testing.T) {
	f, err := GenerateFleet(Params{Seed: 3, NumNetworks: 25, Epoch: epoch.Jan2015, ClientCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range f.Networks {
		if n.ID != i {
			t.Fatalf("Networks[%d].ID = %d, want %d (contiguous ascending)", i, n.ID, i)
		}
	}
	// NetworkOrder must restore canonical order from any permutation.
	f.Networks[0], f.Networks[24] = f.Networks[24], f.Networks[0]
	f.Networks[3], f.Networks[17] = f.Networks[17], f.Networks[3]
	for i, n := range f.NetworkOrder() {
		if n.ID != i {
			t.Fatalf("NetworkOrder()[%d].ID = %d, want %d", i, n.ID, i)
		}
	}
	// And it must not mutate the caller's slice.
	if f.Networks[0].ID != 24 {
		t.Error("NetworkOrder mutated f.Networks")
	}
}
