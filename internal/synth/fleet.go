package synth

import (
	"fmt"
	"sort"

	"wlanscale/internal/ap"
	"wlanscale/internal/apps"
	"wlanscale/internal/client"
	"wlanscale/internal/dot11"
	"wlanscale/internal/epoch"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
)

// Industry rows of Table 2.
type Industry struct {
	Name     string
	Networks int
}

// Industries returns Table 2 exactly.
func Industries() []Industry {
	return []Industry{
		{"Architecture/Engineering", 127},
		{"Construction", 333},
		{"Consulting", 365},
		{"Education", 4075},
		{"Finance/Insurance", 737},
		{"Government/Public Sector", 1112},
		{"Healthcare", 1382},
		{"Hospitality", 493},
		{"Industrial/Manufacturing", 1220},
		{"Legal", 264},
		{"Media/Advertising", 427},
		{"Non-Profit", 640},
		{"Real Estate", 386},
		{"Restaurants", 296},
		{"Retail", 2355},
		{"Tech", 983},
		{"Telecom", 442},
		{"VAR/System Integrator", 2876},
		{"Other", 2154},
	}
}

// PaperNetworkCount is the number of networks in the usage dataset.
const PaperNetworkCount = 20667

// industryProfile shapes a network by vertical.
type industryProfile struct {
	env         rf.Environment
	clientScale float64 // multiplier on the median client count
	apScale     float64 // multiplier on the median AP count
	density     float64 // urban density multiplier (nearby networks)
}

var industryProfiles = map[string]industryProfile{
	"Architecture/Engineering": {rf.EnvOpenOffice, 0.6, 0.7, 1.0},
	"Construction":             {rf.EnvDenseObstructed, 0.4, 0.6, 0.7},
	"Consulting":               {rf.EnvOpenOffice, 0.6, 0.7, 1.2},
	"Education":                {rf.EnvDrywallOffice, 3.5, 3.0, 0.9},
	"Finance/Insurance":        {rf.EnvOpenOffice, 1.0, 1.0, 1.5},
	"Government/Public Sector": {rf.EnvDrywallOffice, 1.2, 1.3, 1.0},
	"Healthcare":               {rf.EnvDenseObstructed, 1.0, 1.5, 1.1},
	"Hospitality":              {rf.EnvDrywallOffice, 1.5, 1.5, 1.3},
	"Industrial/Manufacturing": {rf.EnvDenseObstructed, 0.6, 1.2, 0.6},
	"Legal":                    {rf.EnvOpenOffice, 0.5, 0.6, 1.4},
	"Media/Advertising":        {rf.EnvOpenOffice, 0.7, 0.8, 1.6},
	"Non-Profit":               {rf.EnvDrywallOffice, 0.6, 0.7, 1.0},
	"Real Estate":              {rf.EnvOpenOffice, 0.5, 0.6, 1.3},
	"Restaurants":              {rf.EnvDrywallOffice, 1.2, 0.5, 1.5},
	"Retail":                   {rf.EnvDenseObstructed, 1.0, 0.8, 1.4},
	"Tech":                     {rf.EnvOpenOffice, 1.0, 1.0, 1.5},
	"Telecom":                  {rf.EnvOpenOffice, 0.7, 0.9, 1.2},
	"VAR/System Integrator":    {rf.EnvOpenOffice, 0.5, 0.8, 1.0},
	"Other":                    {rf.EnvDrywallOffice, 0.8, 0.9, 1.0},
}

// Params configures fleet generation.
type Params struct {
	// Seed roots all randomness.
	Seed uint64
	// NumNetworks is the number of simulated networks. The analysis
	// scales counts by Scale() to report paper-scale absolutes.
	NumNetworks int
	// Epoch selects the measurement period.
	Epoch epoch.Epoch
	// ClientCap bounds clients per network, protecting test runtimes;
	// 0 means uncapped.
	ClientCap int
}

// Scale returns the factor mapping the simulated subset to the paper's
// 20,667 networks.
func (p Params) Scale() float64 {
	if p.NumNetworks <= 0 {
		return 1
	}
	return float64(PaperNetworkCount) / float64(p.NumNetworks)
}

// Network is one customer network.
type Network struct {
	ID       int
	Industry string
	Env      rf.Environment
	// Density is the site's urban density (drives nearby networks).
	Density float64
	// APs are the network's access points.
	APs []*ap.AP
	// SiteSizeM is the rough site diameter, from the AP count.
	SiteSizeM float64
	// NumClients is the number of clients this epoch.
	NumClients int

	// clientSerialBase is the fleet-wide offset of this network's
	// client MAC serial block. Client MACs carry only 24 bits beyond
	// the OUI, so serials are allocated globally to stay collision-free
	// (a collision would fuse two clients in the backend's roaming
	// aggregation).
	clientSerialBase uint64
}

// Fleet is the generated universe.
type Fleet struct {
	Params Params
	// Networks holds the generated networks in canonical order:
	// ascending ID, with IDs contiguous in [0, NumNetworks). This
	// ordering is a contract — the parallel usage-epoch pipeline merges
	// per-network partial results in exactly this order to stay
	// deterministic — so use NetworkOrder when order matters.
	Networks []*Network

	root       *rng.Source
	classifier *apps.Classifier
	apIndex    map[*ap.AP]apLocation
}

// Classifier returns the shared compiled rule engine.
func (f *Fleet) Classifier() *apps.Classifier { return f.classifier }

// Root returns the fleet's root randomness source.
func (f *Fleet) Root() *rng.Source { return f.root }

// clientGrowth is the fleet-wide client growth from Jan 2014 to Jan
// 2015 (+37%, Table 3).
const clientGrowth = 1.37

// GenerateFleet builds the simulated universe.
func GenerateFleet(p Params) (*Fleet, error) {
	if p.NumNetworks <= 0 {
		return nil, fmt.Errorf("synth: NumNetworks must be positive, got %d", p.NumNetworks)
	}
	f := &Fleet{
		Params:     p,
		root:       rng.New(p.Seed),
		classifier: apps.NewClassifier(),
	}

	// Draw industries with Table 2 weights.
	inds := Industries()
	weights := make([]float64, len(inds))
	for i, ind := range inds {
		weights[i] = float64(ind.Networks)
	}
	table := rng.NewWeightedTable(weights)

	apSerial := uint64(0)
	clientSerial := uint64(0)
	for id := 0; id < p.NumNetworks; id++ {
		nsrc := f.root.SplitN("net", id)
		ind := inds[table.Sample(nsrc)]
		prof := industryProfiles[ind.Name]

		n := &Network{
			ID:       id,
			Industry: ind.Name,
			Env:      prof.env,
			Density:  prof.density * nsrc.LogNormalMeanMedian(1, 0.8),
		}

		// AP count: every network has at least two APs (the dataset
		// filter), heavy-tailed by industry.
		apCount := 2 + nsrc.Poisson(2.5*prof.apScale)
		// Site grows with AP count: each AP covers roughly a 25 m cell.
		n.SiteSizeM = 25 * float64(apCount)

		// Client count for the epoch. The median is set so the
		// lognormal population mean lands at the paper's ~270 clients
		// per network (5.58M clients over 20,667 networks).
		med := 95 * prof.clientScale
		if p.Epoch == epoch.Jan2014 {
			med /= clientGrowth
		}
		n.NumClients = int(nsrc.LogNormalMeanMedian(med, 1.25)) + 1
		if p.ClientCap > 0 && n.NumClients > p.ClientCap {
			n.NumClients = p.ClientCap
		}
		n.clientSerialBase = clientSerial
		clientSerial += uint64(n.NumClients)

		for a := 0; a < apCount; a++ {
			asrc := nsrc.SplitN("ap", a)
			hw := ap.HardwareMR16
			if asrc.Bool(0.5) {
				hw = ap.HardwareMR18
			}
			serial := fmt.Sprintf("Q2XX-%04d-%04d", id, a)
			apSerial++
			apObj, err := ap.New(serial, apSerial, hw, prof.env,
				pickServing24(asrc), pickServing5(asrc), f.classifier)
			if err != nil {
				return nil, err
			}
			// SSID count: one to four virtual networks.
			nSSID := 1 + asrc.IntN(3)
			for s := 0; s < nSSID; s++ {
				apObj.AddSSID(fmt.Sprintf("net%d-ssid%d", id, s))
			}
			n.APs = append(n.APs, apObj)
		}
		f.Networks = append(f.Networks, n)
	}
	return f, nil
}

// Meraki APs auto-select among the non-overlapping 2.4 GHz channels.
func pickServing24(src *rng.Source) dot11.Channel {
	nums := []int{1, 6, 11}
	ch, _ := dot11.ChannelByNumber(dot11.Band24, nums[src.IntN(len(nums))])
	return ch
}

// 5 GHz serving channels: mostly UNII-1 and UNII-3 (DFS avoided by
// default channel plans of the era).
func pickServing5(src *rng.Source) dot11.Channel {
	nums := []int{36, 40, 44, 48, 149, 153, 157, 161}
	ch, _ := dot11.ChannelByNumber(dot11.Band5, nums[src.IntN(len(nums))])
	return ch
}

// Clients generates network n's client population for the fleet epoch.
// Devices are drawn fresh per call from the network's dedicated stream,
// so repeated calls agree.
func (f *Fleet) Clients(n *Network) []*client.Device {
	src := f.root.SplitN("net", n.ID).Split("clients")
	out := make([]*client.Device, n.NumClients)
	for i := range out {
		out[i] = client.NewFromMix(f.Params.Epoch, n.clientSerialBase+uint64(i), src.SplitN("dev", i))
	}
	return out
}

// NetworkOrder returns the networks in canonical network-index order
// (ascending ID). GenerateFleet already appends networks in this order;
// the copy re-sorts defensively so that callers who rearrange
// f.Networks cannot perturb consumers — notably the parallel
// usage-epoch pipeline, whose seed determinism rests on merging
// per-network partials in exactly this order.
func (f *Fleet) NetworkOrder() []*Network {
	out := make([]*Network, len(f.Networks))
	copy(out, f.Networks)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalAPs returns the number of APs in the simulated fleet.
func (f *Fleet) TotalAPs() int {
	total := 0
	for _, n := range f.Networks {
		total += len(n.APs)
	}
	return total
}

// Locate finds the network and AP index of an access point generated by
// this fleet.
func (f *Fleet) Locate(target *ap.AP) (*Network, int, bool) {
	if f.apIndex == nil {
		f.apIndex = make(map[*ap.AP]apLocation)
		for _, n := range f.Networks {
			for i, a := range n.APs {
				f.apIndex[a] = apLocation{n, i}
			}
		}
	}
	loc, ok := f.apIndex[target]
	if !ok {
		return nil, 0, false
	}
	return loc.net, loc.idx, true
}

type apLocation struct {
	net *Network
	idx int
}

// APsByModel partitions the fleet's APs by hardware model.
func (f *Fleet) APsByModel() (mr16, mr18 []*ap.AP) {
	for _, n := range f.Networks {
		for _, a := range n.APs {
			if a.HW.HasScanRadio {
				mr18 = append(mr18, a)
			} else {
				mr16 = append(mr16, a)
			}
		}
	}
	return mr16, mr18
}
