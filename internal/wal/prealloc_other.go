//go:build !linux

package wal

import (
	"errors"
	"os"
)

// zerofill is linux-only; other platforms fall back to ftruncate
// pre-sizing in mapActive (sparse, but correct: holes read as zeros).
func zerofill(f *os.File, size int64) error {
	return errors.New("wal: zerofill unsupported on this platform")
}

// flushRange falls back to a full fsync without sync_file_range.
func flushRange(f *os.File, n int64) error {
	return f.Sync()
}
