package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validSegment builds a well-formed one-segment log as seed material.
func validSegment(base LSN, payloads ...[]byte) []byte {
	var b bytes.Buffer
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(base))
	b.Write(hdr[:])
	for _, p := range payloads {
		var fh [frameOverhead]byte
		binary.BigEndian.PutUint32(fh[:4], uint32(len(p)))
		binary.BigEndian.PutUint32(fh[4:], crc32.Checksum(p, crcTable))
		b.Write(fh[:])
		b.Write(p)
		b.WriteByte(frameSentinel)
	}
	return b.Bytes()
}

// FuzzWALReplay throws arbitrary bytes at the segment scanner by way of
// Open + Replay. Whatever the input, the invariants are: no panic, and
// a second Open over the repaired directory succeeds with a clean
// replay (repair must converge — torn tails are truncated once, not
// rediscovered forever).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSegment(1))
	f.Add(validSegment(1, []byte("hello"), []byte("world")))
	f.Add(validSegment(7, bytes.Repeat([]byte{0xaa}, 300)))
	// Torn tail: a valid record then half of another.
	whole := validSegment(1, []byte("intact"), []byte("about-to-be-torn"))
	f.Add(whole[:len(whole)-5])
	// Corrupt CRC on the first record.
	bad := validSegment(1, []byte("payload"))
	bad[headerSize+5] ^= 0x01
	f.Add(bad)
	// Oversized declared length.
	huge := validSegment(1)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Policy: PolicyOff})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		n := 0
		_, _ = l.Replay(0, func(lsn LSN, p []byte) error {
			n++
			return nil
		})
		next := l.NextLSN()
		l.Close()

		// Open repaired the directory in place: a reopen must succeed,
		// see the same LSN horizon, and replay without error.
		l2, err := Open(dir, Options{Policy: PolicyOff})
		if err != nil {
			t.Fatalf("reopen after repair failed: %v", err)
		}
		defer l2.Close()
		if l2.NextLSN() != next {
			t.Fatalf("reopen NextLSN %d != first-open %d", l2.NextLSN(), next)
		}
		stats, err := l2.Replay(0, func(LSN, []byte) error { return nil })
		if err != nil {
			t.Fatalf("replay after repair: %v (stats %+v)", err, stats)
		}
	})
}
