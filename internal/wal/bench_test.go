package wal

import (
	"testing"
	"time"
)

// BenchmarkAppendBatch isolates the raw log cost per 16-record batch —
// frame build, CRC, the copy into the mapped segment, and rotation
// amortized over a segment's worth of appends — without any store or
// transport around it. The off and interval arms should land within a
// couple of microseconds of each other (interval fsyncs ride a
// background goroutine over a dup'd descriptor); always pays a full
// fsync per batch and is benchmarked separately because its cost is
// the disk's, not the log's.
func BenchmarkAppendBatch(b *testing.B) {
	arms := []struct {
		name string
		opts Options
	}{
		{"off", Options{Policy: PolicyOff}},
		{"interval", Options{Policy: PolicyInterval, Interval: 100 * time.Millisecond}},
		{"always", Options{Policy: PolicyAlways}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), arm.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := make([][]byte, 16)
			for i := range batch {
				batch[i] = make([]byte, 110)
			}
			b.SetBytes(16 * 110)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
