//go:build unix

package wal

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-write and shared: stores land in
// the page cache exactly as write(2) would put them there, so they
// survive process death and are flushed by File.Sync. The caller
// pre-sizes the file; mapping beyond EOF would SIGBUS on access.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) {
	syscall.Munmap(b)
}

// dupFile duplicates f's descriptor so a background fsync can outlive
// a rotation that closes the original; fsync on the dup flushes the
// same inode's dirty pages.
func dupFile(f *os.File) (*os.File, error) {
	fd, err := syscall.Dup(int(f.Fd()))
	if err != nil {
		return nil, err
	}
	return os.NewFile(uintptr(fd), f.Name()), nil
}
