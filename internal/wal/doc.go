// Package wal implements the collector's write-ahead log: CRC32-framed,
// length-prefixed records appended to rotating segment files, with a
// configurable fsync policy and a replay path that detects a torn tail
// (a record cut short by a crash mid-write) and truncates it instead of
// failing. The backend appends each harvested report's wire bytes here
// *before* the poller acknowledges the frame, so a process killed at
// any instant can recover every acknowledged report by replaying the
// log over the latest checkpoint (see backend.OpenDurable and
// DESIGN.md §9).
//
// On-disk format. A segment file "wal-<base>.seg" starts with a
// 16-byte header — 8-byte magic "WLWAL001" plus the big-endian LSN of
// its first record — followed by records framed as
//
//	[4-byte BE payload length][4-byte BE CRC32-C of payload][payload][0xA5]
//
// The active segment is pre-sized and memory-mapped, so its unwritten
// tail reads as zeros: an all-zero frame header terminates the scan
// (the segment ended cleanly there), and the trailing 0xA5 sentinel
// makes a torn write distinguishable from a completed one even when
// the payload's own tail is zeros. LSNs number records contiguously
// across segments starting at 1, so
// <base> of each segment equals the previous segment's base plus its
// record count, and a checkpoint taken at LSN n makes every record
// below n garbage (TruncateBelow removes whole segments of it).
package wal
