//go:build !unix

package wal

import (
	"errors"
	"os"
)

// Non-unix builds have no segment mapping; the error makes mapActive
// fall back to the plain write(2) append path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("wal: mmap unsupported on this platform")
}

func munmapFile(b []byte) {}

// dupFile failing keeps interval fsync synchronous on this platform.
func dupFile(f *os.File) (*os.File, error) {
	return nil, errors.New("wal: dup unsupported on this platform")
}
