//go:build linux

package wal

import (
	"os"
	"syscall"
)

// zerofill extends f to size with real zero bytes rather than a
// sparse ftruncate or fallocate. The distinction is what a write
// fault into the mapped segment later costs: over a hole it pays
// block allocation plus a journal transaction, over an fallocate'd
// unwritten extent it pays the extent state machinery, but over an
// initialized page already in the page cache it is a bare PTE fault —
// measurably cheaper, and it stops interval fsyncs (which commit the
// journal) from stalling concurrent appends on journal handles. The
// zeros are written once per segment, sequentially, at rotation.
// Fallocate first so the extent map is built in one pass instead of
// block by block as the zeroes land.
// flushRange pushes f's dirty pages to disk like fsync but without
// committing the filesystem journal. A journal commit locks out new
// handles, and a write fault into the mapped segment needs a handle —
// so interval flushes over fsync stall concurrent appends for the
// commit's duration. The segment's metadata (size, extents) was made
// durable by the fsync after zerofill at creation, so data-only
// writeback is all an interval flush still owes.
func flushRange(f *os.File, n int64) error {
	// SYNC_FILE_RANGE_WAIT_BEFORE | WRITE | WAIT_AFTER; the syscall
	// package binds sync_file_range(2) but not its flag constants.
	// Only the first n bytes — the written prefix — are flushed: the
	// pre-zeroed tail is still dirty from zerofill, and writing it back
	// would make the appender's next faults wait out writeback on the
	// very pages they are about to dirty.
	const flags = 0x1 | 0x2 | 0x4
	return syscall.SyncFileRange(int(f.Fd()), 0, n, flags)
}

func zerofill(f *os.File, size int64) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() >= size {
		return nil
	}
	syscall.Fallocate(int(f.Fd()), 0, 0, size)
	z := make([]byte, 1<<20)
	for off := fi.Size(); off < size; off += int64(len(z)) {
		n := size - off
		if n > int64(len(z)) {
			n = int64(len(z))
		}
		if _, err := f.WriteAt(z[:n], off); err != nil {
			return err
		}
	}
	return nil
}
