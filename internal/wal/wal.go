package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wlanscale/internal/obs"
)

// LSN is a log sequence number: the 1-based index of a record in the
// log. 0 means "before every record" (an empty log's first append gets
// LSN 1).
type LSN uint64

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyInterval fsyncs at most once per Options.Interval, amortizing
	// the flush across appends. Every append still write(2)s to the
	// kernel before returning, so process death (SIGKILL, panic) loses
	// nothing — only an OS crash or power loss can lose the unsynced
	// window. The default.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs every append before it returns: no acknowledged
	// record is lost even to power failure, at the cost of one flush per
	// batch.
	PolicyAlways
	// PolicyOff never fsyncs (the OS flushes on its own schedule). Safe
	// against process death, fastest, and what short-lived tests use.
	PolicyOff
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyOff:
		return "off"
	default:
		return "interval"
	}
}

// ParsePolicy maps the -wal-fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options tunes a Log. The zero value is usable: 4 MiB segments,
// PolicyInterval with a 100 ms flush window.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size. Zero means 4 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; see the Policy constants.
	Policy Policy
	// Interval is the PolicyInterval flush window. Zero means 100 ms.
	Interval time.Duration
	// Crash, when set, arms deterministic crash injection: the plan
	// picks one append (by seeded index) and tears its frame mid-write,
	// after which the log refuses further appends — exactly the on-disk
	// state a process killed inside write(2) leaves behind. Tests use it
	// to prove torn-tail recovery without subprocesses.
	Crash *CrashPlan
	// NoMmap forces the plain write(2) append path. By default the
	// active segment is pre-sized and memory-mapped, making an append a
	// memcpy instead of a syscall — a large win where syscalls are
	// expensive (microVMs); durability is unchanged, because dirty
	// mapped pages live in the page cache and survive process death
	// exactly like written ones, and fsync(2) flushes both. The plain
	// path remains for platforms or filesystems where mmap fails (the
	// log also falls back automatically when mapping errors).
	NoMmap bool
}

const (
	headerSize    = 16
	frameOverhead = 8
	// frameEnd is a nonzero byte closing every frame. The pre-sized
	// mapped segment's unwritten tail reads as zeros, so a payload whose
	// own tail is zeros could otherwise make a torn write byte-identical
	// to a completed one; the sentinel guarantees a complete frame always
	// differs from any torn prefix of it.
	frameEnd           = 1
	frameSentinel byte = 0xA5
	// maxRecord bounds a single payload; replay rejects larger claimed
	// lengths as corruption rather than allocating them.
	maxRecord = 16 << 20
)

var magic = [8]byte{'W', 'L', 'W', 'A', 'L', '0', '0', '1'}

var (
	// ErrFailed is wrapped by every append after the log's write path
	// has failed once; the failure is sticky so a half-written tail is
	// never appended past.
	ErrFailed = errors.New("wal: log failed")
	// ErrCorrupt reports corruption replay cannot attribute to a torn
	// tail: a bad record in the middle of the log.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrCrashed is returned by the append a CrashPlan tears.
	ErrCrashed = errors.New("wal: crash point fired")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only write-ahead log over one directory. Append,
// Sync, and Close are safe for concurrent use; Replay must run before
// the first Append (the recovery window, when nothing else writes).
type Log struct {
	dir  string
	opts Options

	// mu guards everything below.
	mu       sync.Mutex
	f        *os.File
	mm       []byte // mapped active segment; nil in plain-write mode
	segBase  LSN    // first LSN of the active segment
	segSize  int64  // bytes written to the active segment
	next     LSN    // LSN the next append receives
	dirty    bool   // unsynced bytes outstanding
	lastSync time.Time
	failed   error
	appends  int   // append ops, for the crash plan
	segments int   // segment files on disk
	tornOpen int64 // torn-tail bytes truncated by Open

	// bgFlush tracks in-flight background fsyncs — retirement of
	// rotated segments and PolicyInterval ticks; Sync and Close wait on
	// it. A failure lands in asyncErr (not l.failed directly — the
	// background goroutines must not need mu, which Sync/Close hold
	// while waiting) and is folded into l.failed at the next locked
	// operation. flushInFlight gates interval ticks so a slow disk
	// cannot pile up concurrent fsyncs.
	bgFlush       sync.WaitGroup
	flushInFlight atomic.Bool
	asyncErr      atomic.Pointer[error]

	// metrics, nil (no-op) until EnableObs.
	mAppends, mBytes, mFsyncs, mRotations *obs.Counter
	mReplays, mReplayed, mTornBytes       *obs.Counter
	mFsyncDur                             *obs.Histogram
}

func segName(base LSN) string { return fmt.Sprintf("wal-%016x.seg", uint64(base)) }

// parseSegName extracts a segment's base LSN; ok is false for
// non-segment files.
func parseSegName(name string) (LSN, bool) {
	var v uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.seg", &v); n != 1 || err != nil {
		return 0, false
	}
	// Sscanf tolerates trailing input; require an exact name so editor
	// backups or sweep leftovers are never treated as segments.
	if name != segName(LSN(v)) {
		return 0, false
	}
	return LSN(v), true
}

// listSegments returns the segment base LSNs in dir, ascending.
func listSegments(dir string) ([]LSN, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []LSN
	for _, e := range ents {
		if base, ok := parseSegName(e.Name()); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// Open opens (or creates) the log in dir, repairing the active
// segment's torn tail if the previous process died mid-append: the
// last segment is scanned record by record and truncated at the first
// frame that is short or fails its CRC. Earlier segments are validated
// lazily, by Replay.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// A crash during rotation can leave a trailing segment too short to
	// even hold its header; drop such husks and resume on the previous
	// segment.
	for len(bases) > 0 {
		last := bases[len(bases)-1]
		fi, err := os.Stat(filepath.Join(dir, segName(last)))
		if err != nil {
			return nil, err
		}
		if fi.Size() >= headerSize {
			break
		}
		if err := os.Remove(filepath.Join(dir, segName(last))); err != nil {
			return nil, err
		}
		bases = bases[:len(bases)-1]
	}
	if len(bases) == 0 {
		if err := l.createSegment(1, 0); err != nil {
			return nil, err
		}
		l.next = 1
		l.segments = 1
		return l, nil
	}
	last := bases[len(bases)-1]
	path := filepath.Join(dir, segName(last))
	count, validSize, fileSize, clean, err := scanSegment(path, nil)
	if err != nil {
		return nil, err
	}
	if !clean {
		l.tornOpen = fileSize - validSize
	}
	if err := os.Truncate(path, validSize); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	l.segBase = last
	l.segSize = validSize
	l.next = last + LSN(count)
	l.segments = len(bases)
	l.mapActive(0)
	return l, nil
}

// mapActive pre-sizes the active segment and memory-maps it; an
// append then costs a memcpy instead of a write(2) syscall. Plain-
// write mode (Options.NoMmap, or any pre-size/map failure) leaves
// l.mm nil and appends go through the file instead. need is the room
// a pending oversized batch requires beyond SegmentBytes.
func (l *Log) mapActive(need int64) {
	l.mm = nil
	if l.opts.NoMmap {
		return
	}
	size := l.opts.SegmentBytes
	if l.segSize+need > size {
		size = l.segSize + need
	}
	// Prefer physically zeroed blocks over a sparse ftruncate: see
	// zerofill for what that buys the write faults.
	if err := zerofill(l.f, size); err != nil {
		if err := l.f.Truncate(size); err != nil {
			return
		}
	} else if l.opts.Policy != PolicyOff {
		// Commit the fresh segment's size and extents to the journal in
		// the background, so data-only interval flushes (flushRange)
		// have durable metadata under them. Until this lands, jbd2's
		// periodic commit is the backstop.
		if dup, err := dupFile(l.f); err == nil {
			l.bgFlush.Add(1)
			go func() {
				defer l.bgFlush.Done()
				dup.Sync()
				dup.Close()
			}()
		}
	}
	mm, err := mmapFile(l.f, size)
	if err != nil {
		// Undo the pre-size so the write(2) path appends at the tail.
		l.f.Truncate(l.segSize)
		return
	}
	l.mm = mm
	// Everything between the valid tail and the end is zero — a zero
	// frame header is the scan terminator, and stale torn bytes must not
	// resurrect as records. No explicit clear is needed: the file is
	// always trimmed to its valid length before this Truncate grows it
	// (Open repairs to validSize, createSegment starts empty, rotate and
	// Close trim to segSize), and ftruncate extensions read as zeros.
	// Clearing here would dirty every page of the segment up front,
	// forcing a full segment of zero writeback per rotation.
}

func (l *Log) unmapActive() {
	if l.mm != nil {
		munmapFile(l.mm)
		l.mm = nil
	}
}

// writeActive appends buf to the active segment at l.segSize.
func (l *Log) writeActive(buf []byte) error {
	if l.mm != nil {
		copy(l.mm[l.segSize:], buf)
		return nil
	}
	_, err := l.f.Write(buf)
	return err
}

func (l *Log) createSegment(base LSN, need int64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(base)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(base))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segBase = base
	l.segSize = headerSize
	l.dirty = true
	l.mapActive(need)
	return nil
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// TornAtOpen reports how many torn-tail bytes Open truncated from the
// final segment when repairing after a crash (0 for a clean shutdown).
func (l *Log) TornAtOpen() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornOpen
}

// Segments returns the number of segment files on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments
}

// Err returns the sticky failure, if the write path has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Append appends one record and returns its LSN. The record has
// reached the kernel (write(2) completed) when Append returns; whether
// it has reached stable storage depends on the fsync policy.
func (l *Log) Append(payload []byte) (LSN, error) {
	return l.AppendBatch([][]byte{payload})
}

// AppendBatch appends records contiguously with one write syscall and
// returns the LSN of the first; record i gets first+LSN(i). On error
// none, some prefix, or a torn fragment of the batch may be on disk —
// replay keeps only whole CRC-valid records, and the caller must treat
// the whole batch as unacknowledged (the log is failed either way).
func (l *Log) AppendBatch(payloads [][]byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkFailed(); err != nil {
		return 0, err
	}
	need := 0
	for _, p := range payloads {
		if len(p) == 0 {
			// A zero frame header is the pre-sized segment's scan
			// terminator, so an empty record is unrepresentable.
			return 0, fmt.Errorf("wal: empty record")
		}
		if len(p) > maxRecord {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(p), maxRecord)
		}
		need += frameOverhead + len(p) + frameEnd
	}
	// Rotate when the segment is full — or, in mapped mode, when this
	// batch would run past the mapping (an oversized batch gets its own
	// larger segment, sized by need).
	if l.segSize >= l.opts.SegmentBytes ||
		(l.mm != nil && l.segSize+int64(need) > int64(len(l.mm))) {
		if err := l.rotate(int64(need)); err != nil {
			l.failed = err
			return 0, err
		}
	}
	if l.mm != nil && l.opts.Crash == nil {
		// Fast path: frame each record straight into the mapping. The
		// batch-sized scratch buffer and its extra copy are the largest
		// remaining append cost once the write(2) is gone.
		off := l.segSize
		for _, p := range payloads {
			binary.BigEndian.PutUint32(l.mm[off:], uint32(len(p)))
			binary.BigEndian.PutUint32(l.mm[off+4:], crc32.Checksum(p, crcTable))
			off += frameOverhead
			off += int64(copy(l.mm[off:], p))
			l.mm[off] = frameSentinel
			off++
		}
	} else {
		buf := make([]byte, 0, need)
		bounds := make([]int, 0, len(payloads)+1)
		for _, p := range payloads {
			bounds = append(bounds, len(buf))
			var hdr [frameOverhead]byte
			binary.BigEndian.PutUint32(hdr[0:], uint32(len(p)))
			binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(p, crcTable))
			buf = append(buf, hdr[:]...)
			buf = append(buf, p...)
			buf = append(buf, frameSentinel)
		}
		bounds = append(bounds, len(buf))
		if l.opts.Crash != nil {
			if tear, at := l.opts.Crash.tearAt(l.appends, bounds); tear {
				// Simulate dying inside the append: a prefix of the batch
				// frame reaches the segment, then the "process" is gone. The
				// log is failed from here on, like the dead process's fd.
				l.writeActive(buf[:at])
				l.f.Sync()
				l.failed = ErrCrashed
				return 0, ErrCrashed
			}
		}
		if err := l.writeActive(buf); err != nil {
			l.failed = err
			return 0, err
		}
	}
	l.appends += len(payloads)
	first := l.next
	l.next += LSN(len(payloads))
	l.segSize += int64(need)
	l.dirty = true
	l.mAppends.Add(int64(len(payloads)))
	l.mBytes.Add(int64(need))
	if err := l.maybeSync(); err != nil {
		l.failed = err
		return 0, err
	}
	return first, nil
}

// rotate syncs, trims, and closes the active segment and starts the
// next one. Trimming the pre-sized mapping back to its written length
// keeps the invariant that only the final segment may carry a zero or
// torn tail.
func (l *Log) rotate(need int64) error {
	l.unmapActive()
	if err := l.f.Truncate(l.segSize); err != nil {
		return err
	}
	// Retire the old segment off the hot path: flushing a whole segment
	// of dirty pages can take tens of milliseconds, and the append that
	// happened to trigger rotation must not absorb it. PolicyOff makes
	// no promise across power loss, so it skips the flush; PolicyAlways
	// synced every batch, leaving nothing dirty. Only PolicyInterval
	// with unsynced bytes pays, and it pays in the background while the
	// new segment fills.
	old, dirty := l.f, l.dirty
	if l.opts.Policy == PolicyOff || !dirty {
		if err := old.Close(); err != nil {
			return err
		}
	} else {
		l.bgFlush.Add(1)
		go func() {
			defer l.bgFlush.Done()
			sp := obs.StartSpan(l.mFsyncDur)
			err := old.Sync()
			sp.End()
			if err == nil {
				l.mFsyncs.Inc()
				err = old.Close()
			} else {
				old.Close()
			}
			if err != nil {
				l.asyncErr.CompareAndSwap(nil, &err)
			}
		}()
	}
	l.dirty = false
	if err := l.createSegment(l.next, need); err != nil {
		return err
	}
	l.segments++
	l.mRotations.Inc()
	return nil
}

// checkFailed folds any background retirement failure into the sticky
// failure and reports it. Caller holds mu.
func (l *Log) checkFailed() error {
	if l.failed == nil {
		if p := l.asyncErr.Load(); p != nil {
			l.failed = *p
		}
	}
	if l.failed != nil {
		return fmt.Errorf("%w: %v", ErrFailed, l.failed)
	}
	return nil
}

func (l *Log) maybeSync() error {
	switch l.opts.Policy {
	case PolicyAlways:
		return l.syncLocked()
	case PolicyInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.intervalFlush()
		}
	}
	return nil
}

// intervalFlush starts a background fsync of the active segment for
// the interval policy. fsync waits out the writeback of everything
// dirtied during the interval — tens of milliseconds after a busy one
// — and holding mu for that would stall every append; the policy only
// promises a bounded loss window, which launch-time bookkeeping keeps.
// The goroutine syncs a dup'd descriptor so a rotation closing the
// original cannot yank it. Caller holds mu.
func (l *Log) intervalFlush() error {
	if !l.dirty {
		return nil
	}
	// Flush only whole pages. The partial tail page is the one the
	// appender dirties next, and a write fault on a page under
	// writeback waits for the writeback to clear — flushing it here
	// would make the very next append pay for this flush. It is never
	// lost, only deferred: dirty stays set while a partial page is
	// outstanding, so Sync and Close still flush it (and passing 0 to
	// sync_file_range would mean "to end of file", hitting the dirty
	// pre-zeroed tail).
	written := l.segSize &^ 0xFFF
	if written == 0 {
		return nil
	}
	if !l.flushInFlight.CompareAndSwap(false, true) {
		return nil // previous flush still draining; it covers our pages
	}
	dup, err := dupFile(l.f)
	if err != nil {
		// No dup on this platform: flush synchronously.
		l.flushInFlight.Store(false)
		return l.syncLocked()
	}
	l.dirty = written != l.segSize
	l.lastSync = time.Now()
	l.bgFlush.Add(1)
	go func() {
		defer l.bgFlush.Done()
		defer l.flushInFlight.Store(false)
		sp := obs.StartSpan(l.mFsyncDur)
		err := flushRange(dup, written)
		sp.End()
		dup.Close()
		if err != nil {
			l.asyncErr.CompareAndSwap(nil, &err)
			return
		}
		l.mFsyncs.Inc()
	}()
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	sp := obs.StartSpan(l.mFsyncDur)
	err := l.f.Sync()
	sp.End()
	if err != nil {
		return err
	}
	l.mFsyncs.Inc()
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Sync flushes outstanding appends to stable storage regardless of
// policy, including retired segments still being flushed in the
// background.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bgFlush.Wait()
	if err := l.checkFailed(); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		l.failed = err
		return err
	}
	return nil
}

// Close waits out background retirements, then syncs and closes the
// active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.bgFlush.Wait()
	l.checkFailed()
	serr := error(nil)
	if l.failed == nil {
		serr = l.syncLocked()
		l.unmapActive()
		// Trim the pre-sized tail so a clean shutdown leaves an
		// exact-length segment; a failed log is left as the crash left
		// it (recovery repairs it, like a dead process's file).
		if terr := l.f.Truncate(l.segSize); serr == nil && terr != nil {
			serr = terr
		}
	} else {
		l.unmapActive()
	}
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records is how many records fn received.
	Records int
	// Skipped counts records below the from LSN (already covered by the
	// checkpoint the caller restored).
	Skipped int
	// TornBytes is the length of the torn tail discarded from the final
	// segment, zero when the log ended cleanly.
	TornBytes int64
}

// Replay walks every record in LSN order, calling fn for each record
// with LSN >= from. A short or CRC-failing frame at the tail of the
// final segment is a torn tail: replay stops there and reports the
// discarded byte count in the stats. The same damage in any earlier
// segment is real corruption and returns ErrCorrupt. Replay reads the
// segment files independently of the append path; call it during
// recovery, before the first Append.
func (l *Log) Replay(from LSN, fn func(LSN, []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	bases, err := listSegments(l.dir)
	if err != nil {
		return stats, err
	}
	l.mReplays.Inc()
	for i, base := range bases {
		last := i == len(bases)-1
		path := filepath.Join(l.dir, segName(base))
		lsn := base
		count, validSize, fileSize, clean, err := scanSegment(path, func(payload []byte) error {
			if lsn < from {
				stats.Skipped++
			} else {
				if err := fn(lsn, payload); err != nil {
					return err
				}
				stats.Records++
				l.mReplayed.Inc()
			}
			lsn++
			return nil
		})
		if err != nil {
			return stats, err
		}
		if !clean {
			if !last {
				return stats, fmt.Errorf("%w: segment %s has %d trailing bytes mid-log",
					ErrCorrupt, segName(base), fileSize-validSize)
			}
			stats.TornBytes = fileSize - validSize
			l.mTornBytes.Add(stats.TornBytes)
		}
		if !last && bases[i+1] != base+LSN(count) {
			// The next segment's base pins how many records this one
			// must hold; fewer means records were lost mid-log.
			return stats, fmt.Errorf("%w: segment %s holds %d records but next base is %d",
				ErrCorrupt, segName(base), count, bases[i+1])
		}
	}
	return stats, nil
}

// scanSegment reads one segment, calling fn (when non-nil) per valid
// record, and returns the record count, the byte offset after the last
// valid record, the file size, and whether the segment ended cleanly —
// at exact EOF, or at a zero frame header (the terminator a pre-sized
// mapped segment's untouched tail reads as). A header that fails
// validation is an error; a bad record merely ends the scan early with
// clean=false (a torn or corrupt tail).
func scanSegment(path string, fn func([]byte) error) (count int, validSize, fileSize int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, false, err
	}
	fileSize = fi.Size()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fileSize, false, fmt.Errorf("wal: %s: short header: %w", filepath.Base(path), err)
	}
	if [8]byte(hdr[:8]) != magic {
		return 0, 0, fileSize, false, fmt.Errorf("wal: %s: bad magic", filepath.Base(path))
	}
	if got, want := parseBase(path), LSN(binary.BigEndian.Uint64(hdr[8:])); got != want {
		return 0, 0, fileSize, false, fmt.Errorf("wal: %s: header base %d does not match name", filepath.Base(path), want)
	}
	validSize = headerSize
	var frame [frameOverhead]byte
	for {
		if _, rerr := io.ReadFull(f, frame[:]); rerr != nil {
			return count, validSize, fileSize, rerr == io.EOF, nil // exact EOF is clean; a partial header is a tear
		}
		n := binary.BigEndian.Uint32(frame[0:])
		crc := binary.BigEndian.Uint32(frame[4:])
		if n == 0 && crc == 0 {
			return count, validSize, fileSize, true, nil // zero terminator: clean end of a pre-sized segment
		}
		if n > maxRecord {
			return count, validSize, fileSize, false, nil // corrupt length claim: treat as tear
		}
		payload := make([]byte, n)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return count, validSize, fileSize, false, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return count, validSize, fileSize, false, nil // bit rot or tear across the CRC
		}
		var end [frameEnd]byte
		if _, rerr := io.ReadFull(f, end[:]); rerr != nil || end[0] != frameSentinel {
			return count, validSize, fileSize, false, nil // frame never closed: torn write
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return count, validSize, fileSize, false, err
			}
		}
		count++
		validSize += frameOverhead + int64(n) + frameEnd
	}
}

func parseBase(path string) LSN {
	base, _ := parseSegName(filepath.Base(path))
	return base
}

// TruncateBelow removes segments every record of which is below lsn —
// they are covered by a checkpoint and replay would skip them anyway.
// The active segment is never removed. Returns how many segment files
// were deleted.
func (l *Log) TruncateBelow(lsn LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bases, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, base := range bases {
		if i == len(bases)-1 {
			break // active segment
		}
		// Records of segment i span [base, bases[i+1]); all below lsn
		// exactly when the next segment starts at or below lsn.
		if bases[i+1] > lsn {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(base))); err != nil {
			return removed, err
		}
		removed++
		l.segments--
	}
	return removed, nil
}

// EnableObs registers the log's metrics on reg: wal.appends,
// wal.append_bytes, wal.fsyncs, wal.fsync_us, wal.rotations,
// wal.replays, wal.replayed_records, wal.torn_bytes, and the
// wal.segments / wal.next_lsn gauges. Observe-only; call before
// serving.
func (l *Log) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mAppends = reg.Counter("wal.appends")
	l.mBytes = reg.Counter("wal.append_bytes")
	l.mFsyncs = reg.Counter("wal.fsyncs")
	l.mFsyncDur = reg.Histogram("wal.fsync_us", obs.DurationBuckets)
	l.mRotations = reg.Counter("wal.rotations")
	l.mReplays = reg.Counter("wal.replays")
	l.mReplayed = reg.Counter("wal.replayed_records")
	l.mTornBytes = reg.Counter("wal.torn_bytes")
	reg.RegisterFunc("wal.segments", func() int64 { return int64(l.Segments()) })
	reg.RegisterFunc("wal.next_lsn", func() int64 { return int64(l.NextLSN()) })
}
