package wal

import (
	"sync"

	"wlanscale/internal/rng"
)

// CrashPlan is deterministic crash injection for the append path,
// faultnet-style: one seed fully determines which append dies and how
// much of its frame reaches the file, so a failing seed replays
// exactly. The plan picks a victim append index in [0, horizon) and a
// tear fraction; when that append runs, a prefix of its batch frame is
// written and synced, the log goes sticky-failed with ErrCrashed, and
// everything after the last whole record is a torn tail for recovery
// to repair — the on-disk state of a process SIGKILLed inside
// write(2), produced without a subprocess.
type CrashPlan struct {
	mu sync.Mutex
	// victim is the 0-based append (record, not batch) index that dies.
	victim int
	// frac is how far into the frame bytes the tear lands, in (0,1).
	frac float64
	// fired reports whether the plan has torn yet; tornAt records the
	// victim index for tests building their expected prefix.
	fired  bool
	tornAt int
}

// NewCrashPlan derives a plan from seed: the victim append index is
// uniform in [0, horizon) and the tear offset uniform across the
// victim's frame. The same (seed, horizon) always yields the same
// crash.
func NewCrashPlan(seed uint64, horizon int) *CrashPlan {
	if horizon < 1 {
		horizon = 1
	}
	src := rng.New(seed).Split("wal-crash")
	return &CrashPlan{
		victim: src.IntN(horizon),
		frac:   src.Float64(),
	}
}

// Fired reports whether the crash point has gone off, and at which
// append index.
func (p *CrashPlan) Fired() (bool, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired, p.tornAt
}

// Victim returns the append index the plan will tear.
func (p *CrashPlan) Victim() int { return p.victim }

// tearAt decides whether a batch starting at append index start
// contains the victim, and if so where in the batch's frame bytes to
// tear. bounds[i] is the byte offset where record i's frame begins
// (with a final element marking the batch end). The tear lands
// strictly inside the victim's own frame — records before it in the
// batch survive whole, the victim is genuinely torn, nothing after it
// is written — so a recovered log holds exactly the records below the
// victim index.
func (p *CrashPlan) tearAt(start int, bounds []int) (bool, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	batchLen := len(bounds) - 1
	if p.fired || p.victim < start || p.victim >= start+batchLen {
		return false, 0
	}
	p.fired = true
	p.tornAt = p.victim
	lo, hi := bounds[p.victim-start], bounds[p.victim-start+1]
	at := lo + int(p.frac*float64(hi-lo))
	if at <= lo {
		at = lo + 1
	}
	if at >= hi {
		at = hi - 1
	}
	return true, at
}
