package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%32))))
	}
	return out
}

func replayAll(t *testing.T, l *Log, from LSN) (map[LSN]string, ReplayStats) {
	t.Helper()
	got := make(map[LSN]string)
	stats, err := l.Replay(from, func(lsn LSN, p []byte) error {
		got[lsn] = string(p)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := payloads(100)
	for i, p := range recs {
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("append %d got LSN %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextLSN() != LSN(len(recs)+1) {
		t.Fatalf("reopened NextLSN = %d, want %d", l2.NextLSN(), len(recs)+1)
	}
	got, stats := replayAll(t, l2, 0)
	if stats.Records != len(recs) || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v, want %d records, clean tail", stats, len(recs))
	}
	for i, p := range recs {
		if got[LSN(i+1)] != string(p) {
			t.Fatalf("record %d mismatch", i+1)
		}
	}

	// Replay from the middle skips the low records.
	got, stats = replayAll(t, l2, 51)
	if stats.Records != 50 || stats.Skipped != 50 {
		t.Fatalf("partial replay stats = %+v, want 50/50", stats)
	}
	if _, ok := got[50]; ok {
		t.Fatal("replay from 51 delivered LSN 50")
	}
}

func TestRotationAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := payloads(64)
	for _, p := range recs {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("tiny segments should have rotated, got %d segment(s)", l.Segments())
	}
	got, _ := replayAll(t, l, 0)
	if len(got) != len(recs) {
		t.Fatalf("replay across segments got %d records, want %d", len(got), len(recs))
	}

	// Truncation below LSN 33 must keep every record >= 33 and remove at
	// least one whole segment.
	removed, err := l.TruncateBelow(33)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected at least one segment removed")
	}
	got, _ = replayAll(t, l, 33)
	for lsn := LSN(33); lsn <= LSN(len(recs)); lsn++ {
		if got[lsn] != string(recs[lsn-1]) {
			t.Fatalf("record %d lost by truncation", lsn)
		}
	}
	l.Close()
}

func TestOpenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(10) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the tail by hand: chop 3 bytes off the last record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	fi, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer l2.Close()
	if l2.NextLSN() != 10 {
		t.Fatalf("NextLSN after torn-tail repair = %d, want 10 (record 10 torn away)", l2.NextLSN())
	}
	got, stats := replayAll(t, l2, 0)
	if len(got) != 9 || stats.Records != 9 {
		t.Fatalf("replay after repair got %d records, want 9", len(got))
	}
	// The next append reuses LSN 10 and the log is whole again.
	lsn, err := l2.Append([]byte("replacement"))
	if err != nil || lsn != 10 {
		t.Fatalf("append after repair: lsn=%d err=%v", lsn, err)
	}
}

func TestOpenDropsHeaderlessTrailingSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(5) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// A crash mid-rotation leaves a next segment too short for its
	// header.
	husk := filepath.Join(dir, segName(6))
	if err := os.WriteFile(husk, []byte{'W', 'L'}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatalf("open over rotation husk: %v", err)
	}
	defer l2.Close()
	if l2.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", l2.NextLSN())
	}
	if _, err := os.Stat(husk); !os.IsNotExist(err) {
		t.Fatal("husk segment not removed")
	}
}

func TestCorruptionMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(40) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("need multiple segments")
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	// Flip a payload byte in the FIRST segment (not the tail).
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+frameOverhead+2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Replay(0, func(LSN, []byte) error { return nil }); err == nil {
		t.Fatal("mid-log corruption replayed without error")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyAlways, PolicyInterval, PolicyOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads(20) {
				if _, err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Fatal("ParsePolicy accepted nonsense")
	}
}

// TestCrashPlanSeeds proves the deterministic crash injection: for
// every seed, the log tears exactly at the planned append, recovery
// keeps precisely the records below the victim index, and the victim
// itself is gone — a genuinely torn record, repaired at open.
func TestCrashPlanSeeds(t *testing.T) {
	const horizon = 50
	for seed := uint64(1); seed <= 25; seed++ {
		plan := NewCrashPlan(seed, horizon)
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: PolicyOff, SegmentBytes: 512, Crash: plan})
		if err != nil {
			t.Fatal(err)
		}
		recs := payloads(horizon)
		var crashedAt = -1
		for i, p := range recs {
			if _, err := l.Append(p); err != nil {
				if err != ErrCrashed {
					t.Fatalf("seed %d: append %d: %v", seed, i, err)
				}
				crashedAt = i
				break
			}
		}
		if crashedAt != plan.Victim() {
			t.Fatalf("seed %d: crashed at append %d, plan said %d", seed, crashedAt, plan.Victim())
		}
		if fired, at := plan.Fired(); !fired || at != crashedAt {
			t.Fatalf("seed %d: plan state fired=%t at=%d", seed, fired, at)
		}
		// The dead log refuses further use, like a killed process.
		if _, err := l.Append([]byte("x")); err == nil {
			t.Fatalf("seed %d: append after crash succeeded", seed)
		}

		l2, err := Open(dir, Options{Policy: PolicyOff})
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		got, stats := replayAll(t, l2, 0)
		if len(got) != crashedAt {
			t.Fatalf("seed %d: recovered %d records, want %d (stats %+v)", seed, len(got), crashedAt, stats)
		}
		for i := 0; i < crashedAt; i++ {
			if got[LSN(i+1)] != string(recs[i]) {
				t.Fatalf("seed %d: surviving record %d corrupted", seed, i+1)
			}
		}
		l2.Close()
	}
}

// TestCrashPlanMidBatch tears inside a multi-record batch: records
// before the victim in the same write survive whole.
func TestCrashPlanMidBatch(t *testing.T) {
	plan := &CrashPlan{victim: 5, frac: 0.5}
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyOff, Crash: plan})
	if err != nil {
		t.Fatal(err)
	}
	batch := payloads(8) // victim is record index 5, mid-batch
	if _, err := l.AppendBatch(batch); err != ErrCrashed {
		t.Fatalf("batch append err = %v, want ErrCrashed", err)
	}
	l2, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := replayAll(t, l2, 0)
	if len(got) != 5 {
		t.Fatalf("recovered %d records from torn batch, want 5", len(got))
	}
}
