// Package epoch labels the measurement periods of the study. Time in
// the simulation is virtual: the usage studies (Section 3) compare the
// weeks of January 15-22 2014 and 2015, while the interference studies
// (Sections 4 and 5) compare July 2014 ("six months ago") with January
// 2015 ("now").
//
// An Epoch is a small enum, not a timestamp — generators split their
// RNG streams per epoch so the "same" network six months apart is the
// same network, aged: clients churn, capabilities upgrade, neighbors
// appear. WeekSeconds converts the one-week usage window into the
// virtual-seconds timeline the telemetry reports use.
package epoch
