package epoch

// Epoch is one measurement period.
type Epoch uint8

const (
	// Jan2014 is the January 15-22, 2014 usage week.
	Jan2014 Epoch = iota
	// Jul2014 is the July 2014 link/interference baseline.
	Jul2014
	// Jan2015 is the January 15-22, 2015 usage week and the "now" of
	// the link/interference studies.
	Jan2015
)

// String names the epoch.
func (e Epoch) String() string {
	switch e {
	case Jan2014:
		return "Jan 2014"
	case Jul2014:
		return "Jul 2014"
	case Jan2015:
		return "Jan 2015"
	default:
		return "unknown epoch"
	}
}

// YearsSince2014 returns the elapsed time since January 2014 in years,
// used by growth models.
func (e Epoch) YearsSince2014() float64 {
	switch e {
	case Jul2014:
		return 0.5
	case Jan2015:
		return 1
	default:
		return 0
	}
}

// WeekSeconds is the length of one measurement week.
const WeekSeconds = 7 * 24 * 3600
