package telemetry

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Agent is the AP-side reporting agent: it queues reports locally and
// serves them to the backend when polled. If the tunnel drops, client
// traffic continues and reports accumulate until the backend reconnects
// and drains the queue — the failure mode Section 2 describes.
type Agent struct {
	Serial string
	Key    []byte
	// QueueLimit bounds the offline queue; oldest reports are dropped
	// beyond it, as a real device's flash budget forces.
	QueueLimit int

	mu      sync.Mutex
	queue   [][]byte
	dropped int
	seq     uint64
}

// NewAgent creates an agent for a device.
func NewAgent(serial string, key []byte) *Agent {
	return &Agent{Serial: serial, Key: key, QueueLimit: 4096}
}

// Enqueue queues one report for upload, stamping its sequence number.
func (a *Agent) Enqueue(r *Report) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	r.SeqNo = a.seq
	a.queue = append(a.queue, r.Marshal())
	if a.QueueLimit > 0 && len(a.queue) > a.QueueLimit {
		over := len(a.queue) - a.QueueLimit
		a.queue = a.queue[over:]
		a.dropped += over
	}
}

// QueueLen returns the number of queued reports.
func (a *Agent) QueueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Dropped returns the number of reports lost to queue overflow.
func (a *Agent) Dropped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

func (a *Agent) peek(max int) [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if max > len(a.queue) {
		max = len(a.queue)
	}
	out := make([][]byte, max)
	copy(out, a.queue[:max])
	return out
}

func (a *Agent) drop(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > len(a.queue) {
		n = len(a.queue)
	}
	a.queue = a.queue[n:]
}

// Serve connects to the backend at addr and answers polls until the
// connection fails or closed is signalled. It returns the error that
// ended the session (nil on clean shutdown by the peer).
func (a *Agent) Serve(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return a.ServeConn(conn)
}

// ServeConn runs the agent protocol over an established connection.
func (a *Agent) ServeConn(conn net.Conn) error {
	t, err := NewTunnel(conn, a.Key)
	if err != nil {
		conn.Close()
		return err
	}
	defer t.Close()
	if err := t.WriteFrame(EncodeMessage(&Message{Type: frameHello, Serial: a.Serial})); err != nil {
		return err
	}
	for {
		raw, err := t.ReadFrame()
		if err != nil {
			return err
		}
		m, err := DecodeMessage(raw)
		if err != nil {
			return err
		}
		switch m.Type {
		case framePoll:
			batch := a.peek(int(m.Max))
			if err := t.WriteFrame(EncodeMessage(&Message{Type: frameReports, Reports: batch})); err != nil {
				return err
			}
		case frameAck:
			a.drop(int(m.Count))
		default:
			return ErrBadFrameType
		}
	}
}

// RunWithReconnect keeps the agent connected to addr, retrying with
// exponential backoff, until stop is closed — closing stop also tears
// down an in-flight session.
func (a *Agent) RunWithReconnect(addr string, stop <-chan struct{}) {
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			done := make(chan struct{})
			if stop != nil {
				go func() {
					select {
					case <-stop:
						conn.Close()
					case <-done:
					}
				}()
			}
			err = a.ServeConn(conn)
			close(done)
		}
		if err == nil {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// Poller is the backend side of the harvest protocol: it owns one
// device connection and pulls queued reports.
type Poller struct {
	tunnel *Tunnel
	// Serial is the device's announced serial.
	Serial string
}

// ErrNotHello is returned when the first frame is not a hello.
var ErrNotHello = errors.New("telemetry: expected hello")

// AcceptPoller performs the server side of the handshake on an accepted
// connection.
func AcceptPoller(conn net.Conn, key []byte) (*Poller, error) {
	t, err := NewTunnel(conn, key)
	if err != nil {
		conn.Close()
		return nil, err
	}
	raw, err := t.ReadFrame()
	if err != nil {
		t.Close()
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil || m.Type != frameHello {
		t.Close()
		if err == nil {
			err = ErrNotHello
		}
		return nil, err
	}
	return &Poller{tunnel: t, Serial: m.Serial}, nil
}

// Close closes the poller's tunnel.
func (p *Poller) Close() error { return p.tunnel.Close() }

// Poll requests up to max reports, acknowledges what it received, and
// returns the decoded reports. The ack-after-receive ordering means a
// crash between receive and ack re-delivers reports rather than losing
// them; the backend deduplicates by (serial, seqno).
func (p *Poller) Poll(max int) ([]*Report, error) {
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: framePoll, Max: uint32(max)})); err != nil {
		return nil, err
	}
	raw, err := p.tunnel.ReadFrame()
	if err != nil {
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	if m.Type != frameReports {
		return nil, ErrBadFrameType
	}
	out := make([]*Report, 0, len(m.Reports))
	for _, rb := range m.Reports {
		r, err := UnmarshalReport(rb)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: frameAck, Count: uint32(len(m.Reports))})); err != nil {
		return nil, err
	}
	return out, nil
}
